// Command kvrouterchaos is the partition-chaos gate for the routing
// tier: cmd/kvchaos hardens one node, this drill hardens the fleet view.
// It assembles the full routed topology in one process —
//
//	3 × kvserver ← faultnet.Listener (accept faults)
//	        ↑
//	kvcluster.Cluster (ring, pools, probers) + kvcluster.Router
//	        ↑
//	N kvproto.ReconnectClients speaking plain kvproto to the router
//
// — then kills one node mid-soak and later restarts it, asserting the
// routing tier's failure contract end to end:
//
//   - Ejection fires: after the kill, the dead node is ejected (the
//     kvcluster_node_ejections_total tally moves) and its keyspace fails
//     fast with SERVER_ERROR instead of queueing behind dial timeouts.
//   - Surviving keyspace stays available: during the outage, every
//     operation whose ring owner is a live node must succeed — a single
//     refusal is a routing bug, not chaos noise.
//   - Reintegration: once the node returns, probing brings it back and
//     the whole keyspace serves again (the restarted cache is empty;
//     misses are always legal, resurrections never are).
//   - No ambiguous-write replay: every value a get returns must be a
//     version its single-writer client either had acknowledged or holds
//     as unacked-pending. A version whose write failed CLEANLY
//     ("SERVER_ERROR node down" / "backend failure" — the never-sent and
//     provably-unprocessed cases) appearing in a reply would mean some
//     layer replayed a write it reported as not applied.
//   - Unacked tallies reconcile exactly: ambiguous writes counted by the
//     backend clients == forwarded by the router == observed by clients
//     as "SERVER_ERROR unacked". Every ambiguity is surfaced, once.
//   - TTL honesty through the routing tier: a subset of keys is written
//     with a client-computed absolute expiry deadline. Any VALUE
//     returned after that version's deadline (plus a sweep-granularity
//     grace) is a violation on every path — direct, scattered, and
//     failover reads alike. A diverged replica may serve an OLDER acked
//     version, but never an expired one: the cluster propagates the
//     same absolute deadline to every owner.
//   - Clean teardown: router drain, cluster close, fleet close, and no
//     leaked goroutines.
//
// With -replicas 2 the drill asserts the replicated contract instead:
// the outage is a network partition (the node's cache stays hot — the
// hard case), and node loss may cost hit ratio but never availability:
//
//   - Zero failed ops: every operation across the whole keyspace must
//     eventually succeed through the outage — reads fail over to the
//     replica (kvcluster_failover_reads_total moves), writes ack on the
//     first live owner; clean write failures in the pre-ejection window
//     are retried with bounded patience and a final failure is a
//     violation, not chaos noise.
//   - Replica divergence is counted: writes during the outage skip the
//     dead replica and kvcluster_replica_write_failures_total moves.
//   - Flush-on-reintegrate: the healed node still holds its pre-outage
//     versions; before the prober marks it up it must be flushed
//     (kvcluster_reintegration_flushes_total and the node's own flush
//     tally move), so recovered-phase reads can miss but never serve a
//     version older than the client's acknowledged history. Running
//     with -no-reintegrate-flush reproduces the stale-read regression
//     and must make the gate fail.
//   - Unacked tallies still reconcile exactly, with best-effort replica
//     ambiguity (never surfaced to clients) accounted separately:
//     backend == forwarded + replica-unacked, forwarded == seen.
//
// Exit status 0 means every invariant held; 1 reports the violations.
//
//	kvrouterchaos -seed 1
//	kvrouterchaos -seed 7 -clients 3 -ops 800
//	kvrouterchaos -seed 5 -replicas 2
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/adaptivekv"
	"repro/internal/faultnet"
	"repro/internal/fleet"
	"repro/internal/kvcluster"
	"repro/internal/kvproto"
	"repro/internal/kvserver"
)

// splitmix64 scrambles a counter into an independent-looking draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Soak phases. Expectations differ per phase: healthy and recovered
// phases tolerate no failures at all; the outage phase tolerates them
// only for keys the dead node owns.
const (
	phaseHealthy = iota
	phaseOutage
	phaseRecovered
)

var phaseNames = [...]string{"healthy", "outage", "recovered"}

// ttlGrace pads client-side deadline checks: each backend's coarse
// expiry clock advances on sweeper ticks (default 100ms), so a value can
// legally survive its deadline by one tick plus scheduling noise.
const ttlGrace = time.Second

// keyState is one key's write history on its single-writer client.
type keyState struct {
	acked     uint64              // newest acknowledged version (0 = none)
	tried     uint64              // newest attempted version
	pending   map[uint64]struct{} // unacked versions that may still land
	failed    map[uint64]struct{} // cleanly-failed versions that must never land
	everAcked map[uint64]struct{} // every version ever acknowledged (replicated-mode window)
	deadlines map[uint64]int64    // version -> absolute TTL deadline (unix nanos), TTL keys only
}

// routedClient drives one connection's op mix through the router and
// checks the version-window invariant. Keys are namespaced per client so
// each key has exactly one writer; owners are precomputed from the ring
// so the client knows which failures the partition excuses.
type routedClient struct {
	id     int
	rc     *kvproto.ReconnectClient
	rng    uint64
	keys   []keyState
	names  [][]byte
	owners []int // ring owner per key, static for the drill
	vsize  int

	phase  int
	killed int // node index down during phaseOutage, -1 otherwise

	// replicated switches the client onto the R=2 contract: failures are
	// never excused by a dead owner (zero failed ops), clean write
	// failures are retried until the routing tier converges on the
	// replica, and outage-phase reads of dead-primary keys accept any
	// ever-acked version (a diverged replica legally serves an older
	// acknowledged write — never a failed or unknown one).
	replicated    bool
	retryPatience time.Duration
	ttl           time.Duration // nonzero: every 4th key is written with this TTL

	ops, gets, hits, sets, ackedSets uint64
	unackedSeen                      uint64 // "SERVER_ERROR unacked" replies observed
	cleanFails, deadOps              uint64
	violations                       []string
	fatal                            error
}

func newRoutedClient(id int, addr string, seed uint64, nkeys, vsize int, cl *kvcluster.Cluster) *routedClient {
	c := &routedClient{
		id: id,
		rc: kvproto.NewReconnect(addr, kvproto.ReconnectConfig{
			DialTimeout:  2 * time.Second,
			ReadTimeout:  5 * time.Second,
			WriteTimeout: 5 * time.Second,
			MaxAttempts:  8,
			BaseBackoff:  2 * time.Millisecond,
			MaxBackoff:   100 * time.Millisecond,
			Seed:         seed,
		}),
		rng:    seed | 1,
		keys:   make([]keyState, nkeys),
		names:  make([][]byte, nkeys),
		owners: make([]int, nkeys),
		vsize:  vsize,
		killed: -1,
	}
	for j := range c.keys {
		c.keys[j].pending = make(map[uint64]struct{})
		c.keys[j].failed = make(map[uint64]struct{})
		c.keys[j].everAcked = make(map[uint64]struct{})
		c.keys[j].deadlines = make(map[uint64]int64)
		c.names[j] = []byte(fmt.Sprintf("r%dk%d", id, j))
		c.owners[j] = cl.Ring().OwnerIndex(c.names[j])
	}
	return c
}

// ttlKey reports whether key j carries a TTL on every write.
func (c *routedClient) ttlKey(j int) bool { return c.ttl > 0 && j%4 == 0 }

func (c *routedClient) next() uint64 {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return c.rng
}

func (c *routedClient) violate(format string, args ...any) {
	c.violations = append(c.violations, fmt.Sprintf("client %d [%s]: %s",
		c.id, phaseNames[c.phase], fmt.Sprintf(format, args...)))
}

// deadOwner reports whether key j's ring owner is the killed node in the
// current phase — in single-replica mode, the only condition under which
// a failure is legal. Replicated mode excuses nothing: the replica must
// absorb the outage.
func (c *routedClient) deadOwner(j int) bool {
	return !c.replicated && c.phase == phaseOutage && c.owners[j] == c.killed
}

// failoverWindow reports whether key j's reads are currently served by
// its replica: primary down, outage phase, replicated mode. Inside the
// window a read may legally return an older ever-acknowledged version —
// replica divergence — but still never a failed or never-acked one.
func (c *routedClient) failoverWindow(j int) bool {
	return c.replicated && c.phase == phaseOutage && c.owners[j] == c.killed
}

// unackedReply reports an ambiguous-write signal: either the router said
// "SERVER_ERROR unacked" (backend ambiguity, forwarded) or the client's
// own connection to the router died mid-write (client-side ambiguity).
func unackedReply(err error) bool {
	if errors.Is(err, kvproto.ErrUnacked) {
		return true
	}
	var se *kvproto.ServerError
	return errors.As(err, &se) && se.Msg == "unacked"
}

// encodeValue renders "<version>|<key>|xxx..." padded to vsize so the
// integrity check covers both identity and payload bytes.
func encodeValue(ver uint64, key []byte, vsize int) []byte {
	v := make([]byte, 0, vsize+32)
	v = strconv.AppendUint(v, ver, 10)
	v = append(v, '|')
	v = append(v, key...)
	v = append(v, '|')
	for len(v) < vsize {
		v = append(v, 'x')
	}
	return v
}

// decodeValue parses and integrity-checks an encoded value.
func decodeValue(v []byte) (ver uint64, key []byte, err error) {
	i := bytes.IndexByte(v, '|')
	if i < 1 {
		return 0, nil, errors.New("missing version field")
	}
	ver, perr := strconv.ParseUint(string(v[:i]), 10, 64)
	if perr != nil {
		return 0, nil, errors.New("bad version field")
	}
	rest := v[i+1:]
	j := bytes.IndexByte(rest, '|')
	if j < 1 {
		return 0, nil, errors.New("missing key field")
	}
	key = rest[:j]
	for _, b := range rest[j+1:] {
		if b != 'x' {
			return 0, nil, errors.New("corrupt padding")
		}
	}
	return ver, key, nil
}

func (c *routedClient) run(nops uint64) {
	for i := uint64(0); i < nops && c.fatal == nil && len(c.violations) < 20; i++ {
		r := c.next()
		j := int((r >> 8) % uint64(len(c.keys)))
		switch {
		case r%13 == 0:
			c.doMultiGet(j)
		case r%5 == 0:
			c.doSet(j)
		default:
			c.doGet(j)
		}
		c.ops++
	}
}

func (c *routedClient) doSet(j int) {
	ks := &c.keys[j]
	ver := ks.tried + 1
	ks.tried = ver
	val := encodeValue(ver, c.names[j], c.vsize)
	var exptime int64
	if c.ttlKey(j) {
		// Client-computed ABSOLUTE deadline in unix seconds (always above
		// the relative/absolute pivot): the router, the cluster fan-out,
		// and any reconnect replay all carry the same expiry instant, so
		// both owners of a replicated key agree on when it dies.
		expSec := time.Now().Add(c.ttl).Unix() + 1
		exptime = expSec
		ks.deadlines[ver] = expSec * int64(time.Second)
	}
	err := c.rc.Set(c.names[j], 0, exptime, val)
	c.sets++
	if err != nil && c.replicated && !unackedReply(err) {
		// Replicated mode promises zero failed ops, but the sync-owner
		// handoff to the replica needs the ejection to land first. A
		// clean failure is provably unapplied, so retrying the same
		// version is safe; only exhausting the patience window is a
		// violation. The replayed exptime is the SAME absolute instant.
		deadline := time.Now().Add(c.retryPatience)
		for err != nil && !unackedReply(err) && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			err = c.rc.Set(c.names[j], 0, exptime, val)
		}
	}
	switch {
	case err == nil:
		ks.acked = ver
		ks.everAcked[ver] = struct{}{}
		c.ackedSets++
		if c.deadOwner(j) {
			c.violate("set %s acked while its owner node %d is dead", c.names[j], c.killed)
		}
	case unackedReply(err):
		// Ambiguous: the write may have been applied. Widen the window.
		ks.pending[ver] = struct{}{}
		c.unackedSeen++
	default:
		// Clean failure: every layer reports this version was never
		// applied ("node down" fails fast before send; "backend
		// failure" exhausts only provably-unprocessed attempts). It
		// must never be read back.
		ks.failed[ver] = struct{}{}
		c.cleanFails++
		if c.deadOwner(j) {
			c.deadOps++
			return
		}
		c.violate("set %s (owner node %d, alive) failed: %v", c.names[j], c.owners[j], err)
	}
}

// checkHit verifies one returned value against key j's version window.
// sent is the time the read was issued — the serving node processed it
// no earlier, so a deadline already past at send time makes any VALUE
// reply a TTL violation.
func (c *routedClient) checkHit(j int, v []byte, sent time.Time) {
	ks := &c.keys[j]
	ver, key, derr := decodeValue(v)
	if derr != nil {
		c.violate("get %s returned corrupt value (%v): %q", c.names[j], derr, v)
		return
	}
	if !bytes.Equal(key, c.names[j]) {
		c.violate("get %s returned value for key %s", c.names[j], key)
		return
	}
	// TTL honesty outranks every version-window allowance below: an
	// expired version must read as a miss even from a diverged replica
	// inside the failover window.
	if d, has := ks.deadlines[ver]; has && sent.UnixNano() > d+int64(ttlGrace) {
		c.violate("get %s returned version %d at %v past its TTL deadline — expired value served",
			c.names[j], ver, time.Duration(sent.UnixNano()-d))
		return
	}
	if _, wasCleanFail := ks.failed[ver]; wasCleanFail {
		c.violate("get %s returned version %d whose write failed cleanly — a write reported as not applied was replayed",
			c.names[j], ver)
		return
	}
	if ver == ks.acked {
		return
	}
	if _, inFlight := ks.pending[ver]; inFlight {
		return
	}
	if c.failoverWindow(j) {
		// The replica may have missed best-effort writes while the
		// primary was still acking them: an older acknowledged version
		// is legal divergence inside the failover window. The failed-set
		// check above stays absolute, and once the window closes
		// (reintegration flushed the stale copy) the strict rule is back.
		if _, was := ks.everAcked[ver]; was {
			return
		}
	}
	c.violate("get %s returned version %d; acked %d, pending %v — acknowledged write lost or stale value resurrected",
		c.names[j], ver, ks.acked, ks.pending)
}

func (c *routedClient) doGet(j int) {
	sent := time.Now()
	v, ok, err := c.rc.Get(c.names[j])
	c.gets++
	if err != nil {
		if c.deadOwner(j) {
			c.deadOps++
			return
		}
		c.violate("get %s (owner node %d, alive) failed: %v", c.names[j], c.owners[j], err)
		return
	}
	if c.deadOwner(j) {
		c.violate("get %s answered while its owner node %d is dead", c.names[j], c.killed)
	}
	if !ok {
		return // miss: evicted, lost to a restart, or never written — always legal
	}
	c.hits++
	c.checkHit(j, v, sent)
}

// doMultiGet fans a contiguous 24-key window through the router's
// scatter-gather path. The burst succeeds only when every owner is
// alive; when it includes the dead keyspace the router must terminate
// with SERVER_ERROR, never fake an END. Retries may replay the burst, so
// hits are collected last-write-wins and verified only on success.
func (c *routedClient) doMultiGet(j int) {
	const span = 24
	keys := make([][]byte, 0, span)
	idx := make([]int, 0, span)
	hasDead := false
	for o := 0; o < span; o++ {
		k := (j + o) % len(c.keys)
		keys = append(keys, c.names[k])
		idx = append(idx, k)
		if c.deadOwner(k) {
			hasDead = true
		}
	}
	hits := make(map[int][]byte, span)
	sent := time.Now()
	err := c.rc.MultiGet(keys, func(i int, _ uint32, val []byte) {
		hits[i] = append(hits[i][:0], val...)
	})
	c.gets++
	if err != nil {
		if hasDead {
			c.deadOps++
			return
		}
		c.violate("multiget [%s..] over live owners failed: %v", keys[0], err)
		return
	}
	if hasDead {
		c.violate("multiget [%s..] reached END while owner node %d is dead", keys[0], c.killed)
	}
	for i, v := range hits {
		c.hits++
		c.checkHit(idx[i], v, sent)
	}
}

// runPhase drives every client for nops ops concurrently and waits.
func runPhase(clients []*routedClient, phase, killed int, nops uint64) {
	var wg sync.WaitGroup
	for _, c := range clients {
		c.phase, c.killed = phase, killed
		wg.Add(1)
		go func(c *routedClient) {
			defer wg.Done()
			c.run(nops)
		}(c)
	}
	wg.Wait()
}

// awaitEjected polls the cluster's view of node i until it matches want.
func awaitEjected(cl *kvcluster.Cluster, i int, want bool, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if cl.Ejected(i) == want {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cl.Ejected(i) == want
}

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "workload, placement, and fault seed")
		nodes      = flag.Int("nodes", 3, "backend cache nodes")
		clients    = flag.Int("clients", 4, "concurrent verifying clients")
		ops        = flag.Uint64("ops", 1500, "operations per client per phase (three phases)")
		nkeys      = flag.Int("keys", 256, "keyspace per client (single writer per key)")
		vsize      = flag.Int("value-size", 48, "encoded value size in bytes")
		acceptRate = flag.Float64("accept-error-rate", 0.1, "node listeners: transient accept-error probability")
		probeIvl   = flag.Duration("probe-interval", 25*time.Millisecond, "cluster health-probe period")
		graceLeak  = flag.Duration("leak-grace", 5*time.Second, "how long goroutines get to drain after shutdown")
		replicas   = flag.Int("replicas", 1, "ring owners per key; 2 switches the drill to the replicated-failover contract")
		ttl        = flag.Duration("ttl", time.Second, "TTL written on every 4th key per client (0 disables the TTL invariant)")
		noFlush    = flag.Bool("no-reintegrate-flush", false, "disable the flush-on-reintegrate barrier (must make the replicated gate fail)")
	)
	flag.Parse()
	replicated := *replicas > 1

	baseline := runtime.NumGoroutine()
	fmt.Printf("kvrouterchaos: seed %d, %d nodes, %d clients x 3x%d ops, %d keys/client, %d replicas\n",
		*seed, *nodes, *clients, *ops, *nkeys, *replicas)

	// Fleet: real kvservers on loopback behind accept-fault injection.
	// Cache geometry is generous so evictions don't dominate the window
	// check (misses are legal either way; hits are what exercise it).
	f, err := fleet.Start(*nodes, func(i int) fleet.NodeConfig {
		return fleet.NodeConfig{
			Server: kvserver.Config{
				Cache:        adaptivekv.Config{Shards: 2, Sets: 512, Ways: 8},
				ReadTimeout:  2 * time.Second,
				WriteTimeout: 2 * time.Second,
			},
			ListenFaults: &faultnet.Config{
				Seed:            splitmix64(*seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15),
				AcceptErrorRate: *acceptRate,
			},
		}
	})
	if err != nil {
		fmt.Printf("kvrouterchaos: fleet: %v\n", err)
		os.Exit(1)
	}

	cl, err := kvcluster.New(kvcluster.Config{
		Nodes:                     f.Addrs(),
		Seed:                      *seed,
		PoolSize:                  4,
		Replicas:                  *replicas,
		DisableReintegrationFlush: *noFlush,
		ProbeInterval:             *probeIvl,
		ProbeBackoffMax:           8 * *probeIvl,
		Reconnect: kvproto.ReconnectConfig{
			DialTimeout:  500 * time.Millisecond,
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
			MaxAttempts:  4,
			BaseBackoff:  time.Millisecond,
			MaxBackoff:   20 * time.Millisecond,
		},
	})
	if err != nil {
		fmt.Printf("kvrouterchaos: cluster: %v\n", err)
		os.Exit(1)
	}
	cl.Start()

	router := kvcluster.NewRouter(cl, kvcluster.RouterConfig{
		ReadTimeout:  time.Minute,
		WriteTimeout: 5 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("kvrouterchaos: listen: %v\n", err)
		os.Exit(1)
	}
	go router.Serve(ln)

	ccs := make([]*routedClient, *clients)
	for i := range ccs {
		ccs[i] = newRoutedClient(i, ln.Addr().String(), splitmix64(*seed+uint64(i)*7919), *nkeys, *vsize, cl)
		ccs[i].replicated = replicated
		ccs[i].retryPatience = 8 * time.Second
		ccs[i].ttl = *ttl
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	// Phase 1 — healthy fleet: no operation may fail.
	runPhase(ccs, phaseHealthy, -1, *ops)

	// Take one node down (seed-chosen) and soak through the outage.
	// Single-replica mode kills it (process death: cache gone, keyspace
	// fails fast). Replicated mode partitions it instead — the cache
	// stays hot, which is the hard reintegration case — and the replica
	// must keep the whole keyspace available.
	kill := int(splitmix64(*seed^0x6b696c6c) % uint64(*nodes)) // "kill"
	if replicated {
		fmt.Printf("kvrouterchaos: partitioning node %d (%s)\n", kill, f.Nodes[kill].Addr())
		f.Nodes[kill].Partition()
	} else {
		fmt.Printf("kvrouterchaos: killing node %d (%s)\n", kill, f.Nodes[kill].Addr())
		f.Nodes[kill].Kill()
	}
	runPhase(ccs, phaseOutage, kill, *ops)
	if !awaitEjected(cl, kill, true, 10*time.Second) {
		fail("node %d was never ejected after its kill", kill)
	}
	if got := cl.Ejections(kill); got < 1 {
		fail("kvcluster_node_ejections_total for node %d = %d, want >= 1", kill, got)
	}
	for i := 0; i < *nodes; i++ {
		if i != kill && cl.Ejected(i) {
			fail("healthy node %d was ejected during node %d's outage", i, kill)
		}
	}
	if replicated {
		if cl.FailoverReads() == 0 {
			fail("kvcluster_failover_reads_total never moved through a replicated outage")
		}
		if cl.ReplicaWriteFailures() == 0 {
			fail("kvcluster_replica_write_failures_total never moved — divergence went uncounted")
		}
	}

	// Bring the node back — Restart (fresh empty cache) in single-replica
	// mode, Heal (pre-outage cache intact) in replicated mode — and
	// confirm the probers reintegrate it, then soak again: the whole
	// keyspace must serve, and nothing stale may resurrect.
	revive := f.Nodes[kill].Restart
	reviveName := "restarted"
	if replicated {
		revive = f.Nodes[kill].Heal
		reviveName = "healed"
	}
	if err := revive(); err != nil {
		fail("revive node %d: %v", kill, err)
	} else {
		fmt.Printf("kvrouterchaos: node %d %s, awaiting reintegration\n", kill, reviveName)
		if !awaitEjected(cl, kill, false, 10*time.Second) {
			fail("node %d was never reintegrated after %s", kill, reviveName)
		}
		if replicated && !*noFlush {
			if cl.ReintegrationFlushes() == 0 {
				fail("node %d reintegrated without a flush barrier", kill)
			}
			if got := f.Nodes[kill].Server().Flushes(); got == 0 {
				fail("node %d serves again but never applied a flush_all (flushes=%d)", kill, got)
			}
		}
		runPhase(ccs, phaseRecovered, -1, *ops)
	}

	// Teardown before reconciliation so every in-flight op has settled.
	router.Shutdown(ln, 2*time.Second)
	router.Wait()

	// Unacked tallies must reconcile exactly across all three layers:
	// backend ambiguity counted once, forwarded once, observed once.
	var seen, deadOps, cleanFails, totalOps, totalHits uint64
	for _, c := range ccs {
		seen += c.unackedSeen
		deadOps += c.deadOps
		cleanFails += c.cleanFails
		totalOps += c.ops
		totalHits += c.hits
		if c.fatal != nil {
			fail("%v", c.fatal)
		}
		for _, v := range c.violations {
			fail("%s", v)
		}
	}
	backendUnacked := cl.BackendCounters().Unacked.Load()
	forwarded := router.UnackedReplies()
	if replicated {
		// Best-effort replica writes can also end ambiguous; that ambiguity
		// is swallowed by the replication fan-out (never surfaced to a
		// client) and counted separately. Everything that DID reach a
		// client must still reconcile exactly.
		replicaUnacked := cl.ReplicaUnacked()
		if backendUnacked != forwarded+replicaUnacked || forwarded != seen {
			fail("unacked tallies diverge: backend counted %d, router forwarded %d + replica-side %d, clients observed %d",
				backendUnacked, forwarded, replicaUnacked, seen)
		}
		if deadOps > 0 {
			fail("replicated mode promised zero failed ops but %d operations failed through the outage", deadOps)
		}
	} else if backendUnacked != forwarded || forwarded != seen {
		fail("unacked tallies diverge: backend counted %d, router forwarded %d, clients observed %d",
			backendUnacked, forwarded, seen)
	}
	cl.Close()
	f.Close()

	// Goroutine-leak check: everything the drill started must unwind.
	deadline := time.Now().Add(*graceLeak)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		fail("goroutine leak: %d running after teardown, baseline %d", n, baseline)
	}

	bc := cl.BackendCounters()
	fmt.Printf("kvrouterchaos: %d ops, %d hits, %d dead-keyspace failures, %d clean write failures, %d unacked\n",
		totalOps, totalHits, deadOps, cleanFails, seen)
	fmt.Printf("kvrouterchaos: backend tallies: %d redials, %d retries, %d unacked, %d exhausted; node %d ejections: %d\n",
		bc.Redials.Load(), bc.Retries.Load(), bc.Unacked.Load(), bc.Exhausted.Load(), kill, cl.Ejections(kill))
	if replicated {
		fmt.Printf("kvrouterchaos: replication tallies: %d failover reads, %d replica write failures (%d ambiguous), %d reintegration flushes\n",
			cl.FailoverReads(), cl.ReplicaWriteFailures(), cl.ReplicaUnacked(), cl.ReintegrationFlushes())
	}

	if len(failures) > 0 {
		fmt.Printf("kvrouterchaos: FAIL — %d invariant violations:\n", len(failures))
		for _, v := range failures {
			fmt.Printf("  - %s\n", v)
		}
		os.Exit(1)
	}
	if replicated {
		fmt.Println("kvrouterchaos: PASS — zero failed ops through the partition, reads failed over, reintegration flushed, tallies reconcile")
	} else {
		fmt.Println("kvrouterchaos: PASS — ejection fired, surviving keyspace stayed available, no ambiguous-write replays, tallies reconcile")
	}
}
