// Command kvloadgen replays internal/workload access patterns as
// key-value traffic against an adaptcached server (or, with -direct, an
// in-process adaptivekv cache). Each connection runs a closed loop: draw
// the next key from its stream, get it, and on a miss set it — the
// read-through idiom the adaptive engine is designed around. The workload
// classes are the same ones the paper uses to explain policy preferences,
// so a server run under "-mix loop" visibly rewards LFU-like behavior and
// "-mix zipf" exercises the hot-set/scan blend.
//
// Examples:
//
//	kvloadgen -addr 127.0.0.1:11311 -conns 4 -ops 400000
//	kvloadgen -mix loop -loop 12000 -conns 8
//	kvloadgen -direct -ops 2000000            # no network, cache API only
//	kvloadgen -min-ops 100000                 # exit 1 below 100k ops/s
//	kvloadgen -procs 4 -multiget 16           # 4 Ps, 16-key multiget rounds
//	kvloadgen -targets a:11311,b:11311,c:11311 # spread conns round-robin, per-target accounting
//
// The report gives aggregate throughput (gets+sets per second), the
// client-observed hit ratio, and client-observed round-trip latency
// percentiles (p50/p95/p99/max, one sample per pipelined batch — per
// operation at -pipeline 1). -min-ops and -max-p99 turn the run into a
// pass/fail CI gate on throughput and tail latency.
//
// -ttl gives half the keyspace (even keys) a finite TTL while the other
// half never expires — a mixed stream that exercises the server's lazy
// and swept expiry paths under load. Each worker remembers the
// deadlines of its own TTL'd sets and the report counts the misses
// explained by expiry ("expired reads") separately from cold misses.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/adaptivekv"
	"repro/internal/kvproto"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// connStats is one worker's tally.
type connStats struct {
	gets, hits, sets uint64
	expiredReads     uint64 // misses on keys this worker had set with a now-passed TTL
	err              error
}

// ttlTracker classifies a worker's misses: it remembers the deadline of
// every TTL'd set the worker issued, so a later miss on that key can be
// attributed to expiry rather than eviction or cold start. Workers
// share the keyspace, so another worker's refresh can mask an expiry —
// the tally is a floor, not an exact census.
type ttlTracker struct {
	ttl       time.Duration
	deadlines map[string]time.Time
}

// exptimeFor splits the stream: even keys carry the finite TTL (as
// relative seconds on the wire), odd keys never expire.
func (tt *ttlTracker) exptimeFor(key []byte) int64 {
	if tt == nil || len(key) == 0 || key[len(key)-1]%2 != 0 {
		return 0
	}
	secs := int64(tt.ttl / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// noteSet records the deadline for a TTL'd set (no-op for infinite keys).
func (tt *ttlTracker) noteSet(key []byte, exptime int64) {
	if tt == nil || exptime == 0 {
		return
	}
	tt.deadlines[string(key)] = time.Now().Add(time.Duration(exptime) * time.Second)
}

// expiredMiss reports whether a miss on key is explained by a passed
// deadline from this worker's own writes. One second of grace covers
// the server's sweep granularity and the wire's second-rounding.
func (tt *ttlTracker) expiredMiss(key []byte) bool {
	if tt == nil {
		return false
	}
	d, ok := tt.deadlines[string(key)]
	if !ok || time.Since(d) < time.Second {
		return false
	}
	delete(tt.deadlines, string(key))
	return true
}

func patterns(mix string, hot uint64, skew float64, loop uint64) []workload.Pattern {
	switch mix {
	case "zipf":
		return workload.MixedZipf(hot, skew)
	case "loop":
		return workload.LoopingScan(loop)
	default:
		log.Fatalf("kvloadgen: unknown -mix %q (zipf|loop)", mix)
		return nil
	}
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:11311", "adaptcached address")
		targets = flag.String("targets", "", "comma-separated server addresses; workers spread round-robin and the report breaks ops/errors out per target (overrides -addr)")
		conns  = flag.Int("conns", 4, "concurrent connections (workers)")
		ops    = flag.Uint64("ops", 400000, "total operations across all connections")
		mix    = flag.String("mix", "zipf", "workload mix: zipf|loop")
		hot    = flag.Uint64("hot", 65536, "zipf mix: hot-set size in keys")
		skew   = flag.Float64("skew", 0.8, "zipf mix: skew exponent")
		loop   = flag.Uint64("loop", 12000, "loop mix: loop length in keys")
		vsize  = flag.Int("valuesize", 64, "value payload bytes")
		seed   = flag.Uint64("seed", 1, "base workload seed (each connection offsets it)")
		depth  = flag.Int("pipeline", 32, "requests in flight per connection (1 = strict request/reply)")
		mget   = flag.Int("multiget", 1, "keys per get request (>1 sends multi-key 'get k1 k2 ...'; capped at the protocol limit)")
		procs  = flag.Int("procs", 0, "pin GOMAXPROCS for the generator (0 = leave ambient)")
		minOps = flag.Uint64("min-ops", 0, "fail (exit 1) if throughput is below this many ops/s")
		maxP99 = flag.Duration("max-p99", 0, "fail (exit 1) if client-observed p99 round-trip latency exceeds this (0 = no gate)")
		direct = flag.Bool("direct", false, "skip the network: drive an in-process adaptivekv cache")
		ttlDur = flag.Duration("ttl", 0, "finite TTL for the even half of the keyspace (0 = nothing expires); expired reads are reported")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	if *mget < 1 {
		*mget = 1
	}
	// -multiget beyond the protocol's per-request cap is legal: the client
	// splits the burst with MultiGetChunked, so the knob measures logical
	// batch size rather than wire-request size.

	pats := patterns(*mix, *hot, *skew, *loop)
	if *conns < 1 || *ops < uint64(*conns) {
		log.Fatal("kvloadgen: -ops must be at least -conns")
	}
	shares := splitOps(*ops, *conns)
	payload := make([]byte, *vsize)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	var cache *adaptivekv.Cache[string, []byte]
	if *direct {
		cache = adaptivekv.New[string, []byte](adaptivekv.Config{})
	}

	// Target list: -targets spreads workers round-robin over a fleet (or
	// several routers); without it every worker hits -addr.
	tgtList := []string{*addr}
	if *targets != "" {
		tgtList = tgtList[:0]
		for _, a := range strings.Split(*targets, ",") {
			if a = strings.TrimSpace(a); a != "" {
				tgtList = append(tgtList, a)
			}
		}
		if len(tgtList) == 0 {
			log.Fatal("kvloadgen: -targets given but holds no addresses")
		}
	}

	// One shared histogram: Record is atomic and allocation-free, so all
	// workers feed it directly.
	lat := new(metrics.Histogram)
	stats := make([]connStats, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			st := &stats[id]
			ks := workload.NewKeyStream(*seed+uint64(id)*1000003, pats)
			var tt *ttlTracker
			if *ttlDur > 0 {
				tt = &ttlTracker{ttl: *ttlDur, deadlines: make(map[string]time.Time)}
			}
			if *direct {
				runDirect(st, cache, ks, shares[id], payload, lat, tt)
				return
			}
			c, err := kvproto.Dial(tgtList[id%len(tgtList)])
			if err != nil {
				st.err = err
				return
			}
			defer c.Close()
			runClient(st, c, ks, shares[id], payload, *depth, *mget, lat, tt)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Per-target accounting: workers map onto targets round-robin, so
	// target t owns workers t, t+len, t+2*len, ...
	perTgt := make([]connStats, len(tgtList))
	var errCount int
	var total connStats
	for i := range stats {
		ts := &perTgt[i%len(tgtList)]
		if stats[i].err != nil {
			errCount++
			if len(tgtList) == 1 && *targets == "" {
				log.Fatalf("kvloadgen: connection %d: %v", i, stats[i].err)
			}
			log.Printf("kvloadgen: connection %d (%s): %v", i, tgtList[i%len(tgtList)], stats[i].err)
			ts.err = stats[i].err
		}
		ts.gets += stats[i].gets
		ts.hits += stats[i].hits
		ts.sets += stats[i].sets
		total.gets += stats[i].gets
		total.hits += stats[i].hits
		total.sets += stats[i].sets
		total.expiredReads += stats[i].expiredReads
	}
	opsDone := total.gets + total.sets
	opsPerSec := float64(opsDone) / elapsed.Seconds()
	hitRatio := 0.0
	if total.gets > 0 {
		hitRatio = float64(total.hits) / float64(total.gets)
	}

	target := strings.Join(tgtList, ",")
	if *direct {
		target = "direct"
	}
	fmt.Printf("kvloadgen: %s mix=%s conns=%d multiget=%d gomaxprocs=%d\n",
		target, *mix, *conns, *mget, runtime.GOMAXPROCS(0))
	fmt.Printf("  %d ops in %.2fs = %.0f ops/s\n", opsDone, elapsed.Seconds(), opsPerSec)
	fmt.Printf("  gets %d, hit ratio %.4f, sets %d\n", total.gets, hitRatio, total.sets)
	if *ttlDur > 0 {
		fmt.Printf("  ttl %v on even keys: %d expired reads (misses explained by a passed deadline)\n",
			*ttlDur, total.expiredReads)
	}
	if len(tgtList) > 1 {
		for ti, ts := range perTgt {
			status := "ok"
			if ts.err != nil {
				status = "ERR " + ts.err.Error()
			}
			fmt.Printf("  target %s: %d gets, %d sets, %s\n", tgtList[ti], ts.gets, ts.sets, status)
		}
	}
	p99 := lat.Quantile(0.99)
	fmt.Printf("  rtt p50 %v p95 %v p99 %v max %v (%d samples)\n",
		lat.Quantile(0.50), lat.Quantile(0.95), p99, lat.Max(), lat.Count())

	if errCount > 0 {
		fmt.Printf("  FAIL: %d worker connections errored\n", errCount)
		os.Exit(1)
	}
	if *minOps > 0 && opsPerSec < float64(*minOps) {
		fmt.Printf("  FAIL: throughput %.0f ops/s below floor %d\n", opsPerSec, *minOps)
		os.Exit(1)
	}
	if *maxP99 > 0 && p99 > *maxP99 {
		fmt.Printf("  FAIL: p99 round-trip %v above ceiling %v\n", p99, *maxP99)
		os.Exit(1)
	}
}

// splitOps distributes total operations over workers so they sum exactly
// to total: the first total%workers workers take one extra op. The old
// total/workers-per-worker split silently dropped the remainder (-ops
// 400000 -conns 7 ran 399,994 ops), skewing the -min-ops arithmetic.
func splitOps(total uint64, workers int) []uint64 {
	shares := make([]uint64, workers)
	base, extra := total/uint64(workers), total%uint64(workers)
	for i := range shares {
		shares[i] = base
		if uint64(i) < extra {
			shares[i]++
		}
	}
	return shares
}

// runClient is the closed read-through loop, batched: each round sends up
// to depth gets in one write, reads their replies, then sends sets for the
// misses. Pipelining amortizes both sides' syscalls; depth 1 degenerates
// to strict request/reply. mget > 1 packs the round's keys into
// multi-key get requests of that size; every key still counts as one get
// in the tally (and so in the -min-ops gate), since each is one cache
// lookup server-side.
func runClient(st *connStats, c *kvproto.Client, ks *workload.KeyStream, n uint64, payload []byte, depth, mget int, lat *metrics.Histogram, tt *ttlTracker) {
	if depth < 1 {
		depth = 1
	}
	keys := make([][]byte, depth)
	for i := range keys {
		keys[i] = make([]byte, 0, 32)
	}
	miss := make([]bool, depth)
	for done := uint64(0); done < n; {
		b := depth
		if rem := n - done; rem < uint64(b) {
			b = int(rem)
		}
		for i := 0; i < b; i++ {
			keys[i] = strconv.AppendUint(keys[i][:0], ks.Next(), 10)
		}
		misses := 0
		if mget == 1 {
			for i := 0; i < b; i++ {
				c.SendGet(keys[i])
			}
			t0 := time.Now()
			if st.err = c.Flush(); st.err != nil {
				return
			}
			for i := 0; i < b; i++ {
				_, ok, err := c.ReadGetReply()
				if err != nil {
					st.err = err
					return
				}
				miss[i] = !ok
			}
			lat.RecordNS(int64(time.Since(t0)))
		} else {
			// Each mget-sized group goes out as one chunked burst: the
			// client splits past the protocol's per-request cap
			// transparently, so -multiget measures logical batch size.
			for base := 0; base < b; base += mget {
				end := base + mget
				if end > b {
					end = b
				}
				for i := base; i < end; i++ {
					miss[i] = true
				}
				off := base
				t0 := time.Now()
				if err := c.MultiGetChunked(keys[base:end], func(i int, _ uint32, _ []byte) {
					miss[off+i] = false
				}); err != nil {
					st.err = err
					return
				}
				lat.RecordNS(int64(time.Since(t0)))
			}
		}
		for i := 0; i < b; i++ {
			st.gets++
			if miss[i] {
				misses++
				if tt.expiredMiss(keys[i]) {
					st.expiredReads++
				}
			} else {
				st.hits++
			}
		}
		if misses > 0 {
			for i := 0; i < b; i++ {
				if miss[i] {
					exptime := tt.exptimeFor(keys[i])
					c.SendSet(keys[i], 0, exptime, payload)
					tt.noteSet(keys[i], exptime)
				}
			}
			t1 := time.Now()
			if st.err = c.Flush(); st.err != nil {
				return
			}
			for i := 0; i < misses; i++ {
				if st.err = c.ReadSetReply(); st.err != nil {
					return
				}
				st.sets++
			}
			lat.RecordNS(int64(time.Since(t1)))
		}
		done += uint64(b)
	}
}

// runDirect is the same loop against the cache API, for baselining the
// protocol + network overhead away. Latency is recorded per operation
// (there are no batches without a network).
func runDirect(st *connStats, cache *adaptivekv.Cache[string, []byte], ks *workload.KeyStream, n uint64, payload []byte, lat *metrics.Histogram, tt *ttlTracker) {
	key := make([]byte, 0, 32)
	for i := uint64(0); i < n; i++ {
		key = strconv.AppendUint(key[:0], ks.Next(), 10)
		t0 := time.Now()
		st.gets++
		if _, ok := cache.Get(string(key)); ok {
			st.hits++
			lat.RecordNS(int64(time.Since(t0)))
			continue
		}
		if tt.expiredMiss(key) {
			st.expiredReads++
		}
		exptime := tt.exptimeFor(key)
		if exptime > 0 {
			cache.SetTTL(string(key), payload, time.Now().Add(time.Duration(exptime)*time.Second).UnixNano())
			tt.noteSet(key, exptime)
		} else {
			cache.Set(string(key), payload)
		}
		st.sets++
		lat.RecordNS(int64(time.Since(t0)))
	}
}
