package main

import "testing"

// TestSplitOps: the per-worker split must sum to exactly the requested
// total (the old integer division dropped the remainder: -ops 400000
// -conns 7 ran only 399,994 ops) and stay balanced within one op.
func TestSplitOps(t *testing.T) {
	cases := []struct {
		total   uint64
		workers int
	}{
		{400000, 7}, // the reported bug: 400000/7*7 = 399994
		{400000, 4},
		{1, 1},
		{7, 7},
		{10, 3},
		{1000003, 8}, // prime total
		{64, 63},
	}
	for _, tc := range cases {
		shares := splitOps(tc.total, tc.workers)
		if len(shares) != tc.workers {
			t.Fatalf("splitOps(%d, %d): %d shares", tc.total, tc.workers, len(shares))
		}
		var sum, min, max uint64
		min = ^uint64(0)
		for _, s := range shares {
			sum += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if sum != tc.total {
			t.Errorf("splitOps(%d, %d) sums to %d, want exact total", tc.total, tc.workers, sum)
		}
		if max-min > 1 {
			t.Errorf("splitOps(%d, %d) unbalanced: min %d, max %d", tc.total, tc.workers, min, max)
		}
	}
}
