// Command kvrouter fronts a fleet of adaptcached nodes with one kvproto
// endpoint: clients speak the ordinary text protocol to the router, and
// the router owns placement (seeded consistent-hash ring with virtual
// nodes), fanout (scatter-gather multi-key gets reassembled in request
// order), and fleet health (noop probing with failure-threshold
// ejection and capped-backoff reintegration).
//
// Examples:
//
//	kvrouter -addr 127.0.0.1:11411 -nodes 10.0.0.1:11311,10.0.0.2:11311,10.0.0.3:11311
//	kvrouter -nodes a:11311,b:11311 -pool 8 -probe-interval 100ms
//	kvrouter -nodes a:11311,b:11311,c:11311 -replicas 2   # survive one node loss
//	kvrouter -http 127.0.0.1:8090   # Prometheus at /metrics, health at /healthz
//
// Failure semantics (see internal/kvcluster): an ejected owner's
// keyspace answers "SERVER_ERROR node down" immediately instead of
// queueing behind a dead peer; a multi-key get that lost an owner
// delivers the surviving VALUE blocks in request order and terminates
// with SERVER_ERROR instead of END; an ambiguous write surfaces as
// "SERVER_ERROR unacked" and is never replayed. With -replicas 2 each
// key has two ring owners: writes ack on the first live owner and
// best-effort copy to the rest, reads fail over to the next live owner,
// and a recovered node is flushed before reintegration so it can serve
// misses but never stale values. The serving envelope is
// kvserver's hardened Core: accept retry with backoff, -max-conns
// shedding, per-connection panic isolation, graceful drain on
// SIGINT/SIGTERM.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -http mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/kvcluster"
	"repro/internal/kvproto"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11411", "TCP listen address")
		httpAddr = flag.String("http", "", "optional HTTP listen address for /metrics and /healthz")
		nodes    = flag.String("nodes", "", "comma-separated backend node addresses (required)")
		vnodes   = flag.Int("vnodes", kvcluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
		seed     = flag.Uint64("seed", 1, "ring placement and backoff-jitter seed")
		pool     = flag.Int("pool", 4, "connections per backend node")
		replicas = flag.Int("replicas", 1, "ring owners per key; 2 replicates writes and fails reads over to the next live owner")
		failThr  = flag.Int("fail-threshold", kvcluster.DefaultFailThreshold, "consecutive failures that eject a node")
		probeIvl = flag.Duration("probe-interval", 250*time.Millisecond, "health probe period per node")
		probeMax = flag.Duration("probe-backoff-max", 2*time.Second, "probe delay cap while a node is ejected")
		dialTO   = flag.Duration("dial-timeout", 2*time.Second, "backend dial timeout")
		backTO   = flag.Duration("backend-timeout", 5*time.Second, "backend read/write timeout")
		readTO   = flag.Duration("read-timeout", 5*time.Minute, "per-request client read deadline (0 = none)")
		writeTO  = flag.Duration("write-timeout", 30*time.Second, "per-reply client write deadline (0 = none)")
		grace    = flag.Duration("drain", 5*time.Second, "shutdown drain period")
		maxConns = flag.Int("max-conns", 0, "max concurrent client connections; beyond this arrivals are shed with SERVER_ERROR busy (0 = unlimited)")
	)
	flag.Parse()

	nodeList := strings.Split(*nodes, ",")
	for i := range nodeList {
		nodeList[i] = strings.TrimSpace(nodeList[i])
	}
	if *nodes == "" || len(nodeList) == 0 {
		log.Fatal("kvrouter: -nodes is required (comma-separated backend addresses)")
	}

	cl, err := kvcluster.New(kvcluster.Config{
		Nodes:           nodeList,
		VNodes:          *vnodes,
		Seed:            *seed,
		PoolSize:        *pool,
		Replicas:        *replicas,
		FailThreshold:   *failThr,
		ProbeInterval:   *probeIvl,
		ProbeBackoffMax: *probeMax,
		Reconnect: kvproto.ReconnectConfig{
			DialTimeout:  *dialTO,
			ReadTimeout:  *backTO,
			WriteTimeout: *backTO,
			Seed:         *seed,
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("kvrouter: %v", err)
	}
	cl.Start()

	router := kvcluster.NewRouter(cl, kvcluster.RouterConfig{
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		MaxConns:     *maxConns,
		Logf:         log.Printf,
	})
	http.HandleFunc("/healthz", router.Healthz)
	http.Handle("/metrics", router.MetricsHandler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kvrouter: %v", err)
	}
	log.Printf("kvrouter: routing %d nodes on %s (%d vnodes/node, pool %d, probe %v)",
		len(nodeList), ln.Addr(), *vnodes, *pool, *probeIvl)

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				log.Printf("kvrouter: http server: %v", err)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("kvrouter: draining (%s grace)", *grace)
		router.Shutdown(ln, *grace)
	}()

	router.Serve(ln)
	router.Wait()
	cl.Close()
	bc := cl.BackendCounters()
	log.Printf("kvrouter: backend tallies: %d redials, %d retries, %d unacked, %d exhausted",
		bc.Redials.Load(), bc.Retries.Load(), bc.Unacked.Load(), bc.Exhausted.Load())
}
