// Command benchregress is the perf-regression harness for the simulator's
// hot path. It measures the two access loops everything else is built on —
// a plain LRU probe-and-fill (Cache.AccessTag) and a full adaptive access
// (real array + two shadow arrays + history) — the adaptivekv get/set
// paths, and the metrics histogram record primitive every kvserver latency
// observation runs through — plus, optionally, the wall clock of the
// ExtendedSet macro sweep, and writes the results to a JSON file:
//
//	benchregress                        # measure, write BENCH_hotpath.json
//	benchregress -macro-n 0             # hot-path loops only (fast)
//	benchregress -check                 # re-measure, compare, exit 1 on regression
//
// Each hot-path entry records accesses/sec, ns/access, allocs/access,
// wall clock, and the GOMAXPROCS the row was pinned to. allocs/access
// must be 0 on the serial fast paths: the adaptive path was made
// allocation-free, and any nonzero value here is a regression regardless
// of timing noise. -check compares ns/access against the committed file
// with a configurable tolerance so CI can catch slowdowns without
// flaking on machine jitter, and refuses outright to compare rows
// measured at different parallelism — a p1 baseline against a p8 fresh
// run is provenance corruption, not a regression signal.
//
// Multi-core rows extend the harness beyond serial loops:
//
//   - kv/Get/contended/{locked,optimistic}/p{1,2,4,8} hammer a single
//     hot shard from N goroutines with GOMAXPROCS pinned to N, with the
//     cache in StrictOrder (every Get takes the shard lock) versus the
//     default optimistic seqlock read path. The p8 pair carries the
//     scaling gate: optimistic throughput must be >= minScalingRatio x
//     the locked path at the same parallelism.
//   - kv/Cas/contended/p8 runs gets/cas read-modify-write loops against
//     a single hot shard from 8 goroutines: every CompareAndSwap takes
//     the shard lock, so the row records what contended atomic RMW costs
//     next to the optimistic plain-read rows. Scaling class: recorded
//     for the curve, exempt from the serial ns gate, and compare()
//     skips it against baselines written before the row existed.
//   - kvserver/loopback/multiget/p4 drives a real server over loopback
//     TCP with pipelined multi-key gets from 4 client goroutines — the
//     end-to-end number the per-layer optimizations have to add up to.
//   - kvrouter/loopback/3node/multiget sends the same client load
//     through a kvcluster Router fronting 3 in-process nodes, with the
//     batch tripled so each node still sees ~16 keys per scatter leg.
//     On hardware with >= 8 CPUs the router must at least match the
//     single-node row (it has 3 nodes' worth of cache behind it); on
//     smaller machines every tier timeshares the same cores, the fanout
//     goroutines are pure overhead, and the ratio is reported for the
//     record but not gated — same reasoning as the contended scaling
//     floor below.
//   - kvrouter/loopback/3node/replicated repeats the router row with
//     -replicas 2, recording what R=2 redundancy costs on the healthy
//     read path; reported for the curve, never gated.
//
// Contended and loopback rows are recorded for the scaling curve but
// exempt from the serial ns-vs-baseline and zero-alloc gates (goroutine
// startup and the network stack allocate; cross-machine parallel timing
// is not comparable at CI tolerances).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/adaptivekv"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kvcluster"
	"repro/internal/kvproto"
	"repro/internal/kvserver"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Gate classes: which -check gates apply to a row.
const (
	gateSerial     = ""           // ns-vs-baseline + zero-alloc (default)
	gateScaling    = "scaling"    // contended rows: scaling ratio only
	gateThroughput = "throughput" // loopback row: recorded, not gated
)

// minScalingRatio is the acceptance floor: optimistic contended Get at
// p8 must sustain at least this multiple of the locked path's
// throughput at the same parallelism.
const minScalingRatio = 3.0

// Entry is one measured hot-path loop. Parallelism is the GOMAXPROCS
// the row was pinned to while measuring (1 for the serial loops);
// entries from pre-provenance baselines decode as 0 and are treated as
// parallelism 1.
type Entry struct {
	Name            string  `json:"name"`
	Accesses        uint64  `json:"accesses"`
	WallNS          int64   `json:"wall_ns"`
	NSPerAccess     float64 `json:"ns_per_access"`
	AccessesPerSec  float64 `json:"accesses_per_sec"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
	Parallelism     int     `json:"parallelism,omitempty"`
	Gate            string  `json:"gate,omitempty"`
}

// Macro is the optional end-to-end figure-regeneration measurement.
type Macro struct {
	Name         string  `json:"name"`
	InstrsPerRun uint64  `json:"instrs_per_run"`
	WallNS       int64   `json:"wall_ns"`
	Seconds      float64 `json:"seconds"`
	SeedWallNS   int64   `json:"seed_wall_ns,omitempty"`
	Speedup      float64 `json:"speedup_vs_seed,omitempty"`
}

// Report is the file format of BENCH_hotpath.json. GoMaxProcs is the
// ambient setting at process start; each row additionally records the
// value it was pinned to, which is the one that matters for comparison.
type Report struct {
	Date       string  `json:"date"`
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs,omitempty"`
	HotPath    []Entry `json:"hot_path"`
	Macro      *Macro  `json:"macro,omitempty"`
}

func main() {
	var (
		n      = flag.Uint64("n", 5_000_000, "accesses per hot-path measurement")
		macroN = flag.Uint64("macro-n", 1_000_000, "instructions per run for the ExtendedSet macro sweep (0 = skip)")
		out    = flag.String("out", "BENCH_hotpath.json", "result file")
		check  = flag.Bool("check", false, "compare a fresh measurement against -out instead of overwriting it")
		tol    = flag.Float64("tolerance", 0.30, "allowed fractional ns/access slowdown in -check mode")
		seedNS = flag.Int64("seed-macro-ns", 33_270_000_000, "pre-optimization ExtendedSet wall clock, for the recorded speedup (0 = omit)")
	)
	flag.Parse()
	if err := realMain(*n, *macroN, *out, *check, *tol, *seedNS); err != nil {
		fmt.Fprintln(os.Stderr, "benchregress:", err)
		os.Exit(1)
	}
}

func realMain(n, macroN uint64, out string, check bool, tol float64, seedNS int64) error {
	if n == 0 {
		return fmt.Errorf("-n must be > 0")
	}
	rep := Report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		HotPath:    []Entry{measureLRU(n), measureAdaptive(n), measureKVGet(n), measureKVGetTTL(n), measureKVSet(n), measureHistogram(n)},
	}
	for _, procs := range []int{1, 2, 4, 8} {
		rep.HotPath = append(rep.HotPath,
			measureContended(n, procs, true),
			measureContended(n, procs, false))
	}
	rep.HotPath = append(rep.HotPath, measureContendedCas(n, 8))
	rep.HotPath = append(rep.HotPath, measureLoopback(n),
		measureRouterLoopback(n, 1), measureRouterLoopback(n, 2))
	for _, e := range rep.HotPath {
		fmt.Printf("%-36s %12.0f acc/s %8.2f ns/acc %8.3f allocs/acc  p%d\n",
			e.Name, e.AccessesPerSec, e.NSPerAccess, e.AllocsPerAccess, e.Parallelism)
	}
	if err := checkScaling(rep.HotPath); err != nil {
		return err
	}
	if err := checkRouterFloor(rep.HotPath); err != nil {
		return err
	}

	if check {
		return compare(out, rep.HotPath, tol)
	}

	if macroN > 0 {
		m := measureMacro(macroN, seedNS)
		rep.Macro = &m
		fmt.Printf("%-28s %12.2f s", m.Name, m.Seconds)
		if m.Speedup > 0 {
			fmt.Printf("  (%.2fx vs seed)", m.Speedup)
		}
		fmt.Println()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// measure times fn over n iterations after a warmup pass that brings the
// caches to steady state, so the allocation count reflects the sustained
// hot path rather than one-time table fills. Serial rows are pinned to
// GOMAXPROCS=1 for the duration so the recorded parallelism is the
// measured one, whatever the ambient setting.
func measure(name string, n uint64, warmup uint64, fn func(rng uint64)) Entry {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	rng := uint64(1)
	step := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := uint64(0); i < warmup; i++ {
		fn(step())
	}
	e := measureOnce(name, n, fn, step)
	if e.AllocsPerAccess > 0 {
		// One-shot runtime events (a GC cycle or finalizer wakeup landing
		// inside the timed window) can charge a stray malloc to an
		// otherwise allocation-free loop. A genuine per-access allocation
		// reproduces on every pass, so one clean re-measure separates the
		// two without loosening the zero-allocation gate.
		e = measureOnce(name, n, fn, step)
	}
	return e
}

func measureOnce(name string, n uint64, fn func(rng uint64), step func() uint64) Entry {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := uint64(0); i < n; i++ {
		fn(step())
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	return Entry{
		Name:            name,
		Accesses:        n,
		WallNS:          wall.Nanoseconds(),
		NSPerAccess:     float64(wall.Nanoseconds()) / float64(n),
		AccessesPerSec:  float64(n) / wall.Seconds(),
		AllocsPerAccess: float64(allocs) / float64(n),
		Parallelism:     1,
	}
}

func measureLRU(n uint64) Entry {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	c := cache.New(g, policy.NewLRU())
	sets := g.Sets()
	return measure("lru/AccessTag", n, n/10, func(rng uint64) {
		c.AccessTag(int(rng)&(sets-1), rng>>10, false)
	})
}

func measureAdaptive(n uint64) Entry {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	ad := core.NewAdaptive(core.DefaultComponents(), core.WithShadowTagBits(8))
	c := cache.New(g, ad)
	return measure("adaptive8/Access", n, n/10, func(rng uint64) {
		c.Access(cache.Addr(rng%(1<<26)), false)
	})
}

// measureKVGet times the adaptivekv hit path: hash + shard lock + SBAR
// engine probe + key compare. Like the simulator loops, it must not
// allocate in steady state.
func measureKVGet(n uint64) Entry {
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{})
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	return measure("kv/Get", n, n/10, func(rng uint64) {
		c.Get(rng % keys)
	})
}

// measureKVGetTTL times the same hit path with TTL bookkeeping armed:
// every entry carries a far-future deadline, so each Get takes the
// ttlInUse branch and compares the deadline against the coarse clock.
// The row exists to keep that branch allocation-free and to bound its
// cost relative to the plain kv/Get row.
func measureKVGetTTL(n uint64) Entry {
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{})
	defer c.Close()
	const keys = 4096
	deadline := time.Now().Add(24 * time.Hour).UnixNano()
	for k := uint64(0); k < keys; k++ {
		c.SetTTL(k, k, deadline)
	}
	return measure("kv/Get/ttl", n, n/10, func(rng uint64) {
		c.Get(rng % keys)
	})
}

// measureKVSet times steady-state stores over a keyspace several times the
// cache's capacity, so most iterations run the full adaptive victim path.
func measureKVSet(n uint64) Entry {
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{})
	return measure("kv/Set", n, n/10, func(rng uint64) {
		c.Set(rng%100_000, rng)
	})
}

// xorshift advances the per-goroutine RNG used by the parallel rows.
func xorshift(rng uint64) uint64 {
	rng ^= rng << 13
	rng ^= rng >> 7
	rng ^= rng << 17
	return rng
}

// measureContended hammers a single hot shard from procs goroutines with
// GOMAXPROCS pinned to procs. strict=true forces every Get through the
// shard mutex (the pre-optimization path, kept honest via StrictOrder);
// strict=false takes the optimistic seqlock read path. One shard is the
// worst case on purpose: with the default 16 shards, lock contention
// dilutes and the comparison flatters the locked path.
func measureContended(n uint64, procs int, strict bool) Entry {
	mode := "optimistic"
	if strict {
		mode = "locked"
	}
	name := fmt.Sprintf("kv/Get/contended/%s/p%d", mode, procs)
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{
		Shards: 1, Sets: 1024, Ways: 4, StrictOrder: strict,
	})
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	for i, rng := uint64(0), uint64(1); i < n/10; i++ { // warm serially
		rng = xorshift(rng)
		c.Get(rng % keys)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	per := n / uint64(procs)
	total := per * uint64(procs)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(rng uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				rng = xorshift(rng)
				c.Get(rng % keys)
			}
		}(uint64(g)*0x9e3779b97f4a7c15 + 1)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	return Entry{
		Name:            name,
		Accesses:        total,
		WallNS:          wall.Nanoseconds(),
		NSPerAccess:     float64(wall.Nanoseconds()) / float64(total),
		AccessesPerSec:  float64(total) / wall.Seconds(),
		AllocsPerAccess: float64(allocs) / float64(total),
		Parallelism:     procs,
		Gate:            gateScaling,
	}
}

// measureContendedCas hammers gets/cas read-modify-write loops on a
// single hot shard from procs goroutines: GetCas reads the value with
// its unique, CompareAndSwap attempts the increment, and conflicts are
// simply counted as attempts — a benchmark retry loop would measure the
// conflict rate, not the operation cost. Every CompareAndSwap serializes
// on the shard lock, so this is the write-side counterpart of the
// contended Get rows. One access = one RMW attempt (a GetCas plus a
// CompareAndSwap).
func measureContendedCas(n uint64, procs int) Entry {
	name := fmt.Sprintf("kv/Cas/contended/p%d", procs)
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{
		Shards: 1, Sets: 1024, Ways: 4,
	})
	const keys = 64 // far under capacity: every key stays resident
	for k := uint64(0); k < keys; k++ {
		c.Set(k, 0)
	}
	rmw := func(rng uint64) {
		k := rng % keys
		if v, id, ok := c.GetCas(k); ok {
			c.CompareAndSwap(k, v+1, id, 0)
		}
	}
	for i, rng := uint64(0), uint64(1); i < n/10; i++ { // warm serially
		rng = xorshift(rng)
		rmw(rng)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	per := n / uint64(procs)
	total := per * uint64(procs)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(rng uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				rng = xorshift(rng)
				rmw(rng)
			}
		}(uint64(g)*0x9e3779b97f4a7c15 + 1)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	return Entry{
		Name:            name,
		Accesses:        total,
		WallNS:          wall.Nanoseconds(),
		NSPerAccess:     float64(wall.Nanoseconds()) / float64(total),
		AccessesPerSec:  float64(total) / wall.Seconds(),
		AllocsPerAccess: float64(allocs) / float64(total),
		Parallelism:     procs,
		Gate:            gateScaling,
	}
}

// loopbackClients is the client-goroutine count (and pinned GOMAXPROCS)
// for the end-to-end loopback row; loopbackBatch keys ride each multiget.
const (
	loopbackClients = 4
	loopbackBatch   = 16
)

// driveLoopback runs the shared client load against addr: loopbackClients
// goroutines, each looping pipelined batch-key multigets over its own
// pre-stored keyspace, GOMAXPROCS pinned to the client count. Accesses
// counts keys fetched, not round trips.
func driveLoopback(name, addr string, batch int, n uint64) Entry {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(loopbackClients))
	total := n / 8 // network round trips are ~100x slower than cache probes
	perClient := total / loopbackClients
	rounds := perClient / uint64(batch)
	if rounds == 0 {
		rounds = 1
	}
	keysFetched := uint64(loopbackClients) * rounds * uint64(batch)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, loopbackClients)
	for g := 0; g < loopbackClients; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := kvproto.DialTimeout(addr, 5*time.Second, 30*time.Second, 30*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			keys := make([][]byte, batch)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("bench-%d-%d", id, i))
				if err := c.Set(keys[i], 0, 0, []byte("loopback-value")); err != nil {
					errs <- err
					return
				}
			}
			for r := uint64(0); r < rounds; r++ {
				if err := c.MultiGet(keys, func(int, uint32, []byte) {}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		panic(fmt.Sprintf("loopback client: %v", err))
	default:
	}
	return Entry{
		Name:           name,
		Accesses:       keysFetched,
		WallNS:         wall.Nanoseconds(),
		NSPerAccess:    float64(wall.Nanoseconds()) / float64(keysFetched),
		AccessesPerSec: float64(keysFetched) / wall.Seconds(),
		Parallelism:    loopbackClients,
		Gate:           gateThroughput,
	}
}

// measureLoopback drives a real kvserver over loopback TCP with
// pipelined multi-key gets: the end-to-end throughput the per-layer
// optimizations (optimistic reads, shard-batched dispatch, coalesced
// flushes) have to add up to.
func measureLoopback(n uint64) Entry {
	srv := kvserver.New(kvserver.Config{
		Cache:        adaptivekv.Config{Shards: 16, Sets: 256, Ways: 4},
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("loopback listen: %v", err))
	}
	go srv.Serve(ln)
	defer srv.Shutdown(ln, time.Second)
	return driveLoopback(fmt.Sprintf("kvserver/loopback/multiget/p%d", loopbackClients),
		ln.Addr().String(), loopbackBatch, n)
}

// Router-row shape: 3 nodes, batch tripled so each node still sees
// ~loopbackBatch keys per scatter leg; routerFloorRatio is the
// acceptance floor vs the single-node row where hardware permits.
const (
	routerNodes      = 3
	routerBatch      = loopbackBatch * routerNodes
	routerFloorRatio = 1.0
)

// measureRouterLoopback sends the same client load through a kvcluster
// Router fronting routerNodes in-process kvservers: clients dial the
// router exactly as they would one node, and every multiget exercises
// the full scatter-gather path (split by ring owner, concurrent
// per-node sub-gets, request-order reassembly). With replicas > 1 the
// row records what R=2 redundancy costs on the healthy-path read
// (replica-set computation per key; the write-side fan-out happens only
// during the per-client Set preload) — reported for the curve, not
// gated, since the price of surviving a node loss is a capacity choice,
// not a regression.
func measureRouterLoopback(n uint64, replicas int) Entry {
	f, err := fleet.Start(routerNodes, func(int) fleet.NodeConfig {
		return fleet.NodeConfig{Server: kvserver.Config{
			Cache:        adaptivekv.Config{Shards: 16, Sets: 256, Ways: 4},
			ReadTimeout:  30 * time.Second,
			WriteTimeout: 30 * time.Second,
		}}
	})
	if err != nil {
		panic(fmt.Sprintf("router fleet: %v", err))
	}
	defer f.Close()
	cl, err := kvcluster.New(kvcluster.Config{
		Nodes:    f.Addrs(),
		Seed:     1,
		PoolSize: loopbackClients,
		Replicas: replicas,
		Reconnect: kvproto.ReconnectConfig{
			DialTimeout:  5 * time.Second,
			ReadTimeout:  30 * time.Second,
			WriteTimeout: 30 * time.Second,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("router cluster: %v", err))
	}
	cl.Start()
	defer cl.Close()
	router := kvcluster.NewRouter(cl, kvcluster.RouterConfig{WriteTimeout: 30 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("router listen: %v", err))
	}
	go router.Serve(ln)
	defer router.Shutdown(ln, time.Second)
	name := "kvrouter/loopback/3node/multiget"
	if replicas > 1 {
		name = "kvrouter/loopback/3node/replicated"
	}
	return driveLoopback(name, ln.Addr().String(), routerBatch, n)
}

// checkScaling enforces the acceptance floor on a fresh measurement: at
// p8, the optimistic contended-Get row must sustain >= minScalingRatio
// x the locked row's throughput. Runs in both write and -check modes —
// the scaling property is a gate on the code, not on a baseline file.
//
// The floor is only enforceable on hardware that can actually contend:
// with fewer than 8 CPUs, GOMAXPROCS=8 timeshares threads on the cores
// available, the shard mutex is rarely held by a *running* thread, and
// the locked path measures nearly contention-free. On such machines the
// ratio is printed for the record but not gated — a 1-core container
// saying "no scaling regression" would be a lie in both directions.
func checkScaling(entries []Entry) error {
	var locked, opt *Entry
	for i := range entries {
		switch entries[i].Name {
		case "kv/Get/contended/locked/p8":
			locked = &entries[i]
		case "kv/Get/contended/optimistic/p8":
			opt = &entries[i]
		}
	}
	if locked == nil || opt == nil {
		return fmt.Errorf("contended p8 rows missing; cannot check scaling")
	}
	ratio := opt.AccessesPerSec / locked.AccessesPerSec
	if ncpu := runtime.NumCPU(); ncpu < 8 {
		fmt.Printf("%-36s %.2fx optimistic vs locked at p8 (floor %.1fx not enforced: %d CPUs cannot contend 8 threads)\n",
			"kv/Get/contended scaling", ratio, minScalingRatio, ncpu)
		return nil
	}
	fmt.Printf("%-36s %.2fx optimistic vs locked at p8 (floor %.1fx)\n", "kv/Get/contended scaling", ratio, minScalingRatio)
	if ratio < minScalingRatio {
		return fmt.Errorf("contended Get scaling %.2fx at p8 is below the %.1fx floor", ratio, minScalingRatio)
	}
	return nil
}

// checkRouterFloor enforces the routing-tier acceptance floor: the
// router row, with 3 nodes' worth of cache behind it, must at least
// match the single-node loopback row at the same client parallelism.
// Like checkScaling, the floor is only meaningful on hardware where the
// tiers can actually run concurrently: with fewer than 8 CPUs the
// clients, the router's fanout goroutines, and all three backends
// timeshare the same cores, the extra hop is pure serialized overhead,
// and the ratio is reported for the record but not gated.
func checkRouterFloor(entries []Entry) error {
	var single, routed *Entry
	for i := range entries {
		switch entries[i].Name {
		case fmt.Sprintf("kvserver/loopback/multiget/p%d", loopbackClients):
			single = &entries[i]
		case "kvrouter/loopback/3node/multiget":
			routed = &entries[i]
		}
	}
	if single == nil || routed == nil {
		return fmt.Errorf("loopback rows missing; cannot check router floor")
	}
	ratio := routed.AccessesPerSec / single.AccessesPerSec
	if ncpu := runtime.NumCPU(); ncpu < 8 {
		fmt.Printf("%-36s %.2fx router vs single node (floor %.1fx not enforced: %d CPUs serialize the tiers)\n",
			"kvrouter/loopback floor", ratio, routerFloorRatio, ncpu)
		return nil
	}
	fmt.Printf("%-36s %.2fx router vs single node (floor %.1fx)\n", "kvrouter/loopback floor", ratio, routerFloorRatio)
	if ratio < routerFloorRatio {
		return fmt.Errorf("router multiget throughput is %.2fx the single-node row, below the %.1fx floor", ratio, routerFloorRatio)
	}
	return nil
}

// measureHistogram times metrics.Histogram.RecordNS — the primitive every
// per-op latency observation in kvserver funnels through, sitting inside
// the request loop itself. Its contract is zero allocations per record;
// compare() fails outright on any nonzero allocs/access, so wiring a
// heap-allocating observation path can never land silently.
func measureHistogram(n uint64) Entry {
	h := new(metrics.Histogram)
	return measure("metrics/Record", n, n/10, func(rng uint64) {
		h.RecordNS(int64(rng % 50_000_000)) // spread over ~21 octaves of buckets
	})
}

func measureMacro(instrs uint64, seedNS int64) Macro {
	o := sim.Options{Instrs: instrs, Warmup: instrs / 5}
	start := time.Now()
	sim.ExtendedSet(o)
	wall := time.Since(start)
	m := Macro{
		Name:         "ExtendedSet",
		InstrsPerRun: instrs,
		WallNS:       wall.Nanoseconds(),
		Seconds:      wall.Seconds(),
	}
	if seedNS > 0 {
		m.SeedWallNS = seedNS
		m.Speedup = float64(seedNS) / float64(wall.Nanoseconds())
	}
	return m
}

// rowParallelism normalizes a recorded parallelism: rows written before
// provenance tracking decode as 0 and were all serial.
func rowParallelism(e Entry) int {
	if e.Parallelism == 0 {
		return 1
	}
	return e.Parallelism
}

// compare reloads the committed report and fails if any serial hot-path
// loop got slower than tolerance allows or started allocating. Rows
// measured at different parallelism than their baseline are refused
// outright — that is a provenance error, and "p1 baseline vs p8 fresh"
// numbers would be nonsense in either direction. Scaling and throughput
// rows are reported but not gated against the baseline (the in-run
// scaling floor in checkScaling covers them).
func compare(path string, fresh []Entry, tol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("no baseline to check against: %w", err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	byName := make(map[string]Entry, len(base.HotPath))
	for _, e := range base.HotPath {
		byName[e.Name] = e
	}
	failed := false
	for _, e := range fresh {
		b, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-36s no baseline entry, skipping\n", e.Name)
			continue
		}
		if bp, fp := rowParallelism(b), rowParallelism(e); bp != fp {
			return fmt.Errorf("%s: baseline measured at parallelism %d, fresh at %d; refusing to compare", e.Name, bp, fp)
		}
		if e.Gate != gateSerial {
			fmt.Printf("%-36s info: %.0f acc/s vs baseline %.0f (%s row, not gated)\n",
				e.Name, e.AccessesPerSec, b.AccessesPerSec, e.Gate)
			continue
		}
		limit := b.NSPerAccess * (1 + tol)
		switch {
		case e.AllocsPerAccess > 0:
			fmt.Printf("%-36s FAIL: %.3f allocs/access, hot path must not allocate\n", e.Name, e.AllocsPerAccess)
			failed = true
		case e.NSPerAccess > limit:
			fmt.Printf("%-36s FAIL: %.2f ns/access vs baseline %.2f (limit %.2f)\n",
				e.Name, e.NSPerAccess, b.NSPerAccess, limit)
			failed = true
		default:
			fmt.Printf("%-36s ok: %.2f ns/access vs baseline %.2f\n", e.Name, e.NSPerAccess, b.NSPerAccess)
		}
	}
	if failed {
		return fmt.Errorf("hot-path performance regressed")
	}
	return nil
}
