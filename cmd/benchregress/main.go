// Command benchregress is the perf-regression harness for the simulator's
// hot path. It measures the two access loops everything else is built on —
// a plain LRU probe-and-fill (Cache.AccessTag) and a full adaptive access
// (real array + two shadow arrays + history) — the adaptivekv get/set
// paths, and the metrics histogram record primitive every kvserver latency
// observation runs through — plus, optionally, the wall clock of the
// ExtendedSet macro sweep, and writes the results to a JSON file:
//
//	benchregress                        # measure, write BENCH_hotpath.json
//	benchregress -macro-n 0             # hot-path loops only (fast)
//	benchregress -check                 # re-measure, compare, exit 1 on regression
//
// Each hot-path entry records accesses/sec, ns/access, allocs/access, and
// wall clock. allocs/access must be 0: the adaptive path was made
// allocation-free, and any nonzero value here is a regression regardless
// of timing noise. -check compares ns/access against the committed file
// with a configurable tolerance so CI can catch slowdowns without flaking
// on machine jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/adaptivekv"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Entry is one measured hot-path loop.
type Entry struct {
	Name            string  `json:"name"`
	Accesses        uint64  `json:"accesses"`
	WallNS          int64   `json:"wall_ns"`
	NSPerAccess     float64 `json:"ns_per_access"`
	AccessesPerSec  float64 `json:"accesses_per_sec"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
}

// Macro is the optional end-to-end figure-regeneration measurement.
type Macro struct {
	Name         string  `json:"name"`
	InstrsPerRun uint64  `json:"instrs_per_run"`
	WallNS       int64   `json:"wall_ns"`
	Seconds      float64 `json:"seconds"`
	SeedWallNS   int64   `json:"seed_wall_ns,omitempty"`
	Speedup      float64 `json:"speedup_vs_seed,omitempty"`
}

// Report is the file format of BENCH_hotpath.json.
type Report struct {
	Date    string  `json:"date"`
	GoOS    string  `json:"goos"`
	GoArch  string  `json:"goarch"`
	NumCPU  int     `json:"num_cpu"`
	HotPath []Entry `json:"hot_path"`
	Macro   *Macro  `json:"macro,omitempty"`
}

func main() {
	var (
		n      = flag.Uint64("n", 5_000_000, "accesses per hot-path measurement")
		macroN = flag.Uint64("macro-n", 1_000_000, "instructions per run for the ExtendedSet macro sweep (0 = skip)")
		out    = flag.String("out", "BENCH_hotpath.json", "result file")
		check  = flag.Bool("check", false, "compare a fresh measurement against -out instead of overwriting it")
		tol    = flag.Float64("tolerance", 0.30, "allowed fractional ns/access slowdown in -check mode")
		seedNS = flag.Int64("seed-macro-ns", 33_270_000_000, "pre-optimization ExtendedSet wall clock, for the recorded speedup (0 = omit)")
	)
	flag.Parse()
	if err := realMain(*n, *macroN, *out, *check, *tol, *seedNS); err != nil {
		fmt.Fprintln(os.Stderr, "benchregress:", err)
		os.Exit(1)
	}
}

func realMain(n, macroN uint64, out string, check bool, tol float64, seedNS int64) error {
	if n == 0 {
		return fmt.Errorf("-n must be > 0")
	}
	rep := Report{
		Date:    time.Now().UTC().Format(time.RFC3339),
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		HotPath: []Entry{measureLRU(n), measureAdaptive(n), measureKVGet(n), measureKVSet(n), measureHistogram(n)},
	}
	for _, e := range rep.HotPath {
		fmt.Printf("%-28s %12.0f acc/s %8.2f ns/acc %8.3f allocs/acc\n",
			e.Name, e.AccessesPerSec, e.NSPerAccess, e.AllocsPerAccess)
	}

	if check {
		return compare(out, rep.HotPath, tol)
	}

	if macroN > 0 {
		m := measureMacro(macroN, seedNS)
		rep.Macro = &m
		fmt.Printf("%-28s %12.2f s", m.Name, m.Seconds)
		if m.Speedup > 0 {
			fmt.Printf("  (%.2fx vs seed)", m.Speedup)
		}
		fmt.Println()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// measure times fn over n iterations after a warmup pass that brings the
// caches to steady state, so the allocation count reflects the sustained
// hot path rather than one-time table fills.
func measure(name string, n uint64, warmup uint64, fn func(rng uint64)) Entry {
	rng := uint64(1)
	step := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := uint64(0); i < warmup; i++ {
		fn(step())
	}
	e := measureOnce(name, n, fn, step)
	if e.AllocsPerAccess > 0 {
		// One-shot runtime events (a GC cycle or finalizer wakeup landing
		// inside the timed window) can charge a stray malloc to an
		// otherwise allocation-free loop. A genuine per-access allocation
		// reproduces on every pass, so one clean re-measure separates the
		// two without loosening the zero-allocation gate.
		e = measureOnce(name, n, fn, step)
	}
	return e
}

func measureOnce(name string, n uint64, fn func(rng uint64), step func() uint64) Entry {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := uint64(0); i < n; i++ {
		fn(step())
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	return Entry{
		Name:            name,
		Accesses:        n,
		WallNS:          wall.Nanoseconds(),
		NSPerAccess:     float64(wall.Nanoseconds()) / float64(n),
		AccessesPerSec:  float64(n) / wall.Seconds(),
		AllocsPerAccess: float64(allocs) / float64(n),
	}
}

func measureLRU(n uint64) Entry {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	c := cache.New(g, policy.NewLRU())
	sets := g.Sets()
	return measure("lru/AccessTag", n, n/10, func(rng uint64) {
		c.AccessTag(int(rng)&(sets-1), rng>>10, false)
	})
}

func measureAdaptive(n uint64) Entry {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	ad := core.NewAdaptive(core.DefaultComponents(), core.WithShadowTagBits(8))
	c := cache.New(g, ad)
	return measure("adaptive8/Access", n, n/10, func(rng uint64) {
		c.Access(cache.Addr(rng%(1<<26)), false)
	})
}

// measureKVGet times the adaptivekv hit path: hash + shard lock + SBAR
// engine probe + key compare. Like the simulator loops, it must not
// allocate in steady state.
func measureKVGet(n uint64) Entry {
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{})
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	return measure("kv/Get", n, n/10, func(rng uint64) {
		c.Get(rng % keys)
	})
}

// measureKVSet times steady-state stores over a keyspace several times the
// cache's capacity, so most iterations run the full adaptive victim path.
func measureKVSet(n uint64) Entry {
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{})
	return measure("kv/Set", n, n/10, func(rng uint64) {
		c.Set(rng%100_000, rng)
	})
}

// measureHistogram times metrics.Histogram.RecordNS — the primitive every
// per-op latency observation in kvserver funnels through, sitting inside
// the request loop itself. Its contract is zero allocations per record;
// compare() fails outright on any nonzero allocs/access, so wiring a
// heap-allocating observation path can never land silently.
func measureHistogram(n uint64) Entry {
	h := new(metrics.Histogram)
	return measure("metrics/Record", n, n/10, func(rng uint64) {
		h.RecordNS(int64(rng % 50_000_000)) // spread over ~21 octaves of buckets
	})
}

func measureMacro(instrs uint64, seedNS int64) Macro {
	o := sim.Options{Instrs: instrs, Warmup: instrs / 5}
	start := time.Now()
	sim.ExtendedSet(o)
	wall := time.Since(start)
	m := Macro{
		Name:         "ExtendedSet",
		InstrsPerRun: instrs,
		WallNS:       wall.Nanoseconds(),
		Seconds:      wall.Seconds(),
	}
	if seedNS > 0 {
		m.SeedWallNS = seedNS
		m.Speedup = float64(seedNS) / float64(wall.Nanoseconds())
	}
	return m
}

// compare reloads the committed report and fails if any hot-path loop got
// slower than tolerance allows or started allocating.
func compare(path string, fresh []Entry, tol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("no baseline to check against: %w", err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	byName := make(map[string]Entry, len(base.HotPath))
	for _, e := range base.HotPath {
		byName[e.Name] = e
	}
	failed := false
	for _, e := range fresh {
		b, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-28s no baseline entry, skipping\n", e.Name)
			continue
		}
		limit := b.NSPerAccess * (1 + tol)
		switch {
		case e.AllocsPerAccess > 0:
			fmt.Printf("%-28s FAIL: %.3f allocs/access, hot path must not allocate\n", e.Name, e.AllocsPerAccess)
			failed = true
		case e.NSPerAccess > limit:
			fmt.Printf("%-28s FAIL: %.2f ns/access vs baseline %.2f (limit %.2f)\n",
				e.Name, e.NSPerAccess, b.NSPerAccess, limit)
			failed = true
		default:
			fmt.Printf("%-28s ok: %.2f ns/access vs baseline %.2f\n", e.Name, e.NSPerAccess, b.NSPerAccess)
		}
	}
	if failed {
		return fmt.Errorf("hot-path performance regressed")
	}
	return nil
}
