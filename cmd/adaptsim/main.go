// Command adaptsim runs one or more benchmarks from the synthetic suite
// under a chosen L2 replacement configuration and prints MPKI (and CPI in
// timing mode) per benchmark.
//
// Examples:
//
//	adaptsim -bench lucas -policy LRU
//	adaptsim -bench primary -policy adaptive -tagbits 8 -mode timing
//	adaptsim -bench all -policy sbar -n 2000000
//	adaptsim -bench ammp -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "primary", "benchmark name, 'primary', or 'all'")
		pol     = flag.String("policy", "adaptive", "LRU|LFU|FIFO|MRU|Random|adaptive|sbar")
		comps   = flag.String("components", "LRU,LFU", "component policies for adaptive/sbar")
		tagBits = flag.Int("tagbits", 0, "partial shadow-tag bits (0 = full tags)")
		leaders = flag.Int("leaders", 0, "SBAR leader sets (0 = default 16)")
		n       = flag.Uint64("n", 1_000_000, "instructions per benchmark")
		warm    = flag.Uint64("warmup", 0, "leading instructions excluded from MPKI (default n/5)")
		mode    = flag.String("mode", "cache", "cache (fast, MPKI only), timing (adds CPI), or profile (workload characterization)")
		size    = flag.Int("size", 512, "L2 size in KB")
		ways    = flag.Int("ways", 8, "L2 associativity")
		cpuOut  = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
		memOut  = flag.String("memprofile", "", "write a pprof heap profile taken after the simulation to this file")
	)
	flag.Parse()
	if *warm == 0 {
		*warm = *n / 5
	}
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(*bench, *pol, *comps, *tagBits, *leaders, *n, *warm, *mode, *size, *ways); err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim:", err)
		os.Exit(1)
	}
	if *memOut != "" {
		f, err := os.Create(*memOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // flush dead objects so the profile shows live simulation state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
	}
}

func run(bench, pol, comps string, tagBits, leaders int, n, warmup uint64, mode string, sizeKB, ways int) error {
	var spec sim.PolicySpec
	compList := strings.Split(comps, ",")
	switch strings.ToLower(pol) {
	case "adaptive":
		spec = sim.AdaptiveSpec(tagBits, compList...)
	case "sbar":
		spec = sim.SBARSpec(tagBits, leaders, compList...)
	default:
		spec = sim.SingleSpec(pol)
	}
	for _, name := range spec.Components {
		if _, err := policy.ByName(name); err != nil {
			return fmt.Errorf("%w (known: %s)", err, strings.Join(policy.ExtendedNames(), ", "))
		}
	}

	cfg := sim.Default(spec, n)
	cfg.Warmup = warmup
	cfg.L2Geom.SizeBytes = sizeKB << 10
	cfg.L2Geom.Ways = ways
	if err := cfg.L2Geom.Validate(); err != nil {
		return err
	}

	var specs []workload.Spec
	switch bench {
	case "primary":
		for _, name := range workload.PrimaryNames() {
			s, _ := workload.ByName(name)
			specs = append(specs, s)
		}
	case "all":
		specs = workload.Suite()
	default:
		s, err := workload.ByName(bench)
		if err != nil {
			return err
		}
		specs = []workload.Spec{s}
	}

	if mode == "profile" {
		return profile(cfg, specs)
	}
	timing := mode == "timing"
	if timing {
		fmt.Printf("%-14s %-22s %10s %8s\n", "benchmark", "policy", "MPKI", "CPI")
	} else {
		fmt.Printf("%-14s %-22s %10s\n", "benchmark", "policy", "MPKI")
	}
	var sumM, sumC float64
	for _, s := range specs {
		var r sim.Result
		if timing {
			r = sim.Run(cfg, s)
			fmt.Printf("%-14s %-22s %10.3f %8.3f\n", r.Benchmark, r.Policy, r.MPKI, r.CPI)
		} else {
			r = sim.RunCacheOnly(cfg, s)
			fmt.Printf("%-14s %-22s %10.3f\n", r.Benchmark, r.Policy, r.MPKI)
		}
		sumM += r.MPKI
		sumC += r.CPI
	}
	if len(specs) > 1 {
		fmt.Printf("%-14s %-22s %10.3f", "average", spec.Label(), sumM/float64(len(specs)))
		if timing {
			fmt.Printf(" %8.3f", sumC/float64(len(specs)))
		}
		fmt.Println()
	}
	return nil
}

// profile prints a workload-characterization row per benchmark: reference
// rates, per-level miss behavior, and branch statistics from a timing run.
func profile(cfg sim.Config, specs []workload.Spec) error {
	fmt.Printf("%-14s %8s %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "refs/KI", "L1D-m%", "L1I-MPKI", "L2-APKI", "L2-MPKI", "br-mis%", "CPI")
	for _, s := range specs {
		r := sim.Run(cfg, s)
		ki := float64(r.CPU.Instructions) / 1000
		refs := float64(r.L1D.Accesses) / ki
		l1dm := 100 * r.L1D.MissRatio()
		l1i := float64(r.L1I.Misses) / ki
		l2a := float64(r.L2.Accesses) / ki
		brm := 0.0
		if r.CPU.Branches > 0 {
			brm = 100 * float64(r.CPU.Mispredicts) / float64(r.CPU.Branches)
		}
		fmt.Printf("%-14s %8.1f %8.1f %8.3f %8.1f %8.2f %8.2f %8.3f\n",
			s.Name, refs, l1dm, l1i, l2a, r.MPKI, brm, r.CPI)
	}
	return nil
}
