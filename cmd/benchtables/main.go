// Command benchtables regenerates every table and figure of the paper's
// evaluation section. By default it produces all of them; -fig selects one
// (3, 4, 5, 6, 7, 8, 9, 10, extended, five, l1, sbar, overhead).
//
// Figures run concurrently on the process-wide engine pool, each rendering
// into its own buffer; output is printed in figure order regardless of
// completion order, so -fig all produces identical bytes at any
// parallelism.
//
//	benchtables -fig 3 -n 10000000
//	benchtables -out results.txt
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

func main() {
	var (
		fig  = flag.String("fig", "all", "which figure/table to regenerate")
		n    = flag.Uint64("n", 10_000_000, "instructions per benchmark run")
		warm = flag.Uint64("warmup", 0, "warmup instructions excluded from MPKI (default n/5)")
		out  = flag.String("out", "", "write output to file instead of stdout")
	)
	flag.Parse()
	if *warm == 0 {
		*warm = *n / 5
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	o := sim.Options{Instrs: *n, Warmup: *warm}
	if err := emit(w, *fig, o); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func emit(w io.Writer, fig string, o sim.Options) error {
	type job struct {
		name string
		run  func(w io.Writer) error
	}
	// The multi-configuration sweeps (associativity, store buffer,
	// extended set) divide the per-run instruction budget to keep full
	// regeneration tractable; the divisor is reported with each table.
	table := func(f func(sim.Options) *sim.Table, div uint64) func(io.Writer) error {
		return func(w io.Writer) error {
			od := o
			od.Instrs /= div
			od.Warmup /= div
			if div > 1 {
				fmt.Fprintf(w, "(budget %d instructions/run)\n", od.Instrs)
			}
			f(od).Fprint(w)
			return nil
		}
	}
	phase := func(bench string) func(io.Writer) error {
		return func(w io.Writer) error {
			pm, err := sim.Fig7(o, bench, 64)
			if err != nil {
				return err
			}
			pm.Render(w, 32, 64)
			return nil
		}
	}
	jobs := []job{
		{"overhead", func(w io.Writer) error { sim.OverheadTable().Fprint(w); return nil }},
		{"3", table(sim.Fig3, 1)},
		{"4", table(sim.Fig4, 1)},
		{"5", table(sim.Fig5, 1)},
		{"6", table(sim.Fig6, 1)},
		{"7", func(w io.Writer) error {
			if err := phase("ammp")(w); err != nil {
				return err
			}
			return phase("mgrid")(w)
		}},
		{"8", table(sim.Fig8, 1)},
		{"9", table(sim.Fig9, 2)},
		{"10", table(sim.Fig10, 4)},
		{"extended", table(sim.ExtendedSet, 2)},
		{"five", table(sim.FivePolicy, 1)},
		{"l1", table(sim.L1Adaptivity, 1)},
		{"sbar", table(sim.SBARTable, 1)},
		{"prefetch", table(sim.PrefetchTable, 2)},
		{"multicore", func(w io.Writer) error {
			od := o
			od.Instrs /= 2
			od.Warmup /= 2
			sim.MulticoreTable(od, nil).Fprint(w)
			return nil
		}},
	}
	var sel []job
	for _, j := range jobs {
		if fig == "all" || fig == j.name {
			sel = append(sel, j)
		}
	}
	if len(sel) == 0 {
		return fmt.Errorf("unknown figure %q", fig)
	}

	bufs := make([]bytes.Buffer, len(sel))
	errs := make([]error, len(sel))
	elapsed := make([]time.Duration, len(sel))
	engine.Default.Map(len(sel), func(i int) {
		start := time.Now()
		errs[i] = sel[i].run(&bufs[i])
		elapsed[i] = time.Since(start)
	})
	for i, j := range sel {
		if errs[i] != nil {
			return fmt.Errorf("figure %s: %w", j.name, errs[i])
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		fmt.Fprintf(w, "[%s done in %v]\n\n", j.name, elapsed[i].Round(time.Millisecond))
	}
	return nil
}
