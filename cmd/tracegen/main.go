// Command tracegen records a synthetic benchmark to a binary trace file,
// inspects an existing trace, or re-simulates a recorded trace — the
// trace-acquisition workflow that replaces the paper's SimPoint samples.
//
//	tracegen -bench lucas -n 1000000 -o lucas.trc
//	tracegen -info lucas.trc
//	tracegen -replay lucas.trc -policy adaptive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark to record")
		n      = flag.Uint64("n", 1_000_000, "instructions to record")
		out    = flag.String("o", "", "output trace file")
		info   = flag.String("info", "", "print statistics about a trace file")
		reuse  = flag.String("reusedist", "", "print the LRU miss-ratio curve of a trace file")
		replay = flag.String("replay", "", "re-simulate a trace file (cache-only)")
		pol    = flag.String("policy", "adaptive", "replay policy: LRU|LFU|FIFO|MRU|Random|adaptive")
	)
	flag.Parse()

	var err error
	switch {
	case *info != "":
		err = doInfo(*info)
	case *reuse != "":
		err = doReuseDist(*reuse)
	case *replay != "":
		err = doReplay(*replay, *pol)
	case *bench != "" && *out != "":
		err = record(*bench, *n, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func record(bench string, n uint64, out string) error {
	spec, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, bench)
	if err != nil {
		return err
	}
	src := workload.New(spec, n)
	var rec trace.Record
	for src.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s (%.1f MB, %.2f bytes/instr)\n",
		w.Count(), bench, out, float64(st.Size())/1e6, float64(st.Size())/float64(w.Count()))
	return nil
}

func openTrace(path string) (*os.File, *trace.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, r, nil
}

func doInfo(path string) error {
	f, r, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var rec trace.Record
	var kinds [16]uint64
	var total uint64
	blocks := map[uint64]bool{}
	for r.Read(&rec) {
		kinds[rec.Kind]++
		total++
		if rec.Kind.IsMem() {
			blocks[rec.Addr>>6] = true
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("trace %s: workload %q, %d instructions\n", path, r.Name(), total)
	for k := trace.IntALU; k <= trace.Branch; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-8s %12d (%5.1f%%)\n", k, kinds[k], 100*float64(kinds[k])/float64(total))
		}
	}
	fmt.Printf("  distinct 64B data blocks: %d (%.1f MB footprint)\n",
		len(blocks), float64(len(blocks))*64/1e6)
	return nil
}

// doReuseDist runs Mattson stack-distance analysis over the data stream of
// a recorded trace and prints the fully associative LRU miss-ratio curve —
// how much of the workload is reusable at each cache size.
func doReuseDist(path string) error {
	f, r, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a := stack.New()
	var rec trace.Record
	for r.Read(&rec) {
		if rec.Kind.IsMem() {
			a.Touch(rec.Addr >> 6)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("trace %s (%q): %d data references, %d distinct 64B blocks, %d cold\n",
		path, r.Name(), a.Accesses(), a.Distinct(), a.Cold())
	fmt.Printf("%12s %12s %12s\n", "cache size", "lines", "LRU miss %")
	for _, lines := range []int{64, 256, 1024, 4096, 8192, 16384, 65536} {
		fmt.Printf("%10dKB %12d %11.2f%%\n", lines*64/1024, lines, 100*a.MissRatio(lines))
	}
	return nil
}

// fileSource adapts a trace.Reader to trace.Source for single-pass replay.
type fileSource struct{ r *trace.Reader }

func (s fileSource) Name() string                { return s.r.Name() }
func (s fileSource) Next(rec *trace.Record) bool { return s.r.Read(rec) }
func (s fileSource) Reset()                      { panic("tracegen: file sources are one-pass") }

func doReplay(path, pol string) error {
	f, r, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var spec sim.PolicySpec
	if strings.EqualFold(pol, "adaptive") {
		spec = sim.AdaptiveSpec(0)
	} else {
		spec = sim.SingleSpec(pol)
	}
	cfg := sim.Default(spec, 1)
	res, instrs, err := sim.ReplaySource(cfg, fileSource{r})
	if err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("replayed %d instructions of %q under %s: L2 MPKI %.3f (%d misses, %d L2 accesses)\n",
		instrs, r.Name(), spec.Label(), stats.MPKI(res.Misses, instrs), res.Misses, res.Accesses)
	return nil
}
