// Command verifybound model-checks the paper's worst-case guarantee (the
// Appendix's 2x miss bound for counter-based adaptivity) by exhaustively
// enumerating every reference trace at small bounds, or sampling random
// traces at large ones.
//
//	verifybound -ways 2 -blocks 4 -len 10
//	verifybound -ways 4 -blocks 9 -len 2000 -random 5000
//	verifybound -a FIFO -b MRU -ways 3 -blocks 5 -len 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/verify"
)

func main() {
	var (
		ways   = flag.Int("ways", 2, "set associativity")
		blocks = flag.Int("blocks", 4, "block universe size")
		length = flag.Int("len", 10, "trace length")
		a      = flag.String("a", "LRU", "first component policy")
		b      = flag.String("b", "LFU", "second component policy")
		random = flag.Int("random", 0, "sample this many random traces instead of exhausting")
		seed   = flag.Uint64("seed", 1, "random sampling seed")
	)
	flag.Parse()

	fa, err := policy.ByName(*a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifybound:", err)
		os.Exit(1)
	}
	fb, err := policy.ByName(*b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifybound:", err)
		os.Exit(1)
	}
	cfg := verify.Config{
		Ways: *ways, Blocks: *blocks, Length: *length,
		Components: []core.ComponentFactory{core.ComponentFactory(fa), core.ComponentFactory(fb)},
	}

	start := time.Now()
	var res verify.Result
	var v *verify.Violation
	mode := "exhaustive"
	if *random > 0 {
		mode = "random"
		res, v = verify.Random(cfg, *random, *seed)
	} else {
		res, v = verify.Exhaustive(cfg)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	if v != nil {
		fmt.Printf("VIOLATION after %d traces (%v): %v\n", res.Checked, elapsed, v)
		os.Exit(1)
	}
	fmt.Printf("%s check of %s/%s adaptivity: %d traces over %d blocks x length %d on a %d-way set (%v)\n",
		mode, *a, *b, res.Checked, *blocks, *length, *ways, elapsed)
	fmt.Printf("bound 2*best + %d misses holds on every trace\n", 2**ways)
	if res.WorstRatio > 0 {
		fmt.Printf("worst adaptive/best ratio observed: %.3f on trace %v\n", res.WorstRatio, res.WorstTrace)
	}
}
