// Command adaptcached serves the adaptivekv cache over a minimal
// memcached-style text protocol (get/set/delete/stats/quit). It exists to
// demonstrate the paper's adaptive replacement scheme doing real work:
// every stored value's lifetime is decided by the SBAR-sampled LRU/LFU
// machinery rather than a fixed eviction rule.
//
// Examples:
//
//	adaptcached -addr 127.0.0.1:11311
//	adaptcached -mode adaptive -components LRU,FIFO -shards 16
//	adaptcached -http 127.0.0.1:8080   # Prometheus at /metrics, expvar at /debug/vars, health at /healthz
//	adaptcached -max-conns 1024 -max-item-size 65536
//
// Robustness (see internal/kvserver): transient accept errors are retried
// with backoff instead of killing the listener; past -max-conns new
// connections are shed with "SERVER_ERROR busy"; values over
// -max-item-size are refused with "SERVER_ERROR object too large"; a
// panic in one connection handler never takes the process down. Runtime
// counters (per-shard gets/hits/stores/evictions/policy switches plus
// conns_rejected, panics_recovered, accept_retries, client_errors) are
// published through expvar under "adaptivekv"; pass -http to serve them
// alongside /healthz (200 while accepting, 503 while draining) and
// /metrics (Prometheus text exposition: per-op latency histograms at
// bounded ≤3.125% relative error, byte/connection counters, per-shard
// occupancy and SBAR winners — scraped one shard lock at a time).
// SIGINT/SIGTERM drain connections gracefully.
package main

import (
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -http mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/adaptivekv"
	"repro/internal/kvproto"
	"repro/internal/kvserver"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11311", "TCP listen address")
		httpAddr = flag.String("http", "", "optional HTTP listen address for expvar (/debug/vars) and /healthz")
		shards   = flag.Int("shards", 8, "lock-striped shards (power of two)")
		sets     = flag.Int("sets", 1024, "sets per shard (power of two)")
		ways     = flag.Int("ways", 8, "entries per set")
		mode     = flag.String("mode", "sbar", "replacement mode: sbar|adaptive|single")
		comps    = flag.String("components", "LRU,LFU", "component policies (comma-separated)")
		leaders  = flag.Int("leaders", 0, "SBAR leader sets per shard (0 = default 16)")
		tagBits  = flag.Int("tagbits", 8, "partial shadow-tag bits (<0 = full tags)")
		readTO   = flag.Duration("read-timeout", 5*time.Minute, "per-request read deadline (0 = none)")
		writeTO  = flag.Duration("write-timeout", 30*time.Second, "per-reply write deadline (0 = none)")
		grace    = flag.Duration("drain", 5*time.Second, "shutdown drain period")
		maxConns = flag.Int("max-conns", 0, "max concurrent connections; beyond this new arrivals are shed with SERVER_ERROR busy (0 = unlimited)")
		maxItem  = flag.Int("max-item-size", kvproto.MaxValueBytes, "largest accepted value in bytes (admission bound under the protocol's 1 MiB cap)")
		strict   = flag.Bool("strict-order", false, "serialize every Get under the shard lock (disables optimistic reads; byte-identical serial semantics)")
		pendRing = flag.Int("pending-ring", 0, "per-shard deferred-access ring size, power of two (0 = default 1024; ignored under -strict-order)")
	)
	flag.Parse()

	cfg := adaptivekv.Config{
		Shards:        *shards,
		Sets:          *sets,
		Ways:          *ways,
		Mode:          adaptivekv.Mode(*mode),
		Components:    strings.Split(*comps, ","),
		LeaderSets:    *leaders,
		ShadowTagBits: *tagBits,
		StrictOrder:   *strict,
		PendingRing:   *pendRing,
	}
	srv := kvserver.New(kvserver.Config{
		Cache:        cfg,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		MaxConns:     *maxConns,
		MaxItemSize:  *maxItem,
		Logf:         log.Printf,
	})
	expvar.Publish("adaptivekv", expvar.Func(srv.ExpvarMap))
	http.HandleFunc("/healthz", srv.Healthz)
	http.Handle("/metrics", srv.MetricsHandler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("adaptcached: %v", err)
	}
	log.Printf("adaptcached: serving %s/%s on %s (%d shards x %d sets x %d ways = %d entries, adaptive overhead %.3f%%)",
		cfg.Mode, *comps, ln.Addr(), cfg.Shards, cfg.Sets, cfg.Ways,
		srv.Cache().Capacity(), srv.Cache().OverheadPercent())

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				log.Printf("adaptcached: expvar server: %v", err)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("adaptcached: draining (%s grace)", *grace)
		srv.Shutdown(ln, *grace)
	}()

	srv.Serve(ln)
	srv.Wait()
	st := srv.Cache().Stats()
	ct := srv.Counters()
	log.Printf("adaptcached: served %d gets (%.4f hit ratio), %d sets, %d evictions, %d policy switches",
		st.Gets, st.HitRatio(), st.Stores, st.Evictions, st.PolicySwitches)
	if ct.ConnsRejected+ct.PanicsRecovered+ct.AcceptRetries+ct.ClientErrors > 0 {
		log.Printf("adaptcached: robustness: %d conns rejected, %d panics recovered, %d accept retries, %d client errors",
			ct.ConnsRejected, ct.PanicsRecovered, ct.AcceptRetries, ct.ClientErrors)
	}
}
