// Command adaptcached serves the adaptivekv cache over a minimal
// memcached-style text protocol (get/set/delete/stats/quit). It exists to
// demonstrate the paper's adaptive replacement scheme doing real work:
// every stored value's lifetime is decided by the SBAR-sampled LRU/LFU
// machinery rather than a fixed eviction rule.
//
// Examples:
//
//	adaptcached -addr 127.0.0.1:11311
//	adaptcached -mode adaptive -components LRU,FIFO -shards 16
//	adaptcached -http 127.0.0.1:8080   # expvar counters at /debug/vars
//
// Runtime counters (per-shard gets/hits/stores/evictions/policy switches)
// are published through expvar under "adaptivekv"; pass -http to serve
// them. SIGINT/SIGTERM drain connections gracefully.
package main

import (
	"bufio"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -http mux
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/adaptivekv"
	"repro/internal/kvproto"
)

// value is one stored object: the client's opaque flags word plus bytes.
type value struct {
	flags uint32
	data  []byte
}

// server owns the cache, the listener, and the connection set.
type server struct {
	cache        *adaptivekv.Cache[string, value]
	readTimeout  time.Duration
	writeTimeout time.Duration

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup

	start time.Time
}

func newServer(cfg adaptivekv.Config, readTO, writeTO time.Duration) *server {
	return &server{
		cache:        adaptivekv.New[string, value](cfg),
		readTimeout:  readTO,
		writeTimeout: writeTO,
		conns:        make(map[net.Conn]struct{}),
		start:        time.Now(),
	}
}

// serve accepts connections until the listener closes.
func (s *server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// shutdown stops accepting, gives in-flight requests the grace period to
// drain, then force-closes whatever remains.
func (s *server) shutdown(ln net.Listener, grace time.Duration) {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	ln.Close()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(grace):
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-drained
	}
}

// handle runs one connection's request loop.
func (s *server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	rd := kvproto.NewReader(conn)
	w := bufio.NewWriterSize(conn, 4096)
	var req kvproto.Request
	for {
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		switch err := rd.Next(&req); {
		case err == nil:
		case errors.As(err, new(*kvproto.ClientError)):
			kvproto.WriteClientError(w, "bad request")
			if s.flush(conn, w) != nil {
				return
			}
			continue
		default:
			// Clean close, timeout, or corrupt stream: drop the connection.
			return
		}

		switch req.Op {
		case kvproto.OpGet:
			if v, ok := s.cache.Get(string(req.Key)); ok {
				kvproto.WriteValue(w, req.Key, v.flags, v.data)
			}
			kvproto.WriteEnd(w)
		case kvproto.OpSet:
			data := make([]byte, len(req.Value))
			copy(data, req.Value)
			s.cache.Set(string(req.Key), value{flags: req.Flags, data: data})
			kvproto.WriteStored(w)
		case kvproto.OpDelete:
			if s.cache.Delete(string(req.Key)) {
				kvproto.WriteDeleted(w)
			} else {
				kvproto.WriteNotFound(w)
			}
		case kvproto.OpStats:
			s.writeStats(w)
		case kvproto.OpQuit:
			s.flush(conn, w)
			return
		default:
			kvproto.WriteError(w)
		}
		// A pipelining client has more requests already buffered; batch the
		// replies and flush once the input drains (or the buffer fills).
		if rd.Buffered() > 0 && w.Available() > 512 {
			continue
		}
		if s.flush(conn, w) != nil {
			return
		}
	}
}

// flush writes buffered replies under the write deadline.
func (s *server) flush(conn net.Conn, w *bufio.Writer) error {
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	}
	return w.Flush()
}

// writeStats emits aggregate counters, the cache shape, and per-shard
// adaptive-scheme detail.
func (s *server) writeStats(w *bufio.Writer) {
	st := s.cache.Stats()
	cfg := s.cache.Config()
	kvproto.WriteStat(w, "uptime_seconds", uint64(time.Since(s.start).Seconds()))
	kvproto.WriteStatStr(w, "mode", string(cfg.Mode))
	kvproto.WriteStatStr(w, "components", strings.Join(cfg.Components, ","))
	kvproto.WriteStat(w, "shards", uint64(cfg.Shards))
	kvproto.WriteStat(w, "capacity", uint64(s.cache.Capacity()))
	kvproto.WriteStat(w, "items", uint64(s.cache.Len()))
	kvproto.WriteStat(w, "cmd_get", st.Gets)
	kvproto.WriteStat(w, "get_hits", st.GetHits)
	kvproto.WriteStat(w, "get_misses", st.Gets-st.GetHits)
	kvproto.WriteStat(w, "cmd_set", st.Stores)
	kvproto.WriteStat(w, "cmd_delete", st.Deletes)
	kvproto.WriteStat(w, "delete_hits", st.DeleteHits)
	kvproto.WriteStat(w, "evictions", st.Evictions)
	kvproto.WriteStat(w, "policy_switches", st.PolicySwitches)
	kvproto.WriteStatStr(w, "hit_ratio", fmt.Sprintf("%.4f", st.HitRatio()))
	kvproto.WriteStatStr(w, "adaptive_overhead_pct", fmt.Sprintf("%.4f", s.cache.OverheadPercent()))
	for i := 0; i < s.cache.Shards(); i++ {
		sh := s.cache.ShardStats(i)
		prefix := fmt.Sprintf("shard%d_", i)
		kvproto.WriteStat(w, prefix+"gets", sh.Gets)
		kvproto.WriteStat(w, prefix+"get_hits", sh.GetHits)
		kvproto.WriteStat(w, prefix+"evictions", sh.Evictions)
		kvproto.WriteStat(w, prefix+"policy_switches", sh.PolicySwitches)
		if wn := s.cache.Winner(i); wn >= 0 {
			kvproto.WriteStatStr(w, prefix+"winner", cfg.Components[wn])
		}
	}
	kvproto.WriteEnd(w)
}

// expvarMap builds the expvar snapshot: aggregate plus per-shard counters.
func (s *server) expvarMap() interface{} {
	type shardVars struct {
		Gets, GetHits, Stores, Deletes uint64
		Evictions, PolicySwitches      uint64
		Winner                         string
	}
	cfg := s.cache.Config()
	shards := make([]shardVars, s.cache.Shards())
	for i := range shards {
		st := s.cache.ShardStats(i)
		sv := shardVars{
			Gets: st.Gets, GetHits: st.GetHits, Stores: st.Stores,
			Deletes: st.Deletes, Evictions: st.Evictions,
			PolicySwitches: st.PolicySwitches,
		}
		if w := s.cache.Winner(i); w >= 0 {
			sv.Winner = cfg.Components[w]
		}
		shards[i] = sv
	}
	agg := s.cache.Stats()
	return map[string]interface{}{
		"mode":       string(cfg.Mode),
		"components": cfg.Components,
		"capacity":   s.cache.Capacity(),
		"items":      s.cache.Len(),
		"aggregate":  agg,
		"hit_ratio":  agg.HitRatio(),
		"shards":     shards,
	}
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11311", "TCP listen address")
		httpAddr = flag.String("http", "", "optional HTTP listen address for expvar (/debug/vars)")
		shards   = flag.Int("shards", 8, "lock-striped shards (power of two)")
		sets     = flag.Int("sets", 1024, "sets per shard (power of two)")
		ways     = flag.Int("ways", 8, "entries per set")
		mode     = flag.String("mode", "sbar", "replacement mode: sbar|adaptive|single")
		comps    = flag.String("components", "LRU,LFU", "component policies (comma-separated)")
		leaders  = flag.Int("leaders", 0, "SBAR leader sets per shard (0 = default 16)")
		tagBits  = flag.Int("tagbits", 8, "partial shadow-tag bits (<0 = full tags)")
		readTO   = flag.Duration("read-timeout", 5*time.Minute, "per-request read deadline (0 = none)")
		writeTO  = flag.Duration("write-timeout", 30*time.Second, "per-reply write deadline (0 = none)")
		grace    = flag.Duration("drain", 5*time.Second, "shutdown drain period")
	)
	flag.Parse()

	cfg := adaptivekv.Config{
		Shards:        *shards,
		Sets:          *sets,
		Ways:          *ways,
		Mode:          adaptivekv.Mode(*mode),
		Components:    strings.Split(*comps, ","),
		LeaderSets:    *leaders,
		ShadowTagBits: *tagBits,
	}
	srv := newServer(cfg, *readTO, *writeTO)
	expvar.Publish("adaptivekv", expvar.Func(srv.expvarMap))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("adaptcached: %v", err)
	}
	log.Printf("adaptcached: serving %s/%s on %s (%d shards x %d sets x %d ways = %d entries, adaptive overhead %.3f%%)",
		cfg.Mode, *comps, ln.Addr(), cfg.Shards, cfg.Sets, cfg.Ways,
		srv.cache.Capacity(), srv.cache.OverheadPercent())

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				log.Printf("adaptcached: expvar server: %v", err)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("adaptcached: draining (%s grace)", *grace)
		srv.shutdown(ln, *grace)
	}()

	srv.serve(ln)
	srv.wg.Wait()
	st := srv.cache.Stats()
	log.Printf("adaptcached: served %d gets (%.4f hit ratio), %d sets, %d evictions, %d policy switches",
		st.Gets, st.HitRatio(), st.Stores, st.Evictions, st.PolicySwitches)
}
