package main

import (
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/adaptivekv"
	"repro/internal/kvproto"
	"repro/internal/kvserver"
)

// startTestServer brings up the serving core on an ephemeral loopback
// port and returns it plus its address and a shutdown func. The binary is
// thin wiring over internal/kvserver, so this is what adaptcached runs.
func startTestServer(t *testing.T, cfg adaptivekv.Config) (*kvserver.Server, string, func()) {
	t.Helper()
	srv := kvserver.New(kvserver.Config{
		Cache:        cfg,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), func() { srv.Shutdown(ln, 2*time.Second) }
}

// TestServerConcurrentLoad is the in-process half of the CI smoke: many
// client connections hammer one server with read-through traffic while the
// race detector watches the shard locking. Values carry their key so hits
// can be verified for integrity, not just presence.
func TestServerConcurrentLoad(t *testing.T) {
	srv, addr, stop := startTestServer(t, adaptivekv.Config{Shards: 4, Sets: 64, Ways: 8})
	defer stop()

	const workers = 6
	iters := 3000
	if testing.Short() {
		iters = 500
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			c, err := kvproto.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			key := make([]byte, 0, 32)
			rng := id*2654435761 + 1
			for i := 0; i < iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := rng % 4096
				key = strconv.AppendUint(key[:0], k, 10)
				switch rng % 16 {
				case 0:
					if _, err := c.Delete(key); err != nil {
						errs <- err
						return
					}
				default:
					v, ok, err := c.Get(key)
					if err != nil {
						errs <- err
						return
					}
					if ok {
						if string(v) != string(key) {
							t.Errorf("Get(%s) returned %q", key, v)
							return
						}
					} else if err := c.Set(key, 0, 0, key); err != nil {
						errs <- err
						return
					}
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client error: %v", err)
	}

	c, err := kvproto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	for _, k := range []string{"cmd_get", "get_hits", "cmd_set", "evictions", "hit_ratio", "shard0_gets", "panics_recovered"} {
		if _, ok := st[k]; !ok {
			t.Errorf("stats missing %q (got %d keys)", k, len(st))
		}
	}
	if gets, _ := strconv.ParseUint(st["cmd_get"], 10, 64); gets == 0 {
		t.Error("server counted no gets")
	}
	if agg := srv.Cache().Stats(); agg.Stores == 0 || agg.Evictions == 0 {
		t.Errorf("cache saw no fills/evictions: %+v", agg)
	}
	if ct := srv.Counters(); ct.PanicsRecovered != 0 {
		t.Errorf("panics recovered under clean load: %d", ct.PanicsRecovered)
	}
}

// TestServerProtocolEdges drives malformed and boundary traffic against a
// live server: recoverable violations keep the connection usable.
func TestServerProtocolEdges(t *testing.T) {
	_, addr, stop := startTestServer(t, adaptivekv.Config{Shards: 2, Sets: 16, Ways: 4})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(s string) string {
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	}

	if got := send("bogus\r\n"); got != "CLIENT_ERROR unknown command\r\n" {
		t.Errorf("unknown command reply %q", got)
	}
	if got := send("get missing\r\n"); got != "END\r\n" {
		t.Errorf("miss reply %q", got)
	}
	if got := send("set k 9 0 3\r\nabc\r\n"); got != "STORED\r\n" {
		t.Errorf("set reply %q", got)
	}
	if got := send("get k\r\n"); got != "VALUE k 9 3\r\nabc\r\nEND\r\n" {
		t.Errorf("hit reply %q (flags must round-trip)", got)
	}
	if got := send("delete k\r\n"); got != "DELETED\r\n" {
		t.Errorf("delete reply %q", got)
	}
	if got := send("delete k\r\n"); got != "NOT_FOUND\r\n" {
		t.Errorf("second delete reply %q", got)
	}
}

// TestServerGracefulShutdown: shutdown with no grace-worthy traffic must
// complete promptly and refuse new connections.
func TestServerGracefulShutdown(t *testing.T) {
	_, addr, stop := startTestServer(t, adaptivekv.Config{Shards: 2, Sets: 16, Ways: 4})

	c, err := kvproto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	done := make(chan struct{})
	go func() {
		stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Error("listener still accepting after shutdown")
	}
}
