// Command kvchaos is the robustness analogue of cmd/benchregress: a
// seeded chaos soak that must pass for the serving stack to be considered
// healthy. It assembles the full topology in one process —
//
//	kvserver ← faultnet.Listener (accept faults)
//	    ↑
//	faultnet.Proxy (resets, stalls, partial I/O, latency)
//	    ↑
//	N kvproto.ReconnectClients + slow-loris aggressors
//
// — and asserts end-to-end invariants while faults fly:
//
//   - Acknowledged-write durability: every value a get returns must be a
//     version the owning client either had acknowledged or has in flight
//     (unacked after an ambiguous failure). A miss is always legal (the
//     adaptive policy may evict), a corrupt or resurrected value never is.
//   - Panic isolation: every injected handler panic is recovered (the
//     process survives and the server's counter matches the injected count).
//   - Accept-loop survival: with accept faults injected, traffic still
//     completes and retries are counted — revert the accept-retry fix and
//     this gate fails.
//   - Reconnect correctness: clients complete their op budget through
//     resets and sheds — remove the client's retry logic and the gate fails.
//   - Slow-loris resistance: a client dribbling bytes forever is reaped by
//     the read deadline instead of holding its slot indefinitely.
//   - TTL honesty: a subset of keys is written with a client-computed
//     absolute expiry deadline. A get answered with a VALUE after that
//     version's deadline (plus a sweep-granularity grace) is a violation
//     — an expired value must read as a miss on every path. Misses stay
//     legal at all times, and when post-deadline misses were observed
//     with zero capacity evictions, the server's expiry counter must
//     have moved (the accounting can't be dead).
//   - CAS atomicity (the ledger): after the soak, N workers increment one
//     shared counter key through gets/cas retry loops, direct against the
//     server so no attempt is ambiguous. The final counter value must
//     equal exactly the number of acknowledged STORED swaps — a lost or
//     double-applied increment is a violation — and the server's cas
//     books (cas histogram, CasStored) must reconcile against it.
//   - Clean teardown: after the soak, a fresh client gets normal service,
//     the adaptive cache still reports a sane hit ratio, and shutdown
//     leaks no goroutines.
//
// Exit status 0 means every invariant held; 1 reports the violations.
//
//	kvchaos -seed 7 -clients 6 -ops 5000
//	kvchaos -seed 7 -reset-rate 0.01 -panic-rate 0.002 -accept-error-rate 0.4
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/adaptivekv"
	"repro/internal/faultnet"
	"repro/internal/fleet"
	"repro/internal/kvproto"
	"repro/internal/kvserver"
	"repro/internal/metrics"
)

// splitmix64 scrambles a counter into an independent-looking draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ttlGrace pads client-side deadline checks: the server's coarse expiry
// clock advances on sweeper ticks (default 100ms), so a value can
// legally survive its deadline by one tick plus scheduling noise.
const ttlGrace = time.Second

// keyState is one key's write history on its single-writer client.
type keyState struct {
	acked     uint64              // newest acknowledged version (0 = none)
	tried     uint64              // newest attempted version
	pending   map[uint64]struct{} // unacked versions that may still land
	deadlines map[uint64]int64    // version -> absolute TTL deadline (unix nanos), TTL keys only
}

// chaosClient drives one connection's op mix through the fault proxy and
// checks the durability invariant. Keys are namespaced per client so each
// key has exactly one writer and the version window argument is sound.
type chaosClient struct {
	id    int
	rc    *kvproto.ReconnectClient
	rng   uint64
	keys  []keyState
	names [][]byte
	vsize int
	ttl   time.Duration // nonzero: every 4th key is written with this TTL

	ops, gets, hits, sets, ackedSets, unackedSets uint64
	expiredMisses                                 uint64 // post-deadline reads correctly answered as misses
	violations                                    []string
	fatal                                         error
}

func newChaosClient(id int, addr string, seed uint64, nkeys, vsize int, ttl time.Duration, ctrs *kvproto.ReconnectCounters) *chaosClient {
	cc := &chaosClient{
		id: id,
		rc: kvproto.NewReconnect(addr, kvproto.ReconnectConfig{
			DialTimeout:  2 * time.Second,
			ReadTimeout:  5 * time.Second,
			WriteTimeout: 5 * time.Second,
			MaxAttempts:  12,
			BaseBackoff:  2 * time.Millisecond,
			MaxBackoff:   250 * time.Millisecond,
			Seed:         seed,
			Counters:     ctrs,
		}),
		rng:   seed | 1,
		keys:  make([]keyState, nkeys),
		names: make([][]byte, nkeys),
		vsize: vsize,
		ttl:   ttl,
	}
	for j := range cc.keys {
		cc.keys[j].pending = make(map[uint64]struct{})
		cc.keys[j].deadlines = make(map[uint64]int64)
		cc.names[j] = []byte(fmt.Sprintf("c%dk%d", id, j))
	}
	return cc
}

// ttlKey reports whether key j carries a TTL on every write.
func (cc *chaosClient) ttlKey(j int) bool { return cc.ttl > 0 && j%4 == 0 }

func (cc *chaosClient) next() uint64 {
	cc.rng ^= cc.rng << 13
	cc.rng ^= cc.rng >> 7
	cc.rng ^= cc.rng << 17
	return cc.rng
}

// encodeValue renders "<version>|<key>|xxx..." padded to vsize so the
// integrity check covers both identity and payload bytes.
func encodeValue(ver uint64, key []byte, vsize int) []byte {
	v := make([]byte, 0, vsize+32)
	v = strconv.AppendUint(v, ver, 10)
	v = append(v, '|')
	v = append(v, key...)
	v = append(v, '|')
	for len(v) < vsize {
		v = append(v, 'x')
	}
	return v
}

// decodeValue parses and integrity-checks an encoded value.
func decodeValue(v []byte) (ver uint64, key []byte, err error) {
	i := bytes.IndexByte(v, '|')
	if i < 1 {
		return 0, nil, errors.New("missing version field")
	}
	ver, perr := strconv.ParseUint(string(v[:i]), 10, 64)
	if perr != nil {
		return 0, nil, errors.New("bad version field")
	}
	rest := v[i+1:]
	j := bytes.IndexByte(rest, '|')
	if j < 1 {
		return 0, nil, errors.New("missing key field")
	}
	key = rest[:j]
	for _, b := range rest[j+1:] {
		if b != 'x' {
			return 0, nil, errors.New("corrupt padding")
		}
	}
	return ver, key, nil
}

func (cc *chaosClient) violate(format string, args ...any) {
	cc.violations = append(cc.violations, fmt.Sprintf("client %d: %s", cc.id, fmt.Sprintf(format, args...)))
}

func (cc *chaosClient) run(nops uint64) {
	for i := uint64(0); i < nops && cc.fatal == nil && len(cc.violations) < 20; i++ {
		r := cc.next()
		j := int((r >> 8) % uint64(len(cc.keys)))
		if r%5 == 0 {
			cc.doSet(j)
		} else {
			cc.doGet(j)
		}
		cc.ops++
	}
}

func (cc *chaosClient) doSet(j int) {
	ks := &cc.keys[j]
	ver := ks.tried + 1
	ks.tried = ver
	var exptime int64
	if cc.ttlKey(j) {
		// Client-computed ABSOLUTE deadline in unix seconds (always above
		// the relative/absolute pivot), so every layer — reconnect
		// replays included — carries the same expiry instant verbatim.
		expSec := time.Now().Add(cc.ttl).Unix() + 1
		exptime = expSec
		// Recorded per version, acked or not: an unacked write landing
		// late still dies at the same absolute instant.
		ks.deadlines[ver] = expSec * int64(time.Second)
	}
	err := cc.rc.Set(cc.names[j], 0, exptime, encodeValue(ver, cc.names[j], cc.vsize))
	cc.sets++
	switch {
	case err == nil:
		ks.acked = ver
		cc.ackedSets++
	case errors.Is(err, kvproto.ErrUnacked):
		// Ambiguous: the write may land at any point until the dead
		// connection's handler unwinds. Widen the valid window.
		ks.pending[ver] = struct{}{}
		cc.unackedSets++
	default:
		cc.fatal = fmt.Errorf("client %d: set %s: %w", cc.id, cc.names[j], err)
	}
}

func (cc *chaosClient) doGet(j int) {
	ks := &cc.keys[j]
	sent := time.Now() // taken BEFORE the get: the server processed it no earlier
	v, ok, err := cc.rc.Get(cc.names[j])
	if err != nil {
		cc.fatal = fmt.Errorf("client %d: get %s: %w", cc.id, cc.names[j], err)
		return
	}
	cc.gets++
	if !ok {
		// Miss: always legal. Note when it is the expected outcome of a
		// read past the acked version's deadline — those misses are what
		// the expiry-accounting cross-check below feeds on.
		if d, has := ks.deadlines[ks.acked]; has && sent.UnixNano() > d+int64(ttlGrace) {
			cc.expiredMisses++
		}
		return
	}
	cc.hits++
	ver, key, derr := decodeValue(v)
	if derr != nil {
		cc.violate("get %s returned corrupt value (%v): %q", cc.names[j], derr, v)
		return
	}
	if !bytes.Equal(key, cc.names[j]) {
		cc.violate("get %s returned value for key %s", cc.names[j], key)
		return
	}
	// TTL honesty: ANY value returned after its version's deadline is a
	// violation, regardless of the version window — expired means miss.
	if d, has := ks.deadlines[ver]; has && sent.UnixNano() > d+int64(ttlGrace) {
		cc.violate("get %s returned version %d at %v past its TTL deadline — expired value served",
			cc.names[j], ver, time.Duration(sent.UnixNano()-d))
		return
	}
	if ver == ks.acked {
		return
	}
	if _, inFlight := ks.pending[ver]; inFlight {
		return
	}
	cc.violate("get %s returned version %d; acked %d, pending %v — acknowledged write lost or stale value resurrected",
		cc.names[j], ver, ks.acked, ks.pending)
}

// runCasLedger is the end-to-end read-modify-write atomicity gate:
// workers concurrently increment one shared counter key through gets/cas
// retry loops, connected directly to the server (not through the fault
// proxy — a cas here is never ambiguous, so strict equality must hold).
// Every increment retries on EXISTS until its swap is acknowledged
// STORED; the final counter value must equal exactly the acknowledged
// swap count. NOT_FOUND on the resident counter is a violation.
func runCasLedger(addr string, workers, increments int) (stored uint64, failures []string) {
	key := []byte("kvchaos-cas-counter")
	dial := func() (*kvproto.Client, error) {
		return kvproto.DialTimeout(addr, 2*time.Second, 5*time.Second, 5*time.Second)
	}
	c, err := dial()
	if err != nil {
		return 0, []string{fmt.Sprintf("cas ledger: dial: %v", err)}
	}
	if err := c.Set(key, 0, 0, []byte("0")); err != nil {
		c.Close()
		return 0, []string{fmt.Sprintf("cas ledger: seed set: %v", err)}
	}
	c.Close()

	var acked atomic.Uint64
	var mu sync.Mutex
	var errs []string
	fail := func(format string, args ...any) {
		mu.Lock()
		errs = append(errs, "cas ledger: "+fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := dial()
			if err != nil {
				fail("worker %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < increments; i++ {
				for attempt := 0; ; attempt++ {
					if attempt > 100000 {
						fail("worker %d: increment %d starved after %d conflicts", w, i, attempt)
						return
					}
					v, _, id, ok, err := c.Gets(key)
					if err != nil {
						fail("worker %d: gets: %v", w, err)
						return
					}
					if !ok {
						fail("worker %d: counter key vanished (gets answered miss)", w)
						return
					}
					n, perr := strconv.ParseUint(string(v), 10, 64)
					if perr != nil {
						fail("worker %d: corrupt counter value %q", w, v)
						return
					}
					st, err := c.Cas(key, 0, 0, id, []byte(strconv.FormatUint(n+1, 10)))
					if err != nil {
						fail("worker %d: cas: %v", w, err)
						return
					}
					if st == kvproto.CasStored {
						acked.Add(1)
						break
					}
					if st != kvproto.CasExists {
						fail("worker %d: cas on the resident counter answered %v", w, st)
						return
					}
					// EXISTS: another worker won the race — re-read, retry.
				}
			}
		}(w)
	}
	wg.Wait()

	c, err = dial()
	if err != nil {
		return acked.Load(), append(errs, fmt.Sprintf("cas ledger: final read dial: %v", err))
	}
	v, _, _, ok, err := c.Gets(key)
	c.Close()
	if err != nil || !ok {
		return acked.Load(), append(errs, fmt.Sprintf("cas ledger: final read ok=%v err=%v", ok, err))
	}
	final, perr := strconv.ParseUint(string(v), 10, 64)
	if perr != nil {
		return acked.Load(), append(errs, fmt.Sprintf("cas ledger: corrupt final value %q", v))
	}
	if final != acked.Load() {
		errs = append(errs, fmt.Sprintf(
			"cas ledger: counter ended at %d but %d swaps were acknowledged STORED — increments lost or double-applied",
			final, acked.Load()))
	}
	if want := uint64(workers * increments); acked.Load() != want {
		errs = append(errs, fmt.Sprintf("cas ledger: %d swaps acknowledged, want %d (every increment loops until STORED)",
			acked.Load(), want))
	}
	return acked.Load(), errs
}

// runLoris dribbles a never-terminated command at the server one byte at
// a time and waits to be reaped: a hardened server cuts the connection
// when its read deadline fires mid-line. Returns nil once the disconnect
// is observed, an error if the connection survives the whole patience
// window (the slot would be held hostage indefinitely).
func runLoris(addr string, patience time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return fmt.Errorf("slow-loris dial: %w", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(patience)
	buf := make([]byte, 64)
	for time.Now().Before(deadline) {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		if _, err := conn.Write([]byte("k")); err != nil {
			return nil // write refused: the server cut us off
		}
		conn.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
		if _, err := conn.Read(buf); err != nil {
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				return nil // EOF or reset: reaped
			}
		}
	}
	return fmt.Errorf("slow-loris connection survived %v of dribbling", patience)
}

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "fault and workload seed")
		clients = flag.Int("clients", 6, "concurrent verifying clients")
		ops     = flag.Uint64("ops", 5000, "operations per client")
		nkeys   = flag.Int("keys", 512, "keyspace per client (single writer per key)")
		vsize   = flag.Int("value-size", 48, "encoded value size in bytes")
		loris   = flag.Int("slowloris", 2, "slow-loris aggressor connections")

		resetRate  = flag.Float64("reset-rate", 0.002, "proxy: per-I/O connection reset probability")
		stallRate  = flag.Float64("stall-rate", 0.002, "proxy: per-write byte-stall probability")
		stall      = flag.Duration("stall", 20*time.Millisecond, "proxy: stall length")
		partial    = flag.Float64("partial-rate", 0.05, "proxy: partial read/write probability")
		delayRate  = flag.Float64("delay-rate", 0.01, "proxy: added-latency probability")
		delay      = flag.Duration("delay", time.Millisecond, "proxy: injected latency")
		acceptRate = flag.Float64("accept-error-rate", 0.25, "server listener: transient accept-error probability")
		panicRate  = flag.Float64("panic-rate", 0.001, "server: per-request injected handler panic probability")

		ttl       = flag.Duration("ttl", time.Second, "TTL written on every 4th key per client (0 disables the TTL invariant)")

		casWorkers    = flag.Int("cas-workers", 4, "post-soak cas ledger workers incrementing one shared counter (0 disables)")
		casIncrements = flag.Int("cas-increments", 200, "increments per cas ledger worker")

		readTO    = flag.Duration("read-timeout", 500*time.Millisecond, "server read deadline (reaps slow loris)")
		maxConns  = flag.Int("max-conns", 0, "server connection bound (0 = clients+slowloris+3)")
		minHit    = flag.Float64("min-hit-ratio", 0.2, "fail if the server-side hit ratio ends below this")
		graceLeak = flag.Duration("leak-grace", 5*time.Second, "how long goroutines get to drain after shutdown")
	)
	flag.Parse()

	// The connection bound must admit the run's planned load: soak clients,
	// loris aggressors, the post-soak cas ledger workers (their connections
	// overlap the soak clients' only briefly, but the bound has to cover
	// the worst case), and slack for the probes.
	if *maxConns == 0 {
		*maxConns = *clients + *loris + *casWorkers + 3
	}
	baseline := runtime.NumGoroutine()
	fmt.Printf("kvchaos: seed %d, %d clients x %d ops, %d keys/client, %d loris\n",
		*seed, *clients, *ops, *nkeys, *loris)

	// One node via the shared fleet harness: kvserver with seeded panic
	// injection, behind a fault-wrapped listener, behind a fault proxy.
	var hookCalls, hookPanics atomic.Uint64
	hook := func(req *kvproto.Request) {
		if *panicRate <= 0 || (req.Op != kvproto.OpGet && req.Op != kvproto.OpSet) {
			return
		}
		n := hookCalls.Add(1)
		if float64(splitmix64(*seed^n)>>11)/(1<<53) < *panicRate {
			hookPanics.Add(1)
			panic(fmt.Sprintf("kvchaos: injected handler panic #%d", hookPanics.Load()))
		}
	}
	node, err := fleet.StartNode(fleet.NodeConfig{
		Server: kvserver.Config{
			Cache:        adaptivekv.Config{Shards: 4, Sets: 256, Ways: 8},
			ReadTimeout:  *readTO,
			WriteTimeout: 2 * time.Second,
			MaxConns:     *maxConns,
			FaultHook:    hook,
		},
		ListenFaults: &faultnet.Config{Seed: *seed, AcceptErrorRate: *acceptRate},
		ProxyFaults: &faultnet.Config{
			Seed:        *seed + 1,
			ResetRate:   *resetRate,
			StallRate:   *stallRate,
			Stall:       *stall,
			PartialRate: *partial,
			DelayRate:   *delayRate,
			Delay:       *delay,
		},
	})
	if err != nil {
		fmt.Printf("kvchaos: node: %v\n", err)
		os.Exit(1)
	}
	srv := node.Server()
	serverAddr := node.ServerAddr()

	// Soak: verifying clients through the proxy, loris against the server.
	// All clients (and the post-soak probe) share one ReconnectCounters so
	// the fleet-aggregate can be cross-checked against per-client tallies.
	var redials, retries, unackedOps, exhausted metrics.Counter
	rctrs := &kvproto.ReconnectCounters{
		Redials: &redials, Retries: &retries,
		Unacked: &unackedOps, Exhausted: &exhausted,
	}
	ccs := make([]*chaosClient, *clients)
	var wg sync.WaitGroup
	for i := range ccs {
		ccs[i] = newChaosClient(i, node.Addr(), splitmix64(*seed+uint64(i)*7919), *nkeys, *vsize, *ttl, rctrs)
		wg.Add(1)
		go func(cc *chaosClient) {
			defer wg.Done()
			cc.run(*ops)
			cc.rc.Close()
		}(ccs[i])
	}
	lorisErrs := make(chan error, *loris)
	for i := 0; i < *loris; i++ {
		go func() {
			lorisErrs <- runLoris(serverAddr, *readTO*20+10*time.Second)
		}()
	}
	start := time.Now()
	wg.Wait()
	soak := time.Since(start)

	// Each loris resolves on its own: reaped (nil) within ~readTO, or an
	// error after its patience window. Collect before judging.
	var failures []string
	for i := 0; i < *loris; i++ {
		if err := <-lorisErrs; err != nil {
			failures = append(failures, fmt.Sprintf("slow-loris: %v", err))
		}
	}

	// Post-soak liveness: a clean client straight at the server must get
	// ordinary service, and an acknowledged write must read back.
	probeKey, probeVal := []byte("kvchaos-probe"), []byte("alive")
	probe := kvproto.NewReconnect(serverAddr, kvproto.ReconnectConfig{Seed: *seed + 99, Counters: rctrs})
	if err := probe.Set(probeKey, 0, 0, probeVal); err != nil {
		failures = append(failures, fmt.Sprintf("post-soak liveness: set: %v", err))
	} else if v, ok, err := probe.Get(probeKey); err != nil || !ok || !bytes.Equal(v, probeVal) {
		failures = append(failures, fmt.Sprintf("post-soak liveness: get ok=%v err=%v", ok, err))
	}

	// Deterministic expiry drill: the soak can outrun its own TTLs on a
	// fast machine, so prove the end-to-end contract directly — a 1s-TTL
	// set must be readable now, unreadable within the acceptance window,
	// and counted by the server's expiry books.
	if *ttl > 0 {
		ttlProbeKey := []byte("kvchaos-ttl-probe")
		expSec := time.Now().Add(time.Second).Unix() + 1
		if err := probe.Set(ttlProbeKey, 0, expSec, []byte("dying")); err != nil {
			failures = append(failures, fmt.Sprintf("ttl probe: set: %v", err))
		} else {
			if v, ok, err := probe.Get(ttlProbeKey); err != nil || !ok || !bytes.Equal(v, []byte("dying")) {
				failures = append(failures, fmt.Sprintf("ttl probe: pre-deadline get ok=%v err=%v", ok, err))
			}
			patience := time.Now().Add(5 * time.Second)
			expired := false
			for time.Now().Before(patience) {
				if _, ok, err := probe.Get(ttlProbeKey); err == nil && !ok {
					expired = true
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if !expired {
				failures = append(failures, "ttl probe: value still readable 4s past a 1s TTL")
			} else {
				// The miss may be observed lazily before the reclaim is
				// counted; give the sweeper one full shard cycle.
				counted := false
				for time.Now().Before(patience) {
					if srv.Cache().Stats().Expired > 0 {
						counted = true
						break
					}
					time.Sleep(50 * time.Millisecond)
				}
				if !counted {
					failures = append(failures, "ttl probe: value expired but kv_expired_total never moved")
				}
			}
		}
	}
	probe.Close()

	// CAS ledger: concurrent increments of one shared counter via gets/cas
	// retry loops, direct at the server so no swap is ambiguous. It runs
	// after the soak (whose clients issue no cas), so the ledger is this
	// run's only cas traffic and the server's cas books must reconcile
	// against it exactly.
	var casStored uint64
	if *casWorkers > 0 {
		var ledgerFails []string
		casStored, ledgerFails = runCasLedger(serverAddr, *casWorkers, *casIncrements)
		failures = append(failures, ledgerFails...)
	}

	agg := srv.Cache().Stats()
	counters := srv.Counters()
	lstats := node.ListenStats()
	pstats := node.ProxyStats()

	// Teardown must leak nothing.
	node.Close()
	leakDeadline := time.Now().Add(*graceLeak)
	leaked := -1
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			leaked = 0
			break
		}
		if time.Now().After(leakDeadline) {
			leaked = runtime.NumGoroutine() - baseline
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Aggregate client results and verdicts. The reconnect tallies include
	// the probe: it shares rctrs, so the fleet sums must too.
	var tOps, tGets, tHits, tAcked, tUnacked, tExpiredMisses uint64
	tRedials, tRetries, tUnackedOps, tExhausted := probe.Redials, probe.Retries, probe.Unacked, probe.Exhausted
	for _, cc := range ccs {
		tOps += cc.ops
		tGets += cc.gets
		tHits += cc.hits
		tAcked += cc.ackedSets
		tUnacked += cc.unackedSets
		tExpiredMisses += cc.expiredMisses
		tRedials += cc.rc.Redials
		tRetries += cc.rc.Retries
		tUnackedOps += cc.rc.Unacked
		tExhausted += cc.rc.Exhausted
		if cc.fatal != nil {
			failures = append(failures, fmt.Sprintf("client gave up: %v", cc.fatal))
		}
		failures = append(failures, cc.violations...)
	}

	fmt.Printf("  soak: %d ops in %.2fs (%.0f ops/s), %d gets, %d acked sets, %d unacked sets\n",
		tOps, soak.Seconds(), float64(tOps)/soak.Seconds(), tGets, tAcked, tUnacked)
	fmt.Printf("  faults: %d accept errors, %d resets, %d partial reads, %d partial writes, %d stalls, %d delays\n",
		lstats.AcceptErrors, pstats.Resets+lstats.Resets, pstats.PartialReads+lstats.PartialReads,
		pstats.PartialWrites+lstats.PartialWrites, pstats.Stalls+lstats.Stalls, pstats.Delays+lstats.Delays)
	fmt.Printf("  server: %d accept retries, %d panics recovered (%d injected), %d conns rejected, %d client errors\n",
		counters.AcceptRetries, counters.PanicsRecovered, hookPanics.Load(),
		counters.ConnsRejected, counters.ClientErrors)
	fmt.Printf("  cache: hit ratio %.4f, %d evictions, %d policy switches\n",
		agg.HitRatio(), agg.Evictions, agg.PolicySwitches)
	fmt.Printf("  ttl: %d post-deadline reads answered as misses; server expired %d (%d swept, %d sweep passes)\n",
		tExpiredMisses, agg.Expired, agg.SweepRemoved, srv.Cache().SweepPasses())
	if *casWorkers > 0 {
		fmt.Printf("  cas ledger: %d workers x %d increments, %d swaps acknowledged STORED\n",
			*casWorkers, *casIncrements, casStored)
	}

	if counters.PanicsRecovered != hookPanics.Load() {
		failures = append(failures, fmt.Sprintf("panic accounting: %d injected, %d recovered",
			hookPanics.Load(), counters.PanicsRecovered))
	}
	if lstats.AcceptErrors > 0 && counters.AcceptRetries == 0 {
		failures = append(failures, "accept faults were injected but the server retried none (retry path dead?)")
	}
	if agg.HitRatio() < *minHit {
		failures = append(failures, fmt.Sprintf("adaptivity: hit ratio %.4f below floor %.2f under fault-perturbed traffic",
			agg.HitRatio(), *minHit))
	}
	if leaked != 0 {
		failures = append(failures, fmt.Sprintf("goroutine leak: %d above baseline after shutdown", leaked))
	}
	// Expiry accounting: clients observed reads past an acked deadline
	// coming back as misses. With zero capacity evictions, the only legal
	// way those entries vanished is the expiry path, which counts.
	if *ttl > 0 && tExpiredMisses > 0 && agg.Evictions == 0 && agg.Expired == 0 {
		failures = append(failures, fmt.Sprintf(
			"TTL accounting dead: %d post-deadline misses observed, zero evictions, yet kv_expired_total is 0",
			tExpiredMisses))
	}

	// Metric invariants, checked only after shutdown drains every handler:
	// the observability layer must agree exactly with the engine and with
	// the clients' own books. Unacked writes may land any time before their
	// dead connection's handler unwinds, so a pre-quiescence comparison
	// would race.
	final := srv.Cache().Stats()
	getLat, setLat, delLat := srv.OpLatency("get"), srv.OpLatency("set"), srv.OpLatency("delete")
	getsLat, casLat := srv.OpLatency("gets"), srv.OpLatency("cas")
	nc := srv.NetCounters()
	fmt.Printf("  metrics: %d/%d/%d get/set/delete dispatches recorded, get p99 %v, %d B in, %d B out, %d redials, %d retries\n",
		getLat.Count, setLat.Count, delLat.Count, getLat.P99, nc.BytesIn, nc.BytesOut, redials.Load(), retries.Load())
	// get and gets both resolve through the cache's get path (gets records
	// one histogram sample per key looked up), so together they must cover
	// the engine's Gets tally exactly.
	if getLat.Count+getsLat.Count != final.Gets {
		failures = append(failures, fmt.Sprintf("metric drift: get+gets histograms recorded %d ops, cache served %d",
			getLat.Count+getsLat.Count, final.Gets))
	}
	if casLat.Count != final.CasOps() {
		failures = append(failures, fmt.Sprintf("metric drift: cas histogram recorded %d ops, cache saw %d",
			casLat.Count, final.CasOps()))
	}
	// The ledger is the run's only cas source, so its acked swaps are the
	// engine's entire CasStored book.
	if *casWorkers > 0 && casStored != final.CasStored {
		failures = append(failures, fmt.Sprintf("cas accounting: ledger acked %d swaps, cache counted %d CasStored",
			casStored, final.CasStored))
	}
	// Every dispatched set under the admission bound reaches the cache;
	// kvchaos values are far below it, so the counts must match exactly.
	if setLat.Count != final.Stores {
		failures = append(failures, fmt.Sprintf("metric drift: set histogram recorded %d ops, cache stored %d",
			setLat.Count, final.Stores))
	}
	if delLat.Count != final.Deletes {
		failures = append(failures, fmt.Sprintf("metric drift: delete histogram recorded %d ops, cache saw %d",
			delLat.Count, final.Deletes))
	}
	if active := srv.ConnsActive(); active != 0 {
		failures = append(failures, fmt.Sprintf("conns_active gauge is %d after shutdown (want 0, never negative)", active))
	}
	if nc.ConnsOpened != nc.ConnsClosed {
		failures = append(failures, fmt.Sprintf("connection books: %d opened, %d closed after shutdown",
			nc.ConnsOpened, nc.ConnsClosed))
	}
	if nc.BytesIn == 0 || nc.BytesOut == 0 {
		failures = append(failures, fmt.Sprintf("byte meters dead under real traffic: %d in, %d out", nc.BytesIn, nc.BytesOut))
	}
	if redials.Load() != tRedials || retries.Load() != tRetries ||
		unackedOps.Load() != tUnackedOps || exhausted.Load() != tExhausted {
		failures = append(failures, fmt.Sprintf(
			"shared reconnect counters diverge from client tallies: redials %d/%d, retries %d/%d, unacked %d/%d, exhausted %d/%d",
			redials.Load(), tRedials, retries.Load(), tRetries,
			unackedOps.Load(), tUnackedOps, exhausted.Load(), tExhausted))
	}
	if tUnackedOps != tUnacked {
		failures = append(failures, fmt.Sprintf("unacked accounting: clients abandoned %d sets, reconnect layer counted %d",
			tUnacked, tUnackedOps))
	}
	var expo bytes.Buffer
	if err := srv.WriteMetrics(&expo); err != nil {
		failures = append(failures, fmt.Sprintf("metrics exposition: %v", err))
	} else if err := metrics.Lint(expo.Bytes()); err != nil {
		failures = append(failures, fmt.Sprintf("metrics exposition invalid: %v", err))
	}

	if len(failures) > 0 {
		fmt.Printf("kvchaos: FAIL (%d violations)\n", len(failures))
		for _, f := range failures {
			fmt.Printf("  FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("kvchaos: PASS — zero escaped panics, zero lost acknowledged writes, zero goroutine leaks")
}
