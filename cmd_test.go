package repro

// End-to-end tests of the command-line tools: each binary is built with
// the local toolchain and driven through a small but real invocation.

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd builds ./cmd/<name> into a temp dir and returns the binary path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestAdaptsimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "adaptsim")

	out := runCmd(t, bin, "-bench", "lucas", "-policy", "LRU", "-n", "200000")
	if !strings.Contains(out, "lucas") || !strings.Contains(out, "LRU") {
		t.Fatalf("unexpected output:\n%s", out)
	}

	out = runCmd(t, bin, "-bench", "art-1", "-policy", "adaptive", "-tagbits", "8",
		"-n", "200000", "-mode", "timing")
	if !strings.Contains(out, "Adaptive(LRU/LFU,8-bit)") || !strings.Contains(out, "CPI") {
		t.Fatalf("timing mode output:\n%s", out)
	}

	out = runCmd(t, bin, "-bench", "gap", "-policy", "sbar", "-n", "200000")
	if !strings.Contains(out, "SBAR(LRU/LFU)") {
		t.Fatalf("sbar output:\n%s", out)
	}

	out = runCmd(t, bin, "-bench", "mcf", "-mode", "profile", "-n", "150000")
	if !strings.Contains(out, "L2-APKI") || !strings.Contains(out, "mcf") {
		t.Fatalf("profile output:\n%s", out)
	}

	// Unknown benchmark fails with a suggestion.
	cmd := exec.Command(bin, "-bench", "lukas")
	out2, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown benchmark accepted:\n%s", out2)
	}
	if !strings.Contains(string(out2), "lucas") {
		t.Errorf("no suggestion for typo:\n%s", out2)
	}
}

func TestTracegenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "tracegen")
	trc := filepath.Join(t.TempDir(), "x.trc")

	out := runCmd(t, bin, "-bench", "tiff2rgba", "-n", "100000", "-o", trc)
	if !strings.Contains(out, "recorded 100000 instructions") {
		t.Fatalf("record output:\n%s", out)
	}
	out = runCmd(t, bin, "-info", trc)
	if !strings.Contains(out, `"tiff2rgba"`) || !strings.Contains(out, "Load") {
		t.Fatalf("info output:\n%s", out)
	}
	out = runCmd(t, bin, "-replay", trc, "-policy", "adaptive")
	if !strings.Contains(out, "L2 MPKI") {
		t.Fatalf("replay output:\n%s", out)
	}
	out = runCmd(t, bin, "-reusedist", trc)
	if !strings.Contains(out, "LRU miss %") || !strings.Contains(out, "512KB") {
		t.Fatalf("reusedist output:\n%s", out)
	}
}

func TestBenchtablesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "benchtables")

	out := runCmd(t, bin, "-fig", "overhead")
	for _, want := range []string{"544.000", "598.000", "566.000", "9.926", "4.044"} {
		if !strings.Contains(out, want) {
			t.Fatalf("overhead table missing %q:\n%s", want, out)
		}
	}

	outFile := filepath.Join(t.TempDir(), "r.txt")
	runCmd(t, bin, "-fig", "overhead", "-out", outFile)
	data, err := os.ReadFile(outFile)
	if err != nil || !strings.Contains(string(data), "SRAM storage") {
		t.Fatalf("-out file: %v\n%s", err, data)
	}

	cmd := exec.Command(bin, "-fig", "999")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("unknown figure accepted:\n%s", out)
	}
}

func TestVerifyboundEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "verifybound")
	out := runCmd(t, bin, "-ways", "2", "-blocks", "3", "-len", "6")
	if !strings.Contains(out, "holds on every trace") {
		t.Fatalf("verifybound output:\n%s", out)
	}
	out = runCmd(t, bin, "-ways", "2", "-blocks", "5", "-len", "200", "-random", "50")
	if !strings.Contains(out, "random check") {
		t.Fatalf("random mode output:\n%s", out)
	}
}

// TestAdaptcachedKvloadgenEndToEnd exercises the two key-value binaries
// together over a real loopback socket: adaptcached serving, kvloadgen
// driving pipelined connections, then a graceful SIGTERM drain.
func TestAdaptcachedKvloadgenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	server := buildCmd(t, "adaptcached")
	loadgen := buildCmd(t, "kvloadgen")

	// Reserve a free loopback port, then hand it to the server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var serverOut strings.Builder
	srv := exec.Command(server, "-addr", addr, "-shards", "4", "-sets", "256", "-drain", "2s")
	srv.Stdout = &serverOut
	srv.Stderr = &serverOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// Wait for the listener to come up.
	ok := false
	for i := 0; i < 100; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			ok = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("server never came up:\n%s", serverOut.String())
	}

	out := runCmd(t, loadgen, "-addr", addr, "-conns", "2", "-ops", "40000", "-mix", "zipf")
	for _, want := range []string{"ops/s", "hit ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("loadgen output missing %q:\n%s", want, out)
		}
	}
	out = runCmd(t, loadgen, "-addr", addr, "-conns", "1", "-ops", "20000", "-mix", "loop")
	if !strings.Contains(out, "ops/s") {
		t.Fatalf("loop-mix loadgen output:\n%s", out)
	}

	// -direct runs the same loop against the in-process cache (no server).
	out = runCmd(t, loadgen, "-direct", "-ops", "20000")
	if !strings.Contains(out, "ops/s") {
		t.Fatalf("-direct loadgen output:\n%s", out)
	}

	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server exit: %v\n%s", err, serverOut.String())
	}
	if got := serverOut.String(); !strings.Contains(got, "served") {
		t.Fatalf("server summary missing:\n%s", got)
	}
}

// TestKvrouterEndToEnd stands up two adaptcached nodes and a kvrouter in
// front of them, then drives load two ways: through the router (clients
// see one endpoint, the router owns placement and fanout) and directly
// at the fleet via kvloadgen -targets (per-target accounting).
func TestKvrouterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	server := buildCmd(t, "adaptcached")
	routerBin := buildCmd(t, "kvrouter")
	loadgen := buildCmd(t, "kvloadgen")

	freeAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().String()
	}
	awaitUp := func(addr string, out *strings.Builder) {
		t.Helper()
		for i := 0; i < 100; i++ {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				c.Close()
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("%s never came up:\n%s", addr, out.String())
	}

	var nodeAddrs []string
	for i := 0; i < 2; i++ {
		addr := freeAddr()
		var out strings.Builder
		srv := exec.Command(server, "-addr", addr, "-shards", "4", "-sets", "256", "-drain", "1s")
		srv.Stdout, srv.Stderr = &out, &out
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Process.Kill()
		awaitUp(addr, &out)
		nodeAddrs = append(nodeAddrs, addr)
	}

	routerAddr := freeAddr()
	var routerOut strings.Builder
	router := exec.Command(routerBin, "-addr", routerAddr, "-nodes", strings.Join(nodeAddrs, ","),
		"-probe-interval", "50ms", "-drain", "1s")
	router.Stdout, router.Stderr = &routerOut, &routerOut
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer router.Process.Kill()
	awaitUp(routerAddr, &routerOut)

	// Through the router: one endpoint, the fleet behind it.
	out := runCmd(t, loadgen, "-addr", routerAddr, "-conns", "2", "-ops", "20000", "-mix", "zipf", "-multiget", "8")
	if !strings.Contains(out, "ops/s") || !strings.Contains(out, "hit ratio") {
		t.Fatalf("routed loadgen output:\n%s", out)
	}

	// Directly at the fleet: -targets breaks the report out per node.
	out = runCmd(t, loadgen, "-targets", strings.Join(nodeAddrs, ","), "-conns", "2", "-ops", "10000")
	for _, addr := range nodeAddrs {
		if !strings.Contains(out, "target "+addr+":") {
			t.Fatalf("per-target line for %s missing:\n%s", addr, out)
		}
	}

	if err := router.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := router.Wait(); err != nil {
		t.Fatalf("router exit: %v\n%s", err, routerOut.String())
	}
	if got := routerOut.String(); !strings.Contains(got, "backend tallies") {
		t.Fatalf("router summary missing:\n%s", got)
	}
}

// TestKvrouterChaosEndToEnd runs a small fixed-seed partition drill:
// 3 in-process nodes behind a router, one killed mid-soak and later
// restarted. The binary checks the invariants (ejection fires, surviving
// keyspace stays available, no ambiguous-write replays, unacked tallies
// reconcile) itself and exits nonzero on violation.
func TestKvrouterChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "kvrouterchaos")
	out := runCmd(t, bin, "-seed", "3", "-clients", "2", "-ops", "400", "-keys", "64")
	if !strings.Contains(out, "kvrouterchaos: PASS") {
		t.Fatalf("partition drill did not pass:\n%s", out)
	}
	for _, want := range []string{"dead-keyspace failures", "ejections: "} {
		if !strings.Contains(out, want) {
			t.Fatalf("drill summary missing %q:\n%s", want, out)
		}
	}
}

// TestKvrouterChaosReplicatedEndToEnd runs the same drill under the
// -replicas 2 contract: the outage becomes a partition the replica must
// absorb (zero failed ops), the healed node must be flushed before
// reintegration, and — the regression half — disabling that flush with
// -no-reintegrate-flush must make the gate fail with a stale-read
// violation, proving the drill actually detects what the flush prevents.
func TestKvrouterChaosReplicatedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "kvrouterchaos")

	out := runCmd(t, bin, "-seed", "3", "-clients", "2", "-ops", "400", "-keys", "64", "-replicas", "2")
	if !strings.Contains(out, "kvrouterchaos: PASS") {
		t.Fatalf("replicated drill did not pass:\n%s", out)
	}
	for _, want := range []string{"0 dead-keyspace failures", "failover reads", "reintegration flushes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replicated summary missing %q:\n%s", want, out)
		}
	}

	cmd := exec.Command(bin, "-seed", "3", "-clients", "2", "-ops", "400", "-keys", "64",
		"-replicas", "2", "-no-reintegrate-flush")
	tripOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("drill passed with flush-on-reintegrate disabled — the gate cannot detect stale reintegration:\n%s", tripOut)
	}
	if !strings.Contains(string(tripOut), "stale value resurrected") {
		t.Fatalf("flushless drill failed for the wrong reason:\n%s", tripOut)
	}
}

// TestKvchaosEndToEnd runs a small fixed-seed chaos soak: server behind a
// fault-injecting proxy, retrying clients, slow-loris probe. The binary
// checks the invariants (no lost acked writes, no escaped panics, no
// goroutine leaks) itself and exits nonzero on violation.
func TestKvchaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "kvchaos")
	out := runCmd(t, bin, "-seed", "3", "-clients", "2", "-ops", "600", "-keys", "48",
		"-slowloris", "1", "-read-timeout", "300ms")
	if !strings.Contains(out, "kvchaos: PASS") {
		t.Fatalf("chaos soak did not pass:\n%s", out)
	}
	for _, want := range []string{"acked sets", "accept retries", "hit ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("soak summary missing %q:\n%s", want, out)
		}
	}
}
