package repro

// One benchmark per table/figure of the paper's evaluation section, plus
// ablation benches for the design decisions DESIGN.md calls out and
// microbenchmarks of the simulator itself.
//
// Figure benches run a scaled-down sweep (default 1-2M instructions per
// program; override with REPRO_INSTR) and publish the headline result via
// b.ReportMetric — e.g. BenchmarkFig3AdaptiveMPKI reports the percent
// reduction in average MPKI that the paper quotes as 19%. cmd/benchtables
// regenerates the full per-benchmark tables at full scale.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/adaptivekv"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchInstrs returns the per-program instruction budget (REPRO_INSTR
// override), scaled down by div for the heavier multi-config sweeps.
func benchInstrs(div uint64) uint64 {
	n := uint64(2_000_000)
	if v := os.Getenv("REPRO_INSTR"); v != "" {
		if p, err := strconv.ParseUint(v, 10, 64); err == nil && p > 0 {
			n = p
		}
	}
	if n/div == 0 {
		return 1
	}
	return n / div
}

func benchOpts(div uint64) sim.Options {
	n := benchInstrs(div)
	return sim.Options{Instrs: n, Warmup: n / 5}
}

// avgOf returns the "average" row (last) of a column.
func avgOf(t *sim.Table, label string) float64 {
	c := t.Column(label)
	if c == nil {
		panic(fmt.Sprintf("missing column %q", label))
	}
	return c.Values[len(c.Values)-1]
}

func BenchmarkFig3AdaptiveMPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Fig3(benchOpts(1))
		lru := avgOf(t, "LRU MPKI")
		ad := avgOf(t, "Adaptive(LRU/LFU) MPKI")
		b.ReportMetric(stats.PercentReduction(lru, ad), "MPKI-reduction-%")
		b.ReportMetric(ad, "adaptive-avg-MPKI")
		b.ReportMetric(lru, "lru-avg-MPKI")
	}
}

func BenchmarkFig4AdaptiveCPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Fig4(benchOpts(1))
		lru := avgOf(t, "LRU CPI")
		ad := avgOf(t, "Adaptive(LRU/LFU) CPI")
		b.ReportMetric(stats.PercentReduction(lru, ad), "CPI-improvement-%")
		b.ReportMetric(ad, "adaptive-avg-CPI")
	}
}

func BenchmarkFig5PartialTags(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Fig5(benchOpts(2))
		inc := t.Column("MPKI increase %")
		// Row 3 is the paper's recommended 8-bit configuration.
		b.ReportMetric(inc.Values[3], "8bit-MPKI-increase-%")
		b.ReportMetric(inc.Values[5], "4bit-MPKI-increase-%")
	}
}

func BenchmarkFig6VsBiggerCaches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Fig6(benchOpts(2))
		ad8 := avgOf(t, "Adaptive 8-bit CPI")
		ten := avgOf(t, "LRU 640KB 10w CPI")
		b.ReportMetric(stats.PercentReduction(ten, ad8), "adaptive-vs-10way-%")
	}
}

func BenchmarkFig7PhaseMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pm, err := sim.Fig7(benchOpts(1), "ammp", 32)
		if err != nil {
			b.Fatal(err)
		}
		early, late := pm.LFUShare(4, 12), pm.LFUShare(24, 32)
		b.ReportMetric(early, "early-LFU-share")
		b.ReportMetric(late, "late-LFU-share")
	}
}

func BenchmarkFig8FIFOMRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Fig8(benchOpts(1))
		fifo := avgOf(t, "FIFO MPKI")
		ad := avgOf(t, "Adaptive(FIFO/MRU) MPKI")
		b.ReportMetric(stats.PercentReduction(fifo, ad), "MPKI-reduction-vs-FIFO-%")
	}
}

func BenchmarkFig9Associativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Fig9(benchOpts(4))
		imp := t.Column("CPI improvement %")
		b.ReportMetric(imp.Values[1], "8way-CPI-improvement-%")
		b.ReportMetric(imp.Values[3], "32way-CPI-improvement-%")
	}
}

func BenchmarkFig10StoreBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Fig10(benchOpts(8))
		imp := t.Column("CPI improvement %")
		b.ReportMetric(imp.Values[2], "4entry-CPI-improvement-%") // Table 1 default
		b.ReportMetric(imp.Values[len(imp.Values)-1], "256entry-CPI-improvement-%")
	}
}

func BenchmarkExtendedSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.ExtendedSet(benchOpts(2))
		v := t.Column("value")
		b.ReportMetric(v.Values[0], "avg-miss-reduction-%")
		b.ReportMetric(v.Values[1], "avg-CPI-improvement-%")
		b.ReportMetric(v.Values[2], "worst-miss-increase-%")
		b.ReportMetric(v.Values[3], "worst-CPI-increase-%")
	}
}

func BenchmarkFivePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.FivePolicy(benchOpts(2))
		two := avgOf(t, "Adaptive(LRU/LFU) MPKI")
		five := avgOf(t, "Adaptive(LRU/LFU/FIFO/MRU/Random) MPKI")
		b.ReportMetric(stats.PercentChange(two, five), "five-vs-two-MPKI-%")
	}
}

func BenchmarkL1Adaptivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.L1Adaptivity(benchOpts(2))
		li := avgOf(t, "L1-LRU L1I-MPKI")
		ai := avgOf(t, "L1-Adaptive L1I-MPKI")
		lc := avgOf(t, "L1-LRU CPI")
		ac := avgOf(t, "L1-Adaptive CPI")
		b.ReportMetric(stats.PercentReduction(li, ai), "L1I-MPKI-reduction-%")
		b.ReportMetric(stats.PercentReduction(lc, ac), "CPI-improvement-%")
	}
}

func BenchmarkSBAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.SBARTable(benchOpts(2))
		lru := avgOf(t, "LRU CPI")
		ad := avgOf(t, "Adaptive(LRU/LFU) CPI")
		sb := avgOf(t, "SBAR(LRU/LFU) CPI")
		b.ReportMetric(stats.PercentReduction(lru, ad), "adaptive-CPI-improvement-%")
		b.ReportMetric(stats.PercentReduction(lru, sb), "sbar-CPI-improvement-%")
	}
}

func BenchmarkPrefetchHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.PrefetchTable(benchOpts(4))
		none := avgOf(t, "none MPKI")
		hybrid := avgOf(t, "Hybrid MPKI")
		nextline := avgOf(t, "NextLine MPKI")
		b.ReportMetric(stats.PercentReduction(none, hybrid), "hybrid-MPKI-reduction-%")
		b.ReportMetric(stats.PercentReduction(none, nextline), "nextline-MPKI-reduction-%")
	}
}

func BenchmarkMulticoreSharedL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.MulticoreTable(benchOpts(2), nil)
		lru := avgOf(t, "LRU MPKI")
		ad := avgOf(t, "Adaptive(LRU/LFU) MPKI")
		b.ReportMetric(stats.PercentReduction(lru, ad), "sharedL2-MPKI-reduction-%")
	}
}

func BenchmarkStorageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.OverheadTable()
		pct := t.Column("overhead %")
		b.ReportMetric(pct.Values[1], "adaptive-full-%")
		b.ReportMetric(pct.Values[2], "adaptive-8bit-%")
		b.ReportMetric(pct.Values[5], "sbar-full-%")
	}
}

// --- Ablations (DESIGN.md Section 5) ---

// ablation runs the primary set under cfg mutations and reports average
// adaptive MPKI per variant relative to the default.
func ablationMPKI(b *testing.B, p sim.PolicySpec, div uint64) float64 {
	b.Helper()
	o := benchOpts(div)
	benches := sim.PrimaryBenches()
	var sum float64
	for _, spec := range benches {
		cfg := sim.Default(p, o.Instrs)
		cfg.Warmup = o.Warmup
		sum += sim.RunCacheOnly(cfg, spec).MPKI
	}
	return sum / float64(len(benches))
}

func BenchmarkAblationHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		window := ablationMPKI(b, sim.AdaptiveSpec(0), 4)
		counters := ablationMPKI(b, sim.PolicySpec{Mode: sim.Adaptive,
			Components: []string{"LRU", "LFU"}, Counters: true}, 4)
		b.ReportMetric(window, "window-avg-MPKI")
		b.ReportMetric(counters, "counters-avg-MPKI")
		b.ReportMetric(stats.PercentChange(window, counters), "counters-vs-window-%")
	}
}

func BenchmarkAblationWindowM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []int{4, 8, 32} {
			p := sim.AdaptiveSpec(0)
			p.HistoryM = m
			b.ReportMetric(ablationMPKI(b, p, 4), fmt.Sprintf("m%d-avg-MPKI", m))
		}
	}
}

func BenchmarkAblationCountCurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, off := true, false
		pOn, pOff := sim.AdaptiveSpec(0), sim.AdaptiveSpec(0)
		pOn.CountCurrent, pOff.CountCurrent = &on, &off
		a := ablationMPKI(b, pOn, 4)
		c := ablationMPKI(b, pOff, 4)
		b.ReportMetric(stats.PercentChange(a, c), "uncounted-vs-counted-%")
	}
}

func BenchmarkAblationFallback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lruFB := ablationMPKI(b, sim.AdaptiveSpec(4), 4) // 4-bit tags: aliasing frequent
		fixed := sim.AdaptiveSpec(4)
		fixed.FallbackFixed = true
		fixedFB := ablationMPKI(b, fixed, 4)
		b.ReportMetric(stats.PercentChange(lruFB, fixedFB), "fixed-vs-LRU-fallback-%")
	}
}

func BenchmarkAblationTagHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		low := ablationMPKI(b, sim.AdaptiveSpec(8), 4)
		folded := sim.AdaptiveSpec(8)
		folded.XORFold = true
		f := ablationMPKI(b, folded, 4)
		b.ReportMetric(stats.PercentChange(low, f), "xorfold-vs-lowbits-%")
	}
}

// BenchmarkAblationComponentPairs evaluates the paper's Section 4.4 claim
// that "no combination of policies outperformed the LRU+LFU adaptivity":
// average primary-set MPKI for several adaptive pairs, including the
// extended policies (PLRU, SLRU, Split).
func BenchmarkAblationComponentPairs(b *testing.B) {
	pairs := [][]string{
		{"LRU", "LFU"},
		{"FIFO", "MRU"},
		{"LRU", "MRU"},
		{"FIFO", "LFU"},
		{"LRU", "Random"},
		{"PLRU", "LFU"},
		{"LRU", "SLRU"},
		{"LRU", "Split"},
	}
	for i := 0; i < b.N; i++ {
		for _, pair := range pairs {
			m := ablationMPKI(b, sim.AdaptiveSpec(0, pair...), 4)
			b.ReportMetric(m, pair[0]+"+"+pair[1]+"-avg-MPKI")
		}
	}
}

func BenchmarkAblationLeaders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, l := range []int{8, 16, 64} {
			b.ReportMetric(ablationMPKI(b, sim.SBARSpec(0, l), 4),
				fmt.Sprintf("leaders%d-avg-MPKI", l))
		}
	}
}

// --- Simulator microbenchmarks ---

func BenchmarkCacheAccessLRU(b *testing.B) {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	c := cache.New(g, policy.NewLRU())
	rng := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Access(cache.Addr(rng%(1<<26)), false)
	}
}

func BenchmarkCacheAccessAdaptive(b *testing.B) {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	ad := core.NewAdaptive([]core.ComponentFactory{
		func() cache.Policy { return policy.NewLRU() },
		func() cache.Policy { return policy.NewLFU(policy.DefaultLFUBits) },
	}, core.WithShadowTagBits(8))
	c := cache.New(g, ad)
	rng := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Access(cache.Addr(rng%(1<<26)), false)
	}
}

// BenchmarkAccessTag measures the fused probe-and-fill entry point with
// pre-decomposed set/tag pairs — the exact call the adaptive policy makes
// against its shadow arrays.
func BenchmarkAccessTag(b *testing.B) {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	c := cache.New(g, policy.NewLRU())
	sets := g.Sets()
	rng := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.AccessTag(int(rng)&(sets-1), rng>>10, false)
	}
}

// BenchmarkAdaptiveAccess measures one full adaptive L2 access: the fused
// real-array probe plus both shadow-array emulations and the history
// update.
func BenchmarkAdaptiveAccess(b *testing.B) {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	ad := core.NewAdaptive(core.DefaultComponents(), core.WithShadowTagBits(8))
	c := cache.New(g, ad)
	rng := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Access(cache.Addr(rng%(1<<26)), false)
	}
}

// TestHotPathZeroAllocs enforces the zero-allocation contract on the
// steady-state access path: after attach and warm-up fills, neither a
// conventional nor an adaptive cache access may allocate, and neither may
// Adaptive.Name.
func TestHotPathZeroAllocs(t *testing.T) {
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	ad := core.NewAdaptive(core.DefaultComponents(), core.WithShadowTagBits(8))
	adc := cache.New(g, ad)
	lru := cache.New(g, policy.NewLRU())
	rng := uint64(1)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % (1 << 26)
	}
	for i := 0; i < 200_000; i++ { // fill sets and shadow arrays
		a := next()
		adc.Access(cache.Addr(a), false)
		lru.Access(cache.Addr(a), false)
	}
	if n := testing.AllocsPerRun(10_000, func() {
		lru.Access(cache.Addr(next()), false)
	}); n != 0 {
		t.Errorf("LRU access allocates %.2f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10_000, func() {
		adc.Access(cache.Addr(next()), true)
	}); n != 0 {
		t.Errorf("adaptive access allocates %.2f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = ad.Name()
	}); n != 0 {
		t.Errorf("Adaptive.Name allocates %.2f/op, want 0", n)
	}
}

// BenchmarkKVGet measures the adaptivekv hit path end to end: hash, shard
// lock, engine probe (policy Observe/Touch and SBAR winner tracking), key
// comparison. cmd/benchregress gates the same loop as kv/Get.
func BenchmarkKVGet(b *testing.B) {
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{})
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	rng := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Get(rng % keys)
	}
}

// BenchmarkKVSet measures steady-state stores over a keyspace several times
// the cache capacity, so most iterations run the full Algorithm 1 victim
// path and evict. cmd/benchregress gates the same loop as kv/Set.
func BenchmarkKVSet(b *testing.B) {
	c := adaptivekv.New[uint64, uint64](adaptivekv.Config{})
	rng := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Set(rng%100_000, rng)
	}
}

func BenchmarkHistoryWindowRecord(b *testing.B) {
	w := history.NewWindow(8)
	w.Attach(1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Record(i&1023, uint64(1+(i&1)))
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	spec, err := workload.ByName("art-1")
	if err != nil {
		b.Fatal(err)
	}
	g := workload.New(spec, uint64(b.N)+1)
	b.ResetTimer()
	var rec trace.Record
	for i := 0; i < b.N; i++ {
		g.Next(&rec)
	}
}

func BenchmarkTimingSimulation(b *testing.B) {
	spec, err := workload.ByName("lucas")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default(sim.AdaptiveSpec(8), uint64(b.N)+1)
	b.ResetTimer()
	sim.Run(cfg, spec)
}

func BenchmarkCacheOnlySimulation(b *testing.B) {
	spec, err := workload.ByName("lucas")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default(sim.AdaptiveSpec(8), uint64(b.N)+1)
	b.ResetTimer()
	sim.RunCacheOnly(cfg, spec)
}
