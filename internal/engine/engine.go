// Package engine provides the shared, bounded worker pool on which the
// figure generators and command-line tools schedule simulation runs.
//
// Previously every sweep spun up its own ad-hoc goroutine pool, so
// concurrent figures multiplied worker counts and independent sweeps ran
// as a serial chain. The engine centralizes scheduling: one process-wide
// Default pool sized to GOMAXPROCS, deadlock-free nesting (a caller that
// cannot obtain a slot runs tasks inline instead of blocking), and
// deterministic result placement (tasks write to index-addressed storage,
// so scheduling order never affects output).
//
// Concurrency invariant for callers: every task must own all mutable
// state it touches — one machine, one workload generator, one RNG per
// run — and may share only immutable inputs (specs, configs, recorded
// traces). All sim entry points satisfy this by constructing a fresh
// machine per run.
package engine

import (
	"runtime"
	"sync"
)

// Pool bounds the number of concurrently executing tasks. Construct with
// New; the zero value is not usable.
type Pool struct {
	sem chan struct{}
}

// Default is the process-wide pool, sized to GOMAXPROCS. All figure
// generation shares it unless a caller asks for a private pool, so total
// simulation concurrency stays bounded no matter how many figures run at
// once.
var Default = New(runtime.GOMAXPROCS(0))

// New returns a pool running at most workers tasks on pool-owned
// goroutines. Values below 1 are clamped to 1.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Map runs fn(0), fn(1), ..., fn(n-1) and returns when all have
// completed. Each task runs on a pool goroutine when a slot is free and
// inline in the caller otherwise; the caller always makes progress, so
// arbitrarily nested Map calls cannot deadlock. Beyond the pool's workers,
// each concurrently blocked caller contributes at most its own goroutine.
//
// Tasks run concurrently: fn must confine its writes to per-index state
// (e.g. results[i]) and must not assume any execution order.
func (p *Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}

// Go schedules fn like a one-task Map but returns immediately; the
// returned function blocks until fn has completed. If no slot is free the
// task runs inline before Go returns.
func (p *Pool) Go(fn func()) (wait func()) {
	select {
	case p.sem <- struct{}{}:
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() { <-p.sem }()
			fn()
		}()
		return func() { <-done }
	default:
		fn()
		return func() {}
	}
}
