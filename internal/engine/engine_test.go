package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewClampsWorkers(t *testing.T) {
	for _, w := range []int{-3, 0, 1} {
		if got := New(w).Workers(); got < 1 {
			t.Errorf("New(%d).Workers() = %d, want >= 1", w, got)
		}
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("Workers() = %d, want 7", got)
	}
}

func TestMapRunsEveryIndexOnce(t *testing.T) {
	p := New(4)
	const n = 100
	var hits [n]int32
	p.Map(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	p := New(2)
	ran := false
	p.Map(0, func(int) { ran = true })
	p.Map(-5, func(int) { ran = true })
	if ran {
		t.Fatal("Map ran tasks for non-positive n")
	}
}

func TestMapSingleTaskRunsInline(t *testing.T) {
	p := New(2)
	got := -1
	p.Map(1, func(i int) { got = i })
	if got != 0 {
		t.Fatalf("single-task Map got index %d", got)
	}
}

// TestMapBoundsConcurrency checks that at most Workers pool goroutines run
// simultaneously (inline execution in the caller adds at most one more).
func TestMapBoundsConcurrency(t *testing.T) {
	p := New(3)
	var cur, peak int32
	var mu sync.Mutex
	p.Map(50, func(int) {
		n := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > 4 { // 3 pool slots + the caller running inline
		t.Fatalf("observed %d concurrent tasks, want <= 4", peak)
	}
}

// TestNestedMapDoesNotDeadlock exercises the inline-fallback path: inner
// Map calls issued from tasks that already hold every pool slot must still
// complete.
func TestNestedMapDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total int32
	p.Map(8, func(int) {
		p.Map(8, func(int) {
			atomic.AddInt32(&total, 1)
		})
	})
	if total != 64 {
		t.Fatalf("nested Map ran %d inner tasks, want 64", total)
	}
}

func TestGoWaits(t *testing.T) {
	p := New(1)
	done := false
	wait := p.Go(func() { done = true })
	wait()
	if !done {
		t.Fatal("Go task had not completed after wait()")
	}
}

func TestGoInlineWhenSaturated(t *testing.T) {
	p := New(1)
	block := make(chan struct{})
	started := make(chan struct{})
	w1 := p.Go(func() { close(started); <-block })
	<-started
	// Pool is saturated: this Go must run inline and return only when done.
	ran := false
	w2 := p.Go(func() { ran = true })
	if !ran {
		t.Fatal("saturated Go did not run inline")
	}
	close(block)
	w1()
	w2()
}

func TestDefaultPoolExists(t *testing.T) {
	if Default == nil || Default.Workers() < 1 {
		t.Fatal("Default pool missing or empty")
	}
}
