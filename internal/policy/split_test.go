package policy

import (
	"testing"

	"repro/internal/cache"
)

func TestSplitRequiresEvenWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd ways accepted")
		}
	}()
	g := cache.Geometry{SizeBytes: 3 * 64, LineBytes: 64, Ways: 3}
	cache.New(g, NewSplit())
}

func TestSplitPartitionsByTagParity(t *testing.T) {
	c := oneSet(4, NewSplit())
	// Four even-tag blocks into a 4-way set: only the low half (2 ways)
	// is available to them once full, so they thrash among 2 slots while
	// odd tags keep the other half.
	evens := []int{0, 2, 4, 6}
	odds := []int{1, 3}
	for _, b := range odds {
		c.Access(blk(b), false)
	}
	for _, b := range evens {
		c.Access(blk(b), false)
	}
	// Odd blocks must still be resident: the even traffic was confined to
	// its own half.
	for _, b := range odds {
		if !c.Contains(blk(b)) {
			t.Fatalf("odd block %d displaced by even traffic", b)
		}
	}
	// At most 2 of the 4 even blocks fit.
	resident := 0
	for _, b := range evens {
		if c.Contains(blk(b)) {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("%d even blocks resident, want 2 (half the ways)", resident)
	}
}

func TestSplitStrictPlacement(t *testing.T) {
	// A block may only live in its own half: with 2 ways, the second even
	// block evicts the first even though way 1 is still invalid.
	c := oneSet(2, NewSplit())
	c.Access(blk(0), false) // even -> way 0
	res := c.Access(blk(2), false)
	if !res.Evicted || res.EvictedTag != 0 || res.Way != 0 {
		t.Fatalf("strict partition violated: %+v", res)
	}
	if c.Contains(blk(0)) {
		t.Fatal("evicted even block still resident")
	}
	// The odd half was never touched.
	c.Access(blk(1), false)
	if !c.Contains(blk(1)) || !c.Contains(blk(2)) {
		t.Fatal("odd fill disturbed the even half")
	}
}

func TestSplitVictimReclaimsMisplacedLines(t *testing.T) {
	// When Split is consulted only through Victim (the SBAR follower
	// path, where fills are not Split-placed), a line sitting in the
	// wrong half is reclaimed before a well-placed one.
	p := NewSplit()
	g := cache.Geometry{SizeBytes: 2 * 64, LineBytes: 64, Ways: 2}
	p.Attach(g)
	lines := []cache.Line{
		{Tag: 3, Valid: true}, // odd tag misplaced in the even half (way 0)
		{Tag: 1, Valid: true},
	}
	if w := p.Victim(0, lines, 2); w != 0 {
		t.Fatalf("Victim chose way %d, want 0 (misplaced line)", w)
	}
}
