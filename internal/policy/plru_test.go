package policy

import (
	"testing"

	"repro/internal/cache"
)

func TestPLRURequiresPowerOfTwoWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("6-way PLRU accepted")
		}
	}()
	g := cache.Geometry{SizeBytes: 6 * 64, LineBytes: 64, Ways: 6}
	cache.New(g, NewPLRU())
}

func TestPLRUVictimAvoidsRecentlyTouched(t *testing.T) {
	c := oneSet(4, NewPLRU())
	evictions(c, []int{0, 1, 2, 3})
	// Touch 0 and 2; the next victim must be 1 or 3.
	c.Access(blk(0), false)
	c.Access(blk(2), false)
	res := c.Access(blk(9), false)
	if !res.Evicted || (res.EvictedTag != 1 && res.EvictedTag != 3) {
		t.Fatalf("PLRU evicted %d, want 1 or 3", res.EvictedTag)
	}
}

func TestPLRUNeverEvictsMostRecent(t *testing.T) {
	c := oneSet(8, NewPLRU())
	rng := uint64(5)
	last := -1
	for i := 0; i < 30000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		b := int(rng % 24)
		res := c.Access(blk(b), false)
		if res.Evicted && last >= 0 && res.EvictedTag == uint64(last) {
			t.Fatalf("access %d evicted the immediately preceding block %d", i, last)
		}
		last = b
	}
}

// TestPLRUApproximatesLRU: on a recency-friendly stream, PLRU's miss count
// should land within ~15% of true LRU — the whole point of the tree
// approximation.
func TestPLRUApproximatesLRU(t *testing.T) {
	run := func(p cache.Policy) uint64 {
		c := oneSet(8, p)
		rng := uint64(9)
		base := 0
		for i := 0; i < 100000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if i%100 == 99 {
				base++
			}
			c.Access(blk(base+int(rng%10)), false)
		}
		return c.Stats().Misses
	}
	lru, plru := run(NewLRU()), run(NewPLRU())
	ratio := float64(plru) / float64(lru)
	if ratio < 0.85 || ratio > 1.2 {
		t.Fatalf("PLRU/LRU miss ratio %.2f, want ~1", ratio)
	}
}

func TestSLRUPromotionProtectsReusedLines(t *testing.T) {
	// 4 ways, 2 protected. Blocks 0,1 get hits (promoted); a scan of
	// singletons then churns only the probationary half.
	c := oneSet(4, NewSLRU(2))
	c.Access(blk(0), false)
	c.Access(blk(1), false)
	c.Access(blk(0), false) // promote 0
	c.Access(blk(1), false) // promote 1
	for b := 10; b < 30; b++ {
		c.Access(blk(b), false)
	}
	if !c.Contains(blk(0)) || !c.Contains(blk(1)) {
		t.Fatal("protected lines lost to a scan")
	}
	// LRU on the same stream loses them immediately.
	c2 := oneSet(4, NewLRU())
	for _, b := range []int{0, 1, 0, 1, 10, 11, 12, 13} {
		c2.Access(blk(b), false)
	}
	if c2.Contains(blk(0)) {
		t.Fatal("premise broken: LRU kept the reused block")
	}
}

func TestSLRUDemotionBoundsProtectedSegment(t *testing.T) {
	p := NewSLRU(2)
	c := oneSet(4, p)
	// Promote three blocks; only two can stay protected.
	for _, b := range []int{0, 1, 2, 0, 1, 2} {
		c.Access(blk(b), false)
	}
	prot := 0
	for w := 0; w < 4; w++ {
		if p.prot[w] {
			prot++
		}
	}
	if prot > 2 {
		t.Fatalf("%d protected lines, segment size 2", prot)
	}
}

func TestSLRUDefaultSegment(t *testing.T) {
	p := NewSLRU(0)
	g := cache.Geometry{SizeBytes: 8 * 64, LineBytes: 64, Ways: 8}
	p.Attach(g)
	if p.protected != 4 {
		t.Fatalf("default protected = %d, want ways/2", p.protected)
	}
	p2 := NewSLRU(99)
	p2.Attach(g)
	if p2.protected != 7 {
		t.Fatalf("clamped protected = %d, want ways-1", p2.protected)
	}
}

func TestExtendedNamesResolve(t *testing.T) {
	for _, name := range ExtendedNames() {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got := f().Name(); got != name {
			t.Errorf("%q builds %q", name, got)
		}
	}
}

// TestExtendedPoliciesRunUnderAdaptiveGeometry: every extended policy must
// drive a full-size cache without panicking and with sane stats.
func TestExtendedPoliciesDriveFullCache(t *testing.T) {
	g := cache.Geometry{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8}
	for _, name := range ExtendedNames() {
		c := cache.New(g, MustByName(name)())
		rng := uint64(77)
		for i := 0; i < 50000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			c.Access(cache.Addr(rng%(1<<22)), false)
		}
		s := c.Stats()
		if s.Accesses != 50000 || s.Hits+s.Misses != s.Accesses {
			t.Errorf("%s: inconsistent stats %+v", name, s)
		}
	}
}
