package policy

import "repro/internal/cache"

// DefaultRandomSeed seeds Random policies created via ByName. Any nonzero
// value works; fixing one keeps whole-suite runs reproducible.
const DefaultRandomSeed = 0x9E3779B97F4A7C15

// Random evicts a uniformly pseudo-random way. The generator is a
// deterministic xorshift64* stream seeded at construction, so identical
// traces produce identical behavior.
type Random struct {
	cache.NopObserver
	seed  uint64
	state uint64
	ways  int
}

// NewRandom returns a Random policy with the given nonzero seed.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = DefaultRandomSeed
	}
	return &Random{seed: seed}
}

// Name implements cache.Policy.
func (*Random) Name() string { return "Random" }

// Attach implements cache.Policy.
func (p *Random) Attach(g cache.Geometry) {
	p.state = p.seed
	p.ways = g.Ways
}

// Touch implements cache.Policy: no state.
func (p *Random) Touch(int, int) {}

// Insert implements cache.Policy: no state.
func (p *Random) Insert(int, int, uint64) {}

// Victim implements cache.Policy: a pseudo-random way.
func (p *Random) Victim(int, []cache.Line, uint64) int {
	// xorshift64* (Vigna); high bits are well mixed.
	p.state ^= p.state >> 12
	p.state ^= p.state << 25
	p.state ^= p.state >> 27
	x := p.state * 0x2545F4914F6CDD1D
	return int((x >> 33) % uint64(p.ways))
}
