package policy

import "repro/internal/cache"

// Split demonstrates the paper's generality claim (Section 5): "our
// adaptive caching technique is sufficiently general that it can simulate
// adapting between two different set associativities, where policy A uses
// all n ways, and policy B effectively manages its cache lines as two
// separate sets of n/2 ways."
//
// Split is that policy B: it hashes each block (by tag parity) into one
// half of the ways and runs LRU within the half. Paired with a plain LRU
// under the adaptive scheme, the cache effectively adapts between n-way
// and 2x(n/2)-way associativity per set.
type Split struct {
	cache.NopObserver
	ways  int
	half  int
	clock uint64
	at    []uint64
}

// NewSplit returns a fresh split-associativity policy. The attached cache
// must have an even number of ways.
func NewSplit() *Split { return &Split{} }

// Name implements cache.Policy.
func (*Split) Name() string { return "Split" }

// Attach implements cache.Policy.
func (p *Split) Attach(g cache.Geometry) {
	if g.Ways%2 != 0 {
		panic("policy: Split requires an even number of ways")
	}
	p.ways = g.Ways
	p.half = g.Ways / 2
	p.clock = 0
	p.at = make([]uint64, g.Sets()*g.Ways)
}

// Touch implements cache.Policy.
func (p *Split) Touch(set, way int) {
	p.clock++
	p.at[set*p.ways+way] = p.clock
}

// Insert implements cache.Policy.
func (p *Split) Insert(set, way int, _ uint64) { p.Touch(set, way) }

// halfOf maps a tag to its way partition.
func halfOf(tag uint64) int { return int(tag & 1) }

// Place implements cache.Placer: a block may only live in its own half.
// An invalid way there is used first; otherwise the half's LRU line is
// evicted, even if the other half has free ways — strict partitioning.
func (p *Split) Place(set int, lines []cache.Line, tag uint64) int {
	h := halfOf(tag)
	lo, hi := h*p.half, h*p.half+p.half
	for w := lo; w < hi; w++ {
		if !lines[w].Valid {
			return w
		}
	}
	return p.Victim(set, lines, tag)
}

// Victim implements cache.Policy: LRU restricted to the incoming block's
// half of the ways. If the half still has a line belonging to the other
// partition (possible because fills may land on any invalid way), that
// misplaced line is evicted first.
func (p *Split) Victim(set int, lines []cache.Line, tag uint64) int {
	h := halfOf(tag)
	lo, hi := h*p.half, h*p.half+p.half
	base := set * p.ways

	// Prefer evicting a line that does not belong in this half.
	for w := lo; w < hi; w++ {
		if lines[w].Valid && halfOf(lines[w].Tag) != h {
			return w
		}
	}
	best := lo
	for w := lo + 1; w < hi; w++ {
		if p.at[base+w] < p.at[base+best] {
			best = w
		}
	}
	return best
}
