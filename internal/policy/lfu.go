package policy

import "repro/internal/cache"

// DefaultLFUBits is the paper's LFU counter width (Table 1: "5-bit LFU
// counters").
const DefaultLFUBits = 5

// LFU evicts the least frequently used line, counting uses with per-way
// saturating counters of configurable width. Ties are broken toward the
// least recently used of the tied ways, which keeps the policy deterministic
// and sensible when many counters saturate or a set is full of singletons.
type LFU struct {
	cache.NopObserver
	bits  int
	max   uint32
	ways  int
	count []uint32
	rec   stamps
}

// NewLFU returns an LFU policy with saturating counters of the given bit
// width (1..31). Width DefaultLFUBits matches the paper's configuration.
func NewLFU(bits int) *LFU {
	if bits < 1 || bits > 31 {
		panic("policy: LFU counter bits out of range")
	}
	return &LFU{bits: bits, max: 1<<uint(bits) - 1}
}

// Name implements cache.Policy.
func (*LFU) Name() string { return "LFU" }

// Bits returns the counter width.
func (p *LFU) Bits() int { return p.bits }

// Attach implements cache.Policy.
func (p *LFU) Attach(g cache.Geometry) {
	p.ways = g.Ways
	p.count = make([]uint32, g.Sets()*g.Ways)
	p.rec.attach(g)
}

// Touch implements cache.Policy: saturating increment plus recency stamp.
func (p *LFU) Touch(set, way int) {
	i := set*p.ways + way
	if p.count[i] < p.max {
		p.count[i]++
	}
	p.rec.stamp(set, way)
}

// Insert implements cache.Policy: a fresh block starts at count 1.
func (p *LFU) Insert(set, way int, _ uint64) {
	p.count[set*p.ways+way] = 1
	p.rec.stamp(set, way)
}

// Victim implements cache.Policy: minimum count, LRU among ties.
func (p *LFU) Victim(set int, _ []cache.Line, _ uint64) int {
	base := set * p.ways
	best := 0
	for w := 1; w < p.ways; w++ {
		switch {
		case p.count[base+w] < p.count[base+best]:
			best = w
		case p.count[base+w] == p.count[base+best] &&
			p.rec.at[base+w] < p.rec.at[base+best]:
			best = w
		}
	}
	return best
}

// Count returns the current saturating counter for (set, way); used by
// tests and the SBAR variant's metadata checks.
func (p *LFU) Count(set, way int) uint32 { return p.count[set*p.ways+way] }
