package policy

import "repro/internal/cache"

// PLRU is tree-based pseudo-LRU — the approximation real set-associative
// hardware of the paper's era used instead of true LRU (true LRU ordering
// for 8 ways needs log2(8!) ≈ 16 bits per set; the PLRU tree needs 7).
// Each set keeps ways-1 tree bits; a touch flips the path bits away from
// the touched way, and the victim walk follows the bits. Ways must be a
// power of two.
//
// As an adaptive component it demonstrates that the scheme composes with
// hardware-realistic approximations, and it gives the storage model a
// cheaper metadata point.
type PLRU struct {
	cache.NopObserver
	ways int
	bits []bool // (ways-1) tree bits per set: false = left subtree is colder
}

// NewPLRU returns a fresh tree pseudo-LRU policy.
func NewPLRU() *PLRU { return &PLRU{} }

// Name implements cache.Policy.
func (*PLRU) Name() string { return "PLRU" }

// Attach implements cache.Policy.
func (p *PLRU) Attach(g cache.Geometry) {
	if g.Ways&(g.Ways-1) != 0 {
		panic("policy: PLRU requires power-of-two ways")
	}
	p.ways = g.Ways
	p.bits = make([]bool, g.Sets()*(g.Ways-1))
}

// touch walks from the root to the leaf of `way`, pointing every tree bit
// AWAY from the path (so the victim walk avoids the recently used way).
func (p *PLRU) touch(set, way int) {
	base := set * (p.ways - 1)
	node, lo, hi := 0, 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		right := way >= mid
		p.bits[base+node] = !right // point at the other subtree
		if right {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
}

// Touch implements cache.Policy.
func (p *PLRU) Touch(set, way int) { p.touch(set, way) }

// Insert implements cache.Policy.
func (p *PLRU) Insert(set, way int, _ uint64) { p.touch(set, way) }

// Victim implements cache.Policy: follow the tree bits to the
// pseudo-least-recently-used way.
func (p *PLRU) Victim(set int, _ []cache.Line, _ uint64) int {
	base := set * (p.ways - 1)
	node, lo, hi := 0, 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.bits[base+node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// SLRU is segmented LRU: each set is split into a probationary and a
// protected segment (sizes ways-Protected and Protected). Fills enter the
// probationary segment; a hit promotes the line to protected, demoting the
// protected LRU back to probationary. Victims come from the probationary
// LRU. SLRU approximates frequency-awareness with pure recency machinery —
// a natural third component for the adaptive scheme, between LRU and LFU.
type SLRU struct {
	cache.NopObserver
	protected int
	ways      int
	clock     uint64
	at        []uint64
	prot      []bool
}

// NewSLRU returns an SLRU with the given protected-segment size (clamped
// to 1..ways-1 at Attach; the conventional choice is ways/2).
func NewSLRU(protected int) *SLRU { return &SLRU{protected: protected} }

// Name implements cache.Policy.
func (*SLRU) Name() string { return "SLRU" }

// Attach implements cache.Policy.
func (p *SLRU) Attach(g cache.Geometry) {
	p.ways = g.Ways
	if p.protected < 1 {
		p.protected = g.Ways / 2
	}
	if p.protected >= g.Ways {
		p.protected = g.Ways - 1
	}
	p.clock = 0
	p.at = make([]uint64, g.Sets()*g.Ways)
	p.prot = make([]bool, g.Sets()*g.Ways)
}

func (p *SLRU) stamp(set, way int) {
	p.clock++
	p.at[set*p.ways+way] = p.clock
}

// Touch implements cache.Policy: promote to the protected segment,
// demoting its LRU member if the segment is full.
func (p *SLRU) Touch(set, way int) {
	base := set * p.ways
	i := base + way
	p.stamp(set, way)
	if p.prot[i] {
		return
	}
	n, lruProt, lruAt := 0, -1, uint64(0)
	for w := 0; w < p.ways; w++ {
		if p.prot[base+w] {
			n++
			if lruProt < 0 || p.at[base+w] < lruAt {
				lruProt, lruAt = w, p.at[base+w]
			}
		}
	}
	if n >= p.protected && lruProt >= 0 {
		p.prot[base+lruProt] = false // demote
	}
	p.prot[i] = true
}

// Insert implements cache.Policy: new lines are probationary.
func (p *SLRU) Insert(set, way int, _ uint64) {
	p.prot[set*p.ways+way] = false
	p.stamp(set, way)
}

// Victim implements cache.Policy: the probationary LRU, or the overall
// LRU if everything is protected (possible transiently after Attach).
func (p *SLRU) Victim(set int, _ []cache.Line, _ uint64) int {
	base := set * p.ways
	best, bestAt := -1, uint64(0)
	for w := 0; w < p.ways; w++ {
		if !p.prot[base+w] && (best < 0 || p.at[base+w] < bestAt) {
			best, bestAt = w, p.at[base+w]
		}
	}
	if best >= 0 {
		return best
	}
	best, bestAt = 0, p.at[base]
	for w := 1; w < p.ways; w++ {
		if p.at[base+w] < bestAt {
			best, bestAt = w, p.at[base+w]
		}
	}
	return best
}
