package policy

import (
	"testing"

	"repro/internal/cache"
)

// oneSet returns a single-set cache of the given associativity, which makes
// eviction order directly observable.
func oneSet(ways int, p cache.Policy) *cache.Cache {
	g := cache.Geometry{SizeBytes: ways * 64, LineBytes: 64, Ways: ways}
	return cache.New(g, p)
}

// blk returns the address of block i within set 0 of a single-set cache.
func blk(i int) cache.Addr { return cache.Addr(i * 64) }

// evictions feeds the block sequence and returns, per access, the evicted
// tag or -1.
func evictions(c *cache.Cache, seq []int) []int64 {
	out := make([]int64, len(seq))
	for i, b := range seq {
		res := c.Access(blk(b), false)
		if res.Evicted {
			out[i] = int64(res.EvictedTag)
		} else {
			out[i] = -1
		}
	}
	return out
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got := f().Name(); got != name {
			t.Errorf("factory for %q builds policy named %q", name, got)
		}
	}
	if _, err := ByName("ARC"); err == nil {
		t.Error("ByName accepted an unknown policy")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic on unknown policy")
		}
	}()
	MustByName("nope")
}

func TestLRUEvictionOrder(t *testing.T) {
	c := oneSet(4, NewLRU())
	// Fill 0,1,2,3; touch 0; insert 4 -> evicts 1 (LRU), then 5 -> evicts 2.
	got := evictions(c, []int{0, 1, 2, 3, 0, 4, 5})
	want := []int64{-1, -1, -1, -1, -1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: evicted %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestLRUHitRefreshes(t *testing.T) {
	c := oneSet(2, NewLRU())
	evictions(c, []int{0, 1, 0}) // 0 is now MRU
	res := c.Access(blk(2), false)
	if !res.Evicted || res.EvictedTag != 1 {
		t.Fatalf("want eviction of 1, got %+v", res)
	}
}

func TestMRUEvictionOrder(t *testing.T) {
	c := oneSet(4, NewMRU())
	// Fill 0..3 (3 is MRU); 4 evicts 3; 5 evicts 4.
	got := evictions(c, []int{0, 1, 2, 3, 4, 5})
	want := []int64{-1, -1, -1, -1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: evicted %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMRUKeepsLinearLoopResident(t *testing.T) {
	// A loop of ways+1 blocks under MRU keeps ways-1 blocks permanently
	// resident: the defining advantage the paper exploits (Section 2.1,
	// Figure 8). LRU misses on every single access of the same loop.
	const ways, loop, rounds = 4, 5, 50
	mru := oneSet(ways, NewMRU())
	lru := oneSet(ways, NewLRU())
	seq := make([]int, 0, loop*rounds)
	for r := 0; r < rounds; r++ {
		for b := 0; b < loop; b++ {
			seq = append(seq, b)
		}
	}
	evictions(mru, seq)
	evictions(lru, seq)
	if lruHits := lru.Stats().Hits; lruHits != 0 {
		t.Fatalf("LRU got %d hits on a thrashing loop, want 0", lruHits)
	}
	mruHitRatio := float64(mru.Stats().Hits) / float64(mru.Stats().Accesses)
	if mruHitRatio < 0.5 {
		t.Fatalf("MRU hit ratio %.2f on linear loop, want >= 0.5", mruHitRatio)
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	c := oneSet(2, NewFIFO())
	evictions(c, []int{0, 1, 0, 0, 0}) // hits on 0 must not refresh
	res := c.Access(blk(2), false)
	if !res.Evicted || res.EvictedTag != 0 {
		t.Fatalf("FIFO should evict first-in block 0, got %+v", res)
	}
}

func TestLFUProtectsHotBlocks(t *testing.T) {
	c := oneSet(2, NewLFU(DefaultLFUBits))
	// Make block 0 hot, then stream blocks 1..10: the hot block survives.
	seq := []int{0, 0, 0, 0}
	for b := 1; b <= 10; b++ {
		seq = append(seq, b)
	}
	evictions(c, seq)
	if !c.Contains(blk(0)) {
		t.Fatal("LFU evicted the hot block")
	}
	// LRU on the same trace evicts the hot block immediately.
	c2 := oneSet(2, NewLRU())
	evictions(c2, seq)
	if c2.Contains(blk(0)) {
		t.Fatal("LRU kept the hot block (test premise broken)")
	}
}

func TestLFUCounterSaturation(t *testing.T) {
	p := NewLFU(2) // saturates at 3
	c := oneSet(2, p)
	c.Access(blk(0), false)
	for i := 0; i < 10; i++ {
		c.Access(blk(0), false)
	}
	if got := p.Count(0, 0); got != 3 {
		t.Fatalf("saturating count = %d, want 3", got)
	}
	if got := p.Bits(); got != 2 {
		t.Fatalf("Bits = %d, want 2", got)
	}
}

func TestLFUTieBreaksTowardLRU(t *testing.T) {
	c := oneSet(3, NewLFU(DefaultLFUBits))
	// All three blocks have count 1; 0 is least recent.
	evictions(c, []int{0, 1, 2})
	res := c.Access(blk(3), false)
	if !res.Evicted || res.EvictedTag != 0 {
		t.Fatalf("LFU tie-break evicted %d, want 0", res.EvictedTag)
	}
}

func TestLFUBadBitsPanics(t *testing.T) {
	for _, bits := range []int{0, -1, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLFU(%d) did not panic", bits)
				}
			}()
			NewLFU(bits)
		}()
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	mk := func() *cache.Cache { return oneSet(8, NewRandom(12345)) }
	c1, c2 := mk(), mk()
	seq := make([]int, 5000)
	for i := range seq {
		seq[i] = i % 20
	}
	e1, e2 := evictions(c1, seq), evictions(c2, seq)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed diverged at access %d: %d vs %d", i, e1[i], e2[i])
		}
	}
	if c1.Stats() != c2.Stats() {
		t.Fatal("same seed produced different stats")
	}
}

func TestRandomSpreadsVictims(t *testing.T) {
	p := NewRandom(99)
	g := cache.Geometry{SizeBytes: 8 * 64, LineBytes: 64, Ways: 8}
	p.Attach(g)
	seen := map[int]int{}
	for i := 0; i < 8000; i++ {
		w := p.Victim(0, nil, 0)
		if w < 0 || w >= 8 {
			t.Fatalf("victim %d out of range", w)
		}
		seen[w]++
	}
	for w := 0; w < 8; w++ {
		if seen[w] < 500 { // expectation 1000
			t.Fatalf("way %d chosen only %d times; generator badly skewed", w, seen[w])
		}
	}
}

func TestRandomZeroSeedDefaults(t *testing.T) {
	if NewRandom(0).seed != DefaultRandomSeed {
		t.Fatal("zero seed not replaced with default")
	}
}

// TestPolicyDeterminism replays a pseudo-random trace twice through every
// standard policy and demands identical statistics — the whole simulation
// stack depends on this reproducibility.
func TestPolicyDeterminism(t *testing.T) {
	g := cache.Geometry{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8}
	trace := make([]cache.Addr, 100000)
	rng := uint64(2024)
	for i := range trace {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		trace[i] = cache.Addr(rng % (1 << 22))
	}
	for _, name := range Names() {
		f := MustByName(name)
		run := func() cache.Stats {
			c := cache.New(g, f())
			for _, a := range trace {
				c.Access(a, false)
			}
			return c.Stats()
		}
		if s1, s2 := run(), run(); s1 != s2 {
			t.Errorf("%s: runs diverged: %+v vs %+v", name, s1, s2)
		}
	}
}

// TestPoliciesDifferOnConflictTrace guards against accidentally wiring two
// names to the same behavior: on a mixed trace the five policies should
// produce at least four distinct miss counts.
func TestPoliciesDifferOnConflictTrace(t *testing.T) {
	g := cache.Geometry{SizeBytes: 8 * 64, LineBytes: 64, Ways: 8}
	// Hot block (three touches per round, so its LFU count builds) plus a
	// thrashing loop: separates LFU, MRU, and Random from LRU/FIFO.
	var trace []cache.Addr
	for r := 0; r < 200; r++ {
		trace = append(trace, blk(0), blk(0), blk(0))
		for b := 1; b <= 9; b++ {
			trace = append(trace, blk(b))
		}
	}
	misses := map[string]uint64{}
	for _, name := range Names() {
		c := cache.New(g, MustByName(name)())
		for _, a := range trace {
			c.Access(a, false)
		}
		misses[name] = c.Stats().Misses
	}
	distinct := map[uint64]bool{}
	for _, m := range misses {
		distinct[m] = true
	}
	if len(distinct) < 4 {
		t.Errorf("only %d distinct miss counts across policies: %v", len(distinct), misses)
	}
}
