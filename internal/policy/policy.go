// Package policy provides the standard cache replacement policies the paper
// adapts over: LRU, LFU, FIFO, MRU, and Random. Each implements
// cache.Policy and owns deterministic per-set, per-way metadata.
package policy

import (
	"fmt"

	"repro/internal/cache"
)

// Factory constructs a fresh, unattached policy instance. The adaptive
// scheme needs independent policy instances for the real array and each
// shadow array, so policies are passed around as factories.
type Factory func() cache.Policy

// ByName returns a factory for a named standard policy. Recognized names:
// "LRU", "LFU", "FIFO", "MRU", "Random". LFU uses the paper's 5-bit
// saturating counters; Random uses a fixed default seed.
func ByName(name string) (Factory, error) {
	switch name {
	case "LRU":
		return func() cache.Policy { return NewLRU() }, nil
	case "LFU":
		return func() cache.Policy { return NewLFU(DefaultLFUBits) }, nil
	case "FIFO":
		return func() cache.Policy { return NewFIFO() }, nil
	case "MRU":
		return func() cache.Policy { return NewMRU() }, nil
	case "Random":
		return func() cache.Policy { return NewRandom(DefaultRandomSeed) }, nil
	case "PLRU":
		return func() cache.Policy { return NewPLRU() }, nil
	case "SLRU":
		return func() cache.Policy { return NewSLRU(0) }, nil
	case "Split":
		return func() cache.Policy { return NewSplit() }, nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
}

// MustByName is ByName for statically known names; it panics on error.
func MustByName(name string) Factory {
	f, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Names lists the paper's five standard policy names; ByName additionally
// accepts the extended policies "PLRU", "SLRU", and "Split".
func Names() []string { return []string{"LRU", "LFU", "FIFO", "MRU", "Random"} }

// ExtendedNames lists every policy ByName accepts.
func ExtendedNames() []string {
	return []string{"LRU", "LFU", "FIFO", "MRU", "Random", "PLRU", "SLRU", "Split"}
}

// stamps is the shared recency/insertion bookkeeping used by LRU, MRU and
// FIFO: one monotonically increasing stamp per (set, way).
type stamps struct {
	ways  int
	clock uint64
	at    []uint64 // set*ways + way
}

func (s *stamps) attach(g cache.Geometry) {
	s.ways = g.Ways
	s.clock = 0
	s.at = make([]uint64, g.Sets()*g.Ways)
}

func (s *stamps) stamp(set, way int) {
	s.clock++
	s.at[set*s.ways+way] = s.clock
}

func (s *stamps) oldest(set int) int {
	base := set * s.ways
	best, bestAt := 0, s.at[base]
	for w := 1; w < s.ways; w++ {
		if s.at[base+w] < bestAt {
			best, bestAt = w, s.at[base+w]
		}
	}
	return best
}

func (s *stamps) newest(set int) int {
	base := set * s.ways
	best, bestAt := 0, s.at[base]
	for w := 1; w < s.ways; w++ {
		if s.at[base+w] > bestAt {
			best, bestAt = w, s.at[base+w]
		}
	}
	return best
}
