package policy

import "repro/internal/cache"

// LRU evicts the least recently used line. Hits and fills both refresh
// recency.
type LRU struct {
	cache.NopObserver
	stamps
}

// NewLRU returns a fresh LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (*LRU) Name() string { return "LRU" }

// Attach implements cache.Policy.
func (p *LRU) Attach(g cache.Geometry) { p.attach(g) }

// Touch implements cache.Policy.
func (p *LRU) Touch(set, way int) { p.stamp(set, way) }

// Insert implements cache.Policy.
func (p *LRU) Insert(set, way int, _ uint64) { p.stamp(set, way) }

// Victim implements cache.Policy: the least recently touched way.
func (p *LRU) Victim(set int, _ []cache.Line, _ uint64) int { return p.oldest(set) }

// MRU evicts the most recently used line. Usually a terrible policy, but
// optimal for linear loops slightly larger than the cache — exactly the
// behavior Figure 8 of the paper exploits by adapting FIFO/MRU.
type MRU struct {
	cache.NopObserver
	stamps
}

// NewMRU returns a fresh MRU policy.
func NewMRU() *MRU { return &MRU{} }

// Name implements cache.Policy.
func (*MRU) Name() string { return "MRU" }

// Attach implements cache.Policy.
func (p *MRU) Attach(g cache.Geometry) { p.attach(g) }

// Touch implements cache.Policy.
func (p *MRU) Touch(set, way int) { p.stamp(set, way) }

// Insert implements cache.Policy.
func (p *MRU) Insert(set, way int, _ uint64) { p.stamp(set, way) }

// Victim implements cache.Policy: the most recently touched way.
func (p *MRU) Victim(set int, _ []cache.Line, _ uint64) int { return p.newest(set) }

// FIFO evicts the line that was filled earliest; hits do not refresh.
type FIFO struct {
	cache.NopObserver
	stamps
}

// NewFIFO returns a fresh FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements cache.Policy.
func (*FIFO) Name() string { return "FIFO" }

// Attach implements cache.Policy.
func (p *FIFO) Attach(g cache.Geometry) { p.attach(g) }

// Touch implements cache.Policy: FIFO ignores hits.
func (p *FIFO) Touch(int, int) {}

// Insert implements cache.Policy.
func (p *FIFO) Insert(set, way int, _ uint64) { p.stamp(set, way) }

// Victim implements cache.Policy: the earliest-filled way.
func (p *FIFO) Victim(set int, _ []cache.Line, _ uint64) int { return p.oldest(set) }
