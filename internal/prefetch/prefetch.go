// Package prefetch implements the paper's second future-work direction
// (Section 6): applying the adaptivity machinery to hybrid hardware
// prefetchers, with "hit/miss replaced with useful/not-useful prefetch".
//
// Two classic component prefetchers are provided — next-line and a per-PC
// stride predictor (reference prediction table) — plus Hybrid, which runs
// every component in shadow mode (predictions tracked but not issued),
// scores each by how often its recent predictions were actually demanded,
// and lets only the currently best component issue real prefetches. The
// structure deliberately mirrors the adaptive cache: shadow state per
// component, a sliding usefulness history, and imitation of the winner.
package prefetch

// Prefetcher observes the demand-access stream at cache-block granularity
// and proposes blocks to prefetch.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// Observe sees one demand access (pc of the instruction, accessed
	// block, and whether it missed) and returns blocks to prefetch.
	Observe(pc, block uint64, miss bool) []uint64
	// Reset clears all state.
	Reset()
}

// NextLine prefetches block+1 on every demand miss — the simplest
// sequential prefetcher, ideal for streaming scans.
type NextLine struct {
	Degree int // blocks fetched ahead (default 1)
}

// NewNextLine returns a next-line prefetcher with the given degree.
func NewNextLine(degree int) *NextLine {
	if degree < 1 {
		degree = 1
	}
	return &NextLine{Degree: degree}
}

// Name implements Prefetcher.
func (*NextLine) Name() string { return "NextLine" }

// Reset implements Prefetcher.
func (p *NextLine) Reset() {}

// Observe implements Prefetcher.
func (p *NextLine) Observe(_, block uint64, miss bool) []uint64 {
	if !miss {
		return nil
	}
	out := make([]uint64, p.Degree)
	for d := range out {
		out[d] = block + uint64(d) + 1
	}
	return out
}

// Stride is a per-PC reference prediction table: each load PC's last
// address and stride are tracked; two consecutive equal strides arm the
// entry, and further accesses prefetch last+stride.
type Stride struct {
	entries int
	last    []uint64
	stride  []int64
	state   []uint8 // 0 init, 1 transient, 2 steady
	tags    []uint64
}

// NewStride returns a stride prefetcher with a table of n entries
// (power of two).
func NewStride(n int) *Stride {
	if n <= 0 || n&(n-1) != 0 {
		panic("prefetch: stride table size must be a positive power of two")
	}
	s := &Stride{entries: n}
	s.Reset()
	return s
}

// Name implements Prefetcher.
func (*Stride) Name() string { return "Stride" }

// Reset implements Prefetcher.
func (s *Stride) Reset() {
	s.last = make([]uint64, s.entries)
	s.stride = make([]int64, s.entries)
	s.state = make([]uint8, s.entries)
	s.tags = make([]uint64, s.entries)
}

// Observe implements Prefetcher.
func (s *Stride) Observe(pc, block uint64, _ bool) []uint64 {
	i := (pc >> 2) & uint64(s.entries-1)
	tag := pc >> 2
	if s.tags[i] != tag {
		s.tags[i] = tag
		s.last[i] = block
		s.stride[i] = 0
		s.state[i] = 0
		return nil
	}
	d := int64(block) - int64(s.last[i])
	s.last[i] = block
	switch {
	case s.state[i] == 0:
		s.stride[i] = d
		s.state[i] = 1
	case d == s.stride[i] && d != 0:
		s.state[i] = 2
	case s.state[i] == 2 && d != s.stride[i]:
		s.stride[i] = d
		s.state[i] = 1
	default:
		s.stride[i] = d
	}
	if s.state[i] == 2 {
		return []uint64{uint64(int64(block) + s.stride[i])}
	}
	return nil
}

// Hybrid adapts between component prefetchers by usefulness. Every
// component observes the full stream; each one's recent predictions are
// remembered in a per-component ring, and a demand access that matches a
// remembered prediction scores that component a "useful" event. Only the
// component with the best recent usefulness issues real prefetches.
type Hybrid struct {
	comps   []Prefetcher
	ringLen int
	rings   [][]uint64
	ringPos []int
	// Sliding usefulness window, mirroring the miss-history buffer: a ring
	// of component indices that recently scored useful predictions.
	window    []int8
	windowPos int
	score     []int
}

// NewHybrid builds a hybrid over the given components. ringLen bounds how
// long a prediction stays creditable; windowLen is the usefulness history
// length (both default 32).
func NewHybrid(comps []Prefetcher, ringLen, windowLen int) *Hybrid {
	if len(comps) < 2 {
		panic("prefetch: hybrid needs at least two components")
	}
	if ringLen <= 0 {
		ringLen = 32
	}
	if windowLen <= 0 {
		windowLen = 32
	}
	h := &Hybrid{comps: comps, ringLen: ringLen, window: make([]int8, windowLen)}
	h.Reset()
	return h
}

// Name implements Prefetcher.
func (h *Hybrid) Name() string {
	name := "Hybrid("
	for i, c := range h.comps {
		if i > 0 {
			name += ","
		}
		name += c.Name()
	}
	return name + ")"
}

// Reset implements Prefetcher.
func (h *Hybrid) Reset() {
	h.rings = make([][]uint64, len(h.comps))
	h.ringPos = make([]int, len(h.comps))
	for i := range h.rings {
		h.rings[i] = make([]uint64, h.ringLen)
		h.comps[i].Reset()
	}
	for i := range h.window {
		h.window[i] = -1
	}
	h.windowPos = 0
	h.score = make([]int, len(h.comps))
}

// Active returns the component index that currently issues real
// prefetches.
func (h *Hybrid) Active() int {
	best := 0
	for i := 1; i < len(h.comps); i++ {
		if h.score[i] > h.score[best] {
			best = i
		}
	}
	return best
}

func (h *Hybrid) credit(comp int) {
	if old := h.window[h.windowPos]; old >= 0 {
		h.score[old]--
	}
	h.window[h.windowPos] = int8(comp)
	h.score[comp]++
	h.windowPos = (h.windowPos + 1) % len(h.window)
}

// Observe implements Prefetcher: score components whose shadow predictions
// the demand stream just confirmed, gather everyone's fresh predictions,
// and emit only the active component's.
func (h *Hybrid) Observe(pc, block uint64, miss bool) []uint64 {
	for i := range h.comps {
		for _, b := range h.rings[i] {
			if b != 0 && b == block {
				h.credit(i)
				break
			}
		}
	}
	active := h.Active()
	var out []uint64
	for i, c := range h.comps {
		preds := c.Observe(pc, block, miss)
		for _, b := range preds {
			h.rings[i][h.ringPos[i]] = b
			h.ringPos[i] = (h.ringPos[i] + 1) % h.ringLen
		}
		if i == active {
			out = preds
		}
	}
	return out
}
