package prefetch

import "testing"

func TestNextLineOnMissOnly(t *testing.T) {
	p := NewNextLine(1)
	if got := p.Observe(0x400000, 100, false); got != nil {
		t.Fatalf("prefetch on hit: %v", got)
	}
	got := p.Observe(0x400000, 100, true)
	if len(got) != 1 || got[0] != 101 {
		t.Fatalf("Observe(miss 100) = %v, want [101]", got)
	}
}

func TestNextLineDegree(t *testing.T) {
	p := NewNextLine(3)
	got := p.Observe(0, 10, true)
	if len(got) != 3 || got[0] != 11 || got[2] != 13 {
		t.Fatalf("degree-3 prefetch = %v", got)
	}
	if NewNextLine(0).Degree != 1 {
		t.Fatal("degree not clamped to 1")
	}
}

func TestStrideDetectsSteadyStream(t *testing.T) {
	p := NewStride(256)
	pc := uint64(0x400010)
	// Stride of 7 blocks: entry arms after two equal strides.
	var got []uint64
	for i := 0; i < 5; i++ {
		got = p.Observe(pc, uint64(100+7*i), false)
	}
	if len(got) != 1 || got[0] != 100+7*4+7 {
		t.Fatalf("steady stride prediction = %v, want [%d]", got, 100+7*5)
	}
}

func TestStrideIgnoresIrregular(t *testing.T) {
	p := NewStride(256)
	pc := uint64(0x400010)
	blocks := []uint64{10, 90, 13, 700, 2}
	for _, b := range blocks {
		if got := p.Observe(pc, b, true); got != nil {
			t.Fatalf("irregular stream produced prediction %v", got)
		}
	}
}

func TestStrideZeroStrideNeverArms(t *testing.T) {
	p := NewStride(64)
	for i := 0; i < 10; i++ {
		if got := p.Observe(0x400010, 42, false); got != nil {
			t.Fatalf("zero-stride produced prediction %v", got)
		}
	}
}

func TestStrideSeparatesPCs(t *testing.T) {
	p := NewStride(256)
	// Two PCs with different strides interleaved must both arm.
	var a, b []uint64
	for i := 0; i < 6; i++ {
		a = p.Observe(0x400010, uint64(100+3*i), false)
		b = p.Observe(0x400020, uint64(9000+11*i), false)
	}
	if len(a) != 1 || a[0] != 100+3*5+3 {
		t.Fatalf("pc A prediction %v", a)
	}
	if len(b) != 1 || b[0] != 9000+11*5+11 {
		t.Fatalf("pc B prediction %v", b)
	}
}

func TestStrideTableConflictResets(t *testing.T) {
	p := NewStride(2) // tiny table: aliased PCs fight
	p.Observe(0x400000, 100, false)
	p.Observe(0x400000, 103, false)
	p.Observe(0x400000, 106, false) // armed
	// A conflicting PC (same index, different tag) steals the entry.
	p.Observe(0x400000+8*2, 999, false)
	if got := p.Observe(0x400000, 109, false); got != nil {
		t.Fatalf("stale entry survived conflict: %v", got)
	}
}

func TestStrideBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStride(3) did not panic")
		}
	}()
	NewStride(3)
}

func TestHybridPicksUsefulComponent(t *testing.T) {
	h := NewHybrid([]Prefetcher{NewNextLine(1), NewStride(256)}, 32, 32)
	// Sequential misses: next-line predictions keep coming true; stride
	// also arms (stride 1), so both score, but feed a strided pattern the
	// next-line can't predict and stride can:
	pc := uint64(0x400010)
	for i := 0; i < 200; i++ {
		h.Observe(pc, uint64(100+17*i), true)
	}
	if got := h.Active(); got != 1 {
		t.Fatalf("active component %d after strided stream, want 1 (Stride); scores %v", got, h.score)
	}
	// Now a dense sequential stream from many PCs (defeating the per-PC
	// stride table) swings it back to next-line.
	for i := 0; i < 400; i++ {
		h.Observe(uint64(0x500000+4*i), uint64(1_000_000+i), true)
	}
	if got := h.Active(); got != 0 {
		t.Fatalf("active component %d after sequential stream, want 0 (NextLine); scores %v", got, h.score)
	}
}

func TestHybridEmitsOnlyActivePredictions(t *testing.T) {
	h := NewHybrid([]Prefetcher{NewNextLine(1), NewStride(256)}, 16, 16)
	out := h.Observe(0x400010, 100, true)
	// Initially component 0 (NextLine) is active (tie -> highest score
	// index 0): the output must match NextLine's prediction.
	if len(out) != 1 || out[0] != 101 {
		t.Fatalf("initial output %v, want NextLine's [101]", out)
	}
}

func TestHybridName(t *testing.T) {
	h := NewHybrid([]Prefetcher{NewNextLine(1), NewStride(64)}, 0, 0)
	if got := h.Name(); got != "Hybrid(NextLine,Stride)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestHybridNeedsTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-component hybrid accepted")
		}
	}()
	NewHybrid([]Prefetcher{NewNextLine(1)}, 0, 0)
}

func TestHybridResetClearsScores(t *testing.T) {
	h := NewHybrid([]Prefetcher{NewNextLine(1), NewStride(256)}, 16, 16)
	for i := 0; i < 100; i++ {
		h.Observe(0x400010, uint64(100+17*i), true)
	}
	h.Reset()
	for _, s := range h.score {
		if s != 0 {
			t.Fatalf("scores after Reset: %v", h.score)
		}
	}
}

func TestHybridWindowSlides(t *testing.T) {
	h := NewHybrid([]Prefetcher{NewNextLine(1), NewStride(256)}, 8, 8)
	// Credit component 0 far more than the window can hold; score is
	// bounded by the window length.
	for i := 0; i < 100; i++ {
		h.Observe(0x400000+uint64(8*i), uint64(5000+i), true)
	}
	if h.score[0] > 8 {
		t.Fatalf("score %d exceeds window length 8", h.score[0])
	}
}
