package prefetch_test

import (
	"fmt"

	"repro/internal/prefetch"
)

func ExampleHybrid() {
	h := prefetch.NewHybrid([]prefetch.Prefetcher{
		prefetch.NewNextLine(1),
		prefetch.NewStride(256),
	}, 32, 32)
	// A strided stream (17 blocks apart): next-line predictions never come
	// true, the stride predictor's do, and the hybrid switches to it.
	for i := 0; i < 100; i++ {
		h.Observe(0x400010, uint64(1000+17*i), true)
	}
	fmt.Println("active component:", h.Active(), "=", h.Name())
	// Output: active component: 1 = Hybrid(NextLine,Stride)
}
