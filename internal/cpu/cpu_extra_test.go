package cpu

import (
	"testing"

	"repro/internal/trace"
)

// TestRSLimitsDispatch: a long-latency producer followed by a dependent
// consumer and many independent ops. With a tiny RS, the independents
// behind the stalled consumer cannot all dispatch; a large RS lets them.
func TestRSLimitsDispatch(t *testing.T) {
	m := &fakeMem{loadLat: 2000, storeLat: 1}
	recs := []trace.Record{
		{PC: 0x400000, Kind: trace.Load, Addr: 64, Src1: trace.NoReg, Src2: trace.NoReg, Dst: 1},
		{PC: 0x400004, Kind: trace.IntALU, Src1: 1, Src2: trace.NoReg, Dst: 1}, // waits 2000
	}
	recs = append(recs, alu(200, false)...)

	small, big := DefaultConfig(), DefaultConfig()
	small.RSSize, big.RSSize = 2, 512
	small.ROBSize, big.ROBSize = 512, 512
	rSmall := runRecs(t, small, m, recs)
	rBig := runRecs(t, big, m, recs)
	if rBig.Cycles >= rSmall.Cycles {
		t.Fatalf("large RS not faster: %d vs %d cycles", rBig.Cycles, rSmall.Cycles)
	}
}

// TestFetchWidthBoundsIPC: with ideal everything, IPC cannot exceed the
// fetch width.
func TestFetchWidthBoundsIPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntALUs = 64
	cfg.FetchWidth = 2
	res := runRecs(t, cfg, fastMem(), alu(10000, false))
	if ipc := res.IPC(); ipc > 2.05 {
		t.Fatalf("IPC %.2f exceeds fetch width 2", ipc)
	}
}

// TestRetireWidthBoundsIPC: likewise for the retirement end.
func TestRetireWidthBoundsIPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntALUs = 64
	cfg.RetireWidth = 3
	res := runRecs(t, cfg, fastMem(), alu(9000, false))
	if ipc := res.IPC(); ipc > 3.05 {
		t.Fatalf("IPC %.2f exceeds retire width 3", ipc)
	}
}

// TestMemPortsLimitLoadThroughput: independent L1-hit loads saturate the
// two memory ports at ~2 loads/cycle; quadrupling the ports raises it.
func TestMemPortsLimitLoadThroughput(t *testing.T) {
	recs := make([]trace.Record, 8000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, Kind: trace.Load, Addr: uint64(i % 64 * 64),
			Src1: trace.NoReg, Src2: trace.NoReg, Dst: int8(i % 30)}
	}
	two, eight := DefaultConfig(), DefaultConfig()
	eight.MemPorts = 8
	r2 := runRecs(t, two, fastMem(), recs)
	r8 := runRecs(t, eight, fastMem(), recs)
	if ipc := r2.IPC(); ipc > 2.1 {
		t.Fatalf("2-port load IPC %.2f exceeds port limit", ipc)
	}
	if r8.IPC() <= r2.IPC() {
		t.Fatalf("8 ports no faster: %.2f vs %.2f IPC", r8.IPC(), r2.IPC())
	}
}

// TestStoreBufferDrainOrder: the drain is serial, so total run time of a
// pure store stream is bounded below by stores x drain latency.
func TestStoreBufferDrainOrder(t *testing.T) {
	m := &fakeMem{loadLat: 2, storeLat: 50}
	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, Kind: trace.Store, Addr: uint64(i * 64),
			Src1: 1, Src2: trace.NoReg, Dst: trace.NoReg}
	}
	res := runRecs(t, DefaultConfig(), m, recs)
	if res.Cycles < 100*50 {
		t.Fatalf("run finished in %d cycles; drains (%d) cannot overlap", res.Cycles, 100*50)
	}
	if res.Stores != 100 {
		t.Fatalf("Stores = %d", res.Stores)
	}
}

// TestBranchPredictorIsFreshPerRun: a second Run must not inherit trained
// predictor state.
func TestBranchPredictorIsFreshPerRun(t *testing.T) {
	recs := make([]trace.Record, 500)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400100, Kind: trace.Branch, Taken: true,
			Target: 0x400800, Src1: trace.NoReg, Src2: trace.NoReg, Dst: trace.NoReg}
	}
	c := New(DefaultConfig(), fastMem())
	r1 := c.Run(&trace.SliceSource{Recs: recs})
	src := &trace.SliceSource{Recs: recs}
	r2 := c.Run(src)
	if r1 != r2 {
		t.Fatalf("second Run differs: %+v vs %+v (stale predictor state?)", r1, r2)
	}
	if c.Predictor() == nil || c.Predictor().Branches != 500 {
		t.Fatal("predictor statistics not exposed")
	}
}

// TestCyclesIncludeFinalDrain: outstanding store drains extend the run.
func TestCyclesIncludeFinalDrain(t *testing.T) {
	m := &fakeMem{loadLat: 2, storeLat: 5000}
	recs := []trace.Record{{PC: 0x400000, Kind: trace.Store, Addr: 64,
		Src1: 1, Src2: trace.NoReg, Dst: trace.NoReg}}
	res := runRecs(t, DefaultConfig(), m, recs)
	if res.Cycles < 5000 {
		t.Fatalf("cycles %d do not cover the trailing drain", res.Cycles)
	}
}
