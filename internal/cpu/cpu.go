// Package cpu implements the trace-driven out-of-order processor timing
// model that stands in for the paper's MASE/SimpleScalar simulator. It is a
// ROB-dataflow model: each dynamic instruction's dispatch, issue, and
// retirement cycles are computed from its data dependences and the
// machine's structural limits (fetch width, ROB and RS capacity, functional
// units, memory ports, store-buffer entries, branch mispredictions),
// yielding cycle counts that reproduce the first-order interactions the
// paper's CPI results depend on: exposed L2 miss latency, limited miss
// overlap, and store-buffer back-pressure (paper Section 4.5.2).
package cpu

import (
	"repro/internal/branch"
	"repro/internal/trace"
)

// MemSystem is the timing interface to the cache hierarchy (implemented by
// mem.Hierarchy). Each call performs the functional access and returns its
// latency in cycles as seen by the requester at cycle now.
type MemSystem interface {
	Load(now uint64, addr uint64) uint64
	Store(now uint64, addr uint64) uint64
	Ifetch(now uint64, pc uint64) uint64
	L1Latency() uint64
}

// Config describes the processor core (paper Table 1).
type Config struct {
	FetchWidth  int // instructions fetched per cycle (8)
	RetireWidth int // instructions retired per cycle (8)
	ROBSize     int // reorder buffer entries (64)
	RSSize      int // reservation station entries (32)

	IntALUs    int // 4
	IntMulDivs int // 4
	FPALUs     int // 4
	FPMulDivs  int // 4
	MemPorts   int // 2

	LatIntALU uint64 // 1
	LatIntMul uint64 // 8 (IMULT/IDIV)
	LatIntDiv uint64 // 8
	LatFPAdd  uint64 // 4
	LatFPMul  uint64 // 4
	LatFPDiv  uint64 // 16

	StoreBuffer       int    // store buffer entries (4)
	MispredictPenalty uint64 // front-end refill cycles after a mispredict

	Branch branch.Config
}

// DefaultConfig matches paper Table 1.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		RetireWidth: 8,
		ROBSize:     64,
		RSSize:      32,

		IntALUs:    4,
		IntMulDivs: 4,
		FPALUs:     4,
		FPMulDivs:  4,
		MemPorts:   2,

		LatIntALU: 1,
		LatIntMul: 8,
		LatIntDiv: 8,
		LatFPAdd:  4,
		LatFPMul:  4,
		LatFPDiv:  16,

		StoreBuffer:       4,
		MispredictPenalty: 12,

		Branch: branch.DefaultConfig(),
	}
}

// Result summarizes one simulation.
type Result struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	StoreStalls  uint64 // retirements delayed by a full store buffer
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// fuPool models a group of identical functional units. Pipelined units are
// busy for one cycle per operation; unpipelined ones (divides) for their
// full latency.
type fuPool struct {
	free []uint64
}

func newPool(n int) *fuPool { return &fuPool{free: make([]uint64, n)} }

// acquire returns the earliest cycle at or after ready when a unit is
// available and books it for occ cycles.
func (p *fuPool) acquire(ready, occ uint64) uint64 {
	free := p.free
	best, bv := 0, free[0]
	for i := 1; i < len(free); i++ {
		if v := free[i]; v < bv {
			best, bv = i, v
		}
	}
	start := ready
	if bv > start {
		start = bv
	}
	free[best] = start + occ
	return start
}

// CPU runs traces against a memory system. Construct with New; a CPU is
// single-use per Run (Run resets all internal state).
type CPU struct {
	cfg Config
	bp  *branch.Predictor
	mem MemSystem
}

// New builds a CPU model.
func New(cfg Config, mem MemSystem) *CPU {
	if cfg.FetchWidth <= 0 || cfg.RetireWidth <= 0 || cfg.ROBSize <= 0 ||
		cfg.RSSize <= 0 || cfg.MemPorts <= 0 || cfg.StoreBuffer <= 0 {
		panic("cpu: all widths and capacities must be positive")
	}
	if mem == nil {
		panic("cpu: nil memory system")
	}
	return &CPU{cfg: cfg, mem: mem}
}

// Predictor returns the branch predictor of the last Run (for statistics).
func (c *CPU) Predictor() *branch.Predictor { return c.bp }

// Run simulates the source to completion and returns timing results.
func (c *CPU) Run(src trace.Source) Result {
	cfg := c.cfg
	c.bp = branch.New(cfg.Branch)

	intALU := newPool(cfg.IntALUs)
	intMul := newPool(cfg.IntMulDivs)
	fpALU := newPool(cfg.FPALUs)
	fpMul := newPool(cfg.FPMulDivs)
	memPorts := newPool(cfg.MemPorts)

	var (
		res Result

		regReady [trace.NumRegs]uint64

		rob    = make([]uint64, cfg.ROBSize) // retire time per slot
		rs     = make([]uint64, cfg.RSSize)  // issue time per slot
		sbFree = make([]uint64, cfg.StoreBuffer)

		fetchCycle   uint64 // cycle the current fetch group arrives
		fetchInGroup int
		fetchBlock   = ^uint64(0) // current I-cache line
		redirect     uint64       // earliest fetch after last mispredict

		lastRetire uint64
		retireRing = make([]uint64, cfg.RetireWidth)

		lastDrain uint64 // store buffer drains serially

		rec trace.Record
		i   uint64

		// Ring cursors replace the per-instruction i%size modulo chain —
		// five 64-bit divisions per instruction dominate an otherwise
		// arithmetic-only loop.
		robI, rsI, retI, sbI int
	)

	l1 := c.mem.L1Latency()

	for src.Next(&rec) {
		// --- Fetch: width-limited, I-cache misses stall the front end.
		if fetchInGroup == cfg.FetchWidth {
			fetchInGroup = 0
			fetchCycle++
		}
		if fetchCycle < redirect {
			fetchCycle = redirect
			fetchInGroup = 0
		}
		if blockOf(rec.PC) != fetchBlock {
			fetchBlock = blockOf(rec.PC)
			if lat := c.mem.Ifetch(fetchCycle, rec.PC); lat > l1 {
				fetchCycle += lat - l1
				fetchInGroup = 0
			}
		}
		fetchInGroup++

		// --- Dispatch: needs a free ROB entry and RS slot.
		dispatch := fetchCycle
		if t := rob[robI]; t > dispatch {
			dispatch = t // ROB full: wait for the oldest to retire
		}
		if t := rs[rsI]; t > dispatch {
			dispatch = t // RS full: wait for an older instruction to issue
		}

		// --- Issue: operands plus a functional unit.
		ready := dispatch + 1
		if rec.Src1 != trace.NoReg && regReady[rec.Src1] > ready {
			ready = regReady[rec.Src1]
		}
		if rec.Src2 != trace.NoReg && regReady[rec.Src2] > ready {
			ready = regReady[rec.Src2]
		}

		var issue, complete uint64
		switch rec.Kind {
		case trace.IntALU:
			issue = intALU.acquire(ready, 1)
			complete = issue + cfg.LatIntALU
		case trace.IntMul:
			issue = intMul.acquire(ready, 1)
			complete = issue + cfg.LatIntMul
		case trace.IntDiv:
			issue = intMul.acquire(ready, cfg.LatIntDiv) // unpipelined
			complete = issue + cfg.LatIntDiv
		case trace.FPAdd:
			issue = fpALU.acquire(ready, 1)
			complete = issue + cfg.LatFPAdd
		case trace.FPMul:
			issue = fpMul.acquire(ready, 1)
			complete = issue + cfg.LatFPMul
		case trace.FPDiv:
			issue = fpMul.acquire(ready, cfg.LatFPDiv) // unpipelined
			complete = issue + cfg.LatFPDiv
		case trace.Load:
			issue = memPorts.acquire(ready, 1)
			complete = issue + c.mem.Load(issue, rec.Addr)
			res.Loads++
		case trace.Store:
			// Address generation and store-queue entry; the data write
			// happens post-retirement via the store buffer.
			issue = memPorts.acquire(ready, 1)
			complete = issue + 1
			res.Stores++
		case trace.Branch:
			issue = intALU.acquire(ready, 1)
			complete = issue + cfg.LatIntALU
			res.Branches++
			pred := c.bp.Predict(rec.PC)
			if c.bp.Update(rec.PC, pred, rec.Taken, rec.Target) {
				res.Mispredicts++
				if r := complete + cfg.MispredictPenalty; r > redirect {
					redirect = r
				}
			}
		default:
			issue = intALU.acquire(ready, 1)
			complete = issue + 1
		}

		rs[rsI] = issue
		if rec.Dst != trace.NoReg {
			regReady[rec.Dst] = complete
		}

		// --- Retire: in order, width-limited; stores additionally need a
		// free store-buffer entry.
		retire := complete
		if lastRetire > retire {
			retire = lastRetire
		}
		if t := retireRing[retI] + 1; t > retire {
			retire = t
		}
		if rec.Kind == trace.Store {
			if free := sbFree[sbI]; free > retire {
				retire = free
				res.StoreStalls++
			}
			drainStart := retire
			if lastDrain > drainStart {
				drainStart = lastDrain
			}
			drainDone := drainStart + c.mem.Store(drainStart, rec.Addr)
			lastDrain = drainDone
			sbFree[sbI] = drainDone
			if sbI++; sbI == cfg.StoreBuffer {
				sbI = 0
			}
		}
		retireRing[retI] = retire
		rob[robI] = retire
		lastRetire = retire

		i++
		if robI++; robI == cfg.ROBSize {
			robI = 0
		}
		if rsI++; rsI == cfg.RSSize {
			rsI = 0
		}
		if retI++; retI == cfg.RetireWidth {
			retI = 0
		}
	}

	res.Instructions = i
	res.Cycles = lastRetire
	if lastDrain > res.Cycles {
		res.Cycles = lastDrain // wait for the store buffer to empty
	}
	return res
}

// blockOf groups PCs into 64-byte I-cache lines for front-end accounting.
func blockOf(pc uint64) uint64 { return pc >> 6 }
