package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// fakeMem returns fixed latencies and counts calls; it isolates core
// timing behavior from the cache hierarchy.
type fakeMem struct {
	loadLat, storeLat, ifetchLat uint64
	loads, stores, ifetches      int
}

func (m *fakeMem) Load(_ uint64, _ uint64) uint64  { m.loads++; return m.loadLat }
func (m *fakeMem) Store(_ uint64, _ uint64) uint64 { m.stores++; return m.storeLat }
func (m *fakeMem) Ifetch(_ uint64, _ uint64) uint64 {
	m.ifetches++
	if m.ifetchLat == 0 {
		return 2
	}
	return m.ifetchLat
}
func (m *fakeMem) L1Latency() uint64 { return 2 }

func fastMem() *fakeMem { return &fakeMem{loadLat: 2, storeLat: 1} }

// alu builds n IntALU instructions; dependent chains share registers.
func alu(n int, dependent bool) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		r := trace.Record{PC: 0x400000 + uint64(4*i), Kind: trace.IntALU,
			Src1: trace.NoReg, Src2: trace.NoReg, Dst: trace.NoReg}
		if dependent {
			r.Src1, r.Dst = 1, 1
		} else {
			r.Dst = int8(2 + i%32)
		}
		recs[i] = r
	}
	return recs
}

func runRecs(t *testing.T, cfg Config, m MemSystem, recs []trace.Record) Result {
	t.Helper()
	c := New(cfg, m)
	return c.Run(&trace.SliceSource{Recs: recs})
}

func TestDependentChainSerializes(t *testing.T) {
	res := runRecs(t, DefaultConfig(), fastMem(), alu(1000, true))
	if res.Instructions != 1000 {
		t.Fatalf("Instructions = %d", res.Instructions)
	}
	// One-cycle ALU ops in a dependence chain: ~1 cycle each.
	if cpi := res.CPI(); cpi < 0.95 || cpi > 1.3 {
		t.Fatalf("dependent-chain CPI = %.2f, want ~1", cpi)
	}
}

func TestIndependentALUsBoundByUnits(t *testing.T) {
	cfg := DefaultConfig()
	res := runRecs(t, cfg, fastMem(), alu(4000, false))
	// 4 integer ALUs: IPC should approach 4.
	if ipc := res.IPC(); ipc < 3.0 || ipc > 4.5 {
		t.Fatalf("independent-ALU IPC = %.2f, want ~4", ipc)
	}
	// Halving the ALUs should roughly halve throughput.
	cfg.IntALUs = 2
	res2 := runRecs(t, cfg, fastMem(), alu(4000, false))
	if ipc := res2.IPC(); ipc > 2.5 {
		t.Fatalf("2-ALU IPC = %.2f, want ~2", ipc)
	}
}

func TestDependentLoadsExposeLatency(t *testing.T) {
	m := &fakeMem{loadLat: 100, storeLat: 1}
	recs := make([]trace.Record, 200)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, Kind: trace.Load, Addr: uint64(i * 64),
			Src1: 1, Src2: trace.NoReg, Dst: 1} // pointer chase
	}
	res := runRecs(t, DefaultConfig(), m, recs)
	// Each load waits for the previous: >= 100 cycles each.
	if cpi := res.CPI(); cpi < 100 {
		t.Fatalf("pointer-chase CPI = %.1f, want >= 100", cpi)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	m := &fakeMem{loadLat: 100, storeLat: 1}
	recs := make([]trace.Record, 2000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, Kind: trace.Load, Addr: uint64(i * 64),
			Src1: trace.NoReg, Src2: trace.NoReg, Dst: int8(i % 32)}
	}
	res := runRecs(t, DefaultConfig(), m, recs)
	// Two memory ports, no dependences: far better than serialized.
	if cpi := res.CPI(); cpi > 10 {
		t.Fatalf("independent-load CPI = %.1f, want small (MLP)", cpi)
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// A very slow load, then many independent ALUs. With a 64-entry ROB
	// the ALUs beyond the window must wait for the load to retire.
	mSlow := &fakeMem{loadLat: 10000, storeLat: 1}
	recs := []trace.Record{{PC: 0x400000, Kind: trace.Load, Addr: 64,
		Src1: trace.NoReg, Src2: trace.NoReg, Dst: 1}}
	recs = append(recs, alu(1000, false)...)

	small, big := DefaultConfig(), DefaultConfig()
	small.ROBSize, big.ROBSize = 64, 4096
	resSmall := runRecs(t, small, mSlow, recs)
	resBig := runRecs(t, big, mSlow, recs)
	if resBig.Cycles >= resSmall.Cycles {
		t.Fatalf("bigger ROB not faster: %d vs %d cycles", resBig.Cycles, resSmall.Cycles)
	}
	// The small-ROB run is dominated by the load latency plus the post-
	// window ALUs; it must take at least the load's 10000 cycles.
	if resSmall.Cycles < 10000 {
		t.Fatalf("small-ROB run finished in %d cycles, impossible", resSmall.Cycles)
	}
}

func TestStoreBufferBackPressure(t *testing.T) {
	// Stores that miss (slow drain) with a tiny store buffer stall
	// retirement; enlarging the buffer relieves it (paper Figure 10).
	// Bursts of 4 missing stores followed by a long stretch of compute:
	// with a 1-entry buffer each burst serializes behind its drains and
	// the in-order retire + finite ROB stall the compute; a large buffer
	// absorbs the burst and hides the drains under the compute.
	m := &fakeMem{loadLat: 2, storeLat: 200}
	var recs []trace.Record
	for round := 0; round < 20; round++ {
		for s := 0; s < 4; s++ {
			recs = append(recs, trace.Record{PC: 0x400000, Kind: trace.Store,
				Addr: uint64((round*4 + s) * 64), Src1: 1, Src2: trace.NoReg, Dst: trace.NoReg})
		}
		recs = append(recs, alu(8000, false)...)
	}
	cfgSmall, cfgBig := DefaultConfig(), DefaultConfig()
	cfgSmall.StoreBuffer, cfgBig.StoreBuffer = 1, 64
	resSmall := runRecs(t, cfgSmall, m, recs)
	resBig := runRecs(t, cfgBig, m, recs)
	if resSmall.StoreStalls == 0 {
		t.Fatal("1-entry store buffer produced no stalls")
	}
	if resBig.StoreStalls >= resSmall.StoreStalls {
		t.Fatalf("stalls: big %d >= small %d", resBig.StoreStalls, resSmall.StoreStalls)
	}
	if float64(resSmall.Cycles) < 1.10*float64(resBig.Cycles) {
		t.Fatalf("small buffer barely slower: %d vs %d cycles", resSmall.Cycles, resBig.Cycles)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mkBranches := func(random bool) []trace.Record {
		recs := make([]trace.Record, 4000)
		for i := range recs {
			taken := true
			if random {
				taken = rng.Intn(2) == 0
			}
			recs[i] = trace.Record{PC: 0x400100, Kind: trace.Branch,
				Taken: taken, Target: 0x400800,
				Src1: trace.NoReg, Src2: trace.NoReg, Dst: trace.NoReg}
		}
		return recs
	}
	biased := runRecs(t, DefaultConfig(), fastMem(), mkBranches(false))
	random := runRecs(t, DefaultConfig(), fastMem(), mkBranches(true))
	if biased.Mispredicts >= random.Mispredicts {
		t.Fatalf("mispredicts: biased %d >= random %d", biased.Mispredicts, random.Mispredicts)
	}
	if biased.CPI() >= random.CPI() {
		t.Fatalf("CPI: biased %.2f >= random %.2f", biased.CPI(), random.CPI())
	}
	if random.Branches != 4000 {
		t.Fatalf("Branches = %d", random.Branches)
	}
}

func TestIfetchMissesStallFrontEnd(t *testing.T) {
	// Jump across many I-cache lines with a slow ifetch path.
	slow := &fakeMem{loadLat: 2, storeLat: 1, ifetchLat: 50}
	fast := fastMem()
	recs := make([]trace.Record, 2000)
	for i := range recs {
		recs[i] = trace.Record{PC: uint64(0x400000 + i*64), Kind: trace.IntALU,
			Src1: trace.NoReg, Src2: trace.NoReg, Dst: trace.NoReg}
	}
	resSlow := runRecs(t, DefaultConfig(), slow, recs)
	resFast := runRecs(t, DefaultConfig(), fast, recs)
	if resSlow.Cycles <= resFast.Cycles*10 {
		t.Fatalf("slow ifetch barely visible: %d vs %d cycles", resSlow.Cycles, resFast.Cycles)
	}
}

func TestUnpipelinedDivides(t *testing.T) {
	// Independent FP divides on 4 unpipelined units: throughput is bounded
	// by latency/units = 16/4 = 4 cycles per divide.
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, Kind: trace.FPDiv,
			Src1: trace.NoReg, Src2: trace.NoReg, Dst: int8(i % 32)}
	}
	res := runRecs(t, DefaultConfig(), fastMem(), recs)
	if cpi := res.CPI(); cpi < 3.5 {
		t.Fatalf("FPDiv CPI = %.2f, want >= ~4 (unpipelined)", cpi)
	}
	// FP adds are pipelined: much higher throughput.
	for i := range recs {
		recs[i].Kind = trace.FPAdd
	}
	res2 := runRecs(t, DefaultConfig(), fastMem(), recs)
	if res2.CPI() >= res.CPI() {
		t.Fatalf("pipelined FPAdd CPI %.2f not below FPDiv %.2f", res2.CPI(), res.CPI())
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{Instructions: 1000, Cycles: 2000}
	if r.CPI() != 2 || r.IPC() != 0.5 {
		t.Fatalf("CPI %.1f IPC %.2f", r.CPI(), r.IPC())
	}
	var zero Result
	if zero.CPI() != 0 || zero.IPC() != 0 {
		t.Fatal("zero Result metrics not zero")
	}
}

func TestEmptyTrace(t *testing.T) {
	res := runRecs(t, DefaultConfig(), fastMem(), nil)
	if res.Instructions != 0 || res.Cycles != 0 {
		t.Fatalf("empty trace result %+v", res)
	}
}

func TestBadConfigPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero ROB accepted")
		}
	}()
	New(cfg, fastMem())
}

func TestNilMemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil mem accepted")
		}
	}()
	New(DefaultConfig(), nil)
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := make([]trace.Record, 20000)
	for i := range recs {
		k := trace.Kind(rng.Intn(9))
		recs[i] = trace.Record{PC: uint64(0x400000 + (i%512)*4), Kind: k,
			Src1: int8(rng.Intn(32)), Src2: trace.NoReg, Dst: int8(rng.Intn(32))}
		if k.IsMem() {
			recs[i].Addr = uint64(rng.Intn(1 << 20))
		}
		if k == trace.Branch {
			recs[i].Taken = rng.Intn(2) == 0
			recs[i].Target = 0x400000
			recs[i].Dst = trace.NoReg
		}
	}
	r1 := runRecs(t, DefaultConfig(), fastMem(), recs)
	r2 := runRecs(t, DefaultConfig(), fastMem(), recs)
	if r1 != r2 {
		t.Fatalf("runs diverged: %+v vs %+v", r1, r2)
	}
}
