// Package stats provides the small metric helpers the evaluation uses.
// Following the paper (Section 4.2, footnote 7), averages over benchmarks
// are plain arithmetic means of linear cost metrics (MPKI, CPI), so that
// the mean is proportional to total execution cost.
package stats

// MPKI converts a miss count to misses per thousand instructions.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(misses) / float64(instructions)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// PercentChange returns 100*(to-from)/from: negative when `to` improved
// (shrank) relative to `from`.
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (to - from) / from
}

// PercentReduction returns 100*(from-to)/from: positive when `to` improved
// (shrank) — the paper's "19% reduction in misses" convention.
func PercentReduction(from, to float64) float64 {
	return -PercentChange(from, to)
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
