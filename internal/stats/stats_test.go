package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMPKI(t *testing.T) {
	if got := MPKI(50, 10000); got != 5 {
		t.Errorf("MPKI(50, 10000) = %v, want 5", got)
	}
	if got := MPKI(1, 0); got != 0 {
		t.Errorf("MPKI with zero instructions = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestPercentChangeAndReduction(t *testing.T) {
	if got := PercentChange(10, 12); got != 20 {
		t.Errorf("PercentChange(10,12) = %v, want 20", got)
	}
	if got := PercentReduction(10, 8); got != 20 {
		t.Errorf("PercentReduction(10,8) = %v, want 20", got)
	}
	if got := PercentChange(0, 5); got != 0 {
		t.Errorf("PercentChange from zero = %v, want 0", got)
	}
	// The two are always negatives of each other.
	err := quick.Check(func(from, to float64) bool {
		if math.IsNaN(from) || math.IsNaN(to) || math.IsInf(from, 0) || math.IsInf(to, 0) {
			return true
		}
		return PercentChange(from, to) == -PercentReduction(from, to)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty Max/Min not zero")
	}
}
