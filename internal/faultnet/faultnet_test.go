package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"
)

// TestRNGDeterminism: the fault stream is a pure function of the seed.
func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := newRNG(43)
	same := 0
	a = newRNG(42)
	for i := 0; i < 64; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestChanceBounds(t *testing.T) {
	r := newRNG(1)
	for i := 0; i < 100; i++ {
		if r.chance(0) {
			t.Fatal("chance(0) fired")
		}
		if !r.chance(1) {
			t.Fatal("chance(1) did not fire")
		}
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.chance(0.3) {
			hits++
		}
	}
	if hits < 2500 || hits > 3500 {
		t.Fatalf("chance(0.3) fired %d/10000 times", hits)
	}
}

// TestTempErrorIsTemporaryNetError: the injected accept failure must look
// like EMFILE/ECONNABORTED to a retrying accept loop.
func TestTempErrorIsTemporaryNetError(t *testing.T) {
	var err error = &TempError{}
	ne, ok := err.(net.Error)
	if !ok {
		t.Fatal("TempError is not a net.Error")
	}
	if !ne.Temporary() || ne.Timeout() {
		t.Fatalf("TempError Temporary()=%v Timeout()=%v", ne.Temporary(), ne.Timeout())
	}
}

// TestListenerAcceptInjection: rate 1 always errors, rate 0 passes through
// real connections untouched, and the injections are counted.
func TestListenerAcceptInjection(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	ln := Wrap(base, Config{Seed: 7, AcceptErrorRate: 1})
	for i := 0; i < 3; i++ {
		if _, err := ln.Accept(); err == nil {
			t.Fatal("Accept succeeded at rate 1")
		} else if ne, ok := err.(net.Error); !ok || !ne.Temporary() {
			t.Fatalf("injected error not temporary: %v", err)
		}
	}
	if got := ln.Stats().AcceptErrors; got != 3 {
		t.Fatalf("AcceptErrors = %d, want 3", got)
	}

	clean := Wrap(base, Config{Seed: 7})
	go func() {
		c, err := net.Dial("tcp", base.Addr().String())
		if err == nil {
			c.Write([]byte("ping"))
			c.Close()
		}
	}()
	conn, err := clean.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("passthrough read %q, %v", buf, err)
	}
}

// pipePair builds a loopback TCP pair so fault conns behave like real ones
// (net.Pipe lacks TCPConn semantics such as linger resets).
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	return client, server
}

// TestConnPartialIO: with PartialRate 1 the data still arrives intact,
// just in smaller pieces — faults must never corrupt payload bytes.
func TestConnPartialIO(t *testing.T) {
	client, server := pipePair(t)
	defer client.Close()
	defer server.Close()

	fc := WrapConn(client, Config{Seed: 3, PartialRate: 1})
	payload := bytes.Repeat([]byte("adaptive-caches!"), 64)
	go func() {
		fc.Write(payload)
	}()
	got := make([]byte, len(payload))
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by partial writes")
	}

	fs := WrapConn(server, Config{Seed: 4, PartialRate: 1})
	go client.Write(payload)
	got = got[:0]
	buf := make([]byte, 256)
	for len(got) < len(payload) {
		fs.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := fs.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n > 1 {
			t.Fatalf("partial read returned %d bytes", n)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by partial reads")
	}
}

// TestConnReset: rate 1 resets on the first operation and the peer
// observes the connection dying.
func TestConnReset(t *testing.T) {
	client, server := pipePair(t)
	defer client.Close()
	defer server.Close()

	fc := WrapConn(client, Config{Seed: 5, ResetRate: 1})
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write survived ResetRate 1")
	} else if re := new(ResetError); !errors.As(err, &re) {
		t.Fatalf("want ResetError, got %v", err)
	}
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

// TestProxyPassthroughAndClose: a fault-free proxy relays bytes intact
// both ways, and Close tears everything down without leaking goroutines.
func TestProxyPassthroughAndClose(t *testing.T) {
	// Echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()

	before := runtime.NumGoroutine()
	proxy, err := NewProxy("127.0.0.1:0", ln.Addr().String(), Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the proxy and back")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo through proxy = %q", got)
	}
	conn.Close()

	proxy.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines after proxy close: %d, baseline %d", n, before)
	}
	if _, err := net.DialTimeout("tcp", proxy.Addr(), 500*time.Millisecond); err == nil {
		t.Error("proxy still accepting after Close")
	}
}

// TestProxyInjectsResets: with a high reset rate, client traffic through
// the proxy eventually observes a connection failure.
func TestProxyInjectsResets(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()

	proxy, err := NewProxy("127.0.0.1:0", ln.Addr().String(), Config{Seed: 13, ResetRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sawFailure := false
	for i := 0; i < 20 && !sawFailure; i++ {
		conn, err := net.Dial("tcp", proxy.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		for j := 0; j < 10; j++ {
			if _, err := conn.Write([]byte("ping")); err != nil {
				sawFailure = true
				break
			}
			if _, err := io.ReadFull(conn, make([]byte, 4)); err != nil {
				sawFailure = true
				break
			}
		}
		conn.Close()
	}
	if !sawFailure {
		t.Fatal("no client-visible failure despite ResetRate 0.5")
	}
	if proxy.Stats().Resets == 0 {
		t.Fatal("proxy counted no resets")
	}
}
