// Package faultnet wraps net.Listener and net.Conn with deterministic,
// seeded fault injection: transient accept failures, connection resets,
// added latency, partial reads/writes, and byte stalls. It exists so the
// serving stack's robustness claims can be exercised by tests and by the
// cmd/kvchaos soak driver instead of waiting for production to exercise
// them first.
//
// Determinism: every fault decision is drawn from a splitmix64 stream
// seeded by Config.Seed (each accepted connection derives its own
// substream), so a given seed produces the same fault mix run to run.
// Goroutine scheduling still interleaves connections differently, so the
// guarantee is a reproducible fault workload, not a bit-identical timeline.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets per-event fault probabilities (all in [0, 1]; zero disables
// the fault class). "Per event" means per Accept call for AcceptErrorRate
// and per Read/Write call for the rest.
type Config struct {
	Seed uint64 // fault-stream seed; same seed, same draw sequence

	AcceptErrorRate float64 // Accept returns a temporary net.Error instead of accepting

	ResetRate float64 // connection is hard-closed (RST where the transport allows)

	DelayRate float64       // sleep Delay before the I/O proceeds
	Delay     time.Duration // latency injected by DelayRate events

	PartialRate float64 // reads are truncated to 1 byte; writes are split in two

	StallRate float64       // sleep Stall mid-write (byte-stall / slow-loris shape)
	Stall     time.Duration // stall length for StallRate events
}

// Stats counts injected faults since the wrapper was created.
type Stats struct {
	AcceptErrors  uint64
	Resets        uint64
	Delays        uint64
	PartialReads  uint64
	PartialWrites uint64
	Stalls        uint64
}

// Total sums every injected fault class.
func (s Stats) Total() uint64 {
	return s.AcceptErrors + s.Resets + s.Delays + s.PartialReads + s.PartialWrites + s.Stalls
}

// counters is the shared atomic backing for Stats.
type counters struct {
	acceptErrors, resets, delays atomic.Uint64
	partialReads, partialWrites  atomic.Uint64
	stalls                       atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		AcceptErrors:  c.acceptErrors.Load(),
		Resets:        c.resets.Load(),
		Delays:        c.delays.Load(),
		PartialReads:  c.partialReads.Load(),
		PartialWrites: c.partialWrites.Load(),
		Stalls:        c.stalls.Load(),
	}
}

// rng is a splitmix64 stream: tiny, seedable, and good enough for fault
// scheduling (quality requirements here are "uncorrelated coin flips").
type rng struct{ state uint64 }

func newRNG(seed uint64) rng { return rng{state: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one coin with probability p.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}

// TempError is an injected transient Accept failure. It implements
// net.Error with Temporary() == true, the shape EMFILE/ECONNABORTED take
// in the standard library, so a correct accept loop retries it and a
// broken one dies — which is exactly what the harness wants to detect.
type TempError struct{}

func (*TempError) Error() string   { return "faultnet: injected temporary accept error" }
func (*TempError) Timeout() bool   { return false }
func (*TempError) Temporary() bool { return true }

// ResetError is returned by a Conn whose fault stream chose to reset it.
type ResetError struct{}

func (*ResetError) Error() string   { return "faultnet: injected connection reset" }
func (*ResetError) Timeout() bool   { return false }
func (*ResetError) Temporary() bool { return false }

// Listener wraps an inner listener: Accept sometimes fails with a
// TempError, and accepted connections are wrapped with the same Config's
// connection-level faults.
type Listener struct {
	net.Listener
	cfg Config

	mu     sync.Mutex
	rng    rng
	nconns uint64

	ct counters
}

// Wrap builds a fault-injecting listener around ln.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, rng: newRNG(cfg.Seed)}
}

// Accept either injects a temporary error or accepts and wraps a
// connection with its own derived fault stream.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	inject := l.rng.chance(l.cfg.AcceptErrorRate)
	var seed uint64
	if !inject {
		l.nconns++
		seed = l.cfg.Seed ^ l.nconns*0xbf58476d1ce4e5b9
	}
	l.mu.Unlock()
	if inject {
		l.ct.acceptErrors.Add(1)
		return nil, &TempError{}
	}
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newConn(conn, l.cfg, seed, &l.ct), nil
}

// Stats snapshots the fault counters (listener plus its connections).
func (l *Listener) Stats() Stats { return l.ct.snapshot() }

// Conn wraps a net.Conn with per-call fault injection. Reads and writes
// may be delayed, truncated, stalled, or turned into a hard reset.
type Conn struct {
	net.Conn
	cfg Config
	ct  *counters

	mu  sync.Mutex // guards rng: Read and Write may race (proxy pipes)
	rng rng
}

// WrapConn builds a standalone fault-injecting connection (outside any
// Listener); its counters are private to the connection.
func WrapConn(conn net.Conn, cfg Config) *Conn {
	return newConn(conn, cfg, cfg.Seed, &counters{})
}

func newConn(conn net.Conn, cfg Config, seed uint64, ct *counters) *Conn {
	return &Conn{Conn: conn, cfg: cfg, ct: ct, rng: newRNG(seed)}
}

// decision is one I/O call's fault draw.
type decision struct {
	delay   bool
	reset   bool
	partial bool
	stall   bool
}

func (c *Conn) draw() decision {
	c.mu.Lock()
	d := decision{
		delay:   c.rng.chance(c.cfg.DelayRate),
		reset:   c.rng.chance(c.cfg.ResetRate),
		partial: c.rng.chance(c.cfg.PartialRate),
		stall:   c.rng.chance(c.cfg.StallRate),
	}
	c.mu.Unlock()
	return d
}

// reset hard-closes the connection; on TCP, linger 0 turns the close into
// an RST so the peer sees a genuine reset rather than a clean FIN.
func (c *Conn) reset() {
	c.ct.resets.Add(1)
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

func (c *Conn) Read(p []byte) (int, error) {
	d := c.draw()
	if d.delay && c.cfg.Delay > 0 {
		c.ct.delays.Add(1)
		time.Sleep(c.cfg.Delay)
	}
	if d.reset {
		c.reset()
		return 0, &ResetError{}
	}
	if d.partial && len(p) > 1 {
		c.ct.partialReads.Add(1)
		p = p[:1]
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	d := c.draw()
	if d.delay && c.cfg.Delay > 0 {
		c.ct.delays.Add(1)
		time.Sleep(c.cfg.Delay)
	}
	if d.reset {
		c.reset()
		return 0, &ResetError{}
	}
	stall := func() {
		if d.stall && c.cfg.Stall > 0 {
			c.ct.stalls.Add(1)
			time.Sleep(c.cfg.Stall)
		}
	}
	if d.partial && len(p) > 1 {
		c.ct.partialWrites.Add(1)
		half := len(p) / 2
		n, err := c.Conn.Write(p[:half])
		if err != nil {
			return n, err
		}
		stall() // byte-stall between the halves: the slow-loris shape
		m, err := c.Conn.Write(p[half:])
		return n + m, err
	}
	stall()
	return c.Conn.Write(p)
}
