package faultnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP relay that forwards every accepted connection to a
// target address, injecting Config's connection faults on the
// client-facing side. Putting it between a server and its clients
// perturbs the wire (resets, stalls, partial segments, latency) without
// touching either endpoint — the topology cmd/kvchaos soaks.
type Proxy struct {
	ln     net.Listener
	target string
	cfg    Config

	mu     sync.Mutex
	rng    rng
	nconns uint64
	closed bool
	conns  map[net.Conn]struct{}

	wg sync.WaitGroup
	ct counters
}

// NewProxy listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// starts relaying to target immediately.
func NewProxy(addr, target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		cfg:    cfg,
		rng:    newRNG(cfg.Seed ^ 0x94d049bb133111eb),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the proxy's listen address for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the faults injected on proxied connections.
func (p *Proxy) Stats() Stats { return p.ct.snapshot() }

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return // listener closed
		}
		upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			upstream.Close()
			return
		}
		p.nconns++
		seed := p.cfg.Seed ^ p.nconns*0x2545f4914f6cdd1d
		faulty := newConn(client, p.cfg, seed, &p.ct)
		p.conns[faulty] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		go p.pipe(faulty, upstream)
		go p.pipe(upstream, faulty)
	}
}

// pipe copies one direction; when either direction dies (fault, close,
// EOF) both sides are torn down so the sibling pipe unblocks.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src)
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// Close stops accepting, severs every proxied connection, and waits for
// all relay goroutines to exit (the proxy leaks nothing).
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	open := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		open = append(open, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range open {
		c.Close()
	}
	p.wg.Wait()
}
