package stack

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

func TestColdAndImmediateReuse(t *testing.T) {
	a := New()
	if d := a.Touch(5); d != -1 {
		t.Fatalf("first touch distance %d, want -1", d)
	}
	if d := a.Touch(5); d != 0 {
		t.Fatalf("immediate reuse distance %d, want 0", d)
	}
	if a.Cold() != 1 || a.Accesses() != 2 || a.Distinct() != 1 {
		t.Fatalf("counters wrong: cold=%d total=%d distinct=%d", a.Cold(), a.Accesses(), a.Distinct())
	}
}

func TestCyclicLoopDistances(t *testing.T) {
	// A cyclic loop over K blocks: every reuse has distance K-1, so LRU
	// hits only with capacity >= K.
	const K = 10
	a := New()
	for lap := 0; lap < 5; lap++ {
		for b := 0; b < K; b++ {
			a.Touch(uint64(b))
		}
	}
	hist := a.Histogram()
	if hist[K-1] != 4*K {
		t.Fatalf("hist[%d] = %d, want %d", K-1, hist[K-1], 4*K)
	}
	if got := a.MissRatio(K - 1); got != 1 {
		t.Fatalf("miss ratio below capacity = %v, want 1", got)
	}
	// At capacity K: only the K cold misses remain.
	if got, want := a.MissRatio(K), float64(K)/float64(5*K); got != want {
		t.Fatalf("miss ratio at capacity = %v, want %v", got, want)
	}
}

// naive is the O(N*M) reference implementation: an explicit LRU stack.
type naive struct {
	stack []uint64
	hist  map[int]uint64
	cold  uint64
}

func (n *naive) touch(b uint64) {
	for i, x := range n.stack {
		if x == b {
			n.hist[i]++
			copy(n.stack[1:i+1], n.stack[:i])
			n.stack[0] = b
			return
		}
	}
	n.cold++
	n.stack = append([]uint64{b}, n.stack...)
}

func TestMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New()
	ref := &naive{hist: map[int]uint64{}}
	for i := 0; i < 20000; i++ {
		var b uint64
		switch rng.Intn(3) {
		case 0:
			b = uint64(rng.Intn(16)) // hot
		case 1:
			b = uint64(100 + rng.Intn(400)) // warm
		default:
			b = uint64(1000 + i) // streaming
		}
		a.Touch(b)
		ref.touch(b)
	}
	if a.Cold() != ref.cold {
		t.Fatalf("cold %d vs reference %d", a.Cold(), ref.cold)
	}
	for d, n := range ref.hist {
		hist := a.Histogram()
		var got uint64
		if d < len(hist) {
			got = hist[d]
		}
		if got != n {
			t.Fatalf("hist[%d] = %d, reference %d", d, got, n)
		}
	}
}

// TestMatchesFullyAssociativeLRUCache cross-validates against the actual
// cache simulator: a 1-set LRU cache of N ways must miss exactly when the
// analyzer predicts.
func TestMatchesFullyAssociativeLRUCache(t *testing.T) {
	const ways = 32
	g := cache.Geometry{SizeBytes: ways * 64, LineBytes: 64, Ways: ways}
	c := cache.New(g, policy.NewLRU())
	a := New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		b := uint64(rng.Intn(200))
		if rng.Intn(4) == 0 {
			b = uint64(10000 + i)
		}
		c.Access(cache.Addr(b*64), false)
		a.Touch(b)
	}
	predicted := a.Accesses() - a.Hits(ways)
	if got := c.Stats().Misses; got != predicted {
		t.Fatalf("cache misses %d != stack-distance prediction %d", got, predicted)
	}
}

func TestGrowthAcrossFenwickResizes(t *testing.T) {
	// Exceed the initial 1024-slot tree several times over.
	a := New()
	const K = 3000
	for lap := 0; lap < 3; lap++ {
		for b := 0; b < K; b++ {
			a.Touch(uint64(b))
		}
	}
	hist := a.Histogram()
	if hist[K-1] != 2*K {
		t.Fatalf("hist[%d] = %d after growth, want %d", K-1, hist[K-1], 2*K)
	}
}

func TestMissCurveMonotone(t *testing.T) {
	a := New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		a.Touch(uint64(rng.Intn(5000)))
	}
	sizes := []int{1, 8, 64, 512, 4096, 8192}
	curve := a.MissCurve(sizes)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("miss curve not monotone: %v", curve)
		}
	}
	if a.MissRatio(1<<30) <= 0 {
		t.Fatal("infinite cache still has cold misses; ratio must be > 0")
	}
}

func TestEmptyAnalyzer(t *testing.T) {
	a := New()
	if a.MissRatio(64) != 0 || a.Accesses() != 0 {
		t.Fatal("empty analyzer not zero")
	}
}
