// Package stack implements Mattson's stack-distance (reuse-distance)
// analysis for LRU: one pass over a block reference stream yields the hit
// ratio of a fully associative LRU cache of EVERY size simultaneously.
// The evaluation tooling uses it to sanity-check the cache simulator and
// to characterize the synthetic workloads (how much of each benchmark's
// traffic is reusable at the L2's size is what separates the policy-
// sensitive benchmarks from the streaming ones).
//
// The implementation is the standard timestamp + Fenwick-tree formulation:
// each access gets a timestamp; a Fenwick (binary indexed) tree marks the
// latest-access timestamp of every resident block; the stack distance of a
// reuse is the number of marked timestamps after the block's previous
// access. O(log N) per access.
package stack

// Analyzer accumulates the stack-distance histogram of a reference stream.
type Analyzer struct {
	last  map[uint64]uint32 // block -> timestamp of latest access
	tree  []uint32          // Fenwick tree over timestamps, 1-based
	t     uint32            // next timestamp
	hist  []uint64          // hist[d] = accesses with stack distance d
	cold  uint64            // first-ever touches
	total uint64
}

// New returns an empty analyzer.
func New() *Analyzer {
	return &Analyzer{
		last: make(map[uint64]uint32),
		tree: make([]uint32, 1024),
	}
}

func (a *Analyzer) add(i uint32, delta int32) {
	for ; int(i) < len(a.tree); i += i & (-i) {
		a.tree[i] = uint32(int32(a.tree[i]) + delta)
	}
}

// sum returns the count of marked timestamps in [1, i].
func (a *Analyzer) sum(i uint32) uint32 {
	var s uint32
	for ; i > 0; i -= i & (-i) {
		s += a.tree[i]
	}
	return s
}

func (a *Analyzer) grow() {
	bigger := make([]uint32, len(a.tree)*2)
	copy(bigger, a.tree)
	// Fenwick trees extend cleanly only when the old length is a power of
	// two and node ranges stay intact — true here because we always
	// double. The new top node must absorb the total of the lower half.
	old := uint32(len(a.tree))
	bigger[old] = a.sum(old - 1)
	// Note: a.sum reads a.tree; assign after computing.
	a.tree = bigger
}

// Touch records one access to block and returns its stack distance, or -1
// for a cold (first) touch. Distance d means d distinct other blocks were
// touched since the previous access to this block; an immediate re-touch
// has distance 0.
func (a *Analyzer) Touch(block uint64) int {
	a.total++
	now := a.t + 1
	a.t = now
	for int(now) >= len(a.tree) {
		a.grow()
	}

	dist := -1
	if prev, ok := a.last[block]; ok {
		// Marked timestamps strictly after prev = blocks touched since.
		d := a.sum(a.t-1) - a.sum(prev)
		dist = int(d)
		a.add(prev, -1)
		for dist >= len(a.hist) {
			a.hist = append(a.hist, 0)
		}
		a.hist[dist]++
	} else {
		a.cold++
	}
	a.last[block] = now
	a.add(now, +1)
	return dist
}

// Accesses returns the number of touches recorded.
func (a *Analyzer) Accesses() uint64 { return a.total }

// Cold returns the number of first-ever touches (compulsory misses).
func (a *Analyzer) Cold() uint64 { return a.cold }

// Distinct returns the number of distinct blocks seen.
func (a *Analyzer) Distinct() int { return len(a.last) }

// Histogram returns the stack-distance histogram (index = distance). The
// returned slice is the analyzer's own; treat it as read-only.
func (a *Analyzer) Histogram() []uint64 { return a.hist }

// Hits returns how many accesses a fully associative LRU cache of n
// blocks would hit: every reuse at distance < n.
func (a *Analyzer) Hits(n int) uint64 {
	var h uint64
	for d := 0; d < n && d < len(a.hist); d++ {
		h += a.hist[d]
	}
	return h
}

// MissRatio returns the fully associative LRU miss ratio at cache size n
// blocks (cold misses included).
func (a *Analyzer) MissRatio(n int) float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.total-a.Hits(n)) / float64(a.total)
}

// MissCurve evaluates MissRatio at each size.
func (a *Analyzer) MissCurve(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		out[i] = a.MissRatio(n)
	}
	return out
}
