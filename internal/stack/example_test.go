package stack_test

import (
	"fmt"

	"repro/internal/stack"
)

func ExampleAnalyzer() {
	a := stack.New()
	// Two laps over four blocks: every reuse has stack distance 3.
	for lap := 0; lap < 2; lap++ {
		for b := uint64(0); b < 4; b++ {
			a.Touch(b)
		}
	}
	fmt.Println("cold:", a.Cold())
	fmt.Println("miss ratio with 2-block LRU:", a.MissRatio(2))
	fmt.Println("miss ratio with 4-block LRU:", a.MissRatio(4))
	// Output:
	// cold: 4
	// miss ratio with 2-block LRU: 1
	// miss ratio with 4-block LRU: 0.5
}
