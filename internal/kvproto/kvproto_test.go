package kvproto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
)

func reqs(t *testing.T, input string) ([]Request, []error) {
	t.Helper()
	rd := NewReader(strings.NewReader(input))
	var out []Request
	var errs []error
	for {
		var req Request
		err := rd.Next(&req)
		if err == io.EOF {
			return out, errs
		}
		if err != nil {
			errs = append(errs, err)
			var ce *ClientError
			if errors.As(err, &ce) {
				continue // recoverable: stream resynchronized
			}
			return out, errs
		}
		// Copy aliased slices before the next parse reuses the buffers.
		req.Key = append([]byte(nil), req.Key...)
		req.Value = append([]byte(nil), req.Value...)
		if req.Keys != nil {
			keys := make([][]byte, len(req.Keys))
			for i, k := range req.Keys {
				keys[i] = append([]byte(nil), k...)
			}
			req.Keys = keys
		}
		out = append(out, req)
	}
}

func TestReaderParsesCommands(t *testing.T) {
	got, errs := reqs(t, "get foo\r\n"+
		"set bar 7 0 5\r\nhello\r\n"+
		"delete foo\r\n"+
		"stats\r\n"+
		"GET foo\r\n"+ // case-insensitive
		"flush_all\r\n"+
		"noop\r\n"+
		"quit\r\n")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []Request{
		{Op: OpGet, Key: []byte("foo")},
		{Op: OpSet, Key: []byte("bar"), Flags: 7, Value: []byte("hello")},
		{Op: OpDelete, Key: []byte("foo")},
		{Op: OpStats},
		{Op: OpGet, Key: []byte("foo")},
		{Op: OpFlushAll},
		{Op: OpNoop},
		{Op: OpQuit},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d requests, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Op != w.Op || !bytes.Equal(g.Key, w.Key) || !bytes.Equal(g.Value, w.Value) || g.Flags != w.Flags {
			t.Errorf("request %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestReaderParsesMultiGet: "get k1 k2 ..." yields one OpGet carrying
// every key in order, with Key aliasing the first for single-key callers.
func TestReaderParsesMultiGet(t *testing.T) {
	got, errs := reqs(t, "get a\r\nget a b c\r\nget x y\r\n")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := [][]string{{"a"}, {"a", "b", "c"}, {"x", "y"}}
	if len(got) != len(want) {
		t.Fatalf("parsed %d requests, want %d", len(got), len(want))
	}
	for i, keys := range want {
		g := got[i]
		if g.Op != OpGet || len(g.Keys) != len(keys) {
			t.Fatalf("request %d = %+v, want %d-key get", i, g, len(keys))
		}
		for j, k := range keys {
			if string(g.Keys[j]) != k {
				t.Errorf("request %d key %d = %q, want %q", i, j, g.Keys[j], k)
			}
		}
		if !bytes.Equal(g.Key, g.Keys[0]) {
			t.Errorf("request %d Key %q != Keys[0] %q", i, g.Key, g.Keys[0])
		}
	}
	// Exactly MaxGetKeys keys parses; one more is rejected (covered in
	// TestReaderRecoverableErrors).
	max := "get" + strings.Repeat(" k", MaxGetKeys) + "\r\n"
	got, errs = reqs(t, max)
	if len(errs) != 0 || len(got) != 1 || len(got[0].Keys) != MaxGetKeys {
		t.Fatalf("MaxGetKeys get: requests=%d errs=%v", len(got), errs)
	}
}

func TestReaderBareLFAndEmptyValue(t *testing.T) {
	got, errs := reqs(t, "set k 0 0 0\n\r\nget k\n")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(got) != 2 || got[0].Op != OpSet || len(got[0].Value) != 0 || got[1].Op != OpGet {
		t.Fatalf("parsed %+v", got)
	}
}

// TestReaderRecoverableErrors: each violation must yield a *ClientError
// and leave the stream positioned at the next command.
func TestReaderRecoverableErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"unknown command", "frobnicate now\r\n"},
		{"get without key", "get \r\n"},
		{"get with empty middle key", "get a  b\r\n"},
		{"get too many keys", "get" + strings.Repeat(" k", MaxGetKeys+1) + "\r\n"},
		{"key too long", "get " + strings.Repeat("k", MaxKeyBytes+1) + "\r\n"},
		{"control byte in key", "get a\x01b\r\n"},
		{"set bad count", "set k 0 0 nope\r\n"},
		{"set missing fields", "set k 0 5\r\n"},
		{"set huge count", "set k 0 0 99999999999999999999999\r\n"},
		{"line too long", strings.Repeat("x", 5000) + "\r\n"},
		{"flush_all with delay", "flush_all 30\r\n"},
		{"flush_all line too long", "flush_all " + strings.Repeat("x", 2000) + "\r\n"},
		{"set oversized value", "set k 0 0 1048577\r\n" + strings.Repeat("v", 1048577) + "\r\n"},
		{"set bad key drains chunk", "set a\x02b 0 0 3\r\nxyz\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, errs := reqs(t, tc.input+"get sentinel\r\n")
			if len(errs) != 1 {
				t.Fatalf("errors = %v, want exactly one", errs)
			}
			var ce *ClientError
			if !errors.As(errs[0], &ce) {
				t.Fatalf("error %v is not a *ClientError", errs[0])
			}
			if len(got) != 1 || got[0].Op != OpGet || string(got[0].Key) != "sentinel" {
				t.Fatalf("stream not resynchronized: parsed %+v", got)
			}
		})
	}
}

func TestReaderFatalErrors(t *testing.T) {
	var req Request
	rd := NewReader(strings.NewReader("set k 0 0 3\r\nabcXY")) // chunk not CRLF-terminated
	if err := rd.Next(&req); err != ErrCorrupt {
		t.Errorf("bad chunk terminator: err = %v, want ErrCorrupt", err)
	}
	rd = NewReader(strings.NewReader("set k 0 0 10\r\nshort"))
	if err := rd.Next(&req); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated chunk: err = %v, want ErrUnexpectedEOF", err)
	}
	rd = NewReader(strings.NewReader("get half"))
	if err := rd.Next(&req); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated line: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestParseUint(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true}, {"42", 42, true},
		{"18446744073709551615", 18446744073709551615, true},
		{"18446744073709551616", 0, false}, // overflow
		{"", 0, false}, {"-1", 0, false}, {"1x", 0, false},
		{"999999999999999999999", 0, false},
	}
	for _, tc := range cases {
		if got, ok := parseUint([]byte(tc.in)); got != tc.want || ok != tc.ok {
			t.Errorf("parseUint(%q) = (%d, %v), want (%d, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestClientServerRoundTrip runs the Client against a handwritten server
// loop over a real loopback socket: the two halves of the package must
// agree on the wire format.
func TestClientServerRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	store := map[string]string{}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		rd := NewReader(conn)
		w := bufio.NewWriter(conn)
		var req Request
		for {
			switch err := rd.Next(&req); {
			case err == nil:
			case errors.As(err, new(*ClientError)):
				WriteClientError(w, "bad request")
				w.Flush()
				continue
			default:
				return
			}
			switch req.Op {
			case OpGet:
				for _, k := range req.Keys {
					if v, ok := store[string(k)]; ok {
						WriteValue(w, k, 0, []byte(v))
					}
				}
				WriteEnd(w)
			case OpSet:
				store[string(req.Key)] = string(req.Value)
				WriteStored(w)
			case OpDelete:
				if _, ok := store[string(req.Key)]; ok {
					delete(store, string(req.Key))
					WriteDeleted(w)
				} else {
					WriteNotFound(w)
				}
			case OpStats:
				WriteStat(w, "items", uint64(len(store)))
				WriteStatStr(w, "version", "test")
				WriteEnd(w)
			case OpFlushAll:
				clear(store)
				WriteOk(w)
			case OpQuit:
				w.Flush()
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, ok, err := c.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get(missing) = (_, %v, %v), want miss", ok, err)
	}
	if err := c.Set([]byte("k"), 3, 0, []byte("value-1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, ok, err := c.Get([]byte("k")); err != nil || !ok || string(v) != "value-1" {
		t.Fatalf("Get(k) = (%q, %v, %v), want value-1", v, ok, err)
	}
	if err := c.Set([]byte("empty"), 0, 0, nil); err != nil {
		t.Fatalf("Set(empty): %v", err)
	}
	if v, ok, err := c.Get([]byte("empty")); err != nil || !ok || len(v) != 0 {
		t.Fatalf("Get(empty) = (%q, %v, %v), want empty hit", v, ok, err)
	}
	st, err := c.Stats()
	if err != nil || st["items"] != "2" || st["version"] != "test" {
		t.Fatalf("Stats = (%v, %v)", st, err)
	}
	// Multiget: a hit, a miss, and a second hit in one round trip; hits
	// arrive in request order with the right indices.
	mkeys := [][]byte{[]byte("k"), []byte("missing"), []byte("empty")}
	var hits []int
	err = c.MultiGet(mkeys, func(i int, flags uint32, val []byte) {
		hits = append(hits, i)
		switch i {
		case 0:
			if string(val) != "value-1" {
				t.Errorf("MultiGet k = %q", val)
			}
		case 2:
			if len(val) != 0 {
				t.Errorf("MultiGet empty = %q", val)
			}
		default:
			t.Errorf("MultiGet hit on unexpected index %d", i)
		}
	})
	if err != nil || len(hits) != 2 || hits[0] != 0 || hits[1] != 2 {
		t.Fatalf("MultiGet = (hits %v, %v), want indices [0 2]", hits, err)
	}
	if ok, err := c.Delete([]byte("k")); err != nil || !ok {
		t.Fatalf("Delete(k) = (%v, %v), want hit", ok, err)
	}
	if ok, err := c.Delete([]byte("k")); err != nil || ok {
		t.Fatalf("second Delete(k) = (%v, %v), want miss", ok, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if _, ok, err := c.Get([]byte("empty")); err != nil || ok {
		t.Fatalf("Get(empty) after flush = (_, %v, %v), want miss", ok, err)
	}
}

// TestReaderReuseNoAllocs: steady-state parsing of same-sized requests
// must not allocate once buffers are warm.
func TestReaderReuseNoAllocs(t *testing.T) {
	input := []byte("set key1 0 0 8\r\nvvvvvvvv\r\nget key1\r\ndelete key1\r\n")
	r := bytes.NewReader(input)
	rd := NewReader(r)
	var req Request
	// Warm the value buffer.
	for i := 0; i < 3; i++ {
		r.Reset(input)
		rd.Reset(r)
		for rd.Next(&req) == nil {
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		r.Reset(input)
		rd.Reset(r)
		for {
			if err := rd.Next(&req); err != nil {
				if err != io.EOF {
					t.Fatalf("parse error: %v", err)
				}
				return
			}
		}
	}); avg != 0 {
		t.Errorf("steady-state parse: %v allocs per pass, want 0", avg)
	}
}
