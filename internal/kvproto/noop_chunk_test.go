package kvproto

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestParseNoop: the parser accepts the bare command and rejects
// arguments, matching stats/quit shape.
func TestParseNoop(t *testing.T) {
	rd := NewReader(strings.NewReader("noop\r\nNOOP x\r\nnoop\r\n"))
	var req Request
	if err := rd.Next(&req); err != nil || req.Op != OpNoop {
		t.Fatalf("noop parse: op=%v err=%v", req.Op, err)
	}
	// "NOOP x": case-insensitive command, but arguments are malformed.
	err := rd.Next(&req)
	var ce *ClientError
	if !asClientError(err, &ce) {
		t.Fatalf("noop with args: want ClientError, got %v", err)
	}
	// Stream resynchronized: the next noop still parses.
	if err := rd.Next(&req); err != nil || req.Op != OpNoop {
		t.Fatalf("post-violation noop: op=%v err=%v", req.Op, err)
	}
	if OpNoop.String() != "noop" {
		t.Fatalf("OpNoop.String() = %q", OpNoop.String())
	}
}

func asClientError(err error, ce **ClientError) bool {
	c, ok := err.(*ClientError)
	if ok {
		*ce = c
	}
	return ok
}

// TestNoopRoundTrip drives Client.Noop against scripted replies: the
// canonical NOOP line succeeds, an error line is classified, a garbage
// line kills the stream.
func TestNoopRoundTrip(t *testing.T) {
	addr := scriptServer(t, true, "NOOP\r\n", false)
	c, err := DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseNow()
	if err := c.Noop(); err != nil {
		t.Fatalf("noop: %v", err)
	}

	addr = scriptServer(t, true, "SERVER_ERROR busy\r\n", false)
	c2, err := DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.CloseNow()
	if err := c2.Noop(); !IsBusy(err) {
		t.Fatalf("noop busy reply: want busy classification, got %v", err)
	}
}

// chunkServer speaks the server side of the protocol over one accepted
// connection: every parsed get is answered from store, and the size of
// each request's key list is recorded so the test can assert the chunk
// split actually happened on the wire.
func chunkServer(t *testing.T, store map[string][]byte, reqSizes *[]int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		rd := NewReader(conn)
		w := bufio.NewWriter(conn)
		var req Request
		for {
			if err := rd.Next(&req); err != nil {
				return
			}
			switch req.Op {
			case OpGet:
				*reqSizes = append(*reqSizes, len(req.Keys))
				for _, k := range req.Keys {
					if v, ok := store[string(k)]; ok {
						WriteValue(w, k, 7, v)
					}
				}
				WriteEnd(w)
			case OpQuit:
				w.Flush()
				return
			}
			if rd.Buffered() == 0 {
				if w.Flush() != nil {
					return
				}
			}
		}
	}()
	return ln.Addr().String()
}

// TestMultiGetChunked fetches 3x the protocol's per-request key cap in
// one call: the client must split the burst into MaxGetKeys-sized
// requests, flush them as one pipelined write, and report every hit at
// its index into the full key slice.
func TestMultiGetChunked(t *testing.T) {
	const n = 3*MaxGetKeys + 17
	store := make(map[string][]byte)
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%04d", i))
		if i%3 != 0 { // every third key is a miss
			store[string(keys[i])] = []byte(fmt.Sprintf("v%d", i))
		}
	}
	var reqSizes []int
	addr := chunkServer(t, store, &reqSizes)
	c, err := DialTimeout(addr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseNow()

	got := make(map[int][]byte)
	err = c.MultiGetChunked(keys, func(i int, flags uint32, val []byte) {
		if flags != 7 {
			t.Errorf("key %d: flags %d, want 7", i, flags)
		}
		got[i] = append([]byte(nil), val...)
	})
	if err != nil {
		t.Fatalf("MultiGetChunked: %v", err)
	}
	for i := range keys {
		want, hit := store[string(keys[i])]
		v, found := got[i]
		if hit != found {
			t.Fatalf("key %d: hit=%v found=%v", i, hit, found)
		}
		if hit && !bytes.Equal(v, want) {
			t.Fatalf("key %d: value %q, want %q", i, v, want)
		}
	}
	if len(reqSizes) != 4 {
		t.Fatalf("burst split into %d requests (%v), want 4", len(reqSizes), reqSizes)
	}
	for i, sz := range reqSizes {
		if sz > MaxGetKeys {
			t.Fatalf("request %d carried %d keys, cap is %d", i, sz, MaxGetKeys)
		}
	}
	if reqSizes[3] != 17 {
		t.Fatalf("final chunk carried %d keys, want 17", reqSizes[3])
	}
}

// TestMultiGetChunkedLongKeys: chunking must respect the server's
// command-line byte budget, not just the key-count cap — maximum-length
// keys fit only a handful per request line.
func TestMultiGetChunkedLongKeys(t *testing.T) {
	const n = 23
	store := make(map[string][]byte)
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("long-%03d-%s", i, strings.Repeat("x", 230)))
		store[string(keys[i])] = []byte(fmt.Sprintf("v%d", i))
	}
	var reqSizes []int
	addr := chunkServer(t, store, &reqSizes)
	c, err := DialTimeout(addr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseNow()

	seen := 0
	err = c.MultiGetChunked(keys, func(i int, _ uint32, val []byte) {
		seen++
		if want := store[string(keys[i])]; !bytes.Equal(val, want) {
			t.Errorf("key %d: value %q, want %q", i, val, want)
		}
	})
	if err != nil {
		t.Fatalf("MultiGetChunked: %v", err)
	}
	if seen != n {
		t.Fatalf("saw %d hits, want %d", seen, n)
	}
	total := 0
	for i, sz := range reqSizes {
		total += sz
		line := 3 + sz*(1+len(keys[0]))
		if line > 1024 {
			t.Fatalf("request %d would be %d bytes on the wire, over the server's 1024 budget", i, line)
		}
	}
	if total != n {
		t.Fatalf("requests carried %d keys total, want %d", total, n)
	}
	if len(reqSizes) < 2 {
		t.Fatalf("long keys were not split (%v)", reqSizes)
	}
}
