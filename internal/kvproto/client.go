package kvproto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
)

// Client is a minimal synchronous client for the protocol: one outstanding
// request per Client, no pipelining. cmd/kvloadgen runs one Client per
// connection goroutine; tests use it to talk to cmd/adaptcached.
//
// Get's returned value aliases an internal buffer valid until the next
// call, keeping the request loop allocation-light.
type Client struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	bw   *bufio.Writer
	val  []byte
}

// Dial connects to a protocol server at addr (host:port).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 4096),
		bw:   bufio.NewWriterSize(conn, 4096),
	}
}

// Close sends quit (best effort) and closes the connection.
func (c *Client) Close() error {
	c.bw.WriteString("quit\r\n")
	c.bw.Flush()
	return c.conn.Close()
}

// readLine reads one reply line without its terminator.
func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// unexpected converts a surprising reply line into an error (copying the
// line, which aliases the read buffer).
func unexpected(line []byte) error {
	return fmt.Errorf("kvproto: unexpected reply %q", line)
}

// --- Pipelined interface ---------------------------------------------------
//
// SendGet/SendSet/SendDelete queue requests without flushing; Flush writes
// the batch; the matching ReadXxxReply calls consume replies in request
// order. The synchronous Get/Set/Delete methods are one-request batches.
// Deep pipelines amortize both sides' syscalls — essential for driving a
// server at six figures of ops/s from a closed loop.

// SendGet queues a get without flushing.
func (c *Client) SendGet(key []byte) {
	c.bw.WriteString("get ")
	c.bw.Write(key)
	c.bw.WriteString("\r\n")
}

// SendSet queues a set without flushing.
func (c *Client) SendSet(key []byte, flags uint32, val []byte) {
	c.bw.WriteString("set ")
	c.bw.Write(key)
	c.bw.WriteByte(' ')
	writeUint(c.bw, uint64(flags))
	c.bw.WriteString(" 0 ")
	writeUint(c.bw, uint64(len(val)))
	c.bw.WriteString("\r\n")
	c.bw.Write(val)
	c.bw.WriteString("\r\n")
}

// SendDelete queues a delete without flushing.
func (c *Client) SendDelete(key []byte) {
	c.bw.WriteString("delete ")
	c.bw.Write(key)
	c.bw.WriteString("\r\n")
}

// Flush writes all queued requests to the connection.
func (c *Client) Flush() error { return c.bw.Flush() }

// Get fetches key. The returned slice is valid until the next Client call.
func (c *Client) Get(key []byte) (val []byte, ok bool, err error) {
	c.SendGet(key)
	if err := c.Flush(); err != nil {
		return nil, false, err
	}
	return c.ReadGetReply()
}

// ReadGetReply consumes one get response. The returned slice is valid
// until the next Client call.
func (c *Client) ReadGetReply() (val []byte, ok bool, err error) {
	line, err := c.readLine()
	if err != nil {
		return nil, false, err
	}
	if bytes.Equal(line, replyEnd[:3]) { // "END"
		return nil, false, nil
	}
	if !bytes.HasPrefix(line, valuePrefix) {
		return nil, false, unexpected(line)
	}
	// VALUE <key> <flags> <bytes>
	rest := line[len(valuePrefix):]
	_, rest = nextField(rest) // key (trusted: single-request protocol)
	_, rest = nextField(rest) // flags
	sizeB, tail := nextField(rest)
	size, okN := parseUint(sizeB)
	if !okN || len(tail) != 0 || size > MaxValueBytes {
		return nil, false, unexpected(line)
	}
	if cap(c.val) < int(size)+2 {
		c.val = make([]byte, size+2)
	}
	buf := c.val[:size+2]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, false, err
	}
	end, err := c.readLine()
	if err != nil {
		return nil, false, err
	}
	if !bytes.Equal(end, replyEnd[:3]) {
		return nil, false, unexpected(end)
	}
	return buf[:size], true, nil
}

// Set stores val under key with the given flags.
func (c *Client) Set(key []byte, flags uint32, val []byte) error {
	c.SendSet(key, flags, val)
	if err := c.Flush(); err != nil {
		return err
	}
	return c.ReadSetReply()
}

// ReadSetReply consumes one set response.
func (c *Client) ReadSetReply() error {
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if !bytes.Equal(line, replyStored[:6]) { // "STORED"
		return unexpected(line)
	}
	return nil
}

// Delete removes key, reporting whether it was resident.
func (c *Client) Delete(key []byte) (bool, error) {
	c.SendDelete(key)
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.ReadDeleteReply()
}

// ReadDeleteReply consumes one delete response.
func (c *Client) ReadDeleteReply() (bool, error) {
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, replyDeleted[:7]): // "DELETED"
		return true, nil
	case bytes.Equal(line, replyNotFound[:9]): // "NOT_FOUND"
		return false, nil
	default:
		return false, unexpected(line)
	}
}

// Stats fetches the server's STAT lines as a name → value map.
func (c *Client) Stats() (map[string]string, error) {
	c.bw.WriteString("stats\r\n")
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	stats := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, replyEnd[:3]) {
			return stats, nil
		}
		if !bytes.HasPrefix(line, statPrefix) {
			return nil, unexpected(line)
		}
		rest := line[len(statPrefix):]
		name, value := nextField(rest)
		stats[string(name)] = string(value)
	}
}
