package kvproto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"time"
)

// deadliner is the subset of net.Conn the Client uses to arm per-
// operation timeouts; wrapped non-network streams simply lack it.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Client is a minimal synchronous client for the protocol: one outstanding
// request per Client, no pipelining. cmd/kvloadgen runs one Client per
// connection goroutine; tests use it to talk to cmd/adaptcached.
//
// Get's returned value aliases an internal buffer valid until the next
// call, keeping the request loop allocation-light.
//
// With SetTimeouts armed, every reply read and every Flush carries a
// deadline, so a dead or stalled peer surfaces as a timeout error instead
// of blocking the caller forever. Deadline expiry leaves the stream state
// unknown: the error is not Recoverable and the connection must be
// discarded.
type Client struct {
	conn io.ReadWriteCloser
	dl   deadliner // nil when conn cannot carry deadlines
	br   *bufio.Reader
	bw   *bufio.Writer
	val  []byte

	readTimeout  time.Duration
	writeTimeout time.Duration
}

// Dial connects to a protocol server at addr (host:port).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout connects with a bounded dial and arms per-operation read
// and write deadlines (zero durations disable the respective bound).
func DialTimeout(addr string, dialTO, readTO, writeTO time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.SetTimeouts(readTO, writeTO)
	return c, nil
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 4096),
		bw:   bufio.NewWriterSize(conn, 4096),
	}
	c.dl, _ = conn.(deadliner)
	return c
}

// SetTimeouts arms per-operation deadlines: read covers one reply
// (re-armed at the start of each ReadXxxReply/Stats call), write covers
// one Flush. Zero disables a bound. No-op when the underlying stream
// cannot carry deadlines.
func (c *Client) SetTimeouts(read, write time.Duration) {
	c.readTimeout, c.writeTimeout = read, write
}

func (c *Client) armRead() {
	if c.dl != nil && c.readTimeout > 0 {
		c.dl.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
}

func (c *Client) armWrite() {
	if c.dl != nil && c.writeTimeout > 0 {
		c.dl.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
}

// Close sends quit (best effort) and closes the connection.
func (c *Client) Close() error {
	c.armWrite()
	c.bw.WriteString("quit\r\n")
	c.bw.Flush()
	return c.conn.Close()
}

// CloseNow closes the connection without the quit courtesy — for streams
// already known dead, where writing would only block or mask the error.
func (c *Client) CloseNow() error { return c.conn.Close() }

// readLine reads one reply line without its terminator.
func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// unexpected converts a surprising reply line into an error (copying the
// line, which aliases the read buffer).
func unexpected(line []byte) error {
	return fmt.Errorf("kvproto: unexpected reply %q", line)
}

// errorFromReply classifies a non-success reply line. CLIENT_ERROR,
// SERVER_ERROR, and ERROR are well-formed error replies after which the
// stream stays synchronized (the returned error is Recoverable); anything
// else means the stream is desynchronized and the connection is dead.
func errorFromReply(line []byte) error {
	switch {
	case bytes.HasPrefix(line, clientErrorPfx):
		return &ClientError{Msg: string(line[len(clientErrorPfx):])}
	case bytes.HasPrefix(line, serverErrorPfx):
		return &ServerError{Msg: string(line[len(serverErrorPfx):])}
	case bytes.Equal(line, replyError[:5]): // "ERROR"
		return &ClientError{Msg: "unknown command"}
	default:
		return unexpected(line)
	}
}

// --- Pipelined interface ---------------------------------------------------
//
// SendGet/SendSet/SendDelete queue requests without flushing; Flush writes
// the batch; the matching ReadXxxReply calls consume replies in request
// order. The synchronous Get/Set/Delete methods are one-request batches.
// Deep pipelines amortize both sides' syscalls — essential for driving a
// server at six figures of ops/s from a closed loop.

// SendGet queues a get without flushing.
func (c *Client) SendGet(key []byte) {
	c.bw.WriteString("get ")
	c.bw.Write(key)
	c.bw.WriteString("\r\n")
}

// SendSet queues a set without flushing. exptime carries memcached TTL
// semantics (0 = never expire; see the package doc).
func (c *Client) SendSet(key []byte, flags uint32, exptime int64, val []byte) {
	c.bw.WriteString("set ")
	c.bw.Write(key)
	c.bw.WriteByte(' ')
	writeUint(c.bw, uint64(flags))
	c.bw.WriteByte(' ')
	writeInt(c.bw, exptime)
	c.bw.WriteByte(' ')
	writeUint(c.bw, uint64(len(val)))
	c.bw.WriteString("\r\n")
	c.bw.Write(val)
	c.bw.WriteString("\r\n")
}

// SendDelete queues a delete without flushing.
func (c *Client) SendDelete(key []byte) {
	c.bw.WriteString("delete ")
	c.bw.Write(key)
	c.bw.WriteString("\r\n")
}

// Flush writes all queued requests to the connection.
func (c *Client) Flush() error {
	c.armWrite()
	return c.bw.Flush()
}

// Get fetches key. The returned slice is valid until the next Client call.
func (c *Client) Get(key []byte) (val []byte, ok bool, err error) {
	c.SendGet(key)
	if err := c.Flush(); err != nil {
		return nil, false, err
	}
	return c.ReadGetReply()
}

// ReadGetReply consumes one get response. The returned slice is valid
// until the next Client call.
func (c *Client) ReadGetReply() (val []byte, ok bool, err error) {
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return nil, false, err
	}
	if bytes.Equal(line, replyEnd[:3]) { // "END"
		return nil, false, nil
	}
	if !bytes.HasPrefix(line, valuePrefix) {
		return nil, false, errorFromReply(line)
	}
	// VALUE <key> <flags> <bytes>
	rest := line[len(valuePrefix):]
	_, rest = nextField(rest) // key (trusted: single-request protocol)
	_, rest = nextField(rest) // flags
	sizeB, tail := nextField(rest)
	size, okN := parseUint(sizeB)
	if !okN || len(tail) != 0 || size > MaxValueBytes {
		return nil, false, unexpected(line)
	}
	if cap(c.val) < int(size)+2 {
		c.val = make([]byte, size+2)
	}
	buf := c.val[:size+2]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, false, err
	}
	end, err := c.readLine()
	if err != nil {
		return nil, false, err
	}
	if !bytes.Equal(end, replyEnd[:3]) {
		return nil, false, unexpected(end)
	}
	return buf[:size], true, nil
}

// SendGets queues a gets (get-with-cas-unique) without flushing.
func (c *Client) SendGets(key []byte) {
	c.bw.WriteString("gets ")
	c.bw.Write(key)
	c.bw.WriteString("\r\n")
}

// ReadGetsReply consumes one gets response, returning the value, its
// stored flags word, and the entry's cas unique. The returned slice is
// valid until the next Client call.
func (c *Client) ReadGetsReply() (val []byte, flags uint32, casid uint64, ok bool, err error) {
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return nil, 0, 0, false, err
	}
	if bytes.Equal(line, replyEnd[:3]) { // "END"
		return nil, 0, 0, false, nil
	}
	if !bytes.HasPrefix(line, valuePrefix) {
		return nil, 0, 0, false, errorFromReply(line)
	}
	// VALUE <key> <flags> <bytes> <casid>
	rest := line[len(valuePrefix):]
	_, rest = nextField(rest) // key (trusted: single-request protocol)
	flagsB, rest := nextField(rest)
	sizeB, rest := nextField(rest)
	casB, tail := nextField(rest)
	flags64, okF := parseUint(flagsB)
	size, okN := parseUint(sizeB)
	casid, okC := parseUint(casB)
	if !okF || !okN || !okC || flags64 > 0xffffffff || len(tail) != 0 || size > MaxValueBytes {
		return nil, 0, 0, false, unexpected(line)
	}
	if cap(c.val) < int(size)+2 {
		c.val = make([]byte, size+2)
	}
	buf := c.val[:size+2]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, 0, 0, false, err
	}
	end, err := c.readLine()
	if err != nil {
		return nil, 0, 0, false, err
	}
	if !bytes.Equal(end, replyEnd[:3]) {
		return nil, 0, 0, false, unexpected(end)
	}
	return buf[:size], uint32(flags64), casid, true, nil
}

// Gets fetches key together with its flags and cas unique, the token a
// later Cas must present. The returned slice is valid until the next
// Client call.
func (c *Client) Gets(key []byte) (val []byte, flags uint32, casid uint64, ok bool, err error) {
	c.SendGets(key)
	if err := c.Flush(); err != nil {
		return nil, 0, 0, false, err
	}
	return c.ReadGetsReply()
}

// CasStatus is the outcome of a cas operation. Callers must check the
// error first: on a non-nil error the status is meaningless.
type CasStatus uint8

const (
	CasStored   CasStatus = iota // swapped: the unique matched
	CasExists                    // key resident but modified since the gets
	CasNotFound                  // key absent (or expired)
)

// SendCas queues a cas without flushing. casid is the unique returned by
// a prior gets; exptime carries memcached TTL semantics.
func (c *Client) SendCas(key []byte, flags uint32, exptime int64, casid uint64, val []byte) {
	c.bw.WriteString("cas ")
	c.bw.Write(key)
	c.bw.WriteByte(' ')
	writeUint(c.bw, uint64(flags))
	c.bw.WriteByte(' ')
	writeInt(c.bw, exptime)
	c.bw.WriteByte(' ')
	writeUint(c.bw, uint64(len(val)))
	c.bw.WriteByte(' ')
	writeUint(c.bw, casid)
	c.bw.WriteString("\r\n")
	c.bw.Write(val)
	c.bw.WriteString("\r\n")
}

// ReadCasReply consumes one cas response.
func (c *Client) ReadCasReply() (CasStatus, error) {
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return CasNotFound, err
	}
	switch {
	case bytes.Equal(line, replyStored[:6]): // "STORED"
		return CasStored, nil
	case bytes.Equal(line, replyExists[:6]): // "EXISTS"
		return CasExists, nil
	case bytes.Equal(line, replyNotFound[:9]): // "NOT_FOUND"
		return CasNotFound, nil
	default:
		return CasNotFound, errorFromReply(line)
	}
}

// Cas atomically replaces key's value iff its cas unique still equals
// casid (from a prior Gets). CasExists means a concurrent write won the
// race; the caller re-reads and retries.
func (c *Client) Cas(key []byte, flags uint32, exptime int64, casid uint64, val []byte) (CasStatus, error) {
	c.SendCas(key, flags, exptime, casid, val)
	if err := c.Flush(); err != nil {
		return CasNotFound, err
	}
	return c.ReadCasReply()
}

// SendMultiGet queues one multi-key get ("get k1 k2 ...") without
// flushing. keys must hold 1..MaxGetKeys entries.
func (c *Client) SendMultiGet(keys [][]byte) {
	c.bw.WriteString("get")
	for _, k := range keys {
		c.bw.WriteByte(' ')
		c.bw.Write(k)
	}
	c.bw.WriteString("\r\n")
}

// ReadMultiGetReply consumes one multi-key get response for the given
// request keys. Each hit invokes fn (when non-nil) with the key's index
// into keys, the stored flags word, and the value; val aliases an
// internal buffer valid only until fn returns. The server emits hits in
// request order, so replies match by scanning keys forward; a duplicate
// key matches its earliest unconsumed index.
func (c *Client) ReadMultiGetReply(keys [][]byte, fn func(i int, flags uint32, val []byte)) error {
	next := 0
	for {
		c.armRead()
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if bytes.Equal(line, replyEnd[:3]) { // "END"
			return nil
		}
		if !bytes.HasPrefix(line, valuePrefix) {
			return errorFromReply(line)
		}
		// VALUE <key> <flags> <bytes>
		rest := line[len(valuePrefix):]
		keyB, rest := nextField(rest)
		flagsB, rest := nextField(rest)
		sizeB, tail := nextField(rest)
		flags, okF := parseUint(flagsB)
		size, okN := parseUint(sizeB)
		if !okF || !okN || len(tail) != 0 || flags > 0xffffffff || size > MaxValueBytes {
			return unexpected(line)
		}
		for next < len(keys) && !bytes.Equal(keys[next], keyB) {
			next++
		}
		if next == len(keys) {
			return unexpected(line)
		}
		idx := next
		next++
		if cap(c.val) < int(size)+2 {
			c.val = make([]byte, size+2)
		}
		buf := c.val[:size+2]
		if _, err := io.ReadFull(c.br, buf); err != nil {
			return err
		}
		if buf[size] != '\r' || buf[size+1] != '\n' {
			return unexpected(buf[:size+2])
		}
		if fn != nil {
			fn(idx, uint32(flags), buf[:size])
		}
	}
}

// MultiGet fetches several keys in one round trip; see ReadMultiGetReply
// for the callback contract.
func (c *Client) MultiGet(keys [][]byte, fn func(i int, flags uint32, val []byte)) error {
	c.SendMultiGet(keys)
	if err := c.Flush(); err != nil {
		return err
	}
	return c.ReadMultiGetReply(keys, fn)
}

// maxGetLineBytes is the client-side budget for one "get ..." command
// line: the server's Reader parses lines through a 1024-byte buffer and
// rejects anything longer, so chunks are split on bytes as well as key
// count (128 keys of 250-byte maximum-length keys would be a 30x
// overflow otherwise). 1000 leaves headroom for "get" and CRLF.
const maxGetLineBytes = 1000

// getChunkEnd returns the end of the chunk starting at base: as many
// keys as fit under both MaxGetKeys and maxGetLineBytes (always at
// least one — a single valid key never overflows the line).
func getChunkEnd(keys [][]byte, base int) int {
	end := base
	line := len("get")
	for end < len(keys) && end-base < MaxGetKeys {
		line += 1 + len(keys[end])
		if line > maxGetLineBytes && end > base {
			break
		}
		end++
	}
	return end
}

// MultiGetChunked fetches any number of keys, transparently splitting the
// request into multi-key gets bounded by MaxGetKeys and the server's
// command-line budget. All chunks are queued and flushed in one write
// (the server answers them as one pipelined burst), so the split costs
// no extra round trips. fn receives indexes into the full keys slice;
// its callback contract is ReadMultiGetReply's. On error the stream
// position within the burst is unknown and the connection must be
// discarded unless the error is Recoverable on the final chunk.
func (c *Client) MultiGetChunked(keys [][]byte, fn func(i int, flags uint32, val []byte)) error {
	if len(keys) == 0 {
		return nil
	}
	if end := getChunkEnd(keys, 0); end == len(keys) {
		return c.MultiGet(keys, fn)
	}
	for base := 0; base < len(keys); base = getChunkEnd(keys, base) {
		c.SendMultiGet(keys[base:getChunkEnd(keys, base)])
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for base := 0; base < len(keys); {
		end := getChunkEnd(keys, base)
		off := base
		var inner func(i int, flags uint32, val []byte)
		if fn != nil {
			inner = func(i int, flags uint32, val []byte) { fn(off+i, flags, val) }
		}
		if err := c.ReadMultiGetReply(keys[base:end], inner); err != nil {
			return err
		}
		base = end
	}
	return nil
}

// SendNoop queues a noop without flushing.
func (c *Client) SendNoop() { c.bw.WriteString("noop\r\n") }

// ReadNoopReply consumes one noop response.
func (c *Client) ReadNoopReply() error {
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if !bytes.Equal(line, replyNoop[:4]) { // "NOOP"
		return errorFromReply(line)
	}
	return nil
}

// Noop performs one empty round trip — the cheapest liveness probe the
// protocol offers (one line each way, no allocation server-side).
func (c *Client) Noop() error {
	c.SendNoop()
	if err := c.Flush(); err != nil {
		return err
	}
	return c.ReadNoopReply()
}

// SendFlushAll queues a flush_all without flushing the write buffer.
func (c *Client) SendFlushAll() { c.bw.WriteString("flush_all\r\n") }

// ReadFlushAllReply consumes one flush_all response.
func (c *Client) ReadFlushAllReply() error {
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if !bytes.Equal(line, replyOk[:2]) { // "OK"
		return errorFromReply(line)
	}
	return nil
}

// FlushAll drops every entry the server holds. Flushing is idempotent
// (an empty cache flushed again is still empty), so callers may retry it
// freely on ambiguous failures — the property replica reintegration
// relies on.
func (c *Client) FlushAll() error {
	c.SendFlushAll()
	if err := c.Flush(); err != nil {
		return err
	}
	return c.ReadFlushAllReply()
}

// Set stores val under key with the given flags and exptime.
func (c *Client) Set(key []byte, flags uint32, exptime int64, val []byte) error {
	c.SendSet(key, flags, exptime, val)
	if err := c.Flush(); err != nil {
		return err
	}
	return c.ReadSetReply()
}

// ReadSetReply consumes one set response.
func (c *Client) ReadSetReply() error {
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if !bytes.Equal(line, replyStored[:6]) { // "STORED"
		return errorFromReply(line)
	}
	return nil
}

// Delete removes key, reporting whether it was resident.
func (c *Client) Delete(key []byte) (bool, error) {
	c.SendDelete(key)
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.ReadDeleteReply()
}

// ReadDeleteReply consumes one delete response.
func (c *Client) ReadDeleteReply() (bool, error) {
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, replyDeleted[:7]): // "DELETED"
		return true, nil
	case bytes.Equal(line, replyNotFound[:9]): // "NOT_FOUND"
		return false, nil
	default:
		return false, errorFromReply(line)
	}
}

// Stats fetches the server's STAT lines as a name → value map.
func (c *Client) Stats() (map[string]string, error) {
	c.bw.WriteString("stats\r\n")
	if err := c.Flush(); err != nil {
		return nil, err
	}
	stats := make(map[string]string)
	for {
		c.armRead()
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, replyEnd[:3]) {
			return stats, nil
		}
		if !bytes.HasPrefix(line, statPrefix) {
			return nil, errorFromReply(line)
		}
		rest := line[len(statPrefix):]
		name, value := nextField(rest)
		stats[string(name)] = string(value)
	}
}
