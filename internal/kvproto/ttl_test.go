package kvproto

// TTL parsing and normalization tests: parseSet's exptime field
// (bounds, sign), the AbsoluteExptime/DeadlineNanos helpers, and the
// retry contract that a replayed set carries the original absolute
// deadline rather than re-relativizing it.

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseSetExptime(t *testing.T) {
	cases := []struct {
		name  string
		field string
		want  int64
	}{
		{"never", "0", 0},
		{"relative", "300", 300},
		{"relative limit", "2592000", RelativeLimit},
		{"absolute pivot", "2592001", RelativeLimit + 1},
		{"max 32-bit", "4294967295", 0xffffffff},
		{"negative", "-1", -1},
		{"negative zero", "-0", 0},
		{"negative large", "-4294967295", -0xffffffff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, errs := reqs(t, "set k 0 "+tc.field+" 1\r\nx\r\n")
			if len(errs) != 0 || len(got) != 1 {
				t.Fatalf("requests=%d errs=%v", len(got), errs)
			}
			if got[0].Exptime != tc.want {
				t.Fatalf("Exptime = %d, want %d", got[0].Exptime, tc.want)
			}
		})
	}
}

func TestParseSetExptimeRejected(t *testing.T) {
	cases := []struct {
		name  string
		field string
	}{
		{"over 32 bits", "4294967296"},
		{"negative over 32 bits", "-4294967296"},
		{"64-bit overflow", "18446744073709551616"},
		{"bare minus", "-"},
		{"not a number", "soon"},
		{"embedded sign", "1-2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// No value chunk follows: a malformed header aborts the set
			// before the byte count is known, and the parser resyncs at
			// the next line.
			got, errs := reqs(t, "set k 0 "+tc.field+" 1\r\nget sentinel\r\n")
			if len(errs) != 1 {
				t.Fatalf("errors = %v, want exactly one", errs)
			}
			var ce *ClientError
			if !errors.As(errs[0], &ce) {
				t.Fatalf("error %v is not a *ClientError", errs[0])
			}
			if len(got) != 1 || got[0].Op != OpGet || string(got[0].Key) != "sentinel" {
				t.Fatalf("stream not resynchronized: parsed %+v", got)
			}
		})
	}
}

func TestAbsoluteExptime(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cases := []struct {
		name    string
		exptime int64
		want    int64
	}{
		{"zero stays zero", 0, 0},
		{"negative collapses", -1, -1},
		{"negative large collapses", -12345, -1},
		{"relative becomes absolute", 300, now.Unix() + 300},
		{"limit is still relative", RelativeLimit, now.Unix() + RelativeLimit},
		{"above limit passes through", RelativeLimit + 1, RelativeLimit + 1},
		{"unix time passes through", 1_700_000_600, 1_700_000_600},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AbsoluteExptime(tc.exptime, now)
			if got != tc.want {
				t.Fatalf("AbsoluteExptime(%d) = %d, want %d", tc.exptime, got, tc.want)
			}
			// Idempotent: normalizing a normalized value is a no-op even
			// at a later wall time, so layered callers (cluster then
			// reconnect client) can each normalize safely.
			later := now.Add(time.Hour)
			if again := AbsoluteExptime(got, later); again != got {
				t.Fatalf("AbsoluteExptime not idempotent: %d -> %d", got, again)
			}
		})
	}
}

func TestDeadlineNanos(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cases := []struct {
		name    string
		exptime int64
		want    int64
	}{
		{"zero means never", 0, 0},
		{"negative means already expired", -1, 1},
		{"relative seconds", 300, now.Add(300 * time.Second).UnixNano()},
		{"limit relative", RelativeLimit, now.Add(RelativeLimit * time.Second).UnixNano()},
		{"absolute unix seconds", 1_700_000_600, 1_700_000_600 * int64(time.Second)},
		{"max 32-bit absolute", 0xffffffff, 0xffffffff * int64(time.Second)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := DeadlineNanos(tc.exptime, now); got != tc.want {
				t.Fatalf("DeadlineNanos(%d) = %d, want %d", tc.exptime, got, tc.want)
			}
		})
	}
}

// TestClientSendSetExptimeWire: the wire line carries the exptime field
// verbatim, including negative values.
func TestClientSendSetExptimeWire(t *testing.T) {
	var sb strings.Builder
	srv, cli := net.Pipe()
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			n, err := srv.Read(buf)
			sb.Write(buf[:n])
			if err != nil || strings.HasSuffix(sb.String(), "v\r\n") {
				srv.Write([]byte("STORED\r\n"))
				return
			}
		}
	}()
	c := NewClient(cli)
	if err := c.Set([]byte("k"), 5, -1, []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	<-done
	cli.Close()
	if got, want := sb.String(), "set k 5 -1 1\r\nv\r\n"; got != want {
		t.Fatalf("wire = %q, want %q", got, want)
	}
}

// TestReconnectSetRetainsAbsoluteDeadline: a relative exptime is
// normalized to an absolute unix time once, before the first attempt,
// and every retry replays that exact value — a retry after a delay must
// not extend the TTL by re-relativizing.
func TestReconnectSetRetainsAbsoluteDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var n atomic.Int64
	seen := make(chan int64, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				rd := NewReader(conn)
				var req Request
				for {
					conn.SetReadDeadline(time.Now().Add(5 * time.Second))
					if err := rd.Next(&req); err != nil {
						return
					}
					if req.Op != OpSet {
						return
					}
					seen <- req.Exptime
					if n.Add(1) <= 2 {
						// Shed after reading: busy is not an ack, so the
						// client backs off and replays the same set.
						conn.Write(BusyLine)
						return
					}
					conn.Write([]byte("STORED\r\n"))
				}
			}(conn)
		}
	}()

	rc := NewReconnect(ln.Addr().String(), ReconnectConfig{
		ReadTimeout: 2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        12,
	})
	defer rc.Close()

	before := time.Now().Unix()
	if err := rc.Set([]byte("k"), 0, 60, []byte("v")); err != nil {
		t.Fatalf("set through busy sheds: %v", err)
	}
	after := time.Now().Unix()

	first := <-seen
	if first < before+60 || first > after+60 {
		t.Fatalf("first attempt exptime %d not an absolute deadline near now+60", first)
	}
	for i := 0; i < 2; i++ {
		if replay := <-seen; replay != first {
			t.Fatalf("retry %d sent exptime %d, want the original %d", i+1, replay, first)
		}
	}
}
