package kvproto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReaderNext throws arbitrary bytes at the request parser. The
// properties under test: no panics, no infinite loops, every successful
// parse satisfies the protocol's declared invariants, and every
// *ClientError leaves the stream resynchronized (the parser keeps making
// progress). Seeds cover each command, each recoverable violation, and
// truncations at interesting offsets.
func FuzzReaderNext(f *testing.F) {
	seeds := []string{
		// Valid traffic.
		"get foo\r\n",
		"get foo\n",
		"get a b\r\n",
		"get a b c d e\r\n",
		"set bar 7 0 5\r\nhello\r\n",
		"set bar 0 0 0\r\n\r\n",
		"gets foo\r\n",
		"gets a b\r\n",
		"cas bar 7 0 5 42\r\nhello\r\n",
		// cas unique boundaries: zero, max uint64, one past max (overflow).
		"cas k 0 0 1 0\r\nx\r\n",
		"cas k 0 0 1 18446744073709551615\r\nx\r\n",
		"cas k 0 0 1 18446744073709551616\r\nx\r\n",
		// cas with a missing unique and with trailing junk.
		"cas k 0 0 1\r\nx\r\n",
		"cas k 0 0 1 7 junk\r\nx\r\n",
		"delete foo\r\n",
		"stats\r\n",
		"quit\r\n",
		"noop\r\n",
		"noop extra\r\n",
		"flush_all\r\n",
		"FLUSH_ALL\r\n",
		"flush_all 30\r\n",
		"set a 1 2 3\r\nxyz\r\nget a\r\ndelete a\r\nquit\r\n",
		// TTL pivots: never-expires, the relative/absolute boundary, and
		// immediate expiry via negative exptime.
		"set k 0 -1 1\r\nx\r\n",
		"set k 0 0 1\r\nx\r\n",
		"set k 0 2592000 1\r\nx\r\n",
		"set k 0 2592001 1\r\nx\r\n",
		// Violations that must stay recoverable.
		"set k 0 4294967296 1\r\n",
		"set k 0 18446744073709551616 1\r\n",
		"set k 0 - 1\r\n",
		"frobnicate\r\n",
		"get a  b\r\n",
		"get\r\n",
		"set k 0 0 nope\r\n",
		"set k 0 5\r\n",
		"set k 0 0 99999999999999999999\r\nx\r\n",
		// Truncations: mid-line, mid-header, mid-chunk, missing terminator.
		"get fo",
		"gets fo",
		"set bar 7 0 5",
		"set bar 7 0 5\r\nhel",
		"set bar 7 0 5\r\nhelloXY",
		"cas bar 7 0 5 4",
		"cas bar 7 0 5 42\r\nhel",
		"cas bar 7 0 5 42\r\nhelloXY",
		"\r\n",
		"\n",
		"",
		" \r\n",
		"get \x00\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		var req Request
		for i := 0; i <= len(data)+1; i++ {
			err := rd.Next(&req)
			if err == nil {
				switch req.Op {
				case OpGet, OpGets:
					if n := len(req.Keys); n < 1 || n > MaxGetKeys {
						t.Fatalf("accepted %v with %d keys", req.Op, n)
					}
					for _, k := range req.Keys {
						if !validKey(k) {
							t.Fatalf("accepted invalid key %q", k)
						}
					}
					if !bytes.Equal(req.Key, req.Keys[0]) {
						t.Fatalf("Key %q != Keys[0] %q", req.Key, req.Keys[0])
					}
				case OpDelete:
					if !validKey(req.Key) {
						t.Fatalf("accepted invalid key %q", req.Key)
					}
				case OpSet, OpCas:
					if !validKey(req.Key) {
						t.Fatalf("accepted invalid %v key %q", req.Op, req.Key)
					}
					if len(req.Value) > MaxValueBytes {
						t.Fatalf("accepted %d-byte value", len(req.Value))
					}
				case OpStats, OpQuit, OpNoop, OpFlushAll:
				default:
					t.Fatalf("parsed request with op %v", req.Op)
				}
				continue
			}
			var ce *ClientError
			if errors.As(err, &ce) {
				continue // resynchronized; keep going
			}
			// Fatal errors must be the documented ones.
			if err != io.EOF && err != io.ErrUnexpectedEOF && err != ErrCorrupt {
				t.Fatalf("undocumented fatal error: %v", err)
			}
			return
		}
		// Each iteration consumes at least one byte (a line or a chunk), so
		// len(data)+1 iterations without reaching an error means a stall.
		t.Fatalf("parser failed to terminate on %d-byte input", len(data))
	})
}
