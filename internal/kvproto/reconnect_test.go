package kvproto

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// flakyServer answers gets with END but kills every Nth connection after
// its first request, exercising the redial path. It serves until the
// listener closes.
func flakyServer(t *testing.T, killEvery int) (addr string, accepted *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := accepted.Add(1)
			go func(conn net.Conn, kill bool) {
				defer conn.Close()
				rd := NewReader(conn)
				var req Request
				for i := 0; ; i++ {
					conn.SetReadDeadline(time.Now().Add(5 * time.Second))
					if err := rd.Next(&req); err != nil {
						return
					}
					if kill && i == 0 {
						return // drop without replying: ambiguous for the client
					}
					switch req.Op {
					case OpGet:
						conn.Write([]byte("END\r\n"))
					case OpSet:
						conn.Write([]byte("STORED\r\n"))
					case OpQuit:
						return
					}
				}
			}(conn, killEvery > 0 && int(n)%killEvery == 1)
		}
	}()
	return ln.Addr().String(), accepted
}

// TestReconnectGetRetries: the first connection dies mid-get; the client
// must redial and complete the get transparently.
func TestReconnectGetRetries(t *testing.T) {
	addr, accepted := flakyServer(t, 2) // kills connections 1, 3, 5...
	rc := NewReconnect(addr, ReconnectConfig{
		ReadTimeout: 2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        9,
	})
	defer rc.Close()

	if _, ok, err := rc.Get([]byte("k")); err != nil || ok {
		t.Fatalf("Get through flaky server: ok=%v err=%v", ok, err)
	}
	if rc.Retries == 0 || rc.Redials < 2 {
		t.Fatalf("no retry happened: retries=%d redials=%d", rc.Retries, rc.Redials)
	}
	if accepted.Load() < 2 {
		t.Fatalf("server saw %d connections", accepted.Load())
	}
}

// TestReconnectSetAmbiguityNotReplayed: when the connection dies after a
// set was flushed, the client must surface ErrUnacked instead of
// replaying, and the next operation must transparently use a fresh
// connection.
func TestReconnectSetAmbiguityNotReplayed(t *testing.T) {
	addr, accepted := flakyServer(t, 2)
	rc := NewReconnect(addr, ReconnectConfig{
		ReadTimeout: 2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        10,
	})
	defer rc.Close()

	err := rc.Set([]byte("k"), 0, 0, []byte("v"))
	if !errors.Is(err, ErrUnacked) {
		t.Fatalf("want ErrUnacked, got %v", err)
	}
	before := accepted.Load()
	if err := rc.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
		t.Fatalf("set after reconnect: %v", err)
	}
	if accepted.Load() <= before {
		t.Fatal("second set did not use a fresh connection")
	}
}

// TestReconnectBusyRetried: a busy shed is not an acknowledgment — the
// client must back off and retry even for a set.
func TestReconnectBusyRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var n atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if n.Add(1) <= 2 {
				conn.Write(BusyLine)
				conn.Close()
				continue
			}
			go func(conn net.Conn) {
				defer conn.Close()
				rd := NewReader(conn)
				var req Request
				for {
					conn.SetReadDeadline(time.Now().Add(5 * time.Second))
					if err := rd.Next(&req); err != nil {
						return
					}
					if req.Op == OpSet {
						conn.Write([]byte("STORED\r\n"))
					} else {
						return
					}
				}
			}(conn)
		}
	}()

	rc := NewReconnect(ln.Addr().String(), ReconnectConfig{
		ReadTimeout: 2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        11,
	})
	defer rc.Close()
	if err := rc.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
		t.Fatalf("set through busy sheds: %v", err)
	}
	if n.Load() < 3 {
		t.Fatalf("server saw %d connections, want >= 3", n.Load())
	}
	if rc.Retries < 2 {
		t.Fatalf("retries=%d, want >= 2", rc.Retries)
	}
}

// TestReconnectExhaustion: a dead address fails after MaxAttempts with
// the last error wrapped, not an infinite loop.
func TestReconnectExhaustion(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	rc := NewReconnect(addr, ReconnectConfig{
		DialTimeout: 200 * time.Millisecond,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        12,
	})
	start := time.Now()
	if _, _, err := rc.Get([]byte("k")); err == nil {
		t.Fatal("get against dead address succeeded")
	}
	if rc.Retries != 2 {
		t.Fatalf("retries=%d, want 2 (MaxAttempts 3)", rc.Retries)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("exhaustion took too long")
	}
}

// TestBackoffDeterminismAndCap: the jittered schedule is reproducible for
// a seed and never exceeds MaxBackoff.
func TestBackoffDeterminismAndCap(t *testing.T) {
	sched := func(seed uint64) []time.Duration {
		rc := NewReconnect("unused", ReconnectConfig{
			BaseBackoff: time.Millisecond,
			MaxBackoff:  8 * time.Millisecond,
			Seed:        seed,
		})
		var out []time.Duration
		for n := 0; n < 8; n++ {
			start := time.Now()
			rc.backoff(n)
			out = append(out, time.Since(start))
		}
		return out
	}
	a, b := sched(21), sched(21)
	for i := range a {
		if a[i] > 8*time.Millisecond+50*time.Millisecond {
			t.Fatalf("backoff(%d) = %v exceeds cap (plus sleep slack)", i, a[i])
		}
		// Same seed must sleep within scheduling slack of the same target.
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 30*time.Millisecond {
			t.Fatalf("backoff(%d) not reproducible: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestReconnectCountersWired: the optional shared ReconnectCounters must
// mirror every outcome the client tallies — redials and retries on a
// flaky peer, Unacked on an ambiguous set, and Exhausted when an
// unreachable address runs the client out of attempts. Nil counter
// fields must be ignored.
func TestReconnectCountersWired(t *testing.T) {
	var redials, retries, unacked, exhausted metrics.Counter
	ctrs := &ReconnectCounters{
		Redials: &redials, Retries: &retries,
		Unacked: &unacked, Exhausted: &exhausted,
	}

	addr, _ := flakyServer(t, 2)
	rc := NewReconnect(addr, ReconnectConfig{
		ReadTimeout: 2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        11,
		Counters:    ctrs,
	})
	if _, _, err := rc.Get([]byte("k")); err != nil {
		t.Fatalf("get through flaky server: %v", err)
	}
	if redials.Load() != rc.Redials || redials.Load() < 2 {
		t.Errorf("shared redials %d, client %d (want equal, >= 2)", redials.Load(), rc.Redials)
	}
	if retries.Load() != rc.Retries || retries.Load() == 0 {
		t.Errorf("shared retries %d, client %d (want equal, > 0)", retries.Load(), rc.Retries)
	}
	// Force a fresh dial so the set lands on the next odd (doomed)
	// connection and becomes ambiguous.
	rc.drop()
	if err := rc.Set([]byte("k"), 0, 0, []byte("v")); !errors.Is(err, ErrUnacked) {
		t.Fatalf("want ErrUnacked, got %v", err)
	}
	if unacked.Load() != 1 || rc.Unacked != 1 {
		t.Errorf("unacked: shared %d, client %d, want 1", unacked.Load(), rc.Unacked)
	}
	rc.Close()

	// Unreachable peer: the same shared counters also see exhaustion.
	dead := NewReconnect("127.0.0.1:1", ReconnectConfig{
		DialTimeout: 100 * time.Millisecond,
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        12,
		Counters:    ctrs,
	})
	if _, _, err := dead.Get([]byte("k")); err == nil {
		t.Fatal("get against unreachable address succeeded")
	}
	if exhausted.Load() != 1 || dead.Exhausted != 1 {
		t.Errorf("exhausted: shared %d, client %d, want 1", exhausted.Load(), dead.Exhausted)
	}

	// Partially wired counters must not panic.
	partial := NewReconnect(addr, ReconnectConfig{
		ReadTimeout: 2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Counters:    &ReconnectCounters{Retries: &retries},
	})
	defer partial.Close()
	if _, _, err := partial.Get([]byte("k")); err != nil {
		t.Fatalf("get with partial counters: %v", err)
	}
}
