package kvproto

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// scriptServer accepts exactly one connection, optionally reads request
// bytes, writes a scripted reply, then runs the final action (close or
// hang). It returns the listener's address.
func scriptServer(t *testing.T, readRequest bool, reply string, hang bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if readRequest {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 1024)
			conn.Read(buf)
		}
		if reply != "" {
			conn.Write([]byte(reply))
		}
		if hang {
			time.Sleep(10 * time.Second) // outlives any test deadline
		}
		conn.Close()
	}()
	return ln.Addr().String()
}

// TestGetMidPipelineEOF: the peer dies mid-value — after the VALUE header
// but before the payload completes. The client must fail with a non-
// recoverable truncation error rather than block or misparse.
func TestGetMidPipelineEOF(t *testing.T) {
	addr := scriptServer(t, true, "VALUE k 0 10\r\nabc", false)
	c, err := DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseNow()

	_, _, err = c.Get([]byte("k"))
	if err == nil {
		t.Fatal("truncated value accepted")
	}
	if err != io.ErrUnexpectedEOF && err != io.EOF {
		t.Fatalf("want EOF-class error, got %v", err)
	}
	if Recoverable(err) {
		t.Fatalf("truncation classified recoverable: %v", err)
	}
}

// TestPipelinedRepliesEOF: two gets are pipelined, the peer answers one
// and closes. Reply one parses; reply two is a clean dead-stream error.
func TestPipelinedRepliesEOF(t *testing.T) {
	addr := scriptServer(t, true, "END\r\n", false)
	c, err := DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseNow()

	c.SendGet([]byte("a"))
	c.SendGet([]byte("b"))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.ReadGetReply(); err != nil || ok {
		t.Fatalf("first reply: ok=%v err=%v", ok, err)
	}
	_, _, err = c.ReadGetReply()
	if err != io.EOF && err != io.ErrUnexpectedEOF {
		t.Fatalf("second reply: want EOF, got %v", err)
	}
	if Recoverable(err) {
		t.Fatalf("mid-pipeline EOF classified recoverable: %v", err)
	}
}

// TestReadDeadlineExpiry: a silent peer must surface as a timeout within
// the configured read bound, not block forever.
func TestReadDeadlineExpiry(t *testing.T) {
	addr := scriptServer(t, true, "", true)
	c, err := DialTimeout(addr, 2*time.Second, 100*time.Millisecond, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseNow()

	start := time.Now()
	_, _, err = c.Get([]byte("k"))
	if err == nil {
		t.Fatal("read from silent peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if Recoverable(err) {
		t.Fatal("timeout classified recoverable")
	}
}

// TestErrorReplyClassification: well-formed error replies are typed and
// Recoverable; unknown lines are dead-stream errors.
func TestErrorReplyClassification(t *testing.T) {
	addr := scriptServer(t, true, "SERVER_ERROR busy\r\n", false)
	c, err := DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseNow()
	err = c.Set([]byte("k"), 0, 0, []byte("v"))
	var se *ServerError
	if !errors.As(err, &se) || se.Msg != "busy" {
		t.Fatalf("want ServerError busy, got %v", err)
	}
	if !IsBusy(err) || !Recoverable(err) {
		t.Fatalf("busy classification: IsBusy=%v Recoverable=%v", IsBusy(err), Recoverable(err))
	}

	addr = scriptServer(t, true, "CLIENT_ERROR invalid key\r\n", false)
	c2, err := DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.CloseNow()
	err = c2.Set([]byte("k"), 0, 0, []byte("v"))
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Msg != "invalid key" {
		t.Fatalf("want ClientError, got %v", err)
	}
	if !Recoverable(err) || IsBusy(err) {
		t.Fatalf("client-error classification: Recoverable=%v IsBusy=%v", Recoverable(err), IsBusy(err))
	}

	addr = scriptServer(t, true, "GARBAGE LINE\r\n", false)
	c3, err := DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.CloseNow()
	if err = c3.Set([]byte("k"), 0, 0, []byte("v")); err == nil || Recoverable(err) {
		t.Fatalf("garbage reply must be non-recoverable, got %v", err)
	}
}
