package kvproto

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
)

// ErrUnacked marks an operation whose request bytes may have reached the
// server but whose acknowledgment was never read: the operation may or
// may not have been applied. ReconnectClient never replays such
// operations — replaying a set or delete the server already applied would
// silently reorder writes, and a replayed winning cas would falsely
// report EXISTS — so the ambiguity is surfaced to the caller, who owns
// the idempotency decision.
var ErrUnacked = errors.New("kvproto: request sent but not acknowledged")

// ReconnectConfig tunes ReconnectClient's redial and retry behavior.
// Zero values take the defaults noted on each field.
type ReconnectConfig struct {
	DialTimeout  time.Duration // per-dial bound (default 2s)
	ReadTimeout  time.Duration // per-reply bound (default 5s)
	WriteTimeout time.Duration // per-flush bound (default 5s)

	MaxAttempts int           // attempts per operation, including the first (default 8)
	BaseBackoff time.Duration // first retry delay (default 5ms)
	MaxBackoff  time.Duration // backoff cap (default 500ms)
	Seed        uint64        // jitter seed; same seed, same backoff schedule

	// Counters, when non-nil, receives every outcome in addition to the
	// client's own tallies. Share one ReconnectCounters across many
	// clients to aggregate a whole fleet's retry behavior into one
	// metrics registry.
	Counters *ReconnectCounters
}

// ReconnectCounters aggregates retry outcomes across ReconnectClients.
// Individual fields may be nil (only the wired ones are counted); the
// counters are atomic, so clients on different goroutines may share one.
type ReconnectCounters struct {
	Redials   *metrics.Counter // connections (re)established
	Retries   *metrics.Counter // attempts beyond each operation's first
	Unacked   *metrics.Counter // sets/deletes abandoned as ErrUnacked
	Exhausted *metrics.Counter // operations that failed after MaxAttempts
}

func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (c ReconnectConfig) withDefaults() ReconnectConfig {
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 5 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
	return c
}

// ReconnectClient is a Client that survives a flaky peer: it redials on
// dead-stream errors with capped exponential backoff plus deterministic
// jitter, transparently retries idempotent operations (Get, Gets, Stats),
// and retries non-idempotent ones (Set, Delete, Cas) only while the
// request provably never reached processing (dial failure, SERVER_ERROR
// busy shed). Once a write becomes ambiguous it fails with ErrUnacked
// and the next operation runs on a fresh connection.
//
// Like Client, a ReconnectClient serves one goroutine.
type ReconnectClient struct {
	addr string
	cfg  ReconnectConfig
	c    *Client
	jit  uint64

	// Redials, Retries, Unacked, and Exhausted count connection
	// re-establishments, retried attempts, operations abandoned as
	// ErrUnacked, and operations that ran out of attempts — for
	// soak-driver reporting. ReconnectConfig.Counters mirrors them into
	// shared metrics.
	Redials   uint64
	Retries   uint64
	Unacked   uint64
	Exhausted uint64
}

func (rc *ReconnectClient) countRetry() {
	rc.Retries++
	if rc.cfg.Counters != nil {
		inc(rc.cfg.Counters.Retries)
	}
}

func (rc *ReconnectClient) countUnacked() {
	rc.Unacked++
	if rc.cfg.Counters != nil {
		inc(rc.cfg.Counters.Unacked)
	}
}

func (rc *ReconnectClient) countExhausted() {
	rc.Exhausted++
	if rc.cfg.Counters != nil {
		inc(rc.cfg.Counters.Exhausted)
	}
}

// NewReconnect builds a client for addr; the first connection is dialed
// lazily by the first operation.
func NewReconnect(addr string, cfg ReconnectConfig) *ReconnectClient {
	cfg = cfg.withDefaults()
	return &ReconnectClient{addr: addr, cfg: cfg, jit: cfg.Seed | 1}
}

// client returns the live connection, dialing if necessary.
func (rc *ReconnectClient) client() (*Client, error) {
	if rc.c != nil {
		return rc.c, nil
	}
	c, err := DialTimeout(rc.addr, rc.cfg.DialTimeout, rc.cfg.ReadTimeout, rc.cfg.WriteTimeout)
	if err != nil {
		return nil, err
	}
	rc.Redials++
	if rc.cfg.Counters != nil {
		inc(rc.cfg.Counters.Redials)
	}
	rc.c = c
	return c, nil
}

// drop discards a dead connection so the next operation redials.
func (rc *ReconnectClient) drop() {
	if rc.c != nil {
		rc.c.CloseNow()
		rc.c = nil
	}
}

// backoff sleeps for min(MaxBackoff, BaseBackoff<<n) with jitter drawn
// from a seeded xorshift stream: the delay lands in [d/2, d), decorrelating
// retry storms while keeping the schedule reproducible for a given seed.
func (rc *ReconnectClient) backoff(n int) {
	if n > 20 {
		n = 20
	}
	d := rc.cfg.BaseBackoff << n
	if d > rc.cfg.MaxBackoff || d <= 0 {
		d = rc.cfg.MaxBackoff
	}
	rc.jit ^= rc.jit << 13
	rc.jit ^= rc.jit >> 7
	rc.jit ^= rc.jit << 17
	time.Sleep(d/2 + time.Duration(rc.jit%uint64(d/2+1)))
}

// Get fetches key, retrying across connection failures: a get carries no
// state, so replaying it is always safe. The returned slice is valid
// until the next call. Recoverable protocol rejections (bad key) are
// returned immediately — retrying a malformed request cannot help.
func (rc *ReconnectClient) Get(key []byte) (val []byte, ok bool, err error) {
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err
			continue
		}
		val, ok, err = c.Get(key)
		if err == nil {
			return val, ok, nil
		}
		lastErr = err
		if Recoverable(err) && !IsBusy(err) {
			return nil, false, err
		}
		rc.drop() // busy shed or dead stream: fresh connection next time
	}
	rc.countExhausted()
	return nil, false, fmt.Errorf("kvproto: get failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Gets fetches key with its flags and cas unique, retried across
// connection failures like Get: a gets carries no state, so replaying it
// is always safe. The returned slice is valid until the next call.
func (rc *ReconnectClient) Gets(key []byte) (val []byte, flags uint32, casid uint64, ok bool, err error) {
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err
			continue
		}
		val, flags, casid, ok, err = c.Gets(key)
		if err == nil {
			return val, flags, casid, ok, nil
		}
		lastErr = err
		if Recoverable(err) && !IsBusy(err) {
			return nil, 0, 0, false, err
		}
		rc.drop()
	}
	rc.countExhausted()
	return nil, 0, 0, false, fmt.Errorf("kvproto: gets failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Cas swaps key's value iff its unique still equals casid, under the same
// never-replay contract as Set — and with more at stake: a replayed cas
// that the server had already applied would consume its own unique and
// come back EXISTS, reporting a false conflict for a swap that actually
// won. An ambiguous attempt therefore fails as ErrUnacked, never replays.
func (rc *ReconnectClient) Cas(key []byte, flags uint32, exptime int64, casid uint64, val []byte) (CasStatus, error) {
	exptime = AbsoluteExptime(exptime, time.Now())
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err // nothing sent: safe to retry
			continue
		}
		st, err := c.Cas(key, flags, exptime, casid, val)
		switch {
		case err == nil:
			return st, nil
		case IsBusy(err):
			rc.drop() // shed before processing: not applied, safe to retry
			lastErr = err
			continue
		case Recoverable(err):
			return CasNotFound, err // server rejected it; replaying cannot succeed
		default:
			rc.drop()
			rc.countUnacked()
			return CasNotFound, fmt.Errorf("%w (cas): %v", ErrUnacked, err)
		}
	}
	rc.countExhausted()
	return CasNotFound, fmt.Errorf("kvproto: cas failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Set stores val under key. Attempts are retried only while the request
// provably never ran (dial failure, busy shed). An I/O failure after the
// request may have been flushed returns ErrUnacked without replaying.
//
// A relative exptime is normalized to its absolute form once, before the
// first attempt, so retries carry the same deadline the original attempt
// would have set — a retry seconds later must not re-relativize the TTL
// and silently extend the value's life.
func (rc *ReconnectClient) Set(key []byte, flags uint32, exptime int64, val []byte) error {
	exptime = AbsoluteExptime(exptime, time.Now())
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err // nothing sent: safe to retry
			continue
		}
		err = c.Set(key, flags, exptime, val)
		switch {
		case err == nil:
			return nil
		case IsBusy(err):
			rc.drop() // shed before processing: not applied, safe to retry
			lastErr = err
			continue
		case Recoverable(err):
			return err // server rejected it; replaying cannot succeed
		default:
			rc.drop()
			rc.countUnacked()
			return fmt.Errorf("%w (set): %v", ErrUnacked, err)
		}
	}
	rc.countExhausted()
	return fmt.Errorf("kvproto: set failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Delete removes key, with the same non-replay contract as Set (a replayed
// delete could erase a newer concurrent write's visibility of state).
func (rc *ReconnectClient) Delete(key []byte) (bool, error) {
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err
			continue
		}
		found, err := c.Delete(key)
		switch {
		case err == nil:
			return found, nil
		case IsBusy(err):
			rc.drop()
			lastErr = err
			continue
		case Recoverable(err):
			return false, err
		default:
			rc.drop()
			rc.countUnacked()
			return false, fmt.Errorf("%w (delete): %v", ErrUnacked, err)
		}
	}
	rc.countExhausted()
	return false, fmt.Errorf("kvproto: delete failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// MultiGet fetches several keys (any count — requests are chunked at
// MaxGetKeys), retried across connection failures like Get: multi-key
// gets carry no state, so replaying the burst is always safe. Because a
// retry replays the whole burst, fn may be invoked more than once for
// the same index; callers must make the callback idempotent (last write
// wins is the natural contract). val aliases an internal buffer valid
// only until fn returns.
func (rc *ReconnectClient) MultiGet(keys [][]byte, fn func(i int, flags uint32, val []byte)) error {
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err
			continue
		}
		err = c.MultiGetChunked(keys, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		if Recoverable(err) && !IsBusy(err) {
			return err
		}
		rc.drop()
	}
	rc.countExhausted()
	return fmt.Errorf("kvproto: multiget failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Noop performs one empty round trip, retried like Get. Health probers
// typically run it with MaxAttempts 1: the prober owns the retry
// schedule, the client just reports whether this probe got through.
func (rc *ReconnectClient) Noop() error {
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err
			continue
		}
		err = c.Noop()
		if err == nil {
			return nil
		}
		lastErr = err
		if Recoverable(err) && !IsBusy(err) {
			return err
		}
		rc.drop()
	}
	rc.countExhausted()
	return fmt.Errorf("kvproto: noop failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// FlushAll drops every entry the peer holds, retried like Get: flushing
// is idempotent (flushing an already-empty cache changes nothing), so an
// ambiguous failure is safely replayed rather than surfaced as
// ErrUnacked.
func (rc *ReconnectClient) FlushAll() error {
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err
			continue
		}
		err = c.FlushAll()
		if err == nil {
			return nil
		}
		lastErr = err
		if Recoverable(err) && !IsBusy(err) {
			return err
		}
		rc.drop()
	}
	rc.countExhausted()
	return fmt.Errorf("kvproto: flush_all failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Stats fetches the server's STAT map, retried like Get (read-only).
func (rc *ReconnectClient) Stats() (map[string]string, error) {
	var lastErr error
	for a := 0; a < rc.cfg.MaxAttempts; a++ {
		if a > 0 {
			rc.countRetry()
			rc.backoff(a - 1)
		}
		c, err := rc.client()
		if err != nil {
			lastErr = err
			continue
		}
		st, err := c.Stats()
		if err == nil {
			return st, nil
		}
		lastErr = err
		if Recoverable(err) && !IsBusy(err) {
			return nil, err
		}
		rc.drop()
	}
	rc.countExhausted()
	return nil, fmt.Errorf("kvproto: stats failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Close shuts the live connection down, if any.
func (rc *ReconnectClient) Close() error {
	if rc.c == nil {
		return nil
	}
	err := rc.c.Close()
	rc.c = nil
	return err
}
