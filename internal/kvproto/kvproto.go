// Package kvproto implements the subset of the memcached text protocol
// spoken by cmd/adaptcached, cmd/kvrouter and cmd/kvloadgen: get
// (single- and multi-key "get k1 k2 ..."), gets (the same, with each
// VALUE line carrying the entry's 64-bit cas unique), set, cas
// (compare-and-swap against a unique obtained from gets, replying
// STORED, EXISTS, or NOT_FOUND), delete, stats, quit,
// a one-line noop used by health probes, and flush_all (full-cache
// invalidation, issued by the cluster before reintegrating a recovered
// node so it can never serve stale versions). Keys are
// printable ASCII up to 250 bytes; values are arbitrary bytes up to
// MaxValueBytes; set's flags are echoed back on get, and exptime
// carries memcached TTL semantics (0 = never expire, values up to 30
// days are relative seconds, larger values are an absolute unix time,
// negative means already expired) which the cache honors end to end.
//
// The server-side Reader reuses its buffers across requests: Request.Key,
// Request.Keys and Request.Value alias internal storage and are valid
// only until the next call to Next. Recoverable protocol violations (oversized line,
// unknown command, malformed header, oversized value) resynchronize the
// stream and return a *ClientError that the server reports without
// dropping the connection; any other error means the stream state is
// unknown and the connection must close.
package kvproto

import (
	"bufio"
	"errors"
	"io"
	"time"
)

// Protocol limits. MaxKeyBytes matches memcached; MaxValueBytes keeps one
// request's buffered value bounded.
const (
	MaxKeyBytes   = 250
	MaxValueBytes = 1 << 20
	// MaxGetKeys bounds the keys in one multi-key get; the command line
	// length cap bounds it again in practice.
	MaxGetKeys = 128
)

// Op identifies a request type.
type Op uint8

const (
	OpInvalid Op = iota
	OpGet
	OpSet
	OpDelete
	OpStats
	OpQuit
	OpNoop
	OpFlushAll
	OpGets
	OpCas
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpGets:
		return "gets"
	case OpSet:
		return "set"
	case OpCas:
		return "cas"
	case OpDelete:
		return "delete"
	case OpStats:
		return "stats"
	case OpQuit:
		return "quit"
	case OpNoop:
		return "noop"
	case OpFlushAll:
		return "flush_all"
	default:
		return "invalid"
	}
}

// Request is one parsed client request. Key, Keys and Value alias the
// Reader's internal buffers.
type Request struct {
	Op      Op
	Key     []byte   // first (or only) key
	Keys    [][]byte // OpGet/OpGets: every key on the line, in order (len ≥ 1)
	Value   []byte   // OpSet/OpCas only
	Flags   uint32   // OpSet/OpCas only; echoed back on get
	Exptime int64    // OpSet/OpCas only; memcached TTL semantics (see package doc)
	Cas     uint64   // OpCas only: the unique obtained from a prior gets
}

// ClientError is a recoverable protocol violation: the Reader has already
// resynchronized to the next line, so the server may report it (as a
// CLIENT_ERROR reply) and keep serving the connection.
type ClientError struct{ Msg string }

func (e *ClientError) Error() string { return "kvproto: client error: " + e.Msg }

// ServerError is a "SERVER_ERROR <msg>" reply: the server refused or
// failed the request (overload shed, admission bound), but the reply was
// a well-formed line, so the stream remains synchronized.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "kvproto: server error: " + e.Msg }

// BusyMsg is the ServerError message a shedding server rejects new
// connections with; the request was never processed, so retrying it on a
// fresh connection after backoff is always safe.
const BusyMsg = "busy"

// IsBusy reports whether err is the server's overload-shedding reply.
func IsBusy(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Msg == BusyMsg
}

// Recoverable classifies a client-side error: true means the reply was a
// well-formed error line (*ClientError or *ServerError) and the
// connection is still synchronized and usable; false means the stream is
// dead (I/O failure, timeout, truncated or desynchronized reply) and the
// connection must be discarded.
func Recoverable(err error) bool {
	return errors.As(err, new(*ClientError)) || errors.As(err, new(*ServerError))
}

// RelativeLimit is the memcached TTL pivot: an exptime at or below 30
// days of seconds is relative to now, anything larger is an absolute
// unix time.
const RelativeLimit = 60 * 60 * 24 * 30

// AbsoluteExptime normalizes an exptime to its absolute form: 0 stays 0
// (never expires), any negative collapses to -1 (already expired), a
// relative value becomes now's unix time plus the offset, and an
// already-absolute value passes through unchanged. The function is
// idempotent — a normalized value above RelativeLimit re-normalizes to
// itself — so a retry or a replica fan-out can normalize again without
// re-relativizing the deadline.
func AbsoluteExptime(exptime int64, now time.Time) int64 {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return -1
	case exptime <= RelativeLimit:
		return now.Unix() + exptime
	default:
		return exptime
	}
}

// DeadlineNanos converts an exptime to the unix-nanosecond deadline the
// cache stores: 0 means never, any negative yields 1 (a deadline in the
// distant past, i.e. already expired), and positive values resolve per
// the RelativeLimit pivot. Exptime magnitudes are bounded to 32 bits by
// parseSet, so the nanosecond conversion cannot overflow int64.
func DeadlineNanos(exptime int64, now time.Time) int64 {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1
	case exptime <= RelativeLimit:
		return now.Add(time.Duration(exptime) * time.Second).UnixNano()
	default:
		return exptime * int64(time.Second)
	}
}

// Pre-built recoverable errors for the non-parameterized violations, so
// the hot parse path does not allocate to reject garbage.
var (
	errUnknownCommand = &ClientError{Msg: "unknown command"}
	errBadCommandLine = &ClientError{Msg: "malformed command line"}
	errLineTooLong    = &ClientError{Msg: "command line too long"}
	errBadKey         = &ClientError{Msg: "invalid key"}
	errTooManyKeys    = &ClientError{Msg: "too many keys"}
	errObjectTooLarge = &ClientError{Msg: "object too large"}
)

// ErrCorrupt means the stream cannot be resynchronized (a set's data chunk
// did not end in CRLF); the connection must close.
var ErrCorrupt = errors.New("kvproto: corrupt stream")

// Reader parses requests from a connection.
type Reader struct {
	br   *bufio.Reader
	val  []byte   // reusable value buffer for OpSet
	keys [][]byte // reusable key-slice buffer for OpGet
}

// NewReader wraps r. The internal buffer comfortably holds a maximal
// command line (key 250 bytes plus numeric fields).
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1024)}
}

// Reset repoints the Reader at a new connection, retaining buffers.
func (rd *Reader) Reset(r io.Reader) { rd.br.Reset(r) }

// Buffered returns the number of request bytes already read from the
// connection but not yet parsed. A server can elide the reply flush while
// this is non-zero: the client is pipelining and cannot be blocked on this
// reply, so replies batch up and go out in one write.
func (rd *Reader) Buffered() int { return rd.br.Buffered() }

// readLine returns the next CRLF- (or bare LF-) terminated line without its
// terminator. An over-long line is consumed to its end and reported as
// errLineTooLong, leaving the stream synchronized.
func (rd *Reader) readLine() ([]byte, error) {
	line, err := rd.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		for err == bufio.ErrBufferFull {
			_, err = rd.br.ReadSlice('\n')
		}
		if err != nil {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, errLineTooLong
	}
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF: clean close between requests
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// nextField splits the leading space-delimited field off line. Consecutive
// spaces delimit empty fields, which every caller rejects as malformed.
func nextField(line []byte) (field, rest []byte) {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' {
			return line[:i], line[i+1:]
		}
	}
	return line, nil
}

// parseUint is an allocation-free decimal parser with overflow checking.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// validKey enforces the protocol's key shape: 1..MaxKeyBytes printable
// non-space ASCII bytes. (Spaces are structurally impossible — they
// delimit fields — but control bytes must be rejected explicitly.)
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > MaxKeyBytes {
		return false
	}
	for _, c := range k {
		if c <= ' ' || c == 0x7f {
			return false
		}
	}
	return true
}

// commandIs reports whether b equals cmd ASCII-case-insensitively. Commands
// are short, so a byte loop beats any allocating fold.
func commandIs(b []byte, cmd string) bool {
	if len(b) != len(cmd) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != cmd[i] {
			return false
		}
	}
	return true
}

// Next parses one request into req. It returns io.EOF on clean connection
// close, a *ClientError for recoverable violations (stream already
// resynchronized), and ErrCorrupt or an I/O error when the connection must
// close. req's slices are valid until the next call.
func (rd *Reader) Next(req *Request) error {
	*req = Request{}
	line, err := rd.readLine()
	if err != nil {
		return err
	}
	cmd, rest := nextField(line)
	switch {
	case commandIs(cmd, "get"):
		req.Op = OpGet
		return rd.parseKeys(req, rest)

	case commandIs(cmd, "gets"):
		req.Op = OpGets
		return rd.parseKeys(req, rest)

	case commandIs(cmd, "delete"):
		req.Op = OpDelete
		key, tail := nextField(rest)
		if len(tail) != 0 || !validKey(key) {
			return errBadKey
		}
		req.Key = key
		return nil

	case commandIs(cmd, "set"):
		req.Op = OpSet
		return rd.parseStore(req, rest, false)

	case commandIs(cmd, "cas"):
		req.Op = OpCas
		return rd.parseStore(req, rest, true)

	case commandIs(cmd, "stats"):
		if len(rest) != 0 {
			return errBadCommandLine
		}
		req.Op = OpStats
		return nil

	case commandIs(cmd, "quit"):
		if len(rest) != 0 {
			return errBadCommandLine
		}
		req.Op = OpQuit
		return nil

	case commandIs(cmd, "noop"):
		if len(rest) != 0 {
			return errBadCommandLine
		}
		req.Op = OpNoop
		return nil

	case commandIs(cmd, "flush_all"):
		// memcached's optional delay argument is not supported: a cache
		// whose reintegration safety depends on flush_all must not be
		// able to schedule the flush for later.
		if len(rest) != 0 {
			return errBadCommandLine
		}
		req.Op = OpFlushAll
		return nil

	default:
		return errUnknownCommand
	}
}

// parseKeys handles the key list shared by "get" and "gets": one or more
// space-delimited keys, each validated, capped at MaxGetKeys.
func (rd *Reader) parseKeys(req *Request, rest []byte) error {
	keys := rd.keys[:0]
	for {
		key, tail := nextField(rest)
		if !validKey(key) {
			return errBadKey
		}
		if len(keys) == MaxGetKeys {
			return errTooManyKeys
		}
		keys = append(keys, key)
		if len(tail) == 0 {
			break
		}
		rest = tail
	}
	rd.keys = keys
	req.Key = keys[0]
	req.Keys = keys
	return nil
}

// parseStore handles "set <key> <flags> <exptime> <bytes>" and
// "cas <key> <flags> <exptime> <bytes> <casid>" plus the following data
// chunk. exptime follows memcached: 0 never expires, magnitudes up to 32
// bits are accepted (relative seconds up to RelativeLimit, absolute unix
// time above it), and an optional leading '-' marks the value already
// expired. The cas unique is a full 64-bit decimal; overflow, a missing
// field, or trailing junk reject the line before any chunk is consumed.
// On an oversized value the chunk is drained so the error is recoverable;
// on a missing CRLF terminator the stream is corrupt.
func (rd *Reader) parseStore(req *Request, rest []byte, wantCas bool) error {
	key, rest := nextField(rest)
	flagsB, rest := nextField(rest)
	exptimeB, rest := nextField(rest)
	bytesB, tail := nextField(rest)
	var casB []byte
	if wantCas {
		casB, tail = nextField(tail)
	}
	if len(tail) != 0 {
		return errBadCommandLine
	}
	negExp := false
	if len(exptimeB) > 1 && exptimeB[0] == '-' {
		negExp = true
		exptimeB = exptimeB[1:]
	}
	flags, okF := parseUint(flagsB)
	exptime, okE := parseUint(exptimeB)
	size, okB := parseUint(bytesB)
	if !okF || !okE || !okB || flags > 0xffffffff || exptime > 0xffffffff {
		return errBadCommandLine
	}
	var casid uint64
	if wantCas {
		var okC bool
		casid, okC = parseUint(casB)
		if !okC {
			return errBadCommandLine
		}
	}
	keyOK := validKey(key)
	if !keyOK || size > MaxValueBytes {
		// Drain the data chunk so the violation stays recoverable.
		if err := rd.discard(int64(size) + 2); err != nil {
			return err
		}
		if !keyOK {
			return errBadKey
		}
		return errObjectTooLarge
	}
	if cap(rd.val) < int(size)+2 {
		rd.val = make([]byte, size+2)
	}
	buf := rd.val[:size+2]
	if _, err := io.ReadFull(rd.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if buf[size] != '\r' || buf[size+1] != '\n' {
		return ErrCorrupt
	}
	req.Key = key
	req.Flags = uint32(flags)
	req.Exptime = int64(exptime)
	if negExp {
		req.Exptime = -req.Exptime
	}
	req.Value = buf[:size]
	req.Cas = casid
	return nil
}

// discard consumes n bytes, mapping EOF to ErrUnexpectedEOF.
func (rd *Reader) discard(n int64) error {
	if _, err := rd.br.Discard(int(n)); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// --- Reply writing ---------------------------------------------------------

// Canonical reply lines.
var (
	replyEnd       = []byte("END\r\n")
	replyNoop      = []byte("NOOP\r\n")
	replyOk        = []byte("OK\r\n")
	replyStored    = []byte("STORED\r\n")
	replyExists    = []byte("EXISTS\r\n")
	replyDeleted   = []byte("DELETED\r\n")
	replyNotFound  = []byte("NOT_FOUND\r\n")
	replyError     = []byte("ERROR\r\n")
	crlf           = []byte("\r\n")
	valuePrefix    = []byte("VALUE ")
	statPrefix     = []byte("STAT ")
	clientErrorPfx = []byte("CLIENT_ERROR ")
	serverErrorPfx = []byte("SERVER_ERROR ")
)

// BusyLine is the raw overload-shedding reply, for servers that must
// write it before any bufio machinery exists (shed at accept time).
var BusyLine = []byte("SERVER_ERROR " + BusyMsg + "\r\n")

// WriteValue writes "VALUE <key> <flags> <len>\r\n<val>\r\n". The caller
// terminates the get response with WriteEnd.
func WriteValue(w *bufio.Writer, key []byte, flags uint32, val []byte) {
	w.Write(valuePrefix)
	w.Write(key)
	w.WriteByte(' ')
	writeUint(w, uint64(flags))
	w.WriteByte(' ')
	writeUint(w, uint64(len(val)))
	w.Write(crlf)
	w.Write(val)
	w.Write(crlf)
}

// WriteValueString is WriteValue for servers holding the key as a
// string (batched dispatch copies keys out of the parse buffers).
func WriteValueString(w *bufio.Writer, key string, flags uint32, val []byte) {
	w.Write(valuePrefix)
	w.WriteString(key)
	w.WriteByte(' ')
	writeUint(w, uint64(flags))
	w.WriteByte(' ')
	writeUint(w, uint64(len(val)))
	w.Write(crlf)
	w.Write(val)
	w.Write(crlf)
}

// WriteValueCas writes "VALUE <key> <flags> <len> <casid>\r\n<val>\r\n" —
// the gets reply form, carrying the entry's cas unique. The caller
// terminates the response with WriteEnd.
func WriteValueCas(w *bufio.Writer, key []byte, flags uint32, casid uint64, val []byte) {
	w.Write(valuePrefix)
	w.Write(key)
	w.WriteByte(' ')
	writeUint(w, uint64(flags))
	w.WriteByte(' ')
	writeUint(w, uint64(len(val)))
	w.WriteByte(' ')
	writeUint(w, casid)
	w.Write(crlf)
	w.Write(val)
	w.Write(crlf)
}

// WriteValueCasString is WriteValueCas for servers holding the key as a
// string (batched dispatch copies keys out of the parse buffers).
func WriteValueCasString(w *bufio.Writer, key string, flags uint32, casid uint64, val []byte) {
	w.Write(valuePrefix)
	w.WriteString(key)
	w.WriteByte(' ')
	writeUint(w, uint64(flags))
	w.WriteByte(' ')
	writeUint(w, uint64(len(val)))
	w.WriteByte(' ')
	writeUint(w, casid)
	w.Write(crlf)
	w.Write(val)
	w.Write(crlf)
}

// AppendValueHeader appends "VALUE <key> <flags> <n>\r\n" to dst and
// returns the extended slice. Servers shipping large values via
// vectored writes build the header in caller-pooled scratch with this
// instead of copying the payload through a bufio.Writer.
func AppendValueHeader(dst []byte, key string, flags uint32, n int) []byte {
	dst = append(dst, valuePrefix...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = appendUint(dst, uint64(flags))
	dst = append(dst, ' ')
	dst = appendUint(dst, uint64(n))
	return append(dst, crlf...)
}

// AppendValueCasHeader is AppendValueHeader with the cas unique as the
// fourth field — the gets reply form, for vectored writes.
func AppendValueCasHeader(dst []byte, key string, flags uint32, n int, casid uint64) []byte {
	dst = append(dst, valuePrefix...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = appendUint(dst, uint64(flags))
	dst = append(dst, ' ')
	dst = appendUint(dst, uint64(n))
	dst = append(dst, ' ')
	dst = appendUint(dst, casid)
	return append(dst, crlf...)
}

// EndLine is the raw "END\r\n" terminator, for vectored get replies.
var EndLine = replyEnd

// CRLF is the raw value terminator, for vectored get replies.
var CRLF = crlf

// WriteEnd terminates a get or stats response.
func WriteEnd(w *bufio.Writer) { w.Write(replyEnd) }

// WriteNoop answers a noop: one line, no allocation, no cache touch. It
// exists so health probes cost a single line round-trip instead of a
// full stats map.
func WriteNoop(w *bufio.Writer) { w.Write(replyNoop) }

// WriteOk acknowledges a flush_all.
func WriteOk(w *bufio.Writer) { w.Write(replyOk) }

// WriteStored acknowledges a set (or a winning cas).
func WriteStored(w *bufio.Writer) { w.Write(replyStored) }

// WriteExists answers a cas whose unique no longer matches: the entry was
// modified since the gets that produced the id.
func WriteExists(w *bufio.Writer) { w.Write(replyExists) }

// WriteDeleted acknowledges a successful delete.
func WriteDeleted(w *bufio.Writer) { w.Write(replyDeleted) }

// WriteNotFound answers a delete of an absent key.
func WriteNotFound(w *bufio.Writer) { w.Write(replyNotFound) }

// WriteError reports an unknown command.
func WriteError(w *bufio.Writer) { w.Write(replyError) }

// WriteClientError reports a recoverable protocol violation.
func WriteClientError(w *bufio.Writer, msg string) {
	w.Write(clientErrorPfx)
	w.WriteString(msg)
	w.Write(crlf)
}

// WriteServerError reports a server-side refusal (shed, admission bound)
// on an otherwise healthy stream.
func WriteServerError(w *bufio.Writer, msg string) {
	w.Write(serverErrorPfx)
	w.WriteString(msg)
	w.Write(crlf)
}

// WriteStat writes one "STAT <name> <value>\r\n" line.
func WriteStat(w *bufio.Writer, name string, value uint64) {
	w.Write(statPrefix)
	w.WriteString(name)
	w.WriteByte(' ')
	writeUint(w, value)
	w.Write(crlf)
}

// WriteStatStr writes one "STAT <name> <value>\r\n" line with a string
// value (hit ratios, policy names).
func WriteStatStr(w *bufio.Writer, name, value string) {
	w.Write(statPrefix)
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(value)
	w.Write(crlf)
}

// writeUint renders n in decimal without allocating.
func writeUint(w *bufio.Writer, n uint64) {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	w.Write(buf[i:])
}

// writeInt renders n in signed decimal without allocating (client-side
// exptime serialization; negative exptimes mean already expired).
func writeInt(w *bufio.Writer, n int64) {
	if n < 0 {
		w.WriteByte('-')
		writeUint(w, uint64(-n))
		return
	}
	writeUint(w, uint64(n))
}

// appendUint renders n in decimal onto dst without allocating.
func appendUint(dst []byte, n uint64) []byte {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// formatUint is writeUint for callers building strings (client side).
func formatUint(n uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:])
}
