package verify_test

import (
	"fmt"

	"repro/internal/verify"
)

func ExampleExhaustive() {
	// Check the 2x bound on EVERY trace of length 6 over 3 blocks
	// against a 2-way set managed by adaptive LRU/LFU.
	res, violation := verify.Exhaustive(verify.Config{Ways: 2, Blocks: 3, Length: 6})
	fmt.Println("traces checked:", res.Checked, "violation:", violation != nil)
	// Output: traces checked: 729 violation: false
}
