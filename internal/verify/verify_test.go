package verify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

func comps(names ...string) []core.ComponentFactory {
	out := make([]core.ComponentFactory, len(names))
	for i, n := range names {
		f := policy.MustByName(n)
		out[i] = core.ComponentFactory(f)
	}
	return out
}

// TestExhaustiveSmallLRULFU model-checks the 2x bound over every trace of
// length 9 on 3 blocks against a 2-way set — 19683 traces.
func TestExhaustiveSmallLRULFU(t *testing.T) {
	res, v := Exhaustive(Config{Ways: 2, Blocks: 3, Length: 9})
	if v != nil {
		t.Fatal(v)
	}
	if res.Checked != 19683 {
		t.Fatalf("checked %d traces, want 3^9", res.Checked)
	}
	if res.WorstRatio <= 0 {
		t.Fatal("no trace produced a nonzero best-component miss count")
	}
	t.Logf("worst adaptive/best ratio %.2f on %v", res.WorstRatio, res.WorstTrace)
}

// TestExhaustivePolicyPairs checks the bound for every ordered pair of
// deterministic standard policies at small bounds.
func TestExhaustivePolicyPairs(t *testing.T) {
	names := []string{"LRU", "LFU", "FIFO", "MRU"}
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			cfg := Config{Ways: 2, Blocks: 3, Length: 7, Components: comps(a, b)}
			if _, v := Exhaustive(cfg); v != nil {
				t.Errorf("%s/%s: %v", a, b, v)
			}
		}
	}
}

// TestExhaustiveThreeWay widens the set to 3 ways and 4 blocks at a
// shorter length (4^6 = 4096 traces).
func TestExhaustiveThreeWay(t *testing.T) {
	if _, v := Exhaustive(Config{Ways: 3, Blocks: 4, Length: 6}); v != nil {
		t.Fatal(v)
	}
}

// TestRandomLongTraces drives long random traces where exhaustion is
// impossible; the bound must still hold.
func TestRandomLongTraces(t *testing.T) {
	cfg := Config{Ways: 4, Blocks: 9, Length: 800}
	res, v := Random(cfg, 300, 42)
	if v != nil {
		t.Fatal(v)
	}
	if res.Checked != 300 {
		t.Fatalf("checked %d", res.Checked)
	}
	// Long traces amortize the cold start: the observed ratio should be
	// comfortably below the 2x bound plus slack.
	if res.WorstRatio > 2.5 {
		t.Errorf("worst ratio %.2f suspiciously close to the bound on random traces", res.WorstRatio)
	}
}

// TestTightBoundViolated demonstrates the checker can actually find
// violations (it is not vacuous): a deliberately too-tight 1x+1 bound over
// the strongly divergent LRU/MRU pair must fail on some trace.
func TestTightBoundViolated(t *testing.T) {
	_, v := Exhaustive(Config{Ways: 2, Blocks: 3, Length: 10, Factor: 1, Slack: 1,
		Components: comps("LRU", "MRU")})
	if v == nil {
		t.Fatal("no violation of the (deliberately too tight) 1x+1 bound found; checker may be vacuous")
	}
	if v.AdaptiveMisses <= v.BestMisses {
		t.Fatalf("violation %+v does not show adaptive above best", v)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for i, cfg := range []Config{
		{Ways: 1, Blocks: 3, Length: 2},
		{Ways: 2, Blocks: 2, Length: 2},
		{Ways: 2, Blocks: 3, Length: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			Exhaustive(cfg)
		}()
	}
}

// TestDefaultComponentsAreLRULFU pins the helper the checker relies on.
func TestDefaultComponentsAreLRULFU(t *testing.T) {
	cs := core.DefaultComponents()
	if len(cs) != 2 {
		t.Fatalf("%d default components", len(cs))
	}
	if cs[0]().Name() != "LRU" || cs[1]().Name() != "LFU" {
		t.Fatalf("default components %s/%s", cs[0]().Name(), cs[1]().Name())
	}
	lfu := cs[1]().(*policy.LFU)
	if lfu.Bits() != policy.DefaultLFUBits {
		t.Fatalf("default LFU bits %d", lfu.Bits())
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Trace: []int{1, 2}, AdaptiveMisses: 9, BestMisses: 3, Bound: 8}
	if v.Error() == "" {
		t.Fatal("empty error text")
	}
}
