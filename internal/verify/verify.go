// Package verify mechanically checks the paper's Appendix result: with
// integer miss counters and full tags, the adaptive policy suffers at most
// twice the misses of the better component policy (plus a cold-start
// additive term). Rather than trusting sampled traces, Exhaustive
// enumerates EVERY reference trace of a given length over a small block
// universe against a single cache set — a bounded model check of the
// theorem. cmd/verifybound exposes it as a tool; internal tests run it at
// small bounds on every `go test`.
package verify

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/history"
)

// Config bounds one exhaustive check.
type Config struct {
	Ways   int // cache associativity (single set)
	Blocks int // block universe size; must exceed Ways to force evictions
	Length int // trace length; Blocks^Length traces are enumerated

	// Components builds the component policies (at least two); nil
	// selects the paper's LRU/LFU pair.
	Components []core.ComponentFactory

	// Slack is the additive term allowed on top of 2x: the proof's
	// accounting differs from an empty-cache start by at most O(ways)
	// misses. Zero selects 2*Ways.
	Slack uint64

	// Factor overrides the multiplicative bound (default 2).
	Factor uint64
}

func (c Config) withDefaults() Config {
	if c.Slack == 0 {
		c.Slack = 2 * uint64(c.Ways)
	}
	if c.Factor == 0 {
		c.Factor = 2
	}
	return c
}

// Violation reports a trace that broke the bound.
type Violation struct {
	Trace          []int
	AdaptiveMisses uint64
	BestMisses     uint64
	Bound          uint64
}

func (v *Violation) Error() string {
	return fmt.Sprintf("verify: trace %v: adaptive misses %d exceed bound %d (best component %d)",
		v.Trace, v.AdaptiveMisses, v.Bound, v.BestMisses)
}

// Result summarizes an exhaustive check.
type Result struct {
	Checked    uint64
	WorstRatio float64 // max adaptive/best over all traces with best > 0
	WorstTrace []int
}

// Exhaustive enumerates all Blocks^Length traces and checks the bound on
// each, returning a summary or the first violation found.
func Exhaustive(cfg Config) (Result, *Violation) {
	cfg = cfg.withDefaults()
	if cfg.Ways < 2 || cfg.Blocks <= cfg.Ways || cfg.Length < 1 {
		panic("verify: need Ways >= 2, Blocks > Ways, Length >= 1")
	}
	comps := cfg.Components
	if comps == nil {
		comps = core.DefaultComponents()
	}

	g := cache.Geometry{SizeBytes: cfg.Ways * 64, LineBytes: 64, Ways: cfg.Ways}
	ad := core.NewAdaptive(comps, core.WithHistory(history.NewCounters()))
	c := cache.New(g, ad)

	trace := make([]int, cfg.Length)
	res := Result{}
	for {
		c.Reset()
		for _, b := range trace {
			c.Access(cache.Addr(b*64), false)
		}
		am := c.Stats().Misses
		best := ad.Shadow(0).Stats().Misses
		for k := 1; k < len(comps); k++ {
			if m := ad.Shadow(k).Stats().Misses; m < best {
				best = m
			}
		}
		res.Checked++
		bound := cfg.Factor*best + cfg.Slack
		if am > bound {
			return res, &Violation{
				Trace:          append([]int(nil), trace...),
				AdaptiveMisses: am,
				BestMisses:     best,
				Bound:          bound,
			}
		}
		if best > 0 {
			if r := float64(am) / float64(best); r > res.WorstRatio {
				res.WorstRatio = r
				res.WorstTrace = append(res.WorstTrace[:0], trace...)
			}
		}

		// Next trace in lexicographic order.
		i := cfg.Length - 1
		for ; i >= 0; i-- {
			trace[i]++
			if trace[i] < cfg.Blocks {
				break
			}
			trace[i] = 0
		}
		if i < 0 {
			return res, nil
		}
	}
}

// Random checks n pseudo-random traces of the given length instead of all
// of them — the same bound at scales exhaustion cannot reach.
func Random(cfg Config, n int, seed uint64) (Result, *Violation) {
	cfg = cfg.withDefaults()
	comps := cfg.Components
	if comps == nil {
		comps = core.DefaultComponents()
	}
	g := cache.Geometry{SizeBytes: cfg.Ways * 64, LineBytes: 64, Ways: cfg.Ways}
	ad := core.NewAdaptive(comps, core.WithHistory(history.NewCounters()))
	c := cache.New(g, ad)

	if seed == 0 {
		seed = 1
	}
	rng := seed
	trace := make([]int, cfg.Length)
	res := Result{}
	for t := 0; t < n; t++ {
		for i := range trace {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			trace[i] = int((rng >> 11) % uint64(cfg.Blocks))
		}
		c.Reset()
		for _, b := range trace {
			c.Access(cache.Addr(b*64), false)
		}
		am := c.Stats().Misses
		best := ad.Shadow(0).Stats().Misses
		for k := 1; k < len(comps); k++ {
			if m := ad.Shadow(k).Stats().Misses; m < best {
				best = m
			}
		}
		res.Checked++
		if bound := cfg.Factor*best + cfg.Slack; am > bound {
			return res, &Violation{
				Trace:          append([]int(nil), trace...),
				AdaptiveMisses: am,
				BestMisses:     best,
				Bound:          bound,
			}
		}
		if best > 0 {
			if r := float64(am) / float64(best); r > res.WorstRatio {
				res.WorstRatio = r
				res.WorstTrace = append(res.WorstTrace[:0], trace...)
			}
		}
	}
	return res, nil
}
