package kvcluster

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/adaptivekv"
	"repro/internal/fleet"
	"repro/internal/kvproto"
	"repro/internal/kvserver"
)

func nodeConfig() fleet.NodeConfig {
	// Big enough that the test working set never evicts: replies are then
	// a pure function of the set sequence, which the byte-exact oracle
	// comparison depends on.
	return fleet.NodeConfig{Server: kvserver.Config{
		Cache: adaptivekv.Config{Shards: 2, Sets: 256, Ways: 8},
	}}
}

// routedCluster brings up n cache nodes, a Cluster over them, and a
// Router listening on loopback. Probers are not started: tests flip
// health by hand so outcomes stay deterministic.
func routedCluster(t *testing.T, n int) (*fleet.Fleet, *Cluster, string) {
	t.Helper()
	f, err := fleet.Start(n, func(int) fleet.NodeConfig { return nodeConfig() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	cl, err := New(Config{Nodes: f.Addrs(), Seed: 42, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	r := NewRouter(cl, RouterConfig{WriteTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Shutdown(ln, time.Second) })
	return f, cl, ln.Addr().String()
}

// oracleNode brings up one cache node and returns its address.
func oracleNode(t *testing.T) string {
	t.Helper()
	n, err := fleet.StartNode(nodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n.Addr()
}

// testCorpus is the byte-exact working set: every third key is a miss,
// flags vary, values are CRLF-free so replies split cleanly on lines.
func testCorpus(n int) (keys [][]byte, vals map[string][]byte, flags map[string]uint32) {
	keys = make([][]byte, n)
	vals = make(map[string][]byte, n)
	flags = make(map[string]uint32, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bk-%05d", i))
		if i%3 != 0 {
			vals[string(keys[i])] = []byte(fmt.Sprintf("value-%d", i))
			flags[string(keys[i])] = uint32(i % 5)
		}
	}
	return keys, vals, flags
}

func loadCorpus(t *testing.T, addr string, keys [][]byte, vals map[string][]byte, flags map[string]uint32) {
	t.Helper()
	c, err := kvproto.DialTimeout(addr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, k := range keys {
		v, ok := vals[string(k)]
		if !ok {
			continue
		}
		if err := c.Set(k, flags[string(k)], 0, v); err != nil {
			t.Fatalf("set %q: %v", k, err)
		}
	}
}

// rawBurst writes req bytes to addr and reads reply lines until
// wantTerms terminator lines (END or SERVER_ERROR/ERROR) have arrived,
// returning the raw reply bytes. Test values never contain CRLF, so
// line framing is unambiguous.
func rawBurst(t *testing.T, addr, req string, wantTerms int) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	br := bufio.NewReader(conn)
	terms := 0
	for terms < wantTerms {
		line, err := br.ReadString('\n')
		raw.WriteString(line)
		if err != nil {
			t.Fatalf("reply truncated after %q: %v", raw.String(), err)
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "END" || trimmed == "ERROR" ||
			strings.HasPrefix(trimmed, "SERVER_ERROR") ||
			strings.HasPrefix(trimmed, "CLIENT_ERROR") ||
			trimmed == "STORED" || trimmed == "EXISTS" || trimmed == "DELETED" ||
			trimmed == "NOT_FOUND" || trimmed == "OK" {
			terms++
		}
	}
	return raw.Bytes()
}

// TestRouterMultiGetByteExact: a scatter-gathered multiget through the
// 3-node router produces byte-for-byte the reply a single node holding
// the whole corpus produces — same VALUE blocks, same order, same
// terminator — including when the burst is pipelined.
func TestRouterMultiGetByteExact(t *testing.T) {
	_, _, routerAddr := routedCluster(t, 3)
	oracle := oracleNode(t)
	keys, vals, flags := testCorpus(96)
	loadCorpus(t, routerAddr, keys, vals, flags)
	loadCorpus(t, oracle, keys, vals, flags)

	// One full-width multiget plus a pipelined pair of smaller ones.
	var sb strings.Builder
	sb.WriteString("get")
	for _, k := range keys[:48] {
		sb.WriteByte(' ')
		sb.Write(k)
	}
	sb.WriteString("\r\nget")
	for _, k := range keys[48:80] {
		sb.WriteByte(' ')
		sb.Write(k)
	}
	sb.WriteString("\r\nget ")
	sb.Write(keys[81])
	sb.WriteString("\r\n")
	req := sb.String()

	got := rawBurst(t, routerAddr, req, 3)
	want := rawBurst(t, oracle, req, 3)
	if !bytes.Equal(got, want) {
		t.Fatalf("router reply differs from oracle:\nrouter: %q\noracle: %q", got, want)
	}
	if !bytes.Contains(got, []byte("VALUE ")) {
		t.Fatal("reply contained no VALUE blocks; corpus not loaded?")
	}
}

// getsRec is one parsed VALUE block of a gets reply.
type getsRec struct {
	key   string
	flags uint32
	casid uint64
	val   string
}

// parseGetsReply splits a raw gets reply into its VALUE records and the
// terminator line. Test values never contain CRLF, so line framing is
// unambiguous.
func parseGetsReply(t *testing.T, raw []byte) ([]getsRec, string) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(string(raw), "\r\n"), "\r\n")
	var recs []getsRec
	for i := 0; i < len(lines); i++ {
		ln := lines[i]
		if !strings.HasPrefix(ln, "VALUE ") {
			return recs, ln
		}
		var rec getsRec
		var size int
		if _, err := fmt.Sscanf(ln, "VALUE %s %d %d %d", &rec.key, &rec.flags, &size, &rec.casid); err != nil {
			t.Fatalf("bad gets VALUE line %q: %v", ln, err)
		}
		i++
		if i >= len(lines) || len(lines[i]) != size {
			t.Fatalf("VALUE %s: data line does not match advertised size %d", rec.key, size)
		}
		rec.val = lines[i]
		recs = append(recs, rec)
	}
	t.Fatalf("gets reply has no terminator: %q", raw)
	return nil, ""
}

// TestRouterGetsCasRoundTrip: the full read-modify-write cycle through
// the router behaves outcome-for-outcome like a single node — gets
// returns the corpus value with a nonzero cas unique, cas with that
// unique swaps exactly once (STORED), replaying the consumed unique
// conflicts (EXISTS), and cas on an absent key answers NOT_FOUND. Cas
// uniques are node-local so the raw bytes can't be oracle-compared, but
// each side's own unique must drive the identical outcome sequence.
func TestRouterGetsCasRoundTrip(t *testing.T) {
	_, _, routerAddr := routedCluster(t, 3)
	oracle := oracleNode(t)
	keys, vals, flags := testCorpus(30)
	loadCorpus(t, routerAddr, keys, vals, flags)
	loadCorpus(t, oracle, keys, vals, flags)

	hot := string(keys[1])  // corpus hit (1%3 != 0)
	miss := string(keys[0]) // corpus miss
	for _, addr := range []string{routerAddr, oracle} {
		recs, term := parseGetsReply(t, rawBurst(t, addr, "gets "+hot+"\r\n", 1))
		if term != "END" || len(recs) != 1 {
			t.Fatalf("gets via %s: recs=%v term=%q", addr, recs, term)
		}
		r := recs[0]
		if r.key != hot || r.flags != flags[hot] || r.val != string(vals[hot]) || r.casid == 0 {
			t.Fatalf("gets via %s = %+v, want corpus value with nonzero unique", addr, r)
		}
		casReq := fmt.Sprintf("cas %s %d 0 3 %d\r\nnew\r\n", hot, r.flags, r.casid)
		if got := rawBurst(t, addr, casReq, 1); string(got) != "STORED\r\n" {
			t.Fatalf("winning cas via %s = %q", addr, got)
		}
		if got := rawBurst(t, addr, casReq, 1); string(got) != "EXISTS\r\n" {
			t.Fatalf("replayed unique via %s = %q, want EXISTS", addr, got)
		}
		recs, _ = parseGetsReply(t, rawBurst(t, addr, "gets "+hot+"\r\n", 1))
		if len(recs) != 1 || recs[0].val != "new" || recs[0].casid == r.casid {
			t.Fatalf("post-swap gets via %s = %v, want exactly one applied swap with a fresh unique", addr, recs)
		}
		if got := rawBurst(t, addr, "cas "+miss+" 0 0 1 7\r\nx\r\n", 1); string(got) != "NOT_FOUND\r\n" {
			t.Fatalf("cas on absent key via %s = %q", addr, got)
		}
	}
}

// ejectOwner force-ejects the owner of key and returns its index.
func ejectOwner(cl *Cluster, key []byte) int {
	idx := cl.ring.OwnerIndex(key)
	for i := 0; i < cl.cfg.FailThreshold; i++ {
		cl.pools[idx].noteFailure()
	}
	return idx
}

// TestRouterEjectedNodeFailsFast: with one owner ejected, its keyspace
// answers SERVER_ERROR node down (sets and gets alike), a multiget
// spanning it delivers the surviving VALUE blocks in request order and
// terminates with SERVER_ERROR instead of END, and the rest of the ring
// keeps serving. Reintegration restores byte-exact parity with the
// oracle.
func TestRouterEjectedNodeFailsFast(t *testing.T) {
	_, cl, routerAddr := routedCluster(t, 3)
	oracle := oracleNode(t)
	keys, vals, flags := testCorpus(60)
	loadCorpus(t, routerAddr, keys, vals, flags)
	loadCorpus(t, oracle, keys, vals, flags)

	down := ejectOwner(cl, keys[1]) // keys[1] is a hit (1%3 != 0)
	if !cl.Ejected(down) {
		t.Fatal("owner not ejected")
	}

	// Single-key get on the dead keyspace: deterministic fail-fast line.
	got := rawBurst(t, routerAddr, "get "+string(keys[1])+"\r\n", 1)
	if string(got) != "SERVER_ERROR node down\r\n" {
		t.Fatalf("ejected-owner get = %q", got)
	}

	// A set routed to the dead node fails the same way; a set owned by a
	// survivor still stores.
	// aliveKey must be a corpus hit: the set below clobbers its value with
	// "x", and only keys present in vals get repaired by loadCorpus before
	// the byte-exact multiget comparison.
	var aliveKey, deadKey []byte
	for _, k := range keys {
		if cl.ring.OwnerIndex(k) == down {
			deadKey = k
		} else if _, hit := vals[string(k)]; hit {
			aliveKey = k
		}
	}
	if deadKey == nil || aliveKey == nil {
		t.Fatal("corpus does not span the ejected and surviving keyspaces")
	}
	if got := rawBurst(t, routerAddr, "set "+string(deadKey)+" 0 0 1\r\nx\r\n", 1); string(got) != "SERVER_ERROR node down\r\n" {
		t.Fatalf("ejected-owner set = %q", got)
	}
	if got := rawBurst(t, routerAddr, "set "+string(aliveKey)+" 0 0 1\r\nx\r\n", 1); string(got) != "STORED\r\n" {
		t.Fatalf("surviving-owner set = %q", got)
	}
	// Repair the value the line above just clobbered so the post-repair
	// oracle comparison still holds.
	loadCorpus(t, routerAddr, [][]byte{aliveKey}, vals, flags)

	// Multiget spanning the outage: surviving hits in exact request
	// order, SERVER_ERROR terminator instead of END.
	var sb strings.Builder
	sb.WriteString("get")
	for _, k := range keys {
		sb.WriteByte(' ')
		sb.Write(k)
	}
	sb.WriteString("\r\n")
	var want bytes.Buffer
	for _, k := range keys {
		v, hit := vals[string(k)]
		if !hit || cl.ring.OwnerIndex(k) == down {
			continue
		}
		fmt.Fprintf(&want, "VALUE %s %d %d\r\n%s\r\n", k, flags[string(k)], len(v), v)
	}
	want.WriteString("SERVER_ERROR node down\r\n")
	got = rawBurst(t, routerAddr, sb.String(), 1)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("partial multiget reply:\ngot:  %q\nwant: %q", got, want.Bytes())
	}

	// Reintegrate (what a probe success does) and verify full parity.
	cl.pools[down].noteSuccess()
	got = rawBurst(t, routerAddr, sb.String(), 1)
	wantFull := rawBurst(t, oracle, sb.String(), 1)
	if !bytes.Equal(got, wantFull) {
		t.Fatalf("post-reintegration reply differs from oracle:\ngot:  %q\nwant: %q", got, wantFull)
	}
}

// TestClusterMultiGetWideBurst: the library-level MultiGet takes bursts
// far past the protocol's per-request cap — per-node chunking happens in
// the backend clients — and reports every hit at its request index.
func TestClusterMultiGetWideBurst(t *testing.T) {
	f, cl, _ := routedCluster(t, 3)
	_ = f
	keys, vals, flags := testCorpus(3*kvproto.MaxGetKeys + 11)
	// Load through the cluster directly.
	for _, k := range keys {
		if v, ok := vals[string(k)]; ok {
			if err := cl.Set(k, flags[string(k)], 0, v); err != nil {
				t.Fatalf("set %q: %v", k, err)
			}
		}
	}
	got := make(map[int][]byte)
	err := cl.MultiGet(keys, func(i int, fl uint32, val []byte) {
		if want := flags[string(keys[i])]; fl != want {
			t.Errorf("key %d: flags %d, want %d", i, fl, want)
		}
		got[i] = append([]byte(nil), val...)
	})
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i, k := range keys {
		want, hit := vals[string(k)]
		v, found := got[i]
		if hit != found {
			t.Fatalf("key %d: hit=%v found=%v", i, hit, found)
		}
		if hit && !bytes.Equal(v, want) {
			t.Fatalf("key %d: value %q, want %q", i, v, want)
		}
	}
}

// TestRouterStatsAndNoop: the router answers the protocol's service
// commands itself — stats reports fleet health, noop round-trips.
func TestRouterStatsAndNoop(t *testing.T) {
	_, cl, routerAddr := routedCluster(t, 3)
	c, err := kvproto.DialTimeout(routerAddr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Noop(); err != nil {
		t.Fatalf("noop via router: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["nodes"] != "3" || st["nodes_ejected"] != "0" {
		t.Fatalf("stats nodes=%q ejected=%q", st["nodes"], st["nodes_ejected"])
	}
	ejectOwner(cl, []byte("whatever"))
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["nodes_ejected"] != "1" {
		t.Fatalf("stats after ejection: nodes_ejected=%q", st["nodes_ejected"])
	}
}

// TestRouterFlushAll: flush_all through the router empties every node
// and replies OK; with an ejected node in a single-replica cluster the
// flush is partial, so the router reports node down instead of lying.
func TestRouterFlushAll(t *testing.T) {
	f, cl, routerAddr := routedCluster(t, 3)
	keys, vals, flags := testCorpus(60)
	loadCorpus(t, routerAddr, keys, vals, flags)

	total := 0
	for _, n := range f.Nodes {
		total += n.Server().Cache().Len()
	}
	if total == 0 {
		t.Fatal("corpus not loaded")
	}
	if got := rawBurst(t, routerAddr, "flush_all\r\n", 1); string(got) != "OK\r\n" {
		t.Fatalf("flush_all reply = %q", got)
	}
	for i, n := range f.Nodes {
		if l := n.Server().Cache().Len(); l != 0 {
			t.Fatalf("node %d still holds %d entries after flush_all", i, l)
		}
		if n.Server().Flushes() != 1 {
			t.Fatalf("node %d flushes = %d, want 1", i, n.Server().Flushes())
		}
	}
	if got := rawBurst(t, routerAddr, "get "+string(keys[1])+"\r\n", 1); string(got) != "END\r\n" {
		t.Fatalf("get after flush_all = %q, want clean miss", got)
	}

	// Single-replica fleet with an ejected node: partial flush is an error.
	ejectOwner(cl, keys[1])
	if got := rawBurst(t, routerAddr, "flush_all\r\n", 1); string(got) != "SERVER_ERROR node down\r\n" {
		t.Fatalf("partial flush_all reply = %q", got)
	}
}

// TestRouterGetsCasEjectedOwner: gets and cas on a dead keyspace answer
// the same deterministic fail-fast line as get and set; a gets burst
// spanning the outage delivers the surviving VALUE blocks in request
// order up to the dead key and then degrades explicitly with
// SERVER_ERROR instead of END; the surviving keyspace keeps swapping;
// reintegration restores the full burst.
func TestRouterGetsCasEjectedOwner(t *testing.T) {
	_, cl, routerAddr := routedCluster(t, 3)
	keys, vals, flags := testCorpus(60)
	loadCorpus(t, routerAddr, keys, vals, flags)

	down := ejectOwner(cl, keys[1]) // keys[1] is a hit (1%3 != 0)
	if got := rawBurst(t, routerAddr, "gets "+string(keys[1])+"\r\n", 1); string(got) != "SERVER_ERROR node down\r\n" {
		t.Fatalf("ejected-owner gets = %q", got)
	}
	if got := rawBurst(t, routerAddr, "cas "+string(keys[1])+" 0 0 1 9\r\nx\r\n", 1); string(got) != "SERVER_ERROR node down\r\n" {
		t.Fatalf("ejected-owner cas = %q", got)
	}

	// Burst spanning the outage: the router resolves gets key by key in
	// request order, so hits stream until the first dead-owned key, then
	// the terminator flips to SERVER_ERROR.
	var sb strings.Builder
	sb.WriteString("gets")
	for _, k := range keys {
		sb.WriteByte(' ')
		sb.Write(k)
	}
	sb.WriteString("\r\n")
	recs, term := parseGetsReply(t, rawBurst(t, routerAddr, sb.String(), 1))
	if term != "SERVER_ERROR node down" {
		t.Fatalf("spanning gets terminator = %q", term)
	}
	wantRecs := 0
	for _, k := range keys {
		if cl.ring.OwnerIndex(k) == down {
			break
		}
		if _, hit := vals[string(k)]; hit {
			wantRecs++
		}
	}
	if len(recs) != wantRecs {
		t.Fatalf("spanning gets delivered %d VALUE blocks before failing, want %d", len(recs), wantRecs)
	}
	for _, r := range recs {
		if r.val != string(vals[r.key]) || r.flags != flags[r.key] || r.casid == 0 {
			t.Fatalf("surviving VALUE block %+v disagrees with corpus", r)
		}
	}

	// Reintegrate: the same burst answers every hit and terminates END.
	cl.pools[down].noteSuccess()
	recs, term = parseGetsReply(t, rawBurst(t, routerAddr, sb.String(), 1))
	if term != "END" || len(recs) != len(vals) {
		t.Fatalf("post-reintegration gets: %d VALUE blocks, term %q, want %d and END", len(recs), term, len(vals))
	}

	// And the read-modify-write cycle still works end to end.
	one, term := parseGetsReply(t, rawBurst(t, routerAddr, "gets "+string(keys[1])+"\r\n", 1))
	if term != "END" || len(one) != 1 {
		t.Fatalf("post-reintegration single gets: %v %q", one, term)
	}
	casReq := fmt.Sprintf("cas %s %d 0 3 %d\r\nnew\r\n", keys[1], one[0].flags, one[0].casid)
	if got := rawBurst(t, routerAddr, casReq, 1); string(got) != "STORED\r\n" {
		t.Fatalf("post-reintegration cas = %q", got)
	}
}

// TestRouterStatsMetricsParity: every unlabeled kvcluster counter the
// registry scrapes has a stats-command mirror (kvcluster_<name>_total →
// <name>), so operators see the same fleet truth through memcached
// stats and /metrics. Regression test: writeStats omitted
// replica_unacked while kvcluster_replica_unacked_total was exposed —
// and this fails again whenever a future unlabeled counter lands in
// only one of the two views.
func TestRouterStatsMetricsParity(t *testing.T) {
	_, cl, routerAddr := routedCluster(t, 3)
	c, err := kvproto.DialTimeout(routerAddr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cl.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, ln := range strings.Split(buf.String(), "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		name, _, _ := strings.Cut(ln, " ")
		if strings.Contains(name, "{") {
			// Labeled families (per-node, per-op) surface through their own
			// dedicated stats lines, checked below for the op families.
			continue
		}
		if !strings.HasPrefix(name, "kvcluster_") || !strings.HasSuffix(name, "_total") {
			continue
		}
		statKey := strings.TrimSuffix(strings.TrimPrefix(name, "kvcluster_"), "_total")
		if _, ok := st[statKey]; !ok {
			t.Errorf("metric %s has no %q line in the stats reply", name, statKey)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no unlabeled kvcluster counters found in the exposition; parity check is vacuous")
	}
	// Per-op routed/failed mirrors exist for every op the cluster routes,
	// including gets and cas.
	for _, name := range ixNames {
		for _, k := range []string{"ops_routed_" + name, "ops_failed_" + name} {
			if _, ok := st[k]; !ok {
				t.Errorf("stats reply missing %q", k)
			}
		}
	}
}

// TestClusterProbeEjectsAndReintegrates: the real prober path — kill a
// node, the prober ejects it within a few intervals; restart it, the
// capped-backoff reprobe brings it back.
func TestClusterProbeEjectsAndReintegrates(t *testing.T) {
	f, err := fleet.Start(2, func(int) fleet.NodeConfig { return nodeConfig() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	cl, err := New(Config{
		Nodes:           f.Addrs(),
		Seed:            7,
		PoolSize:        2,
		ProbeInterval:   20 * time.Millisecond,
		ProbeBackoffMax: 100 * time.Millisecond,
		Reconnect:       kvproto.ReconnectConfig{DialTimeout: 500 * time.Millisecond, MaxAttempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	cl.Start()

	f.Nodes[0].Kill()
	deadline := time.Now().Add(10 * time.Second)
	for !cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("killed node never ejected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cl.Ejected(1) {
		t.Fatal("healthy node ejected alongside the killed one")
	}

	if err := f.Nodes[0].Restart(); err != nil {
		t.Fatal(err)
	}
	for cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("restarted node never reintegrated")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
