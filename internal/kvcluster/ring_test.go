package kvcluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
	}
	return keys
}

// TestRingDeterministicPlacement: placement is a pure function of
// (nodes, vnodes, seed) — rebuilding the ring, or building it with the
// nodes listed in a different order, assigns every key to the same
// address.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := []string{"10.0.0.1:11211", "10.0.0.2:11211", "10.0.0.3:11211"}
	r1, err := NewRing(nodes, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(nodes, 0, 42)
	shuffled, _ := NewRing([]string{nodes[2], nodes[0], nodes[1]}, 0, 42)
	reseeded, _ := NewRing(nodes, 0, 43)

	keys := testKeys(10_000)
	diffSeed := 0
	for _, k := range keys {
		if a, b := r1.Owner(k), r2.Owner(k); a != b {
			t.Fatalf("rebuild moved %q: %s -> %s", k, a, b)
		}
		if a, b := r1.Owner(k), shuffled.Owner(k); a != b {
			t.Fatalf("node order changed placement of %q: %s vs %s", k, a, b)
		}
		if r1.Owner(k) != reseeded.Owner(k) {
			diffSeed++
		}
	}
	// A different seed must actually reshuffle the ring, not relabel it.
	if diffSeed == 0 {
		t.Fatal("seed 43 placed every key identically to seed 42")
	}
}

// TestRingBalance: with DefaultVNodes points per node, no node's share
// of a large uniform keyspace strays wildly from 1/N.
func TestRingBalance(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	r, err := NewRing(nodes, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(nodes))
	keys := testKeys(100_000)
	for _, k := range keys {
		counts[r.OwnerIndex(k)]++
	}
	for i, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.18 || share > 0.50 {
			t.Errorf("node %s owns %.1f%% of keys (counts %v)", nodes[i], share*100, counts)
		}
	}
}

// TestRingJoinMovesBoundedAndMonotonic: adding a node to an N-node ring
// moves at most ~1/(N+1) of a 100k-key space (small epsilon for vnode
// variance), and every moved key lands on the new node — keys never
// shuffle between survivors.
func TestRingJoinMovesBoundedAndMonotonic(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	before, err := NewRing(nodes, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.Add("d:1")
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(100_000)
	moved := 0
	for _, k := range keys {
		a, b := before.Owner(k), after.Owner(k)
		if a == b {
			continue
		}
		moved++
		if b != "d:1" {
			t.Fatalf("join moved %q from %s to surviving node %s", k, a, b)
		}
	}
	// Expected movement is 1/4; allow vnode-placement variance up to 1/4 + 6%.
	limit := int(float64(len(keys)) * (1.0/4 + 0.06))
	if moved > limit {
		t.Errorf("join moved %d/%d keys, limit %d", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Error("join moved no keys at all")
	}
}

// TestRingLeaveMovesOnlyOrphans: removing a node moves exactly the keys
// it owned (~1/N + epsilon), and no key between surviving nodes.
func TestRingLeaveMovesOnlyOrphans(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	before, err := NewRing(nodes, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.Remove("b:1")
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(100_000)
	moved := 0
	for _, k := range keys {
		a, b := before.Owner(k), after.Owner(k)
		if a == "b:1" {
			moved++
			if b == "b:1" {
				t.Fatalf("removed node still owns %q", k)
			}
			continue
		}
		if a != b {
			t.Fatalf("leave moved %q between survivors: %s -> %s", k, a, b)
		}
	}
	limit := int(float64(len(keys)) * (1.0/4 + 0.06))
	if moved > limit {
		t.Errorf("removed node owned %d/%d keys, limit %d", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Error("removed node owned no keys")
	}
}

// TestRingOwnerIndexesProperties: for every key, the replica set holds
// n distinct physical nodes, element 0 is exactly OwnerIndex, n beyond
// the node count truncates to a permutation of all nodes, and the
// allocation-free Append variant agrees with the allocating one.
func TestRingOwnerIndexesProperties(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r, err := NewRing(nodes, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]int, 0, len(nodes))
	for _, k := range testKeys(20_000) {
		for n := 1; n <= len(nodes)+2; n++ {
			owners := r.OwnerIndexes(k, n)
			want := n
			if want > len(nodes) {
				want = len(nodes)
			}
			if len(owners) != want {
				t.Fatalf("OwnerIndexes(%q, %d) returned %d owners, want %d", k, n, len(owners), want)
			}
			if owners[0] != r.OwnerIndex(k) {
				t.Fatalf("OwnerIndexes(%q)[0] = %d, OwnerIndex = %d", k, owners[0], r.OwnerIndex(k))
			}
			seen := make(map[int]bool, len(owners))
			for _, o := range owners {
				if o < 0 || o >= len(nodes) {
					t.Fatalf("OwnerIndexes(%q, %d) returned out-of-range node %d", k, n, o)
				}
				if seen[o] {
					t.Fatalf("OwnerIndexes(%q, %d) repeated node %d: %v", k, n, o, owners)
				}
				seen[o] = true
			}
			appended := r.AppendOwnerIndexes(scratch[:0], k, n)
			if len(appended) != len(owners) {
				t.Fatalf("AppendOwnerIndexes disagrees on length for %q n=%d", k, n)
			}
			for i := range owners {
				if appended[i] != owners[i] {
					t.Fatalf("AppendOwnerIndexes(%q, %d) = %v, OwnerIndexes = %v", k, n, appended, owners)
				}
			}
		}
	}
	if r.OwnerIndexes([]byte("k"), 0) != nil {
		t.Error("OwnerIndexes(k, 0) should be empty")
	}
}

// TestRingOwnerIndexesStability: a key's R=2 replica set only changes
// when its primary-or-successor arcs change. Concretely, on join the new
// set is either identical (by address) or includes the joiner; on leave
// the surviving members of the old set are still in the new set. Keys
// far from the changed node's arcs keep their replica set untouched.
func TestRingOwnerIndexesStability(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	before, err := NewRing(nodes, 0, 63)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := before.Add("e:1")
	if err != nil {
		t.Fatal(err)
	}
	left, err := before.Remove("b:1")
	if err != nil {
		t.Fatal(err)
	}
	addrs := func(r *Ring, owners []int) []string {
		out := make([]string, len(owners))
		for i, o := range owners {
			out[i] = r.Nodes()[o]
		}
		return out
	}
	keys := testKeys(100_000)
	joinChanged, leaveChanged := 0, 0
	for _, k := range keys {
		old := addrs(before, before.OwnerIndexes(k, 2))

		// Join: survivors' points are unchanged, so the clockwise walk is
		// the old walk with e's points spliced in — the new pair either
		// equals the old pair or contains the joiner.
		nw := addrs(joined, joined.OwnerIndexes(k, 2))
		if nw[0] != old[0] || nw[1] != old[1] {
			joinChanged++
			if nw[0] != "e:1" && nw[1] != "e:1" {
				t.Fatalf("join changed %q's replica set %v -> %v without involving the joiner", k, old, nw)
			}
		}

		// Leave: removing b's points cannot reorder survivors — members
		// of the old pair other than b must survive into the new pair.
		lw := addrs(left, left.OwnerIndexes(k, 2))
		if lw[0] != old[0] || lw[1] != old[1] {
			leaveChanged++
		}
		for _, a := range old {
			if a == "b:1" {
				continue
			}
			if lw[0] != a && lw[1] != a {
				t.Fatalf("leave dropped survivor %s from %q's replica set %v -> %v", a, k, old, lw)
			}
		}
		if lw[0] == "b:1" || lw[1] == "b:1" {
			t.Fatalf("removed node still in %q's replica set %v", k, lw)
		}
	}
	// Sanity: both events must actually perturb some replica sets, and a
	// single node's arcs must leave most of the keyspace untouched.
	if joinChanged == 0 || leaveChanged == 0 {
		t.Fatalf("join changed %d, leave changed %d replica sets — expected both > 0", joinChanged, leaveChanged)
	}
	if max := int(float64(len(keys)) * 0.75); joinChanged > max || leaveChanged > max {
		t.Errorf("replica churn too high: join %d, leave %d of %d keys", joinChanged, leaveChanged, len(keys))
	}
}

// TestRingConstructionErrors: duplicates, empties, and removing a
// stranger are refused.
func TestRingConstructionErrors(t *testing.T) {
	if _, err := NewRing(nil, 0, 1); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 0, 1); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0, 1); err == nil {
		t.Error("empty address accepted")
	}
	r, err := NewRing([]string{"a:1"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Remove("zzz:1"); err == nil {
		t.Error("removing unknown node accepted")
	}
}
