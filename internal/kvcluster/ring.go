// Package kvcluster is the client-side routing tier over a fleet of
// adaptcached nodes: a seeded consistent-hash ring with virtual nodes,
// per-node pipelined connection pools built on kvproto.ReconnectClient,
// scatter-gather multi-key gets reassembled in request order, and health
// probing that ejects failing nodes (their keyspace fails fast) and
// reintegrates them with capped backoff. cmd/kvrouter wraps a Cluster in
// the kvserver.Core serving envelope to expose the whole fleet behind
// one ordinary kvproto endpoint.
//
// The cluster deliberately routes each key to exactly one owner: the
// paper's adaptation argument is per-cache-set workload specialization,
// and consistent hashing extends it across machines — each node sees a
// stable slice of the keyspace, so its per-shard policy selection
// converges on that slice's reuse behavior instead of thrashing on a
// union of everything.
package kvcluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 128 points
// per node keeps the expected keyspace imbalance under a few percent for
// small fleets while the ring stays cheap to build and search.
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the hash circle owned by
// a physical node (indexed into Ring.nodes).
type ringPoint struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring. Point placement depends
// only on (node address, vnode ordinal, seed), so two rings built from
// overlapping node sets place the shared nodes' points identically —
// that is what bounds key movement on join/leave to the new/removed
// node's arcs (~1/N of the keyspace).
type Ring struct {
	nodes  []string
	points []ringPoint
	vnodes int
	seed   uint64
}

// splitmix64 is the finalizer from Vigna's SplitMix64: full-avalanche,
// so sequential vnode ordinals and similar addresses land uniformly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a folds bytes into a seeded FNV-1a state; callers finalize with
// splitmix64 because raw FNV diffuses poorly in the high bits.
func fnv1a(seed uint64, b []byte) uint64 {
	h := seed ^ 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// NewRing builds a ring over nodes (addresses must be unique and
// non-empty; order fixes each node's index for callers that keep
// parallel per-node state). vnodes <= 0 takes DefaultVNodes. The same
// (nodes, vnodes, seed) always yields the same placement.
func NewRing(nodes []string, vnodes int, seed uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("kvcluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]struct{}, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
		vnodes: vnodes,
		seed:   seed,
	}
	for i, addr := range nodes {
		if addr == "" {
			return nil, fmt.Errorf("kvcluster: empty node address at index %d", i)
		}
		if _, dup := seen[addr]; dup {
			return nil, fmt.Errorf("kvcluster: duplicate node address %q", addr)
		}
		seen[addr] = struct{}{}
		base := fnv1a(seed, []byte(addr))
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: splitmix64(base + uint64(v)*0x9e3779b97f4a7c15),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit collision between two nodes' points: break the tie by
		// address so placement never depends on sort stability.
		return r.nodes[r.points[a].node] < r.nodes[r.points[b].node]
	})
	return r, nil
}

// Nodes returns the node addresses in index order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// hashKey positions a key on the circle.
func (r *Ring) hashKey(key []byte) uint64 {
	return splitmix64(fnv1a(r.seed, key))
}

// OwnerIndex returns the index (into Nodes) of the node owning key: the
// first ring point clockwise from the key's position.
func (r *Ring) OwnerIndex(key []byte) int {
	h := r.hashKey(key)
	// First point with hash >= h; wrap to points[0] past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owner returns the address of the node owning key.
func (r *Ring) Owner(key []byte) string { return r.nodes[r.OwnerIndex(key)] }

// OwnerIndexes returns the first n distinct physical nodes clockwise
// from key's position: the key's replica set, primary first. Element 0
// always equals OwnerIndex. n greater than the node count truncates to
// every node (in ring order for this key). Like OwnerIndex, the result
// is a pure function of (node addresses, vnodes, seed) — two rings over
// the same nodes agree on every key's replica set, and a join or leave
// only changes a replica set whose primary-or-successor arcs the
// changed node's points land on.
func (r *Ring) OwnerIndexes(key []byte, n int) []int {
	return r.AppendOwnerIndexes(nil, key, n)
}

// AppendOwnerIndexes is OwnerIndexes appending into dst, so hot paths
// can reuse a scratch slice and stay allocation-free.
func (r *Ring) AppendOwnerIndexes(dst []int, key []byte, n int) []int {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return dst
	}
	h := r.hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	start := len(dst)
	// Walk clockwise collecting distinct nodes; every node has at least
	// one point, so at most one full lap is needed.
	for scanned := 0; scanned < len(r.points) && len(dst)-start < n; scanned++ {
		if i == len(r.points) {
			i = 0
		}
		node := r.points[i].node
		i++
		dup := false
		for _, d := range dst[start:] {
			if d == node {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, node)
		}
	}
	return dst
}

// Add returns a new ring with node appended (same vnodes and seed).
// Existing nodes' points are unchanged, so only keys falling on the new
// node's arcs move — the consistent-hashing monotonicity property the
// ring tests assert.
func (r *Ring) Add(node string) (*Ring, error) {
	nodes := make([]string, 0, len(r.nodes)+1)
	nodes = append(nodes, r.nodes...)
	nodes = append(nodes, node)
	return NewRing(nodes, r.vnodes, r.seed)
}

// Remove returns a new ring without the named node.
func (r *Ring) Remove(node string) (*Ring, error) {
	nodes := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == len(r.nodes) {
		return nil, fmt.Errorf("kvcluster: node %q not in ring", node)
	}
	return NewRing(nodes, r.vnodes, r.seed)
}
