package kvcluster

import (
	"bufio"
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/kvproto"
	"repro/internal/kvserver"
	"repro/internal/metrics"
)

// RouterConfig assembles a Router around a Cluster.
type RouterConfig struct {
	ReadTimeout  time.Duration // per-request client read deadline (0 = none)
	WriteTimeout time.Duration // armed before every reply flush (0 = none)
	MaxConns     int           // client connection bound (0 = unlimited)

	Logf func(format string, args ...any)
}

// Router serves the kvproto text protocol in front of a Cluster: clients
// speak to it exactly as they would to one adaptcached node, and the
// router owns the fanout. It reuses kvserver.Core for the serving
// envelope — accept retry, MaxConns shedding, panic isolation,
// drain/force shutdown — so the proxy tier survives the same abuse the
// cache tier does.
//
// Failure semantics are explicit rather than silent: an operation whose
// owner node is down answers "SERVER_ERROR node down"; a multi-key get
// that lost an owner delivers the surviving VALUE blocks in request
// order and then terminates with SERVER_ERROR instead of END (the
// stream stays parseable — clients classify it as a failed, retryable
// request, never as a short miss); an ambiguous write is forwarded as
// "SERVER_ERROR unacked" and never replayed.
type Router struct {
	cfg  RouterConfig
	cl   *Cluster
	core *kvserver.Core
	m    *routerMetrics

	startNanos atomic.Int64
}

// routerMetrics holds the router's own instruments, registered alongside
// the cluster's in the same registry so one scrape shows both tiers.
type routerMetrics struct {
	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	clientErrors *metrics.Counter
	unackedFwd   *metrics.Counter
	reqLat       *metrics.Histogram

	connsOpened       *metrics.Counter
	connsClosed       *metrics.Counter
	connsActive       *metrics.Gauge
	connsRejected     *metrics.Counter
	shedWriteFailures *metrics.Counter
	panicsRecovered   *metrics.Counter
	acceptRetries     *metrics.Counter
}

func newRouterMetrics(reg *metrics.Registry) *routerMetrics {
	m := &routerMetrics{}
	m.bytesIn = reg.Counter("kvrouter_bytes_in_total", "", "bytes read from clients")
	m.bytesOut = reg.Counter("kvrouter_bytes_out_total", "", "bytes written to clients")
	m.clientErrors = reg.Counter("kvrouter_client_errors_total", "", "recoverable protocol violations reported to clients")
	m.unackedFwd = reg.Counter("kvrouter_unacked_replies_total", "", "ambiguous writes surfaced to clients as SERVER_ERROR unacked")
	m.reqLat = reg.Histogram("kvrouter_request_seconds", "", "request service time, parse to serialized reply")
	m.connsOpened = reg.Counter("kvrouter_conns_opened_total", "", "client connections accepted into service")
	m.connsClosed = reg.Counter("kvrouter_conns_closed_total", "", "client connection handlers exited")
	m.connsActive = reg.Gauge("kvrouter_conns_active", "", "client connections currently being served")
	m.connsRejected = reg.Counter("kvrouter_conns_rejected_total", "", "client connections shed with SERVER_ERROR busy")
	m.shedWriteFailures = reg.Counter("kvrouter_shed_write_failures_total", "", "shed replies that failed to reach the client")
	m.panicsRecovered = reg.Counter("kvrouter_panics_recovered_total", "", "handler panics isolated to their connection")
	m.acceptRetries = reg.Counter("kvrouter_accept_retries_total", "", "transient accept errors retried")
	return m
}

// NewRouter builds a Router over cl, registering its instruments in the
// cluster's registry.
func NewRouter(cl *Cluster, cfg RouterConfig) *Router {
	r := &Router{cfg: cfg, cl: cl, m: newRouterMetrics(cl.Registry())}
	r.core = kvserver.NewCore(
		kvserver.CoreConfig{MaxConns: cfg.MaxConns, Logf: cfg.Logf},
		kvserver.CoreMetrics{
			ConnsOpened:       r.m.connsOpened,
			ConnsClosed:       r.m.connsClosed,
			ConnsActive:       r.m.connsActive,
			ConnsRejected:     r.m.connsRejected,
			ShedWriteFailures: r.m.shedWriteFailures,
			PanicsRecovered:   r.m.panicsRecovered,
			AcceptRetries:     r.m.acceptRetries,
		},
		r.handle,
	)
	return r
}

// Serve accepts and serves client connections until ln closes.
func (r *Router) Serve(ln net.Listener) {
	r.startNanos.CompareAndSwap(0, time.Now().UnixNano())
	r.core.Serve(ln)
}

// Shutdown drains like kvserver: stop accepting, grace period, force
// close. The Cluster is left running — the owner closes it after.
func (r *Router) Shutdown(ln net.Listener, grace time.Duration) { r.core.Shutdown(ln, grace) }

// Wait blocks until every client connection handler has exited.
func (r *Router) Wait() { r.core.Wait() }

// Draining reports whether Shutdown has begun.
func (r *Router) Draining() bool { return r.core.Draining() }

// Healthz serves 200 while accepting, 503 while draining.
func (r *Router) Healthz(w http.ResponseWriter, _ *http.Request) {
	if r.core.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// MetricsHandler serves the shared router+cluster registry as Prometheus
// text exposition.
func (r *Router) MetricsHandler() http.Handler { return r.cl.Registry().Handler() }

// UnackedReplies returns how many ambiguous writes the router has
// surfaced to clients as "SERVER_ERROR unacked" — the value behind
// kvrouter_unacked_replies_total, for gates that reconcile the tally
// against client-side observations.
func (r *Router) UnackedReplies() uint64 { return r.m.unackedFwd.Load() }

func (r *Router) uptime() time.Duration {
	s := r.startNanos.Load()
	if s == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - s)
}

// routerIO wraps the client connection: write deadline armed before
// every network write (including bufio auto-flushes mid-large-reply —
// the same slow-loris wedge kvserver's connIO fixes), bytes metered in
// both directions.
type routerIO struct {
	conn net.Conn
	r    *Router
}

func (c *routerIO) Read(p []byte) (int, error) {
	n, err := c.conn.Read(p)
	c.r.m.bytesIn.Add(uint64(n))
	return n, err
}

func (c *routerIO) Write(p []byte) (int, error) {
	if t := c.r.cfg.WriteTimeout; t > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(t)); err != nil {
			return 0, err
		}
	}
	n, err := c.conn.Write(p)
	c.r.m.bytesOut.Add(uint64(n))
	return n, err
}

// Deterministic failure lines: byte-exact reply tests depend on the
// router degrading the same way every time.
const (
	msgNodeDown = "node down"
	msgUnacked  = "unacked"
	msgBackend  = "backend failure"
)

// failureMsg maps a cluster error onto the reply line's message.
func (r *Router) failureMsg(err error) string {
	switch {
	case errors.Is(err, ErrNodeDown):
		return msgNodeDown
	case errors.Is(err, kvproto.ErrUnacked):
		r.m.unackedFwd.Inc()
		return msgUnacked
	default:
		return msgBackend
	}
}

// handle runs one client connection's request loop under Core's
// isolation contract (Core.run owns recovery, close, bookkeeping).
func (r *Router) handle(conn net.Conn) {
	cio := &routerIO{conn: conn, r: r}
	rd := kvproto.NewReader(cio)
	w := bufio.NewWriterSize(cio, 4096)
	var req kvproto.Request
	var ce *kvproto.ClientError
	for {
		if r.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
		}
		switch err := rd.Next(&req); {
		case err == nil:
		case errors.As(err, &ce):
			r.m.clientErrors.Inc()
			kvproto.WriteClientError(w, ce.Msg)
			if w.Flush() != nil {
				return
			}
			continue
		default:
			return
		}

		start := time.Now()
		switch req.Op {
		case kvproto.OpGet:
			// req.Keys alias the parser's buffer; they stay valid until
			// the next rd.Next, which is after the whole scatter-gather
			// completes. Hits arrive in exact request order, so VALUE
			// blocks stream straight into the reply buffer; a lost owner
			// turns the terminator into SERVER_ERROR.
			err := r.cl.MultiGet(req.Keys, func(i int, flags uint32, val []byte) {
				kvproto.WriteValue(w, req.Keys[i], flags, val)
			})
			if err != nil {
				kvproto.WriteServerError(w, r.failureMsg(err))
			} else {
				kvproto.WriteEnd(w)
			}
		case kvproto.OpGets:
			// gets routes per key through the single-key path: the cas
			// unique each VALUE line carries is node-local, so every key
			// must answer from its own current owner. A failed key turns
			// the terminator into SERVER_ERROR, exactly like a lost owner
			// mid-multiget.
			var gerr error
			for _, k := range req.Keys {
				val, flags, casid, ok, err := r.cl.Gets(k)
				if err != nil {
					gerr = err
					break
				}
				if ok {
					kvproto.WriteValueCas(w, k, flags, casid, val)
				}
			}
			if gerr != nil {
				kvproto.WriteServerError(w, r.failureMsg(gerr))
			} else {
				kvproto.WriteEnd(w)
			}
		case kvproto.OpSet:
			switch err := r.cl.Set(req.Key, req.Flags, req.Exptime, req.Value); {
			case err == nil:
				kvproto.WriteStored(w)
			default:
				kvproto.WriteServerError(w, r.failureMsg(err))
			}
		case kvproto.OpCas:
			switch st, err := r.cl.Cas(req.Key, req.Flags, req.Exptime, req.Cas, req.Value); {
			case err != nil:
				kvproto.WriteServerError(w, r.failureMsg(err))
			case st == kvproto.CasStored:
				kvproto.WriteStored(w)
			case st == kvproto.CasExists:
				kvproto.WriteExists(w)
			default:
				kvproto.WriteNotFound(w)
			}
		case kvproto.OpDelete:
			switch found, err := r.cl.Delete(req.Key); {
			case err == nil && found:
				kvproto.WriteDeleted(w)
			case err == nil:
				kvproto.WriteNotFound(w)
			default:
				kvproto.WriteServerError(w, r.failureMsg(err))
			}
		case kvproto.OpFlushAll:
			// Fleet-wide flush: every live node empties. In replicated
			// mode ejected nodes are flushed by the reintegration barrier
			// before they serve again; single-replica clusters report a
			// partial flush as an error.
			switch err := r.cl.FlushAll(); {
			case err == nil:
				kvproto.WriteOk(w)
			default:
				kvproto.WriteServerError(w, r.failureMsg(err))
			}
		case kvproto.OpStats:
			r.writeStats(w)
		case kvproto.OpNoop:
			kvproto.WriteNoop(w)
		case kvproto.OpQuit:
			w.Flush()
			return
		default:
			kvproto.WriteError(w)
		}
		r.m.reqLat.RecordNS(int64(time.Since(start)))

		// Pipelined input already buffered: batch replies, flush when
		// the burst drains (or the reply buffer fills).
		if rd.Buffered() > 0 && w.Available() > 512 {
			continue
		}
		if w.Flush() != nil {
			return
		}
	}
}

// writeStats answers the stats command with the router's view of the
// fleet: uptime, per-node health, routed/failed tallies, backend retry
// behavior.
func (r *Router) writeStats(w *bufio.Writer) {
	kvproto.WriteStat(w, "uptime_seconds", uint64(r.uptime()/time.Second))
	kvproto.WriteStat(w, "nodes", uint64(len(r.cl.pools)))
	ejected := 0
	for _, p := range r.cl.pools {
		if p.ejected.Load() {
			ejected++
		}
	}
	kvproto.WriteStat(w, "nodes_ejected", uint64(ejected))
	for i, p := range r.cl.pools {
		up := uint64(1)
		if p.ejected.Load() {
			up = 0
		}
		kvproto.WriteStat(w, "node_"+itoa(i)+"_up", up)
	}
	for i, name := range ixNames {
		kvproto.WriteStat(w, "ops_routed_"+name, r.cl.m.routed[i].Load())
		kvproto.WriteStat(w, "ops_failed_"+name, r.cl.m.failed[i].Load())
	}
	kvproto.WriteStat(w, "replicas", uint64(r.cl.cfg.Replicas))
	kvproto.WriteStat(w, "failover_reads", r.cl.m.failoverReads.Load())
	kvproto.WriteStat(w, "replica_write_failures", r.cl.m.replicaWriteFailures.Load())
	kvproto.WriteStat(w, "replica_unacked", r.cl.m.replicaUnacked.Load())
	kvproto.WriteStat(w, "reintegration_flushes", r.cl.m.reintegrationFlushes.Load())
	kvproto.WriteStat(w, "backend_redials", r.cl.m.backend.Redials.Load())
	kvproto.WriteStat(w, "backend_retries", r.cl.m.backend.Retries.Load())
	kvproto.WriteStat(w, "backend_unacked", r.cl.m.backend.Unacked.Load())
	kvproto.WriteStat(w, "backend_exhausted", r.cl.m.backend.Exhausted.Load())
	kvproto.WriteStat(w, "unacked_replies", r.m.unackedFwd.Load())
	kvproto.WriteStat(w, "client_errors", r.m.clientErrors.Load())
	kvproto.WriteEnd(w)
}

// itoa formats small non-negative ints without strconv's interface
// conversions on the stats path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
