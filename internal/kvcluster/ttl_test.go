package kvcluster

// Cluster-level TTL semantics: the cluster normalizes a relative
// exptime to one absolute deadline before fan-out (replicas must agree
// on when the value dies), failover reads never resurrect an expired
// value, and flush-on-reintegrate composes with expiry without double
// accounting.

import (
	"testing"
	"time"
)

// TestClusterTTLReplicatedDeadlinePropagation: with R=2, a relative
// exptime is converted to an absolute unix time exactly once, at the
// cluster entry point — both owners store the identical deadline, even
// though the replica write happens later than the primary's.
func TestClusterTTLReplicatedDeadlinePropagation(t *testing.T) {
	f, cl := replicatedCluster(t, 2, nil)
	key := []byte("ttl-replicated")

	before := time.Now().Unix()
	if err := cl.Set(key, 0, 60, []byte("v")); err != nil {
		t.Fatal(err)
	}
	after := time.Now().Unix()

	var deadlines []int64
	for i, n := range f.Nodes {
		d, ok := n.Server().Cache().Deadline(string(key))
		if !ok {
			t.Fatalf("node %d: key not resident after replicated set", i)
		}
		deadlines = append(deadlines, d)
	}
	if deadlines[0] != deadlines[1] {
		t.Fatalf("owners disagree on deadline: %d vs %d — exptime was re-relativized",
			deadlines[0], deadlines[1])
	}
	// The deadline is now+60s in unix nanos (the absolute unix-seconds
	// form crosses the wire, so it is second-granular).
	sec := deadlines[0] / int64(time.Second)
	if sec < before+60 || sec > after+60 {
		t.Fatalf("deadline %ds not within [%d, %d]", sec, before+60, after+60)
	}
}

// TestClusterTTLFailoverNeverResurrects: a failover read of an expired
// key must miss on the replica too — ejecting the primary cannot bring
// a dead value back.
func TestClusterTTLFailoverNeverResurrects(t *testing.T) {
	_, cl := replicatedCluster(t, 2, nil)
	dead := keyWithPrimary(t, cl, 0)
	live := append([]byte("live-"), keyWithPrimary(t, cl, 0)...)

	// Negative exptime: both owners store an already-expired entry.
	if err := cl.Set(dead, 0, -1, []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(live, 0, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < cl.cfg.FailThreshold; i++ {
		cl.pools[0].noteFailure()
	}
	if !cl.Ejected(0) {
		t.Fatal("primary not ejected")
	}

	if v, ok, err := cl.Get(dead); err != nil || ok {
		t.Fatalf("failover Get of expired key = (%q, %v, %v), want clean miss", v, ok, err)
	}
	// MultiGet takes the same failover grouping; the expired key must
	// yield no callback.
	hits := 0
	err := cl.MultiGet([][]byte{dead, live}, func(i int, fl uint32, val []byte) {
		hits++
		if i != 1 || string(val) != "v1" {
			t.Fatalf("multiget callback i=%d val=%q, want only the live key", i, val)
		}
	})
	if err != nil || hits != 1 {
		t.Fatalf("multiget over expired+live: hits=%d err=%v, want 1 hit", hits, err)
	}
}

// TestClusterTTLReintegrationFlushNoDoubleCount: a node holding an
// expired corpse gets flushed on reintegration. The flush empties the
// cache without counting the corpse as expired — nothing ever observed
// it dead — so Expired stays exact across the heal.
func TestClusterTTLReintegrationFlushNoDoubleCount(t *testing.T) {
	f, cl := replicatedCluster(t, 2, func(c *Config) {
		c.ProbeInterval = 20 * time.Millisecond
		c.ProbeBackoffMax = 100 * time.Millisecond
	})
	cl.Start()

	key := keyWithPrimary(t, cl, 0)
	if err := cl.Set(key, 0, -1, []byte("corpse")); err != nil {
		t.Fatal(err)
	}
	expiredBefore := f.Nodes[0].Server().Cache().Stats().Expired

	f.Nodes[0].Partition()
	deadline := time.Now().Add(10 * time.Second)
	for !cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("partitioned node never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.Nodes[0].Heal(); err != nil {
		t.Fatal(err)
	}
	for cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("healed node never reintegrated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.Nodes[0].Server().Flushes() == 0 {
		t.Fatal("reintegrated node was never flushed")
	}

	st := f.Nodes[0].Server().Cache().Stats()
	if st.Expired != expiredBefore {
		t.Fatalf("Expired moved %d -> %d across reintegration flush — flushed corpse double-counted",
			expiredBefore, st.Expired)
	}
	// The corpse is gone for good: a read after reintegration is a plain
	// miss on every path.
	if v, ok, err := cl.Get(key); err != nil || ok {
		t.Fatalf("post-reintegration Get = (%q, %v, %v), want miss", v, ok, err)
	}
	// And a fresh write with a TTL works end to end after the heal. The
	// first attempt may land on a pooled connection severed by the
	// partition and surface ErrUnacked (never replayed by the client);
	// re-issuing the idempotent set is the caller's call to make.
	var setErr error
	for attempt := 0; attempt < 3; attempt++ {
		if setErr = cl.Set(key, 0, 60, []byte("reborn")); setErr == nil {
			break
		}
	}
	if setErr != nil {
		t.Fatal(setErr)
	}
	if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != "reborn" {
		t.Fatalf("post-heal TTL set/get = (%q, %v, %v)", v, ok, err)
	}
}
