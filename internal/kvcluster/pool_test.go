package kvcluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// TestPoolEjectReintegrateHammer drives one node's health state from
// many goroutines at once — concurrent failure runs, successes, and
// fail-fast checkouts — the interleaving the router's serving path and
// the prober produce against a flapping node. Run under -race, the
// point is that the atomics compose: the gauge always lands on the
// final ejected state, ejections count transitions (not failure calls),
// and checkout never hands out a client while ejected without the
// channel budget surviving intact.
func TestPoolEjectReintegrateHammer(t *testing.T) {
	reg := metrics.NewRegistry()
	up := reg.Gauge("test_up", "", "t")
	ej := reg.Counter("test_ej", "", "t")
	const size = 4
	p := newNodePool("127.0.0.1:1", 0, size, 3, up, ej, func() *kvproto.ReconnectClient {
		// Never dialed: the hammer only exercises checkout accounting.
		return kvproto.NewReconnect("127.0.0.1:1", kvproto.ReconnectConfig{})
	})

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				switch rng % 4 {
				case 0:
					p.noteFailure()
				case 1:
					p.noteSuccess()
				default:
					c, err := p.get()
					if err != nil {
						if !errors.Is(err, ErrNodeDown) {
							t.Errorf("checkout error: %v", err)
						}
						continue
					}
					p.put(c)
				}
			}
		}(w)
	}
	wg.Wait()

	// Settle into a known state and check the instruments agree.
	for i := 0; i < 3; i++ {
		p.noteFailure()
	}
	if !p.ejected.Load() {
		t.Fatal("three consecutive failures did not eject")
	}
	if up.Load() != 0 {
		t.Errorf("up gauge %d while ejected, want 0", up.Load())
	}
	if _, err := p.get(); !errors.Is(err, ErrNodeDown) {
		t.Errorf("checkout while ejected: err=%v, want ErrNodeDown", err)
	}
	before := ej.Load()
	if before == 0 {
		t.Error("no ejections counted across the hammer")
	}
	p.noteSuccess()
	if p.ejected.Load() || up.Load() != 1 {
		t.Errorf("reintegration failed: ejected=%v up=%d", p.ejected.Load(), up.Load())
	}
	// The full connection budget survived the hammer.
	if got := len(p.free); got != size {
		t.Errorf("pool holds %d clients, want %d", got, size)
	}
	// Eject again: the counter moves exactly once per transition.
	for i := 0; i < 6; i++ {
		p.noteFailure()
	}
	if ej.Load() != before+1 {
		t.Errorf("ejections %d after one more outage, want %d", ej.Load(), before+1)
	}
}

// TestPoolBlockedWaiterFailsFastOnEjection: a checkout that blocked
// behind a full pool while the node was healthy must fail fast with
// ErrNodeDown when the ejection lands mid-wait, not check out a client
// and burn a full operation timeout against a peer already known dead.
// Regression test: get() used to check ejected only before blocking on
// the free channel, so a waiter that entered the wait pre-ejection got a
// client post-ejection. Run under -race alongside the hammer.
func TestPoolBlockedWaiterFailsFastOnEjection(t *testing.T) {
	const size = 2
	p := newNodePool("127.0.0.1:1", 0, size, 3, nil, nil, func() *kvproto.ReconnectClient {
		// Never dialed: the test only exercises checkout accounting.
		return kvproto.NewReconnect("127.0.0.1:1", kvproto.ReconnectConfig{})
	})

	// Drain the pool so the next get() blocks on the channel.
	held := make([]*kvproto.ReconnectClient, 0, size)
	for i := 0; i < size; i++ {
		c, err := p.get()
		if err != nil {
			t.Fatalf("warm checkout %d: %v", i, err)
		}
		held = append(held, c)
	}

	type result struct {
		c   *kvproto.ReconnectClient
		err error
	}
	got := make(chan result, 1)
	go func() {
		c, err := p.get()
		got <- result{c, err}
	}()

	// Let the waiter reach the channel receive, then eject and return one
	// client. The waiter wakes holding a client for a dead node — the fix
	// makes it put the client back and fail fast.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		p.noteFailure()
	}
	p.put(held[0])

	select {
	case r := <-got:
		if !errors.Is(r.err, ErrNodeDown) {
			t.Fatalf("blocked waiter got (%v, %v), want ErrNodeDown", r.c, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked waiter neither failed fast nor checked out")
	}

	// The fail-fast path must not leak capacity: the returned client went
	// back to the channel, so the budget is intact (1 free + 1 held).
	if free := len(p.free); free != 1 {
		t.Fatalf("pool holds %d free clients after fail-fast, want 1", free)
	}
	p.put(held[1])
	if free := len(p.free); free != size {
		t.Fatalf("pool holds %d free clients after returns, want %d", free, size)
	}
}
