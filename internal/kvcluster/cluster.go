package kvcluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// Config assembles a Cluster. Only Nodes is required.
type Config struct {
	// Nodes are the backend addresses; their order fixes node indices
	// (per-node metrics, Ejected) for the cluster's lifetime.
	Nodes []string

	VNodes int    // virtual nodes per physical node (default DefaultVNodes)
	Seed   uint64 // ring + backoff-jitter seed; same seed, same placement

	// PoolSize is the connection budget per node (default 4). Checkout
	// blocks past it, bounding per-node concurrency.
	PoolSize int

	// FailThreshold consecutive failures eject a node (default
	// DefaultFailThreshold).
	FailThreshold int

	// Replicas is the number of distinct ring owners each key lives on
	// (default 1 — exactly the classic single-owner behavior; clamped to
	// len(Nodes)). With Replicas > 1, writes go synchronously to the
	// first non-ejected owner — the client ack is gated only on that ack,
	// preserving the never-replay-ambiguous-writes contract — and
	// best-effort to the remaining owners, with every skipped or failed
	// replica write counted as divergence. Reads route to the primary
	// and fail over to the next live owner when it is ejected or fails,
	// so a single node loss costs hit ratio, never availability.
	Replicas int

	// DisableReintegrationFlush skips the flush_all barrier the cluster
	// normally runs before marking a recovered node up in replicated
	// mode. A partitioned-but-not-restarted node then comes back still
	// holding versions its replica overwrote during the outage — the
	// stale-read regression the chaos gate exists to catch. Tests only.
	DisableReintegrationFlush bool

	// ProbeInterval is the health-probe period for serving nodes
	// (default 250ms); ejected nodes are probed with delays doubling
	// from it up to ProbeBackoffMax (default 2s), so a dead node costs
	// one probe dial per backoff step instead of a connect storm.
	ProbeInterval   time.Duration
	ProbeBackoffMax time.Duration

	// Reconnect tunes the backend clients (timeouts, redial backoff).
	// Counters and Seed are managed by the cluster.
	Reconnect kvproto.ReconnectConfig

	// Registry receives the cluster's instruments; nil creates a
	// private one (exposed via Registry()).
	Registry *metrics.Registry

	// Logf receives operational messages (ejections, reintegrations);
	// nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 2 * time.Second
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > len(c.Nodes) {
		c.Replicas = len(c.Nodes)
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// op indices for the routed/failed counter families.
const (
	ixGet = iota
	ixSet
	ixDelete
	ixGets
	ixCas
	ixOps
)

var ixNames = [ixOps]string{"get", "set", "delete", "gets", "cas"}

// clusterMetrics bundles the cluster's instruments: per-node health and
// latency, fanout shape, routed-vs-failed outcomes, and the aggregated
// backend retry tallies every ReconnectClient in every pool shares.
type clusterMetrics struct {
	nodeUp        []*metrics.Gauge
	nodeEjections []*metrics.Counter
	nodeRTT       []*metrics.Histogram
	fanout        *metrics.Histogram
	routed        [ixOps]*metrics.Counter
	failed        [ixOps]*metrics.Counter
	backend       kvproto.ReconnectCounters

	failoverReads        *metrics.Counter
	replicaWriteFailures *metrics.Counter
	replicaUnacked       *metrics.Counter
	reintegrationFlushes *metrics.Counter
}

func newClusterMetrics(reg *metrics.Registry, nodes []string) *clusterMetrics {
	m := &clusterMetrics{
		nodeUp:        make([]*metrics.Gauge, len(nodes)),
		nodeEjections: make([]*metrics.Counter, len(nodes)),
		nodeRTT:       make([]*metrics.Histogram, len(nodes)),
	}
	// Each family is registered contiguously across its label set — the
	// registry enforces exposition-order grouping at construction time.
	for i, addr := range nodes {
		m.nodeUp[i] = reg.Gauge("kvcluster_node_up", `node="`+addr+`"`, "1 while the node serves its keyspace, 0 while ejected")
	}
	for i, addr := range nodes {
		m.nodeEjections[i] = reg.Counter("kvcluster_node_ejections_total", `node="`+addr+`"`, "transitions into the ejected state")
	}
	for i, addr := range nodes {
		m.nodeRTT[i] = reg.Histogram("kvcluster_node_rtt_seconds", `node="`+addr+`"`, "backend round-trip time, ops and probes")
	}
	m.fanout = reg.HistogramUnitless("kvcluster_fanout_nodes", "", "backend nodes touched per multi-key get")
	for i, name := range ixNames {
		m.routed[i] = reg.Counter("kvcluster_ops_routed_total", `op="`+name+`"`, "operations routed to an owner node")
	}
	for i, name := range ixNames {
		m.failed[i] = reg.Counter("kvcluster_ops_failed_total", `op="`+name+`"`, "routed operations that failed (ejected owner, backend error, ambiguous write)")
	}
	m.backend = kvproto.ReconnectCounters{
		Redials:   reg.Counter("kvcluster_backend_redials_total", "", "backend connections (re)established"),
		Retries:   reg.Counter("kvcluster_backend_retries_total", "", "backend attempts beyond each operation's first"),
		Unacked:   reg.Counter("kvcluster_backend_unacked_total", "", "writes abandoned as ambiguous (never replayed)"),
		Exhausted: reg.Counter("kvcluster_backend_exhausted_total", "", "backend operations that ran out of attempts"),
	}
	m.failoverReads = reg.Counter("kvcluster_failover_reads_total", "",
		"reads served by a non-primary replica (primary ejected or failing mid-op)")
	m.replicaWriteFailures = reg.Counter("kvcluster_replica_write_failures_total", "",
		"best-effort replica writes skipped or failed — replica divergence repaired only by later writes or reintegration flush")
	m.replicaUnacked = reg.Counter("kvcluster_replica_unacked_total", "",
		"replica writes abandoned as ambiguous (subset of backend unacked that never reached a client)")
	m.reintegrationFlushes = reg.Counter("kvcluster_reintegration_flushes_total", "",
		"flush_all barriers completed before marking a recovered node up")
	return m
}

// Cluster routes kvproto operations across a fleet of cache nodes.
// Routing methods are safe for concurrent use; each call checks its
// owner's pool for a connection, so concurrency per node is bounded by
// PoolSize.
type Cluster struct {
	cfg   Config
	ring  *Ring
	pools []*nodePool
	m     *clusterMetrics

	scatters sync.Pool // *scatter, reused across MultiGet calls

	startOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// New builds a Cluster over cfg.Nodes. Connections are dialed lazily by
// the first operation against each node; call Start to begin health
// probing (without it, nodes are only ejected by operation failures and
// never reintegrated).
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg:  cfg,
		ring: ring,
		m:    newClusterMetrics(cfg.Registry, ring.Nodes()),
		stop: make(chan struct{}),
	}
	for i, addr := range ring.Nodes() {
		rcfg := cfg.Reconnect
		rcfg.Counters = &cl.m.backend
		// Decorrelate each connection's backoff jitter while keeping the
		// whole schedule a function of cfg.Seed.
		base := splitmix64(cfg.Seed ^ fnv1a(cfg.Seed, []byte(addr)))
		mkSeed := base
		mk := func() *kvproto.ReconnectClient {
			mkSeed = splitmix64(mkSeed)
			return kvproto.NewReconnect(addr, withSeed(rcfg, mkSeed))
		}
		cl.pools = append(cl.pools, newNodePool(addr, i, cfg.PoolSize,
			int32(cfg.FailThreshold), cl.m.nodeUp[i], cl.m.nodeEjections[i], mk))
	}
	cl.scatters.New = func() any { return &scatter{} }
	return cl, nil
}

func withSeed(cfg kvproto.ReconnectConfig, seed uint64) kvproto.ReconnectConfig {
	cfg.Seed = seed
	return cfg
}

func (cl *Cluster) logf(format string, args ...any) {
	if cl.cfg.Logf != nil {
		cl.cfg.Logf(format, args...)
	}
}

// Registry returns the metrics registry the cluster records into.
func (cl *Cluster) Registry() *metrics.Registry { return cl.cfg.Registry }

// BackendCounters returns the shared retry tallies every backend client
// records into — soak drivers reconcile the Unacked count against the
// ambiguous-write errors their clients observed.
func (cl *Cluster) BackendCounters() *kvproto.ReconnectCounters { return &cl.m.backend }

// Ring returns the cluster's placement ring.
func (cl *Cluster) Ring() *Ring { return cl.ring }

// Ejected reports whether node i (in Config.Nodes order) is currently
// ejected.
func (cl *Cluster) Ejected(i int) bool { return cl.pools[i].ejected.Load() }

// Ejections returns how many times node i has been ejected — the same
// tally the kvcluster_node_ejections_total series exposes, for gates
// that assert the metric fired.
func (cl *Cluster) Ejections(i int) uint64 { return cl.m.nodeEjections[i].Load() }

// Start launches one health prober per node. Safe to call once.
func (cl *Cluster) Start() {
	cl.startOnce.Do(func() {
		for _, p := range cl.pools {
			cl.wg.Add(1)
			go cl.probeLoop(p)
		}
	})
}

// Close stops the probers and closes every pooled connection. Callers
// must have finished all in-flight operations.
func (cl *Cluster) Close() {
	select {
	case <-cl.stop:
	default:
		close(cl.stop)
	}
	cl.wg.Wait()
	for _, p := range cl.pools {
		for {
			select {
			case c := <-p.free:
				c.Close()
			default:
			}
			if len(p.free) == 0 {
				break
			}
		}
	}
}

// probeSeed derives one node's probe-client seed from the cluster seed,
// decorrelated from the pool clients' seeds by the "probe" tag.
func probeSeed(seed uint64, addr string) uint64 {
	return splitmix64(seed ^ fnv1a(seed, []byte(addr)) ^ 0x70726f6265) // "probe"
}

// probePhase is a prober's initial delay: a deterministic per-node
// offset in [0, interval). Without it every prober waited exactly
// ProbeInterval before its first round trip, so the whole fleet's
// probes — including the reintegration probes after an outage — fired
// in lockstep.
func probePhase(seed uint64, interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	return time.Duration(splitmix64(seed) % uint64(interval))
}

// needsReintegrationFlush reports whether a recovered node must be
// flushed before it serves again. Only replicated clusters need the
// barrier: with a single owner per key, an outage fails that keyspace
// fast instead of serving older versions from a replica, so nothing a
// returning node holds can be staler than what clients were acked.
func (cl *Cluster) needsReintegrationFlush() bool {
	return cl.cfg.Replicas > 1 && !cl.cfg.DisableReintegrationFlush
}

// probeLoop drives one node's health: a noop round trip per
// ProbeInterval while serving, delays doubling up to ProbeBackoffMax
// while ejected. The probe client is dedicated (never from the pool) so
// probing an ejected node doesn't fight the fail-fast checkout, and
// single-attempt (the loop owns the retry schedule). In replicated mode
// the prober is also the only path back to serving: a recovered node is
// flushed before it is marked up, because during its outage the
// surviving replicas kept acking newer versions — cold is safe, stale
// is not.
func (cl *Cluster) probeLoop(p *nodePool) {
	defer cl.wg.Done()
	rcfg := cl.cfg.Reconnect
	rcfg.MaxAttempts = 1
	rcfg.Seed = probeSeed(cl.cfg.Seed, p.addr)
	c := kvproto.NewReconnect(p.addr, rcfg)
	defer c.Close()

	delay := cl.cfg.ProbeInterval
	timer := time.NewTimer(probePhase(rcfg.Seed, delay))
	defer timer.Stop()
	for {
		select {
		case <-cl.stop:
			return
		case <-timer.C:
		}
		start := time.Now()
		err := c.Noop()
		if err == nil && p.ejected.Load() && cl.needsReintegrationFlush() {
			// The node answers again, but if it was partitioned rather
			// than restarted it still holds whatever it served before the
			// outage. Flush before marking it up; a failed flush keeps it
			// ejected and on the backoff schedule.
			if ferr := c.FlushAll(); ferr != nil {
				err = ferr
			} else {
				cl.m.reintegrationFlushes.Inc()
				cl.logf("kvcluster: node %s flushed before reintegration", p.addr)
			}
		}
		if err == nil {
			cl.m.nodeRTT[p.idx].Record(time.Since(start))
			if p.noteSuccess() {
				cl.logf("kvcluster: node %s reintegrated", p.addr)
			}
			delay = cl.cfg.ProbeInterval
		} else {
			if p.noteFailure() {
				cl.logf("kvcluster: node %s ejected: %v", p.addr, err)
			}
			if p.ejected.Load() {
				delay *= 2
				if delay > cl.cfg.ProbeBackoffMax {
					delay = cl.cfg.ProbeBackoffMax
				}
			} else {
				delay = cl.cfg.ProbeInterval
			}
		}
		timer.Reset(delay)
	}
}

// observe classifies an operation's outcome for node health: nil resets
// the failure run; a recoverable, non-busy protocol rejection is the
// caller's mistake, not the node's; anything else (dead stream,
// exhausted retries, sustained busy shedding, ambiguous write) counts
// toward ejection.
func (cl *Cluster) observe(p *nodePool, err error) {
	if err == nil {
		if cl.cfg.Replicas > 1 {
			// Replicated clusters reintegrate only through the prober,
			// which flushes the node first — an op that happens to reach
			// an ejected node must not mark it up with stale contents.
			p.noteSuccessKeepEjected()
		} else {
			p.noteSuccess()
		}
		return
	}
	if kvproto.Recoverable(err) && !kvproto.IsBusy(err) {
		return
	}
	if p.noteFailure() {
		cl.logf("kvcluster: node %s ejected: %v", p.addr, err)
	}
}

// ownersFor appends key's replica set (primary first) into buf.
func (cl *Cluster) ownersFor(buf []int, key []byte) []int {
	if cl.cfg.Replicas <= 1 {
		return append(buf, cl.ring.OwnerIndex(key))
	}
	return cl.ring.AppendOwnerIndexes(buf, key, cl.cfg.Replicas)
}

// syncOwner picks the write target: the first non-ejected owner, or -1
// when the whole replica set is down. Writes never fail over mid-op —
// an owner that dies between the pick and the ack surfaces as an error
// rather than silently acking on a node the next read won't prefer.
func (cl *Cluster) syncOwner(owners []int) int {
	for _, o := range owners {
		if !cl.pools[o].ejected.Load() {
			return o
		}
	}
	return -1
}

// Get fetches key from its primary owner, failing over to the next
// live replica when the primary is ejected or fails mid-op. The
// returned value is a fresh copy (safe to retain). With the whole
// replica set down it fails fast with ErrNodeDown.
func (cl *Cluster) Get(key []byte) (val []byte, ok bool, err error) {
	cl.m.routed[ixGet].Inc()
	var ownBuf [8]int
	owners := cl.ownersFor(ownBuf[:0], key)
	var lastErr error
	for ai, o := range owners {
		p := cl.pools[o]
		if p.ejected.Load() {
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
			}
			continue
		}
		if ai > 0 {
			cl.m.failoverReads.Inc()
		}
		c, cerr := p.get()
		if cerr != nil {
			// Lost the race with an ejection between the check and the
			// checkout; treat it like finding the node already ejected.
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
			}
			continue
		}
		start := time.Now()
		v, hit, gerr := c.Get(key)
		cl.m.nodeRTT[p.idx].Record(time.Since(start))
		if hit {
			val = append([]byte(nil), v...)
		}
		p.put(c)
		cl.observe(p, gerr)
		if gerr == nil {
			return val, hit, nil
		}
		val = nil
		if kvproto.Recoverable(gerr) && !kvproto.IsBusy(gerr) {
			// The server rejected the request itself; every replica
			// would reject it identically, so don't retry sideways.
			cl.m.failed[ixGet].Inc()
			return nil, false, fmt.Errorf("kvcluster: get via %s: %w", p.addr, gerr)
		}
		lastErr = fmt.Errorf("kvcluster: get via %s: %w", p.addr, gerr)
	}
	cl.m.failed[ixGet].Inc()
	return nil, false, lastErr
}

// Gets fetches key together with its flags and cas unique, with Get's
// exact routing: primary owner first, failing over to the next live
// replica when the primary is ejected or fails mid-op. The returned
// value is a fresh copy (safe to retain).
//
// Cas uniques are node-local: the unique returned here identifies a
// version on whichever node answered. A later Cas gates on the replica
// set's current synchronous owner, so a unique fetched from a failover
// replica (or from a primary that was ejected in between) will not match
// that owner's counter and the cas answers EXISTS — the caller re-reads
// and retries, and a stale swap is never silently applied.
func (cl *Cluster) Gets(key []byte) (val []byte, flags uint32, casid uint64, ok bool, err error) {
	cl.m.routed[ixGets].Inc()
	var ownBuf [8]int
	owners := cl.ownersFor(ownBuf[:0], key)
	var lastErr error
	for ai, o := range owners {
		p := cl.pools[o]
		if p.ejected.Load() {
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
			}
			continue
		}
		if ai > 0 {
			cl.m.failoverReads.Inc()
		}
		c, cerr := p.get()
		if cerr != nil {
			// Lost the race with an ejection between the check and the
			// checkout; treat it like finding the node already ejected.
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
			}
			continue
		}
		start := time.Now()
		v, f, id, hit, gerr := c.Gets(key)
		cl.m.nodeRTT[p.idx].Record(time.Since(start))
		if hit {
			val = append([]byte(nil), v...)
		}
		p.put(c)
		cl.observe(p, gerr)
		if gerr == nil {
			return val, f, id, hit, nil
		}
		val = nil
		if kvproto.Recoverable(gerr) && !kvproto.IsBusy(gerr) {
			// The server rejected the request itself; every replica
			// would reject it identically, so don't retry sideways.
			cl.m.failed[ixGets].Inc()
			return nil, 0, 0, false, fmt.Errorf("kvcluster: gets via %s: %w", p.addr, gerr)
		}
		lastErr = fmt.Errorf("kvcluster: gets via %s: %w", p.addr, gerr)
	}
	cl.m.failed[ixGets].Inc()
	return nil, 0, 0, false, lastErr
}

// setOn runs one Set against one node's pool, with health accounting.
// exptime arrives already normalized to its absolute form by Set, so the
// synchronous owner and every replica store the same deadline.
func (cl *Cluster) setOn(p *nodePool, key []byte, flags uint32, exptime int64, val []byte) error {
	c, err := p.get()
	if err != nil {
		return fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
	}
	start := time.Now()
	err = c.Set(key, flags, exptime, val)
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	p.put(c)
	cl.observe(p, err)
	return err
}

// deleteOn runs one Delete against one node's pool, with health
// accounting.
func (cl *Cluster) deleteOn(p *nodePool, key []byte) (bool, error) {
	c, err := p.get()
	if err != nil {
		return false, fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
	}
	start := time.Now()
	found, err := c.Delete(key)
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	p.put(c)
	cl.observe(p, err)
	return found, err
}

// replicate fans a write out to key's non-primary owners after the
// synchronous ack is already earned. Replica writes are strictly
// best-effort: a skipped (ejected) or failed replica only bumps the
// divergence counter — reads prefer the primary, and reintegration
// flushes close the stale window — and an ambiguous replica write is
// additionally tallied so unacked reconciliation can subtract writes
// that never gated a client ack.
func (cl *Cluster) replicate(owners []int, sync int, do func(p *nodePool) error) {
	for _, o := range owners {
		if o == sync {
			continue
		}
		rp := cl.pools[o]
		if rp.ejected.Load() {
			cl.m.replicaWriteFailures.Inc()
			continue
		}
		if rerr := do(rp); rerr != nil {
			cl.m.replicaWriteFailures.Inc()
			if errors.Is(rerr, kvproto.ErrUnacked) {
				cl.m.replicaUnacked.Inc()
			}
		}
	}
}

// Set stores val under key on the first live owner; the ack gates only
// on that node, then the write is replicated best-effort to the other
// owners. The backend client never replays an ambiguous write, so an
// ErrUnacked from the synchronous owner propagates unchanged — the
// caller owns the idempotency decision, exactly as with a single node.
//
// A relative exptime is normalized to its absolute form once at entry,
// so the synchronous owner, every replica, and any backend-level retry
// all carry the identical deadline — replication lag can never extend a
// value's life on one owner relative to another.
func (cl *Cluster) Set(key []byte, flags uint32, exptime int64, val []byte) error {
	cl.m.routed[ixSet].Inc()
	exptime = kvproto.AbsoluteExptime(exptime, time.Now())
	var ownBuf [8]int
	owners := cl.ownersFor(ownBuf[:0], key)
	sync := cl.syncOwner(owners)
	if sync < 0 {
		cl.m.failed[ixSet].Inc()
		return fmt.Errorf("%w: %s", ErrNodeDown, cl.pools[owners[0]].addr)
	}
	p := cl.pools[sync]
	if err := cl.setOn(p, key, flags, exptime, val); err != nil {
		cl.m.failed[ixSet].Inc()
		if errors.Is(err, ErrNodeDown) {
			return err
		}
		return fmt.Errorf("kvcluster: set via %s: %w", p.addr, err)
	}
	cl.replicate(owners, sync, func(rp *nodePool) error {
		return cl.setOn(rp, key, flags, exptime, val)
	})
	return nil
}

// casOn runs one Cas against one node's pool, with health accounting.
// exptime arrives already normalized to its absolute form by Cas.
func (cl *Cluster) casOn(p *nodePool, key []byte, flags uint32, exptime int64, casid uint64, val []byte) (kvproto.CasStatus, error) {
	c, err := p.get()
	if err != nil {
		return kvproto.CasNotFound, fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
	}
	start := time.Now()
	st, err := c.Cas(key, flags, exptime, casid, val)
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	p.put(c)
	cl.observe(p, err)
	return st, err
}

// Cas atomically replaces key's value iff its cas unique — from a prior
// Gets — still matches, with Set's ack contract: the operation gates on
// the replica set's current synchronous owner alone and never fails over
// sideways mid-op. Because cas uniques are node-local, a unique obtained
// before a failover cannot match the new owner's counter: the cas
// answers CasExists and the caller's read-modify-write loop re-reads,
// which is exactly the safe outcome — a conflict is reported instead of
// a lost update being applied.
//
// A winning cas is replicated to the remaining owners as a plain set of
// the stored value (best-effort, like Set): replica cas uniques would
// never match anyway, and the replicas' job is only to hold the newest
// acked value for failover reads. CasExists/CasNotFound outcomes change
// nothing and are not replicated.
//
// An ambiguous attempt surfaces as ErrUnacked and is never replayed — a
// replayed winning cas would consume its own unique and falsely report
// a conflict.
func (cl *Cluster) Cas(key []byte, flags uint32, exptime int64, casid uint64, val []byte) (kvproto.CasStatus, error) {
	cl.m.routed[ixCas].Inc()
	exptime = kvproto.AbsoluteExptime(exptime, time.Now())
	var ownBuf [8]int
	owners := cl.ownersFor(ownBuf[:0], key)
	sync := cl.syncOwner(owners)
	if sync < 0 {
		cl.m.failed[ixCas].Inc()
		return kvproto.CasNotFound, fmt.Errorf("%w: %s", ErrNodeDown, cl.pools[owners[0]].addr)
	}
	p := cl.pools[sync]
	st, err := cl.casOn(p, key, flags, exptime, casid, val)
	if err != nil {
		cl.m.failed[ixCas].Inc()
		if errors.Is(err, ErrNodeDown) {
			return kvproto.CasNotFound, err
		}
		return kvproto.CasNotFound, fmt.Errorf("kvcluster: cas via %s: %w", p.addr, err)
	}
	if st == kvproto.CasStored {
		cl.replicate(owners, sync, func(rp *nodePool) error {
			return cl.setOn(rp, key, flags, exptime, val)
		})
	}
	return st, nil
}

// Delete removes key on the first live owner, with Set's ack and
// replication contract.
func (cl *Cluster) Delete(key []byte) (bool, error) {
	cl.m.routed[ixDelete].Inc()
	var ownBuf [8]int
	owners := cl.ownersFor(ownBuf[:0], key)
	sync := cl.syncOwner(owners)
	if sync < 0 {
		cl.m.failed[ixDelete].Inc()
		return false, fmt.Errorf("%w: %s", ErrNodeDown, cl.pools[owners[0]].addr)
	}
	p := cl.pools[sync]
	found, err := cl.deleteOn(p, key)
	if err != nil {
		cl.m.failed[ixDelete].Inc()
		if errors.Is(err, ErrNodeDown) {
			return false, err
		}
		return false, fmt.Errorf("kvcluster: delete via %s: %w", p.addr, err)
	}
	cl.replicate(owners, sync, func(rp *nodePool) error {
		_, rerr := cl.deleteOn(rp, key)
		return rerr
	})
	return found, nil
}

// valRef records one key's outcome inside a scatter: where its value
// bytes landed in the owner node's scratch buffer.
type valRef struct {
	hit   bool
	flags uint32
	node  int
	off   int
	n     int
}

// scatter is the reusable state of one multi-key get: per-node index
// groups and key slices (disjoint, so node goroutines never share an
// element), per-node value scratch, and the per-key outcome table.
type scatter struct {
	groups [][]int
	keys   [][][]byte
	bufs   [][]byte
	errs   []error
	refs   []valRef
}

func (sc *scatter) reset(nodes, nkeys int) {
	for len(sc.groups) < nodes {
		sc.groups = append(sc.groups, nil)
		sc.keys = append(sc.keys, nil)
		sc.bufs = append(sc.bufs, nil)
		sc.errs = append(sc.errs, nil)
	}
	for i := 0; i < nodes; i++ {
		sc.groups[i] = sc.groups[i][:0]
		sc.keys[i] = sc.keys[i][:0]
		sc.bufs[i] = sc.bufs[i][:0]
		sc.errs[i] = nil
	}
	if cap(sc.refs) < nkeys {
		sc.refs = make([]valRef, nkeys)
	}
	sc.refs = sc.refs[:nkeys]
	for i := range sc.refs {
		sc.refs[i] = valRef{}
	}
}

// MultiGet fetches any number of keys, splitting the burst by each
// key's first live owner, running the sub-gets concurrently (each
// chunked at the protocol's MaxGetKeys by the backend client), and
// delivering hits via fn in exact request order — index i refers to
// keys[i], and val is valid only until fn returns.
//
// In replicated mode a sub-get that fails mid-burst gets a second
// chance: its keys are regrouped onto their next live replica and
// retried, and only keys with no live alternative fail. Hits from the
// retry pass interleave with first-pass hits in exact request order.
// If any key still has no answer, the surviving hits are delivered and
// MultiGet returns an error naming the first failed node — the caller
// knows the answer is partial and can degrade explicitly, the way
// cmd/kvrouter terminates the reply with SERVER_ERROR instead of END.
func (cl *Cluster) MultiGet(keys [][]byte, fn func(i int, flags uint32, val []byte)) error {
	if len(keys) == 0 {
		return nil
	}
	cl.m.routed[ixGet].Add(uint64(len(keys)))
	sc := cl.scatters.Get().(*scatter)
	defer cl.scatters.Put(sc)
	sc.reset(len(cl.pools), len(keys))

	var ownBuf [8]int
	touched, failover := 0, 0
	for i, k := range keys {
		owners := cl.ownersFor(ownBuf[:0], k)
		n := owners[0]
		for _, o := range owners {
			if !cl.pools[o].ejected.Load() {
				n = o
				break
			}
		}
		// All owners ejected: keep the primary so the group fails fast
		// with the single-owner error shape.
		if n != owners[0] {
			failover++
		}
		if len(sc.groups[n]) == 0 {
			touched++
		}
		sc.groups[n] = append(sc.groups[n], i)
		sc.keys[n] = append(sc.keys[n], k)
	}
	if failover > 0 {
		cl.m.failoverReads.Add(uint64(failover))
	}
	cl.m.fanout.RecordNS(int64(touched))

	cl.runScatter(sc)

	// Failover retry pass: keys whose node failed mid-burst move to
	// their next live replica. The retry uses a second scatter so the
	// first pass's partial bytes stay addressable for delivery checks.
	var sc2 *scatter
	var retryNode []int
	if cl.cfg.Replicas > 1 && cl.scatterFailed(sc) {
		sc2 = cl.scatters.Get().(*scatter)
		defer cl.scatters.Put(sc2)
		sc2.reset(len(cl.pools), len(keys))
		retryNode = make([]int, len(keys))
		for i := range retryNode {
			retryNode[i] = -1
		}
		retried := 0
		for n := range cl.pools {
			if sc.errs[n] == nil {
				continue
			}
			for j, gi := range sc.groups[n] {
				k := sc.keys[n][j]
				owners := cl.ownersFor(ownBuf[:0], k)
				for _, o := range owners {
					if o == n || cl.pools[o].ejected.Load() || sc.errs[o] != nil {
						continue
					}
					retryNode[gi] = o
					sc2.groups[o] = append(sc2.groups[o], gi)
					sc2.keys[o] = append(sc2.keys[o], k)
					retried++
					break
				}
			}
		}
		if retried > 0 {
			cl.m.failoverReads.Add(uint64(retried))
			cl.runScatter(sc2)
		}
	}

	// Deliver in request order, skipping hits from failed nodes — a
	// node that died mid-burst may have reported a stale partial run. A
	// key whose first-pass node failed delivers from the retry pass
	// instead; the single index loop keeps exact request order across
	// the two passes.
	for i := range sc.refs {
		if r := &sc.refs[i]; r.hit && sc.errs[r.node] == nil {
			fn(i, r.flags, sc.bufs[r.node][r.off:r.off+r.n])
			continue
		}
		if sc2 == nil {
			continue
		}
		if r := &sc2.refs[i]; r.hit && sc2.errs[r.node] == nil {
			fn(i, r.flags, sc2.bufs[r.node][r.off:r.off+r.n])
		}
	}

	// A key failed only if its first-pass node failed and no retry
	// reached a live replica cleanly.
	failedKeys := 0
	var firstErr error
	var firstAddr string
	for n := range cl.pools {
		if sc.errs[n] == nil {
			continue
		}
		for _, gi := range sc.groups[n] {
			if retryNode != nil {
				if rn := retryNode[gi]; rn >= 0 && sc2.errs[rn] == nil {
					continue
				}
			}
			failedKeys++
			if firstErr == nil {
				firstErr = sc.errs[n]
				firstAddr = cl.pools[n].addr
			}
		}
	}
	if failedKeys > 0 {
		cl.m.failed[ixGet].Add(uint64(failedKeys))
		return fmt.Errorf("kvcluster: multiget via %s: %w", firstAddr, firstErr)
	}
	return nil
}

// scatterFailed reports whether any populated group of sc errored.
func (cl *Cluster) scatterFailed(sc *scatter) bool {
	for n := range cl.pools {
		if sc.errs[n] != nil && len(sc.groups[n]) > 0 {
			return true
		}
	}
	return false
}

// runScatter executes every populated group of sc, serially when only
// one node is touched (no goroutine churn for single-node bursts),
// concurrently otherwise.
func (cl *Cluster) runScatter(sc *scatter) {
	touched := 0
	for n := range sc.groups {
		if len(sc.groups[n]) > 0 {
			touched++
		}
	}
	if touched == 1 {
		for n := range sc.groups {
			if len(sc.groups[n]) > 0 {
				cl.subGet(sc, n)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for n := range sc.groups {
		if len(sc.groups[n]) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cl.subGet(sc, n)
		}(n)
	}
	wg.Wait()
}

// FlushAll empties every live node in the fleet. Ejected nodes are
// skipped: in replicated mode that is safe — the reintegration barrier
// flushes them before they serve again — but with a single replica
// there is no such barrier, so a skipped node makes the flush partial
// and is reported as ErrNodeDown after the live nodes are flushed.
func (cl *Cluster) FlushAll() error {
	var firstErr error
	for _, p := range cl.pools {
		if p.ejected.Load() {
			if !cl.needsReintegrationFlush() && firstErr == nil {
				firstErr = fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
			}
			continue
		}
		c, err := p.get()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
			}
			continue
		}
		start := time.Now()
		err = c.FlushAll()
		cl.m.nodeRTT[p.idx].Record(time.Since(start))
		p.put(c)
		cl.observe(p, err)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("kvcluster: flush_all via %s: %w", p.addr, err)
		}
	}
	return firstErr
}

// FailoverReads reports reads served by a non-primary replica.
func (cl *Cluster) FailoverReads() uint64 { return cl.m.failoverReads.Load() }

// ReplicaWriteFailures reports best-effort replica writes skipped or
// failed — the replica-divergence tally.
func (cl *Cluster) ReplicaWriteFailures() uint64 { return cl.m.replicaWriteFailures.Load() }

// ReplicaUnacked reports replica writes abandoned as ambiguous; soak
// drivers subtract it from the backend unacked tally to reconcile
// against the ambiguous errors their clients actually observed.
func (cl *Cluster) ReplicaUnacked() uint64 { return cl.m.replicaUnacked.Load() }

// ReintegrationFlushes reports flush_all barriers completed before a
// recovered node was marked up.
func (cl *Cluster) ReintegrationFlushes() uint64 { return cl.m.reintegrationFlushes.Load() }

// Replicas reports the effective replication factor.
func (cl *Cluster) Replicas() int { return cl.cfg.Replicas }

// subGet runs one node's slice of a scatter. It writes only this node's
// disjoint entries of sc.refs/sc.bufs/sc.errs, so concurrent subGets
// never race.
func (cl *Cluster) subGet(sc *scatter, n int) {
	p := cl.pools[n]
	c, err := p.get()
	if err != nil {
		sc.errs[n] = err
		return
	}
	group := sc.groups[n]
	start := time.Now()
	err = c.MultiGet(sc.keys[n], func(j int, flags uint32, val []byte) {
		// A backend retry replays the whole chunk; appending again and
		// re-pointing the ref keeps the last run's bytes, which is the
		// idempotent-callback contract MultiGet documents.
		gi := group[j]
		off := len(sc.bufs[n])
		sc.bufs[n] = append(sc.bufs[n], val...)
		sc.refs[gi] = valRef{hit: true, flags: flags, node: n, off: off, n: len(val)}
	})
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	p.put(c)
	cl.observe(p, err)
	sc.errs[n] = err
}
