package kvcluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// Config assembles a Cluster. Only Nodes is required.
type Config struct {
	// Nodes are the backend addresses; their order fixes node indices
	// (per-node metrics, Ejected) for the cluster's lifetime.
	Nodes []string

	VNodes int    // virtual nodes per physical node (default DefaultVNodes)
	Seed   uint64 // ring + backoff-jitter seed; same seed, same placement

	// PoolSize is the connection budget per node (default 4). Checkout
	// blocks past it, bounding per-node concurrency.
	PoolSize int

	// FailThreshold consecutive failures eject a node (default
	// DefaultFailThreshold).
	FailThreshold int

	// ProbeInterval is the health-probe period for serving nodes
	// (default 250ms); ejected nodes are probed with delays doubling
	// from it up to ProbeBackoffMax (default 2s), so a dead node costs
	// one probe dial per backoff step instead of a connect storm.
	ProbeInterval   time.Duration
	ProbeBackoffMax time.Duration

	// Reconnect tunes the backend clients (timeouts, redial backoff).
	// Counters and Seed are managed by the cluster.
	Reconnect kvproto.ReconnectConfig

	// Registry receives the cluster's instruments; nil creates a
	// private one (exposed via Registry()).
	Registry *metrics.Registry

	// Logf receives operational messages (ejections, reintegrations);
	// nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// op indices for the routed/failed counter families.
const (
	ixGet = iota
	ixSet
	ixDelete
	ixOps
)

var ixNames = [ixOps]string{"get", "set", "delete"}

// clusterMetrics bundles the cluster's instruments: per-node health and
// latency, fanout shape, routed-vs-failed outcomes, and the aggregated
// backend retry tallies every ReconnectClient in every pool shares.
type clusterMetrics struct {
	nodeUp        []*metrics.Gauge
	nodeEjections []*metrics.Counter
	nodeRTT       []*metrics.Histogram
	fanout        *metrics.Histogram
	routed        [ixOps]*metrics.Counter
	failed        [ixOps]*metrics.Counter
	backend       kvproto.ReconnectCounters
}

func newClusterMetrics(reg *metrics.Registry, nodes []string) *clusterMetrics {
	m := &clusterMetrics{
		nodeUp:        make([]*metrics.Gauge, len(nodes)),
		nodeEjections: make([]*metrics.Counter, len(nodes)),
		nodeRTT:       make([]*metrics.Histogram, len(nodes)),
	}
	// Each family is registered contiguously across its label set — the
	// registry enforces exposition-order grouping at construction time.
	for i, addr := range nodes {
		m.nodeUp[i] = reg.Gauge("kvcluster_node_up", `node="`+addr+`"`, "1 while the node serves its keyspace, 0 while ejected")
	}
	for i, addr := range nodes {
		m.nodeEjections[i] = reg.Counter("kvcluster_node_ejections_total", `node="`+addr+`"`, "transitions into the ejected state")
	}
	for i, addr := range nodes {
		m.nodeRTT[i] = reg.Histogram("kvcluster_node_rtt_seconds", `node="`+addr+`"`, "backend round-trip time, ops and probes")
	}
	m.fanout = reg.HistogramUnitless("kvcluster_fanout_nodes", "", "backend nodes touched per multi-key get")
	for i, name := range ixNames {
		m.routed[i] = reg.Counter("kvcluster_ops_routed_total", `op="`+name+`"`, "operations routed to an owner node")
	}
	for i, name := range ixNames {
		m.failed[i] = reg.Counter("kvcluster_ops_failed_total", `op="`+name+`"`, "routed operations that failed (ejected owner, backend error, ambiguous write)")
	}
	m.backend = kvproto.ReconnectCounters{
		Redials:   reg.Counter("kvcluster_backend_redials_total", "", "backend connections (re)established"),
		Retries:   reg.Counter("kvcluster_backend_retries_total", "", "backend attempts beyond each operation's first"),
		Unacked:   reg.Counter("kvcluster_backend_unacked_total", "", "writes abandoned as ambiguous (never replayed)"),
		Exhausted: reg.Counter("kvcluster_backend_exhausted_total", "", "backend operations that ran out of attempts"),
	}
	return m
}

// Cluster routes kvproto operations across a fleet of cache nodes.
// Routing methods are safe for concurrent use; each call checks its
// owner's pool for a connection, so concurrency per node is bounded by
// PoolSize.
type Cluster struct {
	cfg   Config
	ring  *Ring
	pools []*nodePool
	m     *clusterMetrics

	scatters sync.Pool // *scatter, reused across MultiGet calls

	startOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// New builds a Cluster over cfg.Nodes. Connections are dialed lazily by
// the first operation against each node; call Start to begin health
// probing (without it, nodes are only ejected by operation failures and
// never reintegrated).
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg:  cfg,
		ring: ring,
		m:    newClusterMetrics(cfg.Registry, ring.Nodes()),
		stop: make(chan struct{}),
	}
	for i, addr := range ring.Nodes() {
		rcfg := cfg.Reconnect
		rcfg.Counters = &cl.m.backend
		// Decorrelate each connection's backoff jitter while keeping the
		// whole schedule a function of cfg.Seed.
		base := splitmix64(cfg.Seed ^ fnv1a(cfg.Seed, []byte(addr)))
		mkSeed := base
		mk := func() *kvproto.ReconnectClient {
			mkSeed = splitmix64(mkSeed)
			return kvproto.NewReconnect(addr, withSeed(rcfg, mkSeed))
		}
		cl.pools = append(cl.pools, newNodePool(addr, i, cfg.PoolSize,
			int32(cfg.FailThreshold), cl.m.nodeUp[i], cl.m.nodeEjections[i], mk))
	}
	cl.scatters.New = func() any { return &scatter{} }
	return cl, nil
}

func withSeed(cfg kvproto.ReconnectConfig, seed uint64) kvproto.ReconnectConfig {
	cfg.Seed = seed
	return cfg
}

func (cl *Cluster) logf(format string, args ...any) {
	if cl.cfg.Logf != nil {
		cl.cfg.Logf(format, args...)
	}
}

// Registry returns the metrics registry the cluster records into.
func (cl *Cluster) Registry() *metrics.Registry { return cl.cfg.Registry }

// BackendCounters returns the shared retry tallies every backend client
// records into — soak drivers reconcile the Unacked count against the
// ambiguous-write errors their clients observed.
func (cl *Cluster) BackendCounters() *kvproto.ReconnectCounters { return &cl.m.backend }

// Ring returns the cluster's placement ring.
func (cl *Cluster) Ring() *Ring { return cl.ring }

// Ejected reports whether node i (in Config.Nodes order) is currently
// ejected.
func (cl *Cluster) Ejected(i int) bool { return cl.pools[i].ejected.Load() }

// Ejections returns how many times node i has been ejected — the same
// tally the kvcluster_node_ejections_total series exposes, for gates
// that assert the metric fired.
func (cl *Cluster) Ejections(i int) uint64 { return cl.m.nodeEjections[i].Load() }

// Start launches one health prober per node. Safe to call once.
func (cl *Cluster) Start() {
	cl.startOnce.Do(func() {
		for _, p := range cl.pools {
			cl.wg.Add(1)
			go cl.probeLoop(p)
		}
	})
}

// Close stops the probers and closes every pooled connection. Callers
// must have finished all in-flight operations.
func (cl *Cluster) Close() {
	select {
	case <-cl.stop:
	default:
		close(cl.stop)
	}
	cl.wg.Wait()
	for _, p := range cl.pools {
		for {
			select {
			case c := <-p.free:
				c.Close()
			default:
			}
			if len(p.free) == 0 {
				break
			}
		}
	}
}

// probeLoop drives one node's health: a noop round trip per
// ProbeInterval while serving, delays doubling up to ProbeBackoffMax
// while ejected. The probe client is dedicated (never from the pool) so
// probing an ejected node doesn't fight the fail-fast checkout, and
// single-attempt (the loop owns the retry schedule).
func (cl *Cluster) probeLoop(p *nodePool) {
	defer cl.wg.Done()
	rcfg := cl.cfg.Reconnect
	rcfg.MaxAttempts = 1
	rcfg.Seed = splitmix64(cl.cfg.Seed ^ fnv1a(cl.cfg.Seed, []byte(p.addr)) ^ 0x70726f6265) // "probe"
	c := kvproto.NewReconnect(p.addr, rcfg)
	defer c.Close()

	delay := cl.cfg.ProbeInterval
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-cl.stop:
			return
		case <-timer.C:
		}
		start := time.Now()
		err := c.Noop()
		if err == nil {
			cl.m.nodeRTT[p.idx].Record(time.Since(start))
			if p.noteSuccess() {
				cl.logf("kvcluster: node %s reintegrated", p.addr)
			}
			delay = cl.cfg.ProbeInterval
		} else {
			if p.noteFailure() {
				cl.logf("kvcluster: node %s ejected: %v", p.addr, err)
			}
			if p.ejected.Load() {
				delay *= 2
				if delay > cl.cfg.ProbeBackoffMax {
					delay = cl.cfg.ProbeBackoffMax
				}
			} else {
				delay = cl.cfg.ProbeInterval
			}
		}
		timer.Reset(delay)
	}
}

// observe classifies an operation's outcome for node health: nil resets
// the failure run; a recoverable, non-busy protocol rejection is the
// caller's mistake, not the node's; anything else (dead stream,
// exhausted retries, sustained busy shedding, ambiguous write) counts
// toward ejection.
func (cl *Cluster) observe(p *nodePool, err error) {
	if err == nil {
		p.noteSuccess()
		return
	}
	if kvproto.Recoverable(err) && !kvproto.IsBusy(err) {
		return
	}
	if p.noteFailure() {
		cl.logf("kvcluster: node %s ejected: %v", p.addr, err)
	}
}

// Get fetches key from its owner. The returned value is a fresh copy
// (safe to retain). An ejected owner fails fast with ErrNodeDown.
func (cl *Cluster) Get(key []byte) (val []byte, ok bool, err error) {
	cl.m.routed[ixGet].Inc()
	p := cl.pools[cl.ring.OwnerIndex(key)]
	c, err := p.get()
	if err != nil {
		cl.m.failed[ixGet].Inc()
		return nil, false, fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
	}
	start := time.Now()
	v, ok, err := c.Get(key)
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	if ok {
		val = append([]byte(nil), v...)
	}
	p.put(c)
	cl.observe(p, err)
	if err != nil {
		cl.m.failed[ixGet].Inc()
		return nil, false, fmt.Errorf("kvcluster: get via %s: %w", p.addr, err)
	}
	return val, ok, nil
}

// Set stores val under key on its owner. The backend client never
// replays an ambiguous write, so an ErrUnacked from it propagates
// unchanged — the caller owns the idempotency decision, exactly as with
// a single node.
func (cl *Cluster) Set(key []byte, flags uint32, val []byte) error {
	cl.m.routed[ixSet].Inc()
	p := cl.pools[cl.ring.OwnerIndex(key)]
	c, err := p.get()
	if err != nil {
		cl.m.failed[ixSet].Inc()
		return fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
	}
	start := time.Now()
	err = c.Set(key, flags, val)
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	p.put(c)
	cl.observe(p, err)
	if err != nil {
		cl.m.failed[ixSet].Inc()
		return fmt.Errorf("kvcluster: set via %s: %w", p.addr, err)
	}
	return nil
}

// Delete removes key on its owner, with Set's ambiguity contract.
func (cl *Cluster) Delete(key []byte) (bool, error) {
	cl.m.routed[ixDelete].Inc()
	p := cl.pools[cl.ring.OwnerIndex(key)]
	c, err := p.get()
	if err != nil {
		cl.m.failed[ixDelete].Inc()
		return false, fmt.Errorf("%w: %s", ErrNodeDown, p.addr)
	}
	start := time.Now()
	found, err := c.Delete(key)
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	p.put(c)
	cl.observe(p, err)
	if err != nil {
		cl.m.failed[ixDelete].Inc()
		return false, fmt.Errorf("kvcluster: delete via %s: %w", p.addr, err)
	}
	return found, nil
}

// valRef records one key's outcome inside a scatter: where its value
// bytes landed in the owner node's scratch buffer.
type valRef struct {
	hit   bool
	flags uint32
	node  int
	off   int
	n     int
}

// scatter is the reusable state of one multi-key get: per-node index
// groups and key slices (disjoint, so node goroutines never share an
// element), per-node value scratch, and the per-key outcome table.
type scatter struct {
	groups [][]int
	keys   [][][]byte
	bufs   [][]byte
	errs   []error
	refs   []valRef
}

func (sc *scatter) reset(nodes, nkeys int) {
	for len(sc.groups) < nodes {
		sc.groups = append(sc.groups, nil)
		sc.keys = append(sc.keys, nil)
		sc.bufs = append(sc.bufs, nil)
		sc.errs = append(sc.errs, nil)
	}
	for i := 0; i < nodes; i++ {
		sc.groups[i] = sc.groups[i][:0]
		sc.keys[i] = sc.keys[i][:0]
		sc.bufs[i] = sc.bufs[i][:0]
		sc.errs[i] = nil
	}
	if cap(sc.refs) < nkeys {
		sc.refs = make([]valRef, nkeys)
	}
	sc.refs = sc.refs[:nkeys]
	for i := range sc.refs {
		sc.refs[i] = valRef{}
	}
}

// MultiGet fetches any number of keys, splitting the burst by owner
// node, running the sub-gets concurrently (each chunked at the
// protocol's MaxGetKeys by the backend client), and delivering hits via
// fn in exact request order — index i refers to keys[i], and val is
// valid only until fn returns.
//
// If any owner is ejected or its sub-get fails, the hits from healthy
// owners are still delivered (in order) and MultiGet then returns an
// error naming the first failed node — the caller knows the answer is
// partial and can degrade explicitly, the way cmd/kvrouter terminates
// the reply with SERVER_ERROR instead of END.
func (cl *Cluster) MultiGet(keys [][]byte, fn func(i int, flags uint32, val []byte)) error {
	if len(keys) == 0 {
		return nil
	}
	cl.m.routed[ixGet].Add(uint64(len(keys)))
	sc := cl.scatters.Get().(*scatter)
	defer cl.scatters.Put(sc)
	sc.reset(len(cl.pools), len(keys))

	touched := 0
	for i, k := range keys {
		n := cl.ring.OwnerIndex(k)
		if len(sc.groups[n]) == 0 {
			touched++
		}
		sc.groups[n] = append(sc.groups[n], i)
		sc.keys[n] = append(sc.keys[n], k)
	}
	cl.m.fanout.RecordNS(int64(touched))

	if touched == 1 {
		for n := range sc.groups {
			if len(sc.groups[n]) > 0 {
				cl.subGet(sc, n)
			}
		}
	} else {
		var wg sync.WaitGroup
		for n := range sc.groups {
			if len(sc.groups[n]) == 0 {
				continue
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				cl.subGet(sc, n)
			}(n)
		}
		wg.Wait()
	}

	// Deliver in request order, skipping hits from failed nodes — a
	// node that died mid-burst may have reported a stale partial run.
	for i := range sc.refs {
		r := &sc.refs[i]
		if r.hit && sc.errs[r.node] == nil {
			fn(i, r.flags, sc.bufs[r.node][r.off:r.off+r.n])
		}
	}
	for n, err := range sc.errs {
		if err != nil {
			cl.m.failed[ixGet].Add(uint64(len(sc.groups[n])))
			return fmt.Errorf("kvcluster: multiget via %s: %w", cl.pools[n].addr, err)
		}
	}
	return nil
}

// subGet runs one node's slice of a scatter. It writes only this node's
// disjoint entries of sc.refs/sc.bufs/sc.errs, so concurrent subGets
// never race.
func (cl *Cluster) subGet(sc *scatter, n int) {
	p := cl.pools[n]
	c, err := p.get()
	if err != nil {
		sc.errs[n] = err
		return
	}
	group := sc.groups[n]
	start := time.Now()
	err = c.MultiGet(sc.keys[n], func(j int, flags uint32, val []byte) {
		// A backend retry replays the whole chunk; appending again and
		// re-pointing the ref keeps the last run's bytes, which is the
		// idempotent-callback contract MultiGet documents.
		gi := group[j]
		off := len(sc.bufs[n])
		sc.bufs[n] = append(sc.bufs[n], val...)
		sc.refs[gi] = valRef{hit: true, flags: flags, node: n, off: off, n: len(val)}
	})
	cl.m.nodeRTT[p.idx].Record(time.Since(start))
	p.put(c)
	cl.observe(p, err)
	sc.errs[n] = err
}
