package kvcluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/kvproto"
)

// replicatedCluster brings up n cache nodes and an R=2 Cluster over
// them. Probers are not started unless the test starts them; health is
// flipped by hand otherwise.
func replicatedCluster(t *testing.T, n int, mut func(*Config)) (*fleet.Fleet, *Cluster) {
	t.Helper()
	f, err := fleet.Start(n, func(int) fleet.NodeConfig { return nodeConfig() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	cfg := Config{
		Nodes:    f.Addrs(),
		Seed:     42,
		PoolSize: 2,
		Replicas: 2,
		Reconnect: kvproto.ReconnectConfig{
			DialTimeout: 500 * time.Millisecond,
			MaxAttempts: 2,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return f, cl
}

// keyWithPrimary returns a key whose replica set is [primary, other...].
func keyWithPrimary(t *testing.T, cl *Cluster, primary int) []byte {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		k := []byte(fmt.Sprintf("pk-%05d", i))
		if cl.ring.OwnerIndex(k) == primary {
			return k
		}
	}
	t.Fatal("no key with the requested primary in 10k tries")
	return nil
}

// TestClusterReplicatedWritesLandOnBothOwners: with R=2 over two nodes,
// a Set is acked by the primary and best-effort copied to the replica —
// both backends answer the key directly.
func TestClusterReplicatedWritesLandOnBothOwners(t *testing.T) {
	f, cl := replicatedCluster(t, 2, nil)
	key := []byte("both-owners")
	if err := cl.Set(key, 7, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i, n := range f.Nodes {
		c, err := kvproto.DialTimeout(n.Addr(), 2*time.Second, 5*time.Second, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := c.Get(key)
		c.Close()
		if err != nil || !ok || string(v) != "v1" {
			t.Fatalf("node %d: direct get = (%q, %v, %v), want replicated hit", i, v, ok, err)
		}
	}
	if got := cl.ReplicaWriteFailures(); got != 0 {
		t.Fatalf("ReplicaWriteFailures = %d with both nodes up", got)
	}
}

// TestClusterFailoverReadEjectedPrimary: an ejected primary redirects
// the read to the replica instead of failing the key, and the failover
// counter moves. Writes during the outage ack on the replica and count
// the skipped primary as divergence.
func TestClusterFailoverReadEjectedPrimary(t *testing.T) {
	_, cl := replicatedCluster(t, 2, nil)
	key := keyWithPrimary(t, cl, 0)
	if err := cl.Set(key, 1, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < cl.cfg.FailThreshold; i++ {
		cl.pools[0].noteFailure()
	}
	if !cl.Ejected(0) {
		t.Fatal("primary not ejected")
	}

	v, ok, err := cl.Get(key)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("failover Get = (%q, %v, %v), want v1 from replica", v, ok, err)
	}
	if cl.FailoverReads() == 0 {
		t.Fatal("failover read not counted")
	}

	// MultiGet groups the key onto the live replica at grouping time.
	hits := 0
	err = cl.MultiGet([][]byte{key}, func(i int, fl uint32, val []byte) {
		hits++
		if string(val) != "v1" {
			t.Fatalf("multiget failover value %q", val)
		}
	})
	if err != nil || hits != 1 {
		t.Fatalf("multiget with ejected primary: hits=%d err=%v", hits, err)
	}

	// A write during the outage: acked by the replica, divergence counted.
	before := cl.ReplicaWriteFailures()
	if err := cl.Set(key, 1, 0, []byte("v2")); err != nil {
		t.Fatalf("Set with ejected primary: %v", err)
	}
	if cl.ReplicaWriteFailures() <= before {
		t.Fatal("skipped replica write not counted as divergence")
	}
	if v, ok, _ := cl.Get(key); !ok || string(v) != "v2" {
		t.Fatalf("post-outage-write Get = (%q, %v), want v2", v, ok)
	}
}

// TestClusterCasFailoverYieldsExists documents the CAS failover
// contract: cas uniques are node-local, so a unique fetched from the
// primary before an outage cannot match the counter on the replica that
// becomes the synchronous owner — the cas answers CasExists instead of
// applying a stale swap. Failover costs a conflicted round trip, never
// a lost update. The caller's standard read-modify-write loop then
// converges on its own: a fresh Gets (a failover read answered by the
// replica) returns that node's unique, and the retry swaps cleanly.
func TestClusterCasFailoverYieldsExists(t *testing.T) {
	f, cl := replicatedCluster(t, 2, nil)
	key := keyWithPrimary(t, cl, 0)
	if err := cl.Set(key, 3, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Desynchronize the two owners' cas counters the way any real history
	// does (each node's counter advances with its own store traffic): one
	// extra direct store against the primary alone.
	c, err := kvproto.DialTimeout(f.Nodes[0].Addr(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(key, 3, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// gets before the outage answers from the primary.
	_, _, id, ok, err := cl.Gets(key)
	if err != nil || !ok || id == 0 {
		t.Fatalf("pre-outage Gets = (id=%d, ok=%v, err=%v)", id, ok, err)
	}

	for i := 0; i < cl.cfg.FailThreshold; i++ {
		cl.pools[0].noteFailure()
	}
	if !cl.Ejected(0) {
		t.Fatal("primary not ejected")
	}

	// The cas gates on the new synchronous owner; the primary's unique
	// cannot match there, so the stale swap is refused.
	st, err := cl.Cas(key, 3, 0, id, []byte("lost-update"))
	if err != nil {
		t.Fatalf("failover Cas: %v", err)
	}
	if st != kvproto.CasExists {
		t.Fatalf("failover Cas with pre-outage unique = %v, want CasExists", st)
	}
	if v, ok, _ := cl.Get(key); !ok || string(v) != "v1" {
		t.Fatalf("value after refused swap = (%q, %v), want v1 untouched", v, ok)
	}

	// RMW retry: re-read (failover read from the replica), swap with the
	// fresh unique. The winning cas replicates as a plain set, and the
	// skipped ejected primary is counted as divergence like any Set's.
	divBefore := cl.ReplicaWriteFailures()
	_, _, id2, ok, err := cl.Gets(key)
	if err != nil || !ok || id2 == 0 {
		t.Fatalf("failover Gets = (id=%d, ok=%v, err=%v)", id2, ok, err)
	}
	if cl.FailoverReads() == 0 {
		t.Fatal("failover gets not counted as a failover read")
	}
	st, err = cl.Cas(key, 3, 0, id2, []byte("v2"))
	if err != nil || st != kvproto.CasStored {
		t.Fatalf("retry Cas = (%v, %v), want CasStored", st, err)
	}
	if cl.ReplicaWriteFailures() <= divBefore {
		t.Fatal("winning cas did not count the skipped primary as divergence")
	}
	if v, ok, _ := cl.Get(key); !ok || string(v) != "v2" {
		t.Fatalf("post-retry Get = (%q, %v), want v2", v, ok)
	}
}

// TestClusterMultiGetFailoverRetry: a node that dies without having
// been ejected fails its sub-get mid-burst; the retry pass re-routes
// those keys to their replicas, so the burst still answers every key.
func TestClusterMultiGetFailoverRetry(t *testing.T) {
	f, cl := replicatedCluster(t, 2, func(c *Config) {
		c.FailThreshold = 1000 // stay un-ejected through the whole test
	})
	keys, vals, flags := testCorpus(60)
	for _, k := range keys {
		if v, ok := vals[string(k)]; ok {
			if err := cl.Set(k, flags[string(k)], 0, v); err != nil {
				t.Fatalf("set %q: %v", k, err)
			}
		}
	}

	f.Nodes[1].Kill()

	got := make(map[int][]byte)
	err := cl.MultiGet(keys, func(i int, fl uint32, val []byte) {
		got[i] = append([]byte(nil), val...)
	})
	if err != nil {
		t.Fatalf("MultiGet with one dead un-ejected node: %v", err)
	}
	for i, k := range keys {
		want, hit := vals[string(k)]
		v, found := got[i]
		if hit != found {
			t.Fatalf("key %d (%s): hit=%v found=%v", i, k, hit, found)
		}
		if hit && !bytes.Equal(v, want) {
			t.Fatalf("key %d: value %q, want %q", i, v, want)
		}
	}
	if cl.FailoverReads() == 0 {
		t.Fatal("retry pass not counted as failover reads")
	}

	// Single-key Get on a dead-primary key fails over mid-op too: the
	// dial failure surfaces as an attempt error, never a client miss.
	var key []byte
	for _, k := range keys {
		if cl.ring.OwnerIndex(k) == 1 && vals[string(k)] != nil {
			key = k
			break
		}
	}
	if key == nil {
		t.Fatal("corpus has no hit key owned by the killed node")
	}
	if v, ok, err := cl.Get(key); err != nil || !ok || !bytes.Equal(v, vals[string(key)]) {
		t.Fatalf("Get with dead primary = (%q, %v, %v), want mid-op failover hit", v, ok, err)
	}
}

// TestClusterFlushOnReintegrate: partition a node (cache stays hot),
// overwrite its keyspace through the survivor, heal it. The prober must
// flush the node before marking it up, so post-reintegration reads can
// miss but can never see the pre-outage version.
func TestClusterFlushOnReintegrate(t *testing.T) {
	f, cl := replicatedCluster(t, 2, func(c *Config) {
		c.ProbeInterval = 20 * time.Millisecond
		c.ProbeBackoffMax = 100 * time.Millisecond
	})
	cl.Start()

	key := keyWithPrimary(t, cl, 0)
	if err := cl.Set(key, 1, 0, []byte("old")); err != nil {
		t.Fatal(err)
	}

	f.Nodes[0].Partition()
	deadline := time.Now().Add(10 * time.Second)
	for !cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("partitioned node never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New version acked by the survivor while node 0 still holds "old".
	if err := cl.Set(key, 1, 0, []byte("new")); err != nil {
		t.Fatal(err)
	}

	if err := f.Nodes[0].Heal(); err != nil {
		t.Fatal(err)
	}
	for cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("healed node never reintegrated")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if cl.ReintegrationFlushes() == 0 {
		t.Fatal("reintegration flush not counted")
	}
	if f.Nodes[0].Server().Flushes() == 0 {
		t.Fatal("reintegrated node was never flushed")
	}
	v, ok, err := cl.Get(key)
	if err != nil {
		t.Fatalf("post-reintegration Get: %v", err)
	}
	if ok && string(v) == "old" {
		t.Fatalf("stale read after reintegration: %q", v)
	}
}

// TestClusterStaleReadWithoutReintegrationFlush: the regression the
// barrier prevents, reproduced deliberately — with the flush disabled,
// a healed (not restarted) node serves its pre-outage version.
func TestClusterStaleReadWithoutReintegrationFlush(t *testing.T) {
	f, cl := replicatedCluster(t, 2, func(c *Config) {
		c.ProbeInterval = 20 * time.Millisecond
		c.ProbeBackoffMax = 100 * time.Millisecond
		c.DisableReintegrationFlush = true
	})
	cl.Start()

	key := keyWithPrimary(t, cl, 0)
	if err := cl.Set(key, 1, 0, []byte("old")); err != nil {
		t.Fatal(err)
	}

	f.Nodes[0].Partition()
	deadline := time.Now().Add(10 * time.Second)
	for !cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("partitioned node never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cl.Set(key, 1, 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := f.Nodes[0].Heal(); err != nil {
		t.Fatal(err)
	}
	for cl.Ejected(0) {
		if time.Now().After(deadline) {
			t.Fatal("healed node never reintegrated")
		}
		time.Sleep(5 * time.Millisecond)
	}

	v, ok, err := cl.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v), want the stale hit this test exists to demonstrate", ok, err)
	}
	if string(v) != "old" {
		t.Fatalf("Get = %q, want the pre-outage %q", v, "old")
	}
	if cl.ReintegrationFlushes() != 0 {
		t.Fatal("flush barrier ran despite being disabled")
	}
}

// TestClusterOpPathNeverReintegratesReplicated: in replicated mode a
// stray op success against an ejected node must not mark it up — only
// the flushing prober may.
func TestClusterOpPathNeverReintegratesReplicated(t *testing.T) {
	_, cl := replicatedCluster(t, 2, nil)
	for i := 0; i < cl.cfg.FailThreshold; i++ {
		cl.pools[0].noteFailure()
	}
	if !cl.Ejected(0) {
		t.Fatal("node not ejected")
	}
	cl.observe(cl.pools[0], nil)
	if !cl.Ejected(0) {
		t.Fatal("op-path success reintegrated an ejected node in replicated mode")
	}
	// Single-replica clusters keep the old behavior: any success heals.
	cl2, err := New(Config{Nodes: cl.cfg.Nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < cl2.cfg.FailThreshold; i++ {
		cl2.pools[0].noteFailure()
	}
	cl2.observe(cl2.pools[0], nil)
	if cl2.Ejected(0) {
		t.Fatal("op-path success failed to reintegrate in single-replica mode")
	}
}

// TestProbePhaseDecorrelated: probers get distinct, in-range initial
// delays — two nodes sharing a cluster seed must not fire their first
// probe at the same instant.
func TestProbePhaseDecorrelated(t *testing.T) {
	const interval = 250 * time.Millisecond
	seen := make(map[time.Duration]int)
	addrs := []string{"a:1", "b:1", "c:1", "d:1", "e:1", "f:1"}
	for _, addr := range addrs {
		ph := probePhase(probeSeed(9, addr), interval)
		if ph < 0 || ph >= interval {
			t.Fatalf("probePhase(%s) = %v, outside [0, %v)", addr, ph, interval)
		}
		seen[ph]++
	}
	if len(seen) < len(addrs) {
		t.Fatalf("probe phases collide: %v", seen)
	}
	if probePhase(probeSeed(9, "a:1"), interval) != probePhase(probeSeed(9, "a:1"), interval) {
		t.Fatal("probePhase not deterministic")
	}
	if probePhase(7, 0) != 0 {
		t.Fatal("probePhase with zero interval should be 0")
	}
}
