package kvcluster

import (
	"errors"
	"sync/atomic"

	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// ErrNodeDown is returned for any operation whose owner node is
// currently ejected: the cluster fails the key fast instead of queueing
// behind a dead peer, so the rest of the ring keeps serving at full
// speed while the prober works the node back in.
var ErrNodeDown = errors.New("kvcluster: node ejected")

// DefaultFailThreshold is how many consecutive failures (operation or
// probe) eject a node. Three tolerates an isolated timeout or RST
// without flapping while still reacting within a couple of probe
// intervals to a genuinely dead peer.
const DefaultFailThreshold = 3

// nodePool owns one backend node's client connections and health state.
// Clients are kvproto.ReconnectClients (lazy dial, capped-backoff redial,
// never-replay-ambiguous-writes), kept in a buffered channel: checkout
// blocks when all PoolSize connections are in flight, which bounds the
// router's per-node concurrency without any extra accounting.
type nodePool struct {
	addr string
	idx  int
	free chan *kvproto.ReconnectClient

	// ejected flips under mu-free atomics: the serving path only loads
	// it, the probe/failure paths CAS it, and the gauge/counter updates
	// ride on whichever CAS wins.
	ejected  atomic.Bool
	failures atomic.Int32 // consecutive failures since last success

	threshold int32
	up        *metrics.Gauge   // 1 serving, 0 ejected
	ejections *metrics.Counter // transitions into the ejected state
}

func newNodePool(addr string, idx, size int, threshold int32, up *metrics.Gauge, ejections *metrics.Counter, mk func() *kvproto.ReconnectClient) *nodePool {
	p := &nodePool{
		addr:      addr,
		idx:       idx,
		free:      make(chan *kvproto.ReconnectClient, size),
		threshold: threshold,
		up:        up,
		ejections: ejections,
	}
	for i := 0; i < size; i++ {
		p.free <- mk()
	}
	if up != nil {
		up.Set(1)
	}
	return p
}

// get checks out a client, failing fast if the node is ejected. The
// caller must return the client with put (or discard it with drop after
// closing) — the channel's capacity is the connection budget.
//
// The ejection check runs again after the (possibly long) wait on the
// free channel: a caller that blocked behind a full pool while the node
// was ejected would otherwise check out a client and burn a full
// operation timeout against a peer already known dead. The client goes
// straight back so the pool never leaks capacity on the fail-fast path.
func (p *nodePool) get() (*kvproto.ReconnectClient, error) {
	if p.ejected.Load() {
		return nil, ErrNodeDown
	}
	c := <-p.free
	if p.ejected.Load() {
		p.free <- c
		return nil, ErrNodeDown
	}
	return c, nil
}

// put returns a checked-out client.
func (p *nodePool) put(c *kvproto.ReconnectClient) { p.free <- c }

// noteSuccess records a successful round trip: the consecutive-failure
// run is over, and an ejected node that answered (the prober's probe)
// is reintegrated. Returns true if this call performed the
// reintegration.
func (p *nodePool) noteSuccess() bool {
	p.failures.Store(0)
	if p.ejected.CompareAndSwap(true, false) {
		if p.up != nil {
			p.up.Set(1)
		}
		return true
	}
	return false
}

// noteSuccessKeepEjected records a successful round trip without ever
// reintegrating: the consecutive-failure run resets, but an ejected
// node stays ejected. Replicated clusters route op-path successes here
// so that only the prober — which flushes the node first — can mark a
// recovered node up.
func (p *nodePool) noteSuccessKeepEjected() {
	p.failures.Store(0)
}

// noteFailure records a failed round trip; crossing the threshold ejects
// the node. Returns true if this call performed the ejection (exactly
// one caller wins the CAS, so the counter moves once per outage).
func (p *nodePool) noteFailure() bool {
	n := p.failures.Add(1)
	if n < p.threshold {
		return false
	}
	if p.ejected.CompareAndSwap(false, true) {
		if p.up != nil {
			p.up.Set(0)
		}
		if p.ejections != nil {
			p.ejections.Inc()
		}
		return true
	}
	return false
}
