package workload

import (
	"fmt"
	"sort"
)

// Pattern construction helpers used by the suite table.

func hot(blocks uint64, skew float64, w int) Pattern {
	return Pattern{Kind: PatHot, Blocks: blocks, Skew: skew, Weight: w}
}

func drift(blocks, every uint64, w int) Pattern {
	return Pattern{Kind: PatHot, Blocks: blocks, Drift: every, Weight: w}
}

func episodic(blocks uint64, skew float64, every uint64, w int) Pattern {
	return Pattern{Kind: PatHot, Blocks: blocks, Skew: skew, Episode: every, Weight: w}
}

// l1res is the near-L1-resident working set that absorbs most references
// cheaply. A 192-block window slides over a 768-block ring: the ring fits
// the L2 easily (so the pattern is policy-neutral and near-free there),
// while at L1 scale the sliding window denies both recency and frequency a
// durable edge — matching the paper's Section 4.6 finding that L1 data
// traffic offers adaptivity almost nothing (<1%).
func l1res(w int) Pattern {
	return Pattern{Kind: PatHot, Blocks: 192, Drift: 400, Ring: 768, Weight: w}
}

// rare is an infrequently revisited hot region whose blocks get an echo
// re-touch so they can establish LFU counts: the LFU-friendly primitive.
func rare(blocks uint64, skew float64, echoGap uint64, w int) Pattern {
	return Pattern{Kind: PatHot, Blocks: blocks, Skew: skew, Echo: echoGap, Weight: w}
}

func scan(dwell uint64, w int) Pattern {
	return Pattern{Kind: PatScan, Dwell: dwell, Weight: w}
}

func loopP(blocks, dwell uint64, w int) Pattern {
	return Pattern{Kind: PatLoop, Blocks: blocks, Dwell: dwell, Weight: w}
}

func chase(blocks uint64, w int) Pattern {
	return Pattern{Kind: PatChase, Blocks: blocks, Chained: true, Weight: w}
}

func stride(blocks, step, dwell uint64, w int) Pattern {
	return Pattern{Kind: PatStride, Blocks: blocks, Stride: step, Dwell: dwell, Weight: w}
}

func one(ps ...Pattern) []Phase { return []Phase{{Frac: 1, Patterns: ps}} }

// The reference L2 is 512KB/64B/8-way: 8192 lines in 1024 sets. Pattern
// regions are sized against that: "slightly larger than the cache" for the
// MRU-friendly loops (9216 = 9 lines per set), multi-thousand-block hot
// sets that overflow the 256-line L1D but fit the L2, and drifting windows
// around 1.2-1.5x the L2 for recency-friendly capacity pressure.

// primarySpecs are the paper's 26-program primary evaluation set (Figure
// 3): every program whose LRU MPKI at 512KB exceeds 1. Each entry's
// pattern mix realizes the policy preference the paper reports or implies
// for that program.
func primarySpecs() []Spec {
	return []Spec{
		{
			// Phase-switching between LFU- and LRU-friendly behavior with
			// per-set spatial variation (paper Figure 7a); the adaptive
			// cache beats both components overall.
			Name: "ammp", Suite: "SPECfp2000", FPFrac: 0.30,
			Phases: []Phase{
				{Frac: 0.30, Patterns: []Pattern{
					{Kind: PatHot, Blocks: 192, Drift: 400, Ring: 768, Weight: 20},
					{Kind: PatScan, Dwell: 4, Weight: 3, SetStride: 2, SetOffset: 0},
					{Kind: PatHot, Blocks: 2800, Skew: 0, Echo: 300, Weight: 4, SetStride: 2, SetOffset: 0},
					{Kind: PatHot, Blocks: 2600, Drift: 16, Weight: 3, SetStride: 2, SetOffset: 1},
				}},
				{Frac: 0.25, Patterns: []Pattern{l1res(18), scan(4, 3), rare(5600, 0, 300, 4)}},
				{Frac: 0.45, Patterns: []Pattern{l1res(20), drift(4300, 20, 4), hot(1800, 0.4, 2), scan(16, 1)}},
			},
		},
		{
			Name: "applu", Suite: "SPECfp2000", FPFrac: 0.34, DepDist: 6,
			Phases: one(l1res(20), drift(4300, 26, 3), stride(23000, 7, 16, 2), hot(1800, 0.3, 2)),
		},
		{
			// Scan-dominated with an infrequently revisited hot region:
			// the paper's showcase LFU-friendly program.
			Name: "art-1", Suite: "SPECfp2000", FPFrac: 0.30, LoadFrac: 0.28,
			Phases: one(l1res(14), scan(8, 3), rare(6600, 0, 400, 4), loopP(11776, 8, 5)),
		},
		{
			Name: "art-2", Suite: "SPECfp2000", FPFrac: 0.30, LoadFrac: 0.28,
			Phases: one(l1res(14), scan(8, 3), rare(6144, 0.1, 400, 4), loopP(11776, 10, 3)),
		},
		{
			Name: "bzip2", Suite: "SPECint2000",
			Phases: one(l1res(22), drift(4500, 24, 3), hot(1900, 0.35, 3), scan(16, 1)),
		},
		{
			// Irregular mesh updates with little frequency structure:
			// policies land close together.
			Name: "equake", Suite: "SPECfp2000", FPFrac: 0.32,
			Phases: one(l1res(26), hot(40000, 0, 2), scan(16, 1)),
		},
		{
			Name: "facerec", Suite: "SPECfp2000", FPFrac: 0.30,
			Phases: one(l1res(16), scan(8, 3), rare(5120, 0, 350, 4)),
		},
		{
			Name: "fma3d", Suite: "SPECfp2000", FPFrac: 0.33, DepDist: 6,
			Phases: one(l1res(20), stride(23000, 7, 12, 5), hot(3000, 0.2, 3)),
		},
		{
			// Pointer-intensive suite: dependent traversals over a region
			// larger than the L2 plus a recency-friendly node pool.
			Name: "ft", Suite: "pointer", LoadFrac: 0.30, DepDist: 2,
			Phases: one(l1res(24), chase(16000, 1), drift(3800, 28, 3), hot(1800, 0.3, 4)),
		},
		{
			Name: "gap", Suite: "SPECint2000",
			Phases: one(l1res(22), drift(4400, 22, 3), hot(1900, 0.3, 3), scan(16, 1)),
		},
		{
			// Linear loops slightly larger than the cache: the
			// MRU-friendly standout of Figure 8, with a lightly revisited
			// region giving LFU a modest edge under LRU/LFU adaptation.
			Name: "gcc-1", Suite: "SPECint2000", BranchFrac: 0.16,
			Kernels: 220, KernelSkew: 0.55, ColdCodeEvery: 2, TripCount: 24,
			Phases: one(l1res(10), loopP(11776, 8, 8), rare(2048, 0, 400, 1)),
		},
		{
			Name: "gcc-2", Suite: "SPECint2000", BranchFrac: 0.16,
			Kernels: 200, KernelSkew: 0.5, ColdCodeEvery: 2, TripCount: 24,
			Phases: one(l1res(16), loopP(11264, 12, 4), drift(4200, 28, 3), hot(1800, 0.3, 2)),
		},
		{
			// Sliding working set: LRU-friendly, while LFU clings to
			// high-count blocks the window has moved past.
			Name: "lucas", Suite: "SPECfp2000", FPFrac: 0.35,
			Phases: one(l1res(20), drift(4300, 24, 4), hot(1900, 0.4, 3), scan(16, 1)),
		},
		{
			Name: "mcf", Suite: "SPECint2000", LoadFrac: 0.32, DepDist: 2,
			Phases: one(l1res(24), chase(25000, 1), hot(2400, 0.35, 4), rare(4000, 0, 300, 2)),
		},
		{
			// Stride-varying 3D array subroutines; LFU-favorable early,
			// dissolving toward LRU (paper Figure 7b).
			Name: "mgrid", Suite: "SPECfp2000", FPFrac: 0.36, DepDist: 6,
			Phases: []Phase{
				{Frac: 0.35, Patterns: []Pattern{l1res(18), scan(4, 3), rare(6000, 0, 300, 4)}},
				{Frac: 0.30, Patterns: []Pattern{l1res(20), scan(5, 3), rare(5000, 0, 300, 3),
					drift(3000, 30, 2)}},
				{Frac: 0.35, Patterns: []Pattern{l1res(20), drift(4300, 22, 4), hot(1900, 0.3, 2), scan(16, 1)}},
			},
		},
		{
			Name: "parser", Suite: "SPECint2000", BranchFrac: 0.15,
			Kernels: 120, KernelSkew: 0.4, ColdCodeEvery: 4,
			Phases: one(l1res(22), drift(4400, 24, 3), hot(1900, 0.3, 3), scan(16, 1)),
		},
		{
			// Large FP sweeps over arrays far bigger than the cache:
			// streaming misses dominate every policy.
			Name: "swim", Suite: "SPECfp2000", FPFrac: 0.36, DepDist: 8,
			Phases: one(l1res(20), loopP(40960, 8, 5), hot(2048, 0.2, 2)),
		},
		{
			Name: "tiff2rgba", Suite: "MediaBench", LoadFrac: 0.28,
			Phases: one(l1res(16), scan(8, 5), hot(512, 0.3, 2)),
		},
		{
			Name: "twolf", Suite: "SPECint2000", BranchFrac: 0.14,
			Kernels: 100, KernelSkew: 0.4, ColdCodeEvery: 4,
			Phases: one(l1res(18), scan(8, 3), rare(5600, 0, 350, 4), hot(2048, 0.4, 2)),
		},
		{
			// Media decode: streaming with a small reused dictionary and a
			// mild drift that keeps the two policies trading places — the
			// paper's worst (still tiny) case for adaptivity.
			Name: "unepic", Suite: "MediaBench", LoadFrac: 0.26,
			Phases: one(l1res(18), scan(10, 4), drift(3000, 45, 2), hot(1024, 0.3, 1)),
		},
		{
			Name: "vpr-1", Suite: "SPECint2000", BranchFrac: 0.14,
			Phases: one(l1res(22), drift(4300, 24, 3), hot(1900, 0.35, 3), scan(16, 1)),
		},
		{
			Name: "vpr-2", Suite: "SPECint2000", BranchFrac: 0.14,
			Phases: one(l1res(20), drift(4600, 20, 4), hot(1800, 0.3, 2), scan(16, 1)),
		},
		{
			Name: "wupwise", Suite: "SPECfp2000", FPFrac: 0.33, DepDist: 8,
			Phases: one(l1res(20), stride(18000, 3, 12, 4), hot(3072, 0.2, 3), scan(16, 1)),
		},
		{
			// Graphics: streaming frame traffic over infrequently
			// revisited textures/geometry, with a large code footprint.
			Name: "x11quake-1", Suite: "graphics", BranchFrac: 0.14,
			Kernels: 180, KernelSkew: 0.5, ColdCodeEvery: 3, TripCount: 32,
			Phases: one(l1res(16), scan(8, 3), rare(6400, 0.1, 400, 4)),
		},
		{
			Name: "x11quake-2", Suite: "graphics", BranchFrac: 0.14,
			Kernels: 160, KernelSkew: 0.45, ColdCodeEvery: 3, TripCount: 32,
			Phases: one(l1res(14), scan(8, 3), rare(7200, 0, 400, 5)),
		},
		{
			Name: "xanim", Suite: "graphics", LoadFrac: 0.27,
			Phases: one(l1res(16), scan(8, 3), rare(5800, 0, 400, 4)),
		},
	}
}

// extendedOnlySpecs are the remaining 74 programs of the paper's
// 100-program extended set: mostly working sets that fit comfortably in
// the 512KB L2, included to demonstrate that adaptivity is harmless when
// there is nothing to win (paper Section 4.2).
func extendedOnlySpecs() []Spec {
	var specs []Spec

	// small emits a low-MPKI program: a hot working set that fits the L2
	// plus a whiff of streaming traffic. Parameters are perturbed per
	// index so the 74 programs are not clones of one another.
	small := func(name, suite string, i int, tweak func(*Spec)) {
		blocks := uint64(700 + (i*937)%5600)
		dwell := uint64(12 + i%16)
		s := Spec{
			Name: name, Suite: suite,
			LoadFrac:   0.20 + float64(i%5)*0.02,
			StoreFrac:  0.07 + float64(i%3)*0.02,
			BranchFrac: 0.10 + float64(i%4)*0.02,
			FPFrac:     float64(i%3) * 0.08,
			Kernels:    4 + i%12,
			DepDist:    2 + i%7,
			Phases:     one(hot(blocks, 0.2+float64(i%4)*0.1, 20), scan(dwell, 1)),
		}
		if tweak != nil {
			tweak(&s)
		}
		specs = append(specs, s)
	}

	names := []struct {
		name, suite string
	}{
		{"gzip-1", "SPECint2000"}, {"gzip-2", "SPECint2000"},
		{"vortex-1", "SPECint2000"}, {"vortex-2", "SPECint2000"},
		{"crafty", "SPECint2000"}, {"eon", "SPECint2000"},
		{"perlbmk-1", "SPECint2000"}, {"perlbmk-2", "SPECint2000"},
		{"mesa", "SPECfp2000"}, {"galgel", "SPECfp2000"},
		{"sixtrack", "SPECfp2000"}, {"apsi", "SPECfp2000"},
		{"adpcm-enc", "MediaBench"}, {"adpcm-dec", "MediaBench"},
		{"epic", "MediaBench"}, {"g721-enc", "MediaBench"},
		{"g721-dec", "MediaBench"}, {"gsm-enc", "MediaBench"},
		{"gsm-dec", "MediaBench"}, {"jpeg-enc", "MediaBench"},
		{"jpeg-dec", "MediaBench"}, {"mpeg2-enc", "MediaBench"},
		{"mpeg2-dec", "MediaBench"}, {"pegwit-enc", "MediaBench"},
		{"pegwit-dec", "MediaBench"}, {"ghostscript", "MediaBench"},
		{"rasta", "MediaBench"}, {"mesa-texgen", "MediaBench"},
		{"basicmath", "MiBench"}, {"bitcount", "MiBench"},
		{"qsort", "MiBench"}, {"susan-s", "MiBench"},
		{"susan-e", "MiBench"}, {"susan-c", "MiBench"},
		{"dijkstra", "MiBench"}, {"patricia", "MiBench"},
		{"stringsearch", "MiBench"}, {"blowfish-enc", "MiBench"},
		{"blowfish-dec", "MiBench"}, {"rijndael-enc", "MiBench"},
		{"rijndael-dec", "MiBench"}, {"sha", "MiBench"},
		{"crc32", "MiBench"}, {"fft", "MiBench"},
		{"ifft", "MiBench"}, {"adpcm-mi", "MiBench"},
		{"gsm-mi", "MiBench"}, {"lame", "MiBench"},
		{"mad", "MiBench"}, {"tiff2bw", "MiBench"},
		{"tiffdither", "MiBench"}, {"tiffmedian", "MiBench"},
		{"typeset", "MiBench"},
		{"blastn", "BioBench"}, {"blastp", "BioBench"},
		{"clustalw", "BioBench"}, {"fasta-dna", "BioBench"},
		{"fasta-prot", "BioBench"}, {"hmmer", "BioBench"},
		{"phylip", "BioBench"}, {"tigr", "BioBench"},
		{"anagram", "pointer"}, {"bc", "pointer"},
		{"ks", "pointer"}, {"yacr2", "pointer"},
		{"quake3", "graphics"}, {"unreal", "graphics"},
		{"povray", "graphics"}, {"raytrace-1", "graphics"},
		{"raytrace-2", "graphics"}, {"x11doom", "graphics"},
		{"glquake", "graphics"}, {"viewperf", "graphics"},
		{"specviewperf", "graphics"},
	}

	tweaks := map[string]func(*Spec){
		// A few extended programs carry real (if modest) L2 traffic so the
		// extended-set averages are not pure dilution.
		"blastn": func(s *Spec) {
			s.Phases = one(scan(8, 3), hot(3000, 0.3, 3))
		},
		"hmmer": func(s *Spec) {
			s.Phases = one(hot(5200, 0.4, 5), scan(6, 1))
		},
		"qsort": func(s *Spec) {
			s.Phases = one(drift(6800, 40, 4), scan(8, 1))
		},
		"dijkstra": func(s *Spec) {
			s.Phases = one(chase(6000, 1), hot(1500, 0.3, 4))
			s.DepDist = 2
		},
		"patricia": func(s *Spec) {
			s.Phases = one(chase(5000, 1), hot(2000, 0.3, 4))
			s.DepDist = 2
		},
		// tigr: the paper's worst case for adaptive misses (+2.7%):
		// working-set episodes short enough that the miss history keeps
		// re-learning which policy to imitate.
		"tigr": func(s *Spec) {
			s.Phases = one(episodic(3600, 0.5, 9000, 3), scan(4, 2))
		},
		"quake3": func(s *Spec) {
			s.Kernels = 48
			s.Phases = one(hot(4200, 0.4, 4), scan(4, 1))
		},
		"povray": func(s *Spec) {
			s.FPFrac = 0.30
			s.Phases = one(hot(5600, 0.35, 5), scan(8, 1))
		},
	}

	for i, n := range names {
		small(n.name, n.suite, i, tweaks[n.name])
	}
	return specs
}

// Suite returns all 100 benchmark specs: the 26-program primary set
// followed by the 74 extended-only programs.
func Suite() []Spec {
	return append(primarySpecs(), extendedOnlySpecs()...)
}

// PrimaryNames lists the primary evaluation set (paper Figure 3 order).
func PrimaryNames() []string {
	specs := primarySpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Names lists every benchmark name in suite order.
func Names() []string {
	specs := Suite()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName returns the spec for a benchmark name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	close := closestNames(name, 3)
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (did you mean %v?)", name, close)
}

// closestNames offers suggestions for typos by shared-prefix length.
func closestNames(name string, n int) []string {
	all := Names()
	sort.Slice(all, func(i, j int) bool {
		return prefixLen(all[i], name) > prefixLen(all[j], name)
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func prefixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
