// Package workload synthesizes the benchmark suite. Real trace acquisition
// (Alpha binaries + SimPoint) is not reproducible here, so each paper
// benchmark is modeled as a deterministic generator composed from memory
// access-pattern primitives — hot sets, streaming scans, linear loops,
// pointer chases, strided sweeps — with an instruction-level kernel
// structure (dependence chains, loop branches, code footprint) that drives
// the CPU timing model. The primitives realize exactly the behavioral
// classes the paper uses to explain per-benchmark policy preferences
// (Section 2.1): temporal reuse favors LRU, scans with embedded hot data
// favor LFU, linear loops slightly larger than the cache favor MRU, and
// episodic working-set shifts punish LFU's stale counts.
package workload

// rng is xorshift64*, the package's single deterministic random stream
// implementation.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// n returns a uniform value in [0, n). Power-of-two n (the common hot-path
// case: word offsets, small ranges) takes a mask instead of a 64-bit
// division; x&(n-1) == x%n exactly, so the stream is unchanged.
func (r *rng) n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	if n&(n-1) == 0 {
		return (r.next() >> 11) & (n - 1)
	}
	return (r.next() >> 11) % n
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// PatternKind names an access-pattern primitive.
type PatternKind int

// The pattern primitives.
const (
	// PatScan streams through memory, never revisiting a block — pure
	// compulsory misses (media decoding, file filters).
	PatScan PatternKind = iota
	// PatLoop cycles linearly over a fixed region; sized slightly above
	// the cache's share it is the classic LRU/FIFO-pathological,
	// MRU-friendly pattern.
	PatLoop
	// PatHot draws from a fixed region with optional frequency skew — the
	// LFU-friendly hot working set. Drift slides the region slowly
	// (recency-friendly); Episode teleports it wholesale, punishing stale
	// LFU counts (the lucas-style pathology).
	PatHot
	// PatChase follows a random permutation cycle — dependent loads with
	// no locality and no MLP (mcf-style pointer chasing).
	PatChase
	// PatStride sweeps a region with a fixed stride, wrapping — FP array
	// kernels (swim/mgrid-style subroutines).
	PatStride
)

// Pattern parameterizes one primitive within a phase. Weight sets its
// share of the phase's memory references; the remaining fields are
// interpreted per kind.
type Pattern struct {
	Kind   PatternKind
	Blocks uint64 // region size in cache lines
	Weight int    // relative share of memory references

	Stride  uint64  // PatStride: lines per step (default 1)
	Skew    float64 // PatHot: probability mass recursion toward low ranks (0 = uniform)
	Drift   uint64  // PatHot: slide region base one block every Drift refs
	Episode uint64  // PatHot: jump region base by Blocks every Episode refs
	Chained bool    // PatChase: loads form a serial dependence chain

	// Ring bounds PatHot drift to a cyclic footprint of this many blocks:
	// the window slides but revisits the same Ring blocks forever, so the
	// long-run footprint is bounded (no unbounded trail of dead blocks).
	// Zero means unbounded drift.
	Ring uint64

	// Dwell issues this many consecutive references to each block before
	// advancing (default 1), modeling word-by-word spatial locality within
	// a line for sequential kinds (Scan/Loop/Stride). The first reference
	// to each block is the only one that can miss below the L1.
	Dwell uint64

	// Echo re-references each drawn block once more, Echo pattern-draws
	// later — far enough apart to outlive the L1 but close enough to still
	// be L2-resident. The echo is what lets an infrequently revisited
	// block establish a use count of 2 and earn LFU protection; without
	// it, count-1 ties degenerate LFU to LRU. (PatHot only.)
	Echo uint64

	// SetStride/SetOffset place the region on every SetStride-th cache
	// set starting at SetOffset, modeling workloads whose policy
	// preference varies spatially across sets (paper Figure 7). Zero
	// means dense (stride 1).
	SetStride uint64
	SetOffset uint64
}

// patternState is the runtime state of one pattern instance.
type patternState struct {
	p         Pattern
	base      uint64 // region base, in blocks
	off       uint64 // drift/episode offset within the region
	pos       uint64
	refs      uint64
	perm      []uint32 // PatChase permutation
	cur       uint32
	dwellLeft uint64
	lastBlock uint64
	echoes    []echo // pending re-references, in due order
}

// echo is a scheduled re-reference.
type echo struct {
	due   uint64 // pattern draw count at which to fire
	block uint64
}

// newPatternState places the pattern at a unique block base and, for
// chases, builds the permutation.
func newPatternState(p Pattern, id int, r *rng) *patternState {
	if p.Blocks == 0 {
		p.Blocks = 1
	}
	if p.Stride == 0 {
		p.Stride = 1
	}
	if p.SetStride == 0 {
		p.SetStride = 1
	}
	st := &patternState{
		p: p,
		// Regions sit ~1GB apart in address space. The spacing is a PRIME
		// number of tag units (16411 tags of 1024 blocks each, for the
		// reference 1024-set L2): power-of-two spacing would make every
		// region congruent in the low tag bits and manufacture systematic
		// partial-tag aliasing that real program layouts do not exhibit.
		// The factor 1024 keeps bases set-aligned for SetStride placement.
		base: uint64(id+1) * 16411 * 1024,
	}
	if p.Kind == PatChase {
		st.perm = randomCycle(p.Blocks, r)
	}
	return st
}

// randomCycle builds a uniformly random single-cycle permutation of n
// elements (Sattolo's algorithm), so a chase visits every block before
// repeating.
func randomCycle(n uint64, r *rng) []uint32 {
	perm := make([]uint32, n)
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	for i := n - 1; i >= 1; i-- {
		j := r.n(i)
		order[i], order[j] = order[j], order[i]
	}
	for i := uint64(0); i < n; i++ {
		perm[order[i]] = order[(i+1)%n]
	}
	return perm
}

// zipfish returns a skew-distributed rank in [0, n): with probability skew
// the range narrows to its lowest quarter, recursively. skew 0 is uniform.
func zipfish(n uint64, skew float64, r *rng) uint64 {
	for n > 4 && r.float() < skew {
		n /= 4
	}
	return r.n(n)
}

// next returns the next block number referenced by this pattern.
func (st *patternState) next(r *rng) uint64 {
	if st.dwellLeft > 0 {
		st.dwellLeft--
		return st.lastBlock
	}
	if st.p.Dwell > 1 {
		st.dwellLeft = st.p.Dwell - 1
	}
	st.refs++
	if len(st.echoes) > 0 && st.echoes[0].due <= st.refs {
		b := st.echoes[0].block
		st.echoes = st.echoes[1:]
		st.lastBlock = b
		return b
	}
	var idx uint64
	switch st.p.Kind {
	case PatScan:
		idx = st.pos
		st.pos++
	case PatLoop:
		idx = st.pos
		st.pos = (st.pos + 1) % st.p.Blocks
	case PatHot:
		if st.p.Drift > 0 && st.refs%st.p.Drift == 0 {
			st.off++
		}
		if st.p.Episode > 0 && st.refs%st.p.Episode == 0 {
			st.off += st.p.Blocks
		}
		idx = st.off + zipfish(st.p.Blocks, st.p.Skew, r)
		if st.p.Ring > 0 {
			idx %= st.p.Ring
		}
	case PatChase:
		st.cur = st.perm[st.cur]
		idx = uint64(st.cur)
	case PatStride:
		idx = st.pos
		st.pos = (st.pos + st.p.Stride) % st.p.Blocks
	}
	st.lastBlock = st.base + idx*st.p.SetStride + st.p.SetOffset
	if st.p.Echo > 0 && st.p.Kind == PatHot {
		st.echoes = append(st.echoes, echo{due: st.refs + st.p.Echo, block: st.lastBlock})
	}
	return st.lastBlock
}
