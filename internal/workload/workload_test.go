package workload

import (
	"testing"

	"repro/internal/trace"
)

func TestSuiteShape(t *testing.T) {
	specs := Suite()
	if len(specs) != 100 {
		t.Fatalf("suite has %d programs, want 100 (paper Section 4.1)", len(specs))
	}
	if len(PrimaryNames()) != 26 {
		t.Fatalf("primary set has %d programs, want 26", len(PrimaryNames()))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Suite == "" {
			t.Fatalf("spec %+v missing name or suite", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark name %q", s.Name)
		}
		seen[s.Name] = true
	}
	// The paper's headline examples must be present in the primary set.
	for _, want := range []string{"ammp", "art-1", "lucas", "mcf", "mgrid", "unepic", "gcc-1"} {
		if !seen[want] {
			t.Errorf("benchmark %q missing", want)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("lucas")
	if err != nil || s.Name != "lucas" {
		t.Fatalf("ByName(lucas) = %+v, %v", s, err)
	}
	if _, err := ByName("lukas"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGeneratorProducesExactCount(t *testing.T) {
	spec, _ := ByName("art-1")
	g := New(spec, 50000)
	if got := trace.Count(g); got != 50000 {
		t.Fatalf("generated %d instructions, want 50000", got)
	}
	var rec trace.Record
	if g.Next(&rec) {
		t.Fatal("generator produced past its budget")
	}
}

func TestGeneratorDeterministicAndResettable(t *testing.T) {
	spec, _ := ByName("mgrid") // multi-phase
	collect := func(g *Generator) []trace.Record {
		var out []trace.Record
		var rec trace.Record
		for g.Next(&rec) {
			out = append(out, rec)
		}
		return out
	}
	g1, g2 := New(spec, 30000), New(spec, 30000)
	a, b := collect(g1), collect(g2)
	g1.Reset()
	c := collect(g1)
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("lengths differ: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("instruction %d differs across runs", i)
		}
	}
}

func TestInstructionMixMatchesSpec(t *testing.T) {
	spec, _ := ByName("swim")
	g := New(spec, 200000)
	var counts [16]int
	var rec trace.Record
	total := 0
	for g.Next(&rec) {
		counts[rec.Kind]++
		total++
	}
	frac := func(k trace.Kind) float64 { return float64(counts[k]) / float64(total) }
	s := g.Spec()
	if got := frac(trace.Load); got < s.LoadFrac-0.06 || got > s.LoadFrac+0.06 {
		t.Errorf("load fraction %.3f, spec %.3f", got, s.LoadFrac)
	}
	if got := frac(trace.Store); got < s.StoreFrac-0.06 || got > s.StoreFrac+0.06 {
		t.Errorf("store fraction %.3f, spec %.3f", got, s.StoreFrac)
	}
	if got := frac(trace.Branch); got < s.BranchFrac-0.06 || got > s.BranchFrac+0.06 {
		t.Errorf("branch fraction %.3f, spec %.3f", got, s.BranchFrac)
	}
	fp := frac(trace.FPAdd) + frac(trace.FPMul) + frac(trace.FPDiv)
	if fp < s.FPFrac-0.08 || fp > s.FPFrac+0.08 {
		t.Errorf("FP fraction %.3f, spec %.3f", fp, s.FPFrac)
	}
}

func TestMemoryAddressesAreLineAligned64(t *testing.T) {
	spec, _ := ByName("mcf")
	g := New(spec, 50000)
	var rec trace.Record
	for g.Next(&rec) {
		if rec.Kind.IsMem() {
			if rec.Addr%8 != 0 {
				t.Fatalf("unaligned data address %#x", rec.Addr)
			}
		} else if rec.Addr != 0 {
			t.Fatalf("non-memory record carries address %#x", rec.Addr)
		}
	}
}

func TestChasedLoadsFormChain(t *testing.T) {
	spec, _ := ByName("mcf")
	g := New(spec, 100000)
	var rec trace.Record
	chained := 0
	for g.Next(&rec) {
		if rec.Kind == trace.Load && rec.Src1 == 30 && rec.Dst == 30 {
			chained++
		}
	}
	if chained < 500 {
		t.Fatalf("only %d chained loads in mcf; pointer chase not active", chained)
	}
}

func TestPhaseSwitchChangesAddressRegions(t *testing.T) {
	spec, _ := ByName("ammp")
	g := New(spec, 300000)
	var rec trace.Record
	regions := map[int]map[uint64]bool{}
	i := 0
	for g.Next(&rec) {
		if rec.Kind.IsMem() {
			phase := 0
			if i >= 200000 {
				phase = 2
			} else if i >= 100000 {
				phase = 1
			}
			if regions[phase] == nil {
				regions[phase] = map[uint64]bool{}
			}
			regions[phase][rec.Addr>>30] = true // coarse 1GB region id
		}
		i++
	}
	// Later phases use pattern ids offset by 16, hence different regions.
	for r := range regions[0] {
		if regions[2][r] {
			t.Fatalf("phase 0 and phase 2 share region %d; phases not switching", r)
		}
	}
}

func TestLoopBranchBehavior(t *testing.T) {
	spec := Spec{Name: "loop-test", Suite: "test", TripCount: 10, Kernels: 2, KernelLen: 8}
	g := New(spec, 2000)
	var rec trace.Record
	taken, notTaken := 0, 0
	for g.Next(&rec) {
		if rec.Kind == trace.Branch && rec.Target != 0 && rec.Target < rec.PC+1 {
			if rec.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken == 0 || notTaken == 0 {
		t.Fatalf("loop branches: %d taken, %d not taken — trip-count exit missing", taken, notTaken)
	}
	// Trip count 10: roughly 9 taken per not-taken.
	ratio := float64(taken) / float64(notTaken)
	if ratio < 7 || ratio > 11 {
		t.Fatalf("taken/not-taken ratio %.1f, want ~9", ratio)
	}
}

func TestDwellRepeatsBlocks(t *testing.T) {
	r := newRNG(1)
	st := newPatternState(Pattern{Kind: PatScan, Dwell: 4}, 0, r)
	first := st.next(r)
	for k := 0; k < 3; k++ {
		if got := st.next(r); got != first {
			t.Fatalf("dwell ref %d left the block", k)
		}
	}
	if got := st.next(r); got == first {
		t.Fatal("pattern never advanced after dwell")
	}
}

func TestChaseVisitsAllBlocksBeforeRepeat(t *testing.T) {
	r := newRNG(9)
	const n = 500
	st := newPatternState(Pattern{Kind: PatChase, Blocks: n}, 0, r)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		b := st.next(r)
		if seen[b] {
			t.Fatalf("chase revisited block %d after %d steps, want full cycle of %d", b, i, n)
		}
		seen[b] = true
	}
}

func TestZipfishSkewsLow(t *testing.T) {
	r := newRNG(5)
	lowSkew, lowUni := 0, 0
	const n, trials = 1024, 20000
	for i := 0; i < trials; i++ {
		if zipfish(n, 0.6, r) < n/4 {
			lowSkew++
		}
		if zipfish(n, 0, r) < n/4 {
			lowUni++
		}
	}
	if float64(lowSkew)/trials < 0.5 {
		t.Errorf("skewed draw hit low quarter only %.2f of the time", float64(lowSkew)/trials)
	}
	got := float64(lowUni) / trials
	if got < 0.2 || got > 0.3 {
		t.Errorf("uniform draw hit low quarter %.2f of the time, want ~0.25", got)
	}
}

func TestEpisodicJumpsRegion(t *testing.T) {
	r := newRNG(7)
	st := newPatternState(Pattern{Kind: PatHot, Blocks: 100, Episode: 50}, 0, r)
	var before, after []uint64
	for i := 0; i < 49; i++ {
		before = append(before, st.next(r))
	}
	for i := 0; i < 49; i++ {
		after = append(after, st.next(r))
	}
	maxOf := func(xs []uint64) uint64 {
		m := xs[0]
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	minOf := func(xs []uint64) uint64 {
		m := xs[0]
		for _, x := range xs {
			if x < m {
				m = x
			}
		}
		return m
	}
	if minOf(after) <= maxOf(before) {
		t.Fatalf("episode did not relocate region: before max %d, after min %d",
			maxOf(before), minOf(after))
	}
}

func TestSetStridePlacesOnAlternateSets(t *testing.T) {
	r := newRNG(11)
	st := newPatternState(Pattern{Kind: PatLoop, Blocks: 64, SetStride: 2, SetOffset: 1}, 0, r)
	for i := 0; i < 200; i++ {
		if b := st.next(r); b%2 != 1 {
			t.Fatalf("block %d not on odd stride", b)
		}
	}
}

func TestBadSpecsPanic(t *testing.T) {
	if err := func() (err any) {
		defer func() { err = recover() }()
		New(Spec{Name: "x"}, 0)
		return nil
	}(); err == nil {
		t.Error("zero budget accepted")
	}
	if err := func() (err any) {
		defer func() { err = recover() }()
		New(Spec{Name: "x", LoadFrac: 0.5, StoreFrac: 0.3, BranchFrac: 0.2, FPFrac: 0.2}, 100)
		return nil
	}(); err == nil {
		t.Error("overfull mix accepted")
	}
}

func TestAllSuiteSpecsGenerate(t *testing.T) {
	for _, spec := range Suite() {
		g := New(spec, 2000)
		var rec trace.Record
		n := 0
		for g.Next(&rec) {
			if !rec.Kind.Valid() {
				t.Fatalf("%s: invalid kind", spec.Name)
			}
			n++
		}
		if n != 2000 {
			t.Fatalf("%s: generated %d", spec.Name, n)
		}
	}
}

func TestRingBoundsDriftFootprint(t *testing.T) {
	r := newRNG(3)
	st := newPatternState(Pattern{Kind: PatHot, Blocks: 8, Drift: 2, Ring: 32}, 0, r)
	seen := map[uint64]bool{}
	var first uint64
	for i := 0; i < 5000; i++ {
		b := st.next(r)
		if i == 0 {
			first = b
		}
		seen[b] = true
	}
	if len(seen) > 32 {
		t.Fatalf("ring drift touched %d blocks, bound 32", len(seen))
	}
	// The window must actually slide (more than the 8-block window seen).
	if len(seen) < 20 {
		t.Fatalf("ring drift touched only %d blocks; window not sliding", len(seen))
	}
	_ = first
}

func TestColdCodeStreamsFreshPCs(t *testing.T) {
	spec := Spec{Name: "cold-test", Suite: "test", Kernels: 4, KernelLen: 8,
		TripCount: 4, ColdCodeEvery: 2}
	g := New(spec, 20000)
	var rec trace.Record
	cold := map[uint64]bool{}
	hot := map[uint64]bool{}
	for g.Next(&rec) {
		if rec.PC >= coldCodeBase {
			if cold[rec.PC] {
				continue // same cold pass touches a PC once per slot
			}
			cold[rec.PC] = true
		} else {
			hot[rec.PC] = true
		}
	}
	if len(cold) == 0 {
		t.Fatal("no cold-code instructions emitted")
	}
	if len(hot) != 4*8 {
		t.Fatalf("hot code footprint %d PCs, want 32", len(hot))
	}
	// Cold PCs are one-shot: every cold activation uses a fresh range, so
	// the count must be a multiple of the kernel length and grow with run
	// length.
	if len(cold)%8 != 0 {
		t.Fatalf("cold footprint %d not a multiple of the kernel length", len(cold))
	}
}

func TestKernelSkewConcentratesExecution(t *testing.T) {
	runCounts := func(skew float64) map[uint64]int {
		spec := Spec{Name: "skew-test", Suite: "test", Kernels: 64, KernelLen: 8,
			TripCount: 2, KernelSkew: skew}
		g := New(spec, 100000)
		var rec trace.Record
		counts := map[uint64]int{}
		for g.Next(&rec) {
			counts[(rec.PC-codeBase)/(8*4)]++ // kernel index
		}
		return counts
	}
	skewed := runCounts(0.6)
	// Top-quarter kernels must dominate under skew.
	var head, total int
	for k, n := range skewed {
		total += n
		if k < 16 {
			head += n
		}
	}
	if frac := float64(head) / float64(total); frac < 0.5 {
		t.Fatalf("head kernels got %.2f of execution under skew, want > 0.5", frac)
	}
	// Round-robin spreads evenly: head quarter gets ~1/4.
	rr := runCounts(0)
	head, total = 0, 0
	for k, n := range rr {
		total += n
		if k < 16 {
			head += n
		}
	}
	if frac := float64(head) / float64(total); frac > 0.35 {
		t.Fatalf("round-robin head share %.2f, want ~0.25", frac)
	}
}

func TestKeyStreamDeterministic(t *testing.T) {
	mix := MixedZipf(4096, 0.4)
	a, b := NewKeyStream(11, mix), NewKeyStream(11, mix)
	for i := 0; i < 10000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("streams diverged at %d: %d != %d", i, ka, kb)
		}
	}
	// A different seed must produce a different sequence.
	c := NewKeyStream(12, mix)
	same := 0
	a2 := NewKeyStream(11, mix)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seed has no effect on the key stream")
	}
}

func TestKeyStreamMixesPatterns(t *testing.T) {
	// A hot set over a scan: hot keys repeat, scan keys never do, and both
	// regions must appear.
	s := NewKeyStream(3, MixedZipf(64, 0.3))
	seen := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		seen[s.Next()]++
	}
	repeats, singletons := 0, 0
	for _, n := range seen {
		if n > 1 {
			repeats++
		} else {
			singletons++
		}
	}
	if repeats == 0 {
		t.Error("no repeated keys: hot pattern missing from mix")
	}
	if singletons == 0 {
		t.Error("no single-visit keys: scan pattern missing from mix")
	}
}

func TestKeyStreamSinglePattern(t *testing.T) {
	s := NewKeyStream(1, []Pattern{{Kind: PatLoop, Blocks: 8}})
	first := make([]uint64, 8)
	for i := range first {
		first[i] = s.Next()
	}
	for i := 0; i < 8; i++ { // loop repeats verbatim
		if got := s.Next(); got != first[i] {
			t.Fatalf("loop position %d: got %d, want %d", i, got, first[i])
		}
	}
}
