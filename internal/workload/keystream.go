package workload

// KeyStream adapts the access-pattern primitives to key-value traffic: it
// yields the block-number stream of a weighted Pattern mix without the
// instruction-level scaffolding of Generator. The adaptivekv subsystem and
// cmd/kvloadgen replay these streams as cache keys, so the same behavioral
// classes the paper uses to explain policy preferences (hot sets, scans,
// loops, episodic shifts) exercise the live key-value cache.
//
// The stream is deterministic in (seed, patterns); two KeyStreams built
// with identical arguments produce identical key sequences, which is what
// lets tests replay one workload against several cache configurations.
type KeyStream struct {
	r         *rng
	patterns  []*patternState
	weightTot int
}

// NewKeyStream builds a stream over the given pattern mix. Weights behave
// as in Phase: non-positive weights count as 1.
func NewKeyStream(seed uint64, patterns []Pattern) *KeyStream {
	if len(patterns) == 0 {
		panic("workload: KeyStream needs at least one pattern")
	}
	s := &KeyStream{r: newRNG(seed)}
	s.patterns = make([]*patternState, len(patterns))
	for i, p := range patterns {
		if p.Weight <= 0 {
			p.Weight = 1
		}
		s.patterns[i] = newPatternState(p, i, s.r)
		s.weightTot += p.Weight
	}
	return s
}

// Next returns the next key (block number) in the stream.
func (s *KeyStream) Next() uint64 {
	st := s.patterns[0]
	if len(s.patterns) > 1 {
		w := int(s.r.n(uint64(s.weightTot)))
		for _, cand := range s.patterns {
			weight := cand.p.Weight
			if weight <= 0 {
				weight = 1
			}
			if w < weight {
				st = cand
				break
			}
			w -= weight
		}
	}
	return st.next(s.r)
}

// MixedZipf is a ready-made key mix for load generation and tests: a
// Zipf-skewed hot set of hotBlocks keys (three quarters of references)
// over a streaming scan (the remaining quarter) that pollutes
// recency-based policies. hotBlocks should exceed the cache's capacity
// share for the mix to differentiate the component policies.
func MixedZipf(hotBlocks uint64, skew float64) []Pattern {
	return []Pattern{
		{Kind: PatHot, Blocks: hotBlocks, Skew: skew, Weight: 3},
		{Kind: PatScan, Blocks: 1, Weight: 1},
	}
}

// LoopingScan is a key mix dominated by a linear loop slightly larger
// than a cache share, the classic LRU-pathological shape.
func LoopingScan(loopBlocks uint64) []Pattern {
	return []Pattern{
		{Kind: PatLoop, Blocks: loopBlocks, Weight: 4},
		{Kind: PatScan, Blocks: 1, Weight: 1},
	}
}
