package workload

import (
	"fmt"

	"repro/internal/trace"
)

// Phase is a stretch of execution with its own pattern mix. Frac values
// across a spec's phases are normalized to the total instruction budget.
type Phase struct {
	Frac     float64
	Patterns []Pattern
}

// Spec declares one synthetic benchmark. The zero values of most fields
// are filled with sensible defaults by normalize.
type Spec struct {
	Name  string
	Suite string // benchmark suite the modeled program came from
	Seed  uint64

	// Instruction mix (fractions of all instructions); the remainder is
	// integer ALU work. Within FPFrac, divides are a fixed small share.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64

	// Kernel structure: Kernels loop bodies of KernelLen instructions
	// each, executed TripCount iterations before moving on (cyclically).
	// Code footprint is roughly Kernels*KernelLen*4 bytes, which is what
	// the L1I experiment (paper Section 4.6) varies.
	Kernels   int
	KernelLen int
	TripCount int

	// CondBranchBias is the taken probability of non-loop conditional
	// branches (one per kernel); lower bias means more mispredicts.
	CondBranchBias float64

	// KernelSkew biases which kernel runs next: 0 cycles round-robin;
	// higher values concentrate executions on a popular head of the
	// kernel list (zipf-like), giving the instruction stream the hot/cold
	// code structure the L1I adaptivity experiment needs.
	KernelSkew float64

	// ColdCodeEvery, when positive, runs the first iteration of every
	// Nth kernel activation from fresh, never-reused instruction
	// addresses — one-off code (initialization, error paths, inlined
	// cold calls) that streams through the instruction cache.
	ColdCodeEvery int

	// DepDist is the register dependence distance between ALU ops: 1
	// yields a serial chain (low ILP), larger values more parallelism.
	DepDist int

	Phases []Phase
}

func (s Spec) normalized() Spec {
	if s.Seed == 0 {
		s.Seed = hashName(s.Name)
	}
	if s.LoadFrac == 0 {
		s.LoadFrac = 0.24
	}
	if s.StoreFrac == 0 {
		s.StoreFrac = 0.10
	}
	if s.BranchFrac == 0 {
		s.BranchFrac = 0.12
	}
	if s.Kernels == 0 {
		s.Kernels = 8
	}
	if s.KernelLen == 0 {
		s.KernelLen = 32
	}
	if s.TripCount == 0 {
		s.TripCount = 64
	}
	if s.CondBranchBias == 0 {
		s.CondBranchBias = 0.9
	}
	if s.DepDist == 0 {
		s.DepDist = 4
	}
	if len(s.Phases) == 0 {
		s.Phases = []Phase{{Frac: 1, Patterns: []Pattern{{Kind: PatHot, Blocks: 4096, Weight: 1}}}}
	}
	return s
}

func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h | 1
}

// slot is one position in a kernel's loop body.
type slot struct {
	kind    trace.Kind // IntALU/FP kinds; mem/branch slots see below
	isMem   bool
	isStore bool
	isLoop  bool // loop-back branch (last slot)
	isCond  bool // data-dependent conditional branch
	src1    int8
	src2    int8
	dst     int8
}

// Generator produces the instruction stream for one Spec. It implements
// trace.Source for a fixed total instruction count so phase boundaries are
// well defined.
type Generator struct {
	spec  Spec
	total uint64

	kernels  [][]slot
	phaseEnd []uint64 // absolute instruction index ending each phase

	r         *rng
	patterns  []*patternState // current phase's patterns
	weightTot int
	phase     int

	idx       uint64 // instructions emitted
	kernel    int
	slotIdx   int
	iteration int

	kernelRuns int    // completed kernel activations
	coldThis   bool   // current activation's first iteration uses cold PCs
	coldBase   uint64 // bump allocator for one-off code addresses

	chaseReg int8
}

// codeBase is the start of the synthetic text segment; coldCodeBase is the
// bump-allocated region for one-off (never re-executed) code.
const (
	codeBase     = 0x0040_0000
	coldCodeBase = 0x0100_0000
)

// New builds a generator for spec producing exactly total instructions.
func New(spec Spec, total uint64) *Generator {
	if total == 0 {
		panic("workload: total instruction count must be positive")
	}
	s := spec.normalized()
	if s.LoadFrac+s.StoreFrac+s.BranchFrac+s.FPFrac > 0.95 {
		panic(fmt.Sprintf("workload %s: instruction mix leaves no room for ALU work", s.Name))
	}
	g := &Generator{spec: s, total: total, chaseReg: 30}
	g.buildKernels()
	g.buildPhases()
	g.Reset()
	return g
}

// Name implements trace.Source.
func (g *Generator) Name() string { return g.spec.Name }

// Total returns the instruction budget.
func (g *Generator) Total() uint64 { return g.total }

// Spec returns the normalized benchmark specification.
func (g *Generator) Spec() Spec { return g.spec }

// buildKernels lays out the loop bodies. Slot composition is deterministic
// in the spec's seed.
func (g *Generator) buildKernels() {
	s := g.spec
	r := newRNG(s.Seed ^ 0xC0DE)
	g.kernels = make([][]slot, s.Kernels)
	for k := range g.kernels {
		body := make([]slot, s.KernelLen)
		// Choose slot roles: the last is the loop branch, further branch
		// slots fill BranchFrac, and memory ops fill their budgeted share.
		nMem := int(float64(s.KernelLen)*(s.LoadFrac+s.StoreFrac) + 0.5)
		nFP := int(float64(s.KernelLen)*s.FPFrac + 0.5)
		storeShare := 0.0
		if s.LoadFrac+s.StoreFrac > 0 {
			storeShare = s.StoreFrac / (s.LoadFrac + s.StoreFrac)
		}
		nCond := int(float64(s.KernelLen)*s.BranchFrac+0.5) - 1
		condAt := make(map[int]bool, nCond)
		for len(condAt) < nCond {
			p := 1 + int(r.n(uint64(s.KernelLen-2)))
			condAt[p] = true
		}
		for i := range body {
			sl := &body[i]
			sl.dst = int8(2 + (i % 26))
			sl.src1 = int8(2 + ((i + s.KernelLen - s.DepDist) % 26))
			sl.src2 = 0 // register 0 is never written: always ready
			switch {
			case i == s.KernelLen-1:
				sl.isLoop = true
				sl.kind = trace.Branch
				sl.dst = trace.NoReg
			case condAt[i]:
				sl.isCond = true
				sl.kind = trace.Branch
				sl.dst = trace.NoReg
			case nMem > 0:
				nMem--
				sl.isMem = true
				sl.isStore = r.float() < storeShare
				if sl.isStore {
					sl.kind = trace.Store
					sl.dst = trace.NoReg
				} else {
					sl.kind = trace.Load
				}
			case nFP > 0:
				nFP--
				switch r.n(8) {
				case 0:
					sl.kind = trace.FPDiv
				case 1, 2:
					sl.kind = trace.FPMul
				default:
					sl.kind = trace.FPAdd
				}
			default:
				if r.n(16) == 0 {
					sl.kind = trace.IntMul
				} else {
					sl.kind = trace.IntALU
				}
			}
		}
		g.kernels[k] = body
	}
}

// buildPhases converts phase fractions into absolute instruction indices.
func (g *Generator) buildPhases() {
	var sum float64
	for _, p := range g.spec.Phases {
		sum += p.Frac
	}
	g.phaseEnd = make([]uint64, len(g.spec.Phases))
	var acc float64
	for i, p := range g.spec.Phases {
		acc += p.Frac / sum
		g.phaseEnd[i] = uint64(acc * float64(g.total))
	}
	g.phaseEnd[len(g.phaseEnd)-1] = g.total
}

// Reset implements trace.Source.
func (g *Generator) Reset() {
	g.r = newRNG(g.spec.Seed)
	g.idx, g.kernel, g.slotIdx, g.iteration = 0, 0, 0, 0
	g.kernelRuns, g.coldThis, g.coldBase = 0, false, coldCodeBase
	g.phase = -1
	g.enterPhase(0)
}

func (g *Generator) enterPhase(p int) {
	if p == g.phase {
		return
	}
	g.phase = p
	ph := g.spec.Phases[p]
	g.patterns = make([]*patternState, len(ph.Patterns))
	g.weightTot = 0
	for i, pat := range ph.Patterns {
		if pat.Weight <= 0 {
			pat.Weight = 1
		}
		g.patterns[i] = newPatternState(pat, p*16+i, g.r)
		g.weightTot += pat.Weight
	}
}

// pickPattern selects a pattern by weight.
func (g *Generator) pickPattern() *patternState {
	if len(g.patterns) == 1 {
		return g.patterns[0]
	}
	w := int(g.r.n(uint64(g.weightTot)))
	for _, st := range g.patterns {
		weight := st.p.Weight
		if weight <= 0 {
			weight = 1
		}
		if w < weight {
			return st
		}
		w -= weight
	}
	return g.patterns[len(g.patterns)-1]
}

// Next implements trace.Source.
func (g *Generator) Next(rec *trace.Record) bool {
	if g.idx >= g.total {
		return false
	}
	if g.idx >= g.phaseEnd[g.phase] && g.phase+1 < len(g.phaseEnd) {
		g.enterPhase(g.phase + 1)
	}

	body := g.kernels[g.kernel]
	sl := &body[g.slotIdx]
	pc := uint64(codeBase) + uint64(g.kernel*g.spec.KernelLen+g.slotIdx)*4
	if g.coldThis && g.iteration == 0 {
		pc = g.coldBase + uint64(g.slotIdx)*4
	}

	*rec = trace.Record{
		PC:   pc,
		Kind: sl.kind,
		Src1: sl.src1,
		Src2: sl.src2,
		Dst:  sl.dst,
	}

	switch {
	case sl.isMem:
		st := g.pickPattern()
		block := st.next(g.r)
		rec.Addr = block*64 + g.r.n(8)*8
		if st.p.Chained && !sl.isStore {
			// Pointer chase: this load consumes the previous chase load's
			// result and produces the next pointer.
			rec.Src1 = g.chaseReg
			rec.Dst = g.chaseReg
		}
	case sl.isLoop:
		taken := g.iteration+1 < g.spec.TripCount
		rec.Taken = taken
		rec.Target = uint64(codeBase) + uint64(g.kernel*g.spec.KernelLen)*4
	case sl.isCond:
		rec.Taken = g.r.float() < g.spec.CondBranchBias
		rec.Target = pc + 32
	}

	g.idx++
	g.slotIdx++
	if g.slotIdx == len(body) {
		g.slotIdx = 0
		g.iteration++
		if g.coldThis && g.iteration == 1 {
			g.coldBase += uint64(g.spec.KernelLen) * 4
			g.coldThis = false
		}
		if g.iteration >= g.spec.TripCount {
			g.iteration = 0
			g.kernelRuns++
			if g.spec.KernelSkew > 0 {
				g.kernel = int(zipfish(uint64(len(g.kernels)), g.spec.KernelSkew, g.r))
			} else {
				g.kernel = (g.kernel + 1) % len(g.kernels)
			}
			g.coldThis = g.spec.ColdCodeEvery > 0 && g.kernelRuns%g.spec.ColdCodeEvery == 0
		}
	}
	return true
}
