package core

import (
	"strings"

	"repro/internal/cache"
	"repro/internal/history"
)

// DefaultLeaderSets is the number of leader sets used by the SBAR
// experiments; 16 leaders of a 1024-set cache reproduce the paper's 0.16%
// (full-tag) and 0.09% (8-bit partial) hardware overheads.
const DefaultLeaderSets = 16

// SBAR is the Sampling Based Adaptive Replacement variant (paper Section
// 4.7, after Qureshi et al.). Only a few evenly spaced leader sets carry
// shadow tag arrays and per-set history; they feed a global selector. Every
// set keeps metadata for all component policies on the real array
// (frequency counts, recency, ...), so when the global winner changes, the
// newly chosen policy "begins executing on the blocks that are currently in
// the cache". SBAR therefore loses the per-set theoretical guarantee but
// retains most of the practical benefit at a tiny fraction of the cost.
type SBAR struct {
	factories []ComponentFactory
	leaderN   int
	adaptOpts []Option

	geo      cache.Geometry
	leaders  []bool
	adaptive *Adaptive // drives leader sets only
	realPols []cache.Policy
	selector history.Buffer // single-"set" global miss tallies
	counts   []int
}

// SBAROption configures an SBAR policy.
type SBAROption func(*SBAR)

// WithLeaderSets sets how many evenly spaced leader sets carry the adaptive
// machinery.
func WithLeaderSets(n int) SBAROption {
	if n < 1 {
		panic("core: SBAR needs at least one leader set")
	}
	return func(s *SBAR) { s.leaderN = n }
}

// WithLeaderOptions forwards options (partial tags, history, ...) to the
// embedded adaptive policy that manages the leader sets.
func WithLeaderOptions(opts ...Option) SBAROption {
	return func(s *SBAR) { s.adaptOpts = append(s.adaptOpts, opts...) }
}

// WithSelector replaces the global selector buffer (default: 10-bit
// saturating counters).
func WithSelector(b history.Buffer) SBAROption {
	return func(s *SBAR) { s.selector = b }
}

// NewSBAR builds an SBAR policy over the given component policies.
func NewSBAR(comps []ComponentFactory, opts ...SBAROption) *SBAR {
	if len(comps) < 2 {
		panic("core: SBAR needs at least two component policies")
	}
	s := &SBAR{factories: comps, leaderN: DefaultLeaderSets}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements cache.Policy, e.g. "SBAR(LRU,LFU)".
func (s *SBAR) Name() string {
	names := make([]string, len(s.factories))
	for i, f := range s.factories {
		names[i] = f().Name()
	}
	return "SBAR(" + strings.Join(names, ",") + ")"
}

// Leader reports whether set is a leader set.
func (s *SBAR) Leader(set int) bool { return s.leaders[set] }

// Winner returns the component index the global selector currently favors.
func (s *SBAR) Winner() int {
	return history.Best(s.selector.Counts(0, s.counts))
}

// Attach implements cache.Policy.
func (s *SBAR) Attach(g cache.Geometry) {
	s.geo = g
	sets := g.Sets()
	n := s.leaderN
	if n > sets {
		n = sets
	}
	s.leaders = make([]bool, sets)
	stride := sets / n
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i++ {
		s.leaders[i*stride] = true
	}

	opts := append([]Option{WithSampleHook(s.sample)}, s.adaptOpts...)
	s.adaptive = NewAdaptive(s.factories, opts...)
	s.adaptive.Attach(g)

	s.realPols = make([]cache.Policy, len(s.factories))
	for i, f := range s.factories {
		s.realPols[i] = f()
		s.realPols[i].Attach(g)
	}

	if s.selector == nil {
		s.selector = history.NewSaturating(10)
	}
	s.selector.Attach(1, len(s.factories))
	s.counts = make([]int, len(s.factories))
}

// sample receives leader-set miss masks from the embedded adaptive policy
// and accumulates them into the global selector.
func (s *SBAR) sample(_ int, missMask uint64) {
	s.selector.Record(0, missMask)
}

// Observe implements cache.Policy.
func (s *SBAR) Observe(set int, tag uint64, hit bool) {
	for _, p := range s.realPols {
		p.Observe(set, tag, hit)
	}
	if s.leaders[set] {
		s.adaptive.Observe(set, tag, hit)
	}
}

// Touch implements cache.Policy: every component's real-array metadata is
// maintained at all times so any of them can take over victim selection.
func (s *SBAR) Touch(set, way int) {
	for _, p := range s.realPols {
		p.Touch(set, way)
	}
	if s.leaders[set] {
		s.adaptive.Touch(set, way)
	}
}

// Insert implements cache.Policy.
func (s *SBAR) Insert(set, way int, tag uint64) {
	for _, p := range s.realPols {
		p.Insert(set, way, tag)
	}
	if s.leaders[set] {
		s.adaptive.Insert(set, way, tag)
	}
}

// Victim implements cache.Policy: leader sets run the full adaptive
// algorithm; follower sets apply the globally winning component policy on
// the real array's own metadata.
func (s *SBAR) Victim(set int, lines []cache.Line, tag uint64) int {
	if s.leaders[set] {
		return s.adaptive.Victim(set, lines, tag)
	}
	return s.realPols[s.Winner()].Victim(set, lines, tag)
}
