package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/history"
	"repro/internal/policy"
)

// TestAdaptiveNonPowerOfTwoGeometry runs the adaptive policy on the
// paper's 9-way 576KB configuration (non-power-of-two per-set layout).
func TestAdaptiveNonPowerOfTwoGeometry(t *testing.T) {
	g := cache.Geometry{SizeBytes: 576 << 10, LineBytes: 64, Ways: 9}
	c := cache.New(g, NewAdaptive([]ComponentFactory{lruf, lfuf}, WithShadowTagBits(8)))
	rng := uint64(3)
	for i := 0; i < 60000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Access(cache.Addr(rng%(1<<24)), false)
	}
	s := c.Stats()
	if s.Accesses != 60000 || s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("implausible stats %+v", s)
	}
}

// TestDefaultHistoryWindowMatchesAssociativity: the paper sets m to the
// cache associativity by default.
func TestDefaultHistoryWindowMatchesAssociativity(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	oneSet(8, ad)
	w, ok := ad.History().(*history.Window)
	if !ok {
		t.Fatalf("default history is %T, want *history.Window", ad.History())
	}
	if w.Len() != 8 {
		t.Fatalf("default window m = %d, want 8 (the associativity)", w.Len())
	}
}

// TestExplicitHistorySurvivesAttach: a user-provided buffer must not be
// replaced by the default on Attach.
func TestExplicitHistorySurvivesAttach(t *testing.T) {
	h := history.NewSaturating(6)
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf}, WithHistory(h))
	oneSet(4, ad)
	if ad.History() != history.Buffer(h) {
		t.Fatal("explicit history buffer replaced on Attach")
	}
}

// TestCacheResetReattachesAdaptive: Reset must clear shadow arrays and
// history so a second run reproduces the first exactly.
func TestCacheResetReattachesAdaptive(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	c := oneSet(4, ad)
	run := func() cache.Stats {
		rng := uint64(5)
		for i := 0; i < 20000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			c.Access(blk(int(rng%13)), false)
		}
		return c.Stats()
	}
	s1 := run()
	c.Reset()
	s2 := run()
	if s1 != s2 {
		t.Fatalf("stats after Reset differ: %+v vs %+v", s1, s2)
	}
}

// TestShadowStoresMaskedTags: with k-bit shadow tags, every tag stored in
// a shadow array must fit in k bits.
func TestShadowStoresMaskedTags(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf}, WithShadowTagBits(8))
	g := cache.Geometry{SizeBytes: 16 * 64 * 4, LineBytes: 64, Ways: 4}
	c := cache.New(g, ad)
	for i := 0; i < 5000; i++ {
		c.Access(cache.Addr(i*64*17), false)
	}
	for k := 0; k < 2; k++ {
		sh := ad.Shadow(k)
		for s := 0; s < g.Sets(); s++ {
			for _, l := range sh.Set(s) {
				if l.Valid && l.Tag > 0xFF {
					t.Fatalf("shadow %d holds %d-bit tag %#x", k, 8, l.Tag)
				}
			}
		}
	}
	// The real array keeps full tags.
	fullSeen := false
	for s := 0; s < g.Sets(); s++ {
		for _, l := range c.Set(s) {
			if l.Valid && l.Tag > 0xFF {
				fullSeen = true
			}
		}
	}
	if !fullSeen {
		t.Fatal("real array never held a full-width tag (trace too small?)")
	}
}

// TestInvalidateDoesNotDesyncAdaptive: the paper notes shadow arrays need
// not observe coherence invalidations; the adaptive cache must keep
// operating correctly when real lines are invalidated underneath it.
func TestInvalidateDoesNotDesyncAdaptive(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	c := oneSet(4, ad)
	rng := uint64(7)
	for i := 0; i < 30000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		a := blk(int(rng % 11))
		c.Access(a, false)
		if i%97 == 0 {
			c.Invalidate(a) // snoop-style invalidation the shadows never see
		}
	}
	if occ := c.Occupancy(0); occ > 4 {
		t.Fatalf("occupancy %d exceeds ways", occ)
	}
	// Shadows deliberately diverge from the real array here; the policy
	// must still produce legal victims (the cache panics otherwise).
	if c.Stats().Accesses != 30000 {
		t.Fatal("simulation incomplete")
	}
}

// TestTwoXBoundWithThreeComponents: the formal proof covers two
// components, but the generalized argmin rule should stay within the same
// empirical envelope for three.
func TestTwoXBoundWithThreeComponents(t *testing.T) {
	const ways = 4
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf, fifof},
		WithHistory(history.NewCounters()))
	real := oneSet(ways, ad)
	rng := uint64(123)
	for i := 0; i < 30000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		real.Access(blk(int(rng%11)), false)
	}
	best := ad.Shadow(0).Stats().Misses
	for k := 1; k < 3; k++ {
		if m := ad.Shadow(k).Stats().Misses; m < best {
			best = m
		}
	}
	if am := real.Stats().Misses; am > 2*best+2*ways {
		t.Errorf("three-component adaptive misses %d exceed 2x best %d", am, best)
	}
}

// TestAdaptiveWritesPropagateDirtyState: dirty bits live in the real
// array; adaptivity must not disturb writeback accounting.
func TestAdaptiveWritesPropagateDirtyState(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	c := oneSet(2, ad)
	c.Access(blk(0), true)
	c.Access(blk(1), false)
	c.Access(blk(2), false) // evicts one of the two
	c.Access(blk(3), false)
	if c.Stats().Writebacks == 0 {
		t.Fatal("dirty eviction not recorded under adaptive policy")
	}
}

// TestSBARWithFivePolicies: the set-sampling variant generalizes to N
// components like the full scheme.
func TestSBARWithFivePolicies(t *testing.T) {
	s := NewSBAR([]ComponentFactory{lruf, lfuf, fifof, mruf, randf}, WithLeaderSets(4))
	c := newSBARCache(16, 4, s)
	rng := uint64(17)
	for i := 0; i < 40000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Access(cache.Addr(rng%(1<<16)), false)
	}
	if w := s.Winner(); w < 0 || w >= 5 {
		t.Fatalf("winner %d out of range", w)
	}
	if c.Stats().Accesses != 40000 {
		t.Fatal("simulation incomplete")
	}
}

// TestDecisionsFollowHistory: after a long streak of one component
// missing, the decision hook must report imitation of the other.
func TestDecisionsFollowHistory(t *testing.T) {
	var last int
	ad := NewAdaptive(
		[]ComponentFactory{func() cache.Policy { return policy.NewLRU() }, mruf},
		WithDecisionHook(func(_, comp int) { last = comp }))
	c := oneSet(4, ad)
	// Loop of 5 blocks: LRU misses everything, MRU settles. After
	// convergence every decision must imitate MRU (component 1).
	for r := 0; r < 500; r++ {
		for b := 0; b < 5; b++ {
			c.Access(blk(b), false)
		}
	}
	if last != 1 {
		t.Fatalf("final decision imitates component %d, want 1 (MRU)", last)
	}
}
