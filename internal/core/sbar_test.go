package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

func newSBARCache(sets, ways int, s *SBAR) *cache.Cache {
	g := cache.Geometry{SizeBytes: sets * ways * 64, LineBytes: 64, Ways: ways}
	return cache.New(g, s)
}

func TestSBARLeaderPlacement(t *testing.T) {
	s := NewSBAR([]ComponentFactory{lruf, lfuf}, WithLeaderSets(16))
	newSBARCache(1024, 8, s)
	n, stride := 0, 1024/16
	for set := 0; set < 1024; set++ {
		if s.Leader(set) {
			n++
			if set%stride != 0 {
				t.Errorf("leader at set %d, want multiples of %d", set, stride)
			}
		}
	}
	if n != 16 {
		t.Fatalf("%d leader sets, want 16", n)
	}
}

func TestSBARMoreLeadersThanSets(t *testing.T) {
	s := NewSBAR([]ComponentFactory{lruf, lfuf}, WithLeaderSets(64))
	newSBARCache(4, 4, s)
	n := 0
	for set := 0; set < 4; set++ {
		if s.Leader(set) {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("%d leaders, want all 4 sets", n)
	}
}

func TestSBARName(t *testing.T) {
	s := NewSBAR([]ComponentFactory{lruf, lfuf})
	if got := s.Name(); got != "SBAR(LRU,LFU)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSBARNeedsTwoComponents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSBAR with one component did not panic")
		}
	}()
	NewSBAR([]ComponentFactory{lruf})
}

func TestSBARBadLeaderCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithLeaderSets(0) did not panic")
		}
	}()
	WithLeaderSets(0)
}

// TestSBARGlobalSwitch: a workload that is uniformly MRU-friendly must
// swing the global selector to MRU and let follower sets exploit it.
func TestSBARGlobalSwitch(t *testing.T) {
	s := NewSBAR([]ComponentFactory{lruf, mruf}, WithLeaderSets(4))
	c := newSBARCache(16, 4, s)
	g := c.Geometry()
	// Linear loop of ways+1 blocks in every set: LRU thrashes, MRU wins.
	for r := 0; r < 2000; r++ {
		for b := 0; b < 5; b++ {
			for set := 0; set < g.Sets(); set++ {
				c.Access(cache.Addr((b*g.Sets()+set)*64), false)
			}
		}
	}
	if got := s.Winner(); got != 1 {
		t.Fatalf("Winner = %d, want 1 (MRU)", got)
	}
	// LRU alone would miss every access after warmup (100% of 5-block loop
	// in a 4-way set); SBAR must do far better.
	missRatio := c.Stats().MissRatio()
	if missRatio > 0.6 {
		t.Fatalf("SBAR miss ratio %.2f on MRU-friendly loop, want < 0.6", missRatio)
	}
}

// TestSBARTracksAdaptive: on a policy-divergent workload SBAR should land
// near the full adaptive scheme (paper: 12.5% vs 12.9% average CPI gain)
// and never be dramatically worse than the better component.
func TestSBARTracksAdaptive(t *testing.T) {
	const sets, ways = 64, 8
	g := cache.Geometry{SizeBytes: sets * ways * 64, LineBytes: 64, Ways: ways}
	run := func(p cache.Policy) uint64 {
		c := cache.New(g, p)
		scan := 100000
		for r := 0; r < 4000; r++ {
			for k := 0; k < 7; k++ {
				scan++
				c.Access(cache.Addr(scan*64), false)
			}
			h := r % 16
			c.Access(cache.Addr(h*64), false)
			c.Access(cache.Addr(h*64), false)
		}
		return c.Stats().Misses
	}
	lruM := run(policy.NewLRU())
	lfuM := run(policy.NewLFU(policy.DefaultLFUBits))
	adM := run(NewAdaptive([]ComponentFactory{lruf, lfuf}))
	sbM := run(NewSBAR([]ComponentFactory{lruf, lfuf}, WithLeaderSets(8)))

	best := lruM
	if lfuM < best {
		best = lfuM
	}
	if float64(adM) > 1.1*float64(best) {
		t.Fatalf("adaptive %d misses vs best component %d", adM, best)
	}
	if float64(sbM) > 1.25*float64(best) {
		t.Fatalf("SBAR %d misses vs best component %d (LRU %d, LFU %d)", sbM, best, lruM, lfuM)
	}
}

func TestSBARDeterminism(t *testing.T) {
	run := func() cache.Stats {
		s := NewSBAR([]ComponentFactory{lruf, lfuf}, WithLeaderSets(8))
		c := newSBARCache(64, 8, s)
		rng := uint64(77)
		for i := 0; i < 50000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			c.Access(cache.Addr(rng%(1<<22)), false)
		}
		return c.Stats()
	}
	if s1, s2 := run(), run(); s1 != s2 {
		t.Fatalf("runs diverged: %+v vs %+v", s1, s2)
	}
}

// TestSBARLeaderPartialTags: the combined set-sampling + partial-tag
// configuration of Section 4.7 (0.09% overhead) must run and stay close to
// the full-tag SBAR.
func TestSBARLeaderPartialTags(t *testing.T) {
	mk := func(opts ...Option) *cache.Cache {
		s := NewSBAR([]ComponentFactory{lruf, lfuf},
			WithLeaderSets(8), WithLeaderOptions(opts...))
		return newSBARCache(64, 8, s)
	}
	full, part := mk(), mk(WithShadowTagBits(8))
	rng := uint64(13)
	scan := 1 << 20
	for i := 0; i < 80000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		var a cache.Addr
		if i%3 == 0 {
			scan++
			a = cache.Addr(scan * 64)
		} else {
			a = cache.Addr((rng % 512) * 64)
		}
		full.Access(a, false)
		part.Access(a, false)
	}
	fm, pm := float64(full.Stats().Misses), float64(part.Stats().Misses)
	drift := (pm - fm) / fm
	if drift < 0 {
		drift = -drift
	}
	if drift > 0.05 {
		t.Fatalf("partial-tag SBAR drift %.1f%% (full %v, partial %v)", drift*100, fm, pm)
	}
}
