package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/history"
)

// FuzzAdaptiveInvariants drives a small adaptive cache with an arbitrary
// byte-derived access sequence and checks structural invariants: no
// panics, no duplicate tags per set, occupancy bounds, and the 2x counter
// bound.
func FuzzAdaptiveInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 7, 7, 4}, uint8(0))
	f.Add([]byte{255, 0, 255, 0, 128}, uint8(1))
	f.Fuzz(func(t *testing.T, accesses []byte, mode uint8) {
		if len(accesses) > 4096 {
			accesses = accesses[:4096]
		}
		var opts []Option
		switch mode % 3 {
		case 1:
			opts = append(opts, WithShadowTagBits(3)) // heavy aliasing
		case 2:
			opts = append(opts, WithHistory(history.NewCounters()))
		}
		ad := NewAdaptive([]ComponentFactory{lruf, lfuf}, opts...)
		g := cache.Geometry{SizeBytes: 2 * 4 * 64, LineBytes: 64, Ways: 4} // 2 sets
		c := cache.New(g, ad)
		for i, b := range accesses {
			c.Access(cache.Addr(uint64(b)*64), i%7 == 0)
		}
		for s := 0; s < g.Sets(); s++ {
			if c.Occupancy(s) > g.Ways {
				t.Fatalf("set %d over-full", s)
			}
			seen := map[uint64]bool{}
			for _, l := range c.Set(s) {
				if !l.Valid {
					continue
				}
				if seen[l.Tag] {
					t.Fatalf("duplicate tag %#x in set %d", l.Tag, s)
				}
				seen[l.Tag] = true
			}
		}
		if mode%3 == 2 { // counter history: the theorem applies
			best := ad.Shadow(0).Stats().Misses
			if m := ad.Shadow(1).Stats().Misses; m < best {
				best = m
			}
			if am := c.Stats().Misses; am > 2*best+2*uint64(g.Ways) {
				t.Fatalf("2x bound violated: adaptive %d, best %d", am, best)
			}
		}
	})
}
