package core

import (
	"testing"
	"testing/quick"

	"repro/internal/history"
)

// TestEngineStoreLookupDelete exercises the basic key-value contract of
// the exported decision API: a Lookup miss does not fill, Store upserts,
// Delete frees the way.
func TestEngineStoreLookupDelete(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	e := NewEngine(EngineGeometry(4, 4), ad)

	if way, ok := e.Lookup(0, 100); ok || way != -1 {
		t.Fatalf("cold Lookup = (%d, %v), want (-1, false)", way, ok)
	}
	if got := e.Directory().Occupancy(0); got != 0 {
		t.Fatalf("Lookup filled the set: occupancy %d", got)
	}

	res := e.Store(0, 100)
	if res.Hit || res.Evicted {
		t.Fatalf("first Store = %+v, want cold fill", res)
	}
	if way, ok := e.Lookup(0, 100); !ok || way != res.Way {
		t.Fatalf("Lookup after Store = (%d, %v), want (%d, true)", way, ok, res.Way)
	}
	if res2 := e.Store(0, 100); !res2.Hit || res2.Way != res.Way {
		t.Fatalf("re-Store = %+v, want in-place hit at way %d", res2, res.Way)
	}

	if way, ok := e.Delete(0, 100); !ok || way != res.Way {
		t.Fatalf("Delete = (%d, %v), want (%d, true)", way, ok, res.Way)
	}
	if _, ok := e.Lookup(0, 100); ok {
		t.Fatal("Lookup hit after Delete")
	}
	if _, ok := e.Delete(0, 100); ok {
		t.Fatal("double Delete reported presence")
	}
}

// TestEngineFullSetRunsAlgorithm1: once a set is full, Store must evict
// exactly one resident tag and keep the rest — the adaptive Victim path.
func TestEngineFullSetRunsAlgorithm1(t *testing.T) {
	const ways = 4
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	e := NewEngine(EngineGeometry(1, ways), ad)
	for tag := uint64(1); tag <= ways; tag++ {
		e.Store(0, tag)
	}
	res := e.Store(0, 99)
	if res.Hit || !res.Evicted {
		t.Fatalf("Store into full set = %+v, want eviction", res)
	}
	if _, ok := e.Lookup(0, res.EvictedTag); ok {
		t.Fatalf("evicted tag %d still resident", res.EvictedTag)
	}
	live := 0
	for tag := uint64(1); tag <= ways; tag++ {
		if tag == res.EvictedTag {
			continue
		}
		if _, ok := e.Lookup(0, tag); ok {
			live++
		}
	}
	if live != ways-1 {
		t.Fatalf("%d of %d surviving tags resident, want all", live, ways-1)
	}
}

// sbarEngine builds an SBAR-driven engine with an injected unbounded
// selector, returning the engine, the SBAR policy, the selector, and the
// lowest-numbered follower set.
func sbarEngine(t *testing.T, sets, ways int) (*Engine, *SBAR, *history.Counters, int) {
	t.Helper()
	sel := history.NewCounters()
	sb := NewSBAR([]ComponentFactory{lruf, lfuf}, WithLeaderSets(4), WithSelector(sel))
	e := NewEngine(EngineGeometry(sets, ways), sb)
	for s := 0; s < sets; s++ {
		if !sb.Leader(s) {
			return e, sb, sel, s
		}
	}
	t.Fatal("no follower set")
	return nil, nil, nil, -1
}

// TestEngineLeaderSetsFeedSelector verifies the SBAR wiring through the
// Engine: misses in leader sets update the global miss history, misses in
// follower sets do not.
func TestEngineLeaderSetsFeedSelector(t *testing.T) {
	const sets, ways = 64, 4

	storm := func(e *Engine, set int) {
		for tag := uint64(0); tag < uint64(3*ways); tag++ { // misses guaranteed
			e.Store(set, tag)
		}
	}
	total := func(sel *history.Counters) int {
		c := sel.Counts(0, make([]int, 2))
		return c[0] + c[1]
	}

	e, sb, sel, _ := sbarEngine(t, sets, ways)
	leader := -1
	for s := 0; s < sets; s++ {
		if sb.Leader(s) {
			leader = s
			break
		}
	}
	storm(e, leader)
	if total(sel) == 0 {
		t.Error("leader-set misses did not reach the global selector")
	}

	e2, _, sel2, follower := sbarEngine(t, sets, ways)
	storm(e2, follower)
	if got := total(sel2); got != 0 {
		t.Errorf("follower-set misses reached the selector: %d recorded", got)
	}
}

// TestEngineFollowersObeyGlobalChoice: with the global selector biased
// toward one component, a follower set's eviction must be the one that
// component's real-array metadata dictates. The set state is arranged so
// the two components disagree: tag 10 is the least recently used but
// well-used (count 2), tag 11 is the least frequently used (count 1) but
// not the recency victim. LRU evicts 10; LFU evicts 11.
func TestEngineFollowersObeyGlobalChoice(t *testing.T) {
	const sets, ways = 64, 4
	run := func(loserMask uint64, wantWinner int) uint64 {
		e, sb, sel, follower := sbarEngine(t, sets, ways)
		// Bias the global selector: record misses against the losing
		// component so the other one wins.
		for i := 0; i < 100; i++ {
			sel.Record(0, loserMask)
		}
		if w := sb.Winner(); w != wantWinner {
			t.Fatalf("Winner = %d, want %d", w, wantWinner)
		}
		// counts: 10->2, 11->1, 12->2, 13->2
		// recency oldest-first: 10, 11, 12, 13
		e.Store(follower, 10)
		e.Lookup(follower, 10)
		e.Store(follower, 11)
		e.Store(follower, 12)
		e.Store(follower, 13)
		e.Lookup(follower, 12)
		e.Lookup(follower, 13)
		res := e.Store(follower, 99)
		if !res.Evicted {
			t.Fatalf("Store into full follower set did not evict: %+v", res)
		}
		return res.EvictedTag
	}

	// LFU (component 1) governs when LRU records the misses.
	if got := run(0b01, 1); got != 11 {
		t.Errorf("LFU-governed follower evicted %d, want 11 (least frequent)", got)
	}
	// LRU (component 0) governs when LFU records the misses.
	if got := run(0b10, 0); got != 10 {
		t.Errorf("LRU-governed follower evicted %d, want 10 (least recent)", got)
	}
}

// TestEngineTwoXBound re-checks the paper's worst-case guarantee through
// the exported decision API: with integer miss counters and full tags, a
// Store-driven adaptive engine suffers at most twice the misses of its
// better component, modulo a cold-start additive term. This is the same
// property TestTheoremTwoXBound establishes for trace-driven caches; it
// must survive the API export unchanged.
func TestEngineTwoXBound(t *testing.T) {
	const ways = 4
	pairs := [][2]ComponentFactory{
		{lruf, lfuf}, {lruf, mruf}, {fifof, lfuf}, {mruf, lfuf},
	}
	f := func(seedRaw uint32, universeRaw uint8) bool {
		seed := uint64(seedRaw) | 1
		universe := uint64(universeRaw%12) + ways + 1
		for _, pair := range pairs {
			ad := NewAdaptive(pair[:], WithHistory(history.NewCounters()))
			e := NewEngine(EngineGeometry(1, ways), ad)
			rng := seed
			for i := 0; i < 4000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				e.Store(0, rng%universe)
			}
			am := e.Stats().Misses
			m0 := ad.Shadow(0).Stats().Misses
			m1 := ad.Shadow(1).Stats().Misses
			best := m0
			if m1 < best {
				best = m1
			}
			if am > 2*best+2*ways {
				t.Logf("seed %d universe %d pair %s/%s: engine misses %d > 2*%d+%d",
					seed, universe, ad.Shadow(0).Policy().Name(), ad.Shadow(1).Policy().Name(),
					am, best, 2*ways)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEngineReadThroughMatchesDirect: the read-through idiom (Lookup miss
// then Store of the same tag) must leave the adaptive machinery in the
// same state as unconditional Stores — the Lookup's shadow fills turn the
// Store's shadow accesses into all-hit events, which the window history
// discards, and the extra recency touch is order-preserving. Components
// are restricted to stamp-based policies (LRU/MRU), for which a double
// touch is idempotent on the eviction order.
func TestEngineReadThroughMatchesDirect(t *testing.T) {
	const ways = 4
	direct := NewEngine(EngineGeometry(1, ways), NewAdaptive([]ComponentFactory{lruf, mruf}))
	rt := NewEngine(EngineGeometry(1, ways), NewAdaptive([]ComponentFactory{lruf, mruf}))

	rng := uint64(99)
	for i := 0; i < 2000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		tag := rng % 9
		direct.Store(0, tag)
		if _, ok := rt.Lookup(0, tag); !ok {
			rt.Store(0, tag)
		}
	}

	ca := direct.Policy().(*Adaptive).History().Counts(0, make([]int, 2))
	cb := rt.Policy().(*Adaptive).History().Counts(0, make([]int, 2))
	if ca[0] != cb[0] || ca[1] != cb[1] {
		t.Errorf("history diverged: direct %v, read-through %v", ca, cb)
	}
	for tag := uint64(0); tag < 9; tag++ {
		a := direct.Directory().ContainsMasked(0, tag)
		b := rt.Directory().ContainsMasked(0, tag)
		if a != b {
			t.Errorf("tag %d residency diverged: direct %v, read-through %v", tag, a, b)
		}
	}
}

// TestEnginePolicySwitches: driving phase-shifted traffic through an SBAR
// engine must register at least one global winner change, and a non-SBAR
// engine must report none.
func TestEnginePolicySwitches(t *testing.T) {
	const sets, ways = 64, 8
	sb := NewSBAR([]ComponentFactory{lruf, lfuf}, WithLeaderSets(16),
		WithSelector(history.NewSaturating(6)))
	e := NewEngine(EngineGeometry(sets, ways), sb)

	rng := uint64(7)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	// Alternate an LFU-friendly phase (tiny hot set reused constantly under
	// a stream of cold pollution, which recency-based eviction keeps
	// admitting) with an LFU-pathological phase (the hot set teleports, so
	// stale frequency counts protect dead blocks while LRU adapts). Each
	// flip of the phase eventually flips the global winner.
	hotBase := uint64(0)
	for phase := 0; phase < 8; phase++ {
		if phase%2 == 1 {
			hotBase += 1 << 20 // episodic working-set shift
		}
		for i := 0; i < 30000; i++ {
			set := int(next() % sets)
			var tag uint64
			if next()%3 != 0 {
				tag = hotBase + next()%4 // hot working set
			} else {
				tag = 1<<40 + uint64(phase)<<20 + next()%50000 // cold stream
			}
			if _, ok := e.Lookup(set, tag); !ok {
				e.Store(set, tag)
			}
		}
	}
	if e.PolicySwitches() == 0 {
		t.Error("SBAR engine never switched its global winner under phase-shifted traffic")
	}
	if e.Winner() < 0 {
		t.Error("SBAR engine reports no winner")
	}

	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	ne := NewEngine(EngineGeometry(sets, ways), ad)
	for i := 0; i < 1000; i++ {
		ne.Store(int(next()%sets), next()%64)
	}
	if ne.PolicySwitches() != 0 || ne.Winner() != -1 {
		t.Errorf("non-SBAR engine: switches=%d winner=%d, want 0 and -1",
			ne.PolicySwitches(), ne.Winner())
	}
}

// TestEngineDeferredLookupReplay pins the property the adaptivekv
// optimistic read path is built on: Lookups recorded into a ring and
// replayed in order before the next mutation leave the engine in exactly
// the state inline recording would have — same directory stats, same
// SBAR winner, same switch count. Lookup must feed the policy's
// observation hooks on hits and misses alike (shadow arrays and miss
// history learn from both), and replay order, not replay timing, is
// what the learning depends on.
func TestEngineDeferredLookupReplay(t *testing.T) {
	const sets, ways, ops = 64, 4, 200000
	mk := func() *Engine {
		return NewEngine(EngineGeometry(sets, ways),
			NewSBAR([]ComponentFactory{lruf, lfuf}, WithLeaderSets(8)))
	}
	inline, deferred := mk(), mk()

	type rec struct {
		set int
		tag uint64
	}
	var pending []rec
	drain := func() {
		for _, r := range pending {
			deferred.Lookup(r.set, r.tag)
		}
		pending = pending[:0]
	}

	rng := uint64(99)
	for i := 0; i < ops; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		set, tag := int(rng%sets), (rng>>16)%512
		if rng%8 == 0 { // mutation: the deferred engine catches up first
			drain()
			inline.Store(set, tag)
			deferred.Store(set, tag)
			continue
		}
		inline.Lookup(set, tag)
		pending = append(pending, rec{set, tag})
	}
	drain()

	is, ds := inline.Stats(), deferred.Stats()
	if is != ds {
		t.Errorf("deferred replay diverged: inline stats %+v, deferred %+v", is, ds)
	}
	if iw, dw := inline.Winner(), deferred.Winner(); iw != dw {
		t.Errorf("deferred replay winner %d, inline %d", dw, iw)
	}
	if ip, dp := inline.PolicySwitches(), deferred.PolicySwitches(); ip != dp {
		t.Errorf("deferred replay switches %d, inline %d", dp, ip)
	}
}
