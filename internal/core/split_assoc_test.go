package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

// TestAdaptiveOverAssociativity pairs full-associativity LRU with the
// Split policy under the adaptive scheme — the Section 5 generality
// construction ("policy A uses all n ways, policy B manages its lines as
// two separate sets of n/2 ways") — and checks it tracks whichever
// associativity regime suits the workload.
func TestAdaptiveOverAssociativity(t *testing.T) {
	split := func() cache.Policy { return policy.NewSplit() }
	ad := NewAdaptive([]ComponentFactory{lruf, split})
	real := oneSet(8, ad)

	// Six even-tag and two odd-tag blocks: they all fit 8 ways under full
	// LRU, but the six evens overflow Split's 4-way partition and thrash.
	for r := 0; r < 2000; r++ {
		for b := 0; b < 6; b++ {
			real.Access(blk(2*b), false)
		}
		real.Access(blk(1), false)
		real.Access(blk(3), false)
	}
	am := real.Stats().Misses
	lm := ad.Shadow(0).Stats().Misses
	sm := ad.Shadow(1).Stats().Misses
	if lm >= sm {
		t.Fatalf("test premise broken: LRU %d >= Split %d misses", lm, sm)
	}
	if float64(am) > 1.2*float64(lm)+16 {
		t.Errorf("adaptive(LRU,Split) misses %d vs LRU %d: not tracking", am, lm)
	}
}
