// Package core implements the paper's primary contribution: adaptive cache
// replacement (Subramanian, Smaragdakis, Loh, MICRO 2006). An Adaptive
// policy combines any N >= 2 component replacement policies, maintains a
// parallel (shadow) tag array per component plus a per-set miss history
// buffer, and on every real-cache miss imitates the component with the
// fewest recorded misses (paper Algorithm 1). Shadow arrays may use partial
// tags to cut hardware cost (paper Section 3.1); the SBAR type provides the
// set-sampling variant of Section 4.7.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/history"
	"repro/internal/policy"
)

// ComponentFactory constructs a fresh instance of a component replacement
// policy. Factories rather than instances are required because the adaptive
// scheme needs an independent policy instance per shadow tag array.
type ComponentFactory func() cache.Policy

// DefaultComponents returns the paper's default LRU/LFU component pair.
func DefaultComponents() []ComponentFactory {
	return []ComponentFactory{
		func() cache.Policy { return policy.NewLRU() },
		func() cache.Policy { return policy.NewLFU(policy.DefaultLFUBits) },
	}
}

// Fallback selects the behavior when no resident block lies outside the
// imitated component's cache — possible only with partial tags, where
// aliasing can make every resident block appear present (paper Section 3.1:
// "the adaptive cache simply picks an arbitrary block to evict").
type Fallback int

const (
	// FallbackLRU evicts the real array's least recently used block.
	FallbackLRU Fallback = iota
	// FallbackFixed evicts way 0 — the cheapest possible hardware choice.
	FallbackFixed
)

// TagHash optionally folds a full tag before the partial-tag mask is
// applied (the paper mentions "XOR of bit groups" as an alternative to
// low-order bits).
type TagHash func(tag uint64) uint64

// XORFold16 folds the tag by XORing 16-bit groups — one of the paper's
// suggested partial-tag constructions.
func XORFold16(tag uint64) uint64 {
	return tag ^ (tag >> 16) ^ (tag >> 32) ^ (tag >> 48)
}

// Adaptive is the adaptive replacement policy. It implements cache.Policy
// and is attached to the "real" cache like any other policy; internally it
// simulates each component policy on its own shadow tag array.
type Adaptive struct {
	factories []ComponentFactory
	name      string // memoized at construction; Name() is allocation-free
	hist      history.Buffer
	histOwned bool // hist was defaulted; recreate on Attach
	tagMask   uint64
	tagHash   TagHash
	countCur  bool
	fallback  Fallback

	onDecision func(set, comp int)
	onSample   func(set int, missMask uint64)

	geo     cache.Geometry
	shadows []*cache.Cache
	realRec *realRecency

	// realShadowTags[set*ways+way] memoizes shadowTag(line.Tag) for the
	// real array's resident line, maintained on Insert, so Victim compares
	// pre-hashed tags instead of recomputing the hash per way per miss.
	realShadowTags []uint64

	// Per-access scratch, valid between Observe and Victim of one access.
	lastSet  int
	lastBest int
	lastRes  []cache.AccessResult
	counts   []int
}

// Option configures an Adaptive policy.
type Option func(*Adaptive)

// WithHistory sets the miss-history buffer. The default is the paper's
// windowed bit-vector with m equal to the cache associativity.
func WithHistory(h history.Buffer) Option {
	return func(a *Adaptive) { a.hist, a.histOwned = h, false }
}

// WithShadowTagBits makes the shadow arrays store only the low n bits of
// each tag (after the optional TagHash). n <= 0 selects full tags.
func WithShadowTagBits(n int) Option {
	return func(a *Adaptive) { a.tagMask = cache.PartialMask(n) }
}

// WithTagHash sets the partial-tag fold function.
func WithTagHash(h TagHash) Option {
	return func(a *Adaptive) { a.tagHash = h }
}

// WithCountCurrentMiss controls whether the differential miss of the
// current access is recorded before or after the imitation decision. The
// paper's worked example counts it (the default); a pipelined hardware
// implementation might not.
func WithCountCurrentMiss(on bool) Option {
	return func(a *Adaptive) { a.countCur = on }
}

// WithFallback sets the arbitrary-eviction strategy under partial-tag
// aliasing.
func WithFallback(f Fallback) Option {
	return func(a *Adaptive) { a.fallback = f }
}

// WithDecisionHook registers a callback invoked on every replacement
// decision with the set and the imitated component index. The phase maps of
// paper Figure 7 are built from this stream.
func WithDecisionHook(fn func(set, comp int)) Option {
	return func(a *Adaptive) { a.onDecision = fn }
}

// WithSampleHook registers a callback invoked on every access with the
// component miss mask (bit i set = component i missed). The SBAR global
// selector consumes this stream.
func WithSampleHook(fn func(set int, missMask uint64)) Option {
	return func(a *Adaptive) { a.onSample = fn }
}

// NewAdaptive builds an adaptive policy over the given component policies
// (at least two).
func NewAdaptive(comps []ComponentFactory, opts ...Option) *Adaptive {
	if len(comps) < 2 {
		panic("core: adaptive policy needs at least two component policies")
	}
	a := &Adaptive{
		factories: comps,
		histOwned: true,
		tagMask:   cache.FullTagMask,
		countCur:  true,
		fallback:  FallbackLRU,
	}
	for _, o := range opts {
		o(a)
	}
	names := make([]string, len(a.factories))
	for i, f := range a.factories {
		names[i] = f().Name()
	}
	a.name = "Adaptive(" + strings.Join(names, ",") + ")"
	return a
}

// Name implements cache.Policy, e.g. "Adaptive(LRU,LFU)". The string is
// computed once at construction; Name no longer instantiates throwaway
// component policies per call.
func (a *Adaptive) Name() string { return a.name }

// Components returns the number of component policies.
func (a *Adaptive) Components() int { return len(a.factories) }

// Shadow returns component i's shadow tag array; tests and examples use it
// to compare shadow contents against standalone caches.
func (a *Adaptive) Shadow(i int) *cache.Cache { return a.shadows[i] }

// History returns the attached miss-history buffer.
func (a *Adaptive) History() history.Buffer { return a.hist }

// Attach implements cache.Policy.
func (a *Adaptive) Attach(g cache.Geometry) {
	a.geo = g
	a.shadows = make([]*cache.Cache, len(a.factories))
	for i, f := range a.factories {
		a.shadows[i] = cache.New(g, f(), cache.WithPartialTags(a.tagMask))
	}
	if a.histOwned || a.hist == nil {
		a.hist = history.NewWindow(g.Ways)
		a.histOwned = true
	}
	a.hist.Attach(g.Sets(), len(a.factories))
	a.realRec = newRealRecency(g)
	a.realShadowTags = make([]uint64, g.Sets()*g.Ways)
	a.lastSet = -1
	a.lastRes = make([]cache.AccessResult, len(a.factories))
	a.counts = make([]int, len(a.factories))
}

// shadowTag applies the optional hash before the shadow's own masking.
func (a *Adaptive) shadowTag(tag uint64) uint64 {
	if a.tagHash != nil {
		return a.tagHash(tag)
	}
	return tag
}

// Observe implements cache.Policy: emulate every component on its shadow
// array, update the miss history, and pre-compute the imitation choice for
// a possible Victim call on this same access.
func (a *Adaptive) Observe(set int, tag uint64, hit bool) {
	st := a.shadowTag(tag)
	var missMask uint64
	for i, s := range a.shadows {
		a.lastRes[i] = s.AccessTag(set, st, false)
		if !a.lastRes[i].Hit {
			missMask |= 1 << uint(i)
		}
	}
	if a.onSample != nil {
		a.onSample(set, missMask)
	}
	// lastBest is consumed only by Victim, which runs only on a real-array
	// miss; on a hit the history is still recorded but the imitation choice
	// need not be evaluated.
	if a.countCur {
		a.hist.Record(set, missMask)
		if !hit {
			a.lastBest = history.Best(a.hist.Counts(set, a.counts))
		}
	} else {
		if !hit {
			a.lastBest = history.Best(a.hist.Counts(set, a.counts))
		}
		a.hist.Record(set, missMask)
	}
	a.lastSet = set
}

// Touch implements cache.Policy: track real-array recency for tie-breaking
// and fallback eviction.
func (a *Adaptive) Touch(set, way int) { a.realRec.touch(set, way) }

// Insert implements cache.Policy. The real cache stores full tags, so tag
// here is the full tag of the filled line; its hashed shadow form is
// memoized for later Victim membership checks.
func (a *Adaptive) Insert(set, way int, tag uint64) {
	a.realRec.touch(set, way)
	a.realShadowTags[set*a.geo.Ways+way] = a.shadowTag(tag)
}

// Victim implements cache.Policy — paper Algorithm 1. lines hold the real
// array's full tags; membership checks against the imitated component use
// the shadow's masked comparison.
func (a *Adaptive) Victim(set int, lines []cache.Line, tag uint64) int {
	if set != a.lastSet {
		panic(fmt.Sprintf("core: Victim(set=%d) without matching Observe(set=%d)", set, a.lastSet))
	}
	best := a.lastBest
	if a.onDecision != nil {
		a.onDecision(set, best)
	}
	shadow := a.shadows[best]
	res := a.lastRes[best]
	mask := shadow.TagMask()
	stags := a.realShadowTags[set*a.geo.Ways : set*a.geo.Ways+a.geo.Ways]

	// "if (best missed AND the block it evicts is in the adaptive cache)
	//  then evict the same block." Real tags were pre-hashed at Insert.
	if !res.Hit && res.Evicted {
		for w := range lines {
			if lines[w].Valid && stags[w]&mask == res.EvictedTag {
				return w
			}
		}
	}

	// "else evict any block not in best's cache" — choose the least
	// recently used such block so the real array converges predictably.
	// One pass over the shadow set suffices: a real way survives only if
	// its pre-hashed tag matches a valid shadow line.
	shadowLines := shadow.Set(set)
	bestWay, bestAt := -1, uint64(0)
	for w := range lines {
		st := stags[w] & mask
		resident := false
		for i := range shadowLines {
			if shadowLines[i].Valid && shadowLines[i].Tag == st {
				resident = true
				break
			}
		}
		if resident {
			continue
		}
		if at := a.realRec.at(set, w); bestWay < 0 || at < bestAt {
			bestWay, bestAt = w, at
		}
	}
	if bestWay >= 0 {
		return bestWay
	}

	// Partial-tag aliasing: every resident block appears present in the
	// shadow. "The adaptive cache simply picks an arbitrary block."
	if a.fallback == FallbackFixed {
		return 0
	}
	return a.realRec.oldest(set)
}

// realRecency is minimal per-way recency bookkeeping for the real array.
type realRecency struct {
	ways  int
	clock uint64
	marks []uint64
}

func newRealRecency(g cache.Geometry) *realRecency {
	return &realRecency{ways: g.Ways, marks: make([]uint64, g.Sets()*g.Ways)}
}

func (r *realRecency) touch(set, way int) {
	r.clock++
	r.marks[set*r.ways+way] = r.clock
}

func (r *realRecency) at(set, way int) uint64 { return r.marks[set*r.ways+way] }

func (r *realRecency) oldest(set int) int {
	base := set * r.ways
	best := 0
	for w := 1; w < r.ways; w++ {
		if r.marks[base+w] < r.marks[base+best] {
			best = w
		}
	}
	return best
}
