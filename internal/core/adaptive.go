// Package core implements the paper's primary contribution: adaptive cache
// replacement (Subramanian, Smaragdakis, Loh, MICRO 2006). An Adaptive
// policy combines any N >= 2 component replacement policies, maintains a
// parallel (shadow) tag array per component plus a per-set miss history
// buffer, and on every real-cache miss imitates the component with the
// fewest recorded misses (paper Algorithm 1). Shadow arrays may use partial
// tags to cut hardware cost (paper Section 3.1); the SBAR type provides the
// set-sampling variant of Section 4.7.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/history"
	"repro/internal/policy"
)

// ComponentFactory constructs a fresh instance of a component replacement
// policy. Factories rather than instances are required because the adaptive
// scheme needs an independent policy instance per shadow tag array.
type ComponentFactory func() cache.Policy

// DefaultComponents returns the paper's default LRU/LFU component pair.
func DefaultComponents() []ComponentFactory {
	return []ComponentFactory{
		func() cache.Policy { return policy.NewLRU() },
		func() cache.Policy { return policy.NewLFU(policy.DefaultLFUBits) },
	}
}

// Fallback selects the behavior when no resident block lies outside the
// imitated component's cache — possible only with partial tags, where
// aliasing can make every resident block appear present (paper Section 3.1:
// "the adaptive cache simply picks an arbitrary block to evict").
type Fallback int

const (
	// FallbackLRU evicts the real array's least recently used block.
	FallbackLRU Fallback = iota
	// FallbackFixed evicts way 0 — the cheapest possible hardware choice.
	FallbackFixed
)

// TagHash optionally folds a full tag before the partial-tag mask is
// applied (the paper mentions "XOR of bit groups" as an alternative to
// low-order bits).
type TagHash func(tag uint64) uint64

// XORFold16 folds the tag by XORing 16-bit groups — one of the paper's
// suggested partial-tag constructions.
func XORFold16(tag uint64) uint64 {
	return tag ^ (tag >> 16) ^ (tag >> 32) ^ (tag >> 48)
}

// Adaptive is the adaptive replacement policy. It implements cache.Policy
// and is attached to the "real" cache like any other policy; internally it
// simulates each component policy on its own shadow tag array.
type Adaptive struct {
	factories []ComponentFactory
	hist      history.Buffer
	histOwned bool // hist was defaulted; recreate on Attach
	tagMask   uint64
	tagHash   TagHash
	countCur  bool
	fallback  Fallback

	onDecision func(set, comp int)
	onSample   func(set int, missMask uint64)

	geo     cache.Geometry
	shadows []*cache.Cache
	realRec *realRecency

	// Per-access scratch, valid between Observe and Victim of one access.
	lastSet  int
	lastBest int
	lastRes  []cache.AccessResult
	counts   []int
}

// Option configures an Adaptive policy.
type Option func(*Adaptive)

// WithHistory sets the miss-history buffer. The default is the paper's
// windowed bit-vector with m equal to the cache associativity.
func WithHistory(h history.Buffer) Option {
	return func(a *Adaptive) { a.hist, a.histOwned = h, false }
}

// WithShadowTagBits makes the shadow arrays store only the low n bits of
// each tag (after the optional TagHash). n <= 0 selects full tags.
func WithShadowTagBits(n int) Option {
	return func(a *Adaptive) { a.tagMask = cache.PartialMask(n) }
}

// WithTagHash sets the partial-tag fold function.
func WithTagHash(h TagHash) Option {
	return func(a *Adaptive) { a.tagHash = h }
}

// WithCountCurrentMiss controls whether the differential miss of the
// current access is recorded before or after the imitation decision. The
// paper's worked example counts it (the default); a pipelined hardware
// implementation might not.
func WithCountCurrentMiss(on bool) Option {
	return func(a *Adaptive) { a.countCur = on }
}

// WithFallback sets the arbitrary-eviction strategy under partial-tag
// aliasing.
func WithFallback(f Fallback) Option {
	return func(a *Adaptive) { a.fallback = f }
}

// WithDecisionHook registers a callback invoked on every replacement
// decision with the set and the imitated component index. The phase maps of
// paper Figure 7 are built from this stream.
func WithDecisionHook(fn func(set, comp int)) Option {
	return func(a *Adaptive) { a.onDecision = fn }
}

// WithSampleHook registers a callback invoked on every access with the
// component miss mask (bit i set = component i missed). The SBAR global
// selector consumes this stream.
func WithSampleHook(fn func(set int, missMask uint64)) Option {
	return func(a *Adaptive) { a.onSample = fn }
}

// NewAdaptive builds an adaptive policy over the given component policies
// (at least two).
func NewAdaptive(comps []ComponentFactory, opts ...Option) *Adaptive {
	if len(comps) < 2 {
		panic("core: adaptive policy needs at least two component policies")
	}
	a := &Adaptive{
		factories: comps,
		histOwned: true,
		tagMask:   cache.FullTagMask,
		countCur:  true,
		fallback:  FallbackLRU,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Name implements cache.Policy, e.g. "Adaptive(LRU,LFU)".
func (a *Adaptive) Name() string {
	if a.shadows == nil {
		names := make([]string, len(a.factories))
		for i, f := range a.factories {
			names[i] = f().Name()
		}
		return "Adaptive(" + strings.Join(names, ",") + ")"
	}
	names := make([]string, len(a.shadows))
	for i, s := range a.shadows {
		names[i] = s.Policy().Name()
	}
	return "Adaptive(" + strings.Join(names, ",") + ")"
}

// Components returns the number of component policies.
func (a *Adaptive) Components() int { return len(a.factories) }

// Shadow returns component i's shadow tag array; tests and examples use it
// to compare shadow contents against standalone caches.
func (a *Adaptive) Shadow(i int) *cache.Cache { return a.shadows[i] }

// History returns the attached miss-history buffer.
func (a *Adaptive) History() history.Buffer { return a.hist }

// Attach implements cache.Policy.
func (a *Adaptive) Attach(g cache.Geometry) {
	a.geo = g
	a.shadows = make([]*cache.Cache, len(a.factories))
	for i, f := range a.factories {
		a.shadows[i] = cache.New(g, f(), cache.WithPartialTags(a.tagMask))
	}
	if a.histOwned || a.hist == nil {
		a.hist = history.NewWindow(g.Ways)
		a.histOwned = true
	}
	a.hist.Attach(g.Sets(), len(a.factories))
	a.realRec = newRealRecency(g)
	a.lastSet = -1
	a.lastRes = make([]cache.AccessResult, len(a.factories))
	a.counts = make([]int, len(a.factories))
}

// shadowTag applies the optional hash before the shadow's own masking.
func (a *Adaptive) shadowTag(tag uint64) uint64 {
	if a.tagHash != nil {
		return a.tagHash(tag)
	}
	return tag
}

// Observe implements cache.Policy: emulate every component on its shadow
// array, update the miss history, and pre-compute the imitation choice for
// a possible Victim call on this same access.
func (a *Adaptive) Observe(set int, tag uint64, hit bool) {
	st := a.shadowTag(tag)
	var missMask uint64
	for i, s := range a.shadows {
		a.lastRes[i] = s.AccessTag(set, st, false)
		if !a.lastRes[i].Hit {
			missMask |= 1 << uint(i)
		}
	}
	if a.onSample != nil {
		a.onSample(set, missMask)
	}
	if a.countCur {
		a.hist.Record(set, missMask)
		a.lastBest = history.Best(a.hist.Counts(set, a.counts))
	} else {
		a.lastBest = history.Best(a.hist.Counts(set, a.counts))
		a.hist.Record(set, missMask)
	}
	a.lastSet = set
}

// Touch implements cache.Policy: track real-array recency for tie-breaking
// and fallback eviction.
func (a *Adaptive) Touch(set, way int) { a.realRec.touch(set, way) }

// Insert implements cache.Policy.
func (a *Adaptive) Insert(set, way int, _ uint64) { a.realRec.touch(set, way) }

// Victim implements cache.Policy — paper Algorithm 1. lines hold the real
// array's full tags; membership checks against the imitated component use
// the shadow's masked comparison.
func (a *Adaptive) Victim(set int, lines []cache.Line, tag uint64) int {
	if set != a.lastSet {
		panic(fmt.Sprintf("core: Victim(set=%d) without matching Observe(set=%d)", set, a.lastSet))
	}
	best := a.lastBest
	if a.onDecision != nil {
		a.onDecision(set, best)
	}
	shadow := a.shadows[best]
	res := a.lastRes[best]

	// "if (best missed AND the block it evicts is in the adaptive cache)
	//  then evict the same block."
	if !res.Hit && res.Evicted {
		if w := a.findMasked(set, lines, shadow, res.EvictedTag); w >= 0 {
			return w
		}
	}

	// "else evict any block not in best's cache" — choose the least
	// recently used such block so the real array converges predictably.
	bestWay, bestAt := -1, uint64(0)
	for w := range lines {
		if shadow.ContainsMasked(set, a.shadowTag(lines[w].Tag)) {
			continue
		}
		if at := a.realRec.at(set, w); bestWay < 0 || at < bestAt {
			bestWay, bestAt = w, at
		}
	}
	if bestWay >= 0 {
		return bestWay
	}

	// Partial-tag aliasing: every resident block appears present in the
	// shadow. "The adaptive cache simply picks an arbitrary block."
	if a.fallback == FallbackFixed {
		return 0
	}
	return a.realRec.oldest(set)
}

// findMasked returns the real way whose tag maps to shadowTagVal under the
// shadow's masking, or -1.
func (a *Adaptive) findMasked(set int, lines []cache.Line, shadow *cache.Cache, shadowTagVal uint64) int {
	mask := shadow.TagMask()
	for w := range lines {
		if lines[w].Valid && a.shadowTag(lines[w].Tag)&mask == shadowTagVal {
			return w
		}
	}
	return -1
}

// realRecency is minimal per-way recency bookkeeping for the real array.
type realRecency struct {
	ways  int
	clock uint64
	marks []uint64
}

func newRealRecency(g cache.Geometry) *realRecency {
	return &realRecency{ways: g.Ways, marks: make([]uint64, g.Sets()*g.Ways)}
}

func (r *realRecency) touch(set, way int) {
	r.clock++
	r.marks[set*r.ways+way] = r.clock
}

func (r *realRecency) at(set, way int) uint64 { return r.marks[set*r.ways+way] }

func (r *realRecency) oldest(set int) int {
	base := set * r.ways
	best := 0
	for w := 1; w < r.ways; w++ {
		if r.marks[base+w] < r.marks[base+best] {
			best = w
		}
	}
	return best
}
