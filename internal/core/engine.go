package core

import (
	"repro/internal/cache"
)

// Engine is the reusable per-set replacement decision engine: it couples a
// tag-only directory with any cache.Policy (typically Adaptive or SBAR) and
// exposes the probe → decide → fill cycle to external stores that keep
// their own data arrays. The simulator drives the adaptive scheme through
// trace replay (cache.Cache.Access); the adaptivekv subsystem drives it
// through this API, one Engine per shard.
//
// The Engine distinguishes lookups from stores, matching key-value
// semantics rather than CPU-cache semantics:
//
//   - Lookup probes without filling: the policy observes the access (shadow
//     arrays and miss history update exactly as for a CPU-cache access) and
//     a hit refreshes recency, but a miss leaves the set unchanged.
//   - Store fills on miss, consulting the policy's Victim when the set is
//     full — paper Algorithm 1 runs here — and updates in place on hit. The
//     read-through idiom (Lookup miss, compute, Store) therefore performs
//     the fill on the Store; the intervening shadow fill from the Lookup
//     makes the Store's shadow accesses all-hit events, which the history
//     buffers already discard as carrying no preference signal.
//   - Delete invalidates a tag, leaving the way fill-preferred.
//
// Engine is not safe for concurrent use; callers shard and lock (one
// Engine per adaptivekv shard, under the shard mutex).
type Engine struct {
	dir *cache.Cache
	pol cache.Policy

	// Global-selector introspection when the policy is SBAR: winner
	// transitions are counted so deployments can export "how often does the
	// adaptive scheme actually change its mind" alongside hit ratios.
	sbar       *SBAR
	lastWinner int
	switches   uint64
}

// EngineGeometry returns the directory geometry for a sets x ways decision
// engine. The line size is nominal (one "line" per key-value entry); it
// only matters for storage accounting, where it stands in for the entry
// payload.
func EngineGeometry(sets, ways int) cache.Geometry {
	return cache.Geometry{SizeBytes: sets * ways * 64, LineBytes: 64, Ways: ways}
}

// NewEngine builds a decision engine of the given shape around pol. The
// directory stores full tags; partial tags remain a shadow-array cost
// optimization configured on the policy itself (WithShadowTagBits).
func NewEngine(g cache.Geometry, pol cache.Policy) *Engine {
	e := &Engine{dir: cache.New(g, pol), pol: pol, lastWinner: -1}
	if s, ok := pol.(*SBAR); ok {
		e.sbar = s
		e.lastWinner = s.Winner()
	}
	return e
}

// Lookup probes for tag in set without filling. On a hit it returns the
// way and refreshes the policy's recency/frequency state; on a miss it
// returns (-1, false) and the set is unchanged.
func (e *Engine) Lookup(set int, tag uint64) (way int, ok bool) {
	way, ok = e.dir.ProbeTag(set, tag)
	e.trackWinner()
	return way, ok
}

// StoreResult describes where a Store landed.
type StoreResult struct {
	Way        int
	Hit        bool   // the tag was already resident (update in place)
	Evicted    bool   // a different tag was displaced to make room
	EvictedTag uint64 // its value, if Evicted
}

// Store upserts tag into set: an update in place on hit, otherwise a fill
// into an invalid way, otherwise a fill over the policy's victim.
func (e *Engine) Store(set int, tag uint64) StoreResult {
	res := e.dir.AccessTag(set, tag, false)
	e.trackWinner()
	return StoreResult{Way: res.Way, Hit: res.Hit, Evicted: res.Evicted, EvictedTag: res.EvictedTag}
}

// Delete removes tag from set, returning the way it occupied (-1 if
// absent).
func (e *Engine) Delete(set int, tag uint64) (way int, ok bool) {
	way, _ = e.dir.InvalidateTag(set, tag)
	return way, way >= 0
}

// Find returns the way holding tag in set, or (-1, false), without
// touching statistics or policy state. Callers that must validate an
// external invariant before mutating (e.g. full-key comparison against a
// hashed tag) peek with Find first.
func (e *Engine) Find(set int, tag uint64) (way int, ok bool) {
	way = e.dir.FindTag(set, tag)
	return way, way >= 0
}

// trackWinner counts SBAR global-selector transitions.
func (e *Engine) trackWinner() {
	if e.sbar == nil {
		return
	}
	if w := e.sbar.Winner(); w != e.lastWinner {
		e.lastWinner = w
		e.switches++
	}
}

// PolicySwitches returns how many times the SBAR global selector has
// changed its winning component (0 for non-SBAR policies).
func (e *Engine) PolicySwitches() uint64 { return e.switches }

// Winner returns the SBAR global selector's current component index, or -1
// when the policy has no global selector.
func (e *Engine) Winner() int {
	if e.sbar == nil {
		return -1
	}
	return e.sbar.Winner()
}

// Stats returns the directory's accumulated access statistics. Lookups and
// Stores both count as accesses; Deletes do not.
func (e *Engine) Stats() cache.Stats { return e.dir.Stats() }

// Geometry returns the directory shape.
func (e *Engine) Geometry() cache.Geometry { return e.dir.Geometry() }

// Policy returns the attached replacement policy.
func (e *Engine) Policy() cache.Policy { return e.pol }

// Directory exposes the underlying tag directory for tests and
// introspection.
func (e *Engine) Directory() *cache.Cache { return e.dir }

// Reset clears the directory, statistics, and policy metadata.
func (e *Engine) Reset() {
	e.dir.Reset()
	e.switches = 0
	e.lastWinner = -1
	if e.sbar != nil {
		e.lastWinner = e.sbar.Winner()
	}
}
