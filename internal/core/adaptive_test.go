package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/history"
	"repro/internal/policy"
)

func lruf() cache.Policy  { return policy.NewLRU() }
func lfuf() cache.Policy  { return policy.NewLFU(policy.DefaultLFUBits) }
func fifof() cache.Policy { return policy.NewFIFO() }
func mruf() cache.Policy  { return policy.NewMRU() }
func randf() cache.Policy { return policy.NewRandom(7) }

func oneSet(ways int, p cache.Policy) *cache.Cache {
	g := cache.Geometry{SizeBytes: ways * 64, LineBytes: 64, Ways: ways}
	return cache.New(g, p)
}

func blk(i int) cache.Addr { return cache.Addr(i * 64) }

// scripted is a component policy that evicts a predetermined sequence of
// tags; it lets tests pin down exact paper scenarios such as Figure 2.
type scripted struct {
	cache.NopObserver
	name   string
	script []uint64
	i      int
	t      *testing.T
}

func (s *scripted) Name() string            { return s.name }
func (s *scripted) Attach(cache.Geometry)   {}
func (s *scripted) Touch(int, int)          {}
func (s *scripted) Insert(int, int, uint64) {}
func (s *scripted) Victim(_ int, lines []cache.Line, _ uint64) int {
	if s.i >= len(s.script) {
		s.t.Fatalf("policy %s: script exhausted", s.name)
	}
	want := s.script[s.i]
	s.i++
	for w := range lines {
		if lines[w].Valid && lines[w].Tag == want {
			return w
		}
	}
	s.t.Fatalf("policy %s: scripted victim %d not resident", s.name, want)
	return -1
}

// contents returns the sorted tags resident in set 0.
func contents(c *cache.Cache) map[uint64]bool {
	out := map[uint64]bool{}
	for _, l := range c.Set(0) {
		if l.Valid {
			out[l.Tag] = true
		}
	}
	return out
}

func wantContents(t *testing.T, c *cache.Cache, tags ...uint64) {
	t.Helper()
	got := contents(c)
	if len(got) != len(tags) {
		t.Fatalf("contents %v, want %v", got, tags)
	}
	for _, tag := range tags {
		if !got[tag] {
			t.Fatalf("contents %v missing tag %d (want %v)", got, tag, tags)
		}
	}
}

// TestPaperFigure2Example replays the worked example of paper Figure 2:
// references C A B F D B C G against component policies whose evictions are
// scripted to the figure, with full miss counters. Block letters map to
// tags A=0 B=1 C=2 D=3 F=5 G=6.
func TestPaperFigure2Example(t *testing.T) {
	const (
		A, B, C, D, F, G = 0, 1, 2, 3, 5, 6
	)
	polA := &scripted{name: "polA", script: []uint64{B, C, D, C}, t: t}
	polB := &scripted{name: "polB", script: []uint64{A, F}, t: t}
	ad := NewAdaptive(
		[]ComponentFactory{func() cache.Policy { return polA }, func() cache.Policy { return polB }},
		WithHistory(history.NewCounters()),
	)
	real := oneSet(4, ad)

	refs := []int{C, A, B, F, D, B, C, G}
	type step struct {
		hit        bool
		evicted    int64 // -1 = no eviction
		afterTags  []uint64
		afterPolA  []uint64
		afterPolB  []uint64
		missCounts [2]int
	}
	want := []step{
		{false, -1, []uint64{C}, nil, nil, [2]int{1, 1}},
		{false, -1, []uint64{C, A}, nil, nil, [2]int{2, 2}},
		{false, -1, []uint64{C, A, B}, nil, nil, [2]int{3, 3}},
		{false, -1, []uint64{A, B, C, F}, []uint64{A, B, C, F}, []uint64{A, B, C, F}, [2]int{4, 4}},
		// D: tie -> imitate polA, which evicted B.
		{false, B, []uint64{A, C, D, F}, []uint64{A, C, D, F}, []uint64{B, C, D, F}, [2]int{5, 5}},
		// B: misses only polA -> imitate polB; evict the block outside polB (A).
		{false, A, []uint64{B, C, D, F}, []uint64{A, B, D, F}, []uint64{B, C, D, F}, [2]int{6, 5}},
		// C: hits the adaptive cache; polA misses again.
		{true, -1, []uint64{B, C, D, F}, []uint64{A, B, C, F}, []uint64{B, C, D, F}, [2]int{7, 5}},
		// G: both miss; polB still best; polB evicted F, resident -> evict F.
		{false, F, []uint64{B, C, D, G}, []uint64{A, B, F, G}, []uint64{B, C, D, G}, [2]int{8, 6}},
	}
	for i, r := range refs {
		res := real.Access(blk(r), false)
		w := want[i]
		if res.Hit != w.hit {
			t.Fatalf("ref %d (block %d): hit=%v, want %v", i, r, res.Hit, w.hit)
		}
		gotEv := int64(-1)
		if res.Evicted {
			gotEv = int64(res.EvictedTag)
		}
		if gotEv != w.evicted {
			t.Fatalf("ref %d (block %d): evicted %d, want %d", i, r, gotEv, w.evicted)
		}
		wantContents(t, real, w.afterTags...)
		if w.afterPolA != nil {
			wantContents(t, ad.Shadow(0), w.afterPolA...)
			wantContents(t, ad.Shadow(1), w.afterPolB...)
		}
		counts := ad.History().Counts(0, make([]int, 2))
		if counts[0] != w.missCounts[0] || counts[1] != w.missCounts[1] {
			t.Fatalf("ref %d: miss counts %v, want %v", i, counts, w.missCounts)
		}
	}
}

// TestShadowMatchesStandalone: each shadow tag array must track exactly
// what a standalone cache under the same component policy would contain —
// the defining property of the parallel tag structures (paper Section 2.2).
func TestShadowMatchesStandalone(t *testing.T) {
	pairs := [][2]ComponentFactory{
		{lruf, lfuf}, {fifof, mruf}, {lruf, randf},
	}
	g := cache.Geometry{SizeBytes: 32 * 64 * 4, LineBytes: 64, Ways: 4} // 32 sets
	for _, pair := range pairs {
		ad := NewAdaptive(pair[:])
		real := cache.New(g, ad)
		standalone := [2]*cache.Cache{
			cache.New(g, pair[0]()),
			cache.New(g, pair[1]()),
		}
		rng := uint64(11)
		for i := 0; i < 60000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			a := cache.Addr(rng % (1 << 20))
			real.Access(a, false)
			for k := 0; k < 2; k++ {
				standalone[k].Access(a, false)
			}
		}
		for k := 0; k < 2; k++ {
			sh, st := ad.Shadow(k).Stats(), standalone[k].Stats()
			if sh.Hits != st.Hits || sh.Misses != st.Misses {
				t.Fatalf("%s shadow stats %+v != standalone %+v",
					standalone[k].Policy().Name(), sh, st)
			}
			for s := 0; s < g.Sets(); s++ {
				shSet, stSet := ad.Shadow(k).Set(s), standalone[k].Set(s)
				for w := range shSet {
					if shSet[w].Valid != stSet[w].Valid || shSet[w].Tag != stSet[w].Tag {
						t.Fatalf("%s shadow set %d way %d differs", standalone[k].Policy().Name(), s, w)
					}
				}
			}
		}
	}
}

// TestAdaptiveTracksBetterComponent builds one LRU-friendly and one
// LFU-friendly trace and demands the adaptive cache land within 10%% of the
// better component's misses on each — the paper's headline behavior
// (Figures 3 and 4: lucas tracks LRU, art tracks LFU).
func TestAdaptiveTracksBetterComponent(t *testing.T) {
	const ways = 8
	mk := func() (*cache.Cache, *cache.Cache, *cache.Cache) {
		return oneSet(ways, policy.NewLRU()),
			oneSet(ways, policy.NewLFU(policy.DefaultLFUBits)),
			oneSet(ways, NewAdaptive([]ComponentFactory{lruf, lfuf}))
	}

	// LRU-friendly: working set of `ways` blocks with recency-skewed reuse,
	// drifting slowly so LFU's stale counts mislead it.
	lru1, lfu1, ad1 := mk()
	rng := uint64(3)
	base := 0
	for i := 0; i < 60000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		b := base + int(rng%ways)
		if i%200 == 199 {
			base++ // drift
		}
		for _, c := range []*cache.Cache{lru1, lfu1, ad1} {
			c.Access(blk(b), false)
		}
	}

	// LFU-friendly: four hot blocks (double-touched so their frequency
	// counts build) amid a heavy once-through scan. LRU loses the hot
	// blocks to scan pressure; LFU keeps them.
	lru2, lfu2, ad2 := mk()
	access2 := func(b int) {
		for _, c := range []*cache.Cache{lru2, lfu2, ad2} {
			c.Access(blk(b), false)
		}
	}
	scan := 1000
	for r := 0; r < 6000; r++ {
		for k := 0; k < 7; k++ {
			scan++
			access2(scan) // streaming blocks, never reused
		}
		h := r % 4
		access2(h)
		access2(h)
	}

	check := func(name string, winner, loser, ad *cache.Cache) {
		t.Helper()
		wm, lm, am := winner.Stats().Misses, loser.Stats().Misses, ad.Stats().Misses
		if wm >= lm {
			t.Fatalf("%s: trace premise broken: winner %d >= loser %d misses", name, wm, lm)
		}
		if float64(am) > 1.10*float64(wm) {
			t.Errorf("%s: adaptive misses %d exceed 1.10x winner %d (loser %d)", name, am, wm, lm)
		}
	}
	check("LRU-friendly", lru1, lfu1, ad1)
	check("LFU-friendly", lfu2, lru2, ad2)
}

// TestTheoremTwoXBound empirically checks the paper's worst-case guarantee
// (Appendix): with integer miss counters and full tags, the adaptive policy
// suffers at most twice the misses of the better component policy, modulo
// an additive term for cold starts. Random traces over several policy
// pairs.
func TestTheoremTwoXBound(t *testing.T) {
	const ways = 4
	pairs := [][2]ComponentFactory{
		{lruf, lfuf}, {lruf, mruf}, {fifof, lfuf}, {fifof, randf}, {mruf, lfuf},
	}
	f := func(seedRaw uint32, universeRaw uint8) bool {
		seed := uint64(seedRaw) | 1
		universe := int(universeRaw%12) + ways + 1
		for _, pair := range pairs {
			ad := NewAdaptive(pair[:], WithHistory(history.NewCounters()))
			real := oneSet(ways, ad)
			rng := seed
			for i := 0; i < 4000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				real.Access(blk(int(rng%uint64(universe))), false)
			}
			am := real.Stats().Misses
			m0 := ad.Shadow(0).Stats().Misses
			m1 := ad.Shadow(1).Stats().Misses
			best := m0
			if m1 < best {
				best = m1
			}
			if am > 2*best+2*ways {
				t.Logf("seed %d universe %d pair %s/%s: adaptive %d > 2*%d+%d",
					seed, universe, ad.Shadow(0).Policy().Name(), ad.Shadow(1).Policy().Name(),
					am, best, 2*ways)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIdenticalComponentsDegenerate: adapting between two copies of the
// same policy must reproduce that policy's miss count exactly.
func TestIdenticalComponentsDegenerate(t *testing.T) {
	g := cache.Geometry{SizeBytes: 16 * 64 * 4, LineBytes: 64, Ways: 4}
	ad := NewAdaptive([]ComponentFactory{lruf, lruf})
	real := cache.New(g, ad)
	ref := cache.New(g, policy.NewLRU())
	rng := uint64(5)
	for i := 0; i < 50000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		a := cache.Addr(rng % (1 << 18))
		real.Access(a, false)
		ref.Access(a, false)
	}
	if real.Stats().Misses != ref.Stats().Misses {
		t.Fatalf("adaptive(LRU,LRU) misses %d != LRU %d", real.Stats().Misses, ref.Stats().Misses)
	}
}

func TestAdaptiveName(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	if got := ad.Name(); got != "Adaptive(LRU,LFU)" {
		t.Fatalf("Name = %q", got)
	}
	oneSet(4, ad) // attach
	if got := ad.Name(); got != "Adaptive(LRU,LFU)" {
		t.Fatalf("Name after attach = %q", got)
	}
}

func TestAdaptiveNeedsTwoComponents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAdaptive with one component did not panic")
		}
	}()
	NewAdaptive([]ComponentFactory{lruf})
}

func TestVictimWithoutObservePanics(t *testing.T) {
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf})
	ad.Attach(cache.Geometry{SizeBytes: 4 * 64, LineBytes: 64, Ways: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("Victim without Observe did not panic")
		}
	}()
	ad.Victim(0, make([]cache.Line, 4), 0)
}

func TestDecisionHookSeesEveryReplacement(t *testing.T) {
	var decisions []int
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf},
		WithDecisionHook(func(set, comp int) {
			if set != 0 {
				t.Errorf("decision in set %d, want 0", set)
			}
			decisions = append(decisions, comp)
		}))
	real := oneSet(2, ad)
	for i := 0; i < 100; i++ {
		real.Access(blk(i), false)
	}
	evictions := real.Stats().Evictions
	if uint64(len(decisions)) != evictions {
		t.Fatalf("%d decisions for %d evictions", len(decisions), evictions)
	}
	for _, d := range decisions {
		if d != 0 && d != 1 {
			t.Fatalf("decision %d out of range", d)
		}
	}
}

func TestSampleHookSeesEveryAccess(t *testing.T) {
	n := 0
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf},
		WithSampleHook(func(int, uint64) { n++ }))
	real := oneSet(2, ad)
	for i := 0; i < 500; i++ {
		real.Access(blk(i%7), false)
	}
	if n != 500 {
		t.Fatalf("sample hook fired %d times, want 500", n)
	}
}

// TestPartialTagsWideBehavesLikeFull: shadow partial tags wider than the
// real tags in play must produce exactly the full-tag behavior.
func TestPartialTagsWideBehavesLikeFull(t *testing.T) {
	g := cache.Geometry{SizeBytes: 8 * 64 * 4, LineBytes: 64, Ways: 4}
	full := cache.New(g, NewAdaptive([]ComponentFactory{lruf, lfuf}))
	wide := cache.New(g, NewAdaptive([]ComponentFactory{lruf, lfuf}, WithShadowTagBits(40)))
	rng := uint64(17)
	for i := 0; i < 40000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		a := cache.Addr(rng % (1 << 20)) // tags fit well inside 40 bits
		r1, r2 := full.Access(a, false), wide.Access(a, false)
		if r1 != r2 {
			t.Fatalf("access %d: full %+v, wide-partial %+v", i, r1, r2)
		}
	}
}

// TestNarrowPartialTagsStayClose: with 8-bit partial tags the adaptive miss
// count should stay within a few percent of full tags (paper Figure 5:
// under 1%% at the whole-suite level; allow 5%% on this small synthetic).
func TestNarrowPartialTagsStayClose(t *testing.T) {
	g := cache.Geometry{SizeBytes: 64 * 64 * 8, LineBytes: 64, Ways: 8}
	run := func(bits int) uint64 {
		var opts []Option
		if bits > 0 {
			opts = append(opts, WithShadowTagBits(bits))
		}
		c := cache.New(g, NewAdaptive([]ComponentFactory{lruf, lfuf}, opts...))
		rng := uint64(23)
		scan := 100000
		for i := 0; i < 120000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			var b int
			if i%3 == 0 {
				scan++
				b = scan
			} else {
				b = int(rng % 256)
			}
			c.Access(blk(b), false)
		}
		return c.Stats().Misses
	}
	fullM, partM := run(0), run(8)
	diff := float64(partM) - float64(fullM)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(fullM) > 0.05 {
		t.Fatalf("8-bit partial misses %d vs full %d: drift > 5%%", partM, fullM)
	}
}

func TestXORFold16(t *testing.T) {
	if XORFold16(0) != 0 {
		t.Fatal("fold of zero not zero")
	}
	// Folding must mix high bits into the low 16.
	a, b := uint64(0x0001_0000), uint64(0x0002_0000)
	if XORFold16(a)&0xFFFF == XORFold16(b)&0xFFFF {
		t.Fatal("fold failed to separate high-bit-only tags")
	}
	// With XOR folding, tags differing only in bit 16 no longer alias in
	// the low 16 bits.
	ad := NewAdaptive([]ComponentFactory{lruf, lfuf},
		WithShadowTagBits(16), WithTagHash(XORFold16))
	real := oneSet(4, ad)
	real.Access(blk(0), false)
	real.Access(blk(1<<16), false)
	if ad.Shadow(0).Stats().Misses != 2 {
		t.Fatalf("hashed shadow misses = %d, want 2 (no aliasing)", ad.Shadow(0).Stats().Misses)
	}
}

func TestFallbackModes(t *testing.T) {
	// Force total aliasing with 1-bit shadow tags over blocks with
	// even tags: every resident block appears present in the shadows, so
	// the fallback path must fire and stay in range.
	for _, fb := range []Fallback{FallbackLRU, FallbackFixed} {
		ad := NewAdaptive([]ComponentFactory{lruf, lfuf},
			WithShadowTagBits(1), WithFallback(fb))
		real := oneSet(4, ad)
		for i := 0; i < 2000; i++ {
			real.Access(blk(2*(i%13)), false)
		}
		if real.Stats().Accesses != 2000 {
			t.Fatalf("fallback %v: simulation incomplete", fb)
		}
	}
}

// TestCountCurrentMissChangesTieBehavior: on the Figure 2 prefix the
// decision at block D differs depending on whether the current miss is
// counted; both settings must run to completion and stay deterministic.
func TestCountCurrentMissChangesTieBehavior(t *testing.T) {
	run := func(countCur bool) uint64 {
		ad := NewAdaptive([]ComponentFactory{lruf, mruf}, WithCountCurrentMiss(countCur))
		real := oneSet(4, ad)
		for r := 0; r < 300; r++ {
			for b := 0; b < 5; b++ { // MRU-friendly loop
				real.Access(blk(b), false)
			}
		}
		return real.Stats().Misses
	}
	m1, m2 := run(true), run(false)
	if m1 == 0 || m2 == 0 {
		t.Fatal("degenerate run")
	}
	// Both must track MRU's behavior well enough to beat LRU's 100% miss
	// rate on this loop.
	if m1 >= 1400 || m2 >= 1400 {
		t.Fatalf("adaptive failed to exploit MRU on linear loop: %d / %d misses of 1500", m1, m2)
	}
}

func TestAdaptiveDeterminism(t *testing.T) {
	g := cache.Geometry{SizeBytes: 32 * 64 * 8, LineBytes: 64, Ways: 8}
	run := func() cache.Stats {
		c := cache.New(g, NewAdaptive([]ComponentFactory{lruf, lfuf}, WithShadowTagBits(8)))
		rng := uint64(31)
		for i := 0; i < 50000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			c.Access(cache.Addr(rng%(1<<22)), false)
		}
		return c.Stats()
	}
	if s1, s2 := run(), run(); s1 != s2 {
		t.Fatalf("runs diverged: %+v vs %+v", s1, s2)
	}
}

// TestFivePolicyAdaptive exercises the generalized N-component mode the
// paper evaluates in Section 4.4.
func TestFivePolicyAdaptive(t *testing.T) {
	comps := []ComponentFactory{lruf, lfuf, fifof, mruf, randf}
	ad := NewAdaptive(comps)
	real := oneSet(8, ad)
	if ad.Components() != 5 {
		t.Fatalf("Components = %d", ad.Components())
	}
	// MRU-friendly loop: the five-way adaptive should still beat LRU.
	for r := 0; r < 500; r++ {
		for b := 0; b < 9; b++ {
			real.Access(blk(b), false)
		}
	}
	am := real.Stats().Misses
	mm := ad.Shadow(3).Stats().Misses // MRU shadow
	lm := ad.Shadow(0).Stats().Misses // LRU shadow
	if lm != 4500 {
		t.Fatalf("LRU shadow misses %d, want 4500 (full thrash)", lm)
	}
	if float64(am) > 1.2*float64(mm)+float64(2*8) {
		t.Errorf("five-policy adaptive %d misses vs MRU %d: not tracking", am, mm)
	}
	for i := 0; i < 5; i++ {
		if ad.Shadow(i).Stats().Accesses != real.Stats().Accesses {
			t.Errorf("shadow %d accesses %d != real %d", i, ad.Shadow(i).Stats().Accesses, real.Stats().Accesses)
		}
	}
}

// TestPerSetIndependence: the decision in one set must not be influenced
// by history in another (the paper's per-set bound depends on this).
func TestPerSetIndependence(t *testing.T) {
	g := cache.Geometry{SizeBytes: 2 * 64 * 4, LineBytes: 64, Ways: 4} // 2 sets
	ad := NewAdaptive([]ComponentFactory{lruf, mruf})
	real := cache.New(g, ad)
	// Set 0: MRU-friendly loop. Set 1: LRU-friendly reuse.
	addr := func(set, b int) cache.Addr { return cache.Addr((b*2 + set) * 64) }
	rng := uint64(9)
	for i := 0; i < 30000; i++ {
		real.Access(addr(0, i%5), false)
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		real.Access(addr(1, int(rng%4)), false)
	}
	counts0 := ad.History().Counts(0, make([]int, 2))
	counts1 := ad.History().Counts(1, make([]int, 2))
	if history.Best(counts0) != 1 {
		t.Errorf("set 0 should favor MRU, counts %v", counts0)
	}
	if history.Best(counts1) != 0 {
		t.Errorf("set 1 should favor LRU, counts %v", counts1)
	}
}

func ExampleNewAdaptive() {
	ad := NewAdaptive(
		[]ComponentFactory{
			func() cache.Policy { return policy.NewLRU() },
			func() cache.Policy { return policy.NewLFU(policy.DefaultLFUBits) },
		},
		WithShadowTagBits(8),
	)
	g := cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
	c := cache.New(g, ad)
	for i := 0; i < 4; i++ {
		c.Access(cache.Addr(i*64), false)
	}
	fmt.Println(ad.Name(), c.Stats().Misses)
	// Output: Adaptive(LRU,LFU) 4
}
