package sim

import (
	"testing"

	"repro/internal/workload"
)

// TestSuiteCalibration is the contract of the synthetic primary set: each
// benchmark's qualitative policy preference (who wins, roughly by how
// much) must match the story the paper tells for that program. It guards
// the calibration against regressions when generator internals change.
//
// Run at reduced scale (4M instructions), so thresholds are looser than
// the committed 10M-instruction numbers in EXPERIMENTS.md.
func TestSuiteCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite calibration sweep")
	}
	type expect struct {
		bench string
		// winner: "LRU", "LFU", or "" for near-equal (within slack).
		winner string
		// margin: winner must beat the loser by at least this factor.
		margin float64
	}
	cases := []expect{
		{"art-1", "LFU", 1.15},
		{"art-2", "LFU", 1.15},
		{"x11quake-1", "LFU", 1.15},
		{"x11quake-2", "LFU", 1.1},
		{"xanim", "LFU", 1.15},
		{"twolf", "LFU", 1.0},
		{"mcf", "LFU", 1.2},
		{"lucas", "LRU", 3.0},
		{"gap", "LRU", 2.0},
		{"bzip2", "LRU", 2.0},
		{"vpr-2", "LRU", 2.5},
		{"parser", "LRU", 2.0},
		{"mgrid", "LRU", 2.0}, // vs LFU overall; adaptive beats both
		{"tiff2rgba", "", 0},
		{"swim", "", 0},
		{"fma3d", "", 0},
	}
	const n, warm = 6_000_000, 1_200_000
	run := func(name string, p PolicySpec) float64 {
		spec, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Default(p, n)
		cfg.Warmup = warm
		return RunCacheOnly(cfg, spec).MPKI
	}
	for _, c := range cases {
		c := c
		t.Run(c.bench, func(t *testing.T) {
			lru := run(c.bench, LRUSpec())
			lfu := run(c.bench, SingleSpec("LFU"))
			ad := run(c.bench, AdaptiveSpec(0))
			if lru <= 1 {
				t.Errorf("LRU MPKI %.2f <= 1: %s would not qualify for the primary set", lru, c.bench)
			}
			switch c.winner {
			case "LRU":
				if lfu < c.margin*lru {
					t.Errorf("LRU should win by %.1fx: LRU %.2f LFU %.2f", c.margin, lru, lfu)
				}
			case "LFU":
				if lru < c.margin*lfu {
					t.Errorf("LFU should win by %.1fx: LRU %.2f LFU %.2f", c.margin, lru, lfu)
				}
			default:
				hi, lo := lru, lfu
				if lo > hi {
					hi, lo = lo, hi
				}
				if hi > 1.25*lo {
					t.Errorf("policies should be near-equal: LRU %.2f LFU %.2f", lru, lfu)
				}
			}
			best := lru
			if lfu < best {
				best = lfu
			}
			if ad > 1.2*best {
				t.Errorf("adaptive %.2f vs best component %.2f: tracking broken", ad, best)
			}
		})
	}
}

// TestExtendedSetMostlyQuiet: the 74 extended-only programs exist to show
// adaptivity is harmless when there is little to win; the bulk of them
// must have low L2 MPKI under LRU.
func TestExtendedSetMostlyQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("extended-set sweep")
	}
	primary := map[string]bool{}
	for _, n := range workload.PrimaryNames() {
		primary[n] = true
	}
	quiet := 0
	total := 0
	for _, spec := range workload.Suite() {
		if primary[spec.Name] {
			continue
		}
		total++
		cfg := Default(LRUSpec(), 600_000)
		cfg.Warmup = 150_000
		if RunCacheOnly(cfg, spec).MPKI < 4 {
			quiet++
		}
	}
	if total != 74 {
		t.Fatalf("%d extended-only programs, want 74", total)
	}
	if quiet < 55 {
		t.Errorf("only %d/74 extended programs are low-MPKI; the extended set should mostly dilute", quiet)
	}
}
