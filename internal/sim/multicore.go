package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Multi-core shared-LLC mode implements the paper's stated future work
// (Section 6): "evaluating adaptive caching policies for shared last-level
// caches in a multi-core environment. The combination of memory traffic
// from dissimilar threads or applications will provide even more
// opportunities for the adaptive mechanism."
//
// Each core gets private L1I/L1D caches and its own synthetic program;
// the cores share one L2 (the cache under study), one bus, and one memory.
// Execution is functional with round-robin interleaving — the replacement
// interaction under mixed traffic is what the experiment measures.

// MulticoreResult summarizes one shared-LLC run.
type MulticoreResult struct {
	Policy  string
	PerCore []Result // per-core demand-miss MPKI over that core's instructions
	L2      cache.Stats
	// MPKI is aggregate shared-L2 demand misses per thousand total
	// instructions (all cores).
	MPKI float64
}

// coreOffset separates the cores' address spaces; each program behaves as
// its own process with a disjoint physical footprint.
const coreOffset = uint64(1) << 44

// RunMulticoreShared interleaves the given programs (one per core) over
// private L1s and a shared L2 built from cfg. cfg.Instrs is the
// per-core instruction budget; cfg.Warmup applies to the aggregate MPKI.
func RunMulticoreShared(cfg Config, specs []workload.Spec) MulticoreResult {
	if len(specs) < 2 {
		panic("sim: multicore mode needs at least two programs")
	}

	l2pol, _ := cfg.L2.build(cfg.L2Geom, nil)
	l2 := cache.New(cfg.L2Geom, l2pol)
	bus := mem.NewBus(cfg.Bus, cfg.L2Geom.LineBytes)
	shared := mem.NewMemory(cfg.MemLat, bus)

	type coreState struct {
		hier      *mem.Hierarchy
		src       trace.Source
		rec       trace.Record
		alive     bool
		lastBlock uint64
		instrs    uint64
		offset    uint64
	}
	cores := make([]*coreState, len(specs))
	for i, spec := range specs {
		l1ipol, _ := cfg.L1Policy.build(cfg.L1Geom, nil)
		l1dpol, _ := cfg.L1Policy.build(cfg.L1Geom, nil)
		cores[i] = &coreState{
			hier: mem.NewHierarchy(cfg.Hier,
				cache.New(cfg.L1Geom, l1ipol), cache.New(cfg.L1Geom, l1dpol),
				l2, shared),
			src:       workload.New(spec, cfg.Instrs),
			alive:     true,
			lastBlock: ^uint64(0),
			offset:    uint64(i) * coreOffset,
		}
	}

	var total, snapshot uint64
	warmTotal := cfg.Warmup * uint64(len(specs))
	live := len(specs)
	for live > 0 {
		for _, c := range cores {
			if !c.alive {
				continue
			}
			if !c.src.Next(&c.rec) {
				c.alive = false
				live--
				continue
			}
			c.instrs++
			total++
			if warmTotal > 0 && total == warmTotal {
				for _, cc := range cores {
					snapshot += cc.hier.DemandMisses
				}
			}
			pc := c.rec.PC + c.offset
			if b := pc >> 6; b != c.lastBlock {
				c.lastBlock = b
				c.hier.Ifetch(0, pc)
			}
			switch c.rec.Kind {
			case trace.Load:
				c.hier.Load(0, c.rec.Addr+c.offset)
			case trace.Store:
				c.hier.Store(0, c.rec.Addr+c.offset)
			}
		}
	}

	res := MulticoreResult{Policy: cfg.L2.Label(), L2: l2.Stats()}
	var misses uint64
	for i, c := range cores {
		misses += c.hier.DemandMisses
		res.PerCore = append(res.PerCore, Result{
			Benchmark: specs[i].Name,
			Policy:    res.Policy,
			MPKI:      stats.MPKI(c.hier.DemandMisses, maxU(c.instrs, 1)),
		})
	}
	measured := total
	if warmTotal > 0 && warmTotal < total {
		misses -= snapshot
		measured = total - warmTotal
	}
	res.MPKI = stats.MPKI(misses, maxU(measured, 1))
	return res
}

// MulticoreTable runs pairs of dissimilar programs on a 2-core shared L2
// under LRU, LFU, and the adaptive scheme — the future-work experiment.
// Pair names are "a+b".
func MulticoreTable(o Options, pairs [][2]string) *Table {
	o = o.fill()
	if len(pairs) == 0 {
		pairs = [][2]string{
			{"lucas", "art-1"},  // LRU-friendly + LFU-friendly
			{"gap", "xanim"},    // drift + rare-reuse
			{"vpr-2", "twolf"},  // drift + rare-reuse
			{"mcf", "bzip2"},    // pointer chase + drift
			{"art-2", "parser"}, // LFU-friendly + LRU-friendly
			{"mgrid", "gcc-1"},  // phase-switching + loop
		}
	}
	t := &Table{Title: "Section 6 (future work): 2-core shared L2",
		RowHeader: "program pair"}
	policies := []PolicySpec{AdaptiveSpec(0), SingleSpec("LFU"), LRUSpec()}
	cols := make([][]float64, len(policies))
	for _, pair := range pairs {
		t.Rows = append(t.Rows, pair[0]+"+"+pair[1])
		sa, err := workload.ByName(pair[0])
		if err != nil {
			panic(err)
		}
		sb, err := workload.ByName(pair[1])
		if err != nil {
			panic(err)
		}
		for pi, p := range policies {
			cfg := o.apply(Default(p, o.Instrs))
			r := RunMulticoreShared(cfg, []workload.Spec{sa, sb})
			cols[pi] = append(cols[pi], r.MPKI)
		}
	}
	t.Rows = append(t.Rows, "average")
	for pi, p := range policies {
		vals := append(cols[pi], stats.Mean(cols[pi]))
		t.Columns = append(t.Columns, Series{Label: p.Label() + " MPKI", Values: vals})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d instructions per core, shared %s L2",
		o.Instrs, fmtKB(o.apply(Default(LRUSpec(), o.Instrs)).L2Geom.SizeBytes)))
	return t
}

func fmtKB(b int) string { return fmt.Sprintf("%dKB", b/1024) }
