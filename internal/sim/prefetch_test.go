package sim

import (
	"testing"

	"repro/internal/prefetch"
)

func TestPrefetchNilIsBaseline(t *testing.T) {
	spec := bench(t, "tiff2rgba")
	cfg := Default(LRUSpec(), 400_000)
	cfg.Warmup = 100_000
	base := RunCacheOnly(cfg, spec)
	r, ps := RunWithPrefetch(cfg, spec, nil)
	if r.MPKI != base.MPKI {
		t.Fatalf("nil-prefetcher MPKI %.3f != baseline %.3f", r.MPKI, base.MPKI)
	}
	if ps.Issued != 0 {
		t.Fatalf("nil prefetcher issued %d", ps.Issued)
	}
}

// TestNextLineHelpsStreaming: tiff2rgba is scan-dominated; a next-line
// prefetcher must cut its demand MPKI substantially.
func TestNextLineHelpsStreaming(t *testing.T) {
	spec := bench(t, "tiff2rgba")
	cfg := Default(LRUSpec(), 600_000)
	cfg.Warmup = 150_000
	base := RunCacheOnly(cfg, spec)
	r, ps := RunWithPrefetch(cfg, spec, prefetch.NewNextLine(1))
	if r.MPKI >= 0.8*base.MPKI {
		t.Fatalf("next-line MPKI %.3f vs baseline %.3f: no streaming benefit", r.MPKI, base.MPKI)
	}
	if ps.Accuracy() < 0.3 {
		t.Fatalf("next-line accuracy %.2f on a streaming benchmark", ps.Accuracy())
	}
}

// TestPrefetchUselessOnPointerChase: mcf's chase is unpredictable; neither
// prefetcher should change its MPKI much, and stride accuracy stays low.
func TestPrefetchUselessOnPointerChase(t *testing.T) {
	spec := bench(t, "mcf")
	cfg := Default(LRUSpec(), 400_000)
	cfg.Warmup = 100_000
	base := RunCacheOnly(cfg, spec)
	r, _ := RunWithPrefetch(cfg, spec, prefetch.NewStride(1024))
	drift := (r.MPKI - base.MPKI) / base.MPKI
	if drift < -0.35 || drift > 0.35 {
		t.Fatalf("stride prefetcher moved mcf MPKI by %.0f%% (%.2f -> %.2f)",
			100*drift, base.MPKI, r.MPKI)
	}
}

// TestHybridTracksBetterPrefetcher: on the streaming benchmark the hybrid
// must approach next-line's benefit (its useful component).
func TestHybridTracksBetterPrefetcher(t *testing.T) {
	spec := bench(t, "tiff2rgba")
	cfg := Default(LRUSpec(), 600_000)
	cfg.Warmup = 150_000
	nl, _ := RunWithPrefetch(cfg, spec, prefetch.NewNextLine(1))
	hy, _ := RunWithPrefetch(cfg, spec, prefetch.NewHybrid(
		[]prefetch.Prefetcher{prefetch.NewNextLine(1), prefetch.NewStride(1024)}, 64, 64))
	if hy.MPKI > 1.3*nl.MPKI {
		t.Fatalf("hybrid MPKI %.3f far above next-line %.3f", hy.MPKI, nl.MPKI)
	}
}

func TestPrefetchTableShape(t *testing.T) {
	o := testOpts("tiff2rgba", "mcf")
	o.Instrs, o.Warmup = 300_000, 60_000
	tab := PrefetchTable(o)
	if len(tab.Columns) != 4 {
		t.Fatalf("%d columns", len(tab.Columns))
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %v", tab.Rows)
	}
	none := tab.Column("none MPKI")
	if none == nil || none.Values[0] <= 0 {
		t.Fatal("baseline column missing or zero")
	}
}
