package sim

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options parameterizes figure regeneration. Zero values take defaults:
// the primary benchmark set, 10M instructions with 2M warmup, and one
// worker per CPU.
type Options struct {
	Instrs  uint64
	Warmup  uint64
	Benches []workload.Spec
	Workers int
}

// PrimaryBenches returns the paper's 26-program primary evaluation set as
// workload specs, in Figure 3 order.
func PrimaryBenches() []workload.Spec {
	var out []workload.Spec
	for _, name := range workload.PrimaryNames() {
		s, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

func (o Options) fill() Options {
	if o.Instrs == 0 {
		o.Instrs = 10_000_000
	}
	if o.Warmup == 0 && o.Instrs >= 5 {
		o.Warmup = o.Instrs / 5
	}
	if len(o.Benches) == 0 {
		o.Benches = PrimaryBenches()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// apply stamps the option budgets onto a config.
func (o Options) apply(cfg Config) Config {
	cfg.Instrs = o.Instrs
	cfg.Warmup = o.Warmup
	return cfg
}

// Series is one column of a Table: a label plus one value per row.
type Series struct {
	Label  string
	Values []float64
}

// Table is a reproduced figure or table: benchmarks (or sweep points) down
// the rows, configurations across the columns.
type Table struct {
	Title     string
	RowHeader string
	Rows      []string
	Columns   []Series
	Notes     []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintf(w, "%-30s", t.RowHeader)
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %22s", c.Label)
	}
	fmt.Fprintln(w)
	for i, row := range t.Rows {
		fmt.Fprintf(w, "%-30s", row)
		for _, c := range t.Columns {
			fmt.Fprintf(w, " %22.3f", c.Values[i])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Column returns the series with the given label, or nil.
func (t *Table) Column(label string) *Series {
	for i := range t.Columns {
		if t.Columns[i].Label == label {
			return &t.Columns[i]
		}
	}
	return nil
}

// sweep runs every benchmark under cfg in parallel and returns results in
// benchmark order.
func sweep(o Options, cfg Config, timing bool) []Result {
	results := make([]Result, len(o.Benches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for i, spec := range o.Benches {
		wg.Add(1)
		go func(i int, spec workload.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if timing {
				results[i] = Run(cfg, spec)
			} else {
				results[i] = RunCacheOnly(cfg, spec)
			}
		}(i, spec)
	}
	wg.Wait()
	return results
}

// column extracts one metric as a Series, appending the arithmetic mean as
// a final "average" row value.
func column(label string, rs []Result, metric func(Result) float64) Series {
	vals := make([]float64, 0, len(rs)+1)
	for _, r := range rs {
		vals = append(vals, metric(r))
	}
	vals = append(vals, stats.Mean(vals))
	return Series{Label: label, Values: vals}
}

func benchRows(o Options) []string {
	rows := make([]string, 0, len(o.Benches)+1)
	for _, b := range o.Benches {
		rows = append(rows, b.Name)
	}
	return append(rows, "average")
}

func mpkiOf(r Result) float64 { return r.MPKI }
func cpiOf(r Result) float64  { return r.CPI }

// perBench builds the Figure 3/4/6/8-style tables: one column per policy
// configuration, one row per benchmark plus the average.
func perBench(title string, o Options, timing bool, metric func(Result) float64,
	metricName string, policies []PolicySpec) *Table {
	o = o.fill()
	t := &Table{Title: title, RowHeader: "benchmark", Rows: benchRows(o)}
	for _, p := range policies {
		cfg := o.apply(Default(p, o.Instrs))
		rs := sweep(o, cfg, timing)
		t.Columns = append(t.Columns, column(p.Label()+" "+metricName, rs, metric))
	}
	return t
}

// Fig3 reproduces paper Figure 3: L2 MPKI per primary benchmark for the
// LRU/LFU adaptive cache (full tags) and its component policies.
func Fig3(o Options) *Table {
	return perBench("Figure 3: L2 MPKI, adaptive vs components (512KB 8-way)",
		o, false, mpkiOf, "MPKI",
		[]PolicySpec{AdaptiveSpec(0), SingleSpec("LFU"), SingleSpec("LRU")})
}

// Fig4 reproduces paper Figure 4: CPI per primary benchmark for the same
// three configurations.
func Fig4(o Options) *Table {
	return perBench("Figure 4: CPI, adaptive vs components (512KB 8-way)",
		o, true, cpiOf, "CPI",
		[]PolicySpec{AdaptiveSpec(0), SingleSpec("LFU"), SingleSpec("LRU")})
}

// Fig5 reproduces paper Figure 5: percent increase in average MPKI and CPI
// versus full tags as the shadow partial-tag width shrinks.
func Fig5(o Options) *Table {
	o = o.fill()
	widths := []int{0, 12, 10, 8, 6, 4}
	labels := []string{"full", "12-bit", "10-bit", "8-bit", "6-bit", "4-bit"}

	var avgM, avgC []float64
	for _, w := range widths {
		cfg := o.apply(Default(AdaptiveSpec(w), o.Instrs))
		rs := sweep(o, cfg, true)
		m := make([]float64, len(rs))
		c := make([]float64, len(rs))
		for i, r := range rs {
			m[i], c[i] = r.MPKI, r.CPI
		}
		avgM = append(avgM, stats.Mean(m))
		avgC = append(avgC, stats.Mean(c))
	}
	t := &Table{
		Title:     "Figure 5: impact of partial tags (increase vs full tags, %)",
		RowHeader: "tag width",
		Rows:      labels,
	}
	dm := make([]float64, len(widths))
	dc := make([]float64, len(widths))
	for i := range widths {
		dm[i] = stats.PercentChange(avgM[0], avgM[i])
		dc[i] = stats.PercentChange(avgC[0], avgC[i])
	}
	t.Columns = []Series{
		{Label: "MPKI increase %", Values: dm},
		{Label: "CPI increase %", Values: dc},
		{Label: "avg MPKI", Values: avgM},
		{Label: "avg CPI", Values: avgC},
	}
	return t
}

// Fig6 reproduces paper Figure 6: CPI of the adaptive cache (full and
// 8-bit partial tags) against conventional LRU caches of increasing size
// and associativity (512KB 8-way, 576KB 9-way, 640KB 10-way).
func Fig6(o Options) *Table {
	o = o.fill()
	type variant struct {
		p      PolicySpec
		sizeKB int
		ways   int
		label  string
	}
	variants := []variant{
		{AdaptiveSpec(0), 512, 8, "Adaptive full"},
		{AdaptiveSpec(8), 512, 8, "Adaptive 8-bit"},
		{LRUSpec(), 512, 8, "LRU 512KB 8w"},
		{LRUSpec(), 576, 9, "LRU 576KB 9w"},
		{LRUSpec(), 640, 10, "LRU 640KB 10w"},
	}
	t := &Table{Title: "Figure 6: CPI vs conventional upsized caches",
		RowHeader: "benchmark", Rows: benchRows(o)}
	for _, v := range variants {
		cfg := o.apply(Default(v.p, o.Instrs))
		cfg.L2Geom.SizeBytes = v.sizeKB << 10
		cfg.L2Geom.Ways = v.ways
		rs := sweep(o, cfg, true)
		t.Columns = append(t.Columns, column(v.label+" CPI", rs, cpiOf))
	}
	return t
}

// PhaseMap is the Figure 7 data: for each time quantum and cache set, the
// fraction of adaptive replacement decisions that imitated component 1
// (LFU in the default configuration); NaN-free, -1 marks quanta with no
// decisions in that set.
type PhaseMap struct {
	Bench  string
	Quanta int
	Sets   int
	// Frac[q][s] in [0,1], or -1 when set s made no decision in quantum q.
	Frac [][]float64
}

// Fig7 reproduces paper Figure 7: the per-set, per-time-quantum policy
// choice map of the adaptive cache for one benchmark (the paper shows ammp
// and mgrid). Quanta are instruction-count based.
func Fig7(o Options, bench string, quanta int) (*PhaseMap, error) {
	o = o.fill()
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	cfg := o.apply(Default(AdaptiveSpec(0), o.Instrs))
	cfg.Warmup = 0

	sets := cfg.L2Geom.Sets()
	counts := make([][2]uint32, quanta*sets)
	var instr uint64
	quantum := func() int {
		q := int(instr * uint64(quanta) / cfg.Instrs)
		if q >= quanta {
			q = quanta - 1
		}
		return q
	}
	m := buildMachine(cfg, func(set, comp int) {
		c := &counts[quantum()*sets+set]
		if comp == 0 {
			c[0]++
		} else {
			c[1]++
		}
	})
	src := workload.New(spec, cfg.Instrs)
	var rec trace.Record
	lastBlock := ^uint64(0)
	for src.Next(&rec) {
		if b := rec.PC >> 6; b != lastBlock {
			lastBlock = b
			m.hier.Ifetch(0, rec.PC)
		}
		switch rec.Kind {
		case trace.Load:
			m.hier.Load(0, rec.Addr)
		case trace.Store:
			m.hier.Store(0, rec.Addr)
		}
		instr++
	}

	pm := &PhaseMap{Bench: bench, Quanta: quanta, Sets: sets}
	pm.Frac = make([][]float64, quanta)
	for q := 0; q < quanta; q++ {
		pm.Frac[q] = make([]float64, sets)
		for s := 0; s < sets; s++ {
			c := counts[q*sets+s]
			tot := c[0] + c[1]
			if tot == 0 {
				pm.Frac[q][s] = -1
				continue
			}
			pm.Frac[q][s] = float64(c[1]) / float64(tot)
		}
	}
	return pm, nil
}

// Render draws the phase map as ASCII art (downsampled to the given
// dimensions): '#' = mostly component 1 (LFU), '.' = mostly component 0
// (LRU), ' ' = no decisions.
func (pm *PhaseMap) Render(w io.Writer, rows, cols int) {
	fmt.Fprintf(w, "# Figure 7: %s replacement choice per set over time ('#'=LFU, '.'=LRU)\n", pm.Bench)
	for r := 0; r < rows; r++ {
		s0, s1 := r*pm.Sets/rows, (r+1)*pm.Sets/rows
		for c := 0; c < cols; c++ {
			q0, q1 := c*pm.Quanta/cols, (c+1)*pm.Quanta/cols
			sum, n := 0.0, 0
			for q := q0; q < q1; q++ {
				for s := s0; s < s1; s++ {
					if f := pm.Frac[q][s]; f >= 0 {
						sum += f
						n++
					}
				}
			}
			switch {
			case n == 0:
				fmt.Fprint(w, " ")
			case sum/float64(n) >= 0.5:
				fmt.Fprint(w, "#")
			default:
				fmt.Fprint(w, ".")
			}
		}
		fmt.Fprintln(w)
	}
}

// LFUShare returns the mean component-1 share over a quantum range,
// ignoring empty cells; tests use it to verify phase structure.
func (pm *PhaseMap) LFUShare(q0, q1 int) float64 {
	sum, n := 0.0, 0
	for q := q0; q < q1 && q < pm.Quanta; q++ {
		for s := 0; s < pm.Sets; s++ {
			if f := pm.Frac[q][s]; f >= 0 {
				sum += f
				n++
			}
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// Fig8 reproduces paper Figure 8: MPKI for a FIFO/MRU adaptive cache
// against its components.
func Fig8(o Options) *Table {
	return perBench("Figure 8: L2 MPKI, FIFO/MRU adaptivity", o, false, mpkiOf, "MPKI",
		[]PolicySpec{AdaptiveSpec(0, "FIFO", "MRU"), SingleSpec("FIFO"), SingleSpec("MRU")})
}

// Fig9 reproduces paper Figure 9: the adaptive cache's average CPI
// improvement and miss reduction versus a same-associativity LRU baseline,
// across associativities (512KB total in all cases).
func Fig9(o Options) *Table {
	o = o.fill()
	assocs := []int{4, 8, 16, 32}
	t := &Table{Title: "Figure 9: benefit vs associativity (512KB)",
		RowHeader: "assoc", Rows: []string{"4", "8", "16", "32"}}
	var cpiImp, missRed []float64
	for _, ways := range assocs {
		mk := func(p PolicySpec) Config {
			cfg := o.apply(Default(p, o.Instrs))
			cfg.L2Geom.Ways = ways
			return cfg
		}
		lru := sweep(o, mk(LRUSpec()), true)
		ad := sweep(o, mk(AdaptiveSpec(0)), true)
		var lc, ac, lm, am []float64
		for i := range lru {
			lc = append(lc, lru[i].CPI)
			ac = append(ac, ad[i].CPI)
			lm = append(lm, lru[i].MPKI)
			am = append(am, ad[i].MPKI)
		}
		cpiImp = append(cpiImp, stats.PercentReduction(stats.Mean(lc), stats.Mean(ac)))
		missRed = append(missRed, stats.PercentReduction(stats.Mean(lm), stats.Mean(am)))
	}
	t.Columns = []Series{
		{Label: "CPI improvement %", Values: cpiImp},
		{Label: "miss reduction %", Values: missRed},
	}
	return t
}

// Fig10 reproduces paper Figure 10: average CPI for LRU and adaptive, and
// the adaptive improvement, as the store buffer grows from 1 to 256
// entries.
func Fig10(o Options) *Table {
	o = o.fill()
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	t := &Table{Title: "Figure 10: effect of store buffer size",
		RowHeader: "SB entries"}
	var rows []string
	var lruCPI, adCPI, imp []float64
	for _, sb := range sizes {
		mk := func(p PolicySpec) Config {
			cfg := o.apply(Default(p, o.Instrs))
			cfg.CPU.StoreBuffer = sb
			return cfg
		}
		lru := sweep(o, mk(LRUSpec()), true)
		ad := sweep(o, mk(AdaptiveSpec(0)), true)
		var lc, ac []float64
		for i := range lru {
			lc = append(lc, lru[i].CPI)
			ac = append(ac, ad[i].CPI)
		}
		l, a := stats.Mean(lc), stats.Mean(ac)
		rows = append(rows, fmt.Sprint(sb))
		lruCPI = append(lruCPI, l)
		adCPI = append(adCPI, a)
		imp = append(imp, stats.PercentReduction(l, a))
	}
	t.Rows = rows
	t.Columns = []Series{
		{Label: "LRU avg CPI", Values: lruCPI},
		{Label: "Adaptive avg CPI", Values: adCPI},
		{Label: "CPI improvement %", Values: imp},
	}
	return t
}

// ExtendedSet reproduces the Section 4.2 whole-suite summary over all 100
// programs: average miss reduction, average CPI improvement, and the worst
// per-program regressions.
func ExtendedSet(o Options) *Table {
	o = o.fill()
	o.Benches = workload.Suite()

	lruM := sweep(o, o.apply(Default(LRUSpec(), o.Instrs)), false)
	adM := sweep(o, o.apply(Default(AdaptiveSpec(0), o.Instrs)), false)
	lruC := sweep(o, o.apply(Default(LRUSpec(), o.Instrs)), true)
	adC := sweep(o, o.apply(Default(AdaptiveSpec(0), o.Instrs)), true)

	var lm, am, lc, ac []float64
	worstMiss, worstCPI := 0.0, 0.0
	worstMissName, worstCPIName := "-", "-"
	for i := range lruM {
		lm = append(lm, lruM[i].MPKI)
		am = append(am, adM[i].MPKI)
		lc = append(lc, lruC[i].CPI)
		ac = append(ac, adC[i].CPI)
		if lruM[i].MPKI > 0 {
			if d := stats.PercentChange(lruM[i].MPKI, adM[i].MPKI); d > worstMiss {
				worstMiss, worstMissName = d, lruM[i].Benchmark
			}
		}
		if d := stats.PercentChange(lruC[i].CPI, adC[i].CPI); d > worstCPI {
			worstCPI, worstCPIName = d, lruC[i].Benchmark
		}
	}
	t := &Table{
		Title:     "Section 4.2: extended set (100 programs)",
		RowHeader: "metric",
		Rows: []string{"avg miss reduction %", "avg CPI improvement %",
			"worst miss increase %", "worst CPI increase %"},
		Columns: []Series{{Label: "value", Values: []float64{
			stats.PercentReduction(stats.Mean(lm), stats.Mean(am)),
			stats.PercentReduction(stats.Mean(lc), stats.Mean(ac)),
			worstMiss,
			worstCPI,
		}}},
		Notes: []string{
			fmt.Sprintf("worst miss increase: %s; worst CPI increase: %s", worstMissName, worstCPIName),
		},
	}
	return t
}

// FivePolicy reproduces the Section 4.4 experiment: adapting over all five
// standard policies versus the LRU/LFU pair.
func FivePolicy(o Options) *Table {
	return perBench("Section 4.4: five-policy adaptivity (MPKI)", o, false, mpkiOf, "MPKI",
		[]PolicySpec{
			AdaptiveSpec(0),
			AdaptiveSpec(0, "LRU", "LFU", "FIFO", "MRU", "Random"),
			LRUSpec(),
		})
}

// L1Adaptivity reproduces the Section 4.6 experiment: LRU/LFU adaptive L1
// instruction and data caches. Values are L1 misses per thousand
// instructions and overall CPI.
func L1Adaptivity(o Options) *Table {
	o = o.fill()
	t := &Table{Title: "Section 4.6: adaptivity at the L1s",
		RowHeader: "benchmark", Rows: benchRows(o)}
	for _, variant := range []struct {
		label string
		pol   PolicySpec
	}{
		{"L1-LRU", LRUSpec()},
		{"L1-Adaptive", AdaptiveSpec(0)},
	} {
		cfg := o.apply(Default(LRUSpec(), o.Instrs))
		cfg.L1Policy = variant.pol
		rs := sweep(o, cfg, true)
		t.Columns = append(t.Columns,
			column(variant.label+" L1I-MPKI", rs, func(r Result) float64 {
				return stats.MPKI(r.L1I.Misses, r.CPU.Instructions)
			}),
			column(variant.label+" L1D-MPKI", rs, func(r Result) float64 {
				return stats.MPKI(r.L1D.Misses, r.CPU.Instructions)
			}),
			column(variant.label+" CPI", rs, cpiOf),
		)
	}
	return t
}

// SBARTable reproduces the Section 4.7 comparison: the SBAR-like
// set-sampling cache versus the full adaptive scheme and the LRU baseline.
func SBARTable(o Options) *Table {
	return perBench("Section 4.7: SBAR-like set sampling (CPI)", o, true, cpiOf, "CPI",
		[]PolicySpec{
			LRUSpec(),
			AdaptiveSpec(0),
			SBARSpec(0, 16),
			SBARSpec(8, 16),
		})
}

// OverheadTable reproduces the storage accounting of Sections 3.1-3.2 and
// 4.7 (no simulation required).
func OverheadTable() *Table {
	rows := storage.CompareTable()
	t := &Table{Title: "Sections 3.1-3.2: SRAM storage accounting",
		RowHeader: "configuration"}
	var tot, pct []float64
	for _, r := range rows {
		t.Rows = append(t.Rows, r.Label)
		tot = append(tot, r.TotalKB)
		pct = append(pct, r.Percent)
	}
	t.Columns = []Series{
		{Label: "total KB", Values: tot},
		{Label: "overhead %", Values: pct},
	}
	return t
}
