package sim

import (
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options parameterizes figure regeneration. Zero values take defaults:
// the primary benchmark set, 10M instructions with 2M warmup, and the
// process-wide shared worker pool.
type Options struct {
	Instrs  uint64
	Warmup  uint64
	Benches []workload.Spec

	// Workers selects the scheduling pool: 0 (the default) shares
	// engine.Default with every other figure in the process, so total
	// concurrency stays bounded no matter how many figures run at once; a
	// positive value gives this figure a private pool of that size.
	Workers int

	// ReplayCap bounds the per-benchmark recorded-trace length (in
	// instructions) used to share one instruction stream across the
	// configuration columns of a sweep. Budgets above the cap fall back to
	// regenerating the stream per column, trading time for memory. 0
	// selects DefaultReplayCap.
	ReplayCap uint64
}

// DefaultReplayCap is the default Options.ReplayCap: 2M records, about
// 96MB of trace per benchmark in flight.
const DefaultReplayCap = 2_000_000

// pool returns the scheduling pool selected by Workers.
func (o Options) pool() *engine.Pool {
	if o.Workers > 0 {
		return engine.New(o.Workers)
	}
	return engine.Default
}

// PrimaryBenches returns the paper's 26-program primary evaluation set as
// workload specs, in Figure 3 order.
func PrimaryBenches() []workload.Spec {
	var out []workload.Spec
	for _, name := range workload.PrimaryNames() {
		s, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

func (o Options) fill() Options {
	if o.Instrs == 0 {
		o.Instrs = 10_000_000
	}
	if o.Warmup == 0 && o.Instrs >= 5 {
		o.Warmup = o.Instrs / 5
	}
	if len(o.Benches) == 0 {
		o.Benches = PrimaryBenches()
	}
	if o.ReplayCap == 0 {
		o.ReplayCap = DefaultReplayCap
	}
	return o
}

// apply stamps the option budgets onto a config.
func (o Options) apply(cfg Config) Config {
	cfg.Instrs = o.Instrs
	cfg.Warmup = o.Warmup
	return cfg
}

// Series is one column of a Table: a label plus one value per row.
type Series struct {
	Label  string
	Values []float64
}

// Table is a reproduced figure or table: benchmarks (or sweep points) down
// the rows, configurations across the columns.
type Table struct {
	Title     string
	RowHeader string
	Rows      []string
	Columns   []Series
	Notes     []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintf(w, "%-30s", t.RowHeader)
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %22s", c.Label)
	}
	fmt.Fprintln(w)
	for i, row := range t.Rows {
		fmt.Fprintf(w, "%-30s", row)
		for _, c := range t.Columns {
			fmt.Fprintf(w, " %22.3f", c.Values[i])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Column returns the series with the given label, or nil.
func (t *Table) Column(label string) *Series {
	for i := range t.Columns {
		if t.Columns[i].Label == label {
			return &t.Columns[i]
		}
	}
	return nil
}

// colSpec is one configuration column of a sweep.
type colSpec struct {
	cfg    Config
	timing bool
}

// recordingSource tees a source: records pass through unchanged while
// being appended to recs, so the first simulation over a stream doubles
// as its trace acquisition at the cost of one append per instruction —
// no separate recording pass.
type recordingSource struct {
	trace.Source
	recs []trace.Record
}

func (r *recordingSource) Next(rec *trace.Record) bool {
	if !r.Source.Next(rec) {
		return false
	}
	r.recs = append(r.recs, *rec)
	return true
}

// sweepConfigs runs every benchmark under every column configuration and
// returns results indexed [column][benchmark]. The sweep is bench-major:
// a benchmark's instruction stream depends only on its spec and budget,
// never on the cache configuration, so the first column records the
// stream as it simulates and the remaining columns replay the recording
// instead of re-running the generator (streams longer than ReplayCap fall
// back to per-column generation). Record buffers are recycled across
// benchmarks, so a sweep allocates only as many trace buffers as it has
// benchmarks in flight. Benchmarks and columns are scheduled on the
// Options pool; each task owns its machine and source and writes only its
// own result slot, so scheduling order cannot affect output — serial and
// parallel sweeps are byte-identical.
func sweepConfigs(o Options, cols []colSpec) [][]Result {
	out := make([][]Result, len(cols))
	for c := range out {
		out[c] = make([]Result, len(o.Benches))
	}
	// Record-and-replay applies only when every column consumes the same
	// stream, and pays off only when there is more than one column.
	replay := len(cols) > 1 && cols[0].cfg.Instrs <= o.ReplayCap
	for _, cs := range cols {
		if cs.cfg.Instrs != cols[0].cfg.Instrs {
			replay = false
		}
	}
	run := func(c int, spec workload.Spec, src trace.Source) Result {
		if cols[c].timing {
			return runTiming(cols[c].cfg, spec.Name, src)
		}
		return runFunctional(cols[c].cfg, spec.Name, src)
	}
	pool := o.pool()
	spare := make(chan []trace.Record, len(o.Benches))
	pool.Map(len(o.Benches), func(b int) {
		spec := o.Benches[b]
		if !replay {
			pool.Map(len(cols), func(c int) {
				out[c][b] = run(c, spec, workload.New(spec, cols[c].cfg.Instrs))
			})
			return
		}
		instrs := cols[0].cfg.Instrs
		var buf []trace.Record
		select {
		case buf = <-spare:
			buf = buf[:0]
		default:
			buf = make([]trace.Record, 0, instrs)
		}
		tee := &recordingSource{Source: workload.New(spec, instrs), recs: buf}
		out[0][b] = run(0, spec, tee)
		pool.Map(len(cols)-1, func(c int) {
			out[c+1][b] = run(c+1, spec, &trace.SliceSource{Label: spec.Name, Recs: tee.recs})
		})
		select {
		case spare <- tee.recs:
		default:
		}
	})
	return out
}

// sweep runs every benchmark under one configuration, in benchmark order.
func sweep(o Options, cfg Config, timing bool) []Result {
	return sweepConfigs(o, []colSpec{{cfg: cfg, timing: timing}})[0]
}

// column extracts one metric as a Series, appending the arithmetic mean as
// a final "average" row value.
func column(label string, rs []Result, metric func(Result) float64) Series {
	vals := make([]float64, 0, len(rs)+1)
	for _, r := range rs {
		vals = append(vals, metric(r))
	}
	vals = append(vals, stats.Mean(vals))
	return Series{Label: label, Values: vals}
}

func benchRows(o Options) []string {
	rows := make([]string, 0, len(o.Benches)+1)
	for _, b := range o.Benches {
		rows = append(rows, b.Name)
	}
	return append(rows, "average")
}

func mpkiOf(r Result) float64 { return r.MPKI }
func cpiOf(r Result) float64  { return r.CPI }

// perBench builds the Figure 3/4/6/8-style tables: one column per policy
// configuration, one row per benchmark plus the average.
func perBench(title string, o Options, timing bool, metric func(Result) float64,
	metricName string, policies []PolicySpec) *Table {
	o = o.fill()
	t := &Table{Title: title, RowHeader: "benchmark", Rows: benchRows(o)}
	cols := make([]colSpec, len(policies))
	for i, p := range policies {
		cols[i] = colSpec{cfg: o.apply(Default(p, o.Instrs)), timing: timing}
	}
	rss := sweepConfigs(o, cols)
	for i, p := range policies {
		t.Columns = append(t.Columns, column(p.Label()+" "+metricName, rss[i], metric))
	}
	return t
}

// Fig3 reproduces paper Figure 3: L2 MPKI per primary benchmark for the
// LRU/LFU adaptive cache (full tags) and its component policies.
func Fig3(o Options) *Table {
	return perBench("Figure 3: L2 MPKI, adaptive vs components (512KB 8-way)",
		o, false, mpkiOf, "MPKI",
		[]PolicySpec{AdaptiveSpec(0), SingleSpec("LFU"), SingleSpec("LRU")})
}

// Fig4 reproduces paper Figure 4: CPI per primary benchmark for the same
// three configurations.
func Fig4(o Options) *Table {
	return perBench("Figure 4: CPI, adaptive vs components (512KB 8-way)",
		o, true, cpiOf, "CPI",
		[]PolicySpec{AdaptiveSpec(0), SingleSpec("LFU"), SingleSpec("LRU")})
}

// Fig5 reproduces paper Figure 5: percent increase in average MPKI and CPI
// versus full tags as the shadow partial-tag width shrinks.
func Fig5(o Options) *Table {
	o = o.fill()
	widths := []int{0, 12, 10, 8, 6, 4}
	labels := []string{"full", "12-bit", "10-bit", "8-bit", "6-bit", "4-bit"}

	cols := make([]colSpec, len(widths))
	for i, w := range widths {
		cols[i] = colSpec{cfg: o.apply(Default(AdaptiveSpec(w), o.Instrs)), timing: true}
	}
	rss := sweepConfigs(o, cols)
	var avgM, avgC []float64
	for _, rs := range rss {
		m := make([]float64, len(rs))
		c := make([]float64, len(rs))
		for i, r := range rs {
			m[i], c[i] = r.MPKI, r.CPI
		}
		avgM = append(avgM, stats.Mean(m))
		avgC = append(avgC, stats.Mean(c))
	}
	t := &Table{
		Title:     "Figure 5: impact of partial tags (increase vs full tags, %)",
		RowHeader: "tag width",
		Rows:      labels,
	}
	dm := make([]float64, len(widths))
	dc := make([]float64, len(widths))
	for i := range widths {
		dm[i] = stats.PercentChange(avgM[0], avgM[i])
		dc[i] = stats.PercentChange(avgC[0], avgC[i])
	}
	t.Columns = []Series{
		{Label: "MPKI increase %", Values: dm},
		{Label: "CPI increase %", Values: dc},
		{Label: "avg MPKI", Values: avgM},
		{Label: "avg CPI", Values: avgC},
	}
	return t
}

// Fig6 reproduces paper Figure 6: CPI of the adaptive cache (full and
// 8-bit partial tags) against conventional LRU caches of increasing size
// and associativity (512KB 8-way, 576KB 9-way, 640KB 10-way).
func Fig6(o Options) *Table {
	o = o.fill()
	type variant struct {
		p      PolicySpec
		sizeKB int
		ways   int
		label  string
	}
	variants := []variant{
		{AdaptiveSpec(0), 512, 8, "Adaptive full"},
		{AdaptiveSpec(8), 512, 8, "Adaptive 8-bit"},
		{LRUSpec(), 512, 8, "LRU 512KB 8w"},
		{LRUSpec(), 576, 9, "LRU 576KB 9w"},
		{LRUSpec(), 640, 10, "LRU 640KB 10w"},
	}
	t := &Table{Title: "Figure 6: CPI vs conventional upsized caches",
		RowHeader: "benchmark", Rows: benchRows(o)}
	cols := make([]colSpec, len(variants))
	for i, v := range variants {
		cfg := o.apply(Default(v.p, o.Instrs))
		cfg.L2Geom.SizeBytes = v.sizeKB << 10
		cfg.L2Geom.Ways = v.ways
		cols[i] = colSpec{cfg: cfg, timing: true}
	}
	rss := sweepConfigs(o, cols)
	for i, v := range variants {
		t.Columns = append(t.Columns, column(v.label+" CPI", rss[i], cpiOf))
	}
	return t
}

// PhaseMap is the Figure 7 data: for each time quantum and cache set, the
// fraction of adaptive replacement decisions that imitated component 1
// (LFU in the default configuration); NaN-free, -1 marks quanta with no
// decisions in that set.
type PhaseMap struct {
	Bench  string
	Quanta int
	Sets   int
	// Frac[q][s] in [0,1], or -1 when set s made no decision in quantum q.
	Frac [][]float64
}

// Fig7 reproduces paper Figure 7: the per-set, per-time-quantum policy
// choice map of the adaptive cache for one benchmark (the paper shows ammp
// and mgrid). Quanta are instruction-count based.
func Fig7(o Options, bench string, quanta int) (*PhaseMap, error) {
	o = o.fill()
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	cfg := o.apply(Default(AdaptiveSpec(0), o.Instrs))
	cfg.Warmup = 0

	sets := cfg.L2Geom.Sets()
	counts := make([][2]uint32, quanta*sets)
	var instr uint64
	quantum := func() int {
		q := int(instr * uint64(quanta) / cfg.Instrs)
		if q >= quanta {
			q = quanta - 1
		}
		return q
	}
	m := buildMachine(cfg, func(set, comp int) {
		c := &counts[quantum()*sets+set]
		if comp == 0 {
			c[0]++
		} else {
			c[1]++
		}
	})
	src := workload.New(spec, cfg.Instrs)
	var rec trace.Record
	lastBlock := ^uint64(0)
	for src.Next(&rec) {
		if b := rec.PC >> 6; b != lastBlock {
			lastBlock = b
			m.hier.Ifetch(0, rec.PC)
		}
		switch rec.Kind {
		case trace.Load:
			m.hier.Load(0, rec.Addr)
		case trace.Store:
			m.hier.Store(0, rec.Addr)
		}
		instr++
	}

	pm := &PhaseMap{Bench: bench, Quanta: quanta, Sets: sets}
	pm.Frac = make([][]float64, quanta)
	for q := 0; q < quanta; q++ {
		pm.Frac[q] = make([]float64, sets)
		for s := 0; s < sets; s++ {
			c := counts[q*sets+s]
			tot := c[0] + c[1]
			if tot == 0 {
				pm.Frac[q][s] = -1
				continue
			}
			pm.Frac[q][s] = float64(c[1]) / float64(tot)
		}
	}
	return pm, nil
}

// Render draws the phase map as ASCII art (downsampled to the given
// dimensions): '#' = mostly component 1 (LFU), '.' = mostly component 0
// (LRU), ' ' = no decisions.
func (pm *PhaseMap) Render(w io.Writer, rows, cols int) {
	fmt.Fprintf(w, "# Figure 7: %s replacement choice per set over time ('#'=LFU, '.'=LRU)\n", pm.Bench)
	for r := 0; r < rows; r++ {
		s0, s1 := r*pm.Sets/rows, (r+1)*pm.Sets/rows
		for c := 0; c < cols; c++ {
			q0, q1 := c*pm.Quanta/cols, (c+1)*pm.Quanta/cols
			sum, n := 0.0, 0
			for q := q0; q < q1; q++ {
				for s := s0; s < s1; s++ {
					if f := pm.Frac[q][s]; f >= 0 {
						sum += f
						n++
					}
				}
			}
			switch {
			case n == 0:
				fmt.Fprint(w, " ")
			case sum/float64(n) >= 0.5:
				fmt.Fprint(w, "#")
			default:
				fmt.Fprint(w, ".")
			}
		}
		fmt.Fprintln(w)
	}
}

// LFUShare returns the mean component-1 share over a quantum range,
// ignoring empty cells; tests use it to verify phase structure.
func (pm *PhaseMap) LFUShare(q0, q1 int) float64 {
	sum, n := 0.0, 0
	for q := q0; q < q1 && q < pm.Quanta; q++ {
		for s := 0; s < pm.Sets; s++ {
			if f := pm.Frac[q][s]; f >= 0 {
				sum += f
				n++
			}
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// Fig8 reproduces paper Figure 8: MPKI for a FIFO/MRU adaptive cache
// against its components.
func Fig8(o Options) *Table {
	return perBench("Figure 8: L2 MPKI, FIFO/MRU adaptivity", o, false, mpkiOf, "MPKI",
		[]PolicySpec{AdaptiveSpec(0, "FIFO", "MRU"), SingleSpec("FIFO"), SingleSpec("MRU")})
}

// Fig9 reproduces paper Figure 9: the adaptive cache's average CPI
// improvement and miss reduction versus a same-associativity LRU baseline,
// across associativities (512KB total in all cases).
func Fig9(o Options) *Table {
	o = o.fill()
	assocs := []int{4, 8, 16, 32}
	t := &Table{Title: "Figure 9: benefit vs associativity (512KB)",
		RowHeader: "assoc", Rows: []string{"4", "8", "16", "32"}}
	cols := make([]colSpec, 0, 2*len(assocs))
	for _, ways := range assocs {
		for _, p := range []PolicySpec{LRUSpec(), AdaptiveSpec(0)} {
			cfg := o.apply(Default(p, o.Instrs))
			cfg.L2Geom.Ways = ways
			cols = append(cols, colSpec{cfg: cfg, timing: true})
		}
	}
	rss := sweepConfigs(o, cols)
	var cpiImp, missRed []float64
	for ai := range assocs {
		lru, ad := rss[2*ai], rss[2*ai+1]
		var lc, ac, lm, am []float64
		for i := range lru {
			lc = append(lc, lru[i].CPI)
			ac = append(ac, ad[i].CPI)
			lm = append(lm, lru[i].MPKI)
			am = append(am, ad[i].MPKI)
		}
		cpiImp = append(cpiImp, stats.PercentReduction(stats.Mean(lc), stats.Mean(ac)))
		missRed = append(missRed, stats.PercentReduction(stats.Mean(lm), stats.Mean(am)))
	}
	t.Columns = []Series{
		{Label: "CPI improvement %", Values: cpiImp},
		{Label: "miss reduction %", Values: missRed},
	}
	return t
}

// Fig10 reproduces paper Figure 10: average CPI for LRU and adaptive, and
// the adaptive improvement, as the store buffer grows from 1 to 256
// entries.
func Fig10(o Options) *Table {
	o = o.fill()
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	t := &Table{Title: "Figure 10: effect of store buffer size",
		RowHeader: "SB entries"}
	cols := make([]colSpec, 0, 2*len(sizes))
	for _, sb := range sizes {
		for _, p := range []PolicySpec{LRUSpec(), AdaptiveSpec(0)} {
			cfg := o.apply(Default(p, o.Instrs))
			cfg.CPU.StoreBuffer = sb
			cols = append(cols, colSpec{cfg: cfg, timing: true})
		}
	}
	rss := sweepConfigs(o, cols)
	var rows []string
	var lruCPI, adCPI, imp []float64
	for si, sb := range sizes {
		lru, ad := rss[2*si], rss[2*si+1]
		var lc, ac []float64
		for i := range lru {
			lc = append(lc, lru[i].CPI)
			ac = append(ac, ad[i].CPI)
		}
		l, a := stats.Mean(lc), stats.Mean(ac)
		rows = append(rows, fmt.Sprint(sb))
		lruCPI = append(lruCPI, l)
		adCPI = append(adCPI, a)
		imp = append(imp, stats.PercentReduction(l, a))
	}
	t.Rows = rows
	t.Columns = []Series{
		{Label: "LRU avg CPI", Values: lruCPI},
		{Label: "Adaptive avg CPI", Values: adCPI},
		{Label: "CPI improvement %", Values: imp},
	}
	return t
}

// ExtendedSet reproduces the Section 4.2 whole-suite summary over all 100
// programs: average miss reduction, average CPI improvement, and the worst
// per-program regressions.
func ExtendedSet(o Options) *Table {
	o = o.fill()
	o.Benches = workload.Suite()

	// MPKI from a timing run is bit-identical to a cache-only run of the
	// same configuration (TestCacheOnlyMatchesTimingMPKI), so the two
	// timing sweeps supply both the miss and the CPI summaries; the
	// separate cache-only MPKI sweeps this table once ran were redundant.
	rss := sweepConfigs(o, []colSpec{
		{cfg: o.apply(Default(LRUSpec(), o.Instrs)), timing: true},
		{cfg: o.apply(Default(AdaptiveSpec(0), o.Instrs)), timing: true},
	})
	lruC, adC := rss[0], rss[1]

	var lm, am, lc, ac []float64
	worstMiss, worstCPI := 0.0, 0.0
	worstMissName, worstCPIName := "-", "-"
	for i := range lruC {
		lm = append(lm, lruC[i].MPKI)
		am = append(am, adC[i].MPKI)
		lc = append(lc, lruC[i].CPI)
		ac = append(ac, adC[i].CPI)
		if lruC[i].MPKI > 0 {
			if d := stats.PercentChange(lruC[i].MPKI, adC[i].MPKI); d > worstMiss {
				worstMiss, worstMissName = d, lruC[i].Benchmark
			}
		}
		if d := stats.PercentChange(lruC[i].CPI, adC[i].CPI); d > worstCPI {
			worstCPI, worstCPIName = d, lruC[i].Benchmark
		}
	}
	t := &Table{
		Title:     "Section 4.2: extended set (100 programs)",
		RowHeader: "metric",
		Rows: []string{"avg miss reduction %", "avg CPI improvement %",
			"worst miss increase %", "worst CPI increase %"},
		Columns: []Series{{Label: "value", Values: []float64{
			stats.PercentReduction(stats.Mean(lm), stats.Mean(am)),
			stats.PercentReduction(stats.Mean(lc), stats.Mean(ac)),
			worstMiss,
			worstCPI,
		}}},
		Notes: []string{
			fmt.Sprintf("worst miss increase: %s; worst CPI increase: %s", worstMissName, worstCPIName),
		},
	}
	return t
}

// FivePolicy reproduces the Section 4.4 experiment: adapting over all five
// standard policies versus the LRU/LFU pair.
func FivePolicy(o Options) *Table {
	return perBench("Section 4.4: five-policy adaptivity (MPKI)", o, false, mpkiOf, "MPKI",
		[]PolicySpec{
			AdaptiveSpec(0),
			AdaptiveSpec(0, "LRU", "LFU", "FIFO", "MRU", "Random"),
			LRUSpec(),
		})
}

// L1Adaptivity reproduces the Section 4.6 experiment: LRU/LFU adaptive L1
// instruction and data caches. Values are L1 misses per thousand
// instructions and overall CPI.
func L1Adaptivity(o Options) *Table {
	o = o.fill()
	t := &Table{Title: "Section 4.6: adaptivity at the L1s",
		RowHeader: "benchmark", Rows: benchRows(o)}
	variants := []struct {
		label string
		pol   PolicySpec
	}{
		{"L1-LRU", LRUSpec()},
		{"L1-Adaptive", AdaptiveSpec(0)},
	}
	cols := make([]colSpec, len(variants))
	for i, variant := range variants {
		cfg := o.apply(Default(LRUSpec(), o.Instrs))
		cfg.L1Policy = variant.pol
		cols[i] = colSpec{cfg: cfg, timing: true}
	}
	rss := sweepConfigs(o, cols)
	for i, variant := range variants {
		rs := rss[i]
		t.Columns = append(t.Columns,
			column(variant.label+" L1I-MPKI", rs, func(r Result) float64 {
				return stats.MPKI(r.L1I.Misses, r.CPU.Instructions)
			}),
			column(variant.label+" L1D-MPKI", rs, func(r Result) float64 {
				return stats.MPKI(r.L1D.Misses, r.CPU.Instructions)
			}),
			column(variant.label+" CPI", rs, cpiOf),
		)
	}
	return t
}

// SBARTable reproduces the Section 4.7 comparison: the SBAR-like
// set-sampling cache versus the full adaptive scheme and the LRU baseline.
func SBARTable(o Options) *Table {
	return perBench("Section 4.7: SBAR-like set sampling (CPI)", o, true, cpiOf, "CPI",
		[]PolicySpec{
			LRUSpec(),
			AdaptiveSpec(0),
			SBARSpec(0, 16),
			SBARSpec(8, 16),
		})
}

// OverheadTable reproduces the storage accounting of Sections 3.1-3.2 and
// 4.7 (no simulation required).
func OverheadTable() *Table {
	rows := storage.CompareTable()
	t := &Table{Title: "Sections 3.1-3.2: SRAM storage accounting",
		RowHeader: "configuration"}
	var tot, pct []float64
	for _, r := range rows {
		t.Rows = append(t.Rows, r.Label)
		tot = append(tot, r.TotalKB)
		pct = append(pct, r.Percent)
	}
	t.Columns = []Series{
		{Label: "total KB", Values: tot},
		{Label: "overhead %", Values: pct},
	}
	return t
}
