package sim

import (
	"strings"
	"testing"
)

// tinyOpts keeps multi-config sweeps fast enough for unit tests.
func tinyOpts(names ...string) Options {
	o := testOpts(names...)
	o.Instrs, o.Warmup = 150_000, 30_000
	return o
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6(tinyOpts("gap", "art-1"))
	if len(tab.Columns) != 5 {
		t.Fatalf("%d columns", len(tab.Columns))
	}
	for _, c := range tab.Columns {
		if len(c.Values) != 3 {
			t.Fatalf("column %s has %d values", c.Label, len(c.Values))
		}
		for _, v := range c.Values {
			if v <= 0 {
				t.Fatalf("column %s holds non-positive CPI %v", c.Label, v)
			}
		}
	}
	// A 10-way 640KB LRU cache should not be slower than the 8-way 512KB.
	small := tab.Column("LRU 512KB 8w CPI").Values[2]
	big := tab.Column("LRU 640KB 10w CPI").Values[2]
	if big > small*1.02 {
		t.Errorf("bigger cache slower: 640KB CPI %.3f vs 512KB %.3f", big, small)
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8(tinyOpts("gcc-1", "lucas"))
	if len(tab.Columns) != 3 {
		t.Fatalf("%d columns", len(tab.Columns))
	}
	ad := tab.Column("Adaptive(FIFO/MRU) MPKI")
	fifo := tab.Column("FIFO MPKI")
	mru := tab.Column("MRU MPKI")
	if ad == nil || fifo == nil || mru == nil {
		t.Fatal("missing columns")
	}
	// lucas (row 1) is drift-dominated: MRU must be far worse than FIFO
	// there, and the adaptive cache must stay near FIFO.
	if mru.Values[1] < 2*fifo.Values[1] {
		t.Skipf("MRU not pathological at this scale (%.2f vs %.2f)", mru.Values[1], fifo.Values[1])
	}
	if ad.Values[1] > 1.5*fifo.Values[1] {
		t.Errorf("FIFO/MRU adaptive %.2f far above FIFO %.2f on lucas", ad.Values[1], fifo.Values[1])
	}
}

func TestFig9Shape(t *testing.T) {
	tab := Fig9(tinyOpts("gap", "art-1"))
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %v", tab.Rows)
	}
	if tab.Column("CPI improvement %") == nil || tab.Column("miss reduction %") == nil {
		t.Fatal("missing columns")
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10(tinyOpts("bzip2"))
	if len(tab.Rows) != 9 || tab.Rows[0] != "1" || tab.Rows[8] != "256" {
		t.Fatalf("rows %v", tab.Rows)
	}
	lru := tab.Column("LRU avg CPI")
	// CPI with a 1-entry store buffer must exceed CPI with 256 entries.
	if lru.Values[0] <= lru.Values[8] {
		t.Errorf("store buffer size has no CPI effect: %v", lru.Values)
	}
}

func TestFivePolicyShape(t *testing.T) {
	tab := FivePolicy(tinyOpts("gcc-1"))
	if len(tab.Columns) != 3 {
		t.Fatalf("%d columns", len(tab.Columns))
	}
	if tab.Column("Adaptive(LRU/LFU/FIFO/MRU/Random) MPKI") == nil {
		t.Fatal("five-policy column missing")
	}
}

func TestL1AdaptivityShape(t *testing.T) {
	tab := L1Adaptivity(tinyOpts("gcc-1"))
	if len(tab.Columns) != 6 {
		t.Fatalf("%d columns: %+v", len(tab.Columns), tab.Columns)
	}
	li := tab.Column("L1-LRU L1I-MPKI")
	if li == nil || li.Values[0] <= 0 {
		t.Fatal("gcc-1 (48 kernels) should miss in the 16KB L1I")
	}
}

func TestSBARTableShape(t *testing.T) {
	tab := SBARTable(tinyOpts("art-1"))
	if len(tab.Columns) != 4 {
		t.Fatalf("%d columns", len(tab.Columns))
	}
	for _, label := range []string{"LRU CPI", "Adaptive(LRU/LFU) CPI",
		"SBAR(LRU/LFU) CPI", "SBAR(LRU/LFU) CPI"} {
		if tab.Column(label) == nil {
			t.Fatalf("missing column %q", label)
		}
	}
}

func TestExtendedSetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("100-program sweep")
	}
	o := Options{Instrs: 60_000, Warmup: 12_000, Workers: 2}
	tab := ExtendedSet(o)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %v", tab.Rows)
	}
	if len(tab.Notes) != 1 || !strings.Contains(tab.Notes[0], "worst") {
		t.Fatalf("notes %v", tab.Notes)
	}
}

func TestTableColumnLookup(t *testing.T) {
	tab := &Table{Columns: []Series{{Label: "a"}, {Label: "b"}}}
	if tab.Column("b") != &tab.Columns[1] {
		t.Fatal("Column lookup broken")
	}
	if tab.Column("zzz") != nil {
		t.Fatal("missing column not nil")
	}
}
