// Package sim wires the substrates together — workload generators, the
// out-of-order CPU model, the cache hierarchy, and the adaptive
// replacement policies — into runnable experiments, and implements every
// table and figure of the paper's evaluation (see figures.go).
package sim

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/history"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// L2Mode selects the replacement machinery of the cache under study.
type L2Mode int

// L2 policy modes.
const (
	// Single runs one conventional policy (Components[0]).
	Single L2Mode = iota
	// Adaptive runs the paper's full adaptive scheme over Components.
	Adaptive
	// SBAR runs the set-sampling variant over Components.
	SBAR
)

// PolicySpec configures the cache policy under study.
type PolicySpec struct {
	Mode       L2Mode
	Components []string // policy names (policy.ByName)

	ShadowTagBits int   // adaptive/SBAR: partial-tag width (0 = full tags)
	XORFold       bool  // adaptive: fold tags before masking
	LeaderSets    int   // SBAR only (0 = core.DefaultLeaderSets)
	HistoryM      int   // adaptive window length (0 = associativity)
	Counters      bool  // adaptive: unbounded counters instead of window
	CountCurrent  *bool // adaptive: override count-current-miss (nil = default true)
	FallbackFixed bool  // adaptive: arbitrary-eviction fallback picks way 0
}

// LRUSpec is the conventional baseline.
func LRUSpec() PolicySpec { return PolicySpec{Mode: Single, Components: []string{"LRU"}} }

// SingleSpec runs one named conventional policy.
func SingleSpec(name string) PolicySpec {
	return PolicySpec{Mode: Single, Components: []string{name}}
}

// AdaptiveSpec is the paper's default LRU/LFU adaptive cache.
func AdaptiveSpec(tagBits int, comps ...string) PolicySpec {
	if len(comps) == 0 {
		comps = []string{"LRU", "LFU"}
	}
	return PolicySpec{Mode: Adaptive, Components: comps, ShadowTagBits: tagBits}
}

// SBARSpec is the Section 4.7 set-sampling variant.
func SBARSpec(tagBits, leaders int, comps ...string) PolicySpec {
	if len(comps) == 0 {
		comps = []string{"LRU", "LFU"}
	}
	return PolicySpec{Mode: SBAR, Components: comps, ShadowTagBits: tagBits, LeaderSets: leaders}
}

// Label renders a short human-readable policy description.
func (p PolicySpec) Label() string {
	comps := strings.Join(p.Components, "/")
	switch p.Mode {
	case Single:
		return comps
	case Adaptive:
		if p.ShadowTagBits > 0 {
			return fmt.Sprintf("Adaptive(%s,%d-bit)", comps, p.ShadowTagBits)
		}
		return fmt.Sprintf("Adaptive(%s)", comps)
	case SBAR:
		return fmt.Sprintf("SBAR(%s)", comps)
	}
	return "?"
}

// factories resolves component policy names.
func (p PolicySpec) factories() []core.ComponentFactory {
	fs := make([]core.ComponentFactory, len(p.Components))
	for i, name := range p.Components {
		f := policy.MustByName(name)
		fs[i] = core.ComponentFactory(f)
	}
	return fs
}

// build constructs the cache.Policy for geometry g, plus the adaptive
// engine when applicable (for decision hooks).
func (p PolicySpec) build(g cache.Geometry, hook func(set, comp int)) (cache.Policy, *core.Adaptive) {
	switch p.Mode {
	case Single:
		if len(p.Components) != 1 {
			panic("sim: Single mode takes exactly one component")
		}
		return policy.MustByName(p.Components[0])(), nil
	case Adaptive:
		opts := []core.Option{}
		if p.ShadowTagBits > 0 {
			opts = append(opts, core.WithShadowTagBits(p.ShadowTagBits))
		}
		if p.XORFold {
			opts = append(opts, core.WithTagHash(core.XORFold16))
		}
		if p.HistoryM > 0 {
			opts = append(opts, core.WithHistory(history.NewWindow(p.HistoryM)))
		}
		if p.Counters {
			opts = append(opts, core.WithHistory(history.NewCounters()))
		}
		if p.CountCurrent != nil {
			opts = append(opts, core.WithCountCurrentMiss(*p.CountCurrent))
		}
		if p.FallbackFixed {
			opts = append(opts, core.WithFallback(core.FallbackFixed))
		}
		if hook != nil {
			opts = append(opts, core.WithDecisionHook(hook))
		}
		ad := core.NewAdaptive(p.factories(), opts...)
		return ad, ad
	case SBAR:
		opts := []core.SBAROption{}
		if p.LeaderSets > 0 {
			opts = append(opts, core.WithLeaderSets(p.LeaderSets))
		}
		if p.ShadowTagBits > 0 {
			opts = append(opts, core.WithLeaderOptions(core.WithShadowTagBits(p.ShadowTagBits)))
		}
		return core.NewSBAR(p.factories(), opts...), nil
	}
	panic("sim: unknown policy mode")
}

// Config is a full machine configuration.
type Config struct {
	L2Geom cache.Geometry
	L2     PolicySpec

	L1Geom     cache.Geometry
	L1Policy   PolicySpec // usually LRU; the Section 4.6 experiment adapts it
	DisableL1s bool       // cache-only L2 studies

	CPU    cpu.Config
	Hier   mem.HierarchyConfig
	Bus    mem.BusConfig
	MemLat uint64
	Instrs uint64 // per-benchmark instruction budget
	Warmup uint64 // leading instructions excluded from MPKI (cold-fill skip)
}

// Default returns the paper's Table 1 machine with the given L2 policy and
// instruction budget.
func Default(l2 PolicySpec, instrs uint64) Config {
	return Config{
		L2Geom:   cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8},
		L2:       l2,
		L1Geom:   cache.Geometry{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L1Policy: LRUSpec(),
		CPU:      cpu.DefaultConfig(),
		Hier:     mem.DefaultHierarchyConfig(),
		Bus:      mem.DefaultBus(),
		MemLat:   mem.DefaultMemoryLatency,
		Instrs:   instrs,
	}
}

// Result is the outcome of one benchmark under one configuration.
type Result struct {
	Benchmark string
	Policy    string
	MPKI      float64
	CPI       float64
	L2        cache.Stats
	CPU       cpu.Result
	L1I, L1D  cache.Stats
}

// machine is an assembled simulation instance.
type machine struct {
	hier     *mem.Hierarchy
	adaptive *core.Adaptive
	l2       *cache.Cache
	l1i, l1d *cache.Cache
}

// buildMachine assembles caches + memory per cfg. hook (optional) receives
// L2 adaptive replacement decisions.
func buildMachine(cfg Config, hook func(set, comp int)) *machine {
	l2pol, ad := cfg.L2.build(cfg.L2Geom, hook)
	l2 := cache.New(cfg.L2Geom, l2pol)
	var l1i, l1d *cache.Cache
	if !cfg.DisableL1s {
		l1ipol, _ := cfg.L1Policy.build(cfg.L1Geom, nil)
		l1dpol, _ := cfg.L1Policy.build(cfg.L1Geom, nil)
		l1i = cache.New(cfg.L1Geom, l1ipol)
		l1d = cache.New(cfg.L1Geom, l1dpol)
	}
	bus := mem.NewBus(cfg.Bus, cfg.L2Geom.LineBytes)
	m := mem.NewMemory(cfg.MemLat, bus)
	h := mem.NewHierarchy(cfg.Hier, l1i, l1d, l2, m)
	return &machine{hier: h, adaptive: ad, l2: l2, l1i: l1i, l1d: l1d}
}

// markedSource wraps a Source, invoking fn once just before record `at` is
// produced — the warmup/measurement boundary.
type markedSource struct {
	trace.Source
	at    uint64
	seen  uint64
	fired bool
	fn    func()
}

func (m *markedSource) Next(rec *trace.Record) bool {
	if !m.fired && m.seen == m.at && m.fn != nil {
		m.fn()
		m.fired = true
	}
	m.seen++
	return m.Source.Next(rec)
}

func (m *markedSource) Reset() {
	m.seen = 0
	m.fired = false
	m.Source.Reset()
}

// withWarmup arranges for MPKI to be measured only past cfg.Warmup
// instructions: the hierarchy's demand-miss counter is snapshotted at the
// boundary and subtracted. (Timing-mode CPI covers the whole run; the
// paper's SimPoint samples likewise start measuring mid-execution, and the
// warm-up bias is common to all compared policies.)
func withWarmup(cfg Config, m *machine, src trace.Source) (trace.Source, *uint64) {
	snap := new(uint64)
	if cfg.Warmup == 0 || cfg.Warmup >= cfg.Instrs {
		return src, snap
	}
	return &markedSource{Source: src, at: cfg.Warmup, fn: func() {
		*snap = m.hier.DemandMisses
	}}, snap
}

// Run simulates one benchmark with full CPU timing, producing both CPI and
// MPKI.
func Run(cfg Config, spec workload.Spec) Result {
	return runTiming(cfg, spec.Name, workload.New(spec, cfg.Instrs))
}

// runTiming simulates an instruction source (a live generator or a
// recorded trace) with full CPU timing. The source must deliver exactly
// cfg.Instrs instructions.
func runTiming(cfg Config, bench string, src trace.Source) Result {
	m := buildMachine(cfg, nil)
	wsrc, snap := withWarmup(cfg, m, src)
	c := cpu.New(cfg.CPU, m.hier)
	res := c.Run(wsrc)
	return m.result(bench, cfg, res, *snap)
}

// RunCacheOnly simulates one benchmark functionally (no CPU timing): the
// instruction stream drives I-fetch, loads, and stores through the
// hierarchy in program order. MPKI is identical to a full timing run; CPI
// is reported as 0.
func RunCacheOnly(cfg Config, spec workload.Spec) Result {
	return runFunctional(cfg, spec.Name, workload.New(spec, cfg.Instrs))
}

// runFunctional is RunCacheOnly over an arbitrary instruction source.
func runFunctional(cfg Config, bench string, src trace.Source) Result {
	m := buildMachine(cfg, nil)
	wsrc, snap := withWarmup(cfg, m, src)
	n := runCacheOnly(m, wsrc)
	return m.result(bench, cfg, cpu.Result{Instructions: n}, *snap)
}

func runCacheOnly(m *machine, src trace.Source) uint64 {
	var rec trace.Record
	var n uint64
	lastBlock := ^uint64(0)
	for src.Next(&rec) {
		n++
		if b := rec.PC >> 6; b != lastBlock {
			lastBlock = b
			m.hier.Ifetch(0, rec.PC)
		}
		switch rec.Kind {
		case trace.Load:
			m.hier.Load(0, rec.Addr)
		case trace.Store:
			m.hier.Store(0, rec.Addr)
		}
	}
	return n
}

// ReplaySource drives an arbitrary instruction source — typically a
// recorded trace file — through the configured cache hierarchy
// functionally, returning the L2 statistics and the instruction count.
// cfg.Instrs and cfg.Warmup are ignored; the source's length governs.
func ReplaySource(cfg Config, src trace.Source) (cache.Stats, uint64, error) {
	m := buildMachine(cfg, nil)
	n := runCacheOnly(m, src)
	if n == 0 {
		return cache.Stats{}, 0, fmt.Errorf("sim: source %q produced no instructions", src.Name())
	}
	return m.l2.Stats(), n, nil
}

func (m *machine) result(bench string, cfg Config, r cpu.Result, missSnap uint64) Result {
	measured := r.Instructions
	if cfg.Warmup > 0 && cfg.Warmup < r.Instructions {
		measured = r.Instructions - cfg.Warmup
	}
	res := Result{
		Benchmark: bench,
		Policy:    cfg.L2.Label(),
		MPKI:      stats.MPKI(m.hier.DemandMisses-missSnap, maxU(measured, 1)),
		CPI:       r.CPI(),
		L2:        m.l2.Stats(),
		CPU:       r,
	}
	if m.l1i != nil {
		res.L1I = m.l1i.Stats()
	}
	if m.l1d != nil {
		res.L1D = m.l1d.Stats()
	}
	return res
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
