package sim

import (
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PrefetchStats summarizes a prefetching run.
type PrefetchStats struct {
	Issued uint64 // prefetches sent to the L2
	Useful uint64 // prefetched blocks later demanded before eviction tracking lapsed
}

// Accuracy returns Useful/Issued (0 if nothing was issued).
func (p PrefetchStats) Accuracy() float64 {
	if p.Issued == 0 {
		return 0
	}
	return float64(p.Useful) / float64(p.Issued)
}

// RunWithPrefetch runs one benchmark functionally with an L2 prefetcher:
// the prefetcher trains on the post-L1 demand stream (paper future work:
// adaptivity for hybrid prefetchers) and its predictions are installed
// into the L2 without demand accounting. pf may be nil for a plain run.
func RunWithPrefetch(cfg Config, spec workload.Spec, pf prefetch.Prefetcher) (Result, PrefetchStats) {
	m := buildMachine(cfg, nil)
	src, snap := withWarmup(cfg, m, workload.New(spec, cfg.Instrs))

	var ps PrefetchStats
	var curPC uint64
	var pending []uint64
	outstanding := map[uint64]bool{}
	if pf != nil {
		pf.Reset()
		m.hier.OnL2Demand = func(addr cache.Addr, miss bool) {
			block := uint64(addr) >> 6
			if outstanding[block] {
				ps.Useful++
				delete(outstanding, block)
			}
			pending = append(pending, pf.Observe(curPC, block, miss)...)
		}
	}

	var rec trace.Record
	lastBlock := ^uint64(0)
	for src.Next(&rec) {
		curPC = rec.PC
		if b := rec.PC >> 6; b != lastBlock {
			lastBlock = b
			m.hier.Ifetch(0, rec.PC)
		}
		switch rec.Kind {
		case trace.Load:
			m.hier.Load(0, rec.Addr)
		case trace.Store:
			m.hier.Store(0, rec.Addr)
		}
		for _, block := range pending {
			m.hier.Prefetch(0, cache.Addr(block*64))
			ps.Issued++
			if len(outstanding) < 1<<20 {
				outstanding[block] = true
			}
		}
		pending = pending[:0]
	}
	return m.result(spec.Name, cfg, cpu.Result{Instructions: cfg.Instrs}, *snap), ps
}

// PrefetchTable compares no prefetching, the two component prefetchers,
// and the usefulness-adaptive hybrid across the given benchmarks — the
// paper's prefetcher future-work experiment, measured as demand MPKI.
func PrefetchTable(o Options) *Table {
	o = o.fill()
	t := &Table{Title: "Section 6 (future work): adaptive hybrid prefetching (demand MPKI)",
		RowHeader: "benchmark", Rows: benchRows(o)}

	variants := []struct {
		label string
		mk    func() prefetch.Prefetcher
	}{
		{"none", func() prefetch.Prefetcher { return nil }},
		{"NextLine", func() prefetch.Prefetcher { return prefetch.NewNextLine(1) }},
		{"Stride", func() prefetch.Prefetcher { return prefetch.NewStride(1024) }},
		{"Hybrid", func() prefetch.Prefetcher {
			return prefetch.NewHybrid([]prefetch.Prefetcher{
				prefetch.NewNextLine(1), prefetch.NewStride(1024),
			}, 64, 64)
		}},
	}
	for _, v := range variants {
		var vals []float64
		for _, spec := range o.Benches {
			cfg := o.apply(Default(LRUSpec(), o.Instrs))
			r, _ := RunWithPrefetch(cfg, spec, v.mk())
			vals = append(vals, r.MPKI)
		}
		vals = append(vals, stats.Mean(vals))
		t.Columns = append(t.Columns, Series{Label: v.label + " MPKI", Values: vals})
	}
	return t
}
