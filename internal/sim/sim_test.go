package sim

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	testN    = 1_200_000
	testWarm = 300_000
)

func bench(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testOpts(names ...string) Options {
	o := Options{Instrs: testN, Warmup: testWarm, Workers: 2}
	for _, n := range names {
		s, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		o.Benches = append(o.Benches, s)
	}
	return o
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := Default(LRUSpec(), 1000)
	if cfg.L2Geom.SizeBytes != 512<<10 || cfg.L2Geom.LineBytes != 64 || cfg.L2Geom.Ways != 8 {
		t.Errorf("L2 geometry %v, want 512KB/64B/8-way", cfg.L2Geom)
	}
	if cfg.L1Geom.SizeBytes != 16<<10 || cfg.L1Geom.Ways != 4 {
		t.Errorf("L1 geometry %v, want 16KB/4-way", cfg.L1Geom)
	}
	if cfg.Hier.L1Latency != 2 || cfg.Hier.L2Latency != 15 {
		t.Errorf("latencies %+v, want L1=2 L2=15", cfg.Hier)
	}
	c := cfg.CPU
	if c.FetchWidth != 8 || c.ROBSize != 64 || c.RSSize != 32 ||
		c.IntALUs != 4 || c.FPALUs != 4 || c.MemPorts != 2 || c.StoreBuffer != 4 {
		t.Errorf("CPU config %+v does not match Table 1", c)
	}
	if c.LatIntALU != 1 || c.LatIntMul != 8 || c.LatFPAdd != 4 || c.LatFPDiv != 16 {
		t.Errorf("FU latencies %+v do not match Table 1", c)
	}
}

func TestPolicySpecLabels(t *testing.T) {
	cases := []struct {
		p    PolicySpec
		want string
	}{
		{LRUSpec(), "LRU"},
		{SingleSpec("MRU"), "MRU"},
		{AdaptiveSpec(0), "Adaptive(LRU/LFU)"},
		{AdaptiveSpec(8), "Adaptive(LRU/LFU,8-bit)"},
		{AdaptiveSpec(0, "FIFO", "MRU"), "Adaptive(FIFO/MRU)"},
		{SBARSpec(0, 16), "SBAR(LRU/LFU)"},
	}
	for _, c := range cases {
		if got := c.p.Label(); got != c.want {
			t.Errorf("Label() = %q, want %q", got, c.want)
		}
	}
}

func TestCacheOnlyMatchesTimingMPKI(t *testing.T) {
	// The functional access stream is identical in both modes, so MPKI
	// must agree exactly.
	spec := bench(t, "lucas")
	cfg := Default(AdaptiveSpec(0), 400_000)
	cfg.Warmup = 100_000
	a := RunCacheOnly(cfg, spec)
	b := Run(cfg, spec)
	if a.MPKI != b.MPKI {
		t.Fatalf("cache-only MPKI %.4f != timing MPKI %.4f", a.MPKI, b.MPKI)
	}
	if b.CPI <= 0 {
		t.Fatalf("timing CPI = %v", b.CPI)
	}
	if a.CPI != 0 {
		t.Fatalf("cache-only CPI = %v, want 0", a.CPI)
	}
}

// TestAdaptiveTracksBestComponents is the paper's core claim at the
// whole-machine level: adaptive MPKI lands within 15% of the better
// component on both an LRU-friendly and an LFU-friendly benchmark.
func TestAdaptiveTracksBestComponents(t *testing.T) {
	for _, name := range []string{"lucas", "art-1"} {
		spec := bench(t, name)
		cfg := func(p PolicySpec) Config {
			c := Default(p, 4_000_000)
			c.Warmup = 1_000_000
			return c
		}
		lru := RunCacheOnly(cfg(LRUSpec()), spec).MPKI
		lfu := RunCacheOnly(cfg(SingleSpec("LFU")), spec).MPKI
		ad := RunCacheOnly(cfg(AdaptiveSpec(0)), spec).MPKI
		best := lru
		if lfu < best {
			best = lfu
		}
		if ad > 1.15*best {
			t.Errorf("%s: adaptive MPKI %.2f vs best component %.2f (LRU %.2f, LFU %.2f)",
				name, ad, best, lru, lfu)
		}
	}
}

func TestWarmupExcludesColdMisses(t *testing.T) {
	spec := bench(t, "gap") // working set fits after warmup
	cold := Default(LRUSpec(), testN)
	warm := cold
	warm.Warmup = testN / 2
	a := RunCacheOnly(cold, spec)
	b := RunCacheOnly(warm, spec)
	if b.MPKI >= a.MPKI {
		t.Fatalf("warmed MPKI %.3f not below cold %.3f", b.MPKI, a.MPKI)
	}
}

func TestSweepDeterministicUnderParallelism(t *testing.T) {
	o := testOpts("lucas", "art-1", "gap").fill()
	o.Workers = 3
	cfg := o.apply(Default(AdaptiveSpec(8), o.Instrs))
	r1 := sweep(o, cfg, false)
	r2 := sweep(o, cfg, false)
	for i := range r1 {
		if r1[i].MPKI != r2[i].MPKI {
			t.Fatalf("bench %s diverged across sweeps", r1[i].Benchmark)
		}
	}
}

// TestSweepSerialMatchesParallel pins the engine's determinism contract:
// a fully serial sweep and a maximally parallel one must produce identical
// results in identical order.
func TestSweepSerialMatchesParallel(t *testing.T) {
	base := testOpts("lucas", "art-1", "gap").fill()
	cols := []colSpec{
		{cfg: base.apply(Default(LRUSpec(), base.Instrs)), timing: true},
		{cfg: base.apply(Default(AdaptiveSpec(0), base.Instrs)), timing: true},
	}
	serial, parallel := base, base
	serial.Workers = 1
	parallel.Workers = 8
	rs := sweepConfigs(serial, cols)
	rp := sweepConfigs(parallel, cols)
	for c := range rs {
		for b := range rs[c] {
			if rs[c][b] != rp[c][b] {
				t.Fatalf("col %d bench %s: serial %+v != parallel %+v",
					c, rs[c][b].Benchmark, rs[c][b], rp[c][b])
			}
		}
	}
}

// TestSweepReplayMatchesGeneration verifies that the record-once/
// replay-many trace path is invisible in the results: a multi-column
// sweep (replay active) must equal independent single-column sweeps
// (each re-running the generator).
func TestSweepReplayMatchesGeneration(t *testing.T) {
	o := testOpts("lucas", "gap").fill()
	o.Workers = 2
	cfgA := o.apply(Default(LRUSpec(), o.Instrs))
	cfgB := o.apply(Default(AdaptiveSpec(0), o.Instrs))
	if o.Instrs > o.ReplayCap {
		t.Fatalf("test budget %d exceeds replay cap %d; replay path not exercised", o.Instrs, o.ReplayCap)
	}
	both := sweepConfigs(o, []colSpec{{cfg: cfgA, timing: true}, {cfg: cfgB, timing: true}})
	lone := [][]Result{sweep(o, cfgA, true), sweep(o, cfgB, true)}
	for c := range both {
		for b := range both[c] {
			if both[c][b] != lone[c][b] {
				t.Fatalf("col %d bench %s: replayed %+v != generated %+v",
					c, both[c][b].Benchmark, both[c][b], lone[c][b])
			}
		}
	}
}

// TestMarkedSourceResetRestoresCallback guards against the warmup callback
// being lost after the first pass: a Reset source must fire it again.
func TestMarkedSourceResetRestoresCallback(t *testing.T) {
	recs := make([]trace.Record, 10)
	fired := 0
	m := &markedSource{
		Source: &trace.SliceSource{Recs: recs},
		at:     4,
		fn:     func() { fired++ },
	}
	var rec trace.Record
	for m.Next(&rec) {
	}
	if fired != 1 {
		t.Fatalf("first pass fired callback %d times, want 1", fired)
	}
	m.Reset()
	for m.Next(&rec) {
	}
	if fired != 2 {
		t.Fatalf("after Reset callback fired %d times total, want 2", fired)
	}
}

func TestReplaySourceEmptyErrors(t *testing.T) {
	cfg := Default(LRUSpec(), 1000)
	_, _, err := ReplaySource(cfg, &trace.SliceSource{Label: "empty"})
	if err == nil {
		t.Fatal("empty source accepted")
	}
	if !strings.Contains(err.Error(), "empty") {
		t.Fatalf("error %q does not name the source", err)
	}
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3(testOpts("lucas", "art-1"))
	if len(tab.Rows) != 3 || tab.Rows[2] != "average" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("%d columns", len(tab.Columns))
	}
	adaptive := tab.Column("Adaptive(LRU/LFU) MPKI")
	lru := tab.Column("LRU MPKI")
	if adaptive == nil || lru == nil {
		t.Fatalf("missing columns: %+v", tab.Columns)
	}
	// lucas is the LRU-friendly benchmark: adaptive must stay near LRU.
	if adaptive.Values[0] > 1.3*lru.Values[0] {
		t.Errorf("lucas adaptive %.2f far above LRU %.2f", adaptive.Values[0], lru.Values[0])
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	if !strings.Contains(sb.String(), "lucas") || !strings.Contains(sb.String(), "average") {
		t.Error("Fprint output missing rows")
	}
}

func TestFig5PartialTagsStayClose(t *testing.T) {
	tab := Fig5(testOpts("art-1", "lucas"))
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	inc := tab.Column("MPKI increase %")
	if inc == nil {
		t.Fatal("missing MPKI increase column")
	}
	if inc.Values[0] != 0 {
		t.Errorf("full-tag row increase = %v, want 0", inc.Values[0])
	}
	// 8-bit partial tags (row 3) must stay within a few percent of full
	// tags. (The committed EXPERIMENTS.md records the full-suite sweep at
	// 10M instructions; this guard runs two benchmarks at reduced scale,
	// so the tolerance is looser than the paper's <1% whole-suite figure.)
	if abs(inc.Values[3]) > 10 {
		t.Errorf("8-bit partial MPKI increase %.2f%%, want |x| <= 10%%", inc.Values[3])
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig7PhaseStructure(t *testing.T) {
	o := Options{Instrs: 4_000_000, Workers: 1}
	pm, err := Fig7(o, "ammp", 40)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Sets != 1024 || pm.Quanta != 40 {
		t.Fatalf("map shape %dx%d", pm.Quanta, pm.Sets)
	}
	// ammp: LFU-favorable early (phases 1-2 end at 55%), LRU-dominant
	// late (paper Figure 7a).
	early := pm.LFUShare(4, 20)
	late := pm.LFUShare(28, 40)
	if early < 0 || late < 0 {
		t.Fatal("phase map has empty ranges")
	}
	if early <= late+0.2 {
		t.Errorf("no phase structure: early LFU share %.2f vs late %.2f", early, late)
	}
	var sb strings.Builder
	pm.Render(&sb, 16, 32)
	if !strings.Contains(sb.String(), "#") || !strings.Contains(sb.String(), ".") {
		t.Error("rendered map lacks both policy glyphs")
	}
}

func TestFig7UnknownBenchmark(t *testing.T) {
	if _, err := Fig7(Options{Instrs: 1000}, "nope", 4); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFig7SpatialStructure(t *testing.T) {
	// ammp phase 1 splits behavior across even (LFU-friendly) and odd
	// (LRU-friendly drift) sets — the spatial dimension of Figure 7a.
	o := Options{Instrs: 6_000_000, Workers: 1}
	pm, err := Fig7(o, "ammp", 30)
	if err != nil {
		t.Fatal(err)
	}
	// Quanta 5..9 lie in the back half of phase 1 (first 30%), past the
	// cold-fill period during which no replacement decisions happen.
	evenSum, evenN, oddSum, oddN := 0.0, 0, 0.0, 0
	for q := 5; q < 9; q++ {
		for s := 0; s < pm.Sets; s++ {
			f := pm.Frac[q][s]
			if f < 0 {
				continue
			}
			if s%2 == 0 {
				evenSum += f
				evenN++
			} else {
				oddSum += f
				oddN++
			}
		}
	}
	if evenN == 0 || oddN == 0 {
		t.Fatal("no decisions recorded in phase 1")
	}
	even, odd := evenSum/float64(evenN), oddSum/float64(oddN)
	if even <= odd+0.15 {
		t.Errorf("no spatial structure: even-set LFU share %.2f vs odd %.2f", even, odd)
	}
}

func TestOverheadTableMatchesPaper(t *testing.T) {
	tab := OverheadTable()
	want := map[string]float64{
		"conventional 512KB 8-way":     544,
		"adaptive, full tags":          598,
		"adaptive, 8-bit partial tags": 566,
		"conventional 576KB 9-way":     612,
		"conventional 640KB 10-way":    680,
	}
	total := tab.Column("total KB")
	for i, row := range tab.Rows {
		if w, ok := want[row]; ok && abs(total.Values[i]-w) > 0.01 {
			t.Errorf("%s total = %.2f KB, want %.0f", row, total.Values[i], w)
		}
	}
}

func TestSingleSpecRejectsMultipleComponents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Single mode with two components did not panic")
		}
	}()
	p := PolicySpec{Mode: Single, Components: []string{"LRU", "LFU"}}
	p.build(Default(LRUSpec(), 1).L2Geom, nil)
}

func TestL1AdaptiveModeRuns(t *testing.T) {
	cfg := Default(LRUSpec(), 300_000)
	cfg.L1Policy = AdaptiveSpec(0)
	r := Run(cfg, bench(t, "gcc-1"))
	if r.CPI <= 0 || r.L1I.Accesses == 0 || r.L1D.Accesses == 0 {
		t.Fatalf("L1-adaptive run incomplete: %+v", r)
	}
}

func TestSBARModeRuns(t *testing.T) {
	cfg := Default(SBARSpec(8, 16), 400_000)
	r := RunCacheOnly(cfg, bench(t, "art-1"))
	if r.MPKI <= 0 {
		t.Fatalf("SBAR run produced MPKI %v", r.MPKI)
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	o := Options{}.fill()
	if o.Instrs != 10_000_000 || o.Warmup != 2_000_000 {
		t.Errorf("budget defaults wrong: %+v", o)
	}
	if len(o.Benches) != 26 {
		t.Errorf("default benches = %d, want primary 26", len(o.Benches))
	}
	if o.ReplayCap != DefaultReplayCap {
		t.Errorf("replay cap = %d, want %d", o.ReplayCap, DefaultReplayCap)
	}
	if o.pool() != engine.Default {
		t.Error("zero Workers should select the shared engine pool")
	}
	if p := (Options{Workers: 3}).pool(); p == engine.Default || p.Workers() != 3 {
		t.Errorf("explicit Workers should build a private pool, got %v workers", p.Workers())
	}
}
