package sim

import (
	"testing"

	"repro/internal/workload"
)

func pair(t *testing.T, a, b string) []workload.Spec {
	t.Helper()
	return []workload.Spec{bench(t, a), bench(t, b)}
}

func TestMulticoreSharedBasics(t *testing.T) {
	cfg := Default(AdaptiveSpec(0), 300_000)
	cfg.Warmup = 50_000
	r := RunMulticoreShared(cfg, pair(t, "lucas", "art-1"))
	if len(r.PerCore) != 2 {
		t.Fatalf("%d per-core results", len(r.PerCore))
	}
	if r.PerCore[0].Benchmark != "lucas" || r.PerCore[1].Benchmark != "art-1" {
		t.Fatalf("per-core naming wrong: %+v", r.PerCore)
	}
	if r.MPKI <= 0 {
		t.Fatalf("aggregate MPKI %v", r.MPKI)
	}
	// Both cores actually reached the shared L2.
	if r.PerCore[0].MPKI <= 0 || r.PerCore[1].MPKI <= 0 {
		t.Fatalf("a core saw no misses: %+v", r.PerCore)
	}
	if r.L2.Accesses == 0 {
		t.Fatal("shared L2 untouched")
	}
}

func TestMulticoreAddressSpacesDisjoint(t *testing.T) {
	// The same program on both cores must roughly double the shared-L2
	// footprint pressure, not dedupe into one copy: aggregate misses of
	// (p, p) must clearly exceed a single-core run of p.
	cfg := Default(LRUSpec(), 300_000)
	single := RunCacheOnly(cfg, bench(t, "gap"))
	dual := RunMulticoreShared(cfg, pair(t, "gap", "gap"))
	if dual.L2.Misses < single.L2.Misses*3/2 {
		t.Fatalf("dual-core misses %d vs single %d: cores appear to share data",
			dual.L2.Misses, single.L2.Misses)
	}
}

func TestMulticoreSharingRaisesPressure(t *testing.T) {
	// A shared L2 must behave worse (per core) than having the whole L2
	// alone.
	cfg := Default(LRUSpec(), 400_000)
	cfg.Warmup = 100_000
	alone := RunCacheOnly(cfg, bench(t, "twolf")).MPKI
	sharedRun := RunMulticoreShared(cfg, pair(t, "twolf", "swim"))
	shared := sharedRun.PerCore[0].MPKI
	if shared <= alone {
		t.Fatalf("twolf MPKI alone %.3f vs shared %.3f: no contention visible", alone, shared)
	}
}

func TestMulticoreAdaptiveCompetitive(t *testing.T) {
	// Dissimilar pair: the adaptive shared L2 should land at or below the
	// better single policy (the future-work hypothesis).
	specs := pair(t, "lucas", "art-1")
	run := func(p PolicySpec) float64 {
		cfg := Default(p, 2_000_000)
		cfg.Warmup = 400_000
		return RunMulticoreShared(cfg, specs).MPKI
	}
	lru, lfu, ad := run(LRUSpec()), run(SingleSpec("LFU")), run(AdaptiveSpec(0))
	best := lru
	if lfu < best {
		best = lfu
	}
	if ad > 1.15*best {
		t.Errorf("adaptive shared-L2 MPKI %.2f vs best single policy %.2f (LRU %.2f LFU %.2f)",
			ad, best, lru, lfu)
	}
}

func TestMulticoreNeedsTwoPrograms(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-program multicore accepted")
		}
	}()
	RunMulticoreShared(Default(LRUSpec(), 1000), []workload.Spec{bench(t, "gap")})
}

func TestMulticoreTableShape(t *testing.T) {
	o := Options{Instrs: 200_000, Warmup: 40_000, Workers: 1}
	tab := MulticoreTable(o, [][2]string{{"lucas", "art-1"}})
	if len(tab.Rows) != 2 || tab.Rows[1] != "average" {
		t.Fatalf("rows %v", tab.Rows)
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("%d columns", len(tab.Columns))
	}
	for _, c := range tab.Columns {
		if len(c.Values) != 2 {
			t.Fatalf("column %s has %d values", c.Label, len(c.Values))
		}
	}
}
