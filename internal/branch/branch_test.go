package branch

import (
	"math/rand"
	"testing"
)

// run feeds outcomes for a single branch pc and returns the mispredict
// ratio over the last half (after warmup).
func run(p *Predictor, pc, target uint64, outcomes []bool) float64 {
	misses := 0
	half := len(outcomes) / 2
	for i, taken := range outcomes {
		pred := p.Predict(pc)
		mis := p.Update(pc, pred, taken, target)
		if i >= half && mis {
			misses++
		}
	}
	return float64(misses) / float64(len(outcomes)-half)
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 1000)
	for i := range outcomes {
		outcomes[i] = true
	}
	if r := run(p, 0x400100, 0x400800, outcomes); r > 0.01 {
		t.Fatalf("mispredict ratio %.3f on always-taken branch", r)
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 1000)
	if r := run(p, 0x400100, 0x400800, outcomes); r > 0.01 {
		t.Fatalf("mispredict ratio %.3f on never-taken branch", r)
	}
}

// TestGshareLearnsPattern: a strict alternation (T,N,T,N,...) defeats a
// bimodal predictor but is perfectly captured by global history; the meta
// chooser must converge to gshare.
func TestGshareLearnsPattern(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	if r := run(p, 0x400100, 0x400800, outcomes); r > 0.02 {
		t.Fatalf("mispredict ratio %.3f on alternating branch", r)
	}
	pred := p.Predict(0x400100)
	if !pred.UsedGshare {
		t.Error("meta chooser did not select gshare for history-correlated branch")
	}
}

// TestLoopBranchNearPerfect: a loop-back branch taken 9 of 10 times is the
// bread-and-butter case; after warmup only the loop exits should miss.
func TestLoopBranchNearPerfect(t *testing.T) {
	p := New(DefaultConfig())
	var outcomes []bool
	for i := 0; i < 500; i++ {
		for k := 0; k < 9; k++ {
			outcomes = append(outcomes, true)
		}
		outcomes = append(outcomes, false)
	}
	if r := run(p, 0x400100, 0x400800, outcomes); r > 0.12 {
		t.Fatalf("mispredict ratio %.3f on 10-iteration loop branch", r)
	}
}

func TestRandomBranchNearHalf(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	outcomes := make([]bool, 20000)
	for i := range outcomes {
		outcomes[i] = rng.Intn(2) == 0
	}
	r := run(p, 0x400100, 0x400800, outcomes)
	if r < 0.35 || r > 0.65 {
		t.Fatalf("mispredict ratio %.3f on random branch, want ~0.5", r)
	}
}

func TestBTBTargetMissIsMispredict(t *testing.T) {
	p := New(DefaultConfig())
	pc, target := uint64(0x400100), uint64(0x400800)
	pred := p.Predict(pc)
	// First taken encounter: even if direction guessed taken, no target.
	if !p.Update(pc, pred, true, target) {
		t.Fatal("first taken branch with cold BTB not counted as mispredict")
	}
	if p.BTBMisses != 1 {
		t.Fatalf("BTBMisses = %d", p.BTBMisses)
	}
	// Train direction, then the BTB supplies the target.
	for i := 0; i < 10; i++ {
		p.Update(pc, p.Predict(pc), true, target)
	}
	pred = p.Predict(pc)
	if !pred.BTBHit || pred.Target != target {
		t.Fatalf("BTB not trained: %+v", pred)
	}
	if p.Update(pc, pred, true, target) {
		t.Fatal("trained branch mispredicted")
	}
	// A changed target (indirect branch) must mispredict once.
	pred = p.Predict(pc)
	if !p.Update(pc, pred, true, target+64) {
		t.Fatal("target change not detected")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries, cfg.BTBWays = 8, 2 // 4 sets, tiny
	p := New(cfg)
	sets := uint64(4)
	// Three branches in the same BTB set exceed its 2 ways.
	pcs := []uint64{0x1000 << 2 * sets, 0, 0}
	pcs[0] = 4 * sets * 1 // idx multiple of sets -> set 0
	pcs[1] = 4 * sets * 2
	pcs[2] = 4 * sets * 3
	for _, pc := range pcs {
		p.Update(pc, p.Predict(pc), true, pc+100)
	}
	// pcs[0] was LRU and must be gone.
	if pred := p.Predict(pcs[0]); pred.BTBHit {
		t.Fatal("LRU BTB entry survived conflict")
	}
	if pred := p.Predict(pcs[2]); !pred.BTBHit {
		t.Fatal("MRU BTB entry evicted")
	}
}

func TestDistinctBranchesDoNotDestroyEachOther(t *testing.T) {
	p := New(DefaultConfig())
	// Two branches with opposite biases at different PCs.
	for i := 0; i < 2000; i++ {
		p.Update(0x400100, p.Predict(0x400100), true, 0x400800)
		p.Update(0x400200, p.Predict(0x400200), false, 0x400900)
	}
	if pred := p.Predict(0x400100); !pred.Taken {
		t.Error("taken-biased branch predicted not-taken")
	}
	if pred := p.Predict(0x400200); pred.Taken {
		t.Error("not-taken-biased branch predicted taken")
	}
}

func TestMispredictRatio(t *testing.T) {
	p := New(DefaultConfig())
	if p.MispredictRatio() != 0 {
		t.Fatal("ratio nonzero before branches")
	}
	p.Update(0x400100, p.Predict(0x400100), true, 0x400800)
	if p.Branches != 1 {
		t.Fatalf("Branches = %d", p.Branches)
	}
}

func TestBadConfigPanics(t *testing.T) {
	bad := []Config{
		{GshareEntries: 1000, BimodalEntries: 1024, MetaEntries: 1024, HistoryBits: 8, BTBEntries: 64, BTBWays: 4},
		{GshareEntries: 1024, BimodalEntries: 1024, MetaEntries: 1024, HistoryBits: 8, BTBEntries: 63, BTBWays: 4},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}
