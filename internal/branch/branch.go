// Package branch implements the simulated processor's branch predictor
// (paper Table 1): a hybrid of a 16KB gshare and a 16KB bimodal predictor
// arbitrated by a 16KB meta chooser, plus a 4K-entry 4-way BTB. 16KB of
// 2-bit counters is 64K entries per table.
package branch

// Config sizes the predictor tables.
type Config struct {
	GshareEntries  int // 2-bit counters in the gshare table
	BimodalEntries int // 2-bit counters in the bimodal table
	MetaEntries    int // 2-bit chooser counters
	HistoryBits    int // global history length for gshare
	BTBEntries     int // total BTB entries
	BTBWays        int
}

// DefaultConfig matches paper Table 1.
func DefaultConfig() Config {
	return Config{
		GshareEntries:  64 << 10,
		BimodalEntries: 64 << 10,
		MetaEntries:    64 << 10,
		HistoryBits:    16,
		BTBEntries:     4096,
		BTBWays:        4,
	}
}

// Prediction is the front end's guess for one branch.
type Prediction struct {
	Taken      bool
	Target     uint64 // 0 if the BTB has no entry
	BTBHit     bool
	UsedGshare bool // which component the meta chooser selected
}

// Predictor is the hybrid branch predictor. The zero value is unusable;
// construct with New.
type Predictor struct {
	cfg     Config
	gshare  []uint8 // 2-bit saturating counters
	bimodal []uint8
	meta    []uint8 // >=2 selects gshare
	ghist   uint64

	btbTags  []uint64 // (set*ways + way); 0 = empty
	btbTgts  []uint64
	btbLRU   []uint64
	btbClock uint64

	// Statistics.
	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64
}

// New builds a predictor; table entry counts must be powers of two.
func New(cfg Config) *Predictor {
	for _, n := range []int{cfg.GshareEntries, cfg.BimodalEntries, cfg.MetaEntries} {
		if n <= 0 || n&(n-1) != 0 {
			panic("branch: table sizes must be positive powers of two")
		}
	}
	if cfg.BTBWays <= 0 || cfg.BTBEntries%cfg.BTBWays != 0 {
		panic("branch: BTB entries must divide evenly into ways")
	}
	p := &Predictor{
		cfg:     cfg,
		gshare:  make([]uint8, cfg.GshareEntries),
		bimodal: make([]uint8, cfg.BimodalEntries),
		meta:    make([]uint8, cfg.MetaEntries),
		btbTags: make([]uint64, cfg.BTBEntries),
		btbTgts: make([]uint64, cfg.BTBEntries),
		btbLRU:  make([]uint64, cfg.BTBEntries),
	}
	// Weakly taken start for direction tables; weakly-bimodal for meta.
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 1
	}
	return p
}

func (p *Predictor) gidx(pc uint64) int {
	return int(((pc >> 2) ^ p.ghist) & uint64(p.cfg.GshareEntries-1))
}
func (p *Predictor) bidx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.BimodalEntries-1))
}
func (p *Predictor) midx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.MetaEntries-1))
}

// Predict returns the front end's guess for the branch at pc.
func (p *Predictor) Predict(pc uint64) Prediction {
	useG := p.meta[p.midx(pc)] >= 2
	var taken bool
	if useG {
		taken = p.gshare[p.gidx(pc)] >= 2
	} else {
		taken = p.bimodal[p.bidx(pc)] >= 2
	}
	pred := Prediction{Taken: taken, UsedGshare: useG}
	if set, way := p.btbFind(pc); way >= 0 {
		pred.BTBHit = true
		pred.Target = p.btbTgts[set*p.cfg.BTBWays+way]
	}
	return pred
}

// Update trains the predictor with the resolved branch and reports whether
// the earlier prediction pred was a misprediction (wrong direction, or
// taken with a wrong/missing target).
func (p *Predictor) Update(pc uint64, pred Prediction, taken bool, target uint64) bool {
	p.Branches++

	gi, bi, mi := p.gidx(pc), p.bidx(pc), p.midx(pc)
	gCorrect := (p.gshare[gi] >= 2) == taken
	bCorrect := (p.bimodal[bi] >= 2) == taken

	bump := func(c *uint8, up bool) {
		if up {
			if *c < 3 {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
	bump(&p.gshare[gi], taken)
	bump(&p.bimodal[bi], taken)
	if gCorrect != bCorrect {
		bump(&p.meta[mi], gCorrect)
	}
	p.ghist = (p.ghist<<1 | b2u(taken)) & (1<<uint(p.cfg.HistoryBits) - 1)

	mispredict := pred.Taken != taken
	if taken {
		if !pred.BTBHit || pred.Target != target {
			mispredict = true
		}
		p.btbInsert(pc, target)
	}
	if mispredict {
		p.Mispredicts++
	}
	if taken && !pred.BTBHit {
		p.BTBMisses++
	}
	return mispredict
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (p *Predictor) btbSets() int { return p.cfg.BTBEntries / p.cfg.BTBWays }

// btbKey returns (set, tag) for a pc; tag is the pc itself shifted so tag 0
// never occurs for real instruction addresses (pc 0 is not used).
func (p *Predictor) btbKey(pc uint64) (int, uint64) {
	idx := pc >> 2
	set := int(idx % uint64(p.btbSets()))
	return set, idx/uint64(p.btbSets()) + 1
}

func (p *Predictor) btbFind(pc uint64) (set, way int) {
	set, tag := p.btbKey(pc)
	base := set * p.cfg.BTBWays
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[base+w] == tag {
			return set, w
		}
	}
	return set, -1
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set, way := p.btbFind(pc)
	base := set * p.cfg.BTBWays
	if way < 0 {
		// LRU replacement within the set (empty ways have stamp 0).
		way = 0
		for w := 1; w < p.cfg.BTBWays; w++ {
			if p.btbLRU[base+w] < p.btbLRU[base+way] {
				way = w
			}
		}
		_, tag := p.btbKey(pc)
		p.btbTags[base+way] = tag
	}
	p.btbTgts[base+way] = target
	p.btbClock++
	p.btbLRU[base+way] = p.btbClock
}

// MispredictRatio returns Mispredicts/Branches (0 before any branch).
func (p *Predictor) MispredictRatio() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}
