// Package storage reproduces the paper's SRAM storage accounting (Sections
// 3.1-3.2 and 4.7): how much total storage a conventional cache needs, and
// how much more the adaptive scheme adds with full tags, partial tags, or
// SBAR-style set sampling. All results follow the paper's own bookkeeping:
// 40-bit physical addresses, 8 metadata bits per line in the main array
// (valid, dirty, coherence, LRU ordering), 4 policy-specific bits per
// parallel-array entry, an m-bit history buffer per set, and a 3-bit-per-
// line credit for not replicating the LRU ordering metadata in both the
// main and parallel arrays.
package storage

import (
	"fmt"

	"repro/internal/cache"
)

// Paper-default accounting constants (Section 3.1 footnotes).
const (
	DefaultPhysBits       = 40 // physical address width
	DefaultLineMetaBits   = 8  // valid+dirty+coherence+LRU bits per main-array line
	DefaultPolicyMetaBits = 4  // per-entry policy metadata in a parallel array
	DefaultDedupLRUBits   = 3  // LRU state not replicated between main and parallel arrays
	DefaultHistoryBits    = 8  // per-set miss-history bits (m = associativity)
)

// Params carries the accounting constants alongside a cache geometry.
type Params struct {
	Geometry       cache.Geometry
	PhysBits       int
	LineMetaBits   int
	PolicyMetaBits int
	DedupLRUBits   int
	HistoryBits    int // per set
}

// DefaultParams returns the paper's accounting for a geometry.
func DefaultParams(g cache.Geometry) Params {
	return Params{
		Geometry:       g,
		PhysBits:       DefaultPhysBits,
		LineMetaBits:   DefaultLineMetaBits,
		PolicyMetaBits: DefaultPolicyMetaBits,
		DedupLRUBits:   DefaultDedupLRUBits,
		HistoryBits:    DefaultHistoryBits,
	}
}

// Bits is a storage amount in bits.
type Bits int64

// Bytes converts to bytes (rounding up).
func (b Bits) Bytes() int64 { return (int64(b) + 7) / 8 }

// KB converts to kilobytes as a float for reporting.
func (b Bits) KB() float64 { return float64(b) / 8 / 1024 }

func (b Bits) String() string { return fmt.Sprintf("%.2fKB", b.KB()) }

// tagBits returns the effective stored tag width: the full architectural
// tag, or the partial width if smaller. partial <= 0 means full tags.
func (p Params) tagBits(partial int) int {
	full := p.Geometry.TagBits(p.PhysBits)
	if partial > 0 && partial < full {
		return partial
	}
	return full
}

// Data returns the data-array bits.
func (p Params) Data() Bits {
	return Bits(int64(p.Geometry.SizeBytes) * 8)
}

// MainTags returns the main tag array bits: full tag + line metadata per
// line.
func (p Params) MainTags() Bits {
	perLine := p.Geometry.TagBits(p.PhysBits) + p.LineMetaBits
	return Bits(int64(p.Geometry.Lines()) * int64(perLine))
}

// Conventional returns total storage (data + main tags) for a conventional
// cache of this geometry — the paper's 544KB for 512KB/64B/8-way.
func (p Params) Conventional() Bits {
	return p.Data() + p.MainTags()
}

// ParallelArray returns the bits of ONE parallel (shadow) tag array with
// the given partial tag width (<= 0 for full tags): stored tag + policy
// metadata per entry, across all sets.
func (p Params) ParallelArray(partialTagBits int) Bits {
	perLine := p.tagBits(partialTagBits) + p.PolicyMetaBits
	return Bits(int64(p.Geometry.Lines()) * int64(perLine))
}

// History returns the bits of the per-set miss-history buffers.
func (p Params) History() Bits {
	return Bits(int64(p.Geometry.Sets()) * int64(p.HistoryBits))
}

// dedup returns the LRU-metadata double-counting credit.
func (p Params) dedup() Bits {
	return Bits(int64(p.Geometry.Lines()) * int64(p.DedupLRUBits))
}

// AdaptiveOverhead returns the extra bits the full adaptive scheme adds on
// top of Conventional: comps parallel tag arrays plus history buffers,
// minus the LRU dedup credit.
func (p Params) AdaptiveOverhead(comps, partialTagBits int) Bits {
	return Bits(int64(comps))*p.ParallelArray(partialTagBits) + p.History() - p.dedup()
}

// AdaptiveTotal returns Conventional + AdaptiveOverhead — the paper's 598KB
// (full tags) and 566KB (8-bit partial tags) for the 512KB configuration.
func (p Params) AdaptiveTotal(comps, partialTagBits int) Bits {
	return p.Conventional() + p.AdaptiveOverhead(comps, partialTagBits)
}

// SBAROverhead returns the extra bits of the set-sampling variant: parallel
// tag entries and history for the leader sets only. Following the paper's
// accounting, follower sets carry no extra storage (their additional
// policy metadata is folded into the main array's per-line budget).
func (p Params) SBAROverhead(comps, leaderSets, partialTagBits int) Bits {
	if leaderSets > p.Geometry.Sets() {
		leaderSets = p.Geometry.Sets()
	}
	perLine := p.tagBits(partialTagBits) + p.PolicyMetaBits
	entries := int64(leaderSets) * int64(p.Geometry.Ways)
	tagBits := Bits(int64(comps) * entries * int64(perLine))
	hist := Bits(int64(leaderSets) * int64(p.HistoryBits))
	return tagBits + hist
}

// OverheadPercent expresses extra bits as a percentage of the conventional
// total — the paper's headline +9.9% / +4.0% / +2.1% / 0.16% numbers.
func (p Params) OverheadPercent(extra Bits) float64 {
	return 100 * float64(extra) / float64(p.Conventional())
}

// Report is one row of the paper's storage comparison.
type Report struct {
	Label   string
	TotalKB float64
	Percent float64 // overhead over the conventional baseline
}

// CompareTable builds the storage comparison the paper walks through in
// Sections 3.1-3.2: conventional 512KB 8-way, full-tag adaptive, 8-bit
// partial adaptive, conventional 9-way and 10-way upsizes, and the SBAR
// variants.
func CompareTable() []Report {
	base := DefaultParams(cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8})
	nine := DefaultParams(cache.Geometry{SizeBytes: 576 << 10, LineBytes: 64, Ways: 9})
	ten := DefaultParams(cache.Geometry{SizeBytes: 640 << 10, LineBytes: 64, Ways: 10})
	conv := base.Conventional()
	pct := func(total Bits) float64 { return 100 * (float64(total)/float64(conv) - 1) }
	return []Report{
		{"conventional 512KB 8-way", conv.KB(), 0},
		{"adaptive, full tags", base.AdaptiveTotal(2, 0).KB(), pct(base.AdaptiveTotal(2, 0))},
		{"adaptive, 8-bit partial tags", base.AdaptiveTotal(2, 8).KB(), pct(base.AdaptiveTotal(2, 8))},
		{"conventional 576KB 9-way", nine.Conventional().KB(), pct(nine.Conventional())},
		{"conventional 640KB 10-way", ten.Conventional().KB(), pct(ten.Conventional())},
		{"SBAR, 16 leaders, full tags", (conv + base.SBAROverhead(2, 16, 0)).KB(),
			base.OverheadPercent(base.SBAROverhead(2, 16, 0))},
		{"SBAR, 16 leaders, 8-bit partial", (conv + base.SBAROverhead(2, 16, 8)).KB(),
			base.OverheadPercent(base.SBAROverhead(2, 16, 8))},
	}
}
