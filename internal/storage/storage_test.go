package storage

import (
	"math"
	"testing"

	"repro/internal/cache"
)

func g512() cache.Geometry { return cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8} }

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f (±%.3f)", name, got, want, tol)
	}
}

// TestPaperSection31Numbers pins the exact storage walk-through of paper
// Section 3.1: 544KB conventional, 32KB main tags, 28KB per full parallel
// array, 1KB history, and the 598KB full-tag adaptive total (+9.9%).
func TestPaperSection31Numbers(t *testing.T) {
	p := DefaultParams(g512())
	approx(t, "main tags KB", p.MainTags().KB(), 32, 0.01)
	approx(t, "conventional KB", p.Conventional().KB(), 544, 0.01)
	approx(t, "parallel full KB", p.ParallelArray(0).KB(), 28, 0.01)
	approx(t, "history KB", p.History().KB(), 1, 0.001)
	approx(t, "adaptive full total KB", p.AdaptiveTotal(2, 0).KB(), 598, 0.01)
	approx(t, "adaptive full overhead %", p.OverheadPercent(p.AdaptiveOverhead(2, 0)), 9.9, 0.05)
}

// TestPaperSection32PartialTags pins Section 3.2: with 8-bit partial tags
// each parallel array shrinks to 12KB, the total to 566KB, the overhead to
// +4.0%; with 128-byte lines the overhead is 2.1%.
func TestPaperSection32PartialTags(t *testing.T) {
	p := DefaultParams(g512())
	approx(t, "parallel 8-bit KB", p.ParallelArray(8).KB(), 12, 0.01)
	approx(t, "adaptive 8-bit total KB", p.AdaptiveTotal(2, 8).KB(), 566, 0.01)
	approx(t, "adaptive 8-bit overhead %", p.OverheadPercent(p.AdaptiveOverhead(2, 8)), 4.0, 0.05)

	p128 := DefaultParams(cache.Geometry{SizeBytes: 512 << 10, LineBytes: 128, Ways: 8})
	approx(t, "128B-line overhead %", p128.OverheadPercent(p128.AdaptiveOverhead(2, 8)), 2.1, 0.05)
}

// TestPaperBiggerCaches pins the conventional alternatives of Section 3.1:
// 9-way 576KB costs 612KB (+12.5%) and 10-way 640KB costs 680KB (+25%).
func TestPaperBiggerCaches(t *testing.T) {
	base := DefaultParams(g512()).Conventional()
	nine := DefaultParams(cache.Geometry{SizeBytes: 576 << 10, LineBytes: 64, Ways: 9})
	ten := DefaultParams(cache.Geometry{SizeBytes: 640 << 10, LineBytes: 64, Ways: 10})
	approx(t, "9-way total KB", nine.Conventional().KB(), 612, 0.01)
	approx(t, "10-way total KB", ten.Conventional().KB(), 680, 0.01)
	approx(t, "9-way overhead %", 100*(float64(nine.Conventional())/float64(base)-1), 12.5, 0.05)
	approx(t, "10-way overhead %", 100*(float64(ten.Conventional())/float64(base)-1), 25.0, 0.05)
}

// TestPaperSBAROverheads pins Section 4.7: with 16 leader sets, SBAR costs
// 0.16% with full tags. (The paper quotes 0.09% for the partial-tag
// variant; the recoverable arithmetic from its own constants gives ~0.07%,
// so we assert the computed value and that it stays below the quoted one.)
func TestPaperSBAROverheads(t *testing.T) {
	p := DefaultParams(g512())
	full := p.OverheadPercent(p.SBAROverhead(2, 16, 0))
	part := p.OverheadPercent(p.SBAROverhead(2, 16, 8))
	approx(t, "SBAR full overhead %", full, 0.16, 0.005)
	approx(t, "SBAR partial overhead %", part, 0.072, 0.005)
	if part >= 0.09+1e-9 {
		t.Errorf("SBAR partial overhead %.3f%% exceeds the paper's 0.09%%", part)
	}
	if part >= full {
		t.Errorf("partial-tag SBAR (%.3f%%) not cheaper than full-tag (%.3f%%)", part, full)
	}
}

func TestTagBitsClampsToFullWidth(t *testing.T) {
	p := DefaultParams(g512())
	// Requested partial width beyond the architectural tag width must clamp.
	if got, want := p.ParallelArray(64), p.ParallelArray(0); got != want {
		t.Errorf("64-bit 'partial' array %v != full array %v", got, want)
	}
}

func TestSBARLeaderClamp(t *testing.T) {
	p := DefaultParams(cache.Geometry{SizeBytes: 4 * 4 * 64, LineBytes: 64, Ways: 4}) // 4 sets
	if got, want := p.SBAROverhead(2, 100, 0), p.SBAROverhead(2, 4, 0); got != want {
		t.Errorf("leader clamp failed: %v != %v", got, want)
	}
}

func TestBitsConversions(t *testing.T) {
	if Bits(8).Bytes() != 1 || Bits(9).Bytes() != 2 {
		t.Error("Bytes rounding wrong")
	}
	if Bits(8*1024*2).KB() != 2 {
		t.Error("KB conversion wrong")
	}
	if Bits(8*1024).String() != "1.00KB" {
		t.Errorf("String = %q", Bits(8*1024).String())
	}
}

func TestCompareTableShape(t *testing.T) {
	rows := CompareTable()
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Percent != 0 {
		t.Error("baseline row has nonzero overhead")
	}
	// Adaptive with partial tags must be far cheaper than adding a way.
	var part, nineWay float64
	for _, r := range rows {
		switch r.Label {
		case "adaptive, 8-bit partial tags":
			part = r.Percent
		case "conventional 576KB 9-way":
			nineWay = r.Percent
		}
	}
	if part <= 0 || nineWay <= 0 || part >= nineWay/2 {
		t.Errorf("partial adaptive %.2f%% not well under 9-way %.2f%%", part, nineWay)
	}
}
