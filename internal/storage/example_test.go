package storage_test

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/storage"
)

func ExampleParams() {
	// The paper's 512KB 8-way L2 with 64-byte lines (Section 3.1).
	p := storage.DefaultParams(cache.Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8})
	fmt.Printf("conventional: %v\n", p.Conventional())
	fmt.Printf("adaptive, full tags: %v (+%.1f%%)\n",
		p.AdaptiveTotal(2, 0), p.OverheadPercent(p.AdaptiveOverhead(2, 0)))
	fmt.Printf("adaptive, 8-bit partial: %v (+%.1f%%)\n",
		p.AdaptiveTotal(2, 8), p.OverheadPercent(p.AdaptiveOverhead(2, 8)))
	// Output:
	// conventional: 544.00KB
	// adaptive, full tags: 598.00KB (+9.9%)
	// adaptive, 8-bit partial: 566.00KB (+4.0%)
}
