// Package trace defines the instruction/memory reference stream that
// drives the simulators: a compact Record type, a streaming Source
// interface produced by workload generators, and a binary file format for
// recorded traces (the "trace acquisition" path — record once, re-simulate
// many times).
package trace

import "fmt"

// Kind classifies an instruction for the timing model's functional units.
type Kind uint8

// Instruction kinds. Latencies are assigned by the CPU model (paper
// Table 1: IALU 1, IMULT/IDIV 8, FPADD 4, FPDIV 16).
const (
	IntALU Kind = iota
	IntMul
	IntDiv
	FPAdd
	FPMul
	FPDiv
	Load
	Store
	Branch
	numKinds
)

var kindNames = [...]string{
	"IntALU", "IntMul", "IntDiv", "FPAdd", "FPMul", "FPDiv", "Load", "Store", "Branch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined instruction kind.
func (k Kind) Valid() bool { return k < numKinds }

// IsMem reports whether the kind carries a data memory address.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// NoReg marks an absent register operand.
const NoReg = -1

// NumRegs is the architectural register count for dependence tracking
// (integer and FP files folded together, as the timing model only needs
// producer/consumer edges).
const NumRegs = 64

// Record is one dynamic instruction. Fields are ordered widest-first so
// the struct packs into 32 bytes — recorded traces are replayed at
// hundreds of millions of records per run, and slice footprint is what
// bounds replay throughput.
type Record struct {
	PC     uint64 // instruction address (for I-cache and branch predictor)
	Addr   uint64 // data address for Load/Store
	Target uint64 // branch target for Branch
	Kind   Kind
	Taken  bool // branch outcome
	Src1   int8 // source registers, NoReg if absent
	Src2   int8
	Dst    int8 // destination register, NoReg if absent
}

// Source is a stream of dynamic instructions. Next fills rec and reports
// false when the stream is exhausted. Sources must be deterministic:
// Reset returns the stream to its beginning.
type Source interface {
	// Name identifies the workload in reports.
	Name() string
	// Next produces the next instruction into rec; it returns false at end
	// of stream, leaving rec unspecified.
	Next(rec *Record) bool
	// Reset rewinds the source to its first instruction.
	Reset()
}

// Limit wraps a source, truncating it to at most n instructions; a Source
// that ends earlier ends the limited stream too.
func Limit(src Source, n uint64) Source { return &limited{src: src, n: n} }

type limited struct {
	src  Source
	n    uint64
	seen uint64
}

func (l *limited) Name() string { return l.src.Name() }

func (l *limited) Next(rec *Record) bool {
	if l.seen >= l.n {
		return false
	}
	if !l.src.Next(rec) {
		return false
	}
	l.seen++
	return true
}

func (l *limited) Reset() {
	l.seen = 0
	l.src.Reset()
}

// SliceSource replays a fixed record slice; useful in tests.
type SliceSource struct {
	Label string
	Recs  []Record
	pos   int
}

// Name implements Source.
func (s *SliceSource) Name() string {
	if s.Label == "" {
		return "slice"
	}
	return s.Label
}

// Next implements Source.
func (s *SliceSource) Next(rec *Record) bool {
	if s.pos >= len(s.Recs) {
		return false
	}
	*rec = s.Recs[s.pos]
	s.pos++
	return true
}

// Reset implements Source.
func (s *SliceSource) Reset() { s.pos = 0 }

// Count drains a source and returns the number of instructions; primarily
// for tests and tooling.
func Count(src Source) uint64 {
	var rec Record
	var n uint64
	for src.Next(&rec) {
		n++
	}
	return n
}
