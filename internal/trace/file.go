package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	header:  8-byte magic "ADCTRC01", then the workload name as a uvarint
//	         length + bytes.
//	record:  kind (1 byte), flags (1 byte), PC uvarint, then depending on
//	         flags: data address uvarint, branch target uvarint; then the
//	         three register operands packed as bytes (0xFF = NoReg).
//
// Varints keep streaming traces compact (most addresses are small deltas
// of a working-set base); the format favors simplicity over maximal
// density.

var magic = [8]byte{'A', 'D', 'C', 'T', 'R', 'C', '0', '1'}

const (
	flagTaken = 1 << iota
	flagHasAddr
	flagHasTarget
)

// Writer streams records to a binary trace file.
type Writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   uint64
}

// NewWriter writes a trace header (with the workload name) and returns a
// Writer.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	tw := &Writer{w: bw}
	if err := tw.uvarint(uint64(len(name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, fmt.Errorf("trace: writing name: %w", err)
	}
	return tw, nil
}

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

func regByte(r int8) byte {
	if r == NoReg {
		return 0xFF
	}
	return byte(r)
}

func byteReg(b byte) int8 {
	if b == 0xFF {
		return NoReg
	}
	return int8(b)
}

// Write appends one record.
func (w *Writer) Write(rec *Record) error {
	if !rec.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", rec.Kind)
	}
	var flags byte
	if rec.Taken {
		flags |= flagTaken
	}
	if rec.Kind.IsMem() {
		flags |= flagHasAddr
	}
	if rec.Kind == Branch {
		flags |= flagHasTarget
	}
	if err := w.w.WriteByte(byte(rec.Kind)); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := w.w.WriteByte(flags); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := w.uvarint(rec.PC); err != nil {
		return err
	}
	if flags&flagHasAddr != 0 {
		if err := w.uvarint(rec.Addr); err != nil {
			return err
		}
	}
	if flags&flagHasTarget != 0 {
		if err := w.uvarint(rec.Target); err != nil {
			return err
		}
	}
	for _, r := range [...]int8{rec.Src1, rec.Src2, rec.Dst} {
		if err := w.w.WriteByte(regByte(r)); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	w.n++
	return nil
}

// Count returns how many records have been written.
func (w *Writer) Count() uint64 { return w.n }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Reader streams records from a binary trace file. It implements Source
// except for Reset (files are one-pass; re-open to replay).
type Reader struct {
	r    *bufio.Reader
	name string
	err  error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic: not a trace file")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	return &Reader{r: br, name: string(nameBuf)}, nil
}

// Name returns the workload name recorded in the header.
func (r *Reader) Name() string { return r.name }

// Err returns the first error encountered by Read (nil at clean EOF).
func (r *Reader) Err() error { return r.err }

// Read fills rec with the next record, reporting false at end of file or
// on corruption (check Err to distinguish).
func (r *Reader) Read(rec *Record) bool {
	kindB, err := r.r.ReadByte()
	if err == io.EOF {
		return false
	}
	if err != nil {
		r.err = fmt.Errorf("trace: %w", err)
		return false
	}
	fail := func(what string, err error) bool {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("trace: truncated record (%s): %w", what, err)
		return false
	}
	if !Kind(kindB).Valid() {
		r.err = fmt.Errorf("trace: invalid kind %d", kindB)
		return false
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return fail("flags", err)
	}
	rec.Kind = Kind(kindB)
	rec.Taken = flags&flagTaken != 0
	if rec.PC, err = binary.ReadUvarint(r.r); err != nil {
		return fail("pc", err)
	}
	rec.Addr, rec.Target = 0, 0
	if flags&flagHasAddr != 0 {
		if rec.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return fail("addr", err)
		}
	}
	if flags&flagHasTarget != 0 {
		if rec.Target, err = binary.ReadUvarint(r.r); err != nil {
			return fail("target", err)
		}
	}
	var regs [3]byte
	if _, err := io.ReadFull(r.r, regs[:]); err != nil {
		return fail("regs", err)
	}
	rec.Src1, rec.Src2, rec.Dst = byteReg(regs[0]), byteReg(regs[1]), byteReg(regs[2])
	return true
}
