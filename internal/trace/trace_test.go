package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindStringAndValid(t *testing.T) {
	if Load.String() != "Load" || Branch.String() != "Branch" {
		t.Error("kind names wrong")
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) reported valid")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind string %q", Kind(200).String())
	}
	if !Load.IsMem() || !Store.IsMem() || IntALU.IsMem() {
		t.Error("IsMem wrong")
	}
}

func randRecord(rng *rand.Rand) Record {
	k := Kind(rng.Intn(int(numKinds)))
	rec := Record{
		PC:   rng.Uint64() % (1 << 44),
		Kind: k,
		Src1: int8(rng.Intn(NumRegs)),
		Src2: NoReg,
		Dst:  int8(rng.Intn(NumRegs)),
	}
	if rng.Intn(2) == 0 {
		rec.Src2 = int8(rng.Intn(NumRegs))
	}
	if k.IsMem() {
		rec.Addr = rng.Uint64() % (1 << 40)
	}
	if k == Branch {
		rec.Target = rng.Uint64() % (1 << 44)
		rec.Taken = rng.Intn(2) == 0
		rec.Dst = NoReg
	}
	return rec
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := make([]Record, 5000)
	for i := range recs {
		recs[i] = randRecord(rng)
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, "roundtrip-test")
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5000 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "roundtrip-test" {
		t.Fatalf("Name = %q", r.Name())
	}
	var got Record
	for i := range recs {
		if !r.Read(&got) {
			t.Fatalf("EOF at record %d: %v", i, r.Err())
		}
		if got != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got, recs[i])
		}
	}
	if r.Read(&got) {
		t.Fatal("read past end")
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF produced error %v", r.Err())
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(pc, addr, target uint64, kindRaw, s1, s2, d uint8, taken bool) bool {
		rec := Record{
			PC:   pc % (1 << 48),
			Kind: Kind(kindRaw % uint8(numKinds)),
			Src1: int8(s1 % NumRegs),
			Src2: int8(s2 % NumRegs),
			Dst:  int8(d % NumRegs),
		}
		if rec.Kind.IsMem() {
			rec.Addr = addr % (1 << 48)
		}
		if rec.Kind == Branch {
			rec.Target = target % (1 << 48)
			rec.Taken = taken
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "p")
		if err != nil {
			return false
		}
		if err := w.Write(&rec); err != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var got Record
		return r.Read(&got) && got == rec && !r.Read(&got) && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file....."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: Load, Addr: 0x123456, PC: 0x400000, Src1: 1, Src2: NoReg, Dst: 2}
	if err := w.Write(&rec); err != nil || w.Flush() != nil {
		t.Fatal("write failed")
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if r.Read(&got) {
		t.Fatal("truncated record read successfully")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestWriterRejectsInvalidKind(t *testing.T) {
	w, err := NewWriter(io.Discard, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&Record{Kind: Kind(99)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestLimit(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{Kind: IntALU, PC: uint64(i)}
	}
	src := Limit(&SliceSource{Label: "s", Recs: recs}, 4)
	if got := Count(src); got != 4 {
		t.Fatalf("limited count = %d, want 4", got)
	}
	src.Reset()
	if got := Count(src); got != 4 {
		t.Fatalf("count after Reset = %d, want 4", got)
	}
	// Limit beyond the underlying length stops at the source's end.
	long := Limit(&SliceSource{Recs: recs}, 100)
	if got := Count(long); got != 10 {
		t.Fatalf("over-limit count = %d, want 10", got)
	}
	if long.Name() != "slice" {
		t.Fatalf("Name = %q", long.Name())
	}
}

func TestSliceSource(t *testing.T) {
	s := &SliceSource{Recs: []Record{{PC: 1}, {PC: 2}}}
	var rec Record
	if !s.Next(&rec) || rec.PC != 1 {
		t.Fatal("first record wrong")
	}
	if !s.Next(&rec) || rec.PC != 2 {
		t.Fatal("second record wrong")
	}
	if s.Next(&rec) {
		t.Fatal("read past end")
	}
	s.Reset()
	if !s.Next(&rec) || rec.PC != 1 {
		t.Fatal("Reset did not rewind")
	}
}

// failWriter errors after n bytes, exercising writer error paths.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	// The bufio layer absorbs small writes, so errors surface at Flush (or
	// once the buffer spills).
	w, err := NewWriter(&failWriter{left: 3}, "x")
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: Load, Addr: 1, PC: 2, Src1: NoReg, Src2: NoReg, Dst: NoReg}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("flush over a failing writer reported success")
	}
	// A writer that dies mid-stream must eventually fail Write too.
	w2, err := NewWriter(&failWriter{left: 64}, "x")
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for i := 0; i < 64; i++ {
		if w2.Write(&rec) != nil || w2.Flush() != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("exhausted writer never reported an error")
	}
}

func TestReaderName(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "my-workload")
	_ = w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "my-workload" {
		t.Fatalf("Name = %q", r.Name())
	}
}
