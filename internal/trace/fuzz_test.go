package trace

import (
	"bytes"
	"testing"
)

// FuzzReaderRobustness feeds arbitrary bytes to the trace reader: it must
// never panic and must either parse records cleanly or surface an error.
func FuzzReaderRobustness(f *testing.F) {
	// Seed with a valid single-record trace and some mutations.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "seed")
	if err != nil {
		f.Fatal(err)
	}
	rec := Record{Kind: Load, PC: 0x400000, Addr: 0x1234, Src1: 1, Src2: NoReg, Dst: 2}
	if err := w.Write(&rec); err != nil || w.Flush() != nil {
		f.Fatal("seed trace")
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("ADCTRC01garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		var rec Record
		n := 0
		for r.Read(&rec) {
			if !rec.Kind.Valid() {
				t.Fatalf("reader produced invalid kind %d", rec.Kind)
			}
			if n++; n > 1<<20 {
				t.Fatal("reader produced implausibly many records")
			}
		}
		// Either clean EOF or a reported error; both are acceptable.
		_ = r.Err()
	})
}

// FuzzRoundTrip checks write-then-read identity over arbitrary record
// field values (normalized into the valid domain).
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), uint64(0x1000), uint64(0x2000), uint8(6), int8(3), int8(-1), int8(7), true)
	f.Fuzz(func(t *testing.T, pc, addr, target uint64, kind uint8, s1, s2, d int8, taken bool) {
		norm := func(r int8) int8 {
			if r < 0 {
				return NoReg
			}
			return r % NumRegs
		}
		rec := Record{
			PC:   pc,
			Kind: Kind(kind % uint8(numKinds)),
			Src1: norm(s1), Src2: norm(s2), Dst: norm(d),
		}
		if rec.Kind.IsMem() {
			rec.Addr = addr
		}
		if rec.Kind == Branch {
			rec.Target = target
			rec.Taken = taken
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(&rec); err != nil || w.Flush() != nil {
			t.Fatal("write failed")
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var got Record
		if !r.Read(&got) {
			t.Fatalf("read failed: %v", r.Err())
		}
		if got != rec {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	})
}
