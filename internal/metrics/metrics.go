// Package metrics is the dependency-free observability core of the
// serving stack: atomic counters and gauges plus bounded-error
// log-bucketed latency histograms, exported as Prometheus text
// exposition.
//
// The design constraint is the same one the adaptive hot path lives
// under: recording must cost nothing but a handful of atomic adds — no
// allocation, no lock, no formatting. All formatting happens at scrape
// time, and a scrape never blocks a recorder: every read is an atomic
// load, so snapshotting N shards' worth of state costs N loads, not N
// lock acquisitions held simultaneously.
//
// Histograms bucket values on a log scale with histSubCount linear
// sub-buckets per octave, so any recorded value lands in a bucket whose
// width is at most 1/histSubCount (3.125%) of its lower bound. Quantile
// extraction returns a bucket upper bound clamped to the observed
// maximum, making reported percentiles overestimates by at most that
// relative error — the bounded-error contract monitoring needs to trust
// a p99.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// --- Counter and Gauge -----------------------------------------------------

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed level (active connections, queue
// depth). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// --- Histogram -------------------------------------------------------------

// Histogram bucket layout: values below histSubCount get exact unit
// buckets; above, each power-of-two octave is split into histSubCount
// linear sub-buckets, so bucket width / bucket lower bound is at most
// 2^-histSubBits. Values are recorded in nanoseconds; 64-bit range is
// covered without clamping.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 sub-buckets per octave
	// histBuckets covers indexes up to bucketIndex(math.MaxUint64) =
	// (63-histSubBits)*histSubCount + 2*histSubCount - 1.
	histBuckets = (64-histSubBits)*histSubCount + histSubCount

	// HistogramRelativeError is the documented bound: a reported bucket
	// bound (and therefore any Quantile) overestimates the true value by
	// at most this fraction.
	HistogramRelativeError = 1.0 / histSubCount
)

// bucketIndex maps a value to its bucket. Monotone in v.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // position of the leading one; >= histSubBits
	// Top histSubBits+1 bits of v, leading one included: in
	// [histSubCount, 2*histSubCount).
	return (e-histSubBits)*histSubCount + int(v>>uint(e-histSubBits))
}

// bucketLower returns the smallest value mapping to bucket idx.
func bucketLower(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	oct := idx / histSubCount // >= 1
	sub := idx % histSubCount
	return uint64(histSubCount+sub) << uint(oct-1)
}

// bucketUpper returns the largest value mapping to bucket idx.
func bucketUpper(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	oct := idx / histSubCount
	return bucketLower(idx) + 1<<uint(oct-1) - 1
}

// Histogram is a fixed-size concurrent latency histogram. The zero value
// is NOT ready to use — obtain one from Registry.Histogram (the counts
// array makes stack copies expensive, so histograms live behind
// pointers).
//
// Record is the zero-allocation hot path: one bucket increment plus
// count, sum, and max maintenance, all atomic.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds
}

// Record adds one observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) { h.RecordNS(int64(d)) }

// RecordNS adds one observation of ns nanoseconds. It performs no
// allocation and takes no lock (cmd/benchregress enforces the former).
func (h *Histogram) RecordNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest recorded observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// recorded values, at most HistogramRelativeError above the true value
// and never above Max. It returns 0 for an empty histogram. Concurrent
// Records may skew an in-flight Quantile by the racing observations;
// callers wanting exactness quiesce first.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			upper := bucketUpper(i)
			if m := h.max.Load(); upper > m {
				upper = m
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.max.Load()) // racing records; max is the honest answer
}

// --- Registry --------------------------------------------------------------

// kind strings double as the Prometheus TYPE keywords.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

type entry struct {
	family string // metric (family) name
	labels string // label pairs without braces, e.g. `op="get"`; may be ""
	help   string
	kind   string

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	histRaw   bool // expose bucket bounds/sum in raw units, not ns→seconds
	collector func(*Expo)
}

// Registry holds a set of named metrics and renders them as Prometheus
// text exposition. Register families in contiguous runs: all series of
// one family (same name, different labels) must be registered
// consecutively, as the format requires their samples grouped under one
// TYPE header. Registration methods panic on a duplicate series or an
// interleaved family — both are wiring bugs, not runtime conditions.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	series  map[string]struct{} // family + "{" + labels: duplicate guard
	closed  map[string]struct{} // families that may not reopen
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]struct{}),
		closed: make(map[string]struct{}),
	}
}

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := e.family + "{" + e.labels
	if _, dup := r.series[key]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %s{%s}", e.family, e.labels))
	}
	if n := len(r.entries); n == 0 || r.entries[n-1].family != e.family {
		if _, was := r.closed[e.family]; was {
			panic(fmt.Sprintf("metrics: family %s registered non-contiguously", e.family))
		}
		if n > 0 {
			r.closed[r.entries[n-1].family] = struct{}{}
		}
	} else if r.entries[n-1].kind != e.kind {
		panic(fmt.Sprintf("metrics: family %s mixes kinds %s and %s", e.family, r.entries[n-1].kind, e.kind))
	}
	r.series[key] = struct{}{}
	r.entries = append(r.entries, e)
}

// Counter registers and returns a counter series. labels is either empty
// or Prometheus label pairs without braces (`op="get"`).
func (r *Registry) Counter(family, labels, help string) *Counter {
	c := &Counter{}
	r.add(&entry{family: family, labels: labels, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(family, labels, help string) *Gauge {
	g := &Gauge{}
	r.add(&entry{family: family, labels: labels, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a histogram series. Observations are
// nanoseconds; the exposition renders bounds and sum in seconds.
func (r *Registry) Histogram(family, labels, help string) *Histogram {
	h := &Histogram{}
	r.add(&entry{family: family, labels: labels, help: help, kind: kindHistogram, hist: h})
	return h
}

// HistogramUnitless registers and returns a histogram series whose
// observations are dimensionless counts (batch sizes, queue depths)
// recorded via RecordNS; the exposition renders bounds and sum in the
// recorded unit instead of converting nanoseconds to seconds.
func (r *Registry) HistogramUnitless(family, labels, help string) *Histogram {
	h := &Histogram{}
	r.add(&entry{family: family, labels: labels, help: help, kind: kindHistogram, hist: h, histRaw: true})
	return h
}

// Collect registers a callback that contributes exposition at scrape
// time — for state that lives elsewhere (per-shard cache counters) and
// is snapshotted on demand rather than double-counted into static
// metrics. The callback must emit complete families via the Expo helper.
func (r *Registry) Collect(f func(*Expo)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.entries); n > 0 {
		r.closed[r.entries[n-1].family] = struct{}{}
	}
	r.entries = append(r.entries, &entry{kind: "collector", collector: f})
}

// WritePrometheus renders every registered metric in text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	e := newExpo(w)
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	lastFamily := ""
	for _, en := range entries {
		if en.collector != nil {
			en.collector(e)
			lastFamily = ""
			continue
		}
		if en.family != lastFamily {
			e.Family(en.family, en.kind, en.help)
			lastFamily = en.family
		}
		switch en.kind {
		case kindCounter:
			e.Sample(en.family, en.labels, float64(en.counter.Load()))
		case kindGauge:
			e.Sample(en.family, en.labels, float64(en.gauge.Load()))
		case kindHistogram:
			writeHistogram(e, en.family, en.labels, en.hist, en.histRaw)
		}
	}
	return e.Flush()
}

// Handler returns an http.Handler serving the exposition — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// writeHistogram renders one histogram series: cumulative le buckets at
// power-of-two boundaries spanning the observed range (the full
// sub-octave resolution stays queryable via Quantile; the exposition
// trades it for a bounded line count), then +Inf, _sum, and _count.
// Bucket counts come from one pass over the array, so the +Inf bucket
// always equals _count even while records race the scrape. raw exposes
// the recorded units as-is; otherwise nanoseconds render as seconds.
func writeHistogram(e *Expo, family, labels string, h *Histogram, raw bool) {
	scale := 1e9
	if raw {
		scale = 1
	}
	var counts [histBuckets]uint64
	total := uint64(0)
	lo, hi := -1, -1
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		counts[i] = c
		total += c
		if lo < 0 {
			lo = i
		}
		hi = i
	}
	sumNS := h.sum.Load()

	if total > 0 {
		// Octave exponents covering [lower(lo), upper(hi)]:
		// le = 2^k nanoseconds for k in [kLo, kHi].
		kLo := bits.Len64(bucketLower(lo))
		kHi := bits.Len64(bucketUpper(hi))
		var cum uint64
		next := 0 // first bucket not yet accumulated
		for k := kLo; k <= kHi; k++ {
			bound := uint64(1) << uint(k)
			stop := bucketIndex(bound) // buckets below `stop` hold values < bound... and bucket of bound-1 ends at bound-1
			for ; next < stop && next < histBuckets; next++ {
				cum += counts[next]
			}
			e.SampleLE(family, labels, float64(bound)/scale, cum)
		}
	}
	e.SampleLE(family, labels, math.Inf(1), total)
	e.Sample(family+"_sum", labels, float64(sumNS)/scale)
	e.Sample(family+"_count", labels, float64(total))
}

// --- Exposition writing ----------------------------------------------------

// Expo writes Prometheus text exposition. Collectors receive one to emit
// families the registry does not own; all methods buffer, and errors
// surface once at Flush.
type Expo struct {
	bw *bufio.Writer
}

func newExpo(w io.Writer) *Expo { return &Expo{bw: bufio.NewWriterSize(w, 4096)} }

// Family emits the HELP and TYPE headers for a metric family. kind is
// "counter", "gauge", or "histogram".
func (e *Expo) Family(name, kind, help string) {
	e.bw.WriteString("# HELP ")
	e.bw.WriteString(name)
	e.bw.WriteByte(' ')
	e.bw.WriteString(help)
	e.bw.WriteString("\n# TYPE ")
	e.bw.WriteString(name)
	e.bw.WriteByte(' ')
	e.bw.WriteString(kind)
	e.bw.WriteByte('\n')
}

// Sample emits one sample line. labels is either empty or label pairs
// without braces.
func (e *Expo) Sample(name, labels string, v float64) {
	e.bw.WriteString(name)
	if labels != "" {
		e.bw.WriteByte('{')
		e.bw.WriteString(labels)
		e.bw.WriteByte('}')
	}
	e.bw.WriteByte(' ')
	e.bw.WriteString(formatValue(v))
	e.bw.WriteByte('\n')
}

// SampleLE emits one cumulative histogram bucket line for family, with
// the le label appended after any series labels.
func (e *Expo) SampleLE(family, labels string, le float64, cum uint64) {
	e.bw.WriteString(family)
	e.bw.WriteString("_bucket{")
	if labels != "" {
		e.bw.WriteString(labels)
		e.bw.WriteByte(',')
	}
	e.bw.WriteString(`le="`)
	if math.IsInf(le, 1) {
		e.bw.WriteString("+Inf")
	} else {
		e.bw.WriteString(formatValue(le))
	}
	e.bw.WriteString(`"} `)
	e.bw.WriteString(strconv.FormatUint(cum, 10))
	e.bw.WriteByte('\n')
}

// Flush drains the buffer, returning the first write error.
func (e *Expo) Flush() error { return e.bw.Flush() }

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
