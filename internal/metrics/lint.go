package metrics

// Exposition linting. Lint is exported (rather than living in a _test
// file) because every layer that serves or scrapes the exposition —
// kvserver's /metrics tests, adaptcached's handler test, cmd/kvchaos's
// metric-invariant gate — validates the same contract: parseable
// Prometheus text, declared types, and internally consistent histograms.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// histSeries accumulates one histogram series' bucket lines for
// consistency checking.
type histSeries struct {
	lastLE  float64
	lastCum float64
	infCum  float64
	hasInf  bool
	count   float64
	hasCnt  bool
}

// Lint validates Prometheus text exposition: every sample belongs to a
// family with a prior TYPE declaration, names and values parse, no
// series appears twice, and histogram series have strictly increasing le
// bounds, non-decreasing cumulative counts, and a +Inf bucket equal to
// their _count. It returns the first violation found, or nil.
//
// The parser covers the exposition this package writes (it does not
// handle escaped quotes or commas inside label values, which no metric
// here produces).
func Lint(data []byte) error {
	types := make(map[string]string)
	seen := make(map[string]struct{})
	hists := make(map[string]*histSeries)

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, kind := fields[0], fields[1]
			if kind != kindCounter && kind != kindGauge && kind != kindHistogram {
				return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, kind, name)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unknown comment form: %q", lineNo, line)
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		series := name + "{" + labels + "}"
		if _, dup := seen[series]; dup {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = struct{}{}

		family, part := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == kindHistogram {
				family, part = base, suffix
				break
			}
		}
		kind, declared := types[family]
		if !declared {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if kind == kindHistogram && part == "" {
			return fmt.Errorf("line %d: bare sample %s for histogram family", lineNo, name)
		}
		if kind != kindHistogram && part != "" {
			part = "" // _sum/_count suffix on a non-histogram name: plain sample
		}
		if kind != kindHistogram {
			continue
		}

		le, rest := splitLE(labels)
		key := family + "{" + rest + "}"
		hs := hists[key]
		if hs == nil {
			hs = &histSeries{lastLE: math.Inf(-1)}
			hists[key] = hs
		}
		switch part {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("line %d: bucket without le label: %q", lineNo, line)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("line %d: bad le %q", lineNo, le)
			}
			if bound <= hs.lastLE {
				return fmt.Errorf("line %d: le %q not increasing for %s", lineNo, le, key)
			}
			if value < hs.lastCum {
				return fmt.Errorf("line %d: cumulative count decreased for %s le=%s", lineNo, key, le)
			}
			hs.lastLE, hs.lastCum = bound, value
			if math.IsInf(bound, 1) {
				hs.infCum, hs.hasInf = value, true
			}
		case "_count":
			hs.count, hs.hasCnt = value, true
		}
	}

	for key, hs := range hists {
		if !hs.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if !hs.hasCnt {
			return fmt.Errorf("histogram %s has no _count", key)
		}
		if hs.infCum != hs.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, hs.infCum, hs.count)
		}
	}
	return nil
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces: %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		i := strings.IndexByte(line, ' ')
		if i < 0 {
			return "", "", 0, fmt.Errorf("no value: %q", line)
		}
		name, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, labels, value, nil
}

// splitLE extracts the le label from a label string, returning the rest.
func splitLE(labels string) (le, rest string) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) && strings.HasSuffix(p, `"`) {
			le = p[len(`le="`) : len(p)-1]
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
