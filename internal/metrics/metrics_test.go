package metrics

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: every value lands in a bucket that contains it,
// adjacent buckets tile the value space without gaps, and the bucket
// width honors the documented relative-error bound.
func TestBucketRoundTrip(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	values := []uint64{0, 1, 31, 32, 33, 63, 64, 1023, 1024, 1 << 20, 1<<63 - 1, 1 << 63, math.MaxUint64}
	for i := 0; i < 10000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		values = append(values, rng>>(rng%64))
	}
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		lo, hi := bucketLower(idx), bucketUpper(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d: [%d, %d]", v, idx, lo, hi)
		}
		if lo > 0 {
			if width := float64(hi-lo+1) / float64(lo); width > HistogramRelativeError*1.0001 && hi != lo {
				t.Fatalf("bucket %d [%d,%d]: relative width %.4f exceeds bound %.4f",
					idx, lo, hi, width, HistogramRelativeError)
			}
		}
	}
	// Tiling: consecutive buckets meet exactly.
	for idx := 0; idx < histBuckets-1; idx++ {
		if bucketLower(idx+1) != bucketUpper(idx)+1 {
			t.Fatalf("gap between buckets %d and %d: upper %d, next lower %d",
				idx, idx+1, bucketUpper(idx), bucketLower(idx+1))
		}
	}
}

// TestQuantileBounds: quantiles of a known uniform distribution come back
// within the documented relative error, from above, and never above Max.
func TestQuantileBounds(t *testing.T) {
	var h Histogram
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if h.Max() != n*time.Microsecond {
		t.Fatalf("Max = %v, want %v", h.Max(), n*time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		got := h.Quantile(q)
		exact := time.Duration(q*n) * time.Microsecond
		if got < exact {
			t.Errorf("Quantile(%v) = %v below exact %v (must overestimate)", q, got, exact)
		}
		if limit := time.Duration(float64(exact) * (1 + HistogramRelativeError)); got > limit {
			t.Errorf("Quantile(%v) = %v exceeds error bound %v", q, got, limit)
		}
		if got > h.Max() {
			t.Errorf("Quantile(%v) = %v above Max %v", q, got, h.Max())
		}
	}
	var empty Histogram
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

// TestRecordZeroAllocs is the tentpole contract: recording must not
// allocate. cmd/benchregress enforces the same property as a CI row.
func TestRecordZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "", "test")
	c := reg.Counter("test_ops_total", "", "test")
	g := reg.Gauge("test_active", "", "test")
	var rng uint64 = 1
	if n := testing.AllocsPerRun(10000, func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		h.RecordNS(int64(rng % 10_000_000))
	}); n != 0 {
		t.Errorf("Histogram.RecordNS allocates %.2f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10000, func() { c.Inc(); g.Add(1); g.Add(-1) }); n != 0 {
		t.Errorf("Counter/Gauge ops allocate %.2f/op, want 0", n)
	}
}

// TestPrometheusExposition: a registry with every metric kind, labeled
// families, and a collector renders exposition that Lint accepts and
// that contains the expected series.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app_requests_total", "", "requests served")
	reg.Counter("app_errors_total", `kind="io"`, "errors by kind")
	reg.Counter("app_errors_total", `kind="proto"`, "errors by kind")
	g := reg.Gauge("app_conns_active", "", "open connections")
	hGet := reg.Histogram("app_op_latency_seconds", `op="get"`, "op service time")
	hSet := reg.Histogram("app_op_latency_seconds", `op="set"`, "op service time")
	reg.Collect(func(e *Expo) {
		e.Family("app_shard_items", "gauge", "resident items per shard")
		for i := 0; i < 3; i++ {
			e.Sample("app_shard_items", fmt.Sprintf(`shard="%d"`, i), float64(10*i))
		}
	})

	c.Add(42)
	g.Set(7)
	for i := 1; i <= 1000; i++ {
		hGet.Record(time.Duration(i) * 50 * time.Microsecond)
	}
	hSet.Record(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("Lint rejected own exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE app_requests_total counter",
		"app_requests_total 42",
		`app_errors_total{kind="proto"} 0`,
		"app_conns_active 7",
		"# TYPE app_op_latency_seconds histogram",
		`app_op_latency_seconds_bucket{op="get",le="+Inf"} 1000`,
		`app_op_latency_seconds_count{op="get"} 1000`,
		`app_op_latency_seconds_count{op="set"} 1`,
		`app_shard_items{shard="2"} 20`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The histogram sum must be the true sum in seconds: 1000 samples of
	// i*50us sum to 25.025 seconds.
	if !strings.Contains(out, `app_op_latency_seconds_sum{op="get"} 25.025`) {
		t.Errorf("histogram sum wrong:\n%s", out)
	}
}

// TestLintCatchesViolations: the validator actually rejects malformed
// exposition, so passing it means something.
func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"sample without TYPE", "orphan_metric 1\n"},
		{"bad value", "# TYPE m counter\nm notanumber\n"},
		{"bad name", "# TYPE m counter\nm 1\n0bad 2\n"},
		{"duplicate series", "# TYPE m counter\nm 1\nm 2\n"},
		{"histogram without +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"non-cumulative histogram", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"inf bucket != count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n"},
		{"le not increasing", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Lint([]byte(tc.data)); err == nil {
				t.Errorf("Lint accepted %s:\n%s", tc.name, tc.data)
			}
		})
	}
}

// TestRegistryWiringPanics: duplicate series and interleaved families are
// wiring bugs caught at registration.
func TestRegistryWiringPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate series", func() {
		reg := NewRegistry()
		reg.Counter("m", "", "x")
		reg.Counter("m", "", "x")
	})
	mustPanic("interleaved family", func() {
		reg := NewRegistry()
		reg.Counter("a", `k="1"`, "x")
		reg.Counter("b", "", "x")
		reg.Counter("a", `k="2"`, "x")
	})
	mustPanic("mixed kinds in family", func() {
		reg := NewRegistry()
		reg.Counter("m", `k="1"`, "x")
		reg.Gauge("m", `k="2"`, "x")
	})
}

// TestConcurrentRecordAndScrape: records race scrapes under -race; totals
// must come out exact and every mid-flight exposition must lint.
func TestConcurrentRecordAndScrape(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_lat_seconds", "", "t")
	c := reg.Counter("t_ops_total", "", "t")
	const workers, per = 8, 20000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			if err := Lint(buf.Bytes()); err != nil {
				t.Errorf("mid-flight exposition invalid: %v", err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := id*2654435761 + 1
			for i := 0; i < per; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				h.RecordNS(int64(rng % 1_000_000))
				c.Inc()
			}
		}(uint64(w))
	}
	// Wait for recorders, then stop the scraper.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}
