package kvserver

// Tests for the batched-get dispatch and vectored reply paths: pipelined
// bursts mixing single gets, multi-key gets, sets, deletes, and protocol
// errors must reply byte-exactly in request order; large values must go
// out vectored without disturbing that order; the multiget and
// batched-flush metrics must account every key.

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/kvproto"
)

// TestPipelinedOrderingMixedBurst writes one TCP segment interleaving
// every op kind — including a multi-key get spanning both shards, a
// value large enough to take the vectored path, and a recoverable
// protocol error mid-burst — and asserts the reply stream is byte-exact:
// same ops, same order, no coalescing artifacts.
func TestPipelinedOrderingMixedBurst(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache(), ReadTimeout: 30 * time.Second})
	defer srv.Shutdown(ln, time.Second)

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	big := strings.Repeat("B", 8192) // >= vectorMin: vectored reply path
	burst := "set a 1 0 2\r\naa\r\n" +
		"set b 2 0 2\r\nbb\r\n" +
		"set big 3 0 8192\r\n" + big + "\r\n" +
		"get a\r\n" +
		"get a b nope\r\n" + // multiget: two hits + a miss, one END
		"get nope\r\n" +
		"frobnicate\r\n" + // recoverable error inside a get run
		"get big a\r\n" + // vectored value then buffered value, one END
		"delete a\r\n" +
		"get a b\r\n" + // a is gone now: order proves run flushed first
		"get b\r\nquit\r\n"
	want := "STORED\r\n" +
		"STORED\r\n" +
		"STORED\r\n" +
		"VALUE a 1 2\r\naa\r\nEND\r\n" +
		"VALUE a 1 2\r\naa\r\nVALUE b 2 2\r\nbb\r\nEND\r\n" +
		"END\r\n" +
		"CLIENT_ERROR unknown command\r\n" +
		"VALUE big 3 8192\r\n" + big + "\r\nVALUE a 1 2\r\naa\r\nEND\r\n" +
		"DELETED\r\n" +
		"VALUE b 2 2\r\nbb\r\nEND\r\n" +
		"VALUE b 2 2\r\nbb\r\nEND\r\n"

	vecBefore := srv.NetCounters().VectoredWrites
	if _, err := conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(conn) // quit closes the stream after the last reply
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte(want)) {
		t.Fatalf("reply stream out of order or corrupted:\ngot  %q\nwant %q", got, want)
	}
	if d := srv.NetCounters().VectoredWrites - vecBefore; d != 1 {
		t.Errorf("vectored writes during burst = %d, want exactly 1 (the 8KB value)", d)
	}
	// The get latency histogram must count keys, not requests: 10 keys
	// were looked up (a; a,b,nope; nope; big,a; a,b; b) so the cache's
	// own op counter and the histogram agree.
	if gets := srv.OpLatency("get").Count; gets != 10 {
		t.Errorf("get latency samples = %d, want 10 (one per key)", gets)
	}
	if cacheGets := srv.Cache().Stats().Gets; cacheGets != 10 {
		t.Errorf("cache gets = %d, want 10", cacheGets)
	}
}

// TestMultigetMetrics drives the typed client's MultiGet and checks the
// serving-path instruments: per-key latency samples, the batched-ops
// histogram, and the optimistic/vectored counters appearing in both the
// stats command and the Prometheus exposition.
func TestMultigetMetrics(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache()})
	defer srv.Shutdown(ln, time.Second)

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := make([][]byte, 8)
	for i := range keys {
		k := []byte{'k', byte('0' + i)}
		keys[i] = k
		if i%2 == 0 {
			if err := c.Set(k, uint32(i), 0, []byte("v")); err != nil {
				t.Fatalf("set %d: %v", i, err)
			}
		}
	}
	hits := 0
	if err := c.MultiGet(keys, func(i int, flags uint32, val []byte) {
		hits++
		if i%2 != 0 || string(val) != "v" || flags != uint32(i) {
			t.Errorf("unexpected hit i=%d flags=%d val=%q", i, flags, val)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if hits != 4 {
		t.Fatalf("multiget hits = %d, want 4", hits)
	}
	if gets := srv.OpLatency("get").Count; gets != 8 {
		t.Errorf("get latency samples = %d, want 8 (one per multiget key)", gets)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"optimistic_get_fastpath", "optimistic_get_fallback",
		"pending_hits_dropped", "vectored_writes"} {
		if _, ok := st[k]; !ok {
			t.Errorf("stats reply missing %q", k)
		}
	}
	if st["cmd_get"] != "8" {
		t.Errorf("stats cmd_get = %q, want 8", st["cmd_get"])
	}
	// smallCache has Sets>1 and no StrictOrder, so every one of the 8
	// batched gets must have resolved on the optimistic path.
	if st["optimistic_get_fastpath"] != "8" {
		t.Errorf("optimistic_get_fastpath = %q, want 8", st["optimistic_get_fastpath"])
	}

	var expo bytes.Buffer
	if err := srv.WriteMetrics(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	for _, fam := range []string{
		"adaptivekv_optimistic_get_fastpath_total 8",
		"adaptivekv_optimistic_get_fallback_total 0",
		"adaptivekv_pending_hits_dropped_total 0",
		"kv_vectored_writes_total 0",
		"kv_batched_ops_per_flush_count",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
	// Each flush coalesced at least one replying op; the histogram's
	// sample count must match the number of explicit flushes with work.
	if h := srv.m.batchedOps; h.Count() == 0 {
		t.Error("batched_ops_per_flush recorded no samples")
	}
}
