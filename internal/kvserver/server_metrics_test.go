package kvserver

import (
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// TestWriteDeadlineCoversLargeReplies is the regression test for the
// auto-flush wedge: a reply larger than the 4096-byte write buffer
// auto-flushes mid-WriteValue, and before connIO those flushes carried no
// deadline — a reader that stops draining while fetching large values
// parked the handler on conn.Write forever. With every write
// deadline-armed, the handler must error out and exit within WriteTimeout
// (observed here as the active-connection gauge returning to zero; without
// the fix it stays pinned and the poll below times the test out).
func TestWriteDeadlineCoversLargeReplies(t *testing.T) {
	srv, ln := start(t, Config{
		Cache:        smallCache(),
		WriteTimeout: 200 * time.Millisecond,
		ReadTimeout:  30 * time.Second,
	})
	defer srv.Shutdown(ln, time.Second)
	addr := ln.Addr().String()

	big := make([]byte, 512<<10)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	c, err := kvproto.DialTimeout(addr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("big"), 0, 0, big); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Slow-loris reader: pipeline 64 gets for the 512KB value in one
	// write (32MB of replies, far beyond any socket buffering) and never
	// read a byte.
	loris, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	burst := strings.Repeat("get big\r\n", 64)
	if _, err := loris.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}

	// The handler must hit the write deadline and exit; it must NOT sit
	// in an undeadlined conn.Write until the reader drains.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnsActive() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("handler still wedged %v after a stalled reader requested large values (conns_active=%d); auto-flush writes are not deadline-covered",
				5*time.Second, srv.ConnsActive())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPipelinedFlushBatching pins the reply-batching condition
// (rd.Buffered() > 0 && w.Available() > 512) from both sides: a pipelined
// burst of N requests produces far fewer network writes than N, while a
// strict request/reply client gets each reply flushed promptly (proven by
// its read deadline not firing).
func TestPipelinedFlushBatching(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache(), ReadTimeout: 30 * time.Second})
	defer srv.Shutdown(ln, time.Second)
	addr := ln.Addr().String()

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Burst: 50 gets of an absent key in one segment. Replies are 50
	// "END\r\n" lines (250 bytes, well under the 4096-byte buffer), so
	// the batching path should coalesce them into very few writes.
	const burst = 50
	before := srv.NetCounters().NetWrites
	if _, err := conn.Write([]byte(strings.Repeat("get nope\r\n", burst))); err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("END\r\n", burst)
	got := make([]byte, len(want))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("burst replies corrupted: %q", got)
	}
	delta := srv.NetCounters().NetWrites - before
	if delta > 5 {
		t.Errorf("pipelined burst of %d requests took %d network writes, want coalesced (<=5)", burst, delta)
	}
	if delta == 0 {
		t.Error("no network writes counted for the burst")
	}

	// Strict request/reply on a fresh typed client: each reply must be
	// flushed promptly even though the write buffer is nearly empty —
	// the 2s read deadline would fire if the server sat on the reply.
	c, err := kvproto.DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
			t.Fatalf("strict set %d: %v", i, err)
		}
		if v, ok, err := c.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
			t.Fatalf("strict get %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// failingConn is a net.Conn stub whose writes always fail, for driving
// shed()'s error path.
type failingConn struct {
	net.Conn // nil; only the methods below are called
}

func (failingConn) Write([]byte) (int, error)        { return 0, errors.New("injected write failure") }
func (failingConn) SetWriteDeadline(time.Time) error { return nil }
func (failingConn) Close() error                     { return nil }
func (failingConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }

// TestShedWriteFailureCounted: a shed whose SERVER_ERROR busy reply never
// reaches the client is still a shed, and the failed write is counted
// (before the fix the error was silently dropped).
func TestShedWriteFailureCounted(t *testing.T) {
	srv := New(Config{Cache: smallCache()})
	srv.core.shed(failingConn{})
	ct := srv.Counters()
	if ct.ConnsRejected != 1 {
		t.Errorf("ConnsRejected = %d, want 1", ct.ConnsRejected)
	}
	if ct.ShedWriteFailures != 1 {
		t.Errorf("ShedWriteFailures = %d, want 1", ct.ShedWriteFailures)
	}
}

// TestUptimeStartsAtServe: uptime must measure serving time, not object
// lifetime (before the fix it ticked from New).
func TestUptimeStartsAtServe(t *testing.T) {
	srv := New(Config{Cache: smallCache()})
	time.Sleep(30 * time.Millisecond)
	if up := srv.uptime(); up != 0 {
		t.Fatalf("uptime = %v before Serve, want 0", up)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(ln, time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for srv.startNanos.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Serve never stamped the start time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if up := srv.uptime(); up <= 0 {
		t.Fatalf("uptime = %v after Serve, want > 0", up)
	}
}

// TestMetricsExposition drives real traffic and validates the /metrics
// output end to end: parseable Prometheus text (via metrics.Lint),
// per-op latency histograms whose counts match the cache's own counters,
// and non-zero byte accounting.
func TestMetricsExposition(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache(), ReadTimeout: 5 * time.Second})
	defer srv.Shutdown(ln, time.Second)

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := []byte("k" + strconv.Itoa(i%5))
		if err := c.Set(key, 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete([]byte("k0"))
	c.Close()

	// Quiesce: wait for the handler goroutine to finish so counters are
	// final.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnsActive() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.Bytes()
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("/metrics failed lint: %v\n%s", err, body)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE kv_op_latency_seconds histogram",
		`kv_op_latency_seconds_count{op="get"} 20`,
		`kv_op_latency_seconds_count{op="set"} 20`,
		`kv_op_latency_seconds_count{op="delete"} 1`,
		`adaptivekv_ops_total{op="get"} 20`,
		`adaptivekv_shard_items{shard="0"}`,
		"kv_conns_opened_total 1",
		"kv_conns_active 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	nc := srv.NetCounters()
	if nc.BytesIn == 0 || nc.BytesOut == 0 {
		t.Errorf("byte counters empty: %+v", nc)
	}
	if st := srv.Cache().Stats(); srv.OpLatency("get").Count != st.Gets {
		t.Errorf("get histogram count %d != cache gets %d", srv.OpLatency("get").Count, st.Gets)
	}
	if ol := srv.OpLatency("get"); ol.P99 == 0 || ol.P99 > ol.Max || ol.P50 > ol.P99 {
		t.Errorf("implausible latency summary: %+v", ol)
	}
}
