package kvserver

// End-to-end TTL expiry through the protocol: set with exptime, watch
// the value disappear, and check the accounting shows up everywhere it
// should — the stats command, the Prometheus exposition, and the
// sweeper counters.

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/adaptivekv"
	"repro/internal/kvproto"
)

func TestTTLExpiryEndToEnd(t *testing.T) {
	cache := smallCache()
	cache.SweepInterval = 10 * time.Millisecond
	srv, ln := start(t, Config{Cache: cache})
	defer srv.Shutdown(ln, time.Second)

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Negative exptime: stored, but dead on arrival.
	if err := c.Set([]byte("doa"), 0, -1, []byte("v")); err != nil {
		t.Fatalf("set doa: %v", err)
	}
	if _, ok, err := c.Get([]byte("doa")); err != nil || ok {
		t.Fatalf("get doa = ok=%v err=%v, want immediate miss", ok, err)
	}

	// One-second relative TTL: visible now, gone within the acceptance
	// window (deadline plus sweeper granularity).
	if err := c.Set([]byte("soon"), 3, 1, []byte("value")); err != nil {
		t.Fatalf("set soon: %v", err)
	}
	if v, ok, err := c.Get([]byte("soon")); err != nil || !ok || string(v) != "value" {
		t.Fatalf("get soon before deadline = %q ok=%v err=%v", v, ok, err)
	}
	// No-TTL control key must survive everything below.
	if err := c.Set([]byte("keep"), 0, 0, []byte("forever")); err != nil {
		t.Fatalf("set keep: %v", err)
	}

	deadline := time.Now().Add(3 * time.Second)
	expiredAt := time.Time{}
	for time.Now().Before(deadline) {
		if _, ok, err := c.Get([]byte("soon")); err != nil {
			t.Fatalf("get soon: %v", err)
		} else if !ok {
			expiredAt = time.Now()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if expiredAt.IsZero() {
		t.Fatal("soon still readable 3s after a 1s TTL")
	}

	// Accounting: the stats command reports the expiries (doa + soon)
	// and the sweeper has been running. A read can observe the miss
	// before the sweeper reclaims (and counts) the corpse, so poll.
	var stats map[string]string
	for {
		if stats, err = c.Stats(); err != nil {
			t.Fatal(err)
		}
		if n, _ := strconv.ParseUint(stats["expired"], 10, 64); n >= 2 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("STAT expired = %q, want >= 2", stats["expired"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := stats["sweep_removed"]; !ok {
		t.Fatal("STAT sweep_removed missing")
	}
	passes, err := strconv.ParseUint(stats["sweep_passes"], 10, 64)
	if err != nil || passes == 0 {
		t.Fatalf("STAT sweep_passes = %q, want > 0", stats["sweep_passes"])
	}

	// The Prometheus exposition carries the same counters.
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	text := string(body)
	for _, family := range []string{"kv_expired_total", "kv_ttl_sweep_removed_total", "kv_ttl_sweep_passes_total"} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics missing %s:\n%s", family, text)
		}
	}
	if strings.Contains(text, "kv_expired_total 0\n") {
		t.Fatal("/metrics kv_expired_total still 0 after observed expiries")
	}

	if v, ok, err := c.Get([]byte("keep")); err != nil || !ok || string(v) != "forever" {
		t.Fatalf("no-TTL key lost: %q ok=%v err=%v", v, ok, err)
	}
}

// TestTTLShutdownStopsSweeper: Shutdown must stop the TTL sweeper
// goroutine — the goroutine-leak checks in the chaos harnesses depend
// on it.
func TestTTLShutdownStopsSweeper(t *testing.T) {
	cache := adaptivekv.Config{Shards: 2, Sets: 16, Ways: 4, SweepInterval: 5 * time.Millisecond}
	srv, ln := start(t, Config{Cache: cache})

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("k"), 0, 60, []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if srv.Cache().SweepPasses() == 0 {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && srv.Cache().SweepPasses() == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if srv.Cache().SweepPasses() == 0 {
		t.Fatal("sweeper never ran")
	}
	srv.Shutdown(ln, time.Second)

	// After Shutdown the sweeper is stopped: passes stop advancing once
	// any in-flight tick has finished.
	time.Sleep(20 * time.Millisecond)
	after := srv.Cache().SweepPasses()
	time.Sleep(50 * time.Millisecond)
	if got := srv.Cache().SweepPasses(); got != after {
		t.Fatalf("sweeper still running after Shutdown: %d -> %d passes", after, got)
	}
}
