package kvserver

// Metrics wiring: the server owns a metrics.Registry holding its own
// counters/gauges/histograms (recorded inline on the serving path at zero
// allocations) plus a collector that snapshots the adaptive cache at
// scrape time — one shard lock at a time, never all at once, and never
// walking sets (shard occupancy is maintained incrementally by
// adaptivekv). MetricsHandler serves the whole registry as Prometheus
// text exposition on the -http mux.

import (
	"fmt"
	"net/http"
	"time"

	"repro/adaptivekv"
	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// opCount latency histograms cover the six replying ops.
const opCount = 6

// opNames index the latency histograms; opIndex maps protocol ops onto
// them (-1 for ops with no service time: quit, invalid). gets and cas
// were appended so the original indices (execGetRun hardcodes 0) hold.
var opNames = [opCount]string{"get", "set", "delete", "stats", "gets", "cas"}

// Histogram indices the serving path records into directly.
const (
	opGetIdx  = 0
	opGetsIdx = 4
)

func opIndex(op kvproto.Op) int {
	switch op {
	case kvproto.OpGet:
		return opGetIdx
	case kvproto.OpSet:
		return 1
	case kvproto.OpDelete:
		return 2
	case kvproto.OpStats:
		return 3
	case kvproto.OpGets:
		return opGetsIdx
	case kvproto.OpCas:
		return 5
	}
	return -1
}

// serverMetrics bundles every instrument the serving path records into.
// All fields are registered once at construction; recording is lock-free.
type serverMetrics struct {
	reg *metrics.Registry

	// Per-op service time: parse-to-serialized reply, excluding the
	// network write (slow clients must not pollute service histograms).
	// Batched gets record one sample per key at the batch's mean.
	opLat [opCount]*metrics.Histogram

	// batchedOps observes how many replying ops each explicit flush
	// coalesced — the pipelining win, 1 for strict request/reply clients.
	batchedOps *metrics.Histogram

	bytesIn        *metrics.Counter
	bytesOut       *metrics.Counter
	netWrites      *metrics.Counter
	vectoredWrites *metrics.Counter

	connsOpened *metrics.Counter
	connsClosed *metrics.Counter
	connsActive *metrics.Gauge

	connsRejected     *metrics.Counter
	shedWriteFailures *metrics.Counter
	panicsRecovered   *metrics.Counter
	acceptRetries     *metrics.Counter
	clientErrors      *metrics.Counter

	// setsRejected counts stores (set and cas alike) refused at admission
	// for exceeding MaxItemSize. Rejected stores never reach the cache,
	// record no service latency, and do not count as replying ops — they
	// live here and nowhere else, keeping the "histogram count == engine
	// op count" invariant exact.
	setsRejected *metrics.Counter

	flushes *metrics.Counter
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg}
	for i, name := range opNames {
		m.opLat[i] = reg.Histogram("kv_op_latency_seconds",
			`op="`+name+`"`, "per-op service time, parse to serialized reply")
	}
	m.batchedOps = reg.HistogramUnitless("kv_batched_ops_per_flush", "",
		"replying ops coalesced into each explicit reply flush")
	m.bytesIn = reg.Counter("kv_bytes_in_total", "", "bytes read from clients")
	m.bytesOut = reg.Counter("kv_bytes_out_total", "", "bytes written to clients")
	m.netWrites = reg.Counter("kv_net_writes_total", "", "network write syscalls (deadline-armed)")
	m.vectoredWrites = reg.Counter("kv_vectored_writes_total", "", "large replies shipped via writev without buffer copies")
	m.connsOpened = reg.Counter("kv_conns_opened_total", "", "connections accepted into service")
	m.connsClosed = reg.Counter("kv_conns_closed_total", "", "connection handlers exited")
	m.connsActive = reg.Gauge("kv_conns_active", "", "connections currently being served")
	m.connsRejected = reg.Counter("kv_conns_rejected_total", "", "connections shed with SERVER_ERROR busy")
	m.shedWriteFailures = reg.Counter("kv_shed_write_failures_total", "", "shed replies that failed to reach the client")
	m.panicsRecovered = reg.Counter("kv_panics_recovered_total", "", "handler panics isolated to their connection")
	m.acceptRetries = reg.Counter("kv_accept_retries_total", "", "transient accept errors retried")
	m.clientErrors = reg.Counter("kv_client_errors_total", "", "recoverable protocol violations reported")
	m.setsRejected = reg.Counter("kv_sets_rejected_total", "", "stores (set/cas) refused at admission: object too large")
	m.flushes = reg.Counter("kv_flushes_total", "", "flush_all commands applied (cache emptied)")
	return m
}

// collectRuntime is the scrape-time collector for state that lives in the
// cache (per-shard counters, occupancy, SBAR winners) or the clock
// (uptime). Each ShardStats/ShardOccupancy/Winner call takes exactly one
// shard lock; the scrape never holds two locks at once.
func (s *Server) collectRuntime(e *metrics.Expo) {
	var agg adaptivekv.Stats
	n := s.cache.Shards()
	shards := make([]adaptivekv.Stats, n)
	occ := make([]int, n)
	winners := make([]int, n)
	totalOcc := 0
	for i := 0; i < n; i++ {
		shards[i] = s.cache.ShardStats(i)
		occ[i] = s.cache.ShardOccupancy(i)
		winners[i] = s.cache.Winner(i)
		agg.Add(shards[i])
		totalOcc += occ[i]
	}

	e.Family("adaptivekv_ops_total", "counter", "cache operations by type")
	e.Sample("adaptivekv_ops_total", `op="get"`, float64(agg.Gets))
	e.Sample("adaptivekv_ops_total", `op="set"`, float64(agg.Stores))
	e.Sample("adaptivekv_ops_total", `op="delete"`, float64(agg.Deletes))
	e.Family("adaptivekv_hits_total", "counter", "cache hits by operation type")
	e.Sample("adaptivekv_hits_total", `op="get"`, float64(agg.GetHits))
	e.Sample("adaptivekv_hits_total", `op="set"`, float64(agg.StoreHits))
	e.Sample("adaptivekv_hits_total", `op="delete"`, float64(agg.DeleteHits))
	e.Family("kv_cas_hits_total", "counter", "cas operations that swapped (unique matched)")
	e.Sample("kv_cas_hits_total", "", float64(agg.CasStored))
	e.Family("kv_cas_conflicts_total", "counter", "cas operations refused EXISTS (unique mismatch)")
	e.Sample("kv_cas_conflicts_total", "", float64(agg.CasConflicts))
	e.Family("kv_cas_misses_total", "counter", "cas operations on absent or expired keys (NOT_FOUND)")
	e.Sample("kv_cas_misses_total", "", float64(agg.CasMisses))
	e.Family("adaptivekv_evictions_total", "counter", "capacity evictions decided by the policy")
	e.Sample("adaptivekv_evictions_total", "", float64(agg.Evictions))
	e.Family("adaptivekv_policy_switches_total", "counter", "SBAR global-winner changes")
	e.Sample("adaptivekv_policy_switches_total", "", float64(agg.PolicySwitches))
	e.Family("adaptivekv_hash_collisions_total", "counter", "tag hits on entries owned by a different key")
	e.Sample("adaptivekv_hash_collisions_total", "", float64(agg.HashCollisions))
	e.Family("adaptivekv_optimistic_get_fastpath_total", "counter", "gets answered lock-free via the seqlock probe")
	e.Sample("adaptivekv_optimistic_get_fastpath_total", "", float64(agg.OptimisticFastpath))
	e.Family("adaptivekv_optimistic_get_fallback_total", "counter", "gets that retried under the shard read lock")
	e.Sample("adaptivekv_optimistic_get_fallback_total", "", float64(agg.OptimisticFallback))
	e.Family("adaptivekv_pending_hits_dropped_total", "counter", "deferred access records dropped on pending-ring overflow")
	e.Sample("adaptivekv_pending_hits_dropped_total", "", float64(agg.PendingHitsDropped))
	e.Family("kv_expired_total", "counter", "entries vacated because their TTL deadline passed (lazy + swept)")
	e.Sample("kv_expired_total", "", float64(agg.Expired))
	e.Family("kv_ttl_sweep_removed_total", "counter", "expired entries reclaimed by the active sweeper")
	e.Sample("kv_ttl_sweep_removed_total", "", float64(agg.SweepRemoved))
	e.Family("kv_ttl_sweep_passes_total", "counter", "shard sweeps completed by the TTL sweeper")
	e.Sample("kv_ttl_sweep_passes_total", "", float64(s.cache.SweepPasses()))
	e.Family("adaptivekv_items", "gauge", "resident entries")
	e.Sample("adaptivekv_items", "", float64(totalOcc))
	e.Family("adaptivekv_capacity", "gauge", "maximum resident entries")
	e.Sample("adaptivekv_capacity", "", float64(s.cache.Capacity()))
	e.Family("adaptivekv_shard_items", "gauge", "resident entries per shard")
	for i := 0; i < n; i++ {
		e.Sample("adaptivekv_shard_items", s.shardLabels[i], float64(occ[i]))
	}
	e.Family("adaptivekv_shard_evictions_total", "counter", "capacity evictions per shard")
	for i := 0; i < n; i++ {
		e.Sample("adaptivekv_shard_evictions_total", s.shardLabels[i], float64(shards[i].Evictions))
	}
	e.Family("adaptivekv_shard_winner", "gauge", "SBAR winner component index per shard (-1 outside SBAR)")
	for i := 0; i < n; i++ {
		e.Sample("adaptivekv_shard_winner", s.shardLabels[i], float64(winners[i]))
	}
	e.Family("kv_uptime_seconds", "gauge", "seconds since Serve started (0 before)")
	e.Sample("kv_uptime_seconds", "", s.uptime().Seconds())
}

// shardLabelSet precomputes the `shard="i"` label strings so scrapes
// don't re-format them.
func shardLabelSet(n int) []string {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf(`shard="%d"`, i)
	}
	return labels
}

// MetricsHandler serves the server's registry as Prometheus text
// exposition; mount it at /metrics on the -http mux.
func (s *Server) MetricsHandler() http.Handler { return s.m.reg.Handler() }

// WriteMetrics writes the exposition to w (the handler's core, exposed
// for tests and in-process scrapes).
func (s *Server) WriteMetrics(w interface{ Write([]byte) (int, error) }) error {
	return s.m.reg.WritePrometheus(w)
}

// OpLatency is a point-in-time latency summary for one op, extracted
// from its histogram at the documented ≤3.125% relative error.
type OpLatency struct {
	Count              uint64
	P50, P95, P99, Max time.Duration
}

// OpLatency returns the summary for op ("get", "set", "delete", "stats",
// "gets", "cas"), or a zero summary for unknown ops.
func (s *Server) OpLatency(op string) OpLatency {
	for i, name := range opNames {
		if name == op {
			h := s.m.opLat[i]
			return OpLatency{
				Count: h.Count(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
				Max:   h.Max(),
			}
		}
	}
	return OpLatency{}
}

// ConnsActive returns the live connection gauge — 0 after a clean
// Shutdown, and never negative.
func (s *Server) ConnsActive() int64 { return s.m.connsActive.Load() }

// NetCounters snapshots the network-side counters.
type NetCounters struct {
	BytesIn, BytesOut, NetWrites uint64
	VectoredWrites               uint64
	ConnsOpened, ConnsClosed     uint64
	ShedWriteFailures            uint64
}

// NetCounters snapshots the network-side counters.
func (s *Server) NetCounters() NetCounters {
	return NetCounters{
		BytesIn:           s.m.bytesIn.Load(),
		BytesOut:          s.m.bytesOut.Load(),
		NetWrites:         s.m.netWrites.Load(),
		VectoredWrites:    s.m.vectoredWrites.Load(),
		ConnsOpened:       s.m.connsOpened.Load(),
		ConnsClosed:       s.m.connsClosed.Load(),
		ShedWriteFailures: s.m.shedWriteFailures.Load(),
	}
}
