package kvserver

// Core is the hardened connection-serving substrate, extracted from the
// cache server so cmd/kvrouter's routing front end gets the identical
// fault envelope without owning a cache: accept-loop retry with capped
// backoff, MaxConns overload shedding with SERVER_ERROR busy at accept
// time, per-connection panic isolation, and drain/force shutdown that
// leaks no goroutines. The per-connection request loop is supplied by
// the owner; everything around it — lifecycle, bookkeeping, metrics —
// lives here, behind the same counters both servers expose.

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// CoreConfig assembles a Core.
type CoreConfig struct {
	// MaxConns bounds concurrent connections; arrivals beyond it are
	// shed with "SERVER_ERROR busy" and closed. 0 = unlimited.
	MaxConns int

	// Logf receives operational messages (recovered panics, accept
	// retries). nil discards them.
	Logf func(format string, args ...any)
}

// CoreMetrics wires the lifecycle instruments the Core records into.
// Any field may be nil (that event is simply not counted); servers wire
// them to their own registries so cache-server and router expositions
// carry the same families.
type CoreMetrics struct {
	ConnsOpened       *metrics.Counter
	ConnsClosed       *metrics.Counter
	ConnsActive       *metrics.Gauge
	ConnsRejected     *metrics.Counter
	ShedWriteFailures *metrics.Counter
	PanicsRecovered   *metrics.Counter
	AcceptRetries     *metrics.Counter
}

func coreInc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

func coreAdd(g *metrics.Gauge, d int64) {
	if g != nil {
		g.Add(d)
	}
}

// Core owns the connection set and the drain state; the handle callback
// runs one connection's request loop and may panic freely — a panic ends
// only that connection.
type Core struct {
	cfg    CoreConfig
	m      CoreMetrics
	handle func(conn net.Conn)

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
	stop  chan struct{} // closed by Shutdown; unblocks accept backoff

	draining atomic.Bool
}

// NewCore builds a Core around a per-connection handler.
func NewCore(cfg CoreConfig, m CoreMetrics, handle func(conn net.Conn)) *Core {
	return &Core{
		cfg:    cfg,
		m:      m,
		handle: handle,
		conns:  make(map[net.Conn]struct{}),
		stop:   make(chan struct{}),
	}
}

func (c *Core) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Draining reports whether Shutdown has begun.
func (c *Core) Draining() bool { return c.draining.Load() }

// maxAcceptBackoff caps the transient-accept retry delay; 1s matches
// net/http's accept-loop behavior for sustained EMFILE pressure.
const maxAcceptBackoff = time.Second

// Serve accepts connections until the listener closes. Transient accept
// errors (temporary net.Errors and anything else while not draining) are
// retried with exponential backoff from 5ms to maxAcceptBackoff — a burst
// of EMFILE or ECONNABORTED must never kill the listener.
func (c *Core) Serve(ln net.Listener) {
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if c.draining.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			coreInc(c.m.AcceptRetries)
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > maxAcceptBackoff {
				backoff = maxAcceptBackoff
			}
			c.logf("kvserver: accept error (retrying in %v): %v", backoff, err)
			select {
			case <-c.stop:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0

		c.mu.Lock()
		if c.done {
			c.mu.Unlock()
			conn.Close()
			return
		}
		if c.cfg.MaxConns > 0 && len(c.conns) >= c.cfg.MaxConns {
			c.mu.Unlock()
			c.shed(conn)
			continue
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		coreInc(c.m.ConnsOpened)
		coreAdd(c.m.ConnsActive, 1)
		go c.run(conn)
	}
}

// run wraps one connection's handler with the isolation and bookkeeping
// contract: a panic anywhere in the handler — a bug, a hostile request,
// an injected fault — is recovered, counted, and closes only this
// connection.
func (c *Core) run(conn net.Conn) {
	defer func() {
		if r := recover(); r != nil {
			coreInc(c.m.PanicsRecovered)
			c.logf("kvserver: panic isolated to connection %v: %v", conn.RemoteAddr(), r)
		}
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
		coreInc(c.m.ConnsClosed)
		coreAdd(c.m.ConnsActive, -1)
		c.wg.Done()
	}()
	c.handle(conn)
}

// shed refuses a connection over the MaxConns bound: tell the client why
// (best effort, bounded write) and close. The client sees a well-formed
// SERVER_ERROR it can classify as retryable-after-backoff. A reply that
// fails to go out is still a shed, but it leaves the client guessing —
// count it so sustained failures are visible.
func (c *Core) shed(conn net.Conn) {
	coreInc(c.m.ConnsRejected)
	err := conn.SetWriteDeadline(time.Now().Add(time.Second))
	if err == nil {
		_, err = conn.Write(kvproto.BusyLine)
	}
	if err != nil {
		coreInc(c.m.ShedWriteFailures)
		c.logf("kvserver: shed reply to %v failed: %v", conn.RemoteAddr(), err)
	}
	conn.Close()
}

// Shutdown stops accepting, flips health to draining, gives in-flight
// requests the grace period, then force-closes whatever remains. After it
// returns, every connection goroutine has exited.
func (c *Core) Shutdown(ln net.Listener, grace time.Duration) {
	c.draining.Store(true)
	c.mu.Lock()
	if !c.done {
		c.done = true
		close(c.stop)
	}
	c.mu.Unlock()
	ln.Close()

	drained := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(grace):
		c.mu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.mu.Unlock()
		<-drained
	}
}

// Wait blocks until every connection goroutine has exited.
func (c *Core) Wait() { c.wg.Wait() }
