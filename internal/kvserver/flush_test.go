package kvserver

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/kvproto"
)

// TestFlushAllEndToEnd: flush_all over the wire empties the cache,
// replies OK, bumps the flushes counter in stats, /metrics and the
// Flushes accessor, and leaves the connection serving.
func TestFlushAllEndToEnd(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache()})
	defer srv.Shutdown(ln, time.Second)

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 32; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if err := c.Set(k, uint32(i), 0, []byte("payload")); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
	}
	if srv.Cache().Len() == 0 {
		t.Fatal("cache empty before flush")
	}
	if err := c.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if got := srv.Cache().Len(); got != 0 {
		t.Fatalf("cache holds %d entries after flush_all, want 0", got)
	}
	if _, ok, err := c.Get([]byte("k00")); err != nil || ok {
		t.Fatalf("Get after flush = (_, %v, %v), want clean miss", ok, err)
	}
	if got := srv.Flushes(); got != 1 {
		t.Fatalf("Flushes() = %d, want 1", got)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st["flushes"] != "1" {
		t.Fatalf("stats flushes = %q, want 1", st["flushes"])
	}
	var expo strings.Builder
	if err := srv.WriteMetrics(&expo); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if want := "kv_flushes_total 1"; !strings.Contains(expo.String(), want) {
		t.Fatalf("/metrics missing %q", want)
	}
	// The connection is still synchronized: normal traffic resumes.
	if err := c.Set([]byte("again"), 0, 0, []byte("v")); err != nil {
		t.Fatalf("set after flush: %v", err)
	}
	if v, ok, err := c.Get([]byte("again")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get(again) = (%q, %v, %v)", v, ok, err)
	}
}
