package kvserver

// End-to-end gets/cas through the server, and the admission-reject
// accounting regression the service-time invariants depend on.

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/kvproto"
	"repro/internal/metrics"
)

// TestCasEndToEnd drives the full read-modify-write cycle over the wire
// and reconciles every layer's view of it: protocol outcomes, memcached
// stats lines (cmd_cas, cas_hits, cas_badval, cas_misses), Prometheus
// families, per-op latency histograms, and the cache's own counters.
func TestCasEndToEnd(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache(), ReadTimeout: 5 * time.Second})
	defer srv.Shutdown(ln, time.Second)

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Set([]byte("k"), 7, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	val, flags, id, ok, err := c.Gets([]byte("k"))
	if err != nil || !ok || flags != 7 || !bytes.Equal(val, []byte("v1")) || id == 0 {
		t.Fatalf("Gets = (%q, flags=%d, id=%d, ok=%v, err=%v)", val, flags, id, ok, err)
	}

	// Matching unique swaps; the consumed unique then conflicts; a fresh
	// gets shows exactly one applied swap with a new unique.
	if st, err := c.Cas([]byte("k"), 7, 0, id, []byte("v2")); err != nil || st != kvproto.CasStored {
		t.Fatalf("winning cas = (%v, %v)", st, err)
	}
	if st, err := c.Cas([]byte("k"), 7, 0, id, []byte("v3")); err != nil || st != kvproto.CasExists {
		t.Fatalf("replayed unique = (%v, %v), want CasExists", st, err)
	}
	val, _, id2, ok, err := c.Gets([]byte("k"))
	if err != nil || !ok || !bytes.Equal(val, []byte("v2")) || id2 == id {
		t.Fatalf("post-swap Gets = (%q, id=%d, ok=%v, err=%v), want v2 with fresh unique", val, id2, ok, err)
	}
	if st, err := c.Cas([]byte("missing"), 0, 0, 1, []byte("x")); err != nil || st != kvproto.CasNotFound {
		t.Fatalf("cas on absent key = (%v, %v)", st, err)
	}

	// A pipelined gets on the same connection returns the same unique the
	// synchronous one did — the seqlock window reads (value, unique)
	// coherently.
	c.SendGets([]byte("k"))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, bid, ok, err := c.ReadGetsReply(); err != nil || !ok || bid != id2 {
		t.Fatalf("pipelined gets: id=%d ok=%v err=%v, want id %d", bid, ok, err, id2)
	}

	// Multi-key gets resolves through the batched run path: VALUE blocks
	// in request order with per-key uniques, misses elided.
	if err := c.Set([]byte("k2"), 1, 0, []byte("w")); err != nil {
		t.Fatal(err)
	}
	_, _, k2id, _, err := c.Gets([]byte("k2"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	raw.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Write([]byte("gets k k2 missing\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(raw)
	var got bytes.Buffer
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("multi-key gets truncated after %q: %v", got.String(), err)
		}
		got.WriteString(line)
		if line == "END\r\n" {
			break
		}
	}
	raw.Close()
	wantBurst := "VALUE k 7 2 " + strconv.FormatUint(id2, 10) + "\r\nv2\r\n" +
		"VALUE k2 1 1 " + strconv.FormatUint(k2id, 10) + "\r\nw\r\nEND\r\n"
	if got.String() != wantBurst {
		t.Fatalf("multi-key gets reply:\ngot:  %q\nwant: %q", got.String(), wantBurst)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"cmd_cas":    "3",
		"cas_hits":   "1",
		"cas_badval": "1",
		"cas_misses": "1",
	} {
		if st[k] != want {
			t.Errorf("stats %s = %q, want %q", k, st[k], want)
		}
	}
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnsActive() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.Bytes()
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("/metrics failed lint: %v\n%s", err, body)
	}
	out := string(body)
	for _, want := range []string{
		"kv_cas_hits_total 1",
		"kv_cas_conflicts_total 1",
		"kv_cas_misses_total 1",
		`kv_op_latency_seconds_count{op="gets"} 7`,
		`kv_op_latency_seconds_count{op="cas"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Service-time invariants: get+gets histogram samples together cover
	// every cache get (gets records one sample per key looked up), and
	// the cas histogram covers every cas op.
	cst := srv.Cache().Stats()
	if n := srv.OpLatency("get").Count + srv.OpLatency("gets").Count; n != cst.Gets {
		t.Errorf("get+gets histogram count %d != cache gets %d", n, cst.Gets)
	}
	if n := srv.OpLatency("cas").Count; n != cst.CasOps() {
		t.Errorf("cas histogram count %d != cache cas ops %d", n, cst.CasOps())
	}
}

// TestOversizedRejectNotCountedAsOp is the accounting-honesty
// regression test: an oversized set (or cas) is refused at admission and
// never reaches the cache, so it must not appear in the per-op
// service-time histograms — the "histogram count == engine op count"
// invariant the soak harness asserts — and is tallied separately in
// kv_sets_rejected_total / the sets_rejected stats line instead.
func TestOversizedRejectNotCountedAsOp(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache(), MaxItemSize: 16, ReadTimeout: 5 * time.Second})
	defer srv.Shutdown(ln, time.Second)

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 5; i++ {
		if err := c.Set([]byte("k"+strconv.Itoa(i)), 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("x"), 17)
	var se *kvproto.ServerError
	if err := c.Set([]byte("big"), 0, 0, big); !errors.As(err, &se) {
		t.Fatalf("oversized set: %v, want SERVER_ERROR", err)
	}
	_, _, id, _, err := c.Gets([]byte("k0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cas([]byte("k0"), 0, 0, id, big); !errors.As(err, &se) {
		t.Fatalf("oversized cas: %v, want SERVER_ERROR", err)
	}

	cst := srv.Cache().Stats()
	if n := srv.OpLatency("set").Count; n != cst.Stores {
		t.Errorf("set histogram count %d != cache stores %d (reject leaked into the histogram)", n, cst.Stores)
	}
	if n := srv.OpLatency("cas").Count; n != cst.CasOps() {
		t.Errorf("cas histogram count %d != cache cas ops %d (reject leaked into the histogram)", n, cst.CasOps())
	}
	if got := srv.SetsRejected(); got != 2 {
		t.Errorf("SetsRejected = %d, want 2", got)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["sets_rejected"] != "2" {
		t.Errorf("stats sets_rejected = %q, want 2", st["sets_rejected"])
	}
	// The stream survived both refusals: the boundary-sized value stores.
	if err := c.Set([]byte("edge"), 0, 0, bytes.Repeat([]byte("y"), 16)); err != nil {
		t.Fatalf("boundary set after rejects: %v", err)
	}
}
