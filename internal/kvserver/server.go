// Package kvserver is the hardened serving core behind cmd/adaptcached:
// an adaptivekv cache exposed over the kvproto text protocol with the
// fault envelope the paper's worst-case guarantee deserves on the network
// side. The policy layer promises graceful degradation under adversarial
// workloads; this layer promises graceful degradation under adversarial
// infrastructure:
//
//   - the accept loop retries transient failures (EMFILE, ECONNABORTED,
//     injected faults) with capped backoff and only exits when the
//     listener closes;
//   - past MaxConns concurrent connections, new arrivals are shed with
//     "SERVER_ERROR busy" instead of queuing unboundedly;
//   - a panic in one connection handler is recovered, counted, and ends
//     only that connection — never the process;
//   - values larger than MaxItemSize are refused at admission with
//     "SERVER_ERROR object too large" on a still-healthy stream;
//   - shutdown drains connections and leaks no goroutines.
//
// Every network write — explicit flushes, bufio auto-flushes, and
// vectored writes alike — goes through a deadline-armed conn wrapper, so
// a reply larger than the write buffer cannot wedge its handler on a
// stalled reader.
//
// The serving loop is throughput-shaped for pipelining clients: runs of
// consecutive get requests (including multi-key gets) are parsed ahead
// while input is buffered, dispatched through adaptivekv.GetBatch with
// one lock acquisition per shard per run, and answered in exact request
// order. Values at or above the reply buffer size skip the buffer copy
// entirely: the VALUE header is assembled into per-connection scratch
// and header+payload+terminator go out as one vectored write
// (net.Buffers → writev on TCP).
//
// Robustness counters (conns_rejected, panics_recovered, accept_retries,
// client_errors) are exposed via Counters, the stats command, and
// ExpvarMap; a zero-allocation-on-record metrics registry (per-op latency
// histograms, byte/connection counters, cache collectors — see
// metrics.go) serves Prometheus text via MetricsHandler; Healthz serves
// 200 while accepting and 503 while draining.
package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/adaptivekv"
	"repro/internal/kvproto"
)

// Value is one stored object: the client's opaque flags word plus bytes.
type Value struct {
	Flags uint32
	Data  []byte
}

// Config assembles a Server. The zero value serves an adaptivekv default
// cache with no timeouts, no connection limit, and the protocol's value
// cap as the admission bound.
type Config struct {
	Cache adaptivekv.Config

	ReadTimeout time.Duration // per-request read deadline (0 = none)
	// WriteTimeout is armed before every network write — explicit
	// flushes and bufio auto-flushes alike (0 = none).
	WriteTimeout time.Duration

	// MaxConns bounds concurrent connections; arrivals beyond it are
	// shed with "SERVER_ERROR busy" and closed. 0 = unlimited.
	MaxConns int

	// MaxItemSize bounds accepted value sizes (admission control below
	// the protocol's hard kvproto.MaxValueBytes cap). 0 = protocol cap.
	MaxItemSize int

	// FaultHook, when non-nil, runs before each request is dispatched.
	// It exists for fault injection — a hook that panics exercises the
	// per-connection panic isolation — and must not retain req.
	FaultHook func(req *kvproto.Request)

	// Logf receives operational messages (recovered panics, accept
	// retries). nil discards them.
	Logf func(format string, args ...any)
}

// Counters are the robustness counters, snapshotted by Counters().
type Counters struct {
	ConnsRejected     uint64 // connections shed with SERVER_ERROR busy
	PanicsRecovered   uint64 // handler panics isolated to their connection
	AcceptRetries     uint64 // transient accept errors retried
	ClientErrors      uint64 // recoverable protocol violations reported
	ShedWriteFailures uint64 // shed replies that never reached the client
}

// Server owns the cache and delegates connection lifecycle (accept
// retry, shedding, panic isolation, drain) to a Core — the same
// substrate cmd/kvrouter's front end runs on.
type Server struct {
	cfg   Config
	cache *adaptivekv.Cache[string, Value]

	core *Core

	m           *serverMetrics
	shardLabels []string

	// startNanos is stamped when Serve first runs (not at New), so
	// uptime_seconds measures serving time. 0 = not yet serving.
	startNanos atomic.Int64
}

// New builds a Server; Serve starts it.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg,
		cache: adaptivekv.New[string, Value](cfg.Cache),
		m:     newServerMetrics(),
	}
	s.core = NewCore(
		CoreConfig{MaxConns: cfg.MaxConns, Logf: cfg.Logf},
		CoreMetrics{
			ConnsOpened:       s.m.connsOpened,
			ConnsClosed:       s.m.connsClosed,
			ConnsActive:       s.m.connsActive,
			ConnsRejected:     s.m.connsRejected,
			ShedWriteFailures: s.m.shedWriteFailures,
			PanicsRecovered:   s.m.panicsRecovered,
			AcceptRetries:     s.m.acceptRetries,
		},
		s.handle,
	)
	s.shardLabels = shardLabelSet(s.cache.Shards())
	s.m.reg.Collect(s.collectRuntime)
	return s
}

// uptime returns time spent serving (zero before Serve starts).
func (s *Server) uptime() time.Duration {
	ns := s.startNanos.Load()
	if ns == 0 {
		return 0
	}
	return time.Since(time.Unix(0, ns))
}

// Cache exposes the underlying adaptive cache (stats, shape).
func (s *Server) Cache() *adaptivekv.Cache[string, Value] { return s.cache }

// Counters snapshots the robustness counters.
func (s *Server) Counters() Counters {
	return Counters{
		ConnsRejected:     s.m.connsRejected.Load(),
		PanicsRecovered:   s.m.panicsRecovered.Load(),
		AcceptRetries:     s.m.acceptRetries.Load(),
		ClientErrors:      s.m.clientErrors.Load(),
		ShedWriteFailures: s.m.shedWriteFailures.Load(),
	}
}

// Flushes reports how many flush_all commands this server has applied —
// chaos drills use it to prove a reintegrated node was actually flushed
// before serving.
func (s *Server) Flushes() uint64 { return s.m.flushes.Load() }

// SetsRejected reports how many stores (set and cas) were refused at
// admission for exceeding MaxItemSize — ops that never reached the cache
// and recorded no service latency.
func (s *Server) SetsRejected() uint64 { return s.m.setsRejected.Load() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.core.Draining() }

// Serve accepts connections until the listener closes; see Core.Serve
// for the accept-retry and shedding contract.
func (s *Server) Serve(ln net.Listener) {
	s.startNanos.CompareAndSwap(0, time.Now().UnixNano())
	s.core.Serve(ln)
}

// Shutdown stops accepting, flips health to draining, gives in-flight
// requests the grace period, then force-closes whatever remains. After it
// returns, every connection goroutine has exited — including the cache's
// TTL sweeper, stopped once the last request is done with the cache.
func (s *Server) Shutdown(ln net.Listener, grace time.Duration) {
	s.core.Shutdown(ln, grace)
	s.cache.Close()
}

// Wait blocks until every connection goroutine has exited (Serve callers
// that shut down via signal handlers use it before reading final stats).
func (s *Server) Wait() { s.core.Wait() }

// connIO routes the handler's I/O through the raw connection with two
// jobs: arm the write deadline before EVERY network write, and meter
// bytes in both directions. Routing the bufio.Writer through Write (not
// the bare conn) is the fix for a real wedge: a reply larger than the
// 4096-byte write buffer auto-flushes mid-WriteValue, and before this
// wrapper that auto-flush carried no deadline — a slow-loris reader
// fetching a large value parked the handler goroutine on conn.Write
// forever, immune to WriteTimeout.
type connIO struct {
	conn net.Conn
	s    *Server
}

func (c *connIO) Read(p []byte) (int, error) {
	n, err := c.conn.Read(p)
	c.s.m.bytesIn.Add(uint64(n))
	return n, err
}

func (c *connIO) Write(p []byte) (int, error) {
	if t := c.s.cfg.WriteTimeout; t > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(t)); err != nil {
			return 0, err
		}
	}
	n, err := c.conn.Write(p)
	c.s.m.bytesOut.Add(uint64(n))
	c.s.m.netWrites.Inc()
	return n, err
}

// WriteBuffers ships a vectored reply (writev on TCP) under the same
// deadline arming and byte metering as Write. bufs is consumed.
func (c *connIO) WriteBuffers(bufs *net.Buffers) error {
	if t := c.s.cfg.WriteTimeout; t > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(t)); err != nil {
			return err
		}
	}
	n, err := bufs.WriteTo(c.conn)
	c.s.m.bytesOut.Add(uint64(n))
	c.s.m.netWrites.Inc()
	c.s.m.vectoredWrites.Inc()
	return err
}

// maxRunKeys caps how many keys one batched get dispatch may carry
// (four shard-group chunks); past it the run executes and a fresh one
// starts, bounding reply latency and scratch growth under hostile
// pipelining.
const maxRunKeys = 256

// vectorMin is the value size at which replies switch from the bufio
// copy path to a vectored write. At or above the reply-buffer size the
// copy is pure overhead: the buffer would auto-flush mid-value anyway.
const vectorMin = 4096

// getRun accumulates a consecutive run of pipelined get requests for one
// shard-grouped dispatch. Key bytes are copied out of the parser's
// buffers (parse-ahead invalidates them); the slices themselves persist
// for the connection's lifetime, so steady-state runs don't allocate.
type getRun struct {
	keys   []string
	counts []int // keys per queued request, in arrival order
	vals   []Value
	casids []uint64 // gets only; sized lazily by execGets
	oks    []bool
	hdr    []byte      // scratch for vectored VALUE headers
	iov    net.Buffers // reused 3-element vector: header, payload, CRLF
}

func (b *getRun) add(keys [][]byte) {
	for _, k := range keys {
		b.keys = append(b.keys, string(k))
	}
	b.counts = append(b.counts, len(keys))
}

func (b *getRun) pending() bool { return len(b.counts) > 0 }

// execGetRun resolves the queued run in one GetBatch — gets grouped by
// shard, one lock acquisition per shard per chunk — then emits replies
// in exact request order. Latency is recorded as one sample per key at
// the run's mean, so histogram counts stay equal to the cache's own
// per-key op counters. Returns false when the connection is unusable.
func (s *Server) execGetRun(b *getRun, w *bufio.Writer, cio *connIO, opsInFlush *int) bool {
	start := time.Now()
	n := len(b.keys)
	// A run can overshoot maxRunKeys by one multiget's worth of keys
	// (the cap is checked before queueing, not after), so size to n.
	if cap(b.vals) < n {
		c := maxRunKeys + kvproto.MaxGetKeys
		if c < n {
			c = n
		}
		b.vals = make([]Value, c)
		b.oks = make([]bool, c)
	}
	vals, oks := b.vals[:n], b.oks[:n]
	s.cache.GetBatch(b.keys, vals, oks)
	ok := true
	idx := 0
outer:
	for _, cnt := range b.counts {
		for j := 0; j < cnt; j++ {
			if oks[idx] && !s.writeValue(w, cio, b.keys[idx], vals[idx], b) {
				ok = false
				break outer
			}
			idx++
		}
		kvproto.WriteEnd(w)
		*opsInFlush++
	}
	per := int64(time.Since(start)) / int64(n)
	for i := 0; i < n; i++ {
		s.m.opLat[opGetIdx].RecordNS(per)
	}
	b.keys = b.keys[:0]
	b.counts = b.counts[:0]
	return ok
}

// execGets resolves one gets request — a batched lookup surfacing each
// hit's cas unique — and emits 4-field VALUE blocks plus END. The run's
// scratch is reused (a gets always executes with the run empty: any
// non-get op flushes it first). Latency lands as one sample per key at
// the request's mean, mirroring execGetRun, so the get+gets histogram
// counts together equal the cache's Gets counter. Returns false when the
// connection is unusable.
func (s *Server) execGets(b *getRun, reqKeys [][]byte, w *bufio.Writer, cio *connIO) bool {
	start := time.Now()
	n := len(reqKeys)
	b.keys = b.keys[:0]
	for _, k := range reqKeys {
		b.keys = append(b.keys, string(k))
	}
	if cap(b.vals) < n {
		c := maxRunKeys + kvproto.MaxGetKeys
		b.vals = make([]Value, c)
		b.oks = make([]bool, c)
	}
	if cap(b.casids) < n {
		b.casids = make([]uint64, maxRunKeys+kvproto.MaxGetKeys)
	}
	vals, oks, casids := b.vals[:n], b.oks[:n], b.casids[:n]
	s.cache.GetBatchCas(b.keys, vals, casids, oks)
	ok := true
	for i := 0; i < n; i++ {
		if oks[i] && !s.writeValueCas(w, cio, b.keys[i], vals[i], casids[i], b) {
			ok = false
			break
		}
	}
	if ok {
		kvproto.WriteEnd(w)
	}
	per := int64(time.Since(start)) / int64(n)
	for i := 0; i < n; i++ {
		s.m.opLat[opGetsIdx].RecordNS(per)
	}
	b.keys = b.keys[:0]
	return ok
}

// writeValue emits one VALUE block. Small values ride the reply buffer;
// large ones flush it first (replies stay ordered) and go out as a
// single vectored write of header+payload+terminator, skipping the
// per-value copy. Returns false on a failed vectored write; bufio write
// errors are sticky and surface at the next Flush.
func (s *Server) writeValue(w *bufio.Writer, cio *connIO, key string, v Value, b *getRun) bool {
	if len(v.Data) < vectorMin {
		kvproto.WriteValueString(w, key, v.Flags, v.Data)
		return true
	}
	if w.Flush() != nil {
		return false
	}
	b.hdr = kvproto.AppendValueHeader(b.hdr[:0], key, v.Flags, len(v.Data))
	b.iov = append(b.iov[:0], b.hdr, v.Data, kvproto.CRLF)
	bufs := b.iov
	return cio.WriteBuffers(&bufs) == nil
}

// writeValueCas is writeValue for gets replies: the VALUE header carries
// the entry's cas unique as a fourth field, with the same small/vectored
// split.
func (s *Server) writeValueCas(w *bufio.Writer, cio *connIO, key string, v Value, casid uint64, b *getRun) bool {
	if len(v.Data) < vectorMin {
		kvproto.WriteValueCasString(w, key, v.Flags, casid, v.Data)
		return true
	}
	if w.Flush() != nil {
		return false
	}
	b.hdr = kvproto.AppendValueCasHeader(b.hdr[:0], key, v.Flags, len(v.Data), casid)
	b.iov = append(b.iov[:0], b.hdr, v.Data, kvproto.CRLF)
	bufs := b.iov
	return cio.WriteBuffers(&bufs) == nil
}

// handle runs one connection's request loop under the Core's isolation
// contract: closing, bookkeeping, and panic recovery belong to Core.run,
// so a panic here — a handler bug, a hostile request, an injected fault
// — degrades one client instead of all.
func (s *Server) handle(conn net.Conn) {
	maxItem := s.cfg.MaxItemSize
	if maxItem <= 0 {
		maxItem = kvproto.MaxValueBytes
	}

	cio := &connIO{conn: conn, s: s}
	rd := kvproto.NewReader(cio)
	w := bufio.NewWriterSize(cio, 4096)
	run := &getRun{}
	opsInFlush := 0
	var req kvproto.Request
	var ce *kvproto.ClientError
	for {
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		switch err := rd.Next(&req); {
		case err == nil:
		case errors.As(err, &ce):
			// Answer any queued gets first so error replies keep their
			// place in the request order.
			if run.pending() && !s.execGetRun(run, w, cio, &opsInFlush) {
				return
			}
			s.m.clientErrors.Inc()
			kvproto.WriteClientError(w, ce.Msg)
			opsInFlush++
			if w.Flush() != nil {
				return
			}
			s.m.batchedOps.RecordNS(int64(opsInFlush))
			opsInFlush = 0
			continue
		default:
			// Clean close, timeout, or corrupt stream. A pipelining
			// client may have queued gets then closed its write side:
			// answer them best-effort before dropping the connection.
			if run.pending() && s.execGetRun(run, w, cio, &opsInFlush) {
				w.Flush()
			}
			return
		}

		if s.cfg.FaultHook != nil {
			s.cfg.FaultHook(&req)
		}

		if req.Op == kvproto.OpGet {
			run.add(req.Keys)
			// Parse ahead: while the burst has more requests already
			// buffered and the run has room, keep queueing — consecutive
			// gets collapse into one shard-batched dispatch.
			if rd.Buffered() > 0 && len(run.keys) < maxRunKeys {
				continue
			}
			if !s.execGetRun(run, w, cio, &opsInFlush) {
				return
			}
		} else {
			// A non-get op ends the run; replies stay in request order.
			if run.pending() && !s.execGetRun(run, w, cio, &opsInFlush) {
				return
			}
			opStart := time.Now()
			// rejected marks an op refused at admission: it wrote an error
			// reply but never touched the cache, so it must not record
			// service latency or count as a replying op — the per-op
			// histogram counts stay equal to the engine's op counts (the
			// invariant the chaos harness asserts). Rejects are tallied in
			// kv_sets_rejected_total instead.
			rejected := false
			switch req.Op {
			case kvproto.OpSet:
				if len(req.Value) > maxItem {
					kvproto.WriteServerError(w, "object too large")
					s.m.setsRejected.Inc()
					rejected = true
					break
				}
				data := make([]byte, len(req.Value))
				copy(data, req.Value)
				deadline := kvproto.DeadlineNanos(req.Exptime, opStart)
				s.cache.SetTTL(string(req.Key), Value{Flags: req.Flags, Data: data}, deadline)
				kvproto.WriteStored(w)
			case kvproto.OpGets:
				if !s.execGets(run, req.Keys, w, cio) {
					return
				}
			case kvproto.OpCas:
				if len(req.Value) > maxItem {
					kvproto.WriteServerError(w, "object too large")
					s.m.setsRejected.Inc()
					rejected = true
					break
				}
				data := make([]byte, len(req.Value))
				copy(data, req.Value)
				deadline := kvproto.DeadlineNanos(req.Exptime, opStart)
				switch s.cache.CompareAndSwap(string(req.Key), Value{Flags: req.Flags, Data: data}, req.Cas, deadline) {
				case adaptivekv.CasStored:
					kvproto.WriteStored(w)
				case adaptivekv.CasExists:
					kvproto.WriteExists(w)
				default:
					kvproto.WriteNotFound(w)
				}
			case kvproto.OpDelete:
				if s.cache.Delete(string(req.Key)) {
					kvproto.WriteDeleted(w)
				} else {
					kvproto.WriteNotFound(w)
				}
			case kvproto.OpStats:
				s.writeStats(w)
			case kvproto.OpNoop:
				kvproto.WriteNoop(w)
			case kvproto.OpFlushAll:
				s.cache.Flush()
				s.m.flushes.Inc()
				kvproto.WriteOk(w)
			case kvproto.OpQuit:
				w.Flush()
				return
			default:
				kvproto.WriteError(w)
			}
			if !rejected {
				opsInFlush++
				// gets records its own per-key samples inside execGets.
				if i := opIndex(req.Op); i >= 0 && req.Op != kvproto.OpGets {
					s.m.opLat[i].RecordNS(int64(time.Since(opStart)))
				}
			}
		}
		// A pipelining client has more requests already buffered; batch the
		// replies and flush once the input drains (or the buffer fills).
		if rd.Buffered() > 0 && w.Available() > 512 {
			continue
		}
		if w.Flush() != nil {
			return
		}
		if opsInFlush > 0 {
			s.m.batchedOps.RecordNS(int64(opsInFlush))
			opsInFlush = 0
		}
	}
}

// Healthz is the health endpoint for the -http mux: 200 while accepting,
// 503 once draining begins, so load balancers stop routing before the
// listener disappears.
func (s *Server) Healthz(w http.ResponseWriter, _ *http.Request) {
	if s.core.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// writeStats emits aggregate counters, the cache shape, robustness
// counters, latency summaries, and per-shard adaptive-scheme detail.
func (s *Server) writeStats(w *bufio.Writer) {
	st := s.cache.Stats()
	cfg := s.cache.Config()
	ct := s.Counters()
	nc := s.NetCounters()
	kvproto.WriteStat(w, "uptime_seconds", uint64(s.uptime().Seconds()))
	kvproto.WriteStatStr(w, "mode", string(cfg.Mode))
	kvproto.WriteStatStr(w, "components", strings.Join(cfg.Components, ","))
	kvproto.WriteStat(w, "shards", uint64(cfg.Shards))
	kvproto.WriteStat(w, "capacity", uint64(s.cache.Capacity()))
	kvproto.WriteStat(w, "items", uint64(s.cache.Len()))
	kvproto.WriteStat(w, "cmd_get", st.Gets)
	kvproto.WriteStat(w, "get_hits", st.GetHits)
	kvproto.WriteStat(w, "get_misses", st.Gets-st.GetHits)
	kvproto.WriteStat(w, "cmd_set", st.Stores)
	kvproto.WriteStat(w, "cmd_cas", st.CasOps())
	kvproto.WriteStat(w, "cas_hits", st.CasStored)
	kvproto.WriteStat(w, "cas_badval", st.CasConflicts)
	kvproto.WriteStat(w, "cas_misses", st.CasMisses)
	kvproto.WriteStat(w, "sets_rejected", s.m.setsRejected.Load())
	kvproto.WriteStat(w, "cmd_delete", st.Deletes)
	kvproto.WriteStat(w, "delete_hits", st.DeleteHits)
	kvproto.WriteStat(w, "evictions", st.Evictions)
	kvproto.WriteStat(w, "policy_switches", st.PolicySwitches)
	kvproto.WriteStat(w, "hash_collisions", st.HashCollisions)
	kvproto.WriteStat(w, "flushes", s.m.flushes.Load())
	kvproto.WriteStat(w, "optimistic_get_fastpath", st.OptimisticFastpath)
	kvproto.WriteStat(w, "optimistic_get_fallback", st.OptimisticFallback)
	kvproto.WriteStat(w, "pending_hits_dropped", st.PendingHitsDropped)
	kvproto.WriteStat(w, "expired", st.Expired)
	kvproto.WriteStat(w, "sweep_removed", st.SweepRemoved)
	kvproto.WriteStat(w, "sweep_passes", s.cache.SweepPasses())
	kvproto.WriteStat(w, "conns_rejected", ct.ConnsRejected)
	kvproto.WriteStat(w, "panics_recovered", ct.PanicsRecovered)
	kvproto.WriteStat(w, "accept_retries", ct.AcceptRetries)
	kvproto.WriteStat(w, "client_errors", ct.ClientErrors)
	kvproto.WriteStat(w, "shed_write_failures", ct.ShedWriteFailures)
	kvproto.WriteStat(w, "bytes_in", nc.BytesIn)
	kvproto.WriteStat(w, "bytes_out", nc.BytesOut)
	kvproto.WriteStat(w, "vectored_writes", nc.VectoredWrites)
	kvproto.WriteStat(w, "conns_opened", nc.ConnsOpened)
	kvproto.WriteStat(w, "conns_active", uint64(s.ConnsActive()))
	for _, op := range opNames {
		ol := s.OpLatency(op)
		kvproto.WriteStat(w, op+"_latency_count", ol.Count)
		kvproto.WriteStat(w, op+"_latency_p50_us", uint64(ol.P50.Microseconds()))
		kvproto.WriteStat(w, op+"_latency_p99_us", uint64(ol.P99.Microseconds()))
		kvproto.WriteStat(w, op+"_latency_max_us", uint64(ol.Max.Microseconds()))
	}
	kvproto.WriteStatStr(w, "hit_ratio", fmt.Sprintf("%.4f", st.HitRatio()))
	kvproto.WriteStatStr(w, "adaptive_overhead_pct", fmt.Sprintf("%.4f", s.cache.OverheadPercent()))
	for i := 0; i < s.cache.Shards(); i++ {
		sh := s.cache.ShardStats(i)
		prefix := fmt.Sprintf("shard%d_", i)
		kvproto.WriteStat(w, prefix+"gets", sh.Gets)
		kvproto.WriteStat(w, prefix+"get_hits", sh.GetHits)
		kvproto.WriteStat(w, prefix+"evictions", sh.Evictions)
		kvproto.WriteStat(w, prefix+"policy_switches", sh.PolicySwitches)
		kvproto.WriteStat(w, prefix+"items", uint64(s.cache.ShardOccupancy(i)))
		if wn := s.cache.Winner(i); wn >= 0 {
			kvproto.WriteStatStr(w, prefix+"winner", cfg.Components[wn])
		}
	}
	kvproto.WriteEnd(w)
}

// ExpvarMap builds the expvar snapshot: aggregate, robustness counters,
// and per-shard counters. Publish it under expvar.Func.
func (s *Server) ExpvarMap() interface{} {
	type shardVars struct {
		Gets, GetHits, Stores, Deletes uint64
		Evictions, PolicySwitches      uint64
		Winner                         string
	}
	cfg := s.cache.Config()
	shards := make([]shardVars, s.cache.Shards())
	for i := range shards {
		st := s.cache.ShardStats(i)
		sv := shardVars{
			Gets: st.Gets, GetHits: st.GetHits, Stores: st.Stores,
			Deletes: st.Deletes, Evictions: st.Evictions,
			PolicySwitches: st.PolicySwitches,
		}
		if w := s.cache.Winner(i); w >= 0 {
			sv.Winner = cfg.Components[w]
		}
		shards[i] = sv
	}
	agg := s.cache.Stats()
	ct := s.Counters()
	return map[string]interface{}{
		"mode":             string(cfg.Mode),
		"components":       cfg.Components,
		"capacity":         s.cache.Capacity(),
		"items":            s.cache.Len(),
		"aggregate":        agg,
		"hit_ratio":        agg.HitRatio(),
		"shards":           shards,
		"draining":         s.core.Draining(),
		"conns_rejected":   ct.ConnsRejected,
		"panics_recovered": ct.PanicsRecovered,
		"accept_retries":   ct.AcceptRetries,
		"client_errors":    ct.ClientErrors,
	}
}
