package kvserver

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/adaptivekv"
	"repro/internal/faultnet"
	"repro/internal/kvproto"
)

func smallCache() adaptivekv.Config {
	return adaptivekv.Config{Shards: 2, Sets: 16, Ways: 4}
}

// start brings a server up on an ephemeral loopback port.
func start(t *testing.T, cfg Config) (*Server, net.Listener) {
	t.Helper()
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln
}

// TestAcceptRetrySurvivesTransientErrors: the satellite bugfix. A
// listener that fails half its Accept calls with temporary errors must
// not kill the accept loop — clients keep getting served and the retries
// are counted.
func TestAcceptRetrySurvivesTransientErrors(t *testing.T) {
	srv := New(Config{Cache: smallCache()})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faulty := faultnet.Wrap(base, faultnet.Config{Seed: 17, AcceptErrorRate: 0.5})
	go srv.Serve(faulty)
	defer srv.Shutdown(base, time.Second)

	for i := 0; i < 10; i++ {
		c, err := kvproto.DialTimeout(base.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if err := c.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
			t.Fatalf("set on conn %d: %v", i, err)
		}
		c.Close()
	}
	if got := srv.Counters().AcceptRetries; got == 0 {
		t.Error("no accept retries counted despite AcceptErrorRate 0.5")
	}
}

// TestOverloadShedding: past MaxConns, a new arrival reads a well-formed
// SERVER_ERROR busy and the connection closes; once load drops, service
// resumes; the sheds are counted.
func TestOverloadShedding(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache(), MaxConns: 1})
	defer srv.Shutdown(ln, time.Second)
	addr := ln.Addr().String()

	c1, err := kvproto.DialTimeout(addr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
		t.Fatal(err) // proves c1 is registered, not sitting in the backlog
	}

	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(raw)
	raw.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, kvproto.BusyLine) {
		t.Fatalf("shed reply %q, want %q", reply, kvproto.BusyLine)
	}
	if got := srv.Counters().ConnsRejected; got != 1 {
		t.Errorf("ConnsRejected = %d, want 1", got)
	}

	// The typed client classifies the shed as busy/recoverable-by-retry.
	c2, err := kvproto.DialTimeout(addr, 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c2.Get([]byte("k"))
	if !kvproto.IsBusy(err) {
		t.Fatalf("typed client got %v, want busy", err)
	}
	c2.CloseNow()

	// Free the slot; service must resume.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := kvproto.DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
		if err == nil {
			if _, ok, err := c3.Get([]byte("k")); err == nil && ok {
				c3.Close()
				break
			}
			c3.CloseNow()
		}
		if time.Now().After(deadline) {
			t.Fatal("service never resumed after load dropped")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPanicIsolation: a handler panic ends the poisoned connection only;
// the process and other connections keep serving, and the recovery is
// counted.
func TestPanicIsolation(t *testing.T) {
	hook := func(req *kvproto.Request) {
		if string(req.Key) == "boom" {
			panic("injected handler panic")
		}
	}
	srv, ln := start(t, Config{Cache: smallCache(), FaultHook: hook})
	defer srv.Shutdown(ln, time.Second)
	addr := ln.Addr().String()

	victim, err := kvproto.DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := victim.Get([]byte("boom")); err == nil {
		t.Fatal("poisoned request got a reply")
	} else if kvproto.Recoverable(err) {
		t.Fatalf("poisoned connection classified recoverable: %v", err)
	}
	victim.CloseNow()

	healthy, err := kvproto.DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := healthy.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
		t.Fatalf("server unhealthy after isolated panic: %v", err)
	}
	if got := srv.Counters().PanicsRecovered; got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}
}

// TestMaxItemSizeAdmission: an oversized value is refused with a typed,
// recoverable SERVER_ERROR; the same connection keeps working and the
// oversized key is never admitted.
func TestMaxItemSizeAdmission(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache(), MaxItemSize: 16})
	defer srv.Shutdown(ln, time.Second)

	c, err := kvproto.DialTimeout(ln.Addr().String(), 2*time.Second, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Set([]byte("big"), 0, 0, bytes.Repeat([]byte("x"), 17))
	var se *kvproto.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "too large") {
		t.Fatalf("oversized set: %v, want SERVER_ERROR object too large", err)
	}
	if !kvproto.Recoverable(err) {
		t.Fatal("admission refusal must leave the stream usable")
	}
	if _, ok, err := c.Get([]byte("big")); err != nil || ok {
		t.Fatalf("oversized value admitted: ok=%v err=%v", ok, err)
	}
	if err := c.Set([]byte("small"), 0, 0, []byte("0123456789abcdef")); err != nil {
		t.Fatalf("boundary-sized set on same conn: %v", err)
	}
	if v, ok, err := c.Get([]byte("small")); err != nil || !ok || len(v) != 16 {
		t.Fatalf("boundary value: ok=%v len=%d err=%v", ok, len(v), err)
	}
	_ = srv
}

// TestGoroutineLeakAcrossLifecycle: the satellite leak check. Start a
// server, run traffic (including a connection left open to force the
// grace-expiry path), shut down, and require the goroutine count to
// return to baseline.
func TestGoroutineLeakAcrossLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, ln := start(t, Config{Cache: smallCache(), ReadTimeout: 30 * time.Second})
	addr := ln.Addr().String()

	for i := 0; i < 4; i++ {
		c, err := kvproto.DialTimeout(addr, 2*time.Second, 2*time.Second, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Set([]byte("k"), 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	// Leave one connection idle so Shutdown must force-close it.
	idle, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// Make sure the idle conn is registered before shutting down.
	time.Sleep(50 * time.Millisecond)

	srv.Shutdown(ln, 200*time.Millisecond)
	srv.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge netpoll/timer goroutines to settle
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestHealthz: 200 while accepting, 503 once draining.
func TestHealthz(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache()})

	rec := httptest.NewRecorder()
	srv.Healthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz while accepting = %d, want 200", rec.Code)
	}

	srv.Shutdown(ln, time.Second)
	rec = httptest.NewRecorder()
	srv.Healthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz while draining = %d, want 503", rec.Code)
	}
}

// TestClientErrorCounter: recoverable protocol violations are counted and
// reported in stats without dropping the connection.
func TestClientErrorCounter(t *testing.T) {
	srv, ln := start(t, Config{Cache: smallCache()})
	defer srv.Shutdown(ln, time.Second)

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("bogus\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]); got != "CLIENT_ERROR unknown command\r\n" {
		t.Fatalf("violation reply %q", got)
	}
	if got := srv.Counters().ClientErrors; got != 1 {
		t.Errorf("ClientErrors = %d, want 1", got)
	}

	// Same connection still serves, and stats carries the counters.
	c := kvproto.NewClient(conn)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"conns_rejected", "panics_recovered", "accept_retries", "client_errors"} {
		if _, ok := st[k]; !ok {
			t.Errorf("stats missing robustness counter %q", k)
		}
	}
	if st["client_errors"] != "1" {
		t.Errorf("stats client_errors = %q, want 1", st["client_errors"])
	}
}
