package cache

import "fmt"

// Line is one cache line's bookkeeping. Data contents are never modeled;
// only presence matters for replacement studies.
type Line struct {
	Tag   uint64 // stored (possibly masked) tag
	Valid bool
	Dirty bool
}

// Stats accumulates access statistics for one cache.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
	Writes     uint64 // write accesses (subset of Accesses)
}

// MissRatio returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes what happened on one cache access.
type AccessResult struct {
	Hit        bool
	Way        int    // way hit or filled
	Evicted    bool   // a valid block was displaced
	EvictedTag uint64 // its stored tag, if Evicted
	Writeback  bool   // the displaced block was dirty
}

// FullTagMask matches tags exactly.
const FullTagMask = ^uint64(0)

// Cache is a set-associative cache (or tag-only shadow array). The zero
// value is not usable; construct with New.
//
// Storage is a single flat line array indexed by set*Ways+way: one backing
// allocation, one bounds check per set probe, and no per-set slice headers
// to chase on the hot path.
type Cache struct {
	geo     Geometry
	tagMask uint64
	pol     Policy
	lines   []Line // set s occupies lines[s*ways : s*ways+ways]
	ways    int
	stats   Stats

	// Policy capabilities, resolved once at construction instead of per
	// access: the optional Placer interface and the no-op Observe marker.
	placer Placer
	obsNop bool

	// Cached address decomposition (Geometry recomputes these per call).
	shift    uint
	numSets  uint64
	setShift uint // log2(numSets) when setsPow2
	setsPow2 bool
}

// Option configures a Cache at construction.
type Option func(*Cache)

// WithPartialTags stores and compares only the low-order bits of each tag
// selected by mask (e.g. 0xFF for 8-bit partial tags). Partial tags model
// the paper's shadow-array cost reduction; aliasing between distinct blocks
// whose masked tags collide is the deliberate consequence.
func WithPartialTags(mask uint64) Option {
	return func(c *Cache) { c.tagMask = mask }
}

// PartialMask returns the mask selecting the low n bits, or FullTagMask for
// n <= 0 ("full tags") and n >= 64.
func PartialMask(n int) uint64 {
	if n <= 0 || n >= 64 {
		return FullTagMask
	}
	return (1 << uint(n)) - 1
}

// New creates a cache with the given geometry and replacement policy.
// It panics on an invalid geometry: cache shapes are static configuration,
// and misconfiguration is a programming error, not a runtime condition.
func New(g Geometry, pol Policy, opts ...Option) *Cache {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{geo: g, tagMask: FullTagMask, pol: pol, ways: g.Ways}
	c.shift = g.lineShift()
	c.numSets = uint64(g.Sets())
	c.setsPow2 = c.numSets&(c.numSets-1) == 0
	for s := c.numSets; s > 1; s >>= 1 {
		c.setShift++
	}
	c.placer, _ = pol.(Placer)
	_, c.obsNop = pol.(nopObserve)
	for _, o := range opts {
		o(c)
	}
	c.Reset()
	return c
}

// decompose splits an address into set index and full tag using the cached
// geometry parameters.
func (c *Cache) decompose(a Addr) (set int, tag uint64) {
	block := uint64(a) >> c.shift
	if c.setsPow2 {
		return int(block & (c.numSets - 1)), block >> c.setShift
	}
	return int(block % c.numSets), block
}

// Reset clears all lines, statistics, and policy metadata.
func (c *Cache) Reset() {
	c.lines = make([]Line, c.geo.Sets()*c.ways)
	c.stats = Stats{}
	c.pol.Attach(c.geo)
}

// Geometry returns the cache shape.
func (c *Cache) Geometry() Geometry { return c.geo }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() Policy { return c.pol }

// TagMask returns the active tag mask (FullTagMask unless partial tags).
func (c *Cache) TagMask() uint64 { return c.tagMask }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// MaskedTag returns the stored form of the full tag for address a.
func (c *Cache) MaskedTag(a Addr) uint64 {
	_, tag := c.decompose(a)
	return tag & c.tagMask
}

// Set returns a read-only view of the lines in set s. The returned slice
// aliases internal storage and must not be modified or retained across
// accesses.
func (c *Cache) Set(s int) []Line { return c.lines[s*c.ways : s*c.ways+c.ways] }

// find returns the way holding tag in set, or -1.
func (c *Cache) find(set int, tag uint64) int {
	lines := c.lines[set*c.ways : set*c.ways+c.ways]
	for w := range lines {
		if lines[w].Valid && lines[w].Tag == tag {
			return w
		}
	}
	return -1
}

// Contains reports whether the block of address a is resident.
func (c *Cache) Contains(a Addr) bool {
	set, tag := c.decompose(a)
	return c.find(set, tag&c.tagMask) >= 0
}

// ContainsMasked reports whether any line in set matches tag after applying
// this cache's tag mask. The adaptive policy uses it to ask "is this real
// block (apparently) in the shadow cache?".
func (c *Cache) ContainsMasked(set int, fullTag uint64) bool {
	return c.find(set, fullTag&c.tagMask) >= 0
}

// FindTag returns the way holding fullTag (after masking) in set, or -1 —
// a pure query with no statistics or policy side effects.
func (c *Cache) FindTag(set int, fullTag uint64) int {
	return c.find(set, fullTag&c.tagMask)
}

// Access performs one reference to address a. write marks the line dirty on
// hit or fill. The returned AccessResult reports hit/miss and any eviction.
func (c *Cache) Access(a Addr, write bool) AccessResult {
	set, tag := c.decompose(a)
	return c.AccessTag(set, tag, write)
}

// AccessTag performs one reference by pre-decomposed set index and full
// tag, applying this cache's tag mask. The adaptive policy drives its
// shadow arrays through this entry point so that real and shadow caches
// agree on set indexing regardless of their tag masks.
//
// The probe is fused: one pass over the set yields both the hit way and
// the first invalid (fill-preferred) way, so a miss needs no second scan
// and Victim is consulted only when the set is genuinely full.
func (c *Cache) AccessTag(set int, fullTag uint64, write bool) AccessResult {
	tag := fullTag & c.tagMask
	lines := c.lines[set*c.ways : set*c.ways+c.ways]

	c.stats.Accesses++
	if write {
		c.stats.Writes++
	}

	way, invalid := -1, -1
	for w := range lines {
		if !lines[w].Valid {
			if invalid < 0 {
				invalid = w
			}
			continue
		}
		if lines[w].Tag == tag {
			way = w
			break
		}
	}
	hit := way >= 0
	if !c.obsNop {
		c.pol.Observe(set, tag, hit)
	}

	if hit {
		c.stats.Hits++
		c.pol.Touch(set, way)
		if write {
			lines[way].Dirty = true
		}
		return AccessResult{Hit: true, Way: way}
	}

	c.stats.Misses++
	res := AccessResult{Way: -1}

	// A Placer policy dictates placement outright (and may force an
	// eviction while invalid ways remain — strict way partitioning).
	// Otherwise prefer an invalid way, and only consult Victim when the
	// set is full.
	if c.placer != nil {
		res.Way = c.placer.Place(set, lines, tag)
	}
	if res.Way < 0 {
		res.Way = invalid
	}
	if res.Way < 0 {
		res.Way = c.pol.Victim(set, lines, tag)
	}
	if res.Way < 0 || res.Way >= c.ways {
		panic(fmt.Sprintf("cache: policy %s returned invalid victim way %d", c.pol.Name(), res.Way))
	}
	if v := lines[res.Way]; v.Valid {
		res.Evicted = true
		res.EvictedTag = v.Tag
		res.Writeback = v.Dirty
		c.stats.Evictions++
		if v.Dirty {
			c.stats.Writebacks++
		}
	}

	lines[res.Way] = Line{Tag: tag, Valid: true, Dirty: write}
	c.pol.Insert(set, res.Way, tag)
	return res
}

// ProbeTag performs a fill-free reference by pre-decomposed set index and
// full tag: the policy's Observe/Touch hooks run and statistics count the
// access, but a miss leaves the set unchanged — no victim selection, no
// insertion. Lookup-style consumers (the adaptivekv Get path) use it so a
// read miss returns to the caller instead of fabricating a fill; the
// eventual read-through Set performs the fill as a separate access.
func (c *Cache) ProbeTag(set int, fullTag uint64) (way int, hit bool) {
	tag := fullTag & c.tagMask
	lines := c.lines[set*c.ways : set*c.ways+c.ways]

	c.stats.Accesses++
	way = -1
	for w := range lines {
		if lines[w].Valid && lines[w].Tag == tag {
			way = w
			break
		}
	}
	hit = way >= 0
	if !c.obsNop {
		c.pol.Observe(set, tag, hit)
	}
	if hit {
		c.stats.Hits++
		c.pol.Touch(set, way)
		return way, true
	}
	c.stats.Misses++
	return -1, false
}

// InvalidateTag removes the line matching fullTag (after masking) from set,
// returning the way it occupied (-1 if absent) and whether it was dirty.
// Like Invalidate, policy metadata for the way is left as-is; the way
// becomes fill-preferred by virtue of being invalid. The eviction does not
// count toward Stats.Evictions: it is an explicit removal, not a capacity
// decision.
func (c *Cache) InvalidateTag(set int, fullTag uint64) (way int, dirty bool) {
	if w := c.find(set, fullTag&c.tagMask); w >= 0 {
		i := set*c.ways + w
		dirty = c.lines[i].Dirty
		c.lines[i] = Line{}
		return w, dirty
	}
	return -1, false
}

// Invalidate removes the block of address a if resident, returning whether
// it was present and dirty. Policy metadata for the way is left as-is; the
// way becomes fill-preferred by virtue of being invalid.
func (c *Cache) Invalidate(a Addr) (present, dirty bool) {
	set, tag := c.decompose(a)
	w, dirty := c.InvalidateTag(set, tag)
	return w >= 0, dirty
}

// Occupancy returns the number of valid lines in set s.
func (c *Cache) Occupancy(s int) int {
	n := 0
	for _, l := range c.Set(s) {
		if l.Valid {
			n++
		}
	}
	return n
}
