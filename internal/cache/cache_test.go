package cache

import (
	"testing"
	"testing/quick"
)

// directPolicy is a trivial policy that always evicts way 0; it isolates
// cache mechanics from replacement logic in these tests.
type directPolicy struct{ NopObserver }

func (directPolicy) Name() string                   { return "direct" }
func (directPolicy) Attach(Geometry)                {}
func (directPolicy) Touch(int, int)                 {}
func (directPolicy) Insert(int, int, uint64)        {}
func (directPolicy) Victim(int, []Line, uint64) int { return 0 }

func g512k() Geometry { return Geometry{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8} }

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		g  Geometry
		ok bool
	}{
		{Geometry{512 << 10, 64, 8}, true},
		{Geometry{576 << 10, 64, 9}, true},  // paper's 9-way 576KB
		{Geometry{640 << 10, 64, 10}, true}, // paper's 10-way 640KB
		{Geometry{16 << 10, 64, 4}, true},   // paper's L1
		{Geometry{512 << 10, 63, 8}, false}, // non-power-of-two line
		{Geometry{0, 64, 8}, false},
		{Geometry{512 << 10, 64, 0}, false},
		{Geometry{100, 64, 2}, false}, // not divisible
	}
	for _, c := range cases {
		err := c.g.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) error = %v, want ok=%v", c.g, err, c.ok)
		}
	}
}

func TestGeometryShape(t *testing.T) {
	g := g512k()
	if got := g.Sets(); got != 1024 {
		t.Errorf("Sets() = %d, want 1024", got)
	}
	if got := g.Lines(); got != 8192 {
		t.Errorf("Lines() = %d, want 8192", got)
	}
	// The paper assumes 40-bit physical addresses; 512KB/64B/8-way then has
	// 40-6-10 = 24 tag bits (Section 3.1 footnote).
	if got := g.TagBits(40); got != 24 {
		t.Errorf("TagBits(40) = %d, want 24", got)
	}
}

func TestGeometryAddressDecomposition(t *testing.T) {
	g := g512k()
	// Two addresses within one line share block, index, and tag.
	a1, a2 := Addr(0x12345678), Addr(0x12345678^0x3F)
	if g.Block(a1) != g.Block(a2) || g.Index(a1) != g.Index(a2) || g.Tag(a1) != g.Tag(a2) {
		t.Errorf("same-line addresses decompose differently")
	}
	// Addresses one set apart differ in index, not tag.
	b1, b2 := Addr(0), Addr(64)
	if g.Index(b1) == g.Index(b2) {
		t.Errorf("adjacent lines map to the same set")
	}
	if g.Tag(b1) != g.Tag(b2) {
		t.Errorf("adjacent lines within the tag stride have different tags")
	}
	// Round trip: (tag, index) uniquely identifies a block.
	err := quick.Check(func(x, y uint64) bool {
		ax, ay := Addr(x), Addr(y)
		sameBlock := g.Block(ax) == g.Block(ay)
		sameTI := g.Tag(ax) == g.Tag(ay) && g.Index(ax) == g.Index(ay)
		return sameBlock == sameTI
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestGeometryNonPowerOfTwoSets(t *testing.T) {
	// 9-way 576KB: 1024 sets; 10-way 640KB: 1024 sets. Also test a truly
	// odd set count.
	for _, g := range []Geometry{
		{576 << 10, 64, 9},
		{640 << 10, 64, 10},
		{3 * 64 * 4, 64, 4}, // 3 sets
	} {
		if err := g.Validate(); err != nil {
			t.Fatalf("Validate(%v): %v", g, err)
		}
		c := New(g, directPolicy{})
		// Distinct blocks mapping to the same set must have distinct tags.
		seen := map[int]map[uint64]uint64{}
		for b := 0; b < 10000; b++ {
			a := Addr(b * g.LineBytes)
			set, tag := g.Index(a), g.Tag(a)
			if seen[set] == nil {
				seen[set] = map[uint64]uint64{}
			}
			if prev, ok := seen[set][tag]; ok && prev != g.Block(a) {
				t.Fatalf("%v: blocks %d and %d collide on (set=%d, tag=%#x)", g, prev, g.Block(a), set, tag)
			}
			seen[set][tag] = g.Block(a)
			c.Access(a, false)
		}
	}
}

func TestCacheColdFillsUseInvalidWays(t *testing.T) {
	g := Geometry{SizeBytes: 4 * 64, LineBytes: 64, Ways: 4} // 1 set, 4 ways
	c := New(g, directPolicy{})
	for i := 0; i < 4; i++ {
		res := c.Access(Addr(i*64), false)
		if res.Hit {
			t.Fatalf("access %d: unexpected hit", i)
		}
		if res.Evicted {
			t.Fatalf("access %d: eviction during cold fill", i)
		}
	}
	if got := c.Occupancy(0); got != 4 {
		t.Fatalf("Occupancy = %d, want 4", got)
	}
	// Fifth distinct block must evict (way 0 under directPolicy).
	res := c.Access(Addr(4*64), false)
	if !res.Evicted || res.Way != 0 {
		t.Fatalf("fifth fill: got %+v, want eviction at way 0", res)
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestCacheHitAndStats(t *testing.T) {
	c := New(g512k(), directPolicy{})
	a := Addr(0x40000)
	if res := c.Access(a, false); res.Hit {
		t.Fatal("first access hit")
	}
	if res := c.Access(a, false); !res.Hit {
		t.Fatal("second access missed")
	}
	if res := c.Access(a+63, false); !res.Hit { // same line
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 3/2/1", s)
	}
	if got := s.MissRatio(); got != 1.0/3.0 {
		t.Fatalf("MissRatio = %v", got)
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	g := Geometry{SizeBytes: 2 * 64, LineBytes: 64, Ways: 2} // 1 set, 2 ways
	c := New(g, directPolicy{})
	c.Access(Addr(0), true)   // dirty fill way 0
	c.Access(Addr(64), false) // clean fill way 1
	res := c.Access(Addr(128), false)
	if !res.Evicted || !res.Writeback {
		t.Fatalf("expected dirty eviction of way 0, got %+v", res)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
	// Write hit dirties a clean line.
	c2 := New(g, directPolicy{})
	c2.Access(Addr(0), false)
	c2.Access(Addr(0), true)
	res = c2.Access(Addr(64), false)
	if res.Evicted {
		t.Fatal("cold way should absorb the fill")
	}
	res = c2.Access(Addr(128), false)
	if !res.Writeback {
		t.Fatal("write-hit did not mark the line dirty")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New(g512k(), directPolicy{})
	a := Addr(0x1000)
	c.Access(a, true)
	present, dirty := c.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Contains(a) {
		t.Fatal("block still present after Invalidate")
	}
	present, _ = c.Invalidate(a)
	if present {
		t.Fatal("double Invalidate reported presence")
	}
	// The invalidated way is reused without eviction.
	if res := c.Access(a, false); res.Evicted {
		t.Fatal("fill after invalidate evicted")
	}
}

func TestProbeTagFillFree(t *testing.T) {
	g := Geometry{SizeBytes: 4 * 64, LineBytes: 64, Ways: 4} // 1 set, 4 ways
	c := New(g, directPolicy{})

	// A probe miss counts but does not fill.
	if way, hit := c.ProbeTag(0, 7); hit || way != -1 {
		t.Fatalf("cold probe = (%d, %v), want (-1, false)", way, hit)
	}
	if got := c.Occupancy(0); got != 0 {
		t.Fatalf("probe miss filled the set: occupancy %d", got)
	}

	// After a real fill, the probe hits at the same way without changing
	// anything.
	res := c.AccessTag(0, 7, false)
	if way, hit := c.ProbeTag(0, 7); !hit || way != res.Way {
		t.Fatalf("probe after fill = (%d, %v), want (%d, true)", way, hit, res.Way)
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want accesses=3 hits=1 misses=2", s)
	}
}

func TestProbeTagTouchesRecency(t *testing.T) {
	g := Geometry{SizeBytes: 2 * 64, LineBytes: 64, Ways: 2} // 1 set, 2 ways
	c := New(g, newLRUish())
	c.AccessTag(0, 1, false)
	c.AccessTag(0, 2, false)
	// Probe tag 1 so tag 2 becomes the LRU victim.
	c.ProbeTag(0, 1)
	res := c.AccessTag(0, 3, false)
	if !res.Evicted || res.EvictedTag != 2 {
		t.Fatalf("after probe-touch, evicted %+v, want tag 2", res)
	}
}

// lruish is a minimal LRU for recency tests without importing the policy
// package (which would create an import cycle policy -> cache -> policy).
type lruish struct {
	NopObserver
	clock uint64
	at    map[[2]int]uint64
}

func newLRUish() *lruish                        { return &lruish{} }
func (*lruish) Name() string                    { return "lruish" }
func (p *lruish) Attach(Geometry)               { p.at = map[[2]int]uint64{}; p.clock = 0 }
func (p *lruish) Touch(set, way int)            { p.clock++; p.at[[2]int{set, way}] = p.clock }
func (p *lruish) Insert(set, way int, _ uint64) { p.Touch(set, way) }
func (p *lruish) Victim(set int, lines []Line, _ uint64) int {
	best, bestAt := 0, ^uint64(0)
	for w := range lines {
		if at := p.at[[2]int{set, w}]; at < bestAt {
			best, bestAt = w, at
		}
	}
	return best
}

func TestInvalidateTag(t *testing.T) {
	g := Geometry{SizeBytes: 4 * 64, LineBytes: 64, Ways: 4}
	c := New(g, directPolicy{})
	c.AccessTag(0, 5, true) // dirty fill
	way, dirty := c.InvalidateTag(0, 5)
	if way < 0 || !dirty {
		t.Fatalf("InvalidateTag = (%d, %v), want (>=0, true)", way, dirty)
	}
	if c.ContainsMasked(0, 5) {
		t.Fatal("tag still present after InvalidateTag")
	}
	if way, _ := c.InvalidateTag(0, 5); way != -1 {
		t.Fatalf("double InvalidateTag returned way %d, want -1", way)
	}
	// Explicit removal is not an eviction.
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("Evictions = %d, want 0", ev)
	}
	// The freed way is fill-preferred.
	if res := c.AccessTag(0, 9, false); res.Evicted {
		t.Fatal("fill after InvalidateTag evicted")
	}
}

func TestPartialMask(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{0, FullTagMask}, {-1, FullTagMask}, {64, FullTagMask},
		{1, 0x1}, {4, 0xF}, {6, 0x3F}, {8, 0xFF}, {10, 0x3FF}, {12, 0xFFF},
	}
	for _, c := range cases {
		if got := PartialMask(c.n); got != c.want {
			t.Errorf("PartialMask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestPartialTagAliasing(t *testing.T) {
	// With a 4-bit partial tag, blocks whose tags differ only above bit 3
	// alias: the second "misses" but matches the first's masked tag via
	// ContainsMasked, and an Access to it *hits* falsely.
	g := Geometry{SizeBytes: 4 * 64, LineBytes: 64, Ways: 4}
	c := New(g, directPolicy{}, WithPartialTags(PartialMask(4)))
	c.Access(Addr(0), false) // tag 0
	alias := Addr(16 * 64)   // tag 16 -> masked 0 (1 set)
	if !c.ContainsMasked(0, 16) {
		t.Fatal("aliased tag not reported present")
	}
	if res := c.Access(alias, false); !res.Hit {
		t.Fatal("aliased access did not false-hit")
	}
	// A full-tag cache keeps them distinct.
	cf := New(g, directPolicy{})
	cf.Access(Addr(0), false)
	if res := cf.Access(alias, false); res.Hit {
		t.Fatal("full tags false-hit")
	}
}

func TestFullWidthPartialTagsEquivalent(t *testing.T) {
	// Partial tags at least as wide as the real tag must behave exactly
	// like full tags on any trace.
	g := Geometry{SizeBytes: 64 * 64, LineBytes: 64, Ways: 4}
	full := New(g, NewTestLRU())
	wide := New(g, NewTestLRU(), WithPartialTags(PartialMask(63)))
	rng := uint64(1)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		a := Addr(rng % (1 << 22))
		r1, r2 := full.Access(a, false), wide.Access(a, false)
		if r1.Hit != r2.Hit {
			t.Fatalf("access %d: full hit=%v wide hit=%v", i, r1.Hit, r2.Hit)
		}
	}
	if full.Stats() != wide.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", full.Stats(), wide.Stats())
	}
}

func TestAccessTagMatchesAccess(t *testing.T) {
	g := g512k()
	c1 := New(g, NewTestLRU())
	c2 := New(g, NewTestLRU())
	rng := uint64(7)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		a := Addr(rng % (1 << 30))
		r1 := c1.Access(a, i%5 == 0)
		r2 := c2.AccessTag(g.Index(a), g.Tag(a), i%5 == 0)
		if r1 != r2 {
			t.Fatalf("access %d: Access=%+v AccessTag=%+v", i, r1, r2)
		}
	}
}

func TestSetOccupancyInvariants(t *testing.T) {
	g := Geometry{SizeBytes: 16 * 64, LineBytes: 64, Ways: 4}
	c := New(g, NewTestLRU())
	rng := uint64(42)
	for i := 0; i < 50000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Access(Addr(rng%(1<<16)), false)
	}
	for s := 0; s < g.Sets(); s++ {
		lines := c.Set(s)
		if len(lines) != g.Ways {
			t.Fatalf("set %d has %d ways", s, len(lines))
		}
		seen := map[uint64]bool{}
		for _, l := range lines {
			if !l.Valid {
				continue
			}
			if seen[l.Tag] {
				t.Fatalf("set %d holds duplicate tag %#x", s, l.Tag)
			}
			seen[l.Tag] = true
		}
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := New(g512k(), NewTestLRU())
	for i := 0; i < 1000; i++ {
		c.Access(Addr(i*64), false)
	}
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", s)
	}
	if c.Contains(Addr(0)) {
		t.Fatal("contents survived Reset")
	}
}

// NewTestLRU is a minimal LRU used by this package's tests (the production
// LRU lives in internal/policy, which depends on this package).
type testLRU struct {
	NopObserver
	ways  int
	clock uint64
	at    []uint64
}

func NewTestLRU() *testLRU { return &testLRU{} }

func (p *testLRU) Name() string { return "testLRU" }
func (p *testLRU) Attach(g Geometry) {
	p.ways = g.Ways
	p.clock = 0
	p.at = make([]uint64, g.Sets()*g.Ways)
}
func (p *testLRU) Touch(set, way int) {
	p.clock++
	p.at[set*p.ways+way] = p.clock
}
func (p *testLRU) Insert(set, way int, _ uint64) { p.Touch(set, way) }
func (p *testLRU) Victim(set int, _ []Line, _ uint64) int {
	base := set * p.ways
	best := 0
	for w := 1; w < p.ways; w++ {
		if p.at[base+w] < p.at[base+best] {
			best = w
		}
	}
	return best
}
