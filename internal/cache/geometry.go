// Package cache implements a set-associative processor cache model with
// pluggable replacement policies, optional partial-tag matching, and
// multi-level hierarchy composition. It is the substrate on which the
// adaptive replacement scheme of internal/core operates.
package cache

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// Geometry describes the shape of a set-associative cache.
type Geometry struct {
	SizeBytes int // total data capacity in bytes
	LineBytes int // cache line (block) size in bytes
	Ways      int // set associativity
}

// Validate reports whether the geometry is internally consistent: positive
// sizes, power-of-two line size, and a whole, positive number of sets.
// The number of sets need not be a power of two (the paper discusses 9- and
// 10-way 512KB-data caches, which keep a power-of-two set count; we instead
// support arbitrary set counts via modulo indexing so either construction
// works).
func (g Geometry) Validate() error {
	if g.SizeBytes <= 0 || g.LineBytes <= 0 || g.Ways <= 0 {
		return fmt.Errorf("cache: geometry %+v: all fields must be positive", g)
	}
	if g.LineBytes&(g.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a power of two", g.LineBytes)
	}
	if g.SizeBytes%(g.LineBytes*g.Ways) != 0 {
		return fmt.Errorf("cache: size %d is not divisible by line*ways %d", g.SizeBytes, g.LineBytes*g.Ways)
	}
	return nil
}

// Sets returns the number of sets.
func (g Geometry) Sets() int {
	return g.SizeBytes / (g.LineBytes * g.Ways)
}

// Lines returns the total number of cache lines.
func (g Geometry) Lines() int {
	return g.SizeBytes / g.LineBytes
}

// lineShift returns log2(LineBytes).
func (g Geometry) lineShift() uint {
	s := uint(0)
	for 1<<s < g.LineBytes {
		s++
	}
	return s
}

// Block returns the block (line) number of an address: the address with the
// intra-line offset stripped.
func (g Geometry) Block(a Addr) uint64 {
	return uint64(a) >> g.lineShift()
}

// Index returns the set index for an address.
func (g Geometry) Index(a Addr) int {
	return int(g.Block(a) % uint64(g.Sets()))
}

// Tag returns the full tag for an address: the block number with the set
// index stripped. For non-power-of-two set counts the full block number is
// used as the tag (a strict superset of the information a hardware tag
// holds, but exact for simulation purposes).
func (g Geometry) Tag(a Addr) uint64 {
	sets := uint64(g.Sets())
	b := g.Block(a)
	if sets&(sets-1) == 0 {
		return b / sets
	}
	return b
}

// TagBits returns the number of significant tag bits assuming physical
// addresses of physBits bits. Used by the storage model.
func (g Geometry) TagBits(physBits int) int {
	bits := physBits - int(g.lineShift())
	sets := g.Sets()
	for sets > 1 {
		sets >>= 1
		bits--
	}
	if bits < 0 {
		bits = 0
	}
	return bits
}

func (g Geometry) String() string {
	return fmt.Sprintf("%dKB/%dB/%d-way", g.SizeBytes/1024, g.LineBytes, g.Ways)
}
