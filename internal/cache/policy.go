package cache

// Policy is a cache replacement policy. A Policy owns whatever per-set,
// per-way metadata it needs (recency order, frequency counters, insertion
// order, ...). The Cache drives the policy through the hooks below.
//
// Hook call order for one access:
//
//	Observe(set, tag, hit)        — every access, before any state change
//	hit:  Touch(set, way)
//	miss: Victim(set, lines, tag) — only if the set is full
//	      Insert(set, way, tag)   — after the fill
//
// Policies must be deterministic given their construction parameters (the
// Random policy takes an explicit seed).
type Policy interface {
	// Name identifies the policy in reports ("LRU", "LFU", ...).
	Name() string

	// Attach (re)binds the policy to a cache shape, resetting all metadata.
	// It is called once by New and again by Cache.Reset.
	Attach(g Geometry)

	// Observe is called for every access before the cache state changes.
	// Most simple policies ignore it; the adaptive policy uses it to update
	// its shadow tag arrays and miss history.
	Observe(set int, tag uint64, hit bool)

	// Touch is called when an access hits way in set.
	Touch(set, way int)

	// Victim selects the way to evict in a full set. lines is the current
	// content of the set (read-only view); tag is the (masked) tag of the
	// incoming block.
	Victim(set int, lines []Line, tag uint64) int

	// Insert is called after a new block with the given (masked) tag has
	// been filled into way.
	Insert(set, way int, tag uint64)
}

// Placer is an optional Policy extension for policies that partition the
// ways of a set (e.g. split-associativity management): on every fill the
// cache asks the Placer where the incoming block must live. If the
// returned way holds a valid line, that line is evicted — even if other
// ways are invalid, which is exactly what strict partitioning requires.
// Returning -1 accepts the cache's default placement (first invalid way,
// else Victim).
type Placer interface {
	Place(set int, lines []Line, tag uint64) int
}

// NopObserver may be embedded by policies that do not care about Observe.
// Embedding it also marks the policy so the cache can skip the Observe
// interface call entirely on the hot path; a policy must therefore only
// embed NopObserver if it truly ignores Observe (overriding Observe while
// embedding NopObserver would leave the override uncalled).
type NopObserver struct{}

// Observe implements Policy with no action.
func (NopObserver) Observe(int, uint64, bool) {}

// NopObserve marks the embedding policy's Observe as a no-op.
func (NopObserver) NopObserve() {}

// nopObserve is the capability the cache probes once at construction to
// elide per-access Observe calls.
type nopObserve interface{ NopObserve() }
