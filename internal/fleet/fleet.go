// Package fleet brings up in-process adaptcached node fleets for chaos
// drivers, gates, and tests: each node is a real kvserver on a loopback
// listener, optionally behind faultnet accept-fault wrapping and a
// faultnet proxy, with kill/restart that keeps the node's address
// stable across the outage. cmd/kvchaos (single node under fault
// injection) and cmd/kvrouterchaos (a routed 3-node partition drill)
// share this harness instead of each growing its own bring-up.
//
// Restart deliberately starts a fresh, empty cache: a cache node that
// lost its memory is the easy failure mode (misses are always legal),
// and it is exactly what a crashed adaptcached process looks like to
// the routing tier.
package fleet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/kvserver"
)

// NodeConfig assembles one node.
type NodeConfig struct {
	// Server configures the kvserver instance (cache geometry, timeouts,
	// MaxConns, FaultHook). Reused verbatim on Restart.
	Server kvserver.Config

	// ListenFaults, when non-nil, wraps the node's listener with
	// faultnet accept-error injection.
	ListenFaults *faultnet.Config

	// ProxyFaults, when non-nil, puts a faultnet proxy in front of the
	// node; Addr() then returns the proxy address, which stays stable
	// across Kill/Restart while the backend behind it dies and returns.
	ProxyFaults *faultnet.Config
}

// Node is one running (or killed) cache server.
type Node struct {
	cfg NodeConfig

	mu          sync.Mutex
	srv         *kvserver.Server
	ln          net.Listener      // base listener; nil while killed or partitioned
	wrapped     net.Listener      // fault-wrapped view served from (== ln when unwrapped)
	proxy       *faultnet.Proxy   // nil unless ProxyFaults
	addr        string            // server address, stable across restarts
	flis        *faultnet.Listener // non-nil when ListenFaults wrapped
	tracker     *connTracker      // outermost listener; lets Partition sever live conns
	partitioned bool              // true between Partition and Heal
}

// connTracker records every connection the server accepts so Partition
// can sever them. Accept returns the connection unwrapped — wrapping
// would hide *net.TCPConn from net.Buffers.WriteTo and silently disable
// the server's vectored-write path — so entries are only dropped when
// severAll closes them or the tracker is replaced; for a test-harness
// node that is a bounded, short-lived map.
type connTracker struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newConnTracker(ln net.Listener) *connTracker {
	return &connTracker{Listener: ln, conns: make(map[net.Conn]struct{})}
}

func (t *connTracker) Accept() (net.Conn, error) {
	c, err := t.Listener.Accept()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.conns[c] = struct{}{}
	t.mu.Unlock()
	return c, nil
}

// severAll force-closes every connection accepted through the tracker.
// Closing an already-closed conn is a harmless error.
func (t *connTracker) severAll() {
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	clear(t.conns)
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// StartNode listens on an ephemeral loopback port and serves cfg.
func StartNode(cfg NodeConfig) (*Node, error) {
	n := &Node{cfg: cfg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: listen: %w", err)
	}
	n.addr = ln.Addr().String()
	n.serveLocked(ln)
	if cfg.ProxyFaults != nil {
		p, err := faultnet.NewProxy("127.0.0.1:0", n.addr, *cfg.ProxyFaults)
		if err != nil {
			n.Kill()
			return nil, fmt.Errorf("fleet: proxy: %w", err)
		}
		n.proxy = p
	}
	return n, nil
}

// serveLocked builds a fresh server on ln and starts serving. Callers
// hold no lock during StartNode (unshared) and mu during Restart.
func (n *Node) serveLocked(ln net.Listener) {
	n.srv = kvserver.New(n.cfg.Server)
	n.attachLocked(ln)
}

// attachLocked points the node's existing server at ln (fault wrapping
// and conn tracking applied) and starts serving from it.
func (n *Node) attachLocked(ln net.Listener) {
	n.ln = ln
	n.wrapped = ln
	n.flis = nil
	if n.cfg.ListenFaults != nil {
		n.flis = faultnet.Wrap(ln, *n.cfg.ListenFaults)
		n.wrapped = n.flis
	}
	n.tracker = newConnTracker(n.wrapped)
	n.partitioned = false
	go n.srv.Serve(n.tracker)
}

// Addr is the address clients should dial: the proxy when one is
// configured, the server otherwise. Stable across Kill/Restart.
func (n *Node) Addr() string {
	if n.proxy != nil {
		return n.proxy.Addr()
	}
	return n.addr
}

// ServerAddr is the server's own address, bypassing any proxy.
func (n *Node) ServerAddr() string { return n.addr }

// Server returns the current kvserver instance (a fresh one after each
// Restart); nil while killed.
func (n *Node) Server() *kvserver.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// ListenStats returns the accept-fault injection tallies, zero when the
// node runs unwrapped.
func (n *Node) ListenStats() faultnet.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.flis == nil {
		return faultnet.Stats{}
	}
	return n.flis.Stats()
}

// ProxyStats returns the client-facing proxy's fault tallies, zero when
// no proxy is configured.
func (n *Node) ProxyStats() faultnet.Stats {
	if n.proxy == nil {
		return faultnet.Stats{}
	}
	return n.proxy.Stats()
}

// Kill stops the node hard: the listener closes (new dials are refused),
// in-flight connections are force-closed with zero grace, and every
// handler goroutine exits before Kill returns. The proxy, if any, stays
// up — its clients see dead-backend behavior, which is the realistic
// view of a crashed process behind a load balancer.
func (n *Node) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return
	}
	n.srv.Shutdown(n.ln, 0)
	n.ln = nil
}

// Restart re-listens on the node's original address with a fresh, empty
// cache. The port was just released by Kill, but the OS may lag a
// moment; a short retry loop absorbs that.
func (n *Node) Restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln != nil {
		return fmt.Errorf("fleet: node %s already running", n.addr)
	}
	ln, err := n.relistenLocked()
	if err != nil {
		return err
	}
	n.serveLocked(ln)
	return nil
}

// relistenLocked reopens the node's original address, absorbing the
// OS's release lag with a short retry loop.
func (n *Node) relistenLocked() (net.Listener, error) {
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			return ln, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("fleet: re-listen on %s: %w", n.addr, err)
}

// Partition severs the node from the network without stopping it: the
// listener closes (the serving loop exits on net.ErrClosed without
// draining), established connections are force-closed, but the server
// and its cache stay hot. To the routing tier this is indistinguishable
// from Kill — dials are refused either way — but unlike a restart the
// node later returns with its pre-outage contents intact, which is
// exactly the stale-replica hazard flush-on-reintegrate exists for.
func (n *Node) Partition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return
	}
	n.ln.Close()
	n.tracker.severAll()
	n.ln = nil
	n.partitioned = true
}

// Heal reopens the listener after a Partition, resuming service from
// the same server and the same still-populated cache.
func (n *Node) Heal() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln != nil {
		return fmt.Errorf("fleet: node %s already running", n.addr)
	}
	if !n.partitioned {
		return fmt.Errorf("fleet: node %s was killed, not partitioned; use Restart", n.addr)
	}
	ln, err := n.relistenLocked()
	if err != nil {
		return err
	}
	n.attachLocked(ln)
	return nil
}

// Close tears the node down: proxy first (no new client traffic), then
// the server with a small grace period.
func (n *Node) Close() {
	if n.proxy != nil {
		n.proxy.Close()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln != nil {
		n.srv.Shutdown(n.ln, time.Second)
		n.ln = nil
	}
}

// Fleet is a set of nodes started together.
type Fleet struct {
	Nodes []*Node
}

// Start brings up count nodes; mk supplies each node's config (called
// with the node index). On any failure the already-started nodes are
// closed.
func Start(count int, mk func(i int) NodeConfig) (*Fleet, error) {
	f := &Fleet{}
	for i := 0; i < count; i++ {
		n, err := StartNode(mk(i))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, n)
	}
	return f, nil
}

// Addrs returns each node's client-facing address, in index order.
func (f *Fleet) Addrs() []string {
	addrs := make([]string, len(f.Nodes))
	for i, n := range f.Nodes {
		addrs[i] = n.Addr()
	}
	return addrs
}

// Close tears every node down.
func (f *Fleet) Close() {
	for _, n := range f.Nodes {
		n.Close()
	}
}
