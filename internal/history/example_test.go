package history_test

import (
	"fmt"

	"repro/internal/history"
)

func ExampleWindow() {
	// An 8-entry window over two component policies (A=0, B=1).
	w := history.NewWindow(8)
	w.Attach(1, 2)
	w.Record(0, 0b01) // A missed, B hit
	w.Record(0, 0b01)
	w.Record(0, 0b10) // B missed, A hit
	w.Record(0, 0b11) // both missed: not recorded
	counts := w.Counts(0, make([]int, 2))
	fmt.Println(counts, "best:", history.Best(counts))
	// Output: [2 1] best: 1
}
