package history

import "fmt"

// Window is the paper's miss-history buffer: per set, a ring of the latest
// m differential-miss events. For two components this is exactly the
// paper's m-bit vector ("recording the latest m misses when only one of the
// two component policies misses"); for N components each slot holds the
// miss bitmask of a differential event (some but not all components
// missed). Per-component tallies are maintained incrementally so Counts is
// O(components) rather than O(m).
type Window struct {
	m     int
	comps int
	// ring[set*m+i] holds a recorded missMask; live[set] slots are valid,
	// next[set] is the ring write cursor.
	ring []uint64
	live []int
	next []int
	// tally[set*comps+c] is component c's miss count within the window.
	tally []int32
}

// NewWindow returns a Window of m entries per set. The paper sets m to the
// associativity or a small multiple of it.
func NewWindow(m int) *Window {
	if m < 1 {
		panic("history: window length must be >= 1")
	}
	return &Window{m: m}
}

// Name implements Buffer.
func (w *Window) Name() string { return fmt.Sprintf("window(%d)", w.m) }

// Len returns m.
func (w *Window) Len() int { return w.m }

// Attach implements Buffer.
func (w *Window) Attach(sets, comps int) {
	w.comps = comps
	w.ring = make([]uint64, sets*w.m)
	w.live = make([]int, sets)
	w.next = make([]int, sets)
	w.tally = make([]int32, sets*comps)
}

func (w *Window) applyMask(set int, mask uint64, delta int32) {
	base := set * w.comps
	for c := 0; c < w.comps; c++ {
		if mask&(1<<uint(c)) != 0 {
			w.tally[base+c] += delta
		}
	}
}

// Record implements Buffer: differential events only.
func (w *Window) Record(set int, missMask uint64) {
	if allOrNone(missMask, w.comps) {
		return
	}
	slot := set*w.m + w.next[set]
	if w.live[set] == w.m {
		w.applyMask(set, w.ring[slot], -1) // evict the oldest event
	} else {
		w.live[set]++
	}
	w.ring[slot] = missMask
	w.applyMask(set, missMask, +1)
	w.next[set] = (w.next[set] + 1) % w.m
}

// Counts implements Buffer.
func (w *Window) Counts(set int, counts []int) []int {
	base := set * w.comps
	for i := range counts {
		counts[i] = int(w.tally[base+i])
	}
	return counts
}
