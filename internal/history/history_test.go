package history

import (
	"testing"
	"testing/quick"
)

const (
	missA = 1 << 0
	missB = 1 << 1
	both  = missA | missB
	none  = 0
)

func counts2(b Buffer, set int) (int, int) {
	c := b.Counts(set, make([]int, 2))
	return c[0], c[1]
}

func TestWindowRecordsDifferentialOnly(t *testing.T) {
	w := NewWindow(8)
	w.Attach(4, 2)
	w.Record(1, both) // ignored
	w.Record(1, none) // ignored
	w.Record(1, missA)
	w.Record(1, missB)
	w.Record(1, missA)
	a, b := counts2(w, 1)
	if a != 2 || b != 1 {
		t.Fatalf("counts = (%d,%d), want (2,1)", a, b)
	}
	// Other sets untouched.
	if a, b := counts2(w, 0); a != 0 || b != 0 {
		t.Fatalf("set 0 contaminated: (%d,%d)", a, b)
	}
}

func TestWindowEvictsOldEvents(t *testing.T) {
	w := NewWindow(4)
	w.Attach(1, 2)
	for i := 0; i < 4; i++ {
		w.Record(0, missA)
	}
	if a, _ := counts2(w, 0); a != 4 {
		t.Fatalf("count = %d, want 4", a)
	}
	// Four B-misses push all A-misses out of the m=4 window.
	for i := 0; i < 4; i++ {
		w.Record(0, missB)
	}
	a, b := counts2(w, 0)
	if a != 0 || b != 4 {
		t.Fatalf("counts = (%d,%d), want (0,4)", a, b)
	}
}

func TestWindowAdaptsWithinM(t *testing.T) {
	// The window exists for quick adaptation: after m differential events
	// favoring B, B must be preferred regardless of ancient history.
	w := NewWindow(8)
	w.Attach(1, 2)
	for i := 0; i < 1000; i++ {
		w.Record(0, missB) // long stretch where B misses
	}
	for i := 0; i < 8; i++ {
		w.Record(0, missA)
	}
	c := w.Counts(0, make([]int, 2))
	if Best(c) != 1 {
		t.Fatalf("after 8 A-misses, Best = %d, want 1 (B); counts=%v", Best(c), c)
	}
}

func TestWindowLenAndName(t *testing.T) {
	w := NewWindow(16)
	if w.Len() != 16 {
		t.Fatalf("Len = %d", w.Len())
	}
	if w.Name() != "window(16)" {
		t.Fatalf("Name = %q", w.Name())
	}
}

func TestWindowBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestCountersRecordEverything(t *testing.T) {
	c := NewCounters()
	c.Attach(2, 2)
	c.Record(0, both) // counters count all misses, unlike the window
	c.Record(0, missA)
	c.Record(0, none)
	a, b := counts2(c, 0)
	if a != 2 || b != 1 {
		t.Fatalf("counts = (%d,%d), want (2,1)", a, b)
	}
}

func TestCountersNeverForget(t *testing.T) {
	c := NewCounters()
	c.Attach(1, 2)
	for i := 0; i < 100000; i++ {
		c.Record(0, missA)
	}
	if a, _ := counts2(c, 0); a != 100000 {
		t.Fatalf("count = %d, want 100000", a)
	}
}

func TestSaturatingHalvesOnSaturation(t *testing.T) {
	s := NewSaturating(3) // max 7
	s.Attach(1, 2)
	for i := 0; i < 7; i++ {
		s.Record(0, missA)
	}
	s.Record(0, missB)
	a, b := counts2(s, 0)
	if a != 7 || b != 1 {
		t.Fatalf("pre-saturation counts = (%d,%d), want (7,1)", a, b)
	}
	s.Record(0, missA) // A at max: both halve (3, 0), then A increments
	a, b = counts2(s, 0)
	if a != 4 || b != 0 {
		t.Fatalf("post-halving counts = (%d,%d), want (4,0)", a, b)
	}
}

func TestSaturatingIgnoresNonDifferential(t *testing.T) {
	s := NewSaturating(4)
	s.Attach(1, 2)
	s.Record(0, both)
	s.Record(0, none)
	if a, b := counts2(s, 0); a != 0 || b != 0 {
		t.Fatalf("counts = (%d,%d), want zeros", a, b)
	}
}

func TestBestPrefersLowestIndexOnTies(t *testing.T) {
	cases := []struct {
		counts []int
		want   int
	}{
		{[]int{0, 0}, 0},
		{[]int{5, 5}, 0},
		{[]int{3, 2}, 1},
		{[]int{2, 3}, 0},
		{[]int{4, 1, 1, 9}, 1},
		{[]int{9, 8, 7, 7}, 2},
	}
	for _, c := range cases {
		if got := Best(c.counts); got != c.want {
			t.Errorf("Best(%v) = %d, want %d", c.counts, got, c.want)
		}
	}
}

func TestThreeComponentMasks(t *testing.T) {
	w := NewWindow(8)
	w.Attach(1, 3)
	w.Record(0, 0b011) // A and B miss, C hits: differential
	w.Record(0, 0b111) // all miss: dropped
	w.Record(0, 0b100) // only C
	c := w.Counts(0, make([]int, 3))
	if c[0] != 1 || c[1] != 1 || c[2] != 1 {
		t.Fatalf("counts = %v, want [1 1 1]", c)
	}
}

// TestWindowMatchesReferenceModel cross-checks the ring-buffer Window
// against a straightforward slice model over random event streams.
func TestWindowMatchesReferenceModel(t *testing.T) {
	f := func(events []byte, mRaw uint8) bool {
		m := int(mRaw%15) + 1
		w := NewWindow(m)
		w.Attach(1, 2)
		var ref []uint64
		for _, e := range events {
			mask := uint64(e % 4)
			w.Record(0, mask)
			if mask == missA || mask == missB {
				ref = append(ref, mask)
				if len(ref) > m {
					ref = ref[1:]
				}
			}
		}
		wantA, wantB := 0, 0
		for _, mask := range ref {
			if mask == missA {
				wantA++
			} else {
				wantB++
			}
		}
		a, b := counts2(w, 0)
		return a == wantA && b == wantB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
