// Package history implements the per-set miss-history buffers that drive
// the adaptive replacement decision (paper Section 2.2). Three variants are
// provided:
//
//   - Window: the paper's implementation — a ring of the last m
//     "differential" miss events per set (events where at least one but not
//     every component missed), recording which components missed.
//   - Saturating: per-set, per-component k-bit saturating miss counters.
//   - Counters: unbounded per-set, per-component miss counters — the
//     variant used by the paper's theoretical 2x bound.
//
// All variants generalize from two components to N via miss bitmasks.
package history

// Buffer records component-policy misses per cache set and answers "how
// many recorded misses does each component have in this set?".
type Buffer interface {
	// Name identifies the buffer variant in reports.
	Name() string

	// Attach (re)binds the buffer to sets x comps and clears it.
	Attach(sets, comps int)

	// Record notes the outcome of one access in set: bit i of missMask is
	// set if component i missed. Implementations decide which events are
	// worth recording (the Window drops all-hit and all-miss events, as the
	// paper specifies).
	Record(set int, missMask uint64)

	// Counts fills counts (len == comps) with each component's recorded
	// miss tally for set and returns it; the caller owns the slice and
	// passes it back in to avoid allocation.
	Counts(set int, counts []int) []int
}

// Best returns the index of the component with the fewest recorded misses,
// preferring the lowest index on ties (component order is therefore a
// priority order, matching the paper's example where policy A wins ties).
func Best(counts []int) int {
	best := 0
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[best] {
			best = i
		}
	}
	return best
}

// allOrNone reports whether missMask over comps components records either
// no miss or a miss by every component — events carrying no preference
// signal.
func allOrNone(missMask uint64, comps int) bool {
	if missMask == 0 {
		return true
	}
	full := uint64(1)<<uint(comps) - 1
	return missMask&full == full
}
