package history

import "fmt"

// Counters keeps unbounded per-set, per-component miss counts "since the
// beginning of time" — the easiest variant to reason about and the one the
// paper's 2x worst-case bound is proved against. Unlike the Window it
// records every miss, including events where all components missed.
type Counters struct {
	comps int
	n     []uint64
}

// NewCounters returns an unbounded-counter buffer.
func NewCounters() *Counters { return &Counters{} }

// Name implements Buffer.
func (c *Counters) Name() string { return "counters" }

// Attach implements Buffer.
func (c *Counters) Attach(sets, comps int) {
	c.comps = comps
	c.n = make([]uint64, sets*comps)
}

// Record implements Buffer.
func (c *Counters) Record(set int, missMask uint64) {
	base := set * c.comps
	for i := 0; i < c.comps; i++ {
		if missMask&(1<<uint(i)) != 0 {
			c.n[base+i]++
		}
	}
}

// Counts implements Buffer. Counts saturate at MaxInt on 32-bit platforms
// in principle; in practice traces are far shorter.
func (c *Counters) Counts(set int, counts []int) []int {
	base := set * c.comps
	for i := range counts {
		counts[i] = int(c.n[base+i])
	}
	return counts
}

// Saturating keeps per-set, per-component k-bit saturating miss counters,
// the approximation the paper mentions between full counters and the
// windowed bit-vector. Like the Window, it only accumulates differential
// events, and it halves all of a set's counters when any one saturates so
// that relative order keeps adapting.
type Saturating struct {
	bits  int
	max   uint32
	comps int
	n     []uint32
}

// NewSaturating returns a saturating-counter buffer of the given width.
func NewSaturating(bits int) *Saturating {
	if bits < 1 || bits > 31 {
		panic("history: saturating counter bits out of range")
	}
	return &Saturating{bits: bits, max: 1<<uint(bits) - 1}
}

// Name implements Buffer.
func (s *Saturating) Name() string { return fmt.Sprintf("saturating(%d)", s.bits) }

// Attach implements Buffer.
func (s *Saturating) Attach(sets, comps int) {
	s.comps = comps
	s.n = make([]uint32, sets*comps)
}

// Record implements Buffer.
func (s *Saturating) Record(set int, missMask uint64) {
	if allOrNone(missMask, s.comps) {
		return
	}
	base := set * s.comps
	for i := 0; i < s.comps; i++ {
		if missMask&(1<<uint(i)) == 0 {
			continue
		}
		if s.n[base+i] >= s.max {
			for j := 0; j < s.comps; j++ {
				s.n[base+j] >>= 1
			}
		}
		s.n[base+i]++
	}
}

// Counts implements Buffer.
func (s *Saturating) Counts(set int, counts []int) []int {
	base := set * s.comps
	for i := range counts {
		counts[i] = int(s.n[base+i])
	}
	return counts
}
