package mem

import "repro/internal/cache"

// HierarchyConfig carries the latency parameters of paper Table 1.
type HierarchyConfig struct {
	L1Latency uint64 // L1 hit latency (Table 1: 2 cycles)
	L2Latency uint64 // L2 hit latency (Table 1: 15 cycles)
	MSHRs     int    // outstanding L2 misses allowed to overlap
}

// DefaultHierarchyConfig matches paper Table 1 with a typical MSHR count.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{L1Latency: 2, L2Latency: 15, MSHRs: 8}
}

// Hierarchy wires L1I, L1D, a unified L2, and main memory into the memory
// system the CPU model drives. All caches are functional cache.Cache
// instances — the replacement policy under study is whatever policy the L2
// (or the L1s, for the Section 4.6 experiment) was built with.
//
// Latency accounting is additive and request-based: a load that misses
// everywhere pays L1 + L2 lookup latencies plus the DRAM+bus time, with L2
// miss overlap bounded by the MSHR count and bus contention serialized by
// the Bus. Writebacks consume bus bandwidth but do not stall the
// requesting access.
type Hierarchy struct {
	cfg HierarchyConfig

	L1I, L1D, L2 *cache.Cache
	Mem          *Memory

	mshr []uint64 // per-slot next-free cycle

	// DemandMisses counts L2 misses as the paper's simulator reports them
	// (the MPKI numerator): all program-induced L2 misses, including
	// write-allocate misses from L1 writebacks, but never prefetch fills.
	DemandMisses uint64

	// OnL2Demand, if set, observes every first-level demand access that
	// reaches the L2 (I-fetch, loads, store drains — not writebacks, not
	// prefetches) with its block address and outcome. Prefetchers train on
	// this stream.
	OnL2Demand func(addr cache.Addr, miss bool)
}

// NewHierarchy builds the memory system. Any of l1i/l1d may be nil for
// cache-only experiments that drive the L2 directly.
func NewHierarchy(cfg HierarchyConfig, l1i, l1d, l2 *cache.Cache, m *Memory) *Hierarchy {
	if l2 == nil || m == nil {
		panic("mem: hierarchy requires an L2 and a memory")
	}
	if cfg.MSHRs <= 0 {
		panic("mem: hierarchy requires at least one MSHR")
	}
	return &Hierarchy{cfg: cfg, L1I: l1i, L1D: l1d, L2: l2, Mem: m,
		mshr: make([]uint64, cfg.MSHRs)}
}

// l2FillKind handles an L2 access for a line requested at cycle now,
// returning the completion cycle. On a miss it allocates an MSHR slot
// (possibly waiting for one), reads memory, and posts any dirty writeback.
// firstLevelDemand marks accesses that feed OnL2Demand — writebacks and
// prefetch fills are not.
func (h *Hierarchy) l2FillKind(now uint64, addr cache.Addr, write, firstLevelDemand bool) uint64 {
	res := h.L2.Access(addr, write)
	if firstLevelDemand && h.OnL2Demand != nil {
		h.OnL2Demand(addr, !res.Hit)
	}
	lookupDone := now + h.cfg.L2Latency
	if res.Hit {
		return lookupDone
	}
	h.DemandMisses++

	// Claim the earliest-free MSHR slot.
	slot := 0
	for i := 1; i < len(h.mshr); i++ {
		if h.mshr[i] < h.mshr[slot] {
			slot = i
		}
	}
	start := lookupDone
	if h.mshr[slot] > start {
		start = h.mshr[slot]
	}
	done := h.Mem.Read(start)
	h.mshr[slot] = done

	if res.Writeback {
		h.Mem.Write(done) // posted writeback; occupies the bus afterwards
	}
	return done
}

// access runs one data reference through L1D (if present) and below,
// returning total latency in cycles as seen by the requester.
func (h *Hierarchy) access(now uint64, addr cache.Addr, write bool) uint64 {
	if h.L1D == nil {
		return h.l2FillKind(now, addr, write, true) - now
	}
	res := h.L1D.Access(addr, write)
	if res.Hit {
		return h.cfg.L1Latency
	}
	// L1 miss: the fill request reads the line from L2 (dirtiness lives in
	// L1 until eviction); a dirty L1 victim is then written back into L2 —
	// an L2 access that can itself miss, consuming bandwidth but not
	// stalling this request.
	done := h.l2FillKind(now+h.cfg.L1Latency, addr, false, true)
	if res.Writeback {
		victim := h.victimAddr(h.L1D, res.EvictedTag, addr)
		h.l2FillKind(done, victim, true, false)
	}
	return done - now
}

// victimAddr reconstructs a representative address for an evicted line
// from its stored tag and the set of the access that displaced it.
func (h *Hierarchy) victimAddr(c *cache.Cache, tag uint64, cause cache.Addr) cache.Addr {
	g := c.Geometry()
	set := uint64(g.Index(cause))
	sets := uint64(g.Sets())
	var block uint64
	if sets&(sets-1) == 0 {
		block = tag*sets + set
	} else {
		block = tag // non-power-of-two geometries store the block as tag
	}
	return cache.Addr(block * uint64(g.LineBytes))
}

// Load returns the latency of a data read issued at cycle now.
func (h *Hierarchy) Load(now uint64, addr uint64) uint64 {
	return h.access(now, cache.Addr(addr), false)
}

// Store returns the occupancy of a store-buffer drain issued at cycle now.
func (h *Hierarchy) Store(now uint64, addr uint64) uint64 {
	return h.access(now, cache.Addr(addr), true)
}

// Ifetch returns the latency of an instruction fetch issued at cycle now.
func (h *Hierarchy) Ifetch(now uint64, pc uint64) uint64 {
	if h.L1I == nil {
		return h.cfg.L1Latency
	}
	res := h.L1I.Access(cache.Addr(pc), false)
	if res.Hit {
		return h.cfg.L1Latency
	}
	return h.l2FillKind(now+h.cfg.L1Latency, cache.Addr(pc), false, true) - now
}

// L1Latency exposes the configured L1 hit latency (the CPU model treats it
// as the pipelined baseline that costs nothing extra).
func (h *Hierarchy) L1Latency() uint64 { return h.cfg.L1Latency }

// Prefetch installs a line into the L2 without demand accounting: it does
// not count toward DemandMisses and does not feed OnL2Demand, but it does
// consume memory bandwidth and can evict useful lines — the real costs of
// a bad prefetcher.
func (h *Hierarchy) Prefetch(now uint64, addr cache.Addr) {
	if h.L2.Contains(addr) {
		return
	}
	res := h.L2.Access(addr, false)
	if !res.Hit { // always true given the Contains check; kept for clarity
		h.Mem.Read(now + h.cfg.L2Latency)
		if res.Writeback {
			h.Mem.Write(now)
		}
	}
}
