package mem

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

func TestBusTransferCycles(t *testing.T) {
	b := DefaultBus()
	// 64B line / 8B beats * ratio 8 = 64 CPU cycles.
	if got := b.TransferCycles(64); got != 64 {
		t.Fatalf("TransferCycles(64) = %d, want 64", got)
	}
	if got := b.TransferCycles(128); got != 128 {
		t.Fatalf("TransferCycles(128) = %d, want 128", got)
	}
	// Partial beats round up.
	if got := b.TransferCycles(9); got != 16 {
		t.Fatalf("TransferCycles(9) = %d, want 16", got)
	}
}

func TestBusSerializesOverlappingRequests(t *testing.T) {
	bus := NewBus(DefaultBus(), 64)
	d1 := bus.Acquire(100)
	if d1 != 164 {
		t.Fatalf("first transfer done at %d, want 164", d1)
	}
	// Requested while the first is in flight: queues.
	d2 := bus.Acquire(110)
	if d2 != 164+64 {
		t.Fatalf("second transfer done at %d, want 228", d2)
	}
	if bus.QueueDelay != 54 {
		t.Fatalf("QueueDelay = %d, want 54", bus.QueueDelay)
	}
	// A request after the bus drains sees no queueing.
	d3 := bus.Acquire(1000)
	if d3 != 1064 {
		t.Fatalf("third transfer done at %d, want 1064", d3)
	}
	if bus.Transfers != 3 || bus.BusyCycles != 3*64 {
		t.Fatalf("stats: %d transfers, %d busy", bus.Transfers, bus.BusyCycles)
	}
}

func TestMemoryReadLatency(t *testing.T) {
	bus := NewBus(DefaultBus(), 64)
	m := NewMemory(120, bus)
	// 120 DRAM + 64 bus = 184 cycles end to end.
	if done := m.Read(0); done != 184 {
		t.Fatalf("read done at %d, want 184", done)
	}
	if m.Reads != 1 {
		t.Fatalf("Reads = %d", m.Reads)
	}
}

func TestBadConstructionPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewBus(BusConfig{WidthBytes: 0, Ratio: 8}, 64) },
		func() { NewMemory(120, nil) },
		func() {
			NewHierarchy(DefaultHierarchyConfig(), nil, nil, nil, nil)
		},
		func() {
			cfg := DefaultHierarchyConfig()
			cfg.MSHRs = 0
			l2, m := testL2(), testMem()
			NewHierarchy(cfg, nil, nil, l2, m)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func testL2() *cache.Cache {
	return cache.New(cache.Geometry{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}, policy.NewLRU())
}

func testL1() *cache.Cache {
	return cache.New(cache.Geometry{SizeBytes: 1 << 10, LineBytes: 64, Ways: 4}, policy.NewLRU())
}

func testMem() *Memory {
	return NewMemory(DefaultMemoryLatency, NewBus(DefaultBus(), 64))
}

func newHier() *Hierarchy {
	return NewHierarchy(DefaultHierarchyConfig(), testL1(), testL1(), testL2(), testMem())
}

func TestHierarchyLoadLatencies(t *testing.T) {
	h := newHier()
	// Cold load: L1 miss, L2 miss -> L1 + L2 + 120 + 64 = 201 cycles.
	if lat := h.Load(0, 0x10000); lat != 2+15+120+64 {
		t.Fatalf("cold load latency %d, want 201", lat)
	}
	// Immediate reuse: L1 hit.
	if lat := h.Load(300, 0x10000); lat != 2 {
		t.Fatalf("L1 hit latency %d, want 2", lat)
	}
	if h.DemandMisses != 1 {
		t.Fatalf("DemandMisses = %d", h.DemandMisses)
	}
}

func TestHierarchyL2HitLatency(t *testing.T) {
	h := newHier()
	h.Load(0, 0x10000) // install in both levels
	// Evict from tiny L1 with conflicting lines, keeping L2 resident.
	for i := 1; i <= 8; i++ {
		h.Load(uint64(i*1000), uint64(0x10000+i*1024))
	}
	lat := h.Load(5000, 0x10000)
	if lat != 2+15 {
		t.Fatalf("L2 hit latency %d, want 17", lat)
	}
}

func TestHierarchyMSHRLimitsOverlap(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.MSHRs = 1
	// No L1s: drive L2 directly. Wide bus so transfer time is negligible
	// and serialization comes from the single MSHR.
	l2 := testL2()
	m := NewMemory(100, NewBus(BusConfig{WidthBytes: 64, Ratio: 1}, 64))
	h := NewHierarchy(cfg, nil, nil, l2, m)
	lat1 := h.Load(0, 0x00000)
	lat2 := h.Load(0, 0x40000) // issued same cycle, different line
	if lat2 <= lat1 {
		t.Fatalf("second concurrent miss (%d) not serialized behind first (%d)", lat2, lat1)
	}

	// With 2 MSHRs the two misses overlap (bus still serializes the data
	// transfers, so allow that much skew but not full serialization).
	cfg.MSHRs = 2
	h2 := NewHierarchy(cfg, nil, nil, testL2(), testMem())
	a1 := h2.Load(0, 0x00000)
	a2 := h2.Load(0, 0x40000)
	if a2 >= a1*2 {
		t.Fatalf("2-MSHR misses fully serialized: %d then %d", a1, a2)
	}
}

func TestHierarchyDirtyEvictionsReachMemory(t *testing.T) {
	// 1-set L2, no L1: write two lines dirty, then force eviction.
	g := cache.Geometry{SizeBytes: 2 * 64, LineBytes: 64, Ways: 2}
	l2 := cache.New(g, policy.NewLRU())
	m := testMem()
	h := NewHierarchy(DefaultHierarchyConfig(), nil, nil, l2, m)
	h.Store(0, 0)
	h.Store(1000, 128)
	h.Store(2000, 256) // evicts dirty line 0
	if m.Writes != 1 {
		t.Fatalf("memory Writes = %d, want 1 (dirty writeback)", m.Writes)
	}
}

func TestHierarchyIfetch(t *testing.T) {
	h := newHier()
	lat := h.Ifetch(0, 0x400000)
	if lat != 2+15+120+64 {
		t.Fatalf("cold ifetch latency %d", lat)
	}
	if lat := h.Ifetch(300, 0x400000); lat != 2 {
		t.Fatalf("warm ifetch latency %d, want 2", lat)
	}
	// Without an L1I the model charges the pipelined L1 latency only.
	h2 := NewHierarchy(DefaultHierarchyConfig(), nil, nil, testL2(), testMem())
	if lat := h2.Ifetch(0, 0x400000); lat != 2 {
		t.Fatalf("no-L1I ifetch latency %d, want 2", lat)
	}
}

func TestVictimAddrRoundTrip(t *testing.T) {
	h := newHier()
	g := h.L1D.Geometry()
	// For any address, reconstructing from (tag, set-of-cause) must map
	// back to the same set and tag.
	for _, a := range []cache.Addr{0, 64, 0x12345, 0xFFFFF, 1 << 30} {
		v := h.victimAddr(h.L1D, g.Tag(a), a)
		if g.Index(v) != g.Index(a) || g.Tag(v) != g.Tag(a) {
			t.Fatalf("victimAddr(%#x) = %#x: set/tag mismatch", a, v)
		}
	}
}

func TestHierarchyPrefetchPath(t *testing.T) {
	h := newHier()
	if got := h.L1Latency(); got != 2 {
		t.Fatalf("L1Latency = %d", got)
	}
	demandEvents := 0
	h.OnL2Demand = func(_ cache.Addr, _ bool) { demandEvents++ }
	// A prefetch fills the L2 but produces no demand miss or demand event.
	h.Prefetch(0, 0x20000)
	if h.DemandMisses != 0 || demandEvents != 0 {
		t.Fatalf("prefetch counted as demand: misses=%d events=%d", h.DemandMisses, demandEvents)
	}
	if !h.L2.Contains(0x20000) {
		t.Fatal("prefetched line not resident")
	}
	// A duplicate prefetch is a no-op (no extra memory traffic).
	reads := h.Mem.Reads
	h.Prefetch(0, 0x20000)
	if h.Mem.Reads != reads {
		t.Fatal("duplicate prefetch re-read memory")
	}
	// The later demand access hits and fires the hook.
	lat := h.Load(0, 0x20000)
	if lat != 2+15 {
		t.Fatalf("prefetched load latency %d, want L1 miss + L2 hit = 17", lat)
	}
	if demandEvents != 1 || h.DemandMisses != 0 {
		t.Fatalf("demand accounting after prefetch hit: events=%d misses=%d", demandEvents, h.DemandMisses)
	}
}

func TestOnL2DemandSeesMissesNotWritebacks(t *testing.T) {
	h := newHier()
	var events []bool
	h.OnL2Demand = func(_ cache.Addr, miss bool) { events = append(events, miss) }
	h.Load(0, 0x30000) // cold: one demand event, miss=true
	h.Load(100, 0x30000)
	// second load hits L1 entirely: no L2 demand event
	if len(events) != 1 || !events[0] {
		t.Fatalf("events = %v, want [true]", events)
	}
}
