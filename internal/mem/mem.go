// Package mem provides the timing side of the memory system: a main-memory
// model behind a split-transaction bus (paper Table 1: 8-byte-wide bus at a
// processor-to-bus frequency ratio of 8:1), and the Hierarchy type that
// combines L1I/L1D/L2 cache.Cache instances with those latencies into the
// MemSystem the CPU model drives.
//
// Table 1 lists the memory latency as "12 cycle"; the paper's introduction
// says RAM costs "hundreds of cycles", so this model reads that row as 120
// cycles (a dropped trailing zero) and makes it configurable.
package mem

// BusConfig describes the processor-memory bus.
type BusConfig struct {
	WidthBytes int // bytes per bus beat (Table 1: 8)
	Ratio      int // CPU cycles per bus cycle (Table 1: 8)
}

// DefaultBus matches paper Table 1.
func DefaultBus() BusConfig { return BusConfig{WidthBytes: 8, Ratio: 8} }

// TransferCycles returns the CPU cycles the bus is occupied moving one
// cache line.
func (b BusConfig) TransferCycles(lineBytes int) uint64 {
	beats := (lineBytes + b.WidthBytes - 1) / b.WidthBytes
	return uint64(beats * b.Ratio)
}

// Bus serializes line transfers: overlapping requests queue behind one
// another. The zero value is not usable; construct with NewBus.
type Bus struct {
	cfg      BusConfig
	line     int
	nextFree uint64

	Transfers  uint64
	BusyCycles uint64
	QueueDelay uint64 // cycles requests spent waiting for the bus
}

// NewBus builds a bus for a given line size.
func NewBus(cfg BusConfig, lineBytes int) *Bus {
	if cfg.WidthBytes <= 0 || cfg.Ratio <= 0 || lineBytes <= 0 {
		panic("mem: bus parameters must be positive")
	}
	return &Bus{cfg: cfg, line: lineBytes}
}

// Acquire schedules a line transfer requested at cycle now and returns the
// cycle at which the transfer completes on the bus.
func (b *Bus) Acquire(now uint64) uint64 {
	start := now
	if b.nextFree > start {
		b.QueueDelay += b.nextFree - start
		start = b.nextFree
	}
	occ := b.cfg.TransferCycles(b.line)
	b.nextFree = start + occ
	b.Transfers++
	b.BusyCycles += occ
	return b.nextFree
}

// Memory models DRAM with a fixed access latency ahead of the bus
// transfer.
type Memory struct {
	Latency uint64 // CPU cycles from request to first data (Table 1: 120)
	bus     *Bus

	Reads  uint64
	Writes uint64
}

// DefaultMemoryLatency is the paper's memory latency in CPU cycles.
const DefaultMemoryLatency = 120

// NewMemory builds a memory front-ended by bus.
func NewMemory(latency uint64, bus *Bus) *Memory {
	if bus == nil {
		panic("mem: memory requires a bus")
	}
	return &Memory{Latency: latency, bus: bus}
}

// Read schedules a line read at cycle now and returns its completion
// cycle: DRAM latency, then the line crosses the bus.
func (m *Memory) Read(now uint64) uint64 {
	m.Reads++
	return m.bus.Acquire(now + m.Latency)
}

// Write schedules a line writeback at cycle now and returns when the bus
// is done with it. Writebacks are posted: callers typically ignore the
// completion time, but the bus occupancy delays subsequent reads.
func (m *Memory) Write(now uint64) uint64 {
	m.Writes++
	return m.bus.Acquire(now)
}
