package adaptivekv

import (
	"fmt"
	"sync"
	"testing"
)

// TestKVFlush: Flush empties every shard, returns the resident count,
// preserves the operation counters, and leaves the cache fully usable.
func TestKVFlush(t *testing.T) {
	for _, cfg := range []Config{
		{Shards: 2, Sets: 16, Ways: 4},                             // optimistic path
		{Shards: 2, Sets: 16, Ways: 4, StrictOrder: true},          // locked path
		{Shards: 1, Sets: 1, Ways: 8, Mode: ModeSingle},            // Sets==1: packed tag lost its top bit
		{Shards: 4, Sets: 8, Ways: 2, Mode: ModeSingle, Components: []string{"LRU"}},
	} {
		t.Run(fmt.Sprintf("shards=%d sets=%d strict=%v", cfg.Shards, cfg.Sets, cfg.StrictOrder), func(t *testing.T) {
			c := New[string, int](cfg)
			// Overfill so evictions happen, then flush.
			n := c.Capacity() * 2
			for i := 0; i < n; i++ {
				c.Set(fmt.Sprintf("key-%04d", i), i)
			}
			for i := 0; i < n; i++ {
				c.Get(fmt.Sprintf("key-%04d", i))
			}
			before := c.Stats()
			resident := c.Len()
			if resident == 0 {
				t.Fatal("cache empty before flush")
			}
			if got := c.Flush(); got != resident {
				t.Fatalf("Flush removed %d, want %d", got, resident)
			}
			if got := c.Len(); got != 0 {
				t.Fatalf("Len after flush = %d, want 0", got)
			}
			for i := 0; i < n; i++ {
				if _, ok := c.Get(fmt.Sprintf("key-%04d", i)); ok {
					t.Fatalf("key-%04d survived flush", i)
				}
			}
			// Flush drops data, not history: the op counters only grow.
			after := c.Stats()
			if after.Stores != before.Stores || after.GetHits != before.GetHits {
				t.Fatalf("flush disturbed counters: before %+v after %+v", before, after)
			}
			// Double flush is a no-op.
			if got := c.Flush(); got != 0 {
				t.Fatalf("second Flush removed %d, want 0", got)
			}
			// The cache must refill normally.
			c.Set("fresh", 42)
			if v, ok := c.Get("fresh"); !ok || v != 42 {
				t.Fatalf("Get(fresh) after flush = (%d, %v), want (42, true)", v, ok)
			}
		})
	}
}

// TestKVFlushConcurrent races Flush against readers and writers; the
// invariant is simply no lost updates visible as corruption — a Get must
// return either a miss or the exact value last Set for that key.
func TestKVFlushConcurrent(t *testing.T) {
	c := New[string, int](Config{Shards: 2, Sets: 32, Ways: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("g%d-%d", g, i%64)
				c.Set(k, g)
				if v, ok := c.Get(k); ok && v != g {
					t.Errorf("Get(%s) = %d, want %d", k, v, g)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		c.Flush()
	}
	close(stop)
	wg.Wait()
	c.Flush()
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after final flush = %d, want 0", got)
	}
}
