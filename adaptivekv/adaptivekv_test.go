package adaptivekv

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func smallConfig(mode Mode, comps ...string) Config {
	return Config{Shards: 4, Sets: 64, Ways: 8, Mode: mode, Components: comps}
}

func TestKVBasic(t *testing.T) {
	c := New[string, int](Config{Shards: 2, Sets: 8, Ways: 4})

	if _, ok := c.Get("a"); ok {
		t.Fatal("Get on empty cache hit")
	}
	c.Set("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = (%d, %v), want (1, true)", v, ok)
	}
	c.Set("a", 2) // update in place
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Get(a) after update = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}

	if !c.Delete("a") {
		t.Fatal("Delete(a) = false, want true")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get(a) hit after Delete")
	}
	if c.Delete("a") {
		t.Fatal("double Delete(a) = true")
	}
	if c.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", c.Len())
	}

	st := c.Stats()
	if st.Gets != 4 || st.GetHits != 2 || st.Stores != 2 || st.StoreHits != 1 ||
		st.Deletes != 2 || st.DeleteHits != 1 {
		t.Fatalf("Stats = %+v, want 4/2 gets, 2/1 stores, 2/1 deletes", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", got)
	}
	if c.Capacity() != 2*8*4 {
		t.Fatalf("Capacity = %d, want 64", c.Capacity())
	}
}

func TestKVEvictsWithinCapacity(t *testing.T) {
	c := New[uint64, uint64](Config{Shards: 2, Sets: 4, Ways: 2})
	for k := uint64(0); k < 1000; k++ {
		c.Set(k, k)
	}
	if got, max := c.Len(), c.Capacity(); got > max {
		t.Fatalf("Len = %d exceeds capacity %d", got, max)
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("1000 inserts into a 16-entry cache recorded no evictions")
	}
}

// replay drives one read-through pass of a key stream and returns the
// cache's Get hit ratio: the experiment each configuration repeats under
// identical traffic in the guarantee test below.
func replay(c *Cache[uint64, uint64], seed uint64, patterns []workload.Pattern, n int) float64 {
	ks := workload.NewKeyStream(seed, patterns)
	for i := 0; i < n; i++ {
		k := ks.Next()
		if _, ok := c.Get(k); !ok {
			c.Set(k, k)
		}
	}
	return c.Stats().HitRatio()
}

// TestKVAdaptiveGuarantee is the subsystem's acceptance criterion: under a
// mixed Zipf workload (and, for good measure, the LRU-pathological looping
// scan), the adaptive cache's hit ratio must be no more than one point
// below the better of its two components run alone — the paper's bounded-
// regret claim restated for key-value traffic.
func TestKVAdaptiveGuarantee(t *testing.T) {
	const n = 300000
	mixes := []struct {
		name     string
		patterns []workload.Pattern
	}{
		{"MixedZipf", workload.MixedZipf(4096, 0.8)},
		{"LoopingScan", workload.LoopingScan(2600)},
	}
	for _, mix := range mixes {
		for seed := uint64(1); seed <= 3; seed++ {
			adaptive := replay(New[uint64, uint64](smallConfig(ModeSBAR)), seed, mix.patterns, n)
			lru := replay(New[uint64, uint64](smallConfig(ModeSingle, "LRU")), seed, mix.patterns, n)
			lfu := replay(New[uint64, uint64](smallConfig(ModeSingle, "LFU")), seed, mix.patterns, n)

			best := lru
			if lfu > best {
				best = lfu
			}
			t.Logf("%s seed %d: adaptive %.4f, LRU %.4f, LFU %.4f", mix.name, seed, adaptive, lru, lfu)
			if adaptive < best-0.01 {
				t.Errorf("%s seed %d: adaptive hit ratio %.4f more than 1 point below best component %.4f",
					mix.name, seed, adaptive, best)
			}
		}
	}
}

// TestKVZeroAllocs: Get hits and in-place Set updates must not allocate —
// the property cmd/benchregress gates in CI.
func TestKVZeroAllocs(t *testing.T) {
	c := New[uint64, uint64](smallConfig(ModeSBAR))
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	var sink uint64
	if avg := testing.AllocsPerRun(1000, func() {
		v, _ := c.Get(sink % keys)
		sink += v + 1
	}); avg != 0 {
		t.Errorf("Get: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		c.Set(sink%keys, sink)
		sink++
	}); avg != 0 {
		t.Errorf("Set: %v allocs/op, want 0", avg)
	}
	// Miss-and-fill traffic over a bounded key space: steady-state misses
	// evict and refill but never grow anything.
	var rng uint64 = 0x9e3779b97f4a7c15
	if avg := testing.AllocsPerRun(1000, func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		k := rng % 100000
		if _, ok := c.Get(k); !ok {
			c.Set(k, k)
		}
	}); avg != 0 {
		t.Errorf("read-through miss path: %v allocs/op, want 0", avg)
	}
}

// TestKVHashCollision pins the documented collision semantics using a
// deliberately degenerate hasher: distinct keys sharing a 64-bit hash
// share one slot, and every divergence between the engine's tag-level
// view and the user-visible key-level outcome lands in HashCollisions.
func TestKVHashCollision(t *testing.T) {
	c := New[string, int](Config{Shards: 2, Sets: 8, Ways: 4},
		WithHasher[string, int](func(string) uint64 { return 42 }))

	collisions := func() uint64 { return c.Stats().HashCollisions }

	c.Set("a", 1) // clean fill: no divergence
	if got := collisions(); got != 0 {
		t.Fatalf("HashCollisions after clean Set = %d, want 0", got)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("Get(b) hit on a's slot: key comparison missing")
	}
	if got := collisions(); got != 1 { // engine hit, user miss
		t.Fatalf("HashCollisions after colliding Get = %d, want 1", got)
	}
	c.Set("b", 2) // legal overwrite of the colliding slot; engine saw update-in-place
	if got := collisions(); got != 2 {
		t.Fatalf("HashCollisions after colliding Set = %d, want 2", got)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get(a) hit after b overwrote the shared slot")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = (%d, %v), want (2, true)", v, ok)
	}
	if got := collisions(); got != 3 { // only Get(a) diverged; Get(b) was a true hit
		t.Fatalf("HashCollisions after mixed Gets = %d, want 3", got)
	}
	if c.Delete("a") {
		t.Fatal("Delete(a) removed b's entry")
	}
	if got := collisions(); got != 4 { // tag found, owned by b
		t.Fatalf("HashCollisions after colliding Delete = %d, want 4", got)
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) after Delete(a) = (%d, %v), want (2, true)", v, ok)
	}
	if !c.Delete("b") {
		t.Fatal("Delete(b) = false")
	}
	if got := collisions(); got != 4 { // true delete hit: no divergence
		t.Fatalf("HashCollisions after true Delete = %d, want 4", got)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after deleting the only entry, want 0", c.Len())
	}
	// The divergence the counter quantifies: engine-level hits exceed
	// user-visible hits by exactly the colliding Gets.
	st := c.Stats()
	if st.GetHits != 2 {
		t.Fatalf("user-visible GetHits = %d, want 2", st.GetHits)
	}
}

// TestKVIncrementalOccupancy cross-checks the incrementally maintained
// per-shard resident counters (what Len and ShardOccupancy report) against
// a ground-truth directory walk, through fill, eviction-replace, update,
// and delete traffic.
func TestKVIncrementalOccupancy(t *testing.T) {
	c := New[uint64, uint64](Config{Shards: 2, Sets: 4, Ways: 2})
	walk := func() int {
		n := 0
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			for s := 0; s < c.cfg.Sets; s++ {
				n += sh.eng.Directory().Occupancy(s)
			}
			sh.mu.Unlock()
		}
		return n
	}
	var rng uint64 = 0x243f6a8885a308d3
	for i := 0; i < 5000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		k := rng % 64 // 4x capacity: plenty of evictions
		switch rng % 8 {
		case 0:
			c.Delete(k)
		case 1, 2, 3:
			c.Set(k, k)
		default:
			c.Get(k)
		}
		if i%500 == 0 {
			if inc, truth := c.Len(), walk(); inc != truth {
				t.Fatalf("op %d: incremental Len %d != directory walk %d", i, inc, truth)
			}
		}
	}
	if inc, truth := c.Len(), walk(); inc != truth {
		t.Fatalf("final: incremental Len %d != directory walk %d", inc, truth)
	}
	perShard := 0
	for i := 0; i < c.Shards(); i++ {
		perShard += c.ShardOccupancy(i)
	}
	if perShard != c.Len() {
		t.Fatalf("sum of ShardOccupancy %d != Len %d", perShard, c.Len())
	}
}

// TestKVConcurrent hammers one cache from many goroutines with overlapping
// key ranges; run under -race this is the package's data-race certificate.
func TestKVConcurrent(t *testing.T) {
	c := New[uint64, uint64](smallConfig(ModeSBAR))
	const workers = 8
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := id*0x9e3779b9 + 1
			for i := 0; i < iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := rng % 4096
				switch rng % 10 {
				case 0:
					c.Delete(k)
				case 1, 2, 3:
					c.Set(k, k*2+1)
				default:
					if v, ok := c.Get(k); ok && v != k*2+1 {
						t.Errorf("Get(%d) = %d, want %d", k, v, k*2+1)
						return
					}
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if got, max := c.Len(), c.Capacity(); got > max {
		t.Fatalf("Len = %d exceeds capacity %d", got, max)
	}
	st := c.Stats()
	if st.Gets == 0 || st.Stores == 0 || st.Deletes == 0 {
		t.Fatalf("counters lost updates: %+v", st)
	}
}

func TestKVDefaultHashers(t *testing.T) {
	// Each supported key kind round-trips; low-entropy sequential keys must
	// still spread across shards (the mix64 finalizer's job).
	ci := New[int, string](Config{Shards: 4, Sets: 16, Ways: 4})
	for k := 0; k < 64; k++ {
		ci.Set(k, "v")
	}
	spread := 0
	for s := 0; s < ci.Shards(); s++ {
		if ci.ShardStats(s).Stores > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("sequential int keys landed on %d of %d shards", spread, ci.Shards())
	}

	cu := New[uint32, int](Config{Shards: 2, Sets: 8, Ways: 4})
	cu.Set(7, 70)
	if v, ok := cu.Get(7); !ok || v != 70 {
		t.Errorf("uint32 key: Get = (%d, %v), want (70, true)", v, ok)
	}

	defer func() {
		if recover() == nil {
			t.Error("New with an unhashable key type did not panic")
		}
	}()
	type point struct{ x, y int }
	New[point, int](Config{})
}

func TestKVModesAndOverhead(t *testing.T) {
	single := New[uint64, int](smallConfig(ModeSingle, "LFU"))
	if got := single.Overhead(); got != 0 {
		t.Errorf("ModeSingle overhead = %v, want 0", got)
	}
	if w := single.Winner(0); w != -1 {
		t.Errorf("ModeSingle Winner = %d, want -1", w)
	}

	full := New[uint64, int](smallConfig(ModeAdaptive))
	sbar := New[uint64, int](smallConfig(ModeSBAR))
	if fo, so := full.Overhead(), sbar.Overhead(); so <= 0 || fo <= so {
		t.Errorf("overheads: adaptive %v, sbar %v; want adaptive > sbar > 0", fo, so)
	}
	// The paper's Section 4.7 selling point — sampled adaptation at 0.09%
	// (8-bit partial tags) of conventional storage — holds at paper scale:
	// 16 leaders of 1024 sets. (The tiny 64-set test shard above samples a
	// quarter of its sets, so its relative overhead is naturally larger.)
	big := New[uint64, int](Config{Sets: 1024, Ways: 8})
	if pct := big.OverheadPercent(); pct <= 0 || pct >= 0.3 {
		t.Errorf("SBAR overhead = %.3f%% of conventional storage at 1024 sets, want (0, 0.3)", pct)
	}

	if w := sbar.Winner(0); w < 0 || w > 1 {
		t.Errorf("SBAR initial winner = %d, want a component index", w)
	}

	cfg := sbar.Config()
	if cfg.Mode != ModeSBAR || len(cfg.Components) != 2 || cfg.LeaderSets == 0 {
		t.Errorf("normalized config lost defaults: %+v", cfg)
	}
}

func TestKVConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"non-pow2 shards", Config{Shards: 3}},
		{"non-pow2 sets", Config{Sets: 48}},
		{"negative ways", Config{Ways: -1}},
		{"single with two comps", Config{Mode: ModeSingle, Components: []string{"LRU", "LFU"}}},
		{"adaptive with one comp", Config{Mode: ModeAdaptive, Components: []string{"LRU"}}},
		{"unknown mode", Config{Mode: "mystery"}},
		{"unknown policy", Config{Components: []string{"LRU", "Clairvoyant"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", tc.cfg)
				}
			}()
			New[uint64, int](tc.cfg)
		})
	}
}

func BenchmarkKVGetHit(b *testing.B) {
	c := New[uint64, uint64](Config{})
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rng uint64 = 1
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Get(rng % keys)
	}
}

func BenchmarkKVSet(b *testing.B) {
	c := New[uint64, uint64](Config{})
	b.ReportAllocs()
	b.ResetTimer()
	var rng uint64 = 1
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.Set(rng%100000, rng)
	}
}

func BenchmarkKVReadThrough(b *testing.B) {
	c := New[uint64, uint64](Config{})
	ks := workload.NewKeyStream(1, workload.MixedZipf(16384, 0.8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := ks.Next()
		if _, ok := c.Get(k); !ok {
			c.Set(k, k)
		}
	}
}

func BenchmarkKVGetParallel(b *testing.B) {
	c := New[uint64, uint64](Config{})
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var rng uint64 = 0xabcdef
		for pb.Next() {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			c.Get(rng % keys)
		}
	})
}
