package adaptivekv

// Compare-and-swap semantics: per-entry uniques, conflict detection,
// accounting isolation (cas ops never leak into the get/store tallies
// the soak harness reconciles), TTL-corpse handling, and the zero-alloc
// guarantee the hot path shares with Get/Set.

import (
	"testing"
	"time"
)

func TestKVCasBasic(t *testing.T) {
	for _, strict := range []bool{true, false} {
		c := New[string, int](Config{Shards: 2, Sets: 8, Ways: 4, StrictOrder: strict})

		if _, id, ok := c.GetCas("k"); ok || id != 0 {
			t.Fatalf("strict=%v: GetCas on empty = (id=%d, ok=%v)", strict, id, ok)
		}
		if res := c.CompareAndSwap("k", 1, 1, 0); res != CasNotFound {
			t.Fatalf("strict=%v: cas on absent key = %v, want CasNotFound", strict, res)
		}

		c.Set("k", 1)
		v, id, ok := c.GetCas("k")
		if !ok || v != 1 || id == 0 {
			t.Fatalf("strict=%v: GetCas = (%d, id=%d, ok=%v), want value 1 with nonzero unique", strict, v, id, ok)
		}

		// Wrong unique: conflict, value untouched.
		if res := c.CompareAndSwap("k", 99, id+1, 0); res != CasExists {
			t.Fatalf("strict=%v: cas with wrong unique = %v, want CasExists", strict, res)
		}
		if v, _ := c.Get("k"); v != 1 {
			t.Fatalf("strict=%v: value after refused swap = %d, want 1", strict, v)
		}

		// Matching unique: swap applies and consumes the unique.
		if res := c.CompareAndSwap("k", 2, id, 0); res != CasStored {
			t.Fatalf("strict=%v: cas with matching unique != CasStored", strict)
		}
		v, id2, ok := c.GetCas("k")
		if !ok || v != 2 || id2 == id || id2 == 0 {
			t.Fatalf("strict=%v: post-swap GetCas = (%d, id=%d), want value 2 with fresh unique (was %d)", strict, v, id2, id)
		}
		if res := c.CompareAndSwap("k", 3, id, 0); res != CasExists {
			t.Fatalf("strict=%v: replaying a consumed unique = not CasExists", strict)
		}

		st := c.Stats()
		if st.CasStored != 1 || st.CasConflicts != 2 || st.CasMisses != 1 {
			t.Fatalf("strict=%v: cas stats = %d/%d/%d, want 1 stored, 2 conflicts, 1 miss", strict, st.CasStored, st.CasConflicts, st.CasMisses)
		}
		if got := st.CasOps(); got != 4 {
			t.Fatalf("strict=%v: CasOps = %d, want 4", strict, got)
		}
		// Accounting isolation: the four cas calls moved neither the get
		// nor the store tallies — GetCas counts as a get, cas as neither.
		if st.Gets != 4 {
			t.Fatalf("strict=%v: Gets = %d, want 4 (cas ops must not count)", strict, st.Gets)
		}
		if st.Stores != 1 {
			t.Fatalf("strict=%v: Stores = %d, want 1 (winning cas must not count)", strict, st.Stores)
		}
		c.Close()
	}
}

// TestKVCasUniqueInvalidatedByStore: any overwrite — plain Set or
// SetBatch — advances the entry's unique, so a cas presenting a unique
// fetched before the store conflicts instead of clobbering the newer
// value. This is the property that makes gets/cas a safe
// read-modify-write primitive under concurrent writers.
func TestKVCasUniqueInvalidatedByStore(t *testing.T) {
	c := New[string, int](Config{Shards: 2, Sets: 8, Ways: 4})
	defer c.Close()

	c.Set("k", 1)
	_, id, ok := c.GetCas("k")
	if !ok {
		t.Fatal("GetCas miss after Set")
	}
	c.Set("k", 2) // concurrent writer wins the race
	if res := c.CompareAndSwap("k", 99, id, 0); res != CasExists {
		t.Fatalf("cas after interleaved Set = %v, want CasExists", res)
	}
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("value = %d, want the interleaved Set's 2", v)
	}

	_, id, _ = c.GetCas("k")
	c.SetBatch([]string{"k"}, []int{3})
	if res := c.CompareAndSwap("k", 99, id, 0); res != CasExists {
		t.Fatalf("cas after interleaved SetBatch = %v, want CasExists", res)
	}
	if v, _ := c.Get("k"); v != 3 {
		t.Fatalf("value = %d, want the interleaved SetBatch's 3", v)
	}
}

// TestKVCasTTLCorpse: an expired entry is NOT_FOUND to cas — even when
// the caller presents the unique that was valid while the entry lived —
// and the corpse is reclaimed with exactly-once Expired accounting.
func TestKVCasTTLCorpse(t *testing.T) {
	for _, strict := range []bool{true, false} {
		c := New[string, int](Config{Shards: 1, Sets: 8, Ways: 4, StrictOrder: strict})

		d := time.Now().Add(time.Hour).UnixNano()
		c.SetTTL("k", 1, d)
		_, id, ok := c.GetCas("k")
		if !ok || id == 0 {
			t.Fatalf("strict=%v: GetCas before deadline = (id=%d, ok=%v)", strict, id, ok)
		}
		advanceClock(c, d)
		if res := c.CompareAndSwap("k", 2, id, 0); res != CasNotFound {
			t.Fatalf("strict=%v: cas on TTL corpse = %v, want CasNotFound", strict, res)
		}
		st := c.Stats()
		if st.CasMisses != 1 || st.Expired != 1 {
			t.Fatalf("strict=%v: CasMisses=%d Expired=%d, want 1 and 1", strict, st.CasMisses, st.Expired)
		}
		if c.Len() != 0 {
			t.Fatalf("strict=%v: Len = %d, want corpse reclaimed", strict, c.Len())
		}
		// A cas-applied deadline expires like a SetTTL one.
		c.SetTTL("k", 1, 0)
		_, id, _ = c.GetCas("k")
		d2 := time.Now().Add(time.Hour).UnixNano()
		if res := c.CompareAndSwap("k", 2, id, d2); res != CasStored {
			t.Fatalf("strict=%v: cas with deadline = %v, want CasStored", strict, res)
		}
		advanceClock(c, d2)
		if _, ok := c.Get("k"); ok {
			t.Fatalf("strict=%v: value lived past its cas-applied deadline", strict)
		}
		c.Close()
	}
}

// TestKVCasBatchEquivalence: GetBatchCas returns per key exactly what
// GetCas returns — value, unique, and hit in one coherent window.
func TestKVCasBatchEquivalence(t *testing.T) {
	for _, strict := range []bool{true, false} {
		c := New[uint64, uint64](Config{Shards: 4, Sets: 16, Ways: 4, StrictOrder: strict})
		const n = 96
		for k := uint64(0); k < n; k += 2 { // evens resident, odds missing
			c.Set(k, k*10)
		}
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i)
		}
		vals := make([]uint64, n)
		casids := make([]uint64, n)
		oks := make([]bool, n)
		c.GetBatchCas(keys, vals, casids, oks)
		for i, k := range keys {
			wv, wid, wok := c.GetCas(k)
			if oks[i] != wok || vals[i] != wv && wok || casids[i] != wid {
				t.Fatalf("strict=%v key %d: batch (%d, id=%d, %v) != GetCas (%d, id=%d, %v)",
					strict, k, vals[i], casids[i], oks[i], wv, wid, wok)
			}
			if oks[i] && casids[i] == 0 || !oks[i] && casids[i] != 0 {
				t.Fatalf("strict=%v key %d: hit=%v with unique %d", strict, k, oks[i], casids[i])
			}
		}
		c.Close()
	}
}

// TestKVCasZeroAllocs: the cas hot path allocates nothing — GetCas hits
// and CompareAndSwap in every outcome, matching the Get/Set guarantee
// cmd/benchregress gates.
func TestKVCasZeroAllocs(t *testing.T) {
	c := New[uint64, uint64](smallConfig(ModeSBAR))
	defer c.Close()
	const keys = 64
	ids := make([]uint64, keys)
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
		_, ids[k], _ = c.GetCas(k)
	}
	var sink uint64
	if avg := testing.AllocsPerRun(1000, func() {
		v, id, _ := c.GetCas(sink % keys)
		sink += v + id
	}); avg != 0 {
		t.Errorf("GetCas: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k := sink % keys
		if c.CompareAndSwap(k, sink, ids[k], 0) == CasStored {
			_, ids[k], _ = c.GetCas(k)
		}
		sink++
	}); avg != 0 {
		t.Errorf("CompareAndSwap: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		c.CompareAndSwap(sink%keys, 1, ^uint64(0), 0) // always conflicts
		c.CompareAndSwap(sink+1_000_000, 1, 1, 0)     // always misses
		sink++
	}); avg != 0 {
		t.Errorf("conflict/miss cas: %v allocs/op, want 0", avg)
	}
}
