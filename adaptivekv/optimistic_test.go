package adaptivekv

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPendingRing exercises the ring in isolation: FIFO order, wraparound
// reuse, and full-ring rejection without blocking.
func TestPendingRing(t *testing.T) {
	r := newPendingRing(8)
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			if !r.push(uint32(i), uint64(round*100+i)) {
				t.Fatalf("round %d: push %d rejected on non-full ring", round, i)
			}
		}
		if r.push(99, 99) {
			t.Fatalf("round %d: push accepted on full ring", round)
		}
		if got := r.occupancy(); got != 8 {
			t.Fatalf("round %d: occupancy = %d, want 8", round, got)
		}
		for i := 0; i < 8; i++ {
			set, tag, ok := r.pop()
			if !ok || set != uint32(i) || tag != uint64(round*100+i) {
				t.Fatalf("round %d: pop %d = (%d, %d, %v), want (%d, %d, true)",
					round, i, set, tag, ok, i, round*100+i)
			}
		}
		if _, _, ok := r.pop(); ok {
			t.Fatalf("round %d: pop succeeded on empty ring", round)
		}
		r.headPub.Store(r.head)
	}
}

// TestKVOptimisticStressOneShard is the -race certificate for the
// optimistic read path: every key lands in a single shard, so lock-free
// readers hammer the tag mirror while one writer churns Set/Delete on
// the same sets. Values carry their key's identity, so any torn or
// misrouted read surfaces as a wrong value, and the
// fastpath+fallback==gets accounting must balance exactly.
func TestKVOptimisticStressOneShard(t *testing.T) {
	c := New[int, int](Config{Shards: 1, Sets: 16, Ways: 4, PendingRing: 256})
	if !c.optimistic {
		t.Fatal("single-shard config unexpectedly strict")
	}
	const keys = 64
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: continuously overwrite and delete; key k always maps to
	// value k*3+1 when resident.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 60000; i++ {
			k := rng.Intn(keys)
			if rng.Intn(4) == 0 {
				c.Delete(k)
			} else {
				c.Set(k, k*3+1)
			}
		}
		stop.Store(true)
	}()

	readers := 4
	if testing.Short() {
		readers = 2
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := make([]int, 8)
			vals := make([]int, 8)
			oks := make([]bool, 8)
			for !stop.Load() {
				k := rng.Intn(keys)
				if v, ok := c.Get(k); ok && v != k*3+1 {
					t.Errorf("Get(%d) = %d, want %d", k, v, k*3+1)
					return
				}
				if rng.Intn(8) == 0 {
					for i := range batch {
						batch[i] = rng.Intn(keys)
					}
					c.GetBatch(batch, vals, oks)
					for i, k := range batch {
						if oks[i] && vals[i] != k*3+1 {
							t.Errorf("GetBatch(%d) = %d, want %d", k, vals[i], k*3+1)
							return
						}
					}
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()

	st := c.Stats()
	if st.OptimisticFastpath+st.OptimisticFallback != st.Gets {
		t.Errorf("fastpath %d + fallback %d != gets %d",
			st.OptimisticFastpath, st.OptimisticFallback, st.Gets)
	}
	if st.OptimisticFastpath == 0 {
		t.Error("no optimistic fastpath gets recorded under stress")
	}
}

// TestKVPendingOverflowDropsNotBlocks pins the ring's overload contract:
// with the shard lock held (no drains possible), reads past the ring
// capacity still complete with correct results, and the overflow is
// counted in PendingHitsDropped rather than blocking the reader.
func TestKVPendingOverflowDropsNotBlocks(t *testing.T) {
	const ring = 64
	// 8 keys across 64 sets of 4 ways: no set can overflow, so every key
	// stays resident for the duration.
	c := New[int, int](Config{Shards: 1, Sets: 64, Ways: 4, PendingRing: ring})
	for k := 0; k < 8; k++ {
		c.Set(k, k)
	}
	sh := &c.shards[0]
	sh.mu.Lock() // freeze the consumer: no writer or self-drain can run
	const reads = 4 * ring
	for i := 0; i < reads; i++ {
		k := i % 8
		if v, ok := c.Get(k); !ok || v != k {
			sh.mu.Unlock()
			t.Fatalf("Get(%d) under frozen consumer = (%d, %v), want (%d, true)", k, v, ok, k)
		}
	}
	sh.mu.Unlock()

	st := c.Stats()
	if st.Gets != reads {
		t.Fatalf("Gets = %d, want %d", st.Gets, reads)
	}
	// The ¾-full TryLock drain cannot run while mu is held, so everything
	// past the ring capacity must have been dropped.
	if want := uint64(reads - ring); st.PendingHitsDropped != want {
		t.Errorf("PendingHitsDropped = %d, want %d", st.PendingHitsDropped, want)
	}

	// A mutation drains the survivors; the ring must come back empty and
	// subsequent records must flow again without new drops.
	c.Set(1000, 1000)
	if occ := sh.ring.occupancy(); occ != 0 {
		t.Errorf("ring occupancy after drain = %d, want 0", occ)
	}
	before := c.Stats().PendingHitsDropped
	c.Get(3)
	if after := c.Stats().PendingHitsDropped; after != before {
		t.Errorf("drops grew (%d -> %d) after the ring drained", before, after)
	}
}

// opTrace is a deterministic mixed op sequence shared by the determinism
// and batch-equivalence tests.
func opTrace(n int) []struct{ op, key int } {
	rng := rand.New(rand.NewSource(42))
	ops := make([]struct{ op, key int }, n)
	for i := range ops {
		ops[i] = struct{ op, key int }{op: rng.Intn(8), key: rng.Intn(2000)}
	}
	return ops
}

func runTrace(c *Cache[int, int], ops []struct{ op, key int }) {
	for _, o := range ops {
		switch {
		case o.op < 5: // get, read-through
			if _, ok := c.Get(o.key); !ok {
				c.Set(o.key, o.key)
			}
		case o.op < 7:
			c.Set(o.key, o.key)
		default:
			c.Delete(o.key)
		}
	}
}

// TestKVStrictOrderDeterminism: under StrictOrder every access reaches
// the engine inline, so two runs of the same serial op sequence must be
// byte-identical — full stats (including engine-side eviction and
// policy-switch counts) and every shard's winner.
func TestKVStrictOrderDeterminism(t *testing.T) {
	cfg := Config{Shards: 4, Sets: 32, Ways: 4, StrictOrder: true}
	ops := opTrace(30000)
	a, b := New[int, int](cfg), New[int, int](cfg)
	runTrace(a, ops)
	runTrace(b, ops)
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Errorf("strict-order stats diverged:\n  a=%+v\n  b=%+v", sa, sb)
	}
	for i := 0; i < a.Shards(); i++ {
		if wa, wb := a.Winner(i), b.Winner(i); wa != wb {
			t.Errorf("shard %d winner diverged: %d vs %d", i, wa, wb)
		}
		if sa, sb := a.ShardStats(i), b.ShardStats(i); sa != sb {
			t.Errorf("shard %d stats diverged:\n  a=%+v\n  b=%+v", i, sa, sb)
		}
	}
	if st := a.Stats(); st.OptimisticFastpath != 0 || st.OptimisticFallback != 0 || st.PendingHitsDropped != 0 {
		t.Errorf("strict order used the optimistic path: %+v", st)
	}
}

// TestKVBatchEquivalence: under StrictOrder, GetBatch/SetBatch must be
// observationally identical to the same per-key ops — same results, same
// per-shard stats — because batching only regroups lock acquisitions,
// never the per-shard access order.
func TestKVBatchEquivalence(t *testing.T) {
	cfg := Config{Shards: 2, Sets: 16, Ways: 4, StrictOrder: true}
	single, batched := New[string, int](cfg), New[string, int](cfg)

	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 0, 100)
	vals := make([]int, 0, 100)
	bvals := make([]int, 100)
	oks := make([]bool, 100)
	for round := 0; round < 300; round++ {
		n := 1 + rng.Intn(100) // spans chunks when > batchChunk
		keys, vals = keys[:0], vals[:0]
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%d", rng.Intn(500))
			keys = append(keys, k)
			vals = append(vals, round*1000+i)
		}
		if round%2 == 0 {
			for i, k := range keys {
				single.Set(k, vals[i])
			}
			batched.SetBatch(keys, vals)
		} else {
			batched.GetBatch(keys, bvals[:n], oks[:n])
			for i, k := range keys {
				v, ok := single.Get(k)
				if ok != oks[i] || (ok && v != bvals[i]) {
					t.Fatalf("round %d key %q: single=(%d,%v) batch=(%d,%v)",
						round, k, v, ok, bvals[i], oks[i])
				}
			}
		}
	}
	for i := 0; i < single.Shards(); i++ {
		ss, bs := single.ShardStats(i), batched.ShardStats(i)
		if ss != bs {
			t.Errorf("shard %d stats diverged:\n  single=%+v\n  batched=%+v", i, ss, bs)
		}
	}
	if single.Len() != batched.Len() {
		t.Errorf("Len diverged: single=%d batched=%d", single.Len(), batched.Len())
	}
}

// TestKVBatchOptimistic smokes the optimistic batch path (the server's
// default): results match ground truth and the accounting identities
// hold.
func TestKVBatchOptimistic(t *testing.T) {
	c := New[string, int](Config{Shards: 4, Sets: 32, Ways: 4})
	truth := map[string]int{}
	rng := rand.New(rand.NewSource(11))
	keys := make([]string, 80)
	vals := make([]int, 80)
	oks := make([]bool, 80)
	for round := 0; round < 200; round++ {
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", rng.Intn(300))
		}
		if round%3 == 0 {
			for i := range keys {
				vals[i] = round + i
			}
			c.SetBatch(keys, vals)
			for i, k := range keys {
				truth[k] = vals[i]
			}
		} else {
			c.GetBatch(keys, vals, oks)
			for i, k := range keys {
				want, resident := truth[k]
				// A miss for a resident key can only come from eviction —
				// legal — but a hit must return the latest value.
				if oks[i] && (!resident || vals[i] != want) {
					t.Fatalf("round %d: GetBatch(%q) = %d, want %d (resident=%v)",
						round, k, vals[i], want, resident)
				}
			}
		}
	}
	st := c.Stats()
	if st.OptimisticFastpath+st.OptimisticFallback != st.Gets {
		t.Errorf("fastpath %d + fallback %d != gets %d",
			st.OptimisticFastpath, st.OptimisticFallback, st.Gets)
	}
}

// TestKVZeroAllocsBatch extends the zero-allocation contract to the batch
// entry points with caller-owned result slices.
func TestKVZeroAllocsBatch(t *testing.T) {
	c := New[int, int](Config{Shards: 2, Sets: 32, Ways: 4})
	keys := make([]int, 32)
	vals := make([]int, 32)
	oks := make([]bool, 32)
	for i := range keys {
		keys[i] = i
		vals[i] = i
	}
	c.SetBatch(keys, vals)
	if avg := testing.AllocsPerRun(200, func() { c.GetBatch(keys, vals, oks) }); avg != 0 {
		t.Errorf("GetBatch: %v allocs per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { c.SetBatch(keys, vals) }); avg != 0 {
		t.Errorf("SetBatch: %v allocs per run, want 0", avg)
	}
}
