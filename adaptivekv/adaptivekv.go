// Package adaptivekv is an in-memory key-value cache whose replacement
// behavior is governed by the paper's adaptive scheme (Subramanian,
// Smaragdakis, Loh — MICRO 2006), lifted from simulation into a live
// concurrent data structure.
//
// The cache is organized as N independent lock-striped shards. Each shard
// is a set-associative array of key-value entries whose replacement
// decisions are delegated to an internal/core decision engine: by default
// SBAR over an LRU/LFU component pair, so a handful of leader sets per
// shard carry shadow directories and miss history while follower sets obey
// the shard's global winner — the Section 4.7 configuration whose
// bookkeeping overhead the paper puts at 0.09–0.16% of cache storage.
// Any component pair (or more) from internal/policy can be substituted,
// as can the full per-set adaptive scheme or a single fixed policy.
//
// Keys are hashed once to 64 bits; the top bits select the shard, the low
// bits the set within the shard, and the full hash is the directory tag.
// Distinct keys whose 64-bit hashes collide are treated as the same cache
// slot: a Set of one overwrites the other (a legal eviction) and a Get of
// the absent one misses. Every such divergence between the engine's view
// (a tag hit) and user-visible behavior (a key miss) is surfaced in
// Stats.HashCollisions. With the default hashers the probability of any
// collision among a million resident keys is below 1e-7.
//
// # Read-side scaling
//
// The adaptive policy mutates recency/frequency/shadow state on every
// hit, which would serialize all readers on the shard lock. Instead, by
// default Get runs optimistically: it probes an atomic mirror of the
// directory tags under a per-shard seqlock and resolves the value without
// touching the engine, then pushes a pending access record into a
// per-shard ring. The next mutation on the shard (or a ¾-full ring)
// drains the ring into the engine in one batch, so the engine still sees
// every access — leader-set learning and the paper's guarantee are
// preserved with bounded staleness. Config.StrictOrder disables the
// optimistic path for byte-identical serial determinism, and Stats
// reports the fastpath/fallback/drop counters. See DESIGN.md §11.
//
// Get and Set are allocation-free on the hit path; the hot-path regression
// harness (cmd/benchregress) enforces this.
package adaptivekv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/storage"
)

// Mode selects how a shard's replacement decisions are made.
type Mode string

const (
	// ModeSBAR (the default) runs the set-sampling adaptive variant:
	// leader sets carry the full machinery, follower sets obey the global
	// winner.
	ModeSBAR Mode = "sbar"
	// ModeAdaptive runs the full per-set adaptive scheme (paper Algorithm
	// 1) on every set — the strongest guarantee, the highest overhead.
	ModeAdaptive Mode = "adaptive"
	// ModeSingle pins every set to the first (only) component policy; use
	// it for pure-LRU / pure-LFU baselines.
	ModeSingle Mode = "single"
)

// Config shapes a Cache. Zero values select the defaults noted per field.
type Config struct {
	Shards int // lock stripes; power of two; default 8
	Sets   int // sets per shard; power of two; default 256
	Ways   int // entries per set; default 8

	Mode       Mode     // default ModeSBAR
	Components []string // internal/policy names; default {"LRU", "LFU"}

	// LeaderSets is the number of sampled leader sets per shard in
	// ModeSBAR (default core.DefaultLeaderSets, clamped to Sets).
	LeaderSets int

	// ShadowTagBits stores only the low n bits of each tag in the shadow
	// directories (default 8, the paper's recommendation; negative selects
	// full tags).
	ShadowTagBits int

	// StrictOrder disables the optimistic read path: every Get takes the
	// shard lock and updates the engine inline, so a serial op sequence
	// produces byte-identical engine state and stats on every run.
	// Deterministic replay/determinism tests set this; servers should not.
	StrictOrder bool

	// PendingRing is the per-shard pending-access ring size in records
	// (power of two ≥ 8; default 1024). Larger rings tolerate longer
	// read-only streaks before the ¾-full self-drain; a full ring drops
	// records (counted in Stats.PendingHitsDropped) rather than block.
	PendingRing int

	// SweepInterval paces the TTL sweeper (default 100ms): each tick
	// advances the coarse expiry clock and sweeps one shard, so a full
	// pass over the cache takes Shards ticks. The sweeper starts lazily
	// on the first SetTTL with a nonzero deadline; a cache that never
	// stores a TTL never runs it.
	SweepInterval time.Duration
}

// normalized fills defaults and validates.
func (c Config) normalized() Config {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Sets == 0 {
		c.Sets = 256
	}
	if c.Ways == 0 {
		c.Ways = 8
	}
	if c.Mode == "" {
		c.Mode = ModeSBAR
	}
	if len(c.Components) == 0 {
		if c.Mode == ModeSingle {
			c.Components = []string{"LRU"}
		} else {
			c.Components = []string{"LRU", "LFU"}
		}
	}
	if c.LeaderSets == 0 {
		c.LeaderSets = core.DefaultLeaderSets
	}
	if c.LeaderSets > c.Sets {
		c.LeaderSets = c.Sets
	}
	if c.ShadowTagBits == 0 {
		c.ShadowTagBits = 8
	}
	if c.PendingRing == 0 {
		c.PendingRing = 1024
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 100 * time.Millisecond
	}
	if c.Shards <= 0 || c.Shards&(c.Shards-1) != 0 {
		panic(fmt.Sprintf("adaptivekv: Shards %d is not a positive power of two", c.Shards))
	}
	if c.Shards > 1<<16 {
		panic(fmt.Sprintf("adaptivekv: Shards %d exceeds 65536", c.Shards))
	}
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		panic(fmt.Sprintf("adaptivekv: Sets %d is not a positive power of two", c.Sets))
	}
	if c.Sets > 1<<30 {
		panic(fmt.Sprintf("adaptivekv: Sets %d exceeds %d", c.Sets, 1<<30))
	}
	if c.Ways <= 0 {
		panic("adaptivekv: Ways must be positive")
	}
	if c.PendingRing < 8 || c.PendingRing&(c.PendingRing-1) != 0 {
		panic(fmt.Sprintf("adaptivekv: PendingRing %d is not a power of two ≥ 8", c.PendingRing))
	}
	if c.Mode == ModeSingle && len(c.Components) != 1 {
		panic("adaptivekv: ModeSingle takes exactly one component")
	}
	if c.Mode != ModeSingle && len(c.Components) < 2 {
		panic("adaptivekv: adaptive modes need at least two components")
	}
	return c
}

// buildPolicy constructs one shard's replacement policy.
func (c Config) buildPolicy() cache.Policy {
	switch c.Mode {
	case ModeSingle:
		return policy.MustByName(c.Components[0])()
	case ModeAdaptive, ModeSBAR:
		comps := make([]core.ComponentFactory, len(c.Components))
		for i, name := range c.Components {
			comps[i] = core.ComponentFactory(policy.MustByName(name))
		}
		var opts []core.Option
		if c.ShadowTagBits > 0 {
			opts = append(opts, core.WithShadowTagBits(c.ShadowTagBits))
		}
		if c.Mode == ModeAdaptive {
			return core.NewAdaptive(comps, opts...)
		}
		return core.NewSBAR(comps,
			core.WithLeaderSets(c.LeaderSets),
			core.WithLeaderOptions(opts...))
	default:
		panic(fmt.Sprintf("adaptivekv: unknown mode %q", c.Mode))
	}
}

// Stats is a point-in-time snapshot of one shard's (or the whole cache's)
// operation counters.
type Stats struct {
	Gets       uint64
	GetHits    uint64
	Stores     uint64
	StoreHits  uint64 // updates of an already-resident key
	Deletes    uint64
	DeleteHits uint64
	Evictions  uint64 // capacity evictions decided by the policy
	// PolicySwitches counts SBAR global-winner changes (0 in other modes):
	// how often the shard actually changed its mind about which component
	// policy to imitate.
	PolicySwitches uint64
	// HashCollisions counts operations where the directory matched a tag
	// but the resident entry held a *different* key — a 64-bit hash
	// collision between distinct keys. The operation is reported to the
	// caller as a miss, yet the engine has already recorded a hit and
	// touched the colliding entry's recency/frequency, so engine-level
	// stats diverge from user-visible behavior by exactly this count.
	HashCollisions uint64
	// OptimisticFastpath counts Gets resolved through the atomic tag
	// mirror — a lock-free miss, or a hit confirmed under the shared read
	// lock — without ever taking the shard's engine lock.
	OptimisticFastpath uint64
	// OptimisticFallback counts Gets that saw the shard's seqlock version
	// move mid-probe (a racing writer) and re-probed authoritatively
	// under the read lock.
	OptimisticFallback uint64
	// PendingHitsDropped counts deferred access records discarded because
	// the pending ring was full. Drops lose a little adaptive signal
	// (never data); readers are never blocked to preserve it.
	PendingHitsDropped uint64
	// Expired counts entries vacated because their TTL deadline had
	// passed — lazily by a Get/Set/Delete that found the corpse, or by
	// the active sweeper. Each expired entry is counted exactly once, at
	// the moment its slot is reclaimed; an optimistic read that merely
	// observes an expired entry (and reports a miss) does not count it.
	Expired uint64
	// SweepRemoved is the subset of Expired reclaimed by the active
	// sweeper rather than lazily on an access path.
	SweepRemoved uint64
	// CAS outcome counters. CompareAndSwap operations are tallied here
	// and nowhere else — they do not bump Gets or Stores — so the
	// "service-time histogram count == engine op count" invariants the
	// soak harness asserts stay exact per op family.
	CasStored    uint64 // swaps applied: the presented unique matched
	CasConflicts uint64 // unique mismatch on a live entry (EXISTS)
	CasMisses    uint64 // key absent, expired, or hash-collided (NOT_FOUND)
}

// Add accumulates o into s (summing per-shard snapshots into a total).
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.GetHits += o.GetHits
	s.Stores += o.Stores
	s.StoreHits += o.StoreHits
	s.Deletes += o.Deletes
	s.DeleteHits += o.DeleteHits
	s.Evictions += o.Evictions
	s.PolicySwitches += o.PolicySwitches
	s.HashCollisions += o.HashCollisions
	s.OptimisticFastpath += o.OptimisticFastpath
	s.OptimisticFallback += o.OptimisticFallback
	s.PendingHitsDropped += o.PendingHitsDropped
	s.Expired += o.Expired
	s.SweepRemoved += o.SweepRemoved
	s.CasStored += o.CasStored
	s.CasConflicts += o.CasConflicts
	s.CasMisses += o.CasMisses
}

// CasOps returns the total CompareAndSwap operations in the snapshot.
func (s Stats) CasOps() uint64 { return s.CasStored + s.CasConflicts + s.CasMisses }

// HitRatio returns GetHits/Gets, or 0 for an unused cache.
func (s Stats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.GetHits) / float64(s.Gets)
}

// entry is one resident key-value pair. deadline is the unix-nanosecond
// TTL deadline, 0 for entries that never expire; expiry is judged
// against the cache's coarse sweeper-updated clock, never a syscall.
// casid is the entry's compare-and-swap unique: every store path draws a
// fresh value from the shard's monotonic counter, so any overwrite —
// plain set, batch set, or winning cas — invalidates outstanding
// uniques. IDs start at 1; 0 is never issued.
type entry[K comparable, V any] struct {
	key      K
	val      V
	deadline int64
	casid    uint64
}

// shard is one lock stripe. Two locks split its state:
//
//   - mu is the authority lock: the decision engine, the writer-owned
//     counters, the resident count, and the pending-ring consumer. All
//     mutations (Set, Delete, batch variants) and all engine reads
//     (ShardStats, Winner) hold it.
//   - rmu orders entry/tag-mirror publication against optimistic
//     readers: writers publish under rmu.Lock inside a seqlock window,
//     readers confirm hits under rmu.RLock. Ring drains touch only the
//     engine, so they run under mu alone and never stall readers.
//
// Lock order is mu → rmu; rmu is never held across an mu acquisition
// (notePending's drain uses TryLock and holds no other lock).
//
// rtags mirrors the engine's directory tags as atomics, packed tag<<1|1
// (0 = invalid way), so lock-free readers never touch engine memory.
// The trailing pad keeps two shards' hot fields off one cache line.
type shard[K comparable, V any] struct {
	mu  sync.Mutex
	eng *core.Engine

	rmu     sync.RWMutex
	seq     atomic.Uint64 // seqlock version; odd = publication in progress
	entries []entry[K, V] // set*ways+way
	rtags   []atomic.Uint64

	ring    *pendingRing // nil under StrictOrder
	drainAt uint64       // ring occupancy that triggers a reader-side drain

	// Writer-owned counters, guarded by mu.
	stores, storeHits uint64
	deletes, delHits  uint64
	expired           uint64 // TTL vacates, lazy + swept; counted at reclaim
	sweepRemoved      uint64 // subset of expired reclaimed by the sweeper
	resident          int    // maintained incrementally; see Len

	// casSeq is the shard's monotonic cas-unique source: pre-incremented
	// on every store so IDs start at 1 and never repeat within a shard.
	// Guarded by mu, like the cas outcome counters below.
	casSeq                             uint64
	casStored, casConflicts, casMisses uint64

	// Reader-shared counters, incremented outside mu.
	gets, getHits      atomic.Uint64
	collisions         atomic.Uint64
	fastpath, fallback atomic.Uint64
	dropped            atomic.Uint64

	_ [64]byte
}

// Cache is the sharded adaptive key-value cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	cfg        Config
	shards     []shard[K, V]
	hash       func(K) uint64
	setMask    uint64
	setShift   uint
	ways       int
	optimistic bool

	// TTL machinery. clock is the coarse expiry clock (unix nanos),
	// seeded at New and advanced only by sweeper ticks, so the hot-path
	// deadline check is one atomic load and a compare — never a syscall.
	// ttlInUse flips true on the first SetTTL with a nonzero deadline and
	// gates the TTL-aware branches on the locked paths, keeping a cache
	// that never stores a TTL on its original code paths.
	clock       atomic.Int64
	ttlInUse    atomic.Bool
	sweepStart  sync.Once
	sweepStop   chan struct{}
	closeOnce   sync.Once
	sweepPasses atomic.Uint64
}

// Option configures a Cache at construction.
type Option[K comparable, V any] func(*Cache[K, V])

// WithHasher overrides the key hash function. The hash must be
// deterministic and well-mixed across all 64 bits; New applies no further
// mixing to custom hashers' output beyond its own finalizer.
func WithHasher[K comparable, V any](h func(K) uint64) Option[K, V] {
	return func(c *Cache[K, V]) { c.hash = h }
}

// New builds a cache for the given configuration. It panics on an invalid
// configuration or on a key type with no default hasher (strings and
// integer kinds are built in; other comparable types need WithHasher).
func New[K comparable, V any](cfg Config, opts ...Option[K, V]) *Cache[K, V] {
	cfg = cfg.normalized()
	c := &Cache[K, V]{
		cfg:       cfg,
		shards:    make([]shard[K, V], cfg.Shards),
		setMask:   uint64(cfg.Sets - 1),
		ways:      cfg.Ways,
		sweepStop: make(chan struct{}),
	}
	c.clock.Store(time.Now().UnixNano())
	for s := cfg.Sets; s > 1; s >>= 1 {
		c.setShift++
	}
	for _, o := range opts {
		o(c)
	}
	if c.hash == nil {
		c.hash = hasherFor[K]()
		if c.hash == nil {
			panic(fmt.Sprintf("adaptivekv: no default hasher for key type %T; use WithHasher", *new(K)))
		}
	}
	// With Sets == 1 the tag spans all 64 hash bits and cannot carry the
	// mirror's validity bit; fall back to locked reads.
	c.optimistic = !cfg.StrictOrder && c.setShift > 0
	g := core.EngineGeometry(cfg.Sets, cfg.Ways)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.eng = core.NewEngine(g, cfg.buildPolicy())
		sh.entries = make([]entry[K, V], cfg.Sets*cfg.Ways)
		sh.rtags = make([]atomic.Uint64, cfg.Sets*cfg.Ways)
		if c.optimistic {
			sh.ring = newPendingRing(cfg.PendingRing)
			sh.drainAt = uint64(cfg.PendingRing) * 3 / 4
		}
	}
	return c
}

// locate hashes key to (shard, set, tag). The shard comes from the top
// bits and the set from the bottom bits so the two indices stay
// independent, and — exactly as cache.Cache.decompose does for block
// addresses — the set bits are shifted out of the tag. Keeping them in
// would be harmless for the full-tag directory but fatal for partial
// shadow tags: the adaptive policy masks the tag's low bits, and if those
// repeat the set index, every tag in a set shares them and the shadow
// arrays degenerate into always-hit, starving the selector of signal.
// (set, tag) ↔ h is still a bijection, so key discrimination is unchanged.
func (c *Cache[K, V]) locate(key K) (sh *shard[K, V], set int, tag uint64) {
	h := mix64(c.hash(key))
	sh = &c.shards[(h>>48)&uint64(len(c.shards)-1)]
	return sh, int(h & c.setMask), h >> c.setShift
}

// Get returns the value cached under key. The access updates the adaptive
// machinery (recency, frequency, shadow directories, miss history) —
// inline under StrictOrder, deferred through the pending ring otherwise —
// but a miss does not reserve space: read-through callers populate via
// Set.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	v, _, ok := c.GetCas(key)
	return v, ok
}

// GetCas is Get returning, additionally, the entry's cas unique — the
// token a later CompareAndSwap must present. On the optimistic path the
// unique is read inside the same seqlock window as the value, so the
// (value, unique) pair is always coherent. A miss returns unique 0,
// which no resident entry ever carries.
func (c *Cache[K, V]) GetCas(key K) (V, uint64, bool) {
	sh, set, tag := c.locate(key)
	sh.gets.Add(1)
	if !c.optimistic {
		sh.mu.Lock()
		v, id, ok := c.lookupLocked(sh, set, tag, key)
		sh.mu.Unlock()
		return v, id, ok
	}
	v, id, ok := c.getOptimistic(sh, set, tag, key)
	c.notePending(sh, set, tag)
	return v, id, ok
}

// expiredDeadline reports whether a TTL deadline has passed per the
// coarse clock: one branch for the common deadline-0 case, one atomic
// load otherwise. Never a syscall, never an allocation.
func (c *Cache[K, V]) expiredDeadline(d int64) bool {
	return d != 0 && c.clock.Load() >= d
}

// expireLocked vacates an expired entry: engine delete, mirror and
// entry invalidation, and the exactly-once Expired count. Caller holds
// sh.mu and has verified the slot holds the expired key.
func (c *Cache[K, V]) expireLocked(sh *shard[K, V], set int, tag uint64, slot int) {
	sh.eng.Delete(set, tag)
	sh.publish(slot, entry[K, V]{}, 0)
	sh.expired++
	sh.resident--
}

// lookupLocked is the authoritative Get body: engine lookup inline plus
// key confirmation. Caller holds sh.mu. When TTLs are in play, an
// expired resident entry is vacated first and the engine then records a
// genuine miss — leader-set learning sees the access exactly as if the
// entry had never been there.
func (c *Cache[K, V]) lookupLocked(sh *shard[K, V], set int, tag uint64, key K) (V, uint64, bool) {
	if c.ttlInUse.Load() {
		if way, ok := sh.eng.Find(set, tag); ok {
			slot := set*c.ways + way
			e := &sh.entries[slot]
			if e.key == key && c.expiredDeadline(e.deadline) {
				c.expireLocked(sh, set, tag, slot)
			}
		}
	}
	if way, ok := sh.eng.Lookup(set, tag); ok {
		e := &sh.entries[set*c.ways+way]
		if e.key == key {
			sh.getHits.Add(1)
			return e.val, e.casid, true
		}
		// 64-bit hash collision between distinct keys: a user-visible
		// miss, but the engine has already counted a hit and promoted
		// the colliding entry. Record the divergence.
		sh.collisions.Add(1)
	}
	var zero V
	return zero, 0, false
}

// probeShared resolves a Get against the atomic tag mirror and the entry
// array. Caller holds sh.rmu (either side), which excludes publication,
// so the plain entry reads are race-free.
func (c *Cache[K, V]) probeShared(sh *shard[K, V], set int, tag uint64, key K) (V, uint64, bool) {
	base := set * c.ways
	packed := tag<<1 | 1
	for w := 0; w < c.ways; w++ {
		if sh.rtags[base+w].Load() != packed {
			continue
		}
		e := &sh.entries[base+w]
		if e.key == key {
			if c.expiredDeadline(e.deadline) {
				// Expired corpse: a miss to the caller. Readers hold only
				// rmu, so the slot is reclaimed (and Expired counted) later
				// by a writer, the ring drain, or the sweeper.
				break
			}
			sh.getHits.Add(1)
			return e.val, e.casid, true
		}
		sh.collisions.Add(1)
		break // a tag occupies at most one way
	}
	var zero V
	return zero, 0, false
}

// getOptimistic is the scalable read path. A pass over the tag mirror
// with the seqlock version even and stable on both sides resolves a miss
// with no locks at all; a mirror match confirms the hit under rmu.RLock
// (shared with other readers, never with the engine lock). Only a
// version shift mid-probe — a racing writer — forces the authoritative
// re-probe, counted as a fallback.
func (c *Cache[K, V]) getOptimistic(sh *shard[K, V], set int, tag uint64, key K) (V, uint64, bool) {
	if s1 := sh.seq.Load(); s1&1 == 0 {
		base := set * c.ways
		packed := tag<<1 | 1
		match := false
		for w := 0; w < c.ways; w++ {
			if sh.rtags[base+w].Load() == packed {
				match = true
				break
			}
		}
		if match {
			sh.rmu.RLock()
			v, id, ok := c.probeShared(sh, set, tag, key)
			sh.rmu.RUnlock()
			sh.fastpath.Add(1)
			return v, id, ok
		}
		if sh.seq.Load() == s1 {
			sh.fastpath.Add(1)
			var zero V
			return zero, 0, false
		}
	}
	sh.fallback.Add(1)
	sh.rmu.RLock()
	v, id, ok := c.probeShared(sh, set, tag, key)
	sh.rmu.RUnlock()
	return v, id, ok
}

// notePending queues the access for deferred engine replay and self-
// drains when the ring is running hot and the shard lock happens to be
// free. A full ring drops the record — adaptive signal is best-effort,
// reader progress is not.
func (c *Cache[K, V]) notePending(sh *shard[K, V], set int, tag uint64) {
	if !sh.ring.push(uint32(set), tag) {
		sh.dropped.Add(1)
		return
	}
	c.maybeDrain(sh)
}

// maybeDrain opportunistically drains a ≥¾-full ring without ever
// blocking: contended shards are drained by their writers anyway.
func (c *Cache[K, V]) maybeDrain(sh *shard[K, V]) {
	if sh.ring.occupancy() >= sh.drainAt && sh.mu.TryLock() {
		c.drainPending(sh)
		sh.mu.Unlock()
	}
}

// drainPending replays queued access records into the decision engine.
// Caller holds sh.mu. Replay uses Lookup — the fill-free probe — which
// updates recency/frequency/shadow/history state but never moves
// directory lines, so non-TTL drains need no rmu and never stall
// readers. With TTLs in play each record first checks the resident
// entry's deadline: an expired corpse is vacated (the one rmu window
// the drain ever takes) *before* the replay, so the engine records the
// miss the optimistic reader actually experienced rather than a hit on
// a dead entry.
func (c *Cache[K, V]) drainPending(sh *shard[K, V]) {
	r := sh.ring
	if r == nil {
		return
	}
	ttl := c.ttlInUse.Load()
	for {
		set, tag, ok := r.pop()
		if !ok {
			break
		}
		if ttl {
			if way, found := sh.eng.Find(int(set), tag); found {
				slot := int(set)*c.ways + way
				if c.expiredDeadline(sh.entries[slot].deadline) {
					c.expireLocked(sh, int(set), tag, slot)
				}
			}
		}
		sh.eng.Lookup(int(set), tag)
	}
	r.headPub.Store(r.head)
}

// publish installs slot's entry and tag mirror inside a seqlock window.
// Caller holds sh.mu; packed is tag<<1|1, or 0 to invalidate.
func (sh *shard[K, V]) publish(slot int, e entry[K, V], packed uint64) {
	sh.rmu.Lock()
	sh.seq.Add(1) // odd: publication in progress
	sh.entries[slot] = e
	sh.rtags[slot].Store(packed)
	sh.seq.Add(1)
	sh.rmu.Unlock()
}

// Set caches val under key with no expiry, updating in place when key is
// resident and otherwise filling per the shard's replacement decision —
// possibly evicting the entry the imitated component policy would evict.
// Every mutation first drains the pending ring, so the engine decides
// with all observed accesses applied.
func (c *Cache[K, V]) Set(key K, val V) { c.SetTTL(key, val, 0) }

// SetTTL is Set with a TTL: deadline is the unix-nanosecond time after
// which the entry reads as a miss (0 = never expires). The first nonzero
// deadline stored starts the background sweeper. Overwriting an expired
// resident entry counts as Expired (the slot was logically vacant), not
// as a store hit.
func (c *Cache[K, V]) SetTTL(key K, val V, deadline int64) {
	if deadline != 0 {
		c.ensureTTL()
	}
	sh, set, tag := c.locate(key)
	sh.mu.Lock()
	c.drainPending(sh)
	sh.stores++
	res := sh.eng.Store(set, tag)
	slot := set*c.ways + res.Way
	if res.Hit {
		old := &sh.entries[slot]
		switch {
		case c.expiredDeadline(old.deadline):
			// Overwriting a corpse: the new value fills a logically
			// vacant slot. Count the expiry here — this store is the
			// reclaim — and not a store hit.
			sh.expired++
		case old.key != key:
			// Tag hit on a different key: the store legally overwrites
			// the colliding entry, but the engine saw an in-place update.
			sh.storeHits++
			sh.collisions.Add(1)
		default:
			sh.storeHits++
		}
	} else if !res.Evicted {
		sh.resident++ // filled a previously invalid way
	}
	sh.casSeq++
	sh.publish(slot, entry[K, V]{key: key, val: val, deadline: deadline, casid: sh.casSeq}, tag<<1|1)
	sh.mu.Unlock()
}

// CasResult is the outcome of a CompareAndSwap.
type CasResult uint8

const (
	// CasStored: the presented unique matched and the value was swapped.
	CasStored CasResult = iota
	// CasExists: the key is resident but its unique differs — a
	// concurrent write won the race since the GetCas that produced the
	// token. The caller re-reads and retries.
	CasExists
	// CasNotFound: the key is absent (never stored, evicted, deleted, or
	// TTL-expired). Memcached semantics: an expired entry is
	// indistinguishable from one that was never there.
	CasNotFound
)

// CompareAndSwap atomically replaces key's value iff the entry's cas
// unique still equals casid (obtained from a prior GetCas); deadline is
// the new TTL deadline, as in SetTTL. A TTL corpse is vacated first and
// reported CasNotFound, and the engine sees the op as one real access —
// a hit when the key is live, a recorded miss otherwise — so adaptive
// learning observes cas traffic exactly like get traffic. A winning swap
// updates the entry in place (no directory movement, no eviction) and
// stamps a fresh unique. The op counts only into the Cas* stats, never
// Gets or Stores.
func (c *Cache[K, V]) CompareAndSwap(key K, val V, casid uint64, deadline int64) CasResult {
	if deadline != 0 {
		c.ensureTTL()
	}
	sh, set, tag := c.locate(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.drainPending(sh)
	if c.ttlInUse.Load() {
		if way, ok := sh.eng.Find(set, tag); ok {
			slot := set*c.ways + way
			e := &sh.entries[slot]
			if e.key == key && c.expiredDeadline(e.deadline) {
				c.expireLocked(sh, set, tag, slot)
			}
		}
	}
	way, ok := sh.eng.Lookup(set, tag) // the op's one real engine access
	if !ok {
		sh.casMisses++
		return CasNotFound
	}
	slot := set*c.ways + way
	e := &sh.entries[slot]
	if e.key != key {
		// Hash collision: user-visible NOT_FOUND, engine already counted
		// a hit on the colliding entry (same divergence as Get).
		sh.collisions.Add(1)
		sh.casMisses++
		return CasNotFound
	}
	if e.casid != casid {
		sh.casConflicts++
		return CasExists
	}
	sh.casStored++
	sh.casSeq++
	sh.publish(slot, entry[K, V]{key: key, val: val, deadline: deadline, casid: sh.casSeq}, tag<<1|1)
	return CasStored
}

// Delete removes key, reporting whether it was resident. The freed slot
// becomes fill-preferred within its set. Deleting an expired entry
// reclaims the slot but reports NOT_FOUND — the value was already dead.
func (c *Cache[K, V]) Delete(key K) bool {
	sh, set, tag := c.locate(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.drainPending(sh)
	sh.deletes++
	way, ok := sh.eng.Find(set, tag)
	if !ok {
		return false
	}
	slot := set*c.ways + way
	if sh.entries[slot].key != key {
		sh.collisions.Add(1) // tag present but owned by a colliding key
		return false
	}
	if c.expiredDeadline(sh.entries[slot].deadline) {
		c.expireLocked(sh, set, tag, slot)
		return false
	}
	sh.eng.Delete(set, tag)
	sh.publish(slot, entry[K, V]{}, 0) // release references
	sh.delHits++
	sh.resident--
	return true
}

// Flush removes every resident entry and returns how many were dropped.
// It locks one shard at a time (like the stats collectors), so
// operations on other shards proceed while a shard is being emptied and
// the flush is only per-shard atomic, which is all a cache needs: a
// flush racing a writer keeps either nothing or only entries written
// after that shard was swept. Entries leave through the engine's Delete
// path — each freed way becomes fill-preferred within its set — so the
// learned adaptive state (shadow directories, miss history, SBAR winner)
// survives and the refilled cache re-converges without relearning from
// scratch. That asymmetry is deliberate: flushing serves reintegration
// safety ("cold is safe, stale is not"), and coming back cold in data
// but warm in policy is the best legal restart.
func (c *Cache[K, V]) Flush() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		c.drainPending(sh)
		removed := 0
		sh.rmu.Lock()
		sh.seq.Add(1) // odd: publication in progress
		for slot := range sh.entries {
			if sh.rtags[slot].Load() == 0 {
				continue
			}
			// Recompute (set, tag) from the resident key rather than
			// unpacking the mirror word: with Sets == 1 the packed form
			// tag<<1|1 has dropped the tag's top bit.
			_, set, tag := c.locate(sh.entries[slot].key)
			sh.eng.Delete(set, tag)
			sh.rtags[slot].Store(0)
			sh.entries[slot] = entry[K, V]{} // release references
			removed++
		}
		sh.seq.Add(1)
		sh.rmu.Unlock()
		sh.resident -= removed
		sh.mu.Unlock()
		total += removed
	}
	return total
}

// ensureTTL flips the cache into TTL mode and starts the sweeper,
// exactly once for the cache's lifetime.
func (c *Cache[K, V]) ensureTTL() {
	c.sweepStart.Do(func() {
		c.ttlInUse.Store(true)
		c.clock.Store(time.Now().UnixNano())
		go c.sweepLoop()
	})
}

// sweepLoop is the low-duty-cycle active sweeper: each tick advances the
// coarse expiry clock and reclaims expired entries from one shard, round
// robin, so dead items stop pinning memory even when nothing reads them.
// Cache.Close stops it.
func (c *Cache[K, V]) sweepLoop() {
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	i := 0
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
			// Re-check stop first: with both channels ready the outer
			// select picks randomly, and Close must win promptly.
			select {
			case <-c.sweepStop:
				return
			default:
			}
			c.clock.Store(time.Now().UnixNano())
			c.sweepShard(i)
			i = (i + 1) % len(c.shards)
		}
	}
}

// sweepShard reclaims shard i's expired entries under TryLock — a busy
// shard is skipped rather than contended (its own writers and drains
// expire lazily anyway) — in one publication window, mirroring Flush's
// slot walk. Swept entries count as both Expired and SweepRemoved.
func (c *Cache[K, V]) sweepShard(i int) {
	sh := &c.shards[i]
	if !sh.mu.TryLock() {
		return
	}
	defer sh.mu.Unlock()
	now := c.clock.Load()
	removed := 0
	sh.rmu.Lock()
	sh.seq.Add(1) // odd: publication in progress
	for slot := range sh.entries {
		if sh.rtags[slot].Load() == 0 {
			continue
		}
		e := &sh.entries[slot]
		if e.deadline == 0 || now < e.deadline {
			continue
		}
		// Recompute (set, tag) from the resident key rather than
		// unpacking the mirror word: with Sets == 1 the packed form
		// tag<<1|1 has dropped the tag's top bit (same as Flush).
		_, set, tag := c.locate(e.key)
		sh.eng.Delete(set, tag)
		sh.rtags[slot].Store(0)
		sh.entries[slot] = entry[K, V]{} // release references
		removed++
	}
	sh.seq.Add(1)
	sh.rmu.Unlock()
	sh.resident -= removed
	sh.expired += uint64(removed)
	sh.sweepRemoved += uint64(removed)
	c.sweepPasses.Add(1)
}

// SweepPasses returns how many shard sweeps the TTL sweeper has
// completed (0 until the first SetTTL with a deadline starts it).
func (c *Cache[K, V]) SweepPasses() uint64 { return c.sweepPasses.Load() }

// Close stops the TTL sweeper, if it ever started. Idempotent; the
// cache remains usable afterwards (minus active sweeping), so Close is
// safe to call during any shutdown ordering.
func (c *Cache[K, V]) Close() {
	c.closeOnce.Do(func() { close(c.sweepStop) })
}

// Deadline reports key's TTL deadline in unix nanoseconds (0 = never
// expires) and whether the key is resident, without recording an access.
func (c *Cache[K, V]) Deadline(key K) (int64, bool) {
	sh, set, tag := c.locate(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	way, ok := sh.eng.Find(set, tag)
	if !ok {
		return 0, false
	}
	e := &sh.entries[set*c.ways+way]
	if e.key != key {
		return 0, false
	}
	return e.deadline, true
}

// Len returns the number of resident entries. Each shard maintains its
// occupancy incrementally (a fill of an invalid way increments, a delete
// hit decrements, an eviction-replace is net zero), so Len takes one
// shard lock at a time and reads a single integer — it never walks sets
// and never holds more than one lock at once, making it safe for
// per-scrape use.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		n += c.ShardOccupancy(i)
	}
	return n
}

// ShardOccupancy returns the number of resident entries in shard i.
func (c *Cache[K, V]) ShardOccupancy(i int) int {
	sh := &c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.resident
}

// Capacity returns the maximum number of resident entries.
func (c *Cache[K, V]) Capacity() int {
	return c.cfg.Shards * c.cfg.Sets * c.cfg.Ways
}

// Config returns the normalized configuration.
func (c *Cache[K, V]) Config() Config { return c.cfg }

// Shards returns the number of lock stripes.
func (c *Cache[K, V]) Shards() int { return len(c.shards) }

// ShardStats returns a snapshot of shard i's counters.
func (c *Cache[K, V]) ShardStats(i int) Stats {
	sh := &c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return Stats{
		Gets:               sh.gets.Load(),
		GetHits:            sh.getHits.Load(),
		Stores:             sh.stores,
		StoreHits:          sh.storeHits,
		Deletes:            sh.deletes,
		DeleteHits:         sh.delHits,
		Evictions:          sh.eng.Stats().Evictions,
		PolicySwitches:     sh.eng.PolicySwitches(),
		HashCollisions:     sh.collisions.Load(),
		OptimisticFastpath: sh.fastpath.Load(),
		OptimisticFallback: sh.fallback.Load(),
		PendingHitsDropped: sh.dropped.Load(),
		Expired:            sh.expired,
		SweepRemoved:       sh.sweepRemoved,
		CasStored:          sh.casStored,
		CasConflicts:       sh.casConflicts,
		CasMisses:          sh.casMisses,
	}
}

// Stats returns the sum of all shards' counters.
func (c *Cache[K, V]) Stats() Stats {
	var total Stats
	for i := range c.shards {
		total.Add(c.ShardStats(i))
	}
	return total
}

// Winner returns shard i's current SBAR global winner (component index
// into Config.Components), or -1 outside ModeSBAR.
func (c *Cache[K, V]) Winner(i int) int {
	sh := &c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.Winner()
}

// Overhead returns the adaptive bookkeeping cost of one shard in bits,
// following the paper's SRAM accounting (internal/storage): shadow
// directory entries and history for the sampled sets in ModeSBAR, for
// every set in ModeAdaptive, zero in ModeSingle. OverheadPercent expresses
// it against the shard's conventional (data + main directory) storage —
// the figure the paper reports as 0.09–0.16% for SBAR.
func (c *Cache[K, V]) Overhead() storage.Bits {
	p := storage.DefaultParams(core.EngineGeometry(c.cfg.Sets, c.cfg.Ways))
	switch c.cfg.Mode {
	case ModeSingle:
		return 0
	case ModeAdaptive:
		return p.AdaptiveOverhead(len(c.cfg.Components), c.cfg.ShadowTagBits)
	default:
		return p.SBAROverhead(len(c.cfg.Components), c.cfg.LeaderSets, c.cfg.ShadowTagBits)
	}
}

// OverheadPercent returns Overhead as a percentage of a shard's
// conventional storage.
func (c *Cache[K, V]) OverheadPercent() float64 {
	p := storage.DefaultParams(core.EngineGeometry(c.cfg.Sets, c.cfg.Ways))
	return p.OverheadPercent(c.Overhead())
}
